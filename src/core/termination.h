#ifndef HORNSAFE_CORE_TERMINATION_H_
#define HORNSAFE_CORE_TERMINATION_H_

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "lang/program.h"

namespace hornsafe {

/// Result of the termination analysis (paper, Section 5).
struct TerminationResult {
  /// True iff some computation enumerates all answers to the query and
  /// then stops (the strong definition of termination, not the weaker
  /// [Afrati et al. 86] tree-construction one the paper contrasts).
  bool exists = false;
  /// When false: why (first failing condition or cycle).
  std::vector<std::string> reasons;
};

/// Decides (a sound approximation of) the existence of a terminating
/// computation for `query`, a literal of the analyzer's canonical
/// program (implementation notes: DESIGN.md, D10).
///
/// Termination implies safety and finiteness of intermediate relations
/// (paper, Section 5), so both are prerequisites. On top of them, every
/// recursion cycle among the reachable (predicate, adornment) states
/// must be *convergent*:
///
///  * a strictly monotone track position that is constant-bounded on
///    the far side, or bound by the adornment — once a monotone chain
///    passes the bound/target it can never return, so the computation
///    may stop (this is what the paper's `f₂ ⇝ f₁` plus `f₂ > f₁`
///    buys for the bound query of Example 15); or
///  * all recursion variables subset-condition safe — the recursion's
///    value space is finite, so its fixpoint is reached in finitely
///    many steps (Example 4).
TerminationResult CheckTermination(SafetyAnalyzer& analyzer,
                                   const Literal& query);

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_TERMINATION_H_
