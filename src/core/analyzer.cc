#include "core/analyzer.h"

#include <algorithm>
#include <future>

#include "andor/build.h"
#include "andor/emptiness.h"
#include "andor/lfp.h"
#include "andor/reduce.h"
#include "util/strings.h"

namespace hornsafe {

std::string QueryAnalysis::Summary(const Program& program) const {
  std::string out =
      StrCat(program.ToString(query), ": ", SafetyName(overall));
  if (!args.empty()) {
    out += " [";
    out += JoinMapped(args, ", ", [](const ArgumentVerdict& a) {
      return StrCat(a.position + 1, "=", SafetyName(a.safety));
    });
    out += "]";
  }
  return out;
}

Result<SafetyAnalyzer> SafetyAnalyzer::Create(
    const Program& program, const AnalyzerOptions& options) {
  SafetyAnalyzer a;
  a.state_ = std::make_unique<State>();
  State& s = *a.state_;
  s.options = options;

  HORNSAFE_RETURN_IF_ERROR(program.Validate());
  HORNSAFE_ASSIGN_OR_RETURN(s.canon,
                            Canonicalize(program, options.canonicalize));
  HORNSAFE_ASSIGN_OR_RETURN(s.adorned, BuildAdornedProgram(s.canon.program));
  BuildOptions bopts;
  bopts.use_fd_closure = options.use_fd_closure;
  HORNSAFE_ASSIGN_OR_RETURN(
      s.system, BuildAndOrSystem(s.canon.program, s.adorned, bopts));

  s.stats.canonical_rules = s.canon.program.rules().size();
  s.stats.adorned_rules = s.adorned.rules.size();
  s.stats.nodes = s.system.nodes().size();
  s.stats.rules_total = s.system.num_rules();

  if (options.apply_emptiness) {
    s.stats.rules_pruned_emptiness =
        ApplyEmptinessPruning(EmptyPredicates(s.canon.program), &s.system);
  }
  if (options.apply_reduction) {
    s.stats.rules_pruned_reduction = ReduceSystem(&s.system).rules_deleted;
  }
  s.stats.rules_live = s.system.NumLiveRules();

  if (options.use_monotonicity && !s.canon.program.monos().empty()) {
    s.mono = std::make_unique<MonotonicityAnalyzer>(s.canon.program,
                                                    s.adorned, s.system);
  }
  // The condensation depends on the live rule set, so it is computed
  // after pruning and then shared (read-only) by every subset search,
  // including ones running concurrently on pool threads.
  s.scc = std::make_unique<SccAnalysis>(SccAnalysis::Compute(s.system));
  return a;
}

SubsetOptions SafetyAnalyzer::MakeSubsetOptions() {
  SubsetOptions opts;
  opts.budget = state_->options.subset_budget;
  if (state_->mono) opts.escape = state_->mono->MakeEscape();
  opts.scc = state_->scc.get();
  return opts;
}

ThreadPool& SafetyAnalyzer::Pool(size_t threads) {
  if (!state_->pool || state_->pool->num_threads() < threads) {
    // Replacing the pool joins the old workers first (no task is in
    // flight here: the pool is only touched between analyses).
    state_->pool = std::make_unique<ThreadPool>(threads);
  }
  return *state_->pool;
}

SafetyAnalyzer::Counters SafetyAnalyzer::counters() const {
  Counters c = state_->counters;
  c.steps = state_->steps_spent.load(std::memory_order_relaxed);
  return c;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(PredicateId pred,
                                               uint64_t adornment_mask) {
  Program& p = state_->canon.program;
  const AndOrSystem& system = state_->system;
  QueryAnalysis out;
  const uint32_t arity = p.predicate(pred).arity;
  // Synthesise a display literal with fresh variables.
  Literal lit;
  lit.pred = pred;
  for (uint32_t k = 0; k < arity; ++k) {
    lit.args.push_back(p.Var(StrCat("A", k + 1)));
  }
  out.query = lit;

  SubsetOptions sopts = MakeSubsetOptions();

  // Classify serially (display-literal interning above and predicate
  // lookups mutate no shared state from here on) and collect the
  // argument positions that need an actual subset search.
  struct SearchJob {
    uint32_t position = 0;
    NodeId root = kInvalidNode;
    SubsetResult res;
  };
  std::vector<ArgumentVerdict> verdicts(arity);
  std::vector<SearchJob> searches;
  for (uint32_t k = 0; k < arity; ++k) {
    ArgumentVerdict& v = verdicts[k];
    v.position = k;
    if ((adornment_mask >> k) & 1) {
      v.safety = Safety::kSafe;
      v.explanation = "bound by the query";
    } else if (p.IsFiniteBase(pred)) {
      v.safety = Safety::kSafe;
      v.explanation = "finite base predicate";
    } else if (p.IsInfiniteBase(pred)) {
      // A free argument of a bare infinite-EDB query (Example 14) is
      // safe only if finitely determined by the bound arguments.
      AttrSet bound(adornment_mask);
      bool determined = false;
      for (const FiniteDependency& fd : p.FdsFor(pred)) {
        if (fd.lhs.SubsetOf(bound) && fd.rhs.Contains(k)) determined = true;
      }
      v.safety = determined ? Safety::kSafe : Safety::kUnsafe;
      v.explanation = determined
                          ? "finitely determined by bound arguments"
                          : "free argument of an infinite base predicate";
    } else {
      SearchJob job;
      job.position = k;
      job.root = system.FindHeadArg(pred, adornment_mask, k);
      searches.push_back(std::move(job));
    }
  }

  // Run the searches — the expensive part — across the pool when asked.
  // Each position gets its own budget and fresh memo table, so every
  // SubsetResult is independent of scheduling; only the aggregate
  // steps tally is shared (and atomic).
  size_t want = state_->options.jobs <= 0
                    ? ThreadPool::DefaultThreads()
                    : static_cast<size_t>(state_->options.jobs);
  if (want > 1 && searches.size() > 1) {
    ThreadPool& pool = Pool(std::min(want, searches.size()));
    std::vector<std::future<void>> done;
    done.reserve(searches.size());
    for (SearchJob& job : searches) {
      done.push_back(pool.Submit([this, &job, &sopts] {
        job.res = CheckSubsetCondition(state_->system, job.root, sopts);
        state_->steps_spent.fetch_add(job.res.steps,
                                      std::memory_order_relaxed);
      }));
    }
    for (std::future<void>& f : done) f.get();
    state_->counters.parallel_tasks += searches.size();
  } else {
    for (SearchJob& job : searches) {
      job.res = CheckSubsetCondition(system, job.root, sopts);
      state_->steps_spent.fetch_add(job.res.steps,
                                    std::memory_order_relaxed);
    }
    state_->counters.serial_tasks += searches.size();
  }

  // Deterministic merge: verdicts, explanations, and counters are
  // folded in position order on this thread.
  for (const SearchJob& job : searches) {
    ArgumentVerdict& v = verdicts[job.position];
    const SubsetResult& res = job.res;
    v.safety = res.verdict;
    switch (res.verdict) {
      case Safety::kSafe:
        v.explanation =
            job.root == kInvalidNode || system.RulesFor(job.root).empty()
                ? "no rule can bind this argument (empty predicate)"
                : StrCat("every AND-graph satisfies the subset condition (",
                         res.graphs_checked, " graphs checked)");
        break;
      case Safety::kUnsafe:
        v.explanation = res.witness
                            ? res.witness->Describe(system, p)
                            : "counterexample AND-graph found";
        break;
      case Safety::kUndecided:
        v.explanation =
            StrCat("search budget exhausted after ", res.steps, " steps");
        break;
    }
    state_->counters.subset_searches += 1;
    state_->counters.graphs_checked += res.graphs_checked;
    state_->counters.memo_hits += res.memo_hits;
    state_->counters.memo_misses += res.memo_misses;
    state_->counters.scc_short_circuits += res.scc_short_circuits;
  }
  state_->counters.positions_analyzed += arity;

  bool any_unsafe = false;
  bool any_undecided = false;
  for (ArgumentVerdict& v : verdicts) {
    any_unsafe |= (v.safety == Safety::kUnsafe);
    any_undecided |= (v.safety == Safety::kUndecided);
    out.args.push_back(std::move(v));
  }
  out.overall = any_unsafe      ? Safety::kUnsafe
                : any_undecided ? Safety::kUndecided
                                : Safety::kSafe;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const Literal& query) {
  // Canonical queries have all-distinct-variable arguments, so the
  // relevant adornment is all-free.
  QueryAnalysis out = AnalyzePredicate(query.pred, 0);
  out.query = query;
  return out;
}

std::vector<QueryAnalysis> SafetyAnalyzer::AnalyzeQueries() {
  std::vector<QueryAnalysis> out;
  std::vector<Literal> queries = state_->canon.program.queries();
  for (const Literal& q : queries) {
    out.push_back(AnalyzeQueryLiteral(q));
  }
  return out;
}

}  // namespace hornsafe
