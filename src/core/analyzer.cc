#include "core/analyzer.h"

#include <algorithm>
#include <future>

#include "andor/build.h"
#include "andor/emptiness.h"
#include "andor/lfp.h"
#include "andor/reduce.h"
#include "andor/segment.h"
#include "lang/struct_hash.h"
#include "util/stage_timer.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

uint64_t CanonicalizeOptionBits(const CanonicalizeOptions& o) {
  return (o.add_function_fds ? 1u : 0u) |
         (o.add_constructor_fds ? 2u : 0u) |
         (o.add_constructor_monos ? 4u : 0u);
}

/// Builds the 128-bit verdict-tier key for one search: the predicate's
/// cone fingerprint plus the analysis context, adornment and position.
/// `hi` re-derives the same inputs under independent seeds.
CacheKey MakeVerdictKey(uint64_t cone_fp, uint64_t context_hash,
                        uint64_t adornment_mask, uint32_t position) {
  uint64_t lo = CombineHash(cone_fp, context_hash);
  lo = CombineHash(lo, adornment_mask);
  lo = CombineHash(lo, position);
  uint64_t hi = MixHash(cone_fp ^ 0x5ca1ab1e5eed0001ULL);
  hi = CombineHash(hi, MixHash(context_hash ^ 0x0ddba11d00000002ULL));
  hi = CombineHash(hi, adornment_mask + 1);
  hi = CombineHash(hi, position + 0x10000u);
  return {hi, lo};
}

}  // namespace

std::string QueryAnalysis::Summary(const Program& program) const {
  std::string out =
      StrCat(program.ToString(query), ": ", SafetyName(overall));
  if (!args.empty()) {
    out += " [";
    out += JoinMapped(args, ", ", [](const ArgumentVerdict& a) {
      return StrCat(a.position + 1, "=", SafetyName(a.safety));
    });
    out += "]";
  }
  return out;
}

Result<std::shared_ptr<const AnalysisSnapshot>> SafetyAnalyzer::BuildSnapshot(
    const Program& program, const AnalyzerOptions& options) {
  auto snap = std::make_shared<AnalysisSnapshot>();
  AnalysisSnapshot& s = *snap;
  s.options = options;
  PipelineCache* cache = options.cache;

  HORNSAFE_RETURN_IF_ERROR(program.Validate());
  HORNSAFE_RETURN_IF_ERROR(options.exec.Check("analyzer build"));
  StageTimer timer;

  // Algorithm 1, behind the canonicalization tier: keyed on the strict
  // (rendered-listing) hash, so a hit replays the exact output a cold
  // run would rebuild. The artifact is frozen behind a shared_ptr and
  // shared between the tier and every snapshot that hits it, so a warm
  // hit costs one hash lookup instead of a deep Program copy. Display
  // variables are interned on the miss path, while the canonical
  // program is still private, and travel with the artifact; every
  // later stage takes the program by const reference and interns
  // nothing.
  auto freeze = [&](CanonicalizationResult canon)
      -> std::shared_ptr<const CanonicalizationResult> {
    uint32_t max_arity = 0;
    const size_t np = canon.program.num_predicates();
    for (PredicateId p = 0; p < static_cast<PredicateId>(np); ++p) {
      max_arity = std::max(max_arity, canon.program.predicate(p).arity);
    }
    s.display_vars.clear();
    s.display_vars.reserve(max_arity);
    for (uint32_t k = 0; k < max_arity; ++k) {
      s.display_vars.push_back(canon.program.Var(StrCat("A", k + 1)));
    }
    return std::make_shared<const CanonicalizationResult>(std::move(canon));
  };
  if (cache != nullptr) {
    uint64_t strict = StrictProgramHash(program);
    uint64_t bits = CanonicalizeOptionBits(options.canonicalize);
    if (auto hit = cache->LookupCanonicalization(strict, bits)) {
      s.canon = std::move(hit->canon);
      s.display_vars = std::move(hit->display_vars);
    } else {
      HORNSAFE_ASSIGN_OR_RETURN(CanonicalizationResult fresh_canon,
                                Canonicalize(program, options.canonicalize));
      s.canon = freeze(std::move(fresh_canon));
      cache->StoreCanonicalization(strict, bits, {s.canon, s.display_vars});
    }
  } else {
    HORNSAFE_ASSIGN_OR_RETURN(CanonicalizationResult fresh_canon,
                              Canonicalize(program, options.canonicalize));
    s.canon = freeze(std::move(fresh_canon));
  }
  s.stats.stage_canonicalize_ns = timer.LapNs();

  const Program& cp = s.canon->program;
  const size_t num_preds = cp.num_predicates();
  const size_t num_rules = cp.rules().size();

  // Fingerprints move ahead of the And-Or stages: the fragment and FD
  // tiers below are keyed by cone fingerprint, and (with a cache) the
  // per-predicate hash memo skips structural hashing of textually
  // unchanged predicates.
  s.fps = ComputeFingerprints(
      cp, cache != nullptr ? &cache->pred_hashes() : nullptr);
  s.stats.stage_fingerprint_ns = timer.LapNs();

  HORNSAFE_RETURN_IF_ERROR(options.exec.Check("analyzer build"));

  BuildOptions bopts;
  bopts.use_fd_closure = options.use_fd_closure;

  // Pre-close the dependency index of every infinite-base predicate
  // through the shared FdClosureCache: predicates whose dependency set
  // is unchanged get the previous build's frozen index back in one
  // hash lookup instead of re-running the closure fixpoints.
  BuildOptions::FdIndexMap fd_indexes;
  if (cache != nullptr) {
    for (PredicateId p = 0; p < static_cast<PredicateId>(num_preds); ++p) {
      const PredicateInfo& info = cp.predicate(p);
      if (info.kind != PredicateKind::kInfiniteBase) continue;
      fd_indexes.emplace(p, cache->fd_closures().For(cp.FdsFor(p),
                                                     info.arity,
                                                     options.use_fd_closure));
    }
    bopts.fd_indexes = &fd_indexes;
  }
  s.stats.stage_fd_ns = timer.LapNs();

  // Algorithm 3 LFP bits, behind the emptiness tier (strict-hashed on
  // the canonical program). Hoisted ahead of the build: the segment
  // keys below fold the emptiness bits of each component's predicates,
  // so they must be known before planning. The wall time still counts
  // against the prune stage (accumulated in two laps).
  std::optional<std::vector<bool>> empty;
  if (options.apply_emptiness) {
    uint64_t canon_strict = 0;
    if (cache != nullptr) {
      canon_strict = StrictProgramHash(cp);
      empty = cache->LookupEmptiness(canon_strict);
      if (empty && empty->size() != num_preds) {
        empty.reset();
      }
    }
    if (!empty) {
      empty = EmptyPredicates(cp);
      if (cache != nullptr) cache->StoreEmptiness(canon_strict, *empty);
    }
  }
  s.stats.stage_prune_ns = timer.LapNs();

  // Rule guards, shared by the fragment planning / assembly below and
  // the segment keys (one pass instead of one ComputeRuleGuard per
  // consumer).
  std::vector<uint64_t> guards;
  if (cache != nullptr) {
    guards.resize(num_rules);
    for (uint32_t ri = 0; ri < static_cast<uint32_t>(num_rules); ++ri) {
      guards[ri] = ComputeRuleGuard(cp, ri, options.use_fd_closure);
    }
  }

  // Fragment planning: pair every canonical rule of a predicate whose
  // cached cone fragments are present with the guard-matching replay
  // template. Rules are tried positionally first (the common unchanged
  // layout), falling back to a guard scan so clause reorders inside a
  // fingerprint-equal predicate still splice.
  FragmentSplicePlan plan;
  FragmentRecording recording;
  std::vector<std::vector<uint32_t>> rules_of(num_preds);
  std::vector<char> pred_cone_hit(num_preds, 0);
  if (cache != nullptr) {
    for (uint32_t ri = 0; ri < static_cast<uint32_t>(num_rules); ++ri) {
      rules_of[cp.rules()[ri].head.pred].push_back(ri);
    }
    std::vector<std::shared_ptr<const ConeFragment>> by_pred(num_preds);
    for (PredicateId p = 0; p < static_cast<PredicateId>(num_preds); ++p) {
      if (rules_of[p].empty()) continue;
      by_pred[p] = cache->LookupFragments(PipelineCache::FragmentKey(
          s.fps.cone[p], options.use_fd_closure));
      pred_cone_hit[p] = by_pred[p] != nullptr ? 1 : 0;
    }
    plan.by_rule.assign(num_rules, nullptr);
    for (PredicateId p = 0; p < static_cast<PredicateId>(num_preds); ++p) {
      const ConeFragment* cone = by_pred[p].get();
      if (cone == nullptr) continue;
      for (uint32_t ord = 0; ord < rules_of[p].size(); ++ord) {
        uint32_t ri = rules_of[p][ord];
        uint64_t guard = guards[ri];
        const RuleFragment* match = nullptr;
        if (ord < cone->rules.size() && cone->rules[ord].guard == guard) {
          match = &cone->rules[ord];
        } else {
          for (const RuleFragment& rf : cone->rules) {
            if (rf.guard == guard) {
              match = &rf;
              break;
            }
          }
        }
        plan.by_rule[ri] = match;
      }
      plan.pinned.push_back(std::move(by_pred[p]));
    }
    bopts.splice = &plan;
    bopts.recording = &recording;
  }

  HORNSAFE_ASSIGN_OR_RETURN(
      s.adorned,
      BuildAdornedProgram(cp,
                          cache != nullptr ? &cache->adornments() : nullptr,
                          cache != nullptr ? &plan : nullptr));
  s.stats.stage_adorn_ns = timer.LapNs();

  // Segment planning (DESIGN.md, D15): partition the canonical rules
  // into weakly connected predicate components and look each one up in
  // the segment tier. The key folds the component's ordered rule-guard
  // sequence, the emptiness bits of its predicates and the prune-mode
  // flags — everything the build + prune + condensation of that span
  // read — so a hit replays the post-prune span bit-identically and
  // only the edited component re-interns. Non-contiguous partitions
  // (clause interleaving across components) skip the path entirely.
  SegmentPlan seg_plan;
  SegmentBuildStats seg_stats;
  std::vector<uint64_t> comp_hashes;
  const uint32_t seg_mode_bits = (options.use_fd_closure ? 1u : 0u) |
                                 (options.apply_emptiness ? 2u : 0u) |
                                 (options.apply_reduction ? 4u : 0u);
  bool segments_active = false;
  if (cache != nullptr) {
    ComponentPartition partition = ComputeComponentPartition(cp);
    if (partition.contiguous && !partition.components.empty()) {
      segments_active = true;
      seg_plan.components.reserve(partition.components.size());
      comp_hashes.reserve(partition.components.size());
      for (const PredicateComponent& comp : partition.components) {
        uint64_t h = MixHash(0x7365676d656e7430ULL);
        for (uint32_t ri = comp.first_rule;
             ri < comp.first_rule + comp.num_rules; ++ri) {
          h = CombineHash(h, guards[ri]);
        }
        SegmentGraft g;
        g.first_rule = comp.first_rule;
        g.num_rules = comp.num_rules;
        g.pred_of_slot = ComponentPredSlots(cp, comp);
        for (PredicateId p : g.pred_of_slot) {
          bool is_empty =
              empty && p < static_cast<PredicateId>(empty->size()) &&
              (*empty)[p];
          h = CombineHash(h, is_empty ? 1u : 0u);
        }
        h = CombineHash(h, comp.num_rules);
        comp_hashes.push_back(h);
        g.segment =
            cache->LookupSegment(PipelineCache::SegmentKey(h, seg_mode_bits));
        seg_plan.components.push_back(std::move(g));
      }
      bopts.segments = &seg_plan;
      bopts.segment_stats = &seg_stats;
    }
  }

  HORNSAFE_ASSIGN_OR_RETURN(s.system,
                            BuildAndOrSystem(cp, s.adorned, bopts));
  s.stats.fragments_spliced = recording.rules_spliced;
  s.stats.fragments_rebuilt = recording.rules_rebuilt;

  // Assemble and publish fragments for predicates whose cone missed the
  // cache: their rules were all processed fresh, so the recording holds
  // a complete template set (unless the recorder abandoned a rule, in
  // which case that predicate is skipped rather than cached with holes).
  if (cache != nullptr) {
    std::vector<RuleFragment> per_rule(num_rules);
    std::vector<char> rule_complete(num_rules, 1);
    for (const AdornedRule& ar : s.adorned.rules) {
      RuleFragment& rf = per_rule[ar.source_rule];
      rf.adornment_masks.push_back(ar.adornment.bound_mask);
      std::unique_ptr<AdornedRuleTemplate>& tmpl =
          recording.by_adorned[ar.adorned_index];
      if (tmpl != nullptr) {
        rf.per_adornment.push_back(std::move(*tmpl));
      } else {
        rule_complete[ar.source_rule] = 0;
      }
    }
    for (PredicateId p = 0; p < static_cast<PredicateId>(num_preds); ++p) {
      if (rules_of[p].empty() || pred_cone_hit[p]) continue;
      bool complete = true;
      for (uint32_t ri : rules_of[p]) complete &= rule_complete[ri] != 0;
      if (!complete) continue;
      auto cone = std::make_shared<ConeFragment>();
      cone->rules.reserve(rules_of[p].size());
      for (uint32_t ri : rules_of[p]) {
        RuleFragment rf = std::move(per_rule[ri]);
        rf.guard = guards[ri];
        cone->rules.push_back(std::move(rf));
      }
      cache->StoreFragments(
          PipelineCache::FragmentKey(s.fps.cone[p], options.use_fd_closure),
          std::move(cone));
    }
  }
  s.stats.stage_build_ns = timer.LapNs();

  s.stats.canonical_rules = cp.rules().size();
  s.stats.adorned_rules = s.adorned.rules.size();
  s.stats.nodes = s.system.nodes().size();
  s.stats.rules_total = s.system.num_rules();

  // Prune scope: grafted spans were encoded post-prune (their deleted
  // bits replayed at graft time), so Algorithms 3 and 4 only visit the
  // freshly built spans; the grafted spans' tallies are stitched from
  // the segments. Without the segment path both run globally, exactly
  // as before. Prune is component-local (rules only reference nodes of
  // their own component, plus the shared terminals), so the scoped runs
  // produce the same deleted set as the global ones.
  const std::vector<SegmentSpan>& spans = s.system.spans();
  const bool span_path = segments_active && !spans.empty();
  if (options.apply_emptiness) {
    size_t pruned = 0;
    if (span_path) {
      std::vector<std::pair<uint32_t, uint32_t>> fresh_rules;
      for (const SegmentSpan& sp : spans) {
        if (sp.grafted) {
          pruned += sp.segment->pruned_emptiness;
        } else {
          fresh_rules.emplace_back(sp.rule_begin, sp.rule_end);
        }
      }
      pruned += ApplyEmptinessPruningRanges(*empty, &s.system, fresh_rules);
    } else {
      pruned = ApplyEmptinessPruning(*empty, &s.system);
    }
    s.stats.rules_pruned_emptiness = pruned;
  }
  if (options.apply_reduction) {
    size_t pruned = 0;
    if (span_path) {
      std::vector<ReduceRange> fresh_ranges;
      for (const SegmentSpan& sp : spans) {
        if (sp.grafted) {
          pruned += sp.segment->pruned_reduction;
        } else {
          fresh_ranges.push_back({sp.node_begin, sp.node_end,
                                  sp.rule_begin, sp.rule_end});
        }
      }
      if (!fresh_ranges.empty()) {
        pruned += ReduceSystemInRanges(&s.system, fresh_ranges).rules_deleted;
      }
    } else {
      pruned = ReduceSystem(&s.system).rules_deleted;
    }
    s.stats.rules_pruned_reduction = pruned;
  }
  s.stats.rules_live = s.system.NumLiveRules();
  s.stats.stage_prune_ns += timer.LapNs();

  if (options.use_monotonicity && !s.canon->program.monos().empty()) {
    s.mono = std::make_unique<MonotonicityAnalyzer>(s.canon->program,
                                                    s.adorned, s.system);
  }
  // The condensation depends on the live rule set, so it is computed
  // after pruning and then shared (read-only) by every subset search,
  // including ones running concurrently on pool threads. On the span
  // path it is stitched from per-span slices — grafted spans replay
  // the slice stored with their segment, fresh spans compute theirs —
  // which is bit-identical to the global computation (scc.h). Any
  // slice or stitch failure falls back to the global pass.
  std::vector<std::optional<SccSlice>> fresh_slices;
  if (span_path) {
    fresh_slices.resize(spans.size());
    bool sliced = true;
    std::vector<const SccSlice*> pieces;
    pieces.reserve(spans.size());
    for (size_t i = 0; i < spans.size() && sliced; ++i) {
      const SegmentSpan& sp = spans[i];
      if (sp.grafted) {
        pieces.push_back(&sp.segment->scc);
        continue;
      }
      fresh_slices[i] = SccAnalysis::ComputeSlice(
          s.system, sp.node_begin, sp.node_end, sp.rule_begin, sp.rule_end);
      if (fresh_slices[i]) {
        pieces.push_back(&*fresh_slices[i]);
      } else {
        sliced = false;
      }
    }
    if (sliced) {
      if (std::optional<SccAnalysis> stitched =
              SccAnalysis::Stitch(s.system, pieces)) {
        s.scc = std::make_unique<SccAnalysis>(std::move(*stitched));
      }
    }
  }
  if (s.scc == nullptr) {
    s.scc = std::make_unique<SccAnalysis>(SccAnalysis::Compute(s.system));
  }

  // Seal: encode every freshly built span (with its slice and deleted
  // bits) into the segment tier, and attach the resident segment to the
  // snapshot so pinned readers keep it alive across cache eviction.
  // Spans that do not relocate cleanly are simply not cached.
  if (span_path && cache != nullptr) {
    const std::vector<bool> no_empty;
    for (size_t i = 0;
         i < spans.size() && i < seg_plan.components.size(); ++i) {
      const SegmentSpan& sp = spans[i];
      if (sp.grafted || !fresh_slices[i]) continue;
      std::shared_ptr<const NodeTableSegment> seg = EncodeSegment(
          s.system, s.adorned, empty ? *empty : no_empty,
          seg_plan.components[i].pred_of_slot, sp.node_begin, sp.node_end,
          sp.rule_begin, sp.rule_end, sp.ar_begin, sp.ar_end, sp.occ_base,
          sp.occ_count, std::move(*fresh_slices[i]));
      if (seg == nullptr) continue;
      std::shared_ptr<const NodeTableSegment> resident = cache->StoreSegment(
          PipelineCache::SegmentKey(comp_hashes[i], seg_mode_bits),
          std::move(seg));
      if (resident != nullptr) {
        s.system.AttachSegment(i, std::move(resident));
        ++s.stats.segments_encoded;
      }
    }
  }
  s.stats.stage_scc_ns = timer.LapNs();

  s.stats.segments_total = seg_stats.segments_total;
  s.stats.segments_grafted = seg_stats.segments_grafted;
  s.stats.segment_grafts_rejected = seg_stats.grafts_rejected;
  s.stats.nodes_shared = seg_stats.nodes_shared;
  s.stats.nodes_owned = seg_stats.nodes_owned;
  for (const SegmentSpan& sp : s.system.spans()) {
    if (sp.segment != nullptr) {
      ++s.stats.segments_live;
      s.stats.node_table_bytes += sp.segment->MemoryBytes();
    }
  }

  // Everything besides the cone that can influence a search's verdict
  // *or its step count*: option flags and budget, whether the Theorem 5
  // escape is active (it disables the SCC/memo short-circuits
  // program-wide), and whether the condensation materialised its reach
  // bitsets (it degrades the frontier memo when too wide).
  uint64_t ctx = MixHash(0x686f726e63747834ULL);
  uint64_t bits = (options.apply_emptiness ? 1u : 0u) |
                  (options.apply_reduction ? 2u : 0u) |
                  (options.use_monotonicity ? 4u : 0u) |
                  (options.use_fd_closure ? 8u : 0u) |
                  (CanonicalizeOptionBits(options.canonicalize) << 4);
  ctx = CombineHash(ctx, bits);
  ctx = CombineHash(ctx, options.subset_budget);
  ctx = CombineHash(ctx, s.mono != nullptr ? 1 : 0);
  ctx = CombineHash(ctx, s.scc->has_reach_sets() ? 1 : 0);
  s.context_hash = ctx;

  return std::shared_ptr<const AnalysisSnapshot>(std::move(snap));
}

Result<SafetyAnalyzer> SafetyAnalyzer::Create(
    const Program& program, const AnalyzerOptions& options) {
  SafetyAnalyzer a;
  a.shared_ = std::make_shared<Shared>();
  a.shared_->default_exec = options.exec;
  HORNSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const AnalysisSnapshot> snap,
                            BuildSnapshot(program, options));
  a.FoldBuildStats(snap->stats);
  a.shared_->snapshot = std::move(snap);
  return a;
}

void SafetyAnalyzer::FoldBuildStats(const AnalysisSnapshot::Stats& stats) {
  SharedCounters& c = shared_->counters;
  c.stage_canonicalize_ns.fetch_add(stats.stage_canonicalize_ns,
                                    std::memory_order_relaxed);
  c.stage_fingerprint_ns.fetch_add(stats.stage_fingerprint_ns,
                                   std::memory_order_relaxed);
  c.stage_fd_ns.fetch_add(stats.stage_fd_ns, std::memory_order_relaxed);
  c.stage_adorn_ns.fetch_add(stats.stage_adorn_ns,
                             std::memory_order_relaxed);
  c.stage_build_ns.fetch_add(stats.stage_build_ns,
                             std::memory_order_relaxed);
  c.stage_prune_ns.fetch_add(stats.stage_prune_ns,
                             std::memory_order_relaxed);
  c.stage_scc_ns.fetch_add(stats.stage_scc_ns, std::memory_order_relaxed);
  c.fragments_spliced.fetch_add(stats.fragments_spliced,
                                std::memory_order_relaxed);
  c.fragments_rebuilt.fetch_add(stats.fragments_rebuilt,
                                std::memory_order_relaxed);
  c.segments_total.fetch_add(stats.segments_total,
                             std::memory_order_relaxed);
  c.segments_grafted.fetch_add(stats.segments_grafted,
                               std::memory_order_relaxed);
  c.segment_grafts_rejected.fetch_add(stats.segment_grafts_rejected,
                                      std::memory_order_relaxed);
  c.segments_encoded.fetch_add(stats.segments_encoded,
                               std::memory_order_relaxed);
  c.nodes_shared.fetch_add(stats.nodes_shared, std::memory_order_relaxed);
  c.nodes_owned.fetch_add(stats.nodes_owned, std::memory_order_relaxed);
  auto raise_to = [](std::atomic<uint64_t>& gauge, uint64_t seen) {
    uint64_t cur = gauge.load(std::memory_order_relaxed);
    while (cur < seen && !gauge.compare_exchange_weak(
                             cur, seen, std::memory_order_relaxed)) {
    }
  };
  raise_to(c.node_table_peak_nodes, stats.nodes);
  raise_to(c.node_table_peak_bytes, stats.node_table_bytes);
}

std::shared_ptr<const AnalysisSnapshot> SafetyAnalyzer::snapshot() const {
  std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
  return shared_->snapshot;
}

const AnalysisSnapshot& SafetyAnalyzer::snapshot_ref() const {
  std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
  return *shared_->snapshot;
}

void SafetyAnalyzer::Publish(std::shared_ptr<const AnalysisSnapshot> snap) {
  std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
  shared_->snapshot = std::move(snap);
}

ExecContext SafetyAnalyzer::default_exec() const {
  std::lock_guard<std::mutex> lock(shared_->exec_mu);
  return shared_->default_exec;
}

void SafetyAnalyzer::set_exec(const ExecContext& exec) {
  std::lock_guard<std::mutex> lock(shared_->exec_mu);
  shared_->default_exec = exec;
}

Result<SafetyAnalyzer::UpdateStats> SafetyAnalyzer::Update(
    const Program& program, const ExecContext& exec) {
  // One builder at a time; readers keep serving the published snapshot
  // for the whole build.
  std::lock_guard<std::mutex> update_lock(shared_->update_mu);
  std::shared_ptr<const AnalysisSnapshot> old = snapshot();

  // Snapshot the previous build's cone fingerprints keyed by hashed
  // (name, arity) — ids are not stable across builds, and hashing the
  // key avoids one string allocation per predicate per edit.
  std::unordered_map<uint64_t, uint64_t> old_cones;
  {
    const Program& oldp = old->canon->program;
    for (PredicateId p = 0;
         p < static_cast<PredicateId>(oldp.num_predicates()); ++p) {
      old_cones[CombineHash(HashBytes(oldp.PredicateName(p)),
                            oldp.predicate(p).arity)] = old->fps.cone[p];
    }
  }

  AnalyzerOptions build_options = old->options;
  build_options.exec = exec;
  HORNSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const AnalysisSnapshot> fresh,
                            BuildSnapshot(program, build_options));
  FoldBuildStats(fresh->stats);

  UpdateStats out;
  const Program& newp = fresh->canon->program;
  out.predicates = newp.num_predicates();
  for (PredicateId p = 0;
       p < static_cast<PredicateId>(newp.num_predicates()); ++p) {
    auto it = old_cones.find(CombineHash(HashBytes(newp.PredicateName(p)),
                                         newp.predicate(p).arity));
    if (it != old_cones.end() && it->second == fresh->fps.cone[p]) {
      ++out.clean_predicates;
    } else {
      ++out.dirty_predicates;
    }
  }

  // The swap: one pointer store under the snapshot lock. In-flight
  // analyses pinned `old` and finish against it; the next `snapshot()`
  // call sees `fresh`. Counters live outside the snapshot and carry
  // over untouched.
  Publish(std::move(fresh));
  shared_->counters.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
  if (build_options.cache != nullptr) {
    build_options.cache->NoteInvalidatedCones(out.dirty_predicates);
  }
  return out;
}

Result<SafetyAnalyzer::UpdateStats> SafetyAnalyzer::Update(
    const Program& program) {
  return Update(program, default_exec());
}

SubsetOptions SafetyAnalyzer::MakeSubsetOptions(const AnalysisSnapshot& snap,
                                                const ExecContext& exec) {
  SubsetOptions opts;
  opts.budget = snap.options.subset_budget;
  opts.exec = exec;
  if (snap.mono) opts.escape = snap.mono->MakeEscape();
  opts.scc = snap.scc.get();
  return opts;
}

std::shared_ptr<ThreadPool> SafetyAnalyzer::Pool(size_t threads) {
  std::lock_guard<std::mutex> lock(shared_->pool_mu);
  if (!shared_->pool || shared_->pool->num_threads() < threads) {
    // Grow-only replacement: an analysis mid-flight on the old pool
    // holds its own shared_ptr copy, so the old workers drain and join
    // only after the last user releases it.
    shared_->pool = std::make_shared<ThreadPool>(threads);
  }
  return shared_->pool;
}

SafetyAnalyzer::Counters SafetyAnalyzer::counters() const {
  const SharedCounters& sc = shared_->counters;
  Counters c;
  c.positions_analyzed = sc.positions_analyzed.load(std::memory_order_relaxed);
  c.subset_searches = sc.subset_searches.load(std::memory_order_relaxed);
  c.steps = sc.steps.load(std::memory_order_relaxed);
  c.graphs_checked = sc.graphs_checked.load(std::memory_order_relaxed);
  c.memo_hits = sc.memo_hits.load(std::memory_order_relaxed);
  c.memo_misses = sc.memo_misses.load(std::memory_order_relaxed);
  c.scc_short_circuits =
      sc.scc_short_circuits.load(std::memory_order_relaxed);
  c.parallel_tasks = sc.parallel_tasks.load(std::memory_order_relaxed);
  c.serial_tasks = sc.serial_tasks.load(std::memory_order_relaxed);
  c.cache_hits = sc.cache_hits.load(std::memory_order_relaxed);
  c.cache_misses = sc.cache_misses.load(std::memory_order_relaxed);
  c.snapshot_swaps = sc.snapshot_swaps.load(std::memory_order_relaxed);
  c.stage_canonicalize_ns =
      sc.stage_canonicalize_ns.load(std::memory_order_relaxed);
  c.stage_fingerprint_ns =
      sc.stage_fingerprint_ns.load(std::memory_order_relaxed);
  c.stage_fd_ns = sc.stage_fd_ns.load(std::memory_order_relaxed);
  c.stage_adorn_ns = sc.stage_adorn_ns.load(std::memory_order_relaxed);
  c.stage_build_ns = sc.stage_build_ns.load(std::memory_order_relaxed);
  c.stage_prune_ns = sc.stage_prune_ns.load(std::memory_order_relaxed);
  c.stage_scc_ns = sc.stage_scc_ns.load(std::memory_order_relaxed);
  c.stage_search_ns = sc.stage_search_ns.load(std::memory_order_relaxed);
  c.fragments_spliced = sc.fragments_spliced.load(std::memory_order_relaxed);
  c.fragments_rebuilt = sc.fragments_rebuilt.load(std::memory_order_relaxed);
  c.segments_total = sc.segments_total.load(std::memory_order_relaxed);
  c.segments_grafted = sc.segments_grafted.load(std::memory_order_relaxed);
  c.segment_grafts_rejected =
      sc.segment_grafts_rejected.load(std::memory_order_relaxed);
  c.segments_encoded = sc.segments_encoded.load(std::memory_order_relaxed);
  c.nodes_shared = sc.nodes_shared.load(std::memory_order_relaxed);
  c.nodes_owned = sc.nodes_owned.load(std::memory_order_relaxed);
  c.node_table_peak_nodes =
      sc.node_table_peak_nodes.load(std::memory_order_relaxed);
  c.node_table_peak_bytes =
      sc.node_table_peak_bytes.load(std::memory_order_relaxed);
  return c;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(const AnalysisSnapshot& snap,
                                               PredicateId pred,
                                               uint64_t adornment_mask,
                                               const ExecContext& exec) {
  const Program& p = snap.canon->program;
  const AndOrSystem& system = snap.system;
  PipelineCache* cache = snap.options.cache;
  SharedCounters& counters = shared_->counters;
  QueryAnalysis out;
  const uint32_t arity = p.predicate(pred).arity;
  // Synthesise a display literal from the pre-interned variables (the
  // snapshot is frozen: nothing on this path may touch the term pool).
  Literal lit;
  lit.pred = pred;
  for (uint32_t k = 0; k < arity; ++k) {
    lit.args.push_back(snap.display_vars[k]);
  }
  out.query = lit;

  SubsetOptions sopts = MakeSubsetOptions(snap, exec);

  // Classify (read-only against the frozen snapshot) and collect the
  // argument positions that need an actual subset search. Positions
  // whose (cone fingerprint, context, adornment, position) key hits the
  // pipeline cache are resolved right here without searching.
  struct SearchJob {
    uint32_t position = 0;
    NodeId root = kInvalidNode;
    CacheKey key;
    bool has_key = false;
    SubsetResult res;
  };
  std::vector<ArgumentVerdict> verdicts(arity);
  std::vector<SearchJob> searches;
  for (uint32_t k = 0; k < arity; ++k) {
    ArgumentVerdict& v = verdicts[k];
    v.position = k;
    if ((adornment_mask >> k) & 1) {
      v.safety = Safety::kSafe;
      v.explanation = "bound by the query";
    } else if (p.IsFiniteBase(pred)) {
      v.safety = Safety::kSafe;
      v.explanation = "finite base predicate";
    } else if (p.IsInfiniteBase(pred)) {
      // A free argument of a bare infinite-EDB query (Example 14) is
      // safe only if finitely determined by the bound arguments.
      AttrSet bound(adornment_mask);
      bool determined = false;
      for (const FiniteDependency& fd : p.FdsFor(pred)) {
        if (fd.lhs.SubsetOf(bound) && fd.rhs.Contains(k)) determined = true;
      }
      v.safety = determined ? Safety::kSafe : Safety::kUnsafe;
      v.explanation = determined
                          ? "finitely determined by bound arguments"
                          : "free argument of an infinite base predicate";
    } else {
      SearchJob job;
      job.position = k;
      job.root = system.FindHeadArg(pred, adornment_mask, k);
      if (cache != nullptr && pred < snap.fps.cone.size()) {
        job.key = MakeVerdictKey(snap.fps.cone[pred], snap.context_hash,
                                 adornment_mask, k);
        job.has_key = true;
        if (std::optional<CachedVerdict> hit = cache->Lookup(job.key)) {
          v.safety = hit->verdict;
          v.explanation = std::move(hit->explanation);
          v.steps = hit->steps;
          v.graphs_checked = hit->graphs_checked;
          // Only kNone/kBudget outcomes are ever stored (deadline- and
          // cancellation-degraded verdicts are transient), so the stop
          // reason reconstructs from the verdict bit-identically.
          v.stop = hit->verdict == Safety::kUndecided ? StopReason::kBudget
                                                      : StopReason::kNone;
          counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        counters.cache_misses.fetch_add(1, std::memory_order_relaxed);
      }
      searches.push_back(std::move(job));
    }
  }

  // Run the searches — the expensive part — across the pool when asked.
  // Each position gets its own budget and fresh memo table, so every
  // SubsetResult is independent of scheduling; only the aggregate
  // steps tally is shared (and atomic).
  size_t want = snap.options.jobs <= 0
                    ? ThreadPool::DefaultThreads()
                    : static_cast<size_t>(snap.options.jobs);
  StageTimer search_timer;
  if (want > 1 && searches.size() > 1) {
    std::shared_ptr<ThreadPool> pool =
        Pool(std::min(want, searches.size()));
    std::vector<std::future<void>> done;
    done.reserve(searches.size());
    for (SearchJob& job : searches) {
      done.push_back(pool->Submit([&snap, &job, &sopts, &counters] {
        job.res = CheckSubsetCondition(snap.system, job.root, sopts);
        counters.steps.fetch_add(job.res.steps, std::memory_order_relaxed);
      }));
    }
    for (std::future<void>& f : done) f.get();
    counters.parallel_tasks.fetch_add(searches.size(),
                                      std::memory_order_relaxed);
  } else {
    for (SearchJob& job : searches) {
      job.res = CheckSubsetCondition(system, job.root, sopts);
      counters.steps.fetch_add(job.res.steps, std::memory_order_relaxed);
    }
    counters.serial_tasks.fetch_add(searches.size(),
                                    std::memory_order_relaxed);
  }
  if (!searches.empty()) {
    counters.stage_search_ns.fetch_add(search_timer.LapNs(),
                                       std::memory_order_relaxed);
  }

  // Deterministic merge: verdicts, explanations, and counters are
  // folded in position order on this thread.
  for (const SearchJob& job : searches) {
    ArgumentVerdict& v = verdicts[job.position];
    const SubsetResult& res = job.res;
    v.safety = res.verdict;
    v.stop = res.stop_reason;
    v.steps = res.steps;
    v.graphs_checked = res.graphs_checked;
    switch (res.verdict) {
      case Safety::kSafe:
        v.explanation =
            job.root == kInvalidNode || system.RulesFor(job.root).empty()
                ? "no rule can bind this argument (empty predicate)"
                : StrCat("every AND-graph satisfies the subset condition (",
                         res.graphs_checked, " graphs checked)");
        break;
      case Safety::kUnsafe:
        v.explanation = res.witness
                            ? res.witness->Describe(system, p)
                            : "counterexample AND-graph found";
        break;
      case Safety::kUndecided:
        switch (res.stop_reason) {
          case StopReason::kDeadline:
            v.explanation = StrCat("analysis deadline exceeded (",
                                   res.steps, " steps spent)");
            break;
          case StopReason::kCancelled:
            v.explanation =
                StrCat("analysis cancelled (", res.steps, " steps spent)");
            break;
          default:
            v.explanation = StrCat("search budget exhausted after ",
                                   res.steps, " steps");
            break;
        }
        break;
    }
    // Publish safe/undecided outcomes (kUnsafe witness text embeds
    // global node ids that shift under edits; see DESIGN.md, D12).
    // Deadline- and cancellation-degraded verdicts reflect this
    // request's wall clock, not the program — a later request with more
    // time must redo them, so they never enter the cache.
    if (cache != nullptr && job.has_key &&
        res.verdict != Safety::kUnsafe &&
        (res.stop_reason == StopReason::kNone ||
         res.stop_reason == StopReason::kBudget)) {
      CachedVerdict cv;
      cv.verdict = res.verdict;
      cv.steps = res.steps;
      cv.graphs_checked = res.graphs_checked;
      cv.memo_hits = res.memo_hits;
      cv.memo_misses = res.memo_misses;
      cv.scc_short_circuits = res.scc_short_circuits;
      cv.explanation = v.explanation;
      cache->Store(job.key, cv);
    }
    counters.subset_searches.fetch_add(1, std::memory_order_relaxed);
    counters.graphs_checked.fetch_add(res.graphs_checked,
                                      std::memory_order_relaxed);
    counters.memo_hits.fetch_add(res.memo_hits, std::memory_order_relaxed);
    counters.memo_misses.fetch_add(res.memo_misses,
                                   std::memory_order_relaxed);
    counters.scc_short_circuits.fetch_add(res.scc_short_circuits,
                                          std::memory_order_relaxed);
  }
  counters.positions_analyzed.fetch_add(arity, std::memory_order_relaxed);

  bool any_unsafe = false;
  bool any_undecided = false;
  for (ArgumentVerdict& v : verdicts) {
    any_unsafe |= (v.safety == Safety::kUnsafe);
    any_undecided |= (v.safety == Safety::kUndecided);
    out.args.push_back(std::move(v));
  }
  out.overall = any_unsafe      ? Safety::kUnsafe
                : any_undecided ? Safety::kUndecided
                                : Safety::kSafe;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const AnalysisSnapshot& snap,
                                                  const Literal& query,
                                                  const ExecContext& exec) {
  // Canonical queries have all-distinct-variable arguments, so the
  // relevant adornment is all-free.
  QueryAnalysis out = AnalyzePredicate(snap, query.pred, 0, exec);
  out.query = query;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(PredicateId pred,
                                               uint64_t adornment_mask) {
  std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  return AnalyzePredicate(*snap, pred, adornment_mask, default_exec());
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const Literal& query) {
  std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  return AnalyzeQueryLiteral(*snap, query, default_exec());
}

std::vector<QueryAnalysis> SafetyAnalyzer::AnalyzeQueries() {
  std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  ExecContext exec = default_exec();
  std::vector<QueryAnalysis> out;
  for (const Literal& q : snap->canon->program.queries()) {
    out.push_back(AnalyzeQueryLiteral(*snap, q, exec));
  }
  return out;
}

}  // namespace hornsafe
