#include "core/analyzer.h"

#include "andor/build.h"
#include "andor/emptiness.h"
#include "andor/lfp.h"
#include "andor/reduce.h"
#include "util/strings.h"

namespace hornsafe {

std::string QueryAnalysis::Summary(const Program& program) const {
  std::string out =
      StrCat(program.ToString(query), ": ", SafetyName(overall));
  if (!args.empty()) {
    out += " [";
    out += JoinMapped(args, ", ", [](const ArgumentVerdict& a) {
      return StrCat(a.position + 1, "=", SafetyName(a.safety));
    });
    out += "]";
  }
  return out;
}

Result<SafetyAnalyzer> SafetyAnalyzer::Create(
    const Program& program, const AnalyzerOptions& options) {
  SafetyAnalyzer a;
  a.state_ = std::make_unique<State>();
  State& s = *a.state_;
  s.options = options;

  HORNSAFE_RETURN_IF_ERROR(program.Validate());
  HORNSAFE_ASSIGN_OR_RETURN(s.canon,
                            Canonicalize(program, options.canonicalize));
  HORNSAFE_ASSIGN_OR_RETURN(s.adorned, BuildAdornedProgram(s.canon.program));
  BuildOptions bopts;
  bopts.use_fd_closure = options.use_fd_closure;
  HORNSAFE_ASSIGN_OR_RETURN(
      s.system, BuildAndOrSystem(s.canon.program, s.adorned, bopts));

  s.stats.canonical_rules = s.canon.program.rules().size();
  s.stats.adorned_rules = s.adorned.rules.size();
  s.stats.nodes = s.system.nodes().size();
  s.stats.rules_total = s.system.num_rules();

  if (options.apply_emptiness) {
    s.stats.rules_pruned_emptiness =
        ApplyEmptinessPruning(EmptyPredicates(s.canon.program), &s.system);
  }
  if (options.apply_reduction) {
    s.stats.rules_pruned_reduction = ReduceSystem(&s.system).rules_deleted;
  }
  s.stats.rules_live = s.system.NumLiveRules();

  if (options.use_monotonicity && !s.canon.program.monos().empty()) {
    s.mono = std::make_unique<MonotonicityAnalyzer>(s.canon.program,
                                                    s.adorned, s.system);
  }
  return a;
}

SubsetOptions SafetyAnalyzer::MakeSubsetOptions() {
  SubsetOptions opts;
  opts.budget = state_->options.subset_budget;
  if (state_->mono) opts.escape = state_->mono->MakeEscape();
  return opts;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(PredicateId pred,
                                               uint64_t adornment_mask) {
  Program& p = state_->canon.program;
  const AndOrSystem& system = state_->system;
  QueryAnalysis out;
  const uint32_t arity = p.predicate(pred).arity;
  // Synthesise a display literal with fresh variables.
  Literal lit;
  lit.pred = pred;
  for (uint32_t k = 0; k < arity; ++k) {
    lit.args.push_back(p.Var(StrCat("A", k + 1)));
  }
  out.query = lit;

  SubsetOptions sopts = MakeSubsetOptions();
  bool any_unsafe = false;
  bool any_undecided = false;
  for (uint32_t k = 0; k < arity; ++k) {
    ArgumentVerdict v;
    v.position = k;
    if ((adornment_mask >> k) & 1) {
      v.safety = Safety::kSafe;
      v.explanation = "bound by the query";
    } else if (p.IsFiniteBase(pred)) {
      v.safety = Safety::kSafe;
      v.explanation = "finite base predicate";
    } else if (p.IsInfiniteBase(pred)) {
      // A free argument of a bare infinite-EDB query (Example 14) is
      // safe only if finitely determined by the bound arguments.
      AttrSet bound(adornment_mask);
      bool determined = false;
      for (const FiniteDependency& fd : p.FdsFor(pred)) {
        if (fd.lhs.SubsetOf(bound) && fd.rhs.Contains(k)) determined = true;
      }
      v.safety = determined ? Safety::kSafe : Safety::kUnsafe;
      v.explanation = determined
                          ? "finitely determined by bound arguments"
                          : "free argument of an infinite base predicate";
    } else {
      NodeId root = system.FindHeadArg(pred, adornment_mask, k);
      SubsetResult res = CheckSubsetCondition(system, root, sopts);
      v.safety = res.verdict;
      switch (res.verdict) {
        case Safety::kSafe:
          v.explanation =
              root == kInvalidNode || system.RulesFor(root).empty()
                  ? "no rule can bind this argument (empty predicate)"
                  : StrCat("every AND-graph satisfies the subset condition (",
                           res.graphs_checked, " graphs checked)");
          break;
        case Safety::kUnsafe:
          v.explanation = res.witness
                              ? res.witness->Describe(system, p)
                              : "counterexample AND-graph found";
          break;
        case Safety::kUndecided:
          v.explanation =
              StrCat("search budget exhausted after ", res.steps, " steps");
          break;
      }
    }
    any_unsafe |= (v.safety == Safety::kUnsafe);
    any_undecided |= (v.safety == Safety::kUndecided);
    out.args.push_back(std::move(v));
  }
  out.overall = any_unsafe      ? Safety::kUnsafe
                : any_undecided ? Safety::kUndecided
                                : Safety::kSafe;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const Literal& query) {
  // Canonical queries have all-distinct-variable arguments, so the
  // relevant adornment is all-free.
  QueryAnalysis out = AnalyzePredicate(query.pred, 0);
  out.query = query;
  return out;
}

std::vector<QueryAnalysis> SafetyAnalyzer::AnalyzeQueries() {
  std::vector<QueryAnalysis> out;
  std::vector<Literal> queries = state_->canon.program.queries();
  for (const Literal& q : queries) {
    out.push_back(AnalyzeQueryLiteral(q));
  }
  return out;
}

}  // namespace hornsafe
