#include "core/analyzer.h"

#include <algorithm>
#include <future>

#include "andor/build.h"
#include "andor/emptiness.h"
#include "andor/lfp.h"
#include "andor/reduce.h"
#include "lang/struct_hash.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

uint64_t CanonicalizeOptionBits(const CanonicalizeOptions& o) {
  return (o.add_function_fds ? 1u : 0u) |
         (o.add_constructor_fds ? 2u : 0u) |
         (o.add_constructor_monos ? 4u : 0u);
}

/// Builds the 128-bit verdict-tier key for one search: the predicate's
/// cone fingerprint plus the analysis context, adornment and position.
/// `hi` re-derives the same inputs under independent seeds.
CacheKey MakeVerdictKey(uint64_t cone_fp, uint64_t context_hash,
                        uint64_t adornment_mask, uint32_t position) {
  uint64_t lo = CombineHash(cone_fp, context_hash);
  lo = CombineHash(lo, adornment_mask);
  lo = CombineHash(lo, position);
  uint64_t hi = MixHash(cone_fp ^ 0x5ca1ab1e5eed0001ULL);
  hi = CombineHash(hi, MixHash(context_hash ^ 0x0ddba11d00000002ULL));
  hi = CombineHash(hi, adornment_mask + 1);
  hi = CombineHash(hi, position + 0x10000u);
  return {hi, lo};
}

}  // namespace

std::string QueryAnalysis::Summary(const Program& program) const {
  std::string out =
      StrCat(program.ToString(query), ": ", SafetyName(overall));
  if (!args.empty()) {
    out += " [";
    out += JoinMapped(args, ", ", [](const ArgumentVerdict& a) {
      return StrCat(a.position + 1, "=", SafetyName(a.safety));
    });
    out += "]";
  }
  return out;
}

Result<std::unique_ptr<SafetyAnalyzer::State>> SafetyAnalyzer::BuildState(
    const Program& program, const AnalyzerOptions& options) {
  auto state = std::make_unique<State>();
  State& s = *state;
  s.options = options;
  PipelineCache* cache = options.cache;

  HORNSAFE_RETURN_IF_ERROR(program.Validate());
  HORNSAFE_RETURN_IF_ERROR(options.exec.Check("analyzer build"));

  // Algorithm 1, behind the canonicalization tier: keyed on the strict
  // (rendered-listing) hash, so a hit replays the exact output a cold
  // run would rebuild.
  if (cache != nullptr) {
    uint64_t strict = StrictProgramHash(program);
    uint64_t bits = CanonicalizeOptionBits(options.canonicalize);
    if (auto hit = cache->LookupCanonicalization(strict, bits)) {
      s.canon = std::move(*hit);
    } else {
      HORNSAFE_ASSIGN_OR_RETURN(s.canon,
                                Canonicalize(program, options.canonicalize));
      cache->StoreCanonicalization(strict, bits, s.canon);
    }
  } else {
    HORNSAFE_ASSIGN_OR_RETURN(s.canon,
                              Canonicalize(program, options.canonicalize));
  }

  HORNSAFE_RETURN_IF_ERROR(options.exec.Check("analyzer build"));
  HORNSAFE_ASSIGN_OR_RETURN(
      s.adorned,
      BuildAdornedProgram(s.canon.program,
                          cache != nullptr ? &cache->adornments() : nullptr));
  BuildOptions bopts;
  bopts.use_fd_closure = options.use_fd_closure;
  HORNSAFE_ASSIGN_OR_RETURN(
      s.system, BuildAndOrSystem(s.canon.program, s.adorned, bopts));

  s.stats.canonical_rules = s.canon.program.rules().size();
  s.stats.adorned_rules = s.adorned.rules.size();
  s.stats.nodes = s.system.nodes().size();
  s.stats.rules_total = s.system.num_rules();

  if (options.apply_emptiness) {
    // Algorithm 3 LFP bits, behind the emptiness tier (strict-hashed on
    // the canonical program).
    std::optional<std::vector<bool>> empty;
    uint64_t canon_strict = 0;
    if (cache != nullptr) {
      canon_strict = StrictProgramHash(s.canon.program);
      empty = cache->LookupEmptiness(canon_strict);
      if (empty && empty->size() != s.canon.program.num_predicates()) {
        empty.reset();
      }
    }
    if (!empty) {
      empty = EmptyPredicates(s.canon.program);
      if (cache != nullptr) cache->StoreEmptiness(canon_strict, *empty);
    }
    s.stats.rules_pruned_emptiness = ApplyEmptinessPruning(*empty, &s.system);
  }
  if (options.apply_reduction) {
    s.stats.rules_pruned_reduction = ReduceSystem(&s.system).rules_deleted;
  }
  s.stats.rules_live = s.system.NumLiveRules();

  if (options.use_monotonicity && !s.canon.program.monos().empty()) {
    s.mono = std::make_unique<MonotonicityAnalyzer>(s.canon.program,
                                                    s.adorned, s.system);
  }
  // The condensation depends on the live rule set, so it is computed
  // after pruning and then shared (read-only) by every subset search,
  // including ones running concurrently on pool threads.
  s.scc = std::make_unique<SccAnalysis>(SccAnalysis::Compute(s.system));

  s.fps = ComputeFingerprints(s.canon.program);

  // Everything besides the cone that can influence a search's verdict
  // *or its step count*: option flags and budget, whether the Theorem 5
  // escape is active (it disables the SCC/memo short-circuits
  // program-wide), and whether the condensation materialised its reach
  // bitsets (it degrades the frontier memo when too wide).
  uint64_t ctx = MixHash(0x686f726e63747834ULL);
  uint64_t bits = (options.apply_emptiness ? 1u : 0u) |
                  (options.apply_reduction ? 2u : 0u) |
                  (options.use_monotonicity ? 4u : 0u) |
                  (options.use_fd_closure ? 8u : 0u) |
                  (CanonicalizeOptionBits(options.canonicalize) << 4);
  ctx = CombineHash(ctx, bits);
  ctx = CombineHash(ctx, options.subset_budget);
  ctx = CombineHash(ctx, s.mono != nullptr ? 1 : 0);
  ctx = CombineHash(ctx, s.scc->has_reach_sets() ? 1 : 0);
  s.context_hash = ctx;

  return state;
}

Result<SafetyAnalyzer> SafetyAnalyzer::Create(
    const Program& program, const AnalyzerOptions& options) {
  SafetyAnalyzer a;
  HORNSAFE_ASSIGN_OR_RETURN(a.state_, BuildState(program, options));
  return a;
}

Result<SafetyAnalyzer::UpdateStats> SafetyAnalyzer::Update(
    const Program& program) {
  // Snapshot the previous build's cone fingerprints by predicate
  // name/arity (ids are not stable across builds).
  std::unordered_map<std::string, uint64_t> old_cones;
  {
    const Program& oldp = state_->canon.program;
    for (PredicateId p = 0;
         p < static_cast<PredicateId>(oldp.num_predicates()); ++p) {
      old_cones[StrCat(oldp.PredicateName(p), "/",
                       oldp.predicate(p).arity)] = state_->fps.cone[p];
    }
  }

  HORNSAFE_ASSIGN_OR_RETURN(std::unique_ptr<State> fresh,
                            BuildState(program, state_->options));

  UpdateStats out;
  const Program& newp = fresh->canon.program;
  out.predicates = newp.num_predicates();
  for (PredicateId p = 0;
       p < static_cast<PredicateId>(newp.num_predicates()); ++p) {
    auto it = old_cones.find(
        StrCat(newp.PredicateName(p), "/", newp.predicate(p).arity));
    if (it != old_cones.end() && it->second == fresh->fps.cone[p]) {
      ++out.clean_predicates;
    } else {
      ++out.dirty_predicates;
    }
  }

  // Cumulative counters survive the swap.
  fresh->counters = state_->counters;
  fresh->steps_spent.store(
      state_->steps_spent.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  state_ = std::move(fresh);
  if (state_->options.cache != nullptr) {
    state_->options.cache->NoteInvalidatedCones(out.dirty_predicates);
  }
  return out;
}

SubsetOptions SafetyAnalyzer::MakeSubsetOptions() {
  SubsetOptions opts;
  opts.budget = state_->options.subset_budget;
  opts.exec = state_->options.exec;
  if (state_->mono) opts.escape = state_->mono->MakeEscape();
  opts.scc = state_->scc.get();
  return opts;
}

ThreadPool& SafetyAnalyzer::Pool(size_t threads) {
  if (!state_->pool || state_->pool->num_threads() < threads) {
    // Replacing the pool joins the old workers first (no task is in
    // flight here: the pool is only touched between analyses).
    state_->pool = std::make_unique<ThreadPool>(threads);
  }
  return *state_->pool;
}

SafetyAnalyzer::Counters SafetyAnalyzer::counters() const {
  Counters c = state_->counters;
  c.steps = state_->steps_spent.load(std::memory_order_relaxed);
  return c;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(PredicateId pred,
                                               uint64_t adornment_mask) {
  Program& p = state_->canon.program;
  const AndOrSystem& system = state_->system;
  PipelineCache* cache = state_->options.cache;
  QueryAnalysis out;
  const uint32_t arity = p.predicate(pred).arity;
  // Synthesise a display literal with fresh variables.
  Literal lit;
  lit.pred = pred;
  for (uint32_t k = 0; k < arity; ++k) {
    lit.args.push_back(p.Var(StrCat("A", k + 1)));
  }
  out.query = lit;

  SubsetOptions sopts = MakeSubsetOptions();

  // Classify serially (display-literal interning above and predicate
  // lookups mutate no shared state from here on) and collect the
  // argument positions that need an actual subset search. Positions
  // whose (cone fingerprint, context, adornment, position) key hits the
  // pipeline cache are resolved right here without searching.
  struct SearchJob {
    uint32_t position = 0;
    NodeId root = kInvalidNode;
    CacheKey key;
    bool has_key = false;
    SubsetResult res;
  };
  std::vector<ArgumentVerdict> verdicts(arity);
  std::vector<SearchJob> searches;
  for (uint32_t k = 0; k < arity; ++k) {
    ArgumentVerdict& v = verdicts[k];
    v.position = k;
    if ((adornment_mask >> k) & 1) {
      v.safety = Safety::kSafe;
      v.explanation = "bound by the query";
    } else if (p.IsFiniteBase(pred)) {
      v.safety = Safety::kSafe;
      v.explanation = "finite base predicate";
    } else if (p.IsInfiniteBase(pred)) {
      // A free argument of a bare infinite-EDB query (Example 14) is
      // safe only if finitely determined by the bound arguments.
      AttrSet bound(adornment_mask);
      bool determined = false;
      for (const FiniteDependency& fd : p.FdsFor(pred)) {
        if (fd.lhs.SubsetOf(bound) && fd.rhs.Contains(k)) determined = true;
      }
      v.safety = determined ? Safety::kSafe : Safety::kUnsafe;
      v.explanation = determined
                          ? "finitely determined by bound arguments"
                          : "free argument of an infinite base predicate";
    } else {
      SearchJob job;
      job.position = k;
      job.root = system.FindHeadArg(pred, adornment_mask, k);
      if (cache != nullptr && pred < state_->fps.cone.size()) {
        job.key = MakeVerdictKey(state_->fps.cone[pred],
                                 state_->context_hash, adornment_mask, k);
        job.has_key = true;
        if (std::optional<CachedVerdict> hit = cache->Lookup(job.key)) {
          v.safety = hit->verdict;
          v.explanation = std::move(hit->explanation);
          v.steps = hit->steps;
          v.graphs_checked = hit->graphs_checked;
          // Only kNone/kBudget outcomes are ever stored (deadline- and
          // cancellation-degraded verdicts are transient), so the stop
          // reason reconstructs from the verdict bit-identically.
          v.stop = hit->verdict == Safety::kUndecided ? StopReason::kBudget
                                                      : StopReason::kNone;
          state_->counters.cache_hits += 1;
          continue;
        }
        state_->counters.cache_misses += 1;
      }
      searches.push_back(std::move(job));
    }
  }

  // Run the searches — the expensive part — across the pool when asked.
  // Each position gets its own budget and fresh memo table, so every
  // SubsetResult is independent of scheduling; only the aggregate
  // steps tally is shared (and atomic).
  size_t want = state_->options.jobs <= 0
                    ? ThreadPool::DefaultThreads()
                    : static_cast<size_t>(state_->options.jobs);
  if (want > 1 && searches.size() > 1) {
    ThreadPool& pool = Pool(std::min(want, searches.size()));
    std::vector<std::future<void>> done;
    done.reserve(searches.size());
    for (SearchJob& job : searches) {
      done.push_back(pool.Submit([this, &job, &sopts] {
        job.res = CheckSubsetCondition(state_->system, job.root, sopts);
        state_->steps_spent.fetch_add(job.res.steps,
                                      std::memory_order_relaxed);
      }));
    }
    for (std::future<void>& f : done) f.get();
    state_->counters.parallel_tasks += searches.size();
  } else {
    for (SearchJob& job : searches) {
      job.res = CheckSubsetCondition(system, job.root, sopts);
      state_->steps_spent.fetch_add(job.res.steps,
                                    std::memory_order_relaxed);
    }
    state_->counters.serial_tasks += searches.size();
  }

  // Deterministic merge: verdicts, explanations, and counters are
  // folded in position order on this thread.
  for (const SearchJob& job : searches) {
    ArgumentVerdict& v = verdicts[job.position];
    const SubsetResult& res = job.res;
    v.safety = res.verdict;
    v.stop = res.stop_reason;
    v.steps = res.steps;
    v.graphs_checked = res.graphs_checked;
    switch (res.verdict) {
      case Safety::kSafe:
        v.explanation =
            job.root == kInvalidNode || system.RulesFor(job.root).empty()
                ? "no rule can bind this argument (empty predicate)"
                : StrCat("every AND-graph satisfies the subset condition (",
                         res.graphs_checked, " graphs checked)");
        break;
      case Safety::kUnsafe:
        v.explanation = res.witness
                            ? res.witness->Describe(system, p)
                            : "counterexample AND-graph found";
        break;
      case Safety::kUndecided:
        switch (res.stop_reason) {
          case StopReason::kDeadline:
            v.explanation = StrCat("analysis deadline exceeded (",
                                   res.steps, " steps spent)");
            break;
          case StopReason::kCancelled:
            v.explanation =
                StrCat("analysis cancelled (", res.steps, " steps spent)");
            break;
          default:
            v.explanation = StrCat("search budget exhausted after ",
                                   res.steps, " steps");
            break;
        }
        break;
    }
    // Publish safe/undecided outcomes (kUnsafe witness text embeds
    // global node ids that shift under edits; see DESIGN.md, D12).
    // Deadline- and cancellation-degraded verdicts reflect this
    // request's wall clock, not the program — a later request with more
    // time must redo them, so they never enter the cache.
    if (cache != nullptr && job.has_key &&
        res.verdict != Safety::kUnsafe &&
        (res.stop_reason == StopReason::kNone ||
         res.stop_reason == StopReason::kBudget)) {
      CachedVerdict cv;
      cv.verdict = res.verdict;
      cv.steps = res.steps;
      cv.graphs_checked = res.graphs_checked;
      cv.memo_hits = res.memo_hits;
      cv.memo_misses = res.memo_misses;
      cv.scc_short_circuits = res.scc_short_circuits;
      cv.explanation = v.explanation;
      cache->Store(job.key, cv);
    }
    state_->counters.subset_searches += 1;
    state_->counters.graphs_checked += res.graphs_checked;
    state_->counters.memo_hits += res.memo_hits;
    state_->counters.memo_misses += res.memo_misses;
    state_->counters.scc_short_circuits += res.scc_short_circuits;
  }
  state_->counters.positions_analyzed += arity;

  bool any_unsafe = false;
  bool any_undecided = false;
  for (ArgumentVerdict& v : verdicts) {
    any_unsafe |= (v.safety == Safety::kUnsafe);
    any_undecided |= (v.safety == Safety::kUndecided);
    out.args.push_back(std::move(v));
  }
  out.overall = any_unsafe      ? Safety::kUnsafe
                : any_undecided ? Safety::kUndecided
                                : Safety::kSafe;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const Literal& query) {
  // Canonical queries have all-distinct-variable arguments, so the
  // relevant adornment is all-free.
  QueryAnalysis out = AnalyzePredicate(query.pred, 0);
  out.query = query;
  return out;
}

std::vector<QueryAnalysis> SafetyAnalyzer::AnalyzeQueries() {
  std::vector<QueryAnalysis> out;
  std::vector<Literal> queries = state_->canon.program.queries();
  for (const Literal& q : queries) {
    out.push_back(AnalyzeQueryLiteral(q));
  }
  return out;
}

}  // namespace hornsafe
