#include "core/analyzer.h"

#include <algorithm>
#include <future>

#include "andor/build.h"
#include "andor/emptiness.h"
#include "andor/lfp.h"
#include "andor/reduce.h"
#include "lang/struct_hash.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

uint64_t CanonicalizeOptionBits(const CanonicalizeOptions& o) {
  return (o.add_function_fds ? 1u : 0u) |
         (o.add_constructor_fds ? 2u : 0u) |
         (o.add_constructor_monos ? 4u : 0u);
}

/// Builds the 128-bit verdict-tier key for one search: the predicate's
/// cone fingerprint plus the analysis context, adornment and position.
/// `hi` re-derives the same inputs under independent seeds.
CacheKey MakeVerdictKey(uint64_t cone_fp, uint64_t context_hash,
                        uint64_t adornment_mask, uint32_t position) {
  uint64_t lo = CombineHash(cone_fp, context_hash);
  lo = CombineHash(lo, adornment_mask);
  lo = CombineHash(lo, position);
  uint64_t hi = MixHash(cone_fp ^ 0x5ca1ab1e5eed0001ULL);
  hi = CombineHash(hi, MixHash(context_hash ^ 0x0ddba11d00000002ULL));
  hi = CombineHash(hi, adornment_mask + 1);
  hi = CombineHash(hi, position + 0x10000u);
  return {hi, lo};
}

}  // namespace

std::string QueryAnalysis::Summary(const Program& program) const {
  std::string out =
      StrCat(program.ToString(query), ": ", SafetyName(overall));
  if (!args.empty()) {
    out += " [";
    out += JoinMapped(args, ", ", [](const ArgumentVerdict& a) {
      return StrCat(a.position + 1, "=", SafetyName(a.safety));
    });
    out += "]";
  }
  return out;
}

Result<std::shared_ptr<const AnalysisSnapshot>> SafetyAnalyzer::BuildSnapshot(
    const Program& program, const AnalyzerOptions& options) {
  auto snap = std::make_shared<AnalysisSnapshot>();
  AnalysisSnapshot& s = *snap;
  s.options = options;
  PipelineCache* cache = options.cache;

  HORNSAFE_RETURN_IF_ERROR(program.Validate());
  HORNSAFE_RETURN_IF_ERROR(options.exec.Check("analyzer build"));

  // Algorithm 1, behind the canonicalization tier: keyed on the strict
  // (rendered-listing) hash, so a hit replays the exact output a cold
  // run would rebuild.
  if (cache != nullptr) {
    uint64_t strict = StrictProgramHash(program);
    uint64_t bits = CanonicalizeOptionBits(options.canonicalize);
    if (auto hit = cache->LookupCanonicalization(strict, bits)) {
      s.canon = std::move(*hit);
    } else {
      HORNSAFE_ASSIGN_OR_RETURN(s.canon,
                                Canonicalize(program, options.canonicalize));
      cache->StoreCanonicalization(strict, bits, s.canon);
    }
  } else {
    HORNSAFE_ASSIGN_OR_RETURN(s.canon,
                              Canonicalize(program, options.canonicalize));
  }

  HORNSAFE_RETURN_IF_ERROR(options.exec.Check("analyzer build"));
  HORNSAFE_ASSIGN_OR_RETURN(
      s.adorned,
      BuildAdornedProgram(s.canon.program,
                          cache != nullptr ? &cache->adornments() : nullptr));
  BuildOptions bopts;
  bopts.use_fd_closure = options.use_fd_closure;
  HORNSAFE_ASSIGN_OR_RETURN(
      s.system, BuildAndOrSystem(s.canon.program, s.adorned, bopts));

  s.stats.canonical_rules = s.canon.program.rules().size();
  s.stats.adorned_rules = s.adorned.rules.size();
  s.stats.nodes = s.system.nodes().size();
  s.stats.rules_total = s.system.num_rules();

  if (options.apply_emptiness) {
    // Algorithm 3 LFP bits, behind the emptiness tier (strict-hashed on
    // the canonical program).
    std::optional<std::vector<bool>> empty;
    uint64_t canon_strict = 0;
    if (cache != nullptr) {
      canon_strict = StrictProgramHash(s.canon.program);
      empty = cache->LookupEmptiness(canon_strict);
      if (empty && empty->size() != s.canon.program.num_predicates()) {
        empty.reset();
      }
    }
    if (!empty) {
      empty = EmptyPredicates(s.canon.program);
      if (cache != nullptr) cache->StoreEmptiness(canon_strict, *empty);
    }
    s.stats.rules_pruned_emptiness = ApplyEmptinessPruning(*empty, &s.system);
  }
  if (options.apply_reduction) {
    s.stats.rules_pruned_reduction = ReduceSystem(&s.system).rules_deleted;
  }
  s.stats.rules_live = s.system.NumLiveRules();

  if (options.use_monotonicity && !s.canon.program.monos().empty()) {
    s.mono = std::make_unique<MonotonicityAnalyzer>(s.canon.program,
                                                    s.adorned, s.system);
  }
  // The condensation depends on the live rule set, so it is computed
  // after pruning and then shared (read-only) by every subset search,
  // including ones running concurrently on pool threads.
  s.scc = std::make_unique<SccAnalysis>(SccAnalysis::Compute(s.system));

  s.fps = ComputeFingerprints(s.canon.program);

  // Intern the display variables now, while this build is still
  // private: the read path synthesises display literals from these ids
  // and must not touch the (shared, frozen) term pool.
  uint32_t max_arity = 0;
  for (PredicateId p = 0;
       p < static_cast<PredicateId>(s.canon.program.num_predicates()); ++p) {
    max_arity = std::max(max_arity, s.canon.program.predicate(p).arity);
  }
  s.display_vars.reserve(max_arity);
  for (uint32_t k = 0; k < max_arity; ++k) {
    s.display_vars.push_back(s.canon.program.Var(StrCat("A", k + 1)));
  }

  // Everything besides the cone that can influence a search's verdict
  // *or its step count*: option flags and budget, whether the Theorem 5
  // escape is active (it disables the SCC/memo short-circuits
  // program-wide), and whether the condensation materialised its reach
  // bitsets (it degrades the frontier memo when too wide).
  uint64_t ctx = MixHash(0x686f726e63747834ULL);
  uint64_t bits = (options.apply_emptiness ? 1u : 0u) |
                  (options.apply_reduction ? 2u : 0u) |
                  (options.use_monotonicity ? 4u : 0u) |
                  (options.use_fd_closure ? 8u : 0u) |
                  (CanonicalizeOptionBits(options.canonicalize) << 4);
  ctx = CombineHash(ctx, bits);
  ctx = CombineHash(ctx, options.subset_budget);
  ctx = CombineHash(ctx, s.mono != nullptr ? 1 : 0);
  ctx = CombineHash(ctx, s.scc->has_reach_sets() ? 1 : 0);
  s.context_hash = ctx;

  return std::shared_ptr<const AnalysisSnapshot>(std::move(snap));
}

Result<SafetyAnalyzer> SafetyAnalyzer::Create(
    const Program& program, const AnalyzerOptions& options) {
  SafetyAnalyzer a;
  a.shared_ = std::make_shared<Shared>();
  a.shared_->default_exec = options.exec;
  HORNSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const AnalysisSnapshot> snap,
                            BuildSnapshot(program, options));
  a.shared_->snapshot = std::move(snap);
  return a;
}

std::shared_ptr<const AnalysisSnapshot> SafetyAnalyzer::snapshot() const {
  std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
  return shared_->snapshot;
}

const AnalysisSnapshot& SafetyAnalyzer::snapshot_ref() const {
  std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
  return *shared_->snapshot;
}

void SafetyAnalyzer::Publish(std::shared_ptr<const AnalysisSnapshot> snap) {
  std::lock_guard<std::mutex> lock(shared_->snapshot_mu);
  shared_->snapshot = std::move(snap);
}

ExecContext SafetyAnalyzer::default_exec() const {
  std::lock_guard<std::mutex> lock(shared_->exec_mu);
  return shared_->default_exec;
}

void SafetyAnalyzer::set_exec(const ExecContext& exec) {
  std::lock_guard<std::mutex> lock(shared_->exec_mu);
  shared_->default_exec = exec;
}

Result<SafetyAnalyzer::UpdateStats> SafetyAnalyzer::Update(
    const Program& program, const ExecContext& exec) {
  // One builder at a time; readers keep serving the published snapshot
  // for the whole build.
  std::lock_guard<std::mutex> update_lock(shared_->update_mu);
  std::shared_ptr<const AnalysisSnapshot> old = snapshot();

  // Snapshot the previous build's cone fingerprints by predicate
  // name/arity (ids are not stable across builds).
  std::unordered_map<std::string, uint64_t> old_cones;
  {
    const Program& oldp = old->canon.program;
    for (PredicateId p = 0;
         p < static_cast<PredicateId>(oldp.num_predicates()); ++p) {
      old_cones[StrCat(oldp.PredicateName(p), "/",
                       oldp.predicate(p).arity)] = old->fps.cone[p];
    }
  }

  AnalyzerOptions build_options = old->options;
  build_options.exec = exec;
  HORNSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const AnalysisSnapshot> fresh,
                            BuildSnapshot(program, build_options));

  UpdateStats out;
  const Program& newp = fresh->canon.program;
  out.predicates = newp.num_predicates();
  for (PredicateId p = 0;
       p < static_cast<PredicateId>(newp.num_predicates()); ++p) {
    auto it = old_cones.find(
        StrCat(newp.PredicateName(p), "/", newp.predicate(p).arity));
    if (it != old_cones.end() && it->second == fresh->fps.cone[p]) {
      ++out.clean_predicates;
    } else {
      ++out.dirty_predicates;
    }
  }

  // The swap: one pointer store under the snapshot lock. In-flight
  // analyses pinned `old` and finish against it; the next `snapshot()`
  // call sees `fresh`. Counters live outside the snapshot and carry
  // over untouched.
  Publish(std::move(fresh));
  shared_->counters.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
  if (build_options.cache != nullptr) {
    build_options.cache->NoteInvalidatedCones(out.dirty_predicates);
  }
  return out;
}

Result<SafetyAnalyzer::UpdateStats> SafetyAnalyzer::Update(
    const Program& program) {
  return Update(program, default_exec());
}

SubsetOptions SafetyAnalyzer::MakeSubsetOptions(const AnalysisSnapshot& snap,
                                                const ExecContext& exec) {
  SubsetOptions opts;
  opts.budget = snap.options.subset_budget;
  opts.exec = exec;
  if (snap.mono) opts.escape = snap.mono->MakeEscape();
  opts.scc = snap.scc.get();
  return opts;
}

std::shared_ptr<ThreadPool> SafetyAnalyzer::Pool(size_t threads) {
  std::lock_guard<std::mutex> lock(shared_->pool_mu);
  if (!shared_->pool || shared_->pool->num_threads() < threads) {
    // Grow-only replacement: an analysis mid-flight on the old pool
    // holds its own shared_ptr copy, so the old workers drain and join
    // only after the last user releases it.
    shared_->pool = std::make_shared<ThreadPool>(threads);
  }
  return shared_->pool;
}

SafetyAnalyzer::Counters SafetyAnalyzer::counters() const {
  const SharedCounters& sc = shared_->counters;
  Counters c;
  c.positions_analyzed = sc.positions_analyzed.load(std::memory_order_relaxed);
  c.subset_searches = sc.subset_searches.load(std::memory_order_relaxed);
  c.steps = sc.steps.load(std::memory_order_relaxed);
  c.graphs_checked = sc.graphs_checked.load(std::memory_order_relaxed);
  c.memo_hits = sc.memo_hits.load(std::memory_order_relaxed);
  c.memo_misses = sc.memo_misses.load(std::memory_order_relaxed);
  c.scc_short_circuits =
      sc.scc_short_circuits.load(std::memory_order_relaxed);
  c.parallel_tasks = sc.parallel_tasks.load(std::memory_order_relaxed);
  c.serial_tasks = sc.serial_tasks.load(std::memory_order_relaxed);
  c.cache_hits = sc.cache_hits.load(std::memory_order_relaxed);
  c.cache_misses = sc.cache_misses.load(std::memory_order_relaxed);
  c.snapshot_swaps = sc.snapshot_swaps.load(std::memory_order_relaxed);
  return c;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(const AnalysisSnapshot& snap,
                                               PredicateId pred,
                                               uint64_t adornment_mask,
                                               const ExecContext& exec) {
  const Program& p = snap.canon.program;
  const AndOrSystem& system = snap.system;
  PipelineCache* cache = snap.options.cache;
  SharedCounters& counters = shared_->counters;
  QueryAnalysis out;
  const uint32_t arity = p.predicate(pred).arity;
  // Synthesise a display literal from the pre-interned variables (the
  // snapshot is frozen: nothing on this path may touch the term pool).
  Literal lit;
  lit.pred = pred;
  for (uint32_t k = 0; k < arity; ++k) {
    lit.args.push_back(snap.display_vars[k]);
  }
  out.query = lit;

  SubsetOptions sopts = MakeSubsetOptions(snap, exec);

  // Classify (read-only against the frozen snapshot) and collect the
  // argument positions that need an actual subset search. Positions
  // whose (cone fingerprint, context, adornment, position) key hits the
  // pipeline cache are resolved right here without searching.
  struct SearchJob {
    uint32_t position = 0;
    NodeId root = kInvalidNode;
    CacheKey key;
    bool has_key = false;
    SubsetResult res;
  };
  std::vector<ArgumentVerdict> verdicts(arity);
  std::vector<SearchJob> searches;
  for (uint32_t k = 0; k < arity; ++k) {
    ArgumentVerdict& v = verdicts[k];
    v.position = k;
    if ((adornment_mask >> k) & 1) {
      v.safety = Safety::kSafe;
      v.explanation = "bound by the query";
    } else if (p.IsFiniteBase(pred)) {
      v.safety = Safety::kSafe;
      v.explanation = "finite base predicate";
    } else if (p.IsInfiniteBase(pred)) {
      // A free argument of a bare infinite-EDB query (Example 14) is
      // safe only if finitely determined by the bound arguments.
      AttrSet bound(adornment_mask);
      bool determined = false;
      for (const FiniteDependency& fd : p.FdsFor(pred)) {
        if (fd.lhs.SubsetOf(bound) && fd.rhs.Contains(k)) determined = true;
      }
      v.safety = determined ? Safety::kSafe : Safety::kUnsafe;
      v.explanation = determined
                          ? "finitely determined by bound arguments"
                          : "free argument of an infinite base predicate";
    } else {
      SearchJob job;
      job.position = k;
      job.root = system.FindHeadArg(pred, adornment_mask, k);
      if (cache != nullptr && pred < snap.fps.cone.size()) {
        job.key = MakeVerdictKey(snap.fps.cone[pred], snap.context_hash,
                                 adornment_mask, k);
        job.has_key = true;
        if (std::optional<CachedVerdict> hit = cache->Lookup(job.key)) {
          v.safety = hit->verdict;
          v.explanation = std::move(hit->explanation);
          v.steps = hit->steps;
          v.graphs_checked = hit->graphs_checked;
          // Only kNone/kBudget outcomes are ever stored (deadline- and
          // cancellation-degraded verdicts are transient), so the stop
          // reason reconstructs from the verdict bit-identically.
          v.stop = hit->verdict == Safety::kUndecided ? StopReason::kBudget
                                                      : StopReason::kNone;
          counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        counters.cache_misses.fetch_add(1, std::memory_order_relaxed);
      }
      searches.push_back(std::move(job));
    }
  }

  // Run the searches — the expensive part — across the pool when asked.
  // Each position gets its own budget and fresh memo table, so every
  // SubsetResult is independent of scheduling; only the aggregate
  // steps tally is shared (and atomic).
  size_t want = snap.options.jobs <= 0
                    ? ThreadPool::DefaultThreads()
                    : static_cast<size_t>(snap.options.jobs);
  if (want > 1 && searches.size() > 1) {
    std::shared_ptr<ThreadPool> pool =
        Pool(std::min(want, searches.size()));
    std::vector<std::future<void>> done;
    done.reserve(searches.size());
    for (SearchJob& job : searches) {
      done.push_back(pool->Submit([&snap, &job, &sopts, &counters] {
        job.res = CheckSubsetCondition(snap.system, job.root, sopts);
        counters.steps.fetch_add(job.res.steps, std::memory_order_relaxed);
      }));
    }
    for (std::future<void>& f : done) f.get();
    counters.parallel_tasks.fetch_add(searches.size(),
                                      std::memory_order_relaxed);
  } else {
    for (SearchJob& job : searches) {
      job.res = CheckSubsetCondition(system, job.root, sopts);
      counters.steps.fetch_add(job.res.steps, std::memory_order_relaxed);
    }
    counters.serial_tasks.fetch_add(searches.size(),
                                    std::memory_order_relaxed);
  }

  // Deterministic merge: verdicts, explanations, and counters are
  // folded in position order on this thread.
  for (const SearchJob& job : searches) {
    ArgumentVerdict& v = verdicts[job.position];
    const SubsetResult& res = job.res;
    v.safety = res.verdict;
    v.stop = res.stop_reason;
    v.steps = res.steps;
    v.graphs_checked = res.graphs_checked;
    switch (res.verdict) {
      case Safety::kSafe:
        v.explanation =
            job.root == kInvalidNode || system.RulesFor(job.root).empty()
                ? "no rule can bind this argument (empty predicate)"
                : StrCat("every AND-graph satisfies the subset condition (",
                         res.graphs_checked, " graphs checked)");
        break;
      case Safety::kUnsafe:
        v.explanation = res.witness
                            ? res.witness->Describe(system, p)
                            : "counterexample AND-graph found";
        break;
      case Safety::kUndecided:
        switch (res.stop_reason) {
          case StopReason::kDeadline:
            v.explanation = StrCat("analysis deadline exceeded (",
                                   res.steps, " steps spent)");
            break;
          case StopReason::kCancelled:
            v.explanation =
                StrCat("analysis cancelled (", res.steps, " steps spent)");
            break;
          default:
            v.explanation = StrCat("search budget exhausted after ",
                                   res.steps, " steps");
            break;
        }
        break;
    }
    // Publish safe/undecided outcomes (kUnsafe witness text embeds
    // global node ids that shift under edits; see DESIGN.md, D12).
    // Deadline- and cancellation-degraded verdicts reflect this
    // request's wall clock, not the program — a later request with more
    // time must redo them, so they never enter the cache.
    if (cache != nullptr && job.has_key &&
        res.verdict != Safety::kUnsafe &&
        (res.stop_reason == StopReason::kNone ||
         res.stop_reason == StopReason::kBudget)) {
      CachedVerdict cv;
      cv.verdict = res.verdict;
      cv.steps = res.steps;
      cv.graphs_checked = res.graphs_checked;
      cv.memo_hits = res.memo_hits;
      cv.memo_misses = res.memo_misses;
      cv.scc_short_circuits = res.scc_short_circuits;
      cv.explanation = v.explanation;
      cache->Store(job.key, cv);
    }
    counters.subset_searches.fetch_add(1, std::memory_order_relaxed);
    counters.graphs_checked.fetch_add(res.graphs_checked,
                                      std::memory_order_relaxed);
    counters.memo_hits.fetch_add(res.memo_hits, std::memory_order_relaxed);
    counters.memo_misses.fetch_add(res.memo_misses,
                                   std::memory_order_relaxed);
    counters.scc_short_circuits.fetch_add(res.scc_short_circuits,
                                          std::memory_order_relaxed);
  }
  counters.positions_analyzed.fetch_add(arity, std::memory_order_relaxed);

  bool any_unsafe = false;
  bool any_undecided = false;
  for (ArgumentVerdict& v : verdicts) {
    any_unsafe |= (v.safety == Safety::kUnsafe);
    any_undecided |= (v.safety == Safety::kUndecided);
    out.args.push_back(std::move(v));
  }
  out.overall = any_unsafe      ? Safety::kUnsafe
                : any_undecided ? Safety::kUndecided
                                : Safety::kSafe;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const AnalysisSnapshot& snap,
                                                  const Literal& query,
                                                  const ExecContext& exec) {
  // Canonical queries have all-distinct-variable arguments, so the
  // relevant adornment is all-free.
  QueryAnalysis out = AnalyzePredicate(snap, query.pred, 0, exec);
  out.query = query;
  return out;
}

QueryAnalysis SafetyAnalyzer::AnalyzePredicate(PredicateId pred,
                                               uint64_t adornment_mask) {
  std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  return AnalyzePredicate(*snap, pred, adornment_mask, default_exec());
}

QueryAnalysis SafetyAnalyzer::AnalyzeQueryLiteral(const Literal& query) {
  std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  return AnalyzeQueryLiteral(*snap, query, default_exec());
}

std::vector<QueryAnalysis> SafetyAnalyzer::AnalyzeQueries() {
  std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  ExecContext exec = default_exec();
  std::vector<QueryAnalysis> out;
  for (const Literal& q : snap->canon.program.queries()) {
    out.push_back(AnalyzeQueryLiteral(*snap, q, exec));
  }
  return out;
}

}  // namespace hornsafe
