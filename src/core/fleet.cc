#include "core/fleet.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "core/analyzer.h"
#include "parser/parser.h"
#include "util/fault.h"
#include "util/proc.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

namespace fs = std::filesystem;

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(to - from)
      .count();
}

/// Appends `line` + '\n' to `fd` in one write syscall, so lines from a
/// worker killed mid-run stay self-delimiting (O_APPEND, small lines).
void AppendLine(int fd, const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// One worker slot: the corpus-relative programs it still owes, its
/// live pid, and the output files of every attempt so far.
struct WorkerSlot {
  int index = 0;
  std::vector<std::string> pending;  // corpus-relative paths
  pid_t pid = -1;
  int attempt = 0;
  std::vector<std::string> out_files;
  bool finished = false;
};

struct WorkerSummary {
  PipelineCacheStats cache;
  uint64_t faults_injected = 0;
  bool seen = false;
};

uint64_t SumField(const Json& obj, const char* key) {
  return static_cast<uint64_t>(obj[key].AsInt());
}

}  // namespace

std::vector<std::string> ListCorpus(const std::string& corpus_dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::path root(corpus_dir);
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".hs") continue;
    out.push_back(fs::relative(it->path(), root, ec).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Json FleetReport::ToJson() const {
  Json j = Json::Object();
  j.Set("procs", procs);
  j.Set("corpus_size", corpus_size);
  j.Set("analyzed", analyzed);
  j.Set("errors", errors);
  j.Set("wall_seconds", wall_seconds);
  Json cache = Json::Object();
  cache.Set("verdict_hits", verdict_hits);
  cache.Set("verdict_misses", verdict_misses);
  cache.Set("verdict_hit_rate", verdict_hit_rate);
  cache.Set("cross_program_hits", verdict_hits);
  cache.Set("disk_hits", disk_hits);
  cache.Set("disk_misses", disk_misses);
  cache.Set("disk_corrupt", disk_corrupt);
  cache.Set("disk_write_skips", disk_write_skips);
  cache.Set("disk_read_failures", disk_read_failures);
  cache.Set("stale_leases_recovered", stale_leases_recovered);
  cache.Set("manifest_rollbacks", manifest_rollbacks);
  j.Set("cache", std::move(cache));
  Json faults = Json::Object();
  faults.Set("injected", faults_injected);
  faults.Set("worker_crashes", worker_crashes);
  faults.Set("respawns", respawns);
  j.Set("faults", std::move(faults));
  if (compaction_ran) {
    Json compaction = Json::Object();
    compaction.Set("ran", true);
    compaction.Set("entries_removed", compaction_entries_removed);
    j.Set("compaction", std::move(compaction));
  }
  Json progs = Json::Array();
  for (const FleetProgramResult& p : programs) {
    Json pj = Json::Object();
    pj.Set("path", p.path);
    pj.Set("verdict", p.verdict);
    pj.Set("queries", p.queries);
    pj.Set("wall_seconds", p.wall_seconds);
    pj.Set("worker", static_cast<int64_t>(p.worker));
    if (!p.error.empty()) pj.Set("error", p.error);
    progs.Append(std::move(pj));
  }
  j.Set("programs", std::move(progs));
  return j;
}

std::string FleetReport::ToText() const {
  std::ostringstream out;
  for (const FleetProgramResult& p : programs) {
    out << p.path << ": " << p.verdict;
    if (!p.error.empty()) out << " (" << p.error << ")";
    out << "\n";
  }
  out << "fleet: " << analyzed << "/" << corpus_size << " programs across "
      << procs << " worker(s) in " << wall_seconds << "s";
  if (errors > 0) out << ", " << errors << " error(s)";
  out << "\n";
  uint64_t looked = verdict_hits + verdict_misses;
  if (looked > 0) {
    out << "cache: " << verdict_hits << "/" << looked
        << " verdict hits (cross-program), " << disk_hits
        << " via shared disk tier\n";
  }
  if (worker_crashes > 0) {
    out << "faults: " << worker_crashes << " worker crash(es), " << respawns
        << " respawn(s), " << faults_injected << " injected fault(s)\n";
  }
  if (compaction_ran) {
    out << "compaction: removed " << compaction_entries_removed
        << " entr(ies)\n";
  }
  return out.str();
}

namespace {

/// Launches (or relaunches) `slot` on its pending programs. Returns
/// false on spawn failure.
bool LaunchWorker(const FleetOptions& options, const std::string& exe,
                  const std::string& scratch, const fs::path& corpus_root,
                  WorkerSlot* slot) {
  std::string tag = StrCat("w", slot->index, ".a", slot->attempt);
  std::string shard_file = StrCat(scratch, "/shard-", tag);
  std::string out_file = StrCat(scratch, "/out-", tag);
  {
    std::ofstream out(shard_file, std::ios::trunc);
    for (const std::string& rel : slot->pending) {
      out << rel << "\t" << (corpus_root / rel).string() << "\n";
    }
  }
  std::vector<std::string> argv = {exe,     "fleet-worker", "--shard",
                                   shard_file, "--out",     out_file,
                                   "--jobs", StrCat(options.jobs)};
  if (!options.cache_dir.empty()) {
    argv.push_back("--cache-dir");
    argv.push_back(options.cache_dir);
  }
  SpawnOptions sopts;
  if (!options.fault_spec.empty()) {
    sopts.extra_env.push_back(StrCat("HORNSAFE_FAULTS=", options.fault_spec));
  }
  sopts.stdout_path = StrCat(scratch, "/log-", tag);
  sopts.stderr_path = sopts.stdout_path;
  auto pid_or = SpawnProcess(argv, sopts);
  if (!pid_or.ok()) return false;
  slot->pid = pid_or.value();
  slot->out_files.push_back(out_file);
  ++slot->attempt;
  return true;
}

/// Parses one attempt's output file into `report` (first result per
/// path wins) and the worker summary. Returns true when the final
/// summary ("done") line was present — the attempt completed.
bool HarvestWorkerOutput(const std::string& out_file, int worker_index,
                         std::map<std::string, FleetProgramResult>* results,
                         WorkerSummary* summary) {
  bool done = false;
  for (const std::string& line : ReadLines(out_file)) {
    auto parsed = Json::Parse(line);
    // A worker killed mid-write leaves at most one torn trailing line;
    // skip anything unparsable (the program it described is re-run).
    if (!parsed.ok() || !parsed.value().is_object()) continue;
    const Json& j = parsed.value();
    if (j["done"].AsBool()) {
      done = true;
      summary->seen = true;
      const Json& cache = j["cache"];
      summary->cache.verdict_hits += SumField(cache, "verdict_hits");
      summary->cache.verdict_misses += SumField(cache, "verdict_misses");
      summary->cache.disk_hits += SumField(cache, "disk_hits");
      summary->cache.disk_misses += SumField(cache, "disk_misses");
      summary->cache.disk_corrupt += SumField(cache, "disk_corrupt");
      summary->cache.disk_write_skips += SumField(cache, "disk_write_skips");
      summary->cache.disk_read_failures +=
          SumField(cache, "disk_read_failures");
      summary->cache.stale_leases_recovered +=
          SumField(cache, "stale_leases_recovered");
      summary->cache.manifest_rollbacks +=
          SumField(cache, "manifest_rollbacks");
      summary->faults_injected += SumField(j["faults"], "injected");
      continue;
    }
    if (!j.Has("path")) continue;
    FleetProgramResult r;
    r.path = j["path"].AsString();
    r.verdict = j["verdict"].AsString();
    r.queries = static_cast<uint64_t>(j["queries"].AsInt());
    r.wall_seconds = j["wall_seconds"].AsNumber();
    r.error = j["error"].AsString();
    r.worker = worker_index;
    results->emplace(r.path, std::move(r));  // keeps the first
  }
  return done;
}

}  // namespace

Result<FleetReport> RunFleet(const FleetOptions& options) {
  auto started = std::chrono::steady_clock::now();
  std::vector<std::string> corpus = ListCorpus(options.corpus_dir);
  if (corpus.empty()) {
    return Status::NotFound(
        StrCat("no *.hs programs under '", options.corpus_dir, "'"));
  }

  std::string exe = options.worker_exe;
  if (exe.empty()) exe = SelfExePath();
  if (exe.empty()) {
    return Status::Unavailable("cannot resolve worker executable");
  }

  // Scratch directory for shard lists, worker output and logs.
  std::string scratch = options.scratch_dir;
  bool own_scratch = false;
  if (scratch.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string tmpl =
        StrCat(tmpdir != nullptr ? tmpdir : "/tmp", "/hornsafe-fleet-XXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      return Status::Unavailable(
          StrCat("mkdtemp: ", std::strerror(errno)));
    }
    scratch = buf.data();
    own_scratch = true;
  } else {
    std::error_code ec;
    fs::create_directories(scratch, ec);
  }

  int procs = options.procs;
  if (procs < 1) procs = 1;
  if (procs > 256) procs = 256;
  if (static_cast<size_t>(procs) > corpus.size()) {
    procs = static_cast<int>(corpus.size());
  }

  // Round-robin sharding: adjacent corpus entries (likely siblings in
  // one directory, likely sharing modules) spread across workers, which
  // maximizes the *cross-process* reuse the shared disk tier exists for.
  std::vector<WorkerSlot> slots(static_cast<size_t>(procs));
  for (int w = 0; w < procs; ++w) slots[w].index = w;
  for (size_t i = 0; i < corpus.size(); ++i) {
    slots[i % static_cast<size_t>(procs)].pending.push_back(corpus[i]);
  }

  fs::path corpus_root = fs::absolute(options.corpus_dir);
  FleetReport report;
  report.procs = static_cast<uint64_t>(procs);
  report.corpus_size = corpus.size();

  std::map<std::string, FleetProgramResult> results;
  std::vector<WorkerSummary> summaries(slots.size());

  for (WorkerSlot& slot : slots) {
    if (!LaunchWorker(options, exe, scratch, corpus_root, &slot)) {
      return Status::Unavailable("failed to spawn fleet worker");
    }
  }

  int respawn_budget = options.max_respawns;
  size_t live = slots.size();
  while (live > 0) {
    bool progressed = false;
    for (WorkerSlot& slot : slots) {
      if (slot.finished || slot.pid < 0) continue;
      auto polled = PollProcess(slot.pid);
      if (!polled.ok()) {
        // Reaping failed (should not happen for our own children);
        // treat as a crash so the driver cannot hang.
        slot.pid = -1;
      } else if (!polled.value().has_value()) {
        continue;  // still running
      }
      progressed = true;
      WaitResult status =
          polled.ok() && polled.value().has_value() ? *polled.value()
                                                    : WaitResult{};
      bool done = HarvestWorkerOutput(slot.out_files.back(), slot.index,
                                      &results, &summaries[slot.index]);
      bool clean = done && status.exited && status.exit_code == 0;
      if (clean) {
        slot.finished = true;
        --live;
        continue;
      }
      ++report.worker_crashes;
      // Drop everything this worker already reported from its debt.
      std::vector<std::string> remaining;
      for (const std::string& rel : slot.pending) {
        if (results.find(rel) == results.end()) remaining.push_back(rel);
      }
      slot.pending = std::move(remaining);
      if (slot.pending.empty()) {
        // Died after its last program but before the summary line —
        // all verdicts are in, only its counters are lost.
        slot.finished = true;
        --live;
        continue;
      }
      if (respawn_budget > 0) {
        --respawn_budget;
        ++report.respawns;
        if (LaunchWorker(options, exe, scratch, corpus_root, &slot)) continue;
      }
      // Budget exhausted (or respawn failed): report the remainder as
      // errors rather than hanging or crashing the driver.
      for (const std::string& rel : slot.pending) {
        FleetProgramResult r;
        r.path = rel;
        r.verdict = "error";
        r.error = "worker crashed; respawn budget exhausted";
        r.worker = slot.index;
        results.emplace(rel, std::move(r));
      }
      slot.finished = true;
      --live;
    }
    if (!progressed && live > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Merge: every corpus program gets a row, even if a worker lost it.
  for (const std::string& rel : corpus) {
    auto it = results.find(rel);
    if (it != results.end()) {
      report.programs.push_back(it->second);
    } else {
      FleetProgramResult r;
      r.path = rel;
      r.verdict = "error";
      r.error = "no result reported";
      report.programs.push_back(std::move(r));
    }
    const FleetProgramResult& r = report.programs.back();
    if (r.verdict == "error") {
      ++report.errors;
    } else {
      ++report.analyzed;
    }
  }
  for (const WorkerSummary& s : summaries) {
    if (!s.seen) continue;
    report.verdict_hits += s.cache.verdict_hits;
    report.verdict_misses += s.cache.verdict_misses;
    report.disk_hits += s.cache.disk_hits;
    report.disk_misses += s.cache.disk_misses;
    report.disk_corrupt += s.cache.disk_corrupt;
    report.disk_write_skips += s.cache.disk_write_skips;
    report.disk_read_failures += s.cache.disk_read_failures;
    report.stale_leases_recovered += s.cache.stale_leases_recovered;
    report.manifest_rollbacks += s.cache.manifest_rollbacks;
    report.faults_injected += s.faults_injected;
  }
  uint64_t looked = report.verdict_hits + report.verdict_misses;
  report.verdict_hit_rate =
      looked > 0 ? static_cast<double>(report.verdict_hits) /
                       static_cast<double>(looked)
                 : 0.0;

  if (options.compact_after && !options.cache_dir.empty()) {
    auto compacted =
        PipelineCache::CompactDir(options.cache_dir, options.compact_bounds);
    if (compacted.ok()) {
      report.compaction_ran = compacted.value().ran;
      report.compaction_entries_removed = compacted.value().entries_removed;
    }
  }

  report.wall_seconds = Seconds(started, std::chrono::steady_clock::now());

  if (own_scratch) {
    std::error_code ec;
    fs::remove_all(scratch, ec);
  }
  return report;
}

int FleetWorkerMain(const std::string& shard_file,
                    const std::string& out_file,
                    const std::string& cache_dir, int jobs,
                    const ProgramLoader& loader) {
  int out_fd =
      ::open(out_file.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
             0644);
  if (out_fd < 0) {
    std::fprintf(stderr, "fleet-worker: cannot open '%s': %s\n",
                 out_file.c_str(), std::strerror(errno));
    return 1;
  }

  PipelineCache::Options copts;
  copts.dir = cache_dir;
  PipelineCache cache(copts);

  ProgramLoader load = loader;
  if (!load) {
    load = [](const std::string& path) -> Result<Program> {
      std::ifstream in(path);
      if (!in) return Status::NotFound(StrCat("cannot open '", path, "'"));
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return ParseProgram(buffer.str());
    };
  }

  for (const std::string& line : ReadLines(shard_file)) {
    size_t tab = line.find('\t');
    std::string rel = tab == std::string::npos ? line : line.substr(0, tab);
    std::string abs = tab == std::string::npos ? line : line.substr(tab + 1);

    auto prog_started = std::chrono::steady_clock::now();
    Json row = Json::Object();
    row.Set("path", rel);

    auto emit = [&](const char* verdict, uint64_t queries,
                    const std::string& error) {
      row.Set("verdict", verdict);
      row.Set("queries", queries);
      row.Set("wall_seconds",
              Seconds(prog_started, std::chrono::steady_clock::now()));
      if (!error.empty()) row.Set("error", error);
      AppendLine(out_fd, row.Dump());
    };

    Result<Program> program = load(abs);
    if (!program.ok()) {
      emit("error", 0, program.status().ToString());
      continue;
    }
    AnalyzerOptions aopts;
    aopts.jobs = jobs;
    aopts.cache = &cache;
    auto analyzer = SafetyAnalyzer::Create(program.value(), aopts);
    if (!analyzer.ok()) {
      emit("error", 0, analyzer.status().ToString());
      continue;
    }
    std::vector<Literal> queries = analyzer.value().canonical().queries();
    bool any_unsafe = false;
    bool any_undecided = false;
    for (const Literal& q : queries) {
      QueryAnalysis analysis = analyzer.value().AnalyzeQueryLiteral(q);
      if (analysis.overall == Safety::kUnsafe) any_unsafe = true;
      if (analysis.overall == Safety::kUndecided) any_undecided = true;
    }
    emit(any_unsafe       ? "unsafe"
         : any_undecided  ? "undecided"
                          : "safe",
         queries.size(), "");
  }

  // Final summary line: this worker's cache and fault picture. Its
  // absence is how the driver detects a crash.
  PipelineCacheStats stats = cache.stats();
  Json summary = Json::Object();
  summary.Set("done", true);
  Json cache_json = Json::Object();
  cache_json.Set("verdict_hits", stats.verdict_hits);
  cache_json.Set("verdict_misses", stats.verdict_misses);
  cache_json.Set("disk_hits", stats.disk_hits);
  cache_json.Set("disk_misses", stats.disk_misses);
  cache_json.Set("disk_corrupt", stats.disk_corrupt);
  cache_json.Set("disk_write_skips", stats.disk_write_skips);
  cache_json.Set("disk_read_failures", stats.disk_read_failures);
  cache_json.Set("stale_leases_recovered", stats.stale_leases_recovered);
  cache_json.Set("manifest_rollbacks", stats.manifest_rollbacks);
  summary.Set("cache", std::move(cache_json));
  FaultInjector::Counters fc = FaultInjector::Global().counters();
  uint64_t injected = 0;
  for (uint64_t v : fc.injected) injected += v;
  Json faults = Json::Object();
  faults.Set("injected", injected);
  summary.Set("faults", std::move(faults));
  AppendLine(out_fd, summary.Dump());
  ::close(out_fd);
  return 0;
}

}  // namespace hornsafe
