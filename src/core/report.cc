#include "core/report.h"

#include "constraints/consistency.h"
#include "core/finiteness.h"
#include "core/termination.h"
#include "fd/derived.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

char VerdictChar(Safety s) {
  switch (s) {
    case Safety::kSafe:
      return 's';
    case Safety::kUnsafe:
      return 'U';
    case Safety::kUndecided:
      return '?';
  }
  return '?';
}

}  // namespace

std::string GenerateReport(SafetyAnalyzer& analyzer,
                           const ReportOptions& options) {
  const Program& p = analyzer.canonical();
  std::string out = "=== hornsafe analysis report ===\n\n";

  // --- Inventory ---------------------------------------------------------
  out += "-- predicates --\n";
  for (PredicateId id = 0; id < p.num_predicates(); ++id) {
    const PredicateInfo& info = p.predicate(id);
    out += StrCat("  ", p.PredicateName(id), "/", info.arity, ": ",
                  PredicateKindName(info.kind));
    if (info.kind == PredicateKind::kDerived) {
      out += StrCat(" (", p.RulesFor(id).size(), " rules)");
    }
    out += "\n";
  }

  if (!p.fds().empty()) {
    out += "\n-- finiteness dependencies --\n";
    for (const FiniteDependency& fd : p.fds()) {
      out += StrCat("  ", p.PredicateName(fd.pred), ": ",
                    fd.lhs.ToString(), " -> ", fd.rhs.ToString(), "\n");
    }
  }
  if (!p.monos().empty()) {
    out += "\n-- monotonicity constraints --\n";
    for (const MonotonicityConstraint& mc : p.monos()) {
      out += StrCat("  ", p.PredicateName(mc.pred), ": ", mc.lhs_attr + 1);
      switch (mc.kind) {
        case MonoKind::kAttrGreaterAttr:
          out += StrCat(" > ", mc.rhs_attr + 1);
          break;
        case MonoKind::kAttrGreaterConst:
          out += StrCat(" > ", mc.bound);
          break;
        case MonoKind::kAttrLessConst:
          out += StrCat(" < ", mc.bound);
          break;
      }
      out += "\n";
    }
  }

  std::vector<ConsistencyWarning> warnings = CheckConstraintConsistency(p);
  if (!warnings.empty()) {
    out += "\n-- constraint warnings --\n";
    for (const ConsistencyWarning& w : warnings) {
      out += StrCat("  ", w.message, "\n");
    }
  }

  std::vector<FiniteDependency> inferred = InferDerivedFds(p);
  if (!inferred.empty()) {
    out += "\n-- inferred dependencies over derived predicates --\n";
    for (const FiniteDependency& fd : inferred) {
      out += StrCat("  ", p.PredicateName(fd.pred), ": ",
                    fd.lhs.ToString(), " -> ", fd.rhs.ToString(), "\n");
    }
  }

  // --- Pipeline ----------------------------------------------------------
  const SafetyAnalyzer::Stats& s = analyzer.stats();
  out += StrCat("\n-- pipeline --\n",
                "  canonical rules:      ", s.canonical_rules, "\n",
                "  adorned rules (H*):   ", s.adorned_rules, "\n",
                "  And-Or nodes:         ", s.nodes, "\n",
                "  And-Or rules:         ", s.rules_total, " (",
                s.rules_pruned_emptiness, " pruned by Algorithm 3, ",
                s.rules_pruned_reduction, " by Algorithm 4, ",
                s.rules_live, " live)\n");

  // --- Queries -----------------------------------------------------------
  std::vector<Literal> queries = p.queries();
  if (!queries.empty()) {
    out += "\n-- queries --\n";
    for (const Literal& q : queries) {
      QueryAnalysis analysis = analyzer.AnalyzeQueryLiteral(q);
      out += StrCat("  ?- ", p.ToString(q), ".\n    safety: ",
                    SafetyName(analysis.overall));
      out += " [";
      for (const ArgumentVerdict& a : analysis.args) {
        out += VerdictChar(a.safety);
      }
      out += "]\n";
      if (options.include_section5) {
        IntermediateFinitenessResult fin = CheckFiniteIntermediateResults(
            p, analyzer.adorned(), analyzer.system(), q);
        TerminationResult term = CheckTermination(analyzer, q);
        out += StrCat("    finite intermediate results: ",
                      fin.exists ? "yes" : "no", "\n");
        out += StrCat("    terminating computation:     ",
                      term.exists ? "yes" : "no", "\n");
      }
    }
  }

  // --- Adornment matrices -------------------------------------------------
  if (options.include_adornment_matrix) {
    out += "\n-- safety by adornment (derived predicates) --\n";
    for (PredicateId id = 0; id < p.num_predicates(); ++id) {
      if (!p.IsDerived(id)) continue;
      uint32_t arity = p.predicate(id).arity;
      out += StrCat("  ", p.PredicateName(id), "/", arity, ":");
      if (arity > options.max_matrix_arity) {
        QueryAnalysis free = analyzer.AnalyzePredicate(id, 0);
        out += StrCat(" (arity above matrix limit) all-free: ",
                      SafetyName(free.overall), "\n");
        continue;
      }
      out += "\n";
      for (uint64_t mask = 0; mask < (uint64_t{1} << arity); ++mask) {
        QueryAnalysis qa = analyzer.AnalyzePredicate(id, mask);
        std::string adornment;
        for (uint32_t k = 0; k < arity; ++k) {
          adornment += ((mask >> k) & 1) ? 'b' : 'f';
        }
        out += StrCat("    ", adornment.empty() ? "()" : adornment, " ",
                      SafetyName(qa.overall), " [");
        for (const ArgumentVerdict& a : qa.args) {
          out += VerdictChar(a.safety);
        }
        out += "]\n";
      }
    }
  }
  return out;
}

}  // namespace hornsafe
