#ifndef HORNSAFE_CORE_FLEET_H_
#define HORNSAFE_CORE_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline_cache.h"
#include "lang/program.h"
#include "util/json.h"
#include "util/status.h"

namespace hornsafe {

/// The fleet corpus driver: `hornsafe fleet <dir>` forks/execs N
/// worker processes over a directory tree of programs, each analyzing
/// its shard against one shared `--cache-dir`, and merges the results
/// into one report. Programs sharing library modules hit the same
/// verdict entries across processes (cone fingerprints are
/// content-addressed), so the corpus warms the cache superlinearly in
/// corpus overlap. Workers that crash (or are crash-injected via
/// HORNSAFE_FAULTS process_kill) are respawned on their unfinished
/// remainder; the shared cache's lease/recovery protocol (DESIGN.md,
/// D16) guarantees the crash cannot corrupt other workers' verdicts.
struct FleetOptions {
  /// Directory tree scanned recursively for "*.hs" programs.
  std::string corpus_dir;
  /// Shared on-disk PipelineCache root; empty = each worker keeps a
  /// private in-memory cache (still dedupes within its shard).
  std::string cache_dir;
  /// Worker processes (clamped to [1, 256] and the corpus size).
  int procs = 1;
  /// Analyzer threads per worker.
  int jobs = 1;
  /// Worker executable; empty = this binary (/proc/self/exe). Workers
  /// are invoked as `<exe> fleet-worker --shard F --out F ...`.
  std::string worker_exe;
  /// HORNSAFE_FAULTS spec exported to workers (soaks); empty inherits
  /// the parent environment unchanged.
  std::string fault_spec;
  /// Crash-respawn budget across all workers. A worker that dies
  /// without its final summary line is respawned on the programs it
  /// had not finished; past the budget the remainder is reported as
  /// verdict "error".
  int max_respawns = 16;
  /// Run one PipelineCache::Compact pass (with these bounds) after the
  /// workers finish.
  bool compact_after = false;
  PipelineCache::CompactionOptions compact_bounds;
  /// Scratch directory for shard lists / worker output files; empty =
  /// a fresh directory under TMPDIR, removed on completion.
  std::string scratch_dir;
};

/// One program's outcome, as reported by its worker.
struct FleetProgramResult {
  std::string path;  ///< corpus-relative
  /// "safe" | "unsafe" | "undecided" | "error" (load/analysis failure
  /// or exhausted respawn budget).
  std::string verdict;
  uint64_t queries = 0;
  double wall_seconds = 0;
  std::string error;  ///< non-empty iff verdict == "error"
  int worker = -1;    ///< shard index that produced the result
};

/// Merged fleet outcome: per-program verdicts (sorted by path) plus
/// the aggregate cache and fault picture summed over worker summaries.
struct FleetReport {
  std::vector<FleetProgramResult> programs;
  uint64_t procs = 0;
  uint64_t corpus_size = 0;
  uint64_t analyzed = 0;
  uint64_t errors = 0;
  double wall_seconds = 0;

  // Cache stats summed across workers. In a cold fleet run every
  // verdict-tier hit is a cross-program hit by construction: each
  // program is analyzed exactly once, so its own stores cannot feed
  // its own lookups — only another program's (same or different
  // worker; disk_hits isolates the cross-*process* share).
  uint64_t verdict_hits = 0;
  uint64_t verdict_misses = 0;
  uint64_t disk_hits = 0;
  uint64_t disk_misses = 0;
  uint64_t disk_corrupt = 0;
  uint64_t disk_write_skips = 0;
  uint64_t disk_read_failures = 0;
  uint64_t stale_leases_recovered = 0;
  uint64_t manifest_rollbacks = 0;
  double verdict_hit_rate = 0;  ///< hits / (hits + misses), 0 when cold-empty

  /// Faults the workers' injectors fired (summed per-kind over worker
  /// summaries; kills are visible as worker_crashes instead — a killed
  /// worker's counters die with it).
  uint64_t faults_injected = 0;
  uint64_t worker_crashes = 0;
  uint64_t respawns = 0;

  bool compaction_ran = false;
  uint64_t compaction_entries_removed = 0;

  Json ToJson() const;
  std::string ToText() const;
};

/// Recursively lists "*.hs" files under `corpus_dir`, sorted by
/// corpus-relative path.
std::vector<std::string> ListCorpus(const std::string& corpus_dir);

/// Runs the fleet: shard the corpus round-robin across `procs`
/// workers, spawn and babysit them (respawning crashed ones on their
/// remainder), merge per-program results and worker summaries.
/// Fails only on driver-level errors (empty corpus, unusable scratch
/// dir, spawn failure); per-program failures become "error" verdicts.
Result<FleetReport> RunFleet(const FleetOptions& options);

/// Loads one program from `path` for analysis (parse + whatever
/// builtin registration the caller's analysis mode needs).
using ProgramLoader =
    std::function<Result<Program>(const std::string& path)>;

/// Worker-side entry point (the CLI dispatches `fleet-worker` here):
/// analyzes every "<rel>\t<abs>" line of `shard_file` against
/// `cache_dir`, appending one JSON line per program and a final
/// summary line (cache + fault counters) to `out_file`. Returns the
/// process exit code. `loader` parses each program (null = bare
/// ParseProgram).
int FleetWorkerMain(const std::string& shard_file,
                    const std::string& out_file,
                    const std::string& cache_dir, int jobs,
                    const ProgramLoader& loader);

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_FLEET_H_
