#ifndef HORNSAFE_CORE_SERVER_H_
#define HORNSAFE_CORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "core/analyzer.h"
#include "core/pipeline_cache.h"
#include "lang/program.h"
#include "util/deadline.h"
#include "util/json.h"
#include "util/status.h"

namespace hornsafe {

/// Options for the long-lived analysis server (`hornsafe serve`).
struct ServerOptions {
  /// Base analyzer configuration. The failure-model context (`exec`) is
  /// replaced per request from `deadline_ms` / the server default; the
  /// rest applies to every analysis.
  AnalyzerOptions analyzer;
  /// Shared pipeline cache (not owned; may be null). Requests that
  /// re-check unchanged cones are served from it.
  PipelineCache* cache = nullptr;
  /// Deadline applied to requests that carry no "deadline_ms" field.
  /// 0 = no deadline.
  uint64_t default_deadline_ms = 0;
  /// Bounded in-flight request queue: lines read but not yet analyzed.
  size_t max_queue = 64;
  /// Queue-overflow policy. `false` (default) applies backpressure —
  /// the reader blocks until the worker catches up, so every request
  /// is served in order and replies are deterministic. `true` sheds
  /// load instead: overflowing requests are answered immediately with
  /// an `unavailable` error and never analyzed.
  bool shed_on_overflow = false;
  /// Applied to every parsed program before analysis (the CLI installs
  /// standard-builtin registration here; core cannot depend on eval).
  std::function<Status(Program*)> prepare_program;
};

/// Long-lived analysis server speaking line-delimited JSON: one request
/// object per input line, exactly one reply object per request, in
/// request order under the default (backpressure) policy.
///
/// Request:  {"id": 7, "method": "check", "program": "...",
///            "deadline_ms": 50}
/// Reply:    {"id": 7, "ok": true, "result": {...}}
///      or   {"id": 7, "ok": false,
///            "error": {"code": "...", "message": "..."}}
///
/// Methods:
///   check     analyze every query of "program" (or, absent a
///             "program", of the server's current program); a
///             "predicate" field ("name/arity") restricts analysis to
///             that predicate, with an optional "adornment" string of
///             'b'/'f' letters selecting one binding pattern. Verdicts
///             carry the stop reason, so a deadline-degraded
///             kUndecided is distinguishable from a budget-degraded
///             one.
///   explain   `check` plus the per-argument explanation text
///             (witness renderings / budget notes).
///   update    replace the server's program, re-running the polynomial
///             pipeline and diffing cone fingerprints; reports how
///             many cones the edit dirtied (the editor loop's
///             cheap-per-keystroke call).
///   stats     analyzer counters, cache statistics and server request
///             accounting.
///   shutdown  acknowledge and stop the serve loop; requests already
///             queued behind it are answered with `unavailable`.
///
/// Failure model (DESIGN.md, D13): a malformed line, an unparsable
/// program, an expired deadline or an analysis error produces an error
/// *reply* — the loop never exits and the process never crashes on
/// untrusted input.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line, returning exactly one reply line
  /// (without the trailing newline). Never throws.
  std::string HandleLine(const std::string& line);

  /// Reads requests from `in` until EOF or a shutdown request; writes
  /// one reply line per request to `out`. Returns the number of
  /// requests served (including error replies).
  uint64_t Serve(std::istream& in, std::ostream& out);

  /// Binds a unix-domain socket at `path` (unlinking any stale one)
  /// and serves connections sequentially, each with the line protocol
  /// of `Serve`. Returns once a connection sends `shutdown`.
  Status ServeUnixSocket(const std::string& path);

  /// Asks the serve loop to stop and cancels the in-flight analysis
  /// (safe from any thread; the reply for the cancelled request
  /// reports its positions as kUndecided/cancelled).
  void RequestShutdown();

  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Request accounting, also surfaced by the `stats` method.
  struct Counters {
    uint64_t requests = 0;   // lines received
    uint64_t served = 0;     // replies produced by HandleLine
    uint64_t errors = 0;     // error replies (malformed, failed, ...)
    uint64_t shed = 0;       // replies produced by load-shedding
  };
  Counters counters() const;

 private:
  Json Dispatch(const Json& request);
  Json DoCheck(const Json& request, bool with_explanations);
  Json DoUpdate(const Json& request);
  Json DoStats() const;

  /// Parses and installs `source` as the server program (Create on
  /// first use, incremental Update afterwards). Returns the update
  /// stats (all-dirty on first build).
  Result<SafetyAnalyzer::UpdateStats> InstallProgram(
      const std::string& source);

  /// The per-request failure-model context: the request's deadline (or
  /// the server default) plus the server's cancellation token.
  ExecContext MakeExec(const Json& request) const;

  /// Installs `request`'s exec context on both the live analyzer and
  /// the options a cold Create would read, replacing whatever the
  /// previous request left behind. Called by Dispatch before any
  /// method that can analyze.
  void InstallExec(const Json& request);

  ServerOptions options_;
  std::unique_ptr<SafetyAnalyzer> analyzer_;
  std::atomic<bool> shutdown_{false};
  CancelToken cancel_;

  mutable std::mutex mu_;  // guards counters_
  Counters counters_;
};

/// Builds the error reply for a request line that was shed before
/// analysis (queue overflow or post-shutdown drain). `line` is parsed
/// only to recover the request id; `message` names the reason.
std::string ShedReply(const std::string& line, const std::string& message);

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_SERVER_H_
