#ifndef HORNSAFE_CORE_SERVER_H_
#define HORNSAFE_CORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "core/analyzer.h"
#include "core/pipeline_cache.h"
#include "lang/program.h"
#include "util/deadline.h"
#include "util/json.h"
#include "util/status.h"

namespace hornsafe {

/// Options for the long-lived analysis server (`hornsafe serve`).
struct ServerOptions {
  /// Base analyzer configuration. The failure-model context (`exec`) is
  /// built per request from `deadline_ms` / the server default; the
  /// rest applies to every analysis.
  AnalyzerOptions analyzer;
  /// Shared pipeline cache (not owned; may be null). Requests that
  /// re-check unchanged cones are served from it — including across
  /// concurrent workers (every tier is thread-safe).
  PipelineCache* cache = nullptr;
  /// Deadline applied to requests that carry no "deadline_ms" field.
  /// 0 = no deadline.
  uint64_t default_deadline_ms = 0;
  /// Bounded in-flight request queue: lines read but not yet analyzed.
  size_t max_queue = 64;
  /// Queue-overflow policy. `false` (default) applies backpressure —
  /// the reader blocks until a worker catches up, so every request
  /// is served. `true` sheds load instead: overflowing requests are
  /// answered immediately with an `unavailable` error and never
  /// analyzed.
  bool shed_on_overflow = false;
  /// Worker threads draining the serve queue. 1 (default) keeps the
  /// strict replies-in-request-order contract; N > 1 answers requests
  /// as they complete (each reply still carries its request id), with
  /// checks running concurrently against the published snapshot;
  /// 0 = hardware thread count.
  size_t workers = 1;
  /// Applied to every parsed program before analysis (the CLI installs
  /// standard-builtin registration here; core cannot depend on eval).
  std::function<Status(Program*)> prepare_program;
};

/// Long-lived analysis server speaking line-delimited JSON: one request
/// object per input line, exactly one reply object per request — in
/// request order when `workers == 1` (the default), in completion order
/// otherwise (correlate by id).
///
/// Request:  {"id": 7, "method": "check", "program": "...",
///            "deadline_ms": 50}
/// Reply:    {"id": 7, "ok": true, "result": {...}}
///      or   {"id": 7, "ok": false,
///            "error": {"code": "...", "message": "..."}}
///
/// Methods:
///   check     analyze every query of "program" (or, absent a
///             "program", of the server's current program); a
///             "predicate" field ("name/arity") restricts analysis to
///             that predicate, with an optional "adornment" string of
///             'b'/'f' letters selecting one binding pattern. Verdicts
///             carry the stop reason, so a deadline-degraded
///             kUndecided is distinguishable from a budget-degraded
///             one. A request-supplied "program" is analyzed
///             *ephemerally*: it shares the verdict cache but does NOT
///             replace the served program (only `update` does), so
///             concurrent checks never perturb each other.
///   explain   `check` plus the per-argument explanation text
///             (witness renderings / budget notes).
///   update    replace the server's program, re-running the polynomial
///             pipeline and diffing cone fingerprints; reports how
///             many cones the edit dirtied (the editor loop's
///             cheap-per-keystroke call). The rebuild happens off to
///             the side and is published with one atomic snapshot
///             swap, so concurrent checks keep answering from the old
///             program and never block behind the update (DESIGN.md,
///             D14).
///   lint      static diagnostics for "program" (required), without
///             running any analysis. Always replies ok on well-formed
///             requests — an unparsable program is itself a diagnostic
///             (HS001), not an error reply. The result mirrors
///             `hornsafe lint --json` exactly:
///
///               {"diagnostics": [{"code": "HS005",
///                                 "severity": "error" | "warning"
///                                             | "note",
///                                 "line": 3, "column": 1,
///                                 "message": "...",
///                                 "note": "..."}, ...],
///                "errors": E, "warnings": W, "notes": N}
///
///             "diagnostics" is ordered by (line, column, code); "note"
///             is omitted when empty; "line"/"column" are 0 for
///             diagnostics with no source position; the three counters
///             partition the array by severity. Purely observational:
///             the served program, snapshot and caches are untouched,
///             so lint traffic can interleave with checks and updates
///             at any worker count.
///   stats     analyzer counters, cache statistics and server request
///             accounting (one coherent snapshot of the server
///             counters — never torn values, even mid-traffic).
///   shutdown  acknowledge and stop the serve loop; requests already
///             queued behind it are answered with `unavailable`.
///
/// Failure model (DESIGN.md, D13): a malformed line, an unparsable
/// program, an expired deadline or an analysis error produces an error
/// *reply* — the loop never exits and the process never crashes on
/// untrusted input.
///
/// Thread-safety: `HandleLine` is safe to call concurrently from any
/// number of threads — `Serve` does exactly that with `workers > 1`.
/// Updates serialize among themselves; checks are wait-free with
/// respect to updates (they pin the current snapshot).
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line, returning exactly one reply line
  /// (without the trailing newline). Never throws; safe to call
  /// concurrently.
  std::string HandleLine(const std::string& line);

  /// Reads requests from `in` until EOF or a shutdown request; writes
  /// one reply line per request to `out` (replies interleave by
  /// completion when `workers > 1`). Returns the number of requests
  /// served (including error replies).
  uint64_t Serve(std::istream& in, std::ostream& out);

  /// Binds a unix-domain socket at `path` (unlinking any stale one)
  /// and serves connections sequentially, each with the line protocol
  /// of `Serve`. Returns once a connection sends `shutdown`.
  Status ServeUnixSocket(const std::string& path);

  /// Asks the serve loop to stop and cancels in-flight analyses
  /// (safe from any thread; replies for cancelled requests report
  /// their positions as kUndecided/cancelled).
  void RequestShutdown();

  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Request accounting, also surfaced by the `stats` method. Returned
  /// by value as one mutex-guarded snapshot: the four fields are
  /// mutually consistent (a concurrent reader can never see a served
  /// count ahead of the requests count it belongs to).
  struct Counters {
    uint64_t requests = 0;   // lines received
    uint64_t served = 0;     // replies produced by HandleLine
    uint64_t errors = 0;     // error replies (malformed, failed, ...)
    uint64_t shed = 0;       // replies produced by load-shedding
  };
  Counters counters() const;

  /// The resolved worker count (`options.workers`, with 0 mapped to
  /// the hardware default).
  size_t workers() const;

 private:
  Json Dispatch(const Json& request);
  Json DoCheck(const Json& request, bool with_explanations,
               const ExecContext& exec);
  Json DoUpdate(const Json& request, const ExecContext& exec);
  Json DoLint(const Json& request) const;
  Json DoStats() const;

  /// Parses and installs `source` as the server program (Create on
  /// first use, incremental Update afterwards — both under `exec`).
  /// Installs serialize among themselves; concurrent checks are
  /// undisturbed. Returns the update stats (all-dirty on first build).
  Result<SafetyAnalyzer::UpdateStats> InstallProgram(
      const std::string& source, const ExecContext& exec);

  /// The served analyzer, or null before the first successful install.
  /// The pointer is stable once set (updates mutate the analyzer's
  /// published snapshot, never the analyzer identity).
  std::shared_ptr<SafetyAnalyzer> served_analyzer() const;

  /// Folds a finished ephemeral (check-with-program) analyzer's
  /// counters into the server-wide analyzer totals reported by stats.
  void AccumulateEphemeral(const SafetyAnalyzer::Counters& c);

  /// The per-request failure-model context: the request's deadline (or
  /// the server default) plus the server's cancellation token.
  ExecContext MakeExec(const Json& request) const;

  ServerOptions options_;
  std::atomic<bool> shutdown_{false};
  CancelToken cancel_;

  /// Guards the analyzer pointer (set once, read per request).
  mutable std::mutex analyzer_mu_;
  std::shared_ptr<SafetyAnalyzer> analyzer_;
  /// Serializes InstallProgram's create-or-update decision.
  std::mutex install_mu_;

  mutable std::mutex mu_;  // guards counters_ and the ephemeral totals
  Counters counters_;
  /// Search-counter totals of completed ephemeral analyzers, merged
  /// into the served analyzer's counters by `stats`.
  SafetyAnalyzer::Counters ephemeral_totals_;
  bool ephemeral_seen_ = false;
};

/// Builds the error reply for a request line that was shed before
/// analysis (queue overflow or post-shutdown drain). `line` is parsed
/// only to recover the request id; `message` names the reason.
std::string ShedReply(const std::string& line, const std::string& message);

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_SERVER_H_
