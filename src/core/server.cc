#include "core/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "lint/lint.h"
#include "parser/parser.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace hornsafe {
namespace {

/// Machine-readable error code: the StatusCode name without the 'k'
/// ("DeadlineExceeded" -> "deadline_exceeded" style is overkill; the
/// CamelCase name is stable and greppable).
Json ErrorReply(const Json& id, StatusCode code, const std::string& message) {
  Json reply = Json::Object();
  reply.Set("id", id);
  reply.Set("ok", false);
  Json error = Json::Object();
  error.Set("code", StatusCodeName(code));
  error.Set("message", message);
  reply.Set("error", std::move(error));
  return reply;
}

Json OkReply(const Json& id, Json result) {
  Json reply = Json::Object();
  reply.Set("id", id);
  reply.Set("ok", true);
  reply.Set("result", std::move(result));
  return reply;
}

Json VerdictToJson(const ArgumentVerdict& a, bool with_explanations) {
  Json arg = Json::Object();
  arg.Set("position", uint64_t{a.position});
  arg.Set("safety", SafetyName(a.safety));
  arg.Set("stop", StopReasonName(a.stop));
  arg.Set("steps", a.steps);
  arg.Set("graphs_checked", a.graphs_checked);
  if (with_explanations) arg.Set("explanation", a.explanation);
  return arg;
}

/// Bounded MPMC line queue with close semantics: Push blocks while
/// full (backpressure), TryPush sheds instead, Pop blocks while empty
/// and returns false once the queue is closed and drained. Any number
/// of workers may Pop concurrently.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool Push(std::string line) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(line));
    not_empty_.notify_one();
    return true;
  }

  bool TryPush(std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(line));
    not_empty_.notify_one();
    return true;
  }

  bool Pop(std::string* line) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *line = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<std::string> items_;
  bool closed_ = false;
};

}  // namespace

std::string ShedReply(const std::string& line, const std::string& message) {
  // Best-effort id recovery: the shed path must never analyze, but the
  // client still deserves a correlatable reply.
  Json id;
  if (Result<Json> parsed = Json::Parse(line); parsed.ok()) {
    id = (*parsed)["id"];
  }
  return ErrorReply(id, StatusCode::kUnavailable, message).Dump();
}

Server::Server(ServerOptions options) : options_(std::move(options)) {
  options_.analyzer.cache = options_.cache;
}

Server::~Server() = default;

void Server::RequestShutdown() {
  shutdown_.store(true, std::memory_order_release);
  cancel_.Cancel();
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t Server::workers() const {
  return options_.workers == 0 ? ThreadPool::DefaultThreads()
                               : options_.workers;
}

std::shared_ptr<SafetyAnalyzer> Server::served_analyzer() const {
  std::lock_guard<std::mutex> lock(analyzer_mu_);
  return analyzer_;
}

void Server::AccumulateEphemeral(const SafetyAnalyzer::Counters& c) {
  std::lock_guard<std::mutex> lock(mu_);
  ephemeral_seen_ = true;
  ephemeral_totals_.positions_analyzed += c.positions_analyzed;
  ephemeral_totals_.subset_searches += c.subset_searches;
  ephemeral_totals_.steps += c.steps;
  ephemeral_totals_.graphs_checked += c.graphs_checked;
  ephemeral_totals_.memo_hits += c.memo_hits;
  ephemeral_totals_.memo_misses += c.memo_misses;
  ephemeral_totals_.scc_short_circuits += c.scc_short_circuits;
  ephemeral_totals_.parallel_tasks += c.parallel_tasks;
  ephemeral_totals_.serial_tasks += c.serial_tasks;
  ephemeral_totals_.cache_hits += c.cache_hits;
  ephemeral_totals_.cache_misses += c.cache_misses;
  ephemeral_totals_.stage_canonicalize_ns += c.stage_canonicalize_ns;
  ephemeral_totals_.stage_fingerprint_ns += c.stage_fingerprint_ns;
  ephemeral_totals_.stage_fd_ns += c.stage_fd_ns;
  ephemeral_totals_.stage_adorn_ns += c.stage_adorn_ns;
  ephemeral_totals_.stage_build_ns += c.stage_build_ns;
  ephemeral_totals_.stage_prune_ns += c.stage_prune_ns;
  ephemeral_totals_.stage_scc_ns += c.stage_scc_ns;
  ephemeral_totals_.stage_search_ns += c.stage_search_ns;
  ephemeral_totals_.fragments_spliced += c.fragments_spliced;
  ephemeral_totals_.fragments_rebuilt += c.fragments_rebuilt;
  ephemeral_totals_.segments_total += c.segments_total;
  ephemeral_totals_.segments_grafted += c.segments_grafted;
  ephemeral_totals_.segment_grafts_rejected += c.segment_grafts_rejected;
  ephemeral_totals_.segments_encoded += c.segments_encoded;
  ephemeral_totals_.nodes_shared += c.nodes_shared;
  ephemeral_totals_.nodes_owned += c.nodes_owned;
  // Peaks are gauges: fold with max, not sum.
  ephemeral_totals_.node_table_peak_nodes = std::max(
      ephemeral_totals_.node_table_peak_nodes, c.node_table_peak_nodes);
  ephemeral_totals_.node_table_peak_bytes = std::max(
      ephemeral_totals_.node_table_peak_bytes, c.node_table_peak_bytes);
}

ExecContext Server::MakeExec(const Json& request) const {
  ExecContext exec;
  exec.cancel = &cancel_;
  const Json& dl = request["deadline_ms"];
  if (dl.is_number() && dl.AsNumber() >= 0) {
    // An explicit 0 means "already expired": every position degrades
    // to kUndecided/deadline at step 0, deterministically.
    exec.deadline = Deadline::AfterMillis(dl.AsInt());
  } else if (options_.default_deadline_ms > 0) {
    exec.deadline = Deadline::AfterMillis(
        static_cast<int64_t>(options_.default_deadline_ms));
  }
  return exec;
}

Result<SafetyAnalyzer::UpdateStats> Server::InstallProgram(
    const std::string& source, const ExecContext& exec) {
  HORNSAFE_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  if (options_.prepare_program) {
    HORNSAFE_RETURN_IF_ERROR(options_.prepare_program(&program));
  }
  // Serialize the create-or-update decision: two cold updates racing
  // here must not both Create (one build would be lost along with its
  // counters). Checks do not take this lock — they pin whatever
  // snapshot is currently published.
  std::lock_guard<std::mutex> lock(install_mu_);
  if (std::shared_ptr<SafetyAnalyzer> live = served_analyzer()) {
    return live->Update(program, exec);
  }
  AnalyzerOptions aopts = options_.analyzer;
  aopts.exec = exec;
  HORNSAFE_ASSIGN_OR_RETURN(SafetyAnalyzer analyzer,
                            SafetyAnalyzer::Create(program, aopts));
  auto fresh = std::make_shared<SafetyAnalyzer>(std::move(analyzer));
  SafetyAnalyzer::UpdateStats stats;
  stats.predicates = fresh->snapshot()->canon->program.num_predicates();
  stats.dirty_predicates = stats.predicates;  // cold build: all new
  {
    std::lock_guard<std::mutex> publish(analyzer_mu_);
    analyzer_ = std::move(fresh);
  }
  return stats;
}

Json Server::DoUpdate(const Json& request, const ExecContext& exec) {
  const Json& program = request["program"];
  if (!program.is_string()) {
    return ErrorReply(request["id"], StatusCode::kParseError,
                      "update requires a string \"program\" field");
  }
  auto stats = InstallProgram(program.AsString(), exec);
  if (!stats.ok()) {
    return ErrorReply(request["id"], stats.status().code(),
                      stats.status().message());
  }
  Json result = Json::Object();
  result.Set("predicates", uint64_t{stats->predicates});
  result.Set("dirty_predicates", uint64_t{stats->dirty_predicates});
  result.Set("clean_predicates", uint64_t{stats->clean_predicates});
  return OkReply(request["id"], std::move(result));
}

Json Server::DoLint(const Json& request) const {
  const Json& program_field = request["program"];
  if (!program_field.is_string()) {
    return ErrorReply(request["id"], StatusCode::kParseError,
                      "lint requires a string \"program\" field");
  }
  // No snapshot, no analysis, no state: lint is a pure function of the
  // request text, which is what makes its replies trivially identical
  // across worker counts and fault schedules.
  std::vector<Diagnostic> diags;
  Result<Program> program = ParseProgram(program_field.AsString());
  if (!program.ok()) {
    diags.push_back(DiagnosticFromStatus(program.status()));
  } else {
    if (options_.prepare_program) {
      if (Status st = options_.prepare_program(&*program); !st.ok()) {
        return ErrorReply(request["id"], st.code(), st.message());
      }
    }
    diags = LintProgram(*program);
  }
  return OkReply(request["id"], DiagnosticsToJson(diags));
}

Json Server::DoCheck(const Json& request, bool with_explanations,
                     const ExecContext& exec) {
  // A request-supplied program is analyzed by a one-shot analyzer that
  // shares the verdict cache (repeated checks of the same cones stay
  // warm) but is never installed: only `update` replaces the served
  // program, so concurrent checks cannot perturb each other or block
  // behind this build.
  std::optional<SafetyAnalyzer> ephemeral;
  std::shared_ptr<SafetyAnalyzer> served;
  SafetyAnalyzer* analyzer = nullptr;
  if (request["program"].is_string()) {
    Result<Program> program = ParseProgram(request["program"].AsString());
    if (!program.ok()) {
      return ErrorReply(request["id"], program.status().code(),
                        program.status().message());
    }
    if (options_.prepare_program) {
      if (Status st = options_.prepare_program(&*program); !st.ok()) {
        return ErrorReply(request["id"], st.code(), st.message());
      }
    }
    AnalyzerOptions aopts = options_.analyzer;
    aopts.exec = exec;
    Result<SafetyAnalyzer> created = SafetyAnalyzer::Create(*program, aopts);
    if (!created.ok()) {
      return ErrorReply(request["id"], created.status().code(),
                        created.status().message());
    }
    ephemeral.emplace(std::move(*created));
    analyzer = &*ephemeral;
  } else {
    served = served_analyzer();
    if (served == nullptr) {
      return ErrorReply(request["id"], StatusCode::kNotFound,
                        "no program installed; send \"program\" with check "
                        "or call update first");
    }
    analyzer = served.get();
  }

  // Pin the snapshot once: every read below — predicate lookup, query
  // iteration, analysis — sees this build even if an update swaps a new
  // one in mid-request.
  std::shared_ptr<const AnalysisSnapshot> snap = analyzer->snapshot();
  const Program& prog = snap->canon->program;

  Json queries = Json::Array();
  if (request["predicate"].is_string()) {
    // Targeted form: {"predicate": "p/2", "adornment": "bf"}.
    const std::string& spec = request["predicate"].AsString();
    size_t slash = spec.rfind('/');
    uint32_t arity = 0;
    PredicateId pred = kInvalidPredicate;
    if (slash != std::string::npos) {
      arity = static_cast<uint32_t>(
          std::strtoul(spec.c_str() + slash + 1, nullptr, 10));
      pred = prog.FindPredicate(spec.substr(0, slash), arity);
    }
    if (pred == kInvalidPredicate) {
      return ErrorReply(request["id"], StatusCode::kNotFound,
                        StrCat("unknown predicate '", spec, "'"));
    }
    uint64_t mask = 0;
    const Json& adornment = request["adornment"];
    if (adornment.is_string()) {
      const std::string& bits = adornment.AsString();
      if (bits.size() != arity) {
        return ErrorReply(request["id"], StatusCode::kParseError,
                          StrCat("adornment '", bits, "' does not match ",
                                 spec));
      }
      for (size_t k = 0; k < bits.size(); ++k) {
        if (bits[k] == 'b') mask |= uint64_t{1} << k;
      }
    }
    QueryAnalysis analysis = analyzer->AnalyzePredicate(*snap, pred, mask,
                                                        exec);
    Json q = Json::Object();
    q.Set("query", spec);
    q.Set("safety", SafetyName(analysis.overall));
    Json args = Json::Array();
    for (const ArgumentVerdict& a : analysis.args) {
      args.Append(VerdictToJson(a, with_explanations));
    }
    q.Set("args", std::move(args));
    queries.Append(std::move(q));
  } else {
    for (const Literal& lit : prog.queries()) {
      QueryAnalysis analysis = analyzer->AnalyzeQueryLiteral(*snap, lit,
                                                             exec);
      Json q = Json::Object();
      q.Set("query", prog.ToString(lit));
      q.Set("safety", SafetyName(analysis.overall));
      Json args = Json::Array();
      for (const ArgumentVerdict& a : analysis.args) {
        args.Append(VerdictToJson(a, with_explanations));
      }
      q.Set("args", std::move(args));
      queries.Append(std::move(q));
    }
  }
  if (ephemeral) AccumulateEphemeral(ephemeral->counters());
  Json result = Json::Object();
  result.Set("queries", std::move(queries));
  return OkReply(request["id"], std::move(result));
}

Json Server::DoStats() const {
  Json result = Json::Object();
  std::shared_ptr<SafetyAnalyzer> served = served_analyzer();
  SafetyAnalyzer::Counters c;
  bool have_analyzer = served != nullptr;
  if (served != nullptr) c = served->counters();
  {
    // Fold in the totals of completed ephemeral (check-with-program)
    // analyzers, so `stats` reflects all analysis work the server did.
    std::lock_guard<std::mutex> lock(mu_);
    if (ephemeral_seen_) have_analyzer = true;
    c.positions_analyzed += ephemeral_totals_.positions_analyzed;
    c.subset_searches += ephemeral_totals_.subset_searches;
    c.steps += ephemeral_totals_.steps;
    c.graphs_checked += ephemeral_totals_.graphs_checked;
    c.memo_hits += ephemeral_totals_.memo_hits;
    c.memo_misses += ephemeral_totals_.memo_misses;
    c.scc_short_circuits += ephemeral_totals_.scc_short_circuits;
    c.cache_hits += ephemeral_totals_.cache_hits;
    c.cache_misses += ephemeral_totals_.cache_misses;
    c.stage_canonicalize_ns += ephemeral_totals_.stage_canonicalize_ns;
    c.stage_fingerprint_ns += ephemeral_totals_.stage_fingerprint_ns;
    c.stage_fd_ns += ephemeral_totals_.stage_fd_ns;
    c.stage_adorn_ns += ephemeral_totals_.stage_adorn_ns;
    c.stage_build_ns += ephemeral_totals_.stage_build_ns;
    c.stage_prune_ns += ephemeral_totals_.stage_prune_ns;
    c.stage_scc_ns += ephemeral_totals_.stage_scc_ns;
    c.stage_search_ns += ephemeral_totals_.stage_search_ns;
    c.fragments_spliced += ephemeral_totals_.fragments_spliced;
    c.fragments_rebuilt += ephemeral_totals_.fragments_rebuilt;
    c.segments_total += ephemeral_totals_.segments_total;
    c.segments_grafted += ephemeral_totals_.segments_grafted;
    c.segment_grafts_rejected += ephemeral_totals_.segment_grafts_rejected;
    c.segments_encoded += ephemeral_totals_.segments_encoded;
    c.nodes_shared += ephemeral_totals_.nodes_shared;
    c.nodes_owned += ephemeral_totals_.nodes_owned;
    c.node_table_peak_nodes =
        std::max(c.node_table_peak_nodes, ephemeral_totals_.node_table_peak_nodes);
    c.node_table_peak_bytes =
        std::max(c.node_table_peak_bytes, ephemeral_totals_.node_table_peak_bytes);
  }
  if (have_analyzer) {
    Json a = Json::Object();
    a.Set("positions_analyzed", c.positions_analyzed);
    a.Set("subset_searches", c.subset_searches);
    a.Set("steps", c.steps);
    a.Set("memo_hits", c.memo_hits);
    a.Set("memo_misses", c.memo_misses);
    a.Set("cache_hits", c.cache_hits);
    a.Set("cache_misses", c.cache_misses);
    a.Set("snapshot_swaps", c.snapshot_swaps);
    a.Set("stage_canonicalize_ns", c.stage_canonicalize_ns);
    a.Set("stage_fingerprint_ns", c.stage_fingerprint_ns);
    a.Set("stage_fd_ns", c.stage_fd_ns);
    a.Set("stage_adorn_ns", c.stage_adorn_ns);
    a.Set("stage_build_ns", c.stage_build_ns);
    a.Set("stage_prune_ns", c.stage_prune_ns);
    a.Set("stage_scc_ns", c.stage_scc_ns);
    a.Set("stage_search_ns", c.stage_search_ns);
    a.Set("fragments_spliced", c.fragments_spliced);
    a.Set("fragments_rebuilt", c.fragments_rebuilt);
    a.Set("segments_total", c.segments_total);
    a.Set("segments_grafted", c.segments_grafted);
    a.Set("segment_grafts_rejected", c.segment_grafts_rejected);
    a.Set("segments_encoded", c.segments_encoded);
    a.Set("nodes_shared", c.nodes_shared);
    a.Set("nodes_owned", c.nodes_owned);
    a.Set("node_table_peak_nodes", c.node_table_peak_nodes);
    a.Set("node_table_peak_bytes", c.node_table_peak_bytes);
    result.Set("analyzer", std::move(a));
  }
  if (options_.cache != nullptr) {
    PipelineCacheStats s = options_.cache->stats();
    Json cs = Json::Object();
    cs.Set("verdict_hits", s.verdict_hits);
    cs.Set("verdict_misses", s.verdict_misses);
    cs.Set("disk_hits", s.disk_hits);
    cs.Set("disk_misses", s.disk_misses);
    cs.Set("disk_corrupt", s.disk_corrupt);
    cs.Set("disk_write_failures", s.disk_write_failures);
    cs.Set("disk_write_skips", s.disk_write_skips);
    cs.Set("disk_retry_attempts", s.disk_retry_attempts);
    cs.Set("tmp_files_swept", s.tmp_files_swept);
    cs.Set("lease_acquisitions", s.lease_acquisitions);
    cs.Set("stale_leases_recovered", s.stale_leases_recovered);
    cs.Set("manifest_generation", s.manifest_generation);
    cs.Set("manifest_rollbacks", s.manifest_rollbacks);
    cs.Set("fragment_hits", s.fragment_hits);
    cs.Set("fragment_misses", s.fragment_misses);
    cs.Set("fragment_insertions", s.fragment_insertions);
    cs.Set("fragment_evictions", s.fragment_evictions);
    cs.Set("segment_hits", s.segment_hits);
    cs.Set("segment_misses", s.segment_misses);
    cs.Set("segment_insertions", s.segment_insertions);
    cs.Set("segment_evictions", s.segment_evictions);
    cs.Set("fd_index_hits", s.fd_index_hits);
    cs.Set("fd_index_misses", s.fd_index_misses);
    cs.Set("pred_hash_hits", s.pred_hash_hits);
    cs.Set("pred_hash_misses", s.pred_hash_misses);
    result.Set("cache", std::move(cs));
  }
  Counters sc = counters();
  Json srv = Json::Object();
  srv.Set("requests", sc.requests);
  srv.Set("served", sc.served);
  srv.Set("errors", sc.errors);
  srv.Set("shed", sc.shed);
  srv.Set("workers", uint64_t{workers()});
  result.Set("server", std::move(srv));
  return OkReply(Json(), std::move(result));
}

Json Server::Dispatch(const Json& request) {
  if (!request.is_object()) {
    return ErrorReply(Json(), StatusCode::kParseError,
                      "request must be a JSON object");
  }
  const Json& method = request["method"];
  if (!method.is_string()) {
    return ErrorReply(request["id"], StatusCode::kParseError,
                      "request requires a string \"method\" field");
  }
  const std::string& m = method.AsString();
  // The per-request failure-model context is a value threaded through
  // the call tree — never installed on shared state, so concurrent
  // requests each run under their own deadline (and a stale deadline
  // can never poison a later request).
  ExecContext exec = MakeExec(request);
  if (m == "check") {
    return DoCheck(request, /*with_explanations=*/false, exec);
  }
  if (m == "explain") {
    return DoCheck(request, /*with_explanations=*/true, exec);
  }
  if (m == "update") return DoUpdate(request, exec);
  if (m == "lint") return DoLint(request);
  if (m == "stats") {
    Json reply = DoStats();
    reply.Set("id", request["id"]);
    return reply;
  }
  if (m == "shutdown") {
    RequestShutdown();
    Json result = Json::Object();
    result.Set("shutdown", true);
    return OkReply(request["id"], std::move(result));
  }
  return ErrorReply(request["id"], StatusCode::kUnsupported,
                    StrCat("unknown method '", m, "'"));
}

std::string Server::HandleLine(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
  }
  Json reply;
  // The failure-model contract: no request line may terminate the
  // serve loop. Status-based errors become error replies above; the
  // catch-all converts anything escaping as an exception (e.g.
  // bad_alloc on a pathological request) into one too.
  try {
    Result<Json> request = Json::Parse(line);
    if (!request.ok()) {
      reply = ErrorReply(Json(), request.status().code(),
                         request.status().message());
    } else {
      reply = Dispatch(*request);
    }
  } catch (const std::exception& e) {
    reply = ErrorReply(Json(), StatusCode::kInternal,
                       StrCat("internal error: ", e.what()));
  } catch (...) {
    reply = ErrorReply(Json(), StatusCode::kInternal, "internal error");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.served;
    if (!reply["ok"].AsBool()) ++counters_.errors;
  }
  return reply.Dump();
}

uint64_t Server::Serve(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  auto emit = [&](const std::string& reply) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << reply << '\n';
    out.flush();
  };

  BoundedQueue queue(options_.max_queue);
  // Incremented by workers for queued requests and by the reader on
  // the shed path, concurrently.
  std::atomic<uint64_t> replies{0};
  const size_t num_workers = workers();
  auto worker_loop = [&] {
    std::string line;
    while (queue.Pop(&line)) {
      if (shutdown_requested()) {
        // Requests queued behind a shutdown are acknowledged, not
        // analyzed.
        emit(ShedReply(line, "server is shutting down"));
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.shed;
      } else {
        emit(HandleLine(line));
      }
      replies.fetch_add(1, std::memory_order_relaxed);
      if (shutdown_requested()) queue.Close();
    }
  };
  // Scoped to this call: the pool's destructor (below, after the queue
  // closes) joins every worker loop. Detached submission — the loops
  // report nothing; completion is the join.
  auto pool = std::make_unique<ThreadPool>(num_workers);
  for (size_t w = 0; w < num_workers; ++w) pool->SubmitDetached(worker_loop);

  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    if (options_.shed_on_overflow) {
      if (!queue.TryPush(line)) {
        if (shutdown_requested()) break;
        emit(ShedReply(line, StrCat("request queue full (",
                                    options_.max_queue, " in flight)")));
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++counters_.shed;
        }
        replies.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      if (!queue.Push(line)) break;  // closed by shutdown
    }
  }
  queue.Close();
  pool.reset();  // drain + join the worker loops
  return replies.load(std::memory_order_relaxed);
}

Status Server::ServeUnixSocket(const std::string& path) {
  sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::ParseError(
        StrCat("socket path too long: '", path, "'"));
  }
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::Internal(
        StrCat("socket: ",
               // NOLINTNEXTLINE(concurrency-mt-unsafe): errno is
               // captured on the single accept thread.
               std::strerror(errno)));
  }
  ::unlink(path.c_str());  // stale socket from a crashed server
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    Status st = Status::Internal(
        StrCat("bind/listen on '", path,
               // NOLINTNEXTLINE(concurrency-mt-unsafe): accept thread only.
               "': ", std::strerror(errno)));
    ::close(listener);
    return st;
  }
  // Connections are accepted sequentially: interleaving clients would
  // interleave their update/check streams (each connection still gets
  // the full worker-pool treatment on stdin serve; socket serve is the
  // single-editor path).
  while (!shutdown_requested()) {
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      ::close(listener);
      ::unlink(path.c_str());
      return Status::Internal(
          StrCat("accept: ",
                 // NOLINTNEXTLINE(concurrency-mt-unsafe): accept thread only.
                 std::strerror(errno)));
    }
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open && !shutdown_requested()) {
      ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t start = 0;
      for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
           nl = buffer.find('\n', start)) {
        std::string line = buffer.substr(start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        std::string reply = HandleLine(line);
        reply.push_back('\n');
        size_t off = 0;
        while (off < reply.size()) {
          ssize_t w = ::write(conn, reply.data() + off, reply.size() - off);
          if (w < 0 && errno == EINTR) continue;
          if (w <= 0) {
            open = false;  // client went away; drop the connection
            break;
          }
          off += static_cast<size_t>(w);
        }
        if (!open) break;
      }
      buffer.erase(0, start);
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return Status::Ok();
}

}  // namespace hornsafe
