#include "core/pipeline_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "lang/struct_hash.h"
#include "util/fault.h"
#include "util/proc.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

constexpr char kDiskMagic[4] = {'H', 'S', 'V', 'C'};
constexpr char kManifestName[] = "MANIFEST";
/// Manifest temp files deliberately avoid the ".tmp." marker so the
/// entry-tmp sweep never races a manifest publish; they get their own
/// "MANIFEST.new." sweep rule.
constexpr char kManifestTmpPrefix[] = "MANIFEST.new.";

/// Seconds since `p` was last written (0 on stat failure — a file we
/// cannot stat is treated as brand new and left alone).
int64_t FileAgeSeconds(const std::filesystem::path& p) {
  std::error_code ec;
  auto mtime = std::filesystem::last_write_time(p, ec);
  if (ec) return 0;
  auto now = std::filesystem::file_time_type::clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(now - mtime)
      .count();
}

bool IsTmpFileName(const std::string& name) {
  return name.find(".tmp.") != std::string::npos ||
         name.rfind(kManifestTmpPrefix, 0) == 0;
}

bool IsEntryFileName(const std::string& name) {
  return name.size() > 4 &&
         name.compare(name.size() - 4, 4, ".hsv") == 0 &&
         !IsTmpFileName(name);
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
          << (8 * i);
  }
  *pos += 4;
  return true;
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

/// Raw FNV-1a over the serialized payload (not MixHash-finalized; this
/// is an integrity check, not an addressing hash).
uint64_t Checksum(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string CacheKey::ToHex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

PipelineCache::PipelineCache(Options options)
    : options_(std::move(options)) {
  if (options_.max_entries == 0) options_.max_entries = 1;
  if (options_.disk_retries < 0) options_.disk_retries = 0;
  shard_count_ =
      options_.max_entries >= kVerdictShards * 64 ? kVerdictShards : 1;
  shard_capacity_ =
      (options_.max_entries + shard_count_ - 1) / shard_count_;
  if (options_.tmp_grace_seconds < 0) options_.tmp_grace_seconds = 0;
  if (!options_.dir.empty()) OpenDiskTier();
}

std::string PipelineCache::ShardDirOf(const std::string& dir,
                                      const CacheKey& key) {
  static const char kHex[] = "0123456789abcdef";
  char digit = kHex[key.lo & (kDiskShards - 1)];
  return StrCat(dir, "/shard-", std::string(1, digit));
}

std::string PipelineCache::EntryPath(const std::string& dir,
                                     const CacheKey& key) {
  return StrCat(ShardDirOf(dir, key), "/", key.ToHex(), ".hsv");
}

uint64_t PipelineCache::SweepTmpFilesLocked(const std::string& shard_dir) {
  namespace fs = std::filesystem;
  uint64_t swept = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(shard_dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (!IsTmpFileName(name)) continue;
    // Grace window: a tmp file younger than this may belong to a
    // writer that raced us to the shard lease (acquired it after our
    // try-lock, or is between create and lease in a crashed-and-
    // restarted path). Past the window, a tmp under a lease we hold is
    // provably abandoned.
    if (FileAgeSeconds(entry.path()) < options_.tmp_grace_seconds) continue;
    fs::remove(entry.path(), ec);
    if (!ec) ++swept;
  }
  return swept;
}

void PipelineCache::OpenDiskTier() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) return;  // no disk tier this run; stores will retry creation

  uint64_t migrated = 0;
  uint64_t swept = 0;
  // Migrate pre-shard flat-layout entries ("<dir>/<32 hex>-....hsv")
  // into their shard so old caches stay warm across the layout change;
  // top-level tmp and manifest-tmp leftovers age out under the grace
  // window (no shard lease exists for the legacy layout).
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (IsTmpFileName(name)) {
      if (FileAgeSeconds(entry.path()) >= options_.tmp_grace_seconds) {
        fs::remove(entry.path(), ec);
        if (!ec) ++swept;
      }
      continue;
    }
    // "<16 hex>-<16 hex>.hsv" — the shard digit is the last hex char
    // of `lo` (EntryPath uses lo's low bits).
    if (!IsEntryFileName(name) || name.size() != 37 || name[16] != '-') {
      continue;
    }
    char digit = name[32];
    bool hex = (digit >= '0' && digit <= '9') || (digit >= 'a' && digit <= 'f');
    if (!hex) continue;
    std::string shard_dir =
        StrCat(options_.dir, "/shard-", std::string(1, digit));
    fs::create_directories(shard_dir, ec);
    fs::rename(entry.path(), fs::path(shard_dir) / name, ec);
    if (!ec) ++migrated;
  }

  RecoverManifest();

  // Per-shard crash recovery, under each shard's write lease. A busy
  // lease means a live writer owns the shard right now — its tmp files
  // are live and its lease record is current, so skip it entirely
  // (this is what makes the open-time sweep safe against concurrent
  // writers).
  uint64_t stale = 0;
  static const char kHex[] = "0123456789abcdef";
  for (size_t s = 0; s < kDiskShards; ++s) {
    std::string shard_dir =
        StrCat(options_.dir, "/shard-", std::string(1, kHex[s]));
    fs::create_directories(shard_dir, ec);
    auto lock_or = FileLock::TryAcquire(StrCat(shard_dir, "/.lease"));
    if (!lock_or.ok() || !lock_or.value().held()) continue;
    FileLock lease = std::move(lock_or.value());
    // A store clears its lease record before releasing; a non-empty
    // record under a lease we could take is a writer that died
    // mid-store. The pid + boot-id check guards against the one
    // ambiguity flock cannot see: a record whose pid was recycled by
    // an unrelated live process.
    std::string record = lease.ReadRecord();
    if (!record.empty() && LeaseRecordStale(record)) {
      lease.WriteRecord("");
      ++stale;
    }
    swept += SweepTmpFilesLocked(shard_dir);
  }

  std::lock_guard<std::mutex> lock(misc_mu_);
  misc_stats_.legacy_entries_migrated += migrated;
  misc_stats_.tmp_files_swept += swept;
  misc_stats_.stale_leases_recovered += stale;
}

void PipelineCache::RecoverManifest() {
  namespace fs = std::filesystem;
  std::string path = StrCat(options_.dir, "/", kManifestName);
  std::string data;
  {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      char buf[256];
      for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) break;
        data.append(buf, static_cast<size_t>(n));
        if (data.size() > 4096) break;
      }
      ::close(fd);
    }
  }

  // "HSMF 1 gen <G>\nsum <16 hex>\n" — the sum line is FNV over the
  // first line, so a torn or bit-flipped manifest is detected, not
  // trusted.
  uint64_t generation = 0;
  bool parsed = false;
  if (!data.empty()) {
    size_t nl = data.find('\n');
    if (nl != std::string::npos && data.rfind("HSMF 1 gen ", 0) == 0) {
      std::string line = data.substr(0, nl);
      uint64_t g = 0;
      bool num_ok = line.size() > 11;
      for (size_t i = 11; i < line.size() && num_ok; ++i) {
        if (line[i] < '0' || line[i] > '9') num_ok = false;
        else g = g * 10 + static_cast<uint64_t>(line[i] - '0');
      }
      char want[32];
      std::snprintf(want, sizeof(want), "sum %016llx",
                    static_cast<unsigned long long>(Checksum(line)));
      std::string rest = data.substr(nl + 1);
      if (num_ok && rest.rfind(want, 0) == 0) {
        generation = g;
        parsed = true;
      }
    }
  }

  if (parsed) {
    std::lock_guard<std::mutex> lock(misc_mu_);
    manifest_generation_ = generation;
    misc_stats_.manifest_generation = generation;
    return;
  }

  // Missing or corrupt: roll back to a fresh generation. Election via
  // the compaction lock keeps concurrent openers from stamping over
  // each other; losing the election just means the winner repairs it.
  bool corrupt = !data.empty();
  auto lock_or = FileLock::TryAcquire(StrCat(options_.dir, "/.compact.lock"));
  bool wrote = false;
  if (lock_or.ok() && lock_or.value().held()) {
    wrote = WriteManifestFile(1);
  }
  std::lock_guard<std::mutex> lock(misc_mu_);
  manifest_generation_ = 1;
  misc_stats_.manifest_generation = 1;
  if (corrupt && wrote) ++misc_stats_.manifest_rollbacks;
}

bool PipelineCache::WriteManifestFile(uint64_t generation) {
  std::string line = StrCat("HSMF 1 gen ", generation);
  char sum[32];
  std::snprintf(sum, sizeof(sum), "sum %016llx",
                static_cast<unsigned long long>(Checksum(line)));
  std::string data = StrCat(line, "\n", sum, "\n");
  std::string path = StrCat(options_.dir, "/", kManifestName);
  std::string tmp =
      StrCat(options_.dir, "/", kManifestTmpPrefix, ::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  size_t off = 0;
  bool ok = true;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

std::optional<CachedVerdict> PipelineCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      return it->second->verdict;
    }
  }
  if (!options_.dir.empty()) {
    std::optional<CachedVerdict> from_disk = DiskLookup(key);
    if (from_disk) {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.hits;
      if (shard.index.find(key) == shard.index.end()) {
        InsertLocked(shard, key, *from_disk);
      }
      return from_disk;
    }
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.misses;
  return std::nullopt;
}

void PipelineCache::Store(const CacheKey& key, const CachedVerdict& verdict) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->verdict = verdict;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      InsertLocked(shard, key, verdict);
      ++shard.insertions;
    }
  }
  if (!options_.dir.empty()) DiskStore(key, verdict);
}

void PipelineCache::InsertLocked(Shard& shard, const CacheKey& key,
                                 const CachedVerdict& verdict) {
  shard.lru.push_front({key, verdict});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::string PipelineCache::DiskPath(const CacheKey& key) const {
  return EntryPath(options_.dir, key);
}

void PipelineCache::RetryBackoff(int attempt) {
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_retry_attempts;
  }
  if (options_.retry_backoff_us == 0) return;
  uint64_t us = static_cast<uint64_t>(options_.retry_backoff_us)
                << (attempt > 0 ? attempt - 1 : 0);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

std::optional<CachedVerdict> PipelineCache::DiskLookup(const CacheKey& key) {
  std::string path = DiskPath(key);
  FaultInjector& faults = FaultInjector::Global();
  std::string data;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) RetryBackoff(attempt);
    faults.MaybeCrash();
    // EIO is transient: retry with backoff, then degrade to a miss.
    if (faults.ShouldInject(FaultKind::kReadError)) {
      if (attempt < options_.disk_retries) continue;
      std::lock_guard<std::mutex> lock(misc_mu_);
      ++misc_stats_.disk_read_failures;
      return std::nullopt;
    }
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        std::lock_guard<std::mutex> lock(misc_mu_);
        ++misc_stats_.disk_misses;
        return std::nullopt;
      }
      if (attempt < options_.disk_retries) continue;
      std::lock_guard<std::mutex> lock(misc_mu_);
      ++misc_stats_.disk_read_failures;
      return std::nullopt;
    }
    data.clear();
    char buf[4096];
    bool read_ok = true;
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        read_ok = false;
        break;
      }
      data.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    if (read_ok) break;
    if (attempt >= options_.disk_retries) {
      std::lock_guard<std::mutex> lock(misc_mu_);
      ++misc_stats_.disk_read_failures;
      return std::nullopt;
    }
  }
  // Media corruption: flip one bit of what we read back. The checksum
  // (or a structural check) below catches it; the entry is unlinked so
  // the next store repairs it.
  if (faults.ShouldInject(FaultKind::kBitFlip)) faults.CorruptOneBit(&data);

  auto corrupt = [&]() -> std::optional<CachedVerdict> {
    // A bad entry is just a miss; drop the file so it is not re-read.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_corrupt;
    return std::nullopt;
  };

  if (data.size() < sizeof(kDiskMagic) + 4 + 8 ||
      std::memcmp(data.data(), kDiskMagic, sizeof(kDiskMagic)) != 0) {
    return corrupt();
  }
  std::string_view payload(data.data() + sizeof(kDiskMagic),
                           data.size() - sizeof(kDiskMagic) - 8);
  size_t pos = sizeof(kDiskMagic);
  uint32_t version = 0;
  if (!ReadU32(data, &pos, &version) || version != kDiskFormatVersion) {
    return corrupt();
  }
  uint64_t stored_hi = 0, stored_lo = 0;
  if (!ReadU64(data, &pos, &stored_hi) || !ReadU64(data, &pos, &stored_lo) ||
      stored_hi != key.hi || stored_lo != key.lo) {
    return corrupt();
  }
  CachedVerdict out;
  uint32_t verdict_raw = 0, explanation_len = 0;
  if (!ReadU32(data, &pos, &verdict_raw) || verdict_raw > 2 ||
      !ReadU64(data, &pos, &out.steps) ||
      !ReadU64(data, &pos, &out.graphs_checked) ||
      !ReadU64(data, &pos, &out.memo_hits) ||
      !ReadU64(data, &pos, &out.memo_misses) ||
      !ReadU64(data, &pos, &out.scc_short_circuits) ||
      !ReadU32(data, &pos, &explanation_len) ||
      pos + explanation_len + 8 != data.size()) {
    return corrupt();
  }
  out.verdict = static_cast<Safety>(verdict_raw);
  out.explanation = data.substr(pos, explanation_len);
  pos += explanation_len;
  uint64_t stored_sum = 0;
  if (!ReadU64(data, &pos, &stored_sum) || stored_sum != Checksum(payload)) {
    return corrupt();
  }
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_hits;
  }
  return out;
}

void PipelineCache::DiskStore(const CacheKey& key,
                              const CachedVerdict& verdict) {
  std::error_code ec;
  std::string shard_dir = ShardDirOf(options_.dir, key);
  std::filesystem::create_directories(shard_dir, ec);

  std::string payload;
  AppendU32(&payload, kDiskFormatVersion);
  AppendU64(&payload, key.hi);
  AppendU64(&payload, key.lo);
  AppendU32(&payload, static_cast<uint32_t>(verdict.verdict));
  AppendU64(&payload, verdict.steps);
  AppendU64(&payload, verdict.graphs_checked);
  AppendU64(&payload, verdict.memo_hits);
  AppendU64(&payload, verdict.memo_misses);
  AppendU64(&payload, verdict.scc_short_circuits);
  AppendU32(&payload, static_cast<uint32_t>(verdict.explanation.size()));
  payload += verdict.explanation;

  std::string data(kDiskMagic, sizeof(kDiskMagic));
  data += payload;
  AppendU64(&data, Checksum(payload));

  // Write-temp-fsync-rename so a concurrent reader (or a crash) never
  // sees a torn entry. Transient failures (EIO, short write) retry
  // with backoff; ENOSPC downgrades the store to memory-only.
  std::string path = DiskPath(key);
  std::string tmp = StrCat(path, ".tmp.", ::getpid(), ".",
                           tmp_seq_.fetch_add(1, std::memory_order_relaxed));
  FaultInjector& faults = FaultInjector::Global();

  faults.MaybeCrash();
  // The shard write lease: held (blocking flock) for the whole store so
  // sweepers and compactors know this shard has a live writer — a tmp
  // file only ever exists while its writer holds the lease. The kernel
  // drops the flock if we die; the pid+boot record we leave behind is
  // what the next opener's stale-lease recovery reads. On every normal
  // exit from this function the record is cleared before release, so a
  // surviving record *is* the crash evidence.
  auto lease_or = FileLock::Acquire(StrCat(shard_dir, "/.lease"));
  if (!lease_or.ok()) {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_write_failures;
    return;
  }
  FileLock lease = std::move(lease_or.value());
  lease.WriteRecord(FormatLeaseRecord(::getpid(), BootId()));
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.lease_acquisitions;
  }
  struct ClearRecord {
    FileLock* lease;
    bool steal;
    ~ClearRecord() {
      // Normal exit erases the crash evidence; an injected steal leaves
      // a dead foreign holder's record in its place (modeling a
      // half-recovered crash or clock-skewed NFS client), which the
      // next opener must classify stale and absorb.
      lease->WriteRecord(steal ? FormatLeaseRecord(1 << 30, "stolen-boot")
                               : "");
    }
  } clear_record{&lease, faults.ShouldInject(FaultKind::kLeaseSteal)};

  auto skip_full_disk = [&]() {
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_write_skips;
  };
  auto fail = [&]() {
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_write_failures;
  };

  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) RetryBackoff(attempt);
    // One ENOSPC decision per attempt, spread uniformly over the three
    // syscalls that can hit a full disk (open / fsync / rename), so
    // the fault is visible in exactly one counter (disk_write_skips)
    // no matter where it lands. -1 = not injected this attempt.
    int enospc_at =
        faults.ShouldInject(FaultKind::kEnospc)
            ? static_cast<int>(faults.PickPoint(3))
            : -1;
    faults.MaybeCrash();
    if (enospc_at == 0) return skip_full_disk();
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      if (errno == ENOSPC || errno == EDQUOT) return skip_full_disk();
      if (attempt < options_.disk_retries) continue;
      return fail();
    }
    // Decide how much of the payload "reaches" the file: all of it, or
    // an injected strict prefix (short write), or nothing (EIO).
    size_t want = data.size();
    bool injected_failure = false;
    if (faults.ShouldInject(FaultKind::kWriteError)) {
      want = 0;
      injected_failure = true;
    } else if (faults.ShouldInject(FaultKind::kShortWrite)) {
      want = faults.TornLength(data.size());
      injected_failure = true;
    }
    bool io_ok = true;
    bool full_disk = false;
    size_t off = 0;
    while (off < want) {
      ssize_t n = ::write(fd, data.data() + off, want - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        full_disk = errno == ENOSPC || errno == EDQUOT;
        io_ok = false;
        break;
      }
      off += static_cast<size_t>(n);
    }
    if (io_ok && injected_failure) io_ok = false;
    faults.MaybeCrash();
    // Flush file contents before the rename publishes them — without
    // this a crash after rename can leave a successfully named entry
    // with zero-filled pages on journaled filesystems. fsync is also
    // where delayed-allocation filesystems first report a full disk,
    // so ENOSPC here (real or injected) is a non-fatal skip, not a
    // write failure.
    if (io_ok) {
      if (enospc_at == 1) {
        io_ok = false;
        full_disk = true;
      } else if (::fsync(fd) != 0) {
        full_disk = errno == ENOSPC || errno == EDQUOT;
        io_ok = false;
      }
    }
    ::close(fd);
    if (!io_ok) {
      if (full_disk) return skip_full_disk();
      ::unlink(tmp.c_str());
      if (attempt < options_.disk_retries) continue;
      return fail();
    }
    // A torn rename models a crash on a filesystem that reorders
    // metadata: the destination name appears but holds a truncated
    // payload. The writer cannot observe this — the entry is published
    // and the *reader's* checksum must catch it (then self-heal by
    // unlink).
    if (faults.ShouldInject(FaultKind::kTornRename)) {
      ::truncate(tmp.c_str(), static_cast<off_t>(
          faults.TornLength(data.size())));
    }
    faults.MaybeCrash();
    if (enospc_at == 2) return skip_full_disk();
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      if (errno == ENOSPC || errno == EDQUOT) return skip_full_disk();
      ::unlink(tmp.c_str());
      if (attempt < options_.disk_retries) continue;
      return fail();
    }
    faults.MaybeCrash();
    return;
  }
}

Result<PipelineCache::CompactionResult> PipelineCache::Compact(
    const CompactionOptions& bounds) {
  namespace fs = std::filesystem;
  if (options_.dir.empty()) {
    return Status::NotFound("cache has no disk tier");
  }
  CompactionResult res;
  FaultInjector& faults = FaultInjector::Global();

  // Single-writer election: whoever holds .compact.lock runs the pass;
  // everyone else reports a clean skip. The lock dies with the holder,
  // so a killed compactor never blocks the next one.
  auto lock_or = FileLock::TryAcquire(StrCat(options_.dir, "/.compact.lock"));
  if (!lock_or.ok()) return lock_or.status();
  if (!lock_or.value().held()) {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.compactions_skipped;
    res.ran = false;
    res.generation = manifest_generation_;
    return res;
  }
  FileLock compact_lock = std::move(lock_or.value());
  compact_lock.WriteRecord(FormatLeaseRecord(::getpid(), BootId()));

  // Collect entries shard by shard. Tmp sweeping needs the shard lease
  // (same rule as open: never touch a live writer's tmp); entry
  // unlinks do not — rename-over and unlink of a published entry are
  // both atomic, and a reader that loses the race re-derives the
  // verdict (a miss, never a torn read).
  struct Entry {
    std::string path;
    uint64_t size;
    int64_t age_seconds;
  };
  std::vector<Entry> entries;
  uint64_t total_bytes = 0;
  static const char kHex[] = "0123456789abcdef";
  std::error_code ec;
  for (size_t s = 0; s < kDiskShards; ++s) {
    std::string shard_dir =
        StrCat(options_.dir, "/shard-", std::string(1, kHex[s]));
    auto shard_lock_or = FileLock::TryAcquire(StrCat(shard_dir, "/.lease"));
    if (shard_lock_or.ok() && shard_lock_or.value().held()) {
      std::string record = shard_lock_or.value().ReadRecord();
      if (!record.empty() && LeaseRecordStale(record)) {
        shard_lock_or.value().WriteRecord("");
        std::lock_guard<std::mutex> lock(misc_mu_);
        ++misc_stats_.stale_leases_recovered;
      }
      res.tmp_files_swept += SweepTmpFilesLocked(shard_dir);
    }
    for (const auto& entry : fs::directory_iterator(shard_dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      std::string name = entry.path().filename().string();
      if (!IsEntryFileName(name)) continue;
      uint64_t size = entry.file_size(ec);
      if (ec) size = 0;
      entries.push_back(
          {entry.path().string(), size, FileAgeSeconds(entry.path())});
      total_bytes += size;
    }
  }
  res.entries_scanned = entries.size();

  // Oldest-first victim order; age-expired entries go unconditionally,
  // then the tail until the size bound holds. Unlinks are idempotent —
  // a compactor killed between any two of them leaves a smaller tier
  // the next pass finishes shrinking.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.age_seconds > b.age_seconds;
            });
  for (const Entry& entry : entries) {
    bool expired = bounds.max_age_seconds > 0 &&
                   entry.age_seconds >= bounds.max_age_seconds;
    bool over_budget =
        bounds.max_bytes > 0 && total_bytes > bounds.max_bytes;
    if (!expired && !over_budget) continue;
    faults.MaybeCrash();
    fs::remove(entry.path, ec);
    if (ec) continue;
    ++res.entries_removed;
    res.bytes_removed += entry.size;
    total_bytes -= entry.size;
  }

  // The generation bump is the pass's commit record: written last, via
  // temp+rename, so a crash anywhere above leaves the old generation
  // and an already-valid (just partially compacted) tier.
  faults.MaybeCrash();
  uint64_t next_gen;
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    next_gen = manifest_generation_ + 1;
  }
  bool wrote = WriteManifestFile(next_gen);
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    if (wrote) {
      manifest_generation_ = next_gen;
      misc_stats_.manifest_generation = next_gen;
    }
    ++misc_stats_.compactions_run;
    misc_stats_.compaction_entries_removed += res.entries_removed;
    misc_stats_.compaction_bytes_removed += res.bytes_removed;
    misc_stats_.tmp_files_swept += res.tmp_files_swept;
    res.generation = manifest_generation_;
  }
  compact_lock.WriteRecord("");
  res.ran = true;
  return res;
}

Result<PipelineCache::CompactionResult> PipelineCache::CompactDir(
    const std::string& dir, const CompactionOptions& bounds) {
  Options options;
  options.max_entries = 64;  // tool handle: the memory tier is unused
  options.dir = dir;
  // Opening runs the full crash-recovery pass first — exactly what a
  // standalone GC tool wants.
  PipelineCache cache(options);
  return cache.Compact(bounds);
}

std::optional<PipelineCache::CanonArtifact>
PipelineCache::LookupCanonicalization(uint64_t strict_hash,
                                      uint64_t options_bits) {
  // Artifact tiers are probed once per pipeline build (concurrent
  // ephemeral builds share this cache), so the whole scan — splice
  // included — runs under misc_mu_; returning a copy (two words plus
  // the display-var ids) keeps the caller off the list after unlock.
  CacheKey key{MixHash(strict_hash ^ 0x63616e6fULL), options_bits};
  std::lock_guard<std::mutex> lock(misc_mu_);
  for (auto it = canon_.begin(); it != canon_.end(); ++it) {
    if (it->first == key) {
      canon_.splice(canon_.begin(), canon_, it);
      ++misc_stats_.canon_hits;
      return canon_.front().second;
    }
  }
  ++misc_stats_.canon_misses;
  return std::nullopt;
}

void PipelineCache::StoreCanonicalization(uint64_t strict_hash,
                                          uint64_t options_bits,
                                          CanonArtifact artifact) {
  if (artifact.canon == nullptr) return;
  CacheKey key{MixHash(strict_hash ^ 0x63616e6fULL), options_bits};
  std::lock_guard<std::mutex> lock(misc_mu_);
  canon_.emplace_front(key, std::move(artifact));
  while (canon_.size() > kMaxArtifacts) canon_.pop_back();
}

std::optional<std::vector<bool>> PipelineCache::LookupEmptiness(
    uint64_t strict_hash) {
  std::lock_guard<std::mutex> lock(misc_mu_);
  for (auto it = emptiness_.begin(); it != emptiness_.end(); ++it) {
    if (it->first == strict_hash) {
      emptiness_.splice(emptiness_.begin(), emptiness_, it);
      ++misc_stats_.emptiness_hits;
      return emptiness_.front().second;
    }
  }
  ++misc_stats_.emptiness_misses;
  return std::nullopt;
}

void PipelineCache::StoreEmptiness(uint64_t strict_hash,
                                   const std::vector<bool>& bits) {
  std::lock_guard<std::mutex> lock(misc_mu_);
  emptiness_.emplace_front(strict_hash, bits);
  while (emptiness_.size() > kMaxArtifacts) emptiness_.pop_back();
}

CacheKey PipelineCache::FragmentKey(uint64_t cone_fp, bool use_fd_closure) {
  uint64_t lo = CombineHash(cone_fp, use_fd_closure ? 1 : 0);
  uint64_t hi = CombineHash(MixHash(cone_fp ^ 0x667261676d656e74ULL),
                            use_fd_closure ? 3 : 2);
  return {hi, lo};
}

std::shared_ptr<const ConeFragment> PipelineCache::LookupFragments(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(fragment_mu_);
  auto it = fragment_index_.find(key);
  if (it == fragment_index_.end()) {
    ++fragment_misses_;
    return nullptr;
  }
  fragments_.splice(fragments_.begin(), fragments_, it->second);
  ++fragment_hits_;
  return fragments_.front().second;
}

void PipelineCache::StoreFragments(
    const CacheKey& key, std::shared_ptr<const ConeFragment> fragments) {
  if (fragments == nullptr) return;
  std::lock_guard<std::mutex> lock(fragment_mu_);
  auto it = fragment_index_.find(key);
  if (it != fragment_index_.end()) {
    // Entries are content-addressed: a racing builder produced an
    // equivalent cone, so keep the incumbent (outstanding pins stay
    // coherent) and just refresh recency.
    fragments_.splice(fragments_.begin(), fragments_, it->second);
    return;
  }
  fragments_.emplace_front(key, std::move(fragments));
  fragment_index_[key] = fragments_.begin();
  ++fragment_insertions_;
  while (fragments_.size() > kMaxFragmentEntries) {
    fragment_index_.erase(fragments_.back().first);
    fragments_.pop_back();
    ++fragment_evictions_;
  }
}

CacheKey PipelineCache::SegmentKey(uint64_t component_hash,
                                   uint32_t mode_bits) {
  uint64_t lo = CombineHash(component_hash, mode_bits);
  uint64_t hi = CombineHash(MixHash(component_hash ^ 0x7365676d656e7431ULL),
                            mode_bits + 1);
  return {hi, lo};
}

std::shared_ptr<const NodeTableSegment> PipelineCache::LookupSegment(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(segment_mu_);
  auto it = segment_index_.find(key);
  if (it == segment_index_.end()) {
    ++segment_misses_;
    return nullptr;
  }
  segments_.splice(segments_.begin(), segments_, it->second);
  ++segment_hits_;
  return segments_.front().second;
}

std::shared_ptr<const NodeTableSegment> PipelineCache::StoreSegment(
    const CacheKey& key, std::shared_ptr<const NodeTableSegment> segment) {
  if (segment == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(segment_mu_);
  auto it = segment_index_.find(key);
  if (it != segment_index_.end()) {
    // Content-addressed: a racing builder encoded an equivalent span,
    // so keep the incumbent — the caller adopts it, which is what lets
    // consecutive snapshots share one allocation.
    segments_.splice(segments_.begin(), segments_, it->second);
    return segments_.front().second;
  }
  segments_.emplace_front(key, std::move(segment));
  segment_index_[key] = segments_.begin();
  ++segment_insertions_;
  while (segments_.size() > kMaxSegmentEntries) {
    segment_index_.erase(segments_.back().first);
    segments_.pop_back();
    ++segment_evictions_;
  }
  return segments_.front().second;
}

void PipelineCache::NoteInvalidatedCones(size_t count) {
  std::lock_guard<std::mutex> lock(misc_mu_);
  misc_stats_.cones_invalidated += count;
}

PipelineCacheStats PipelineCache::stats() const {
  PipelineCacheStats out;
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    out = misc_stats_;
  }
  {
    std::lock_guard<std::mutex> lock(fragment_mu_);
    out.fragment_hits = fragment_hits_;
    out.fragment_misses = fragment_misses_;
    out.fragment_insertions = fragment_insertions_;
    out.fragment_evictions = fragment_evictions_;
  }
  {
    std::lock_guard<std::mutex> lock(segment_mu_);
    out.segment_hits = segment_hits_;
    out.segment_misses = segment_misses_;
    out.segment_insertions = segment_insertions_;
    out.segment_evictions = segment_evictions_;
  }
  {
    FdClosureCache::Stats fd = fd_closures_.stats();
    out.fd_index_hits = fd.hits;
    out.fd_index_misses = fd.misses;
  }
  {
    PredicateHashMemo::Stats ph = pred_hashes_.stats();
    out.pred_hash_hits = ph.hits;
    out.pred_hash_misses = ph.misses;
  }
  // Per-shard tallies are exact (every bump happens under the shard
  // lock); the sum is a consistent-enough snapshot — a concurrent
  // lookup may land before or after it, same as with one global lock.
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.verdict_hits += shard.hits;
    out.verdict_misses += shard.misses;
    out.verdict_insertions += shard.insertions;
    out.verdict_evictions += shard.evictions;
  }
  return out;
}

size_t PipelineCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace hornsafe
