#include "core/pipeline_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "lang/struct_hash.h"
#include "util/fault.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

constexpr char kDiskMagic[4] = {'H', 'S', 'V', 'C'};

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
          << (8 * i);
  }
  *pos += 4;
  return true;
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

/// Raw FNV-1a over the serialized payload (not MixHash-finalized; this
/// is an integrity check, not an addressing hash).
uint64_t Checksum(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string CacheKey::ToHex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

PipelineCache::PipelineCache(Options options)
    : options_(std::move(options)) {
  if (options_.max_entries == 0) options_.max_entries = 1;
  if (options_.disk_retries < 0) options_.disk_retries = 0;
  shard_count_ =
      options_.max_entries >= kVerdictShards * 64 ? kVerdictShards : 1;
  shard_capacity_ =
      (options_.max_entries + shard_count_ - 1) / shard_count_;
  // Sweep temp files abandoned by crashed writers: they are never
  // renamed into place, so anything still matching "*.tmp.*" is dead
  // weight from a previous process.
  if (!options_.dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      if (entry.path().filename().string().find(".tmp.") ==
          std::string::npos) {
        continue;
      }
      std::filesystem::remove(entry.path(), ec);
      if (!ec) ++misc_stats_.tmp_files_swept;
    }
  }
}

std::optional<CachedVerdict> PipelineCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      return it->second->verdict;
    }
  }
  if (!options_.dir.empty()) {
    std::optional<CachedVerdict> from_disk = DiskLookup(key);
    if (from_disk) {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.hits;
      if (shard.index.find(key) == shard.index.end()) {
        InsertLocked(shard, key, *from_disk);
      }
      return from_disk;
    }
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.misses;
  return std::nullopt;
}

void PipelineCache::Store(const CacheKey& key, const CachedVerdict& verdict) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->verdict = verdict;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      InsertLocked(shard, key, verdict);
      ++shard.insertions;
    }
  }
  if (!options_.dir.empty()) DiskStore(key, verdict);
}

void PipelineCache::InsertLocked(Shard& shard, const CacheKey& key,
                                 const CachedVerdict& verdict) {
  shard.lru.push_front({key, verdict});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::string PipelineCache::DiskPath(const CacheKey& key) const {
  return StrCat(options_.dir, "/", key.ToHex(), ".hsv");
}

void PipelineCache::RetryBackoff(int attempt) {
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_retry_attempts;
  }
  if (options_.retry_backoff_us == 0) return;
  uint64_t us = static_cast<uint64_t>(options_.retry_backoff_us)
                << (attempt > 0 ? attempt - 1 : 0);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

std::optional<CachedVerdict> PipelineCache::DiskLookup(const CacheKey& key) {
  std::string path = DiskPath(key);
  FaultInjector& faults = FaultInjector::Global();
  std::string data;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) RetryBackoff(attempt);
    // EIO is transient: retry with backoff, then degrade to a miss.
    if (faults.ShouldInject(FaultKind::kReadError)) {
      if (attempt < options_.disk_retries) continue;
      std::lock_guard<std::mutex> lock(misc_mu_);
      ++misc_stats_.disk_read_failures;
      return std::nullopt;
    }
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        std::lock_guard<std::mutex> lock(misc_mu_);
        ++misc_stats_.disk_misses;
        return std::nullopt;
      }
      if (attempt < options_.disk_retries) continue;
      std::lock_guard<std::mutex> lock(misc_mu_);
      ++misc_stats_.disk_read_failures;
      return std::nullopt;
    }
    data.clear();
    char buf[4096];
    bool read_ok = true;
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        read_ok = false;
        break;
      }
      data.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    if (read_ok) break;
    if (attempt >= options_.disk_retries) {
      std::lock_guard<std::mutex> lock(misc_mu_);
      ++misc_stats_.disk_read_failures;
      return std::nullopt;
    }
  }
  // Media corruption: flip one bit of what we read back. The checksum
  // (or a structural check) below catches it; the entry is unlinked so
  // the next store repairs it.
  if (faults.ShouldInject(FaultKind::kBitFlip)) faults.CorruptOneBit(&data);

  auto corrupt = [&]() -> std::optional<CachedVerdict> {
    // A bad entry is just a miss; drop the file so it is not re-read.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_corrupt;
    return std::nullopt;
  };

  if (data.size() < sizeof(kDiskMagic) + 4 + 8 ||
      std::memcmp(data.data(), kDiskMagic, sizeof(kDiskMagic)) != 0) {
    return corrupt();
  }
  std::string_view payload(data.data() + sizeof(kDiskMagic),
                           data.size() - sizeof(kDiskMagic) - 8);
  size_t pos = sizeof(kDiskMagic);
  uint32_t version = 0;
  if (!ReadU32(data, &pos, &version) || version != kDiskFormatVersion) {
    return corrupt();
  }
  uint64_t stored_hi = 0, stored_lo = 0;
  if (!ReadU64(data, &pos, &stored_hi) || !ReadU64(data, &pos, &stored_lo) ||
      stored_hi != key.hi || stored_lo != key.lo) {
    return corrupt();
  }
  CachedVerdict out;
  uint32_t verdict_raw = 0, explanation_len = 0;
  if (!ReadU32(data, &pos, &verdict_raw) || verdict_raw > 2 ||
      !ReadU64(data, &pos, &out.steps) ||
      !ReadU64(data, &pos, &out.graphs_checked) ||
      !ReadU64(data, &pos, &out.memo_hits) ||
      !ReadU64(data, &pos, &out.memo_misses) ||
      !ReadU64(data, &pos, &out.scc_short_circuits) ||
      !ReadU32(data, &pos, &explanation_len) ||
      pos + explanation_len + 8 != data.size()) {
    return corrupt();
  }
  out.verdict = static_cast<Safety>(verdict_raw);
  out.explanation = data.substr(pos, explanation_len);
  pos += explanation_len;
  uint64_t stored_sum = 0;
  if (!ReadU64(data, &pos, &stored_sum) || stored_sum != Checksum(payload)) {
    return corrupt();
  }
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_hits;
  }
  return out;
}

void PipelineCache::DiskStore(const CacheKey& key,
                              const CachedVerdict& verdict) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);

  std::string payload;
  AppendU32(&payload, kDiskFormatVersion);
  AppendU64(&payload, key.hi);
  AppendU64(&payload, key.lo);
  AppendU32(&payload, static_cast<uint32_t>(verdict.verdict));
  AppendU64(&payload, verdict.steps);
  AppendU64(&payload, verdict.graphs_checked);
  AppendU64(&payload, verdict.memo_hits);
  AppendU64(&payload, verdict.memo_misses);
  AppendU64(&payload, verdict.scc_short_circuits);
  AppendU32(&payload, static_cast<uint32_t>(verdict.explanation.size()));
  payload += verdict.explanation;

  std::string data(kDiskMagic, sizeof(kDiskMagic));
  data += payload;
  AppendU64(&data, Checksum(payload));

  // Write-temp-fsync-rename so a concurrent reader (or a crash) never
  // sees a torn entry. Transient failures (EIO, short write) retry
  // with backoff; ENOSPC downgrades the store to memory-only.
  std::string path = DiskPath(key);
  std::string tmp = StrCat(path, ".tmp.", ::getpid());
  FaultInjector& faults = FaultInjector::Global();

  auto skip_full_disk = [&]() {
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_write_skips;
  };
  auto fail = [&]() {
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(misc_mu_);
    ++misc_stats_.disk_write_failures;
  };

  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) RetryBackoff(attempt);
    if (faults.ShouldInject(FaultKind::kEnospc)) return skip_full_disk();
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      if (errno == ENOSPC || errno == EDQUOT) return skip_full_disk();
      if (attempt < options_.disk_retries) continue;
      return fail();
    }
    // Decide how much of the payload "reaches" the file: all of it, or
    // an injected strict prefix (short write), or nothing (EIO).
    size_t want = data.size();
    bool injected_failure = false;
    if (faults.ShouldInject(FaultKind::kWriteError)) {
      want = 0;
      injected_failure = true;
    } else if (faults.ShouldInject(FaultKind::kShortWrite)) {
      want = faults.TornLength(data.size());
      injected_failure = true;
    }
    bool io_ok = true;
    bool full_disk = false;
    size_t off = 0;
    while (off < want) {
      ssize_t n = ::write(fd, data.data() + off, want - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        full_disk = errno == ENOSPC || errno == EDQUOT;
        io_ok = false;
        break;
      }
      off += static_cast<size_t>(n);
    }
    if (io_ok && injected_failure) io_ok = false;
    // Flush file contents before the rename publishes them — without
    // this a crash after rename can leave a successfully named entry
    // with zero-filled pages on journaled filesystems.
    if (io_ok && ::fsync(fd) != 0) io_ok = false;
    ::close(fd);
    if (!io_ok) {
      if (full_disk) return skip_full_disk();
      ::unlink(tmp.c_str());
      if (attempt < options_.disk_retries) continue;
      return fail();
    }
    // A torn rename models a crash on a filesystem that reorders
    // metadata: the destination name appears but holds a truncated
    // payload. The writer cannot observe this — the entry is published
    // and the *reader's* checksum must catch it (then self-heal by
    // unlink).
    if (faults.ShouldInject(FaultKind::kTornRename)) {
      ::truncate(tmp.c_str(), static_cast<off_t>(
          faults.TornLength(data.size())));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      if (errno == ENOSPC || errno == EDQUOT) return skip_full_disk();
      ::unlink(tmp.c_str());
      if (attempt < options_.disk_retries) continue;
      return fail();
    }
    return;
  }
}

std::optional<PipelineCache::CanonArtifact>
PipelineCache::LookupCanonicalization(uint64_t strict_hash,
                                      uint64_t options_bits) {
  // Artifact tiers are probed once per pipeline build (concurrent
  // ephemeral builds share this cache), so the whole scan — splice
  // included — runs under misc_mu_; returning a copy (two words plus
  // the display-var ids) keeps the caller off the list after unlock.
  CacheKey key{MixHash(strict_hash ^ 0x63616e6fULL), options_bits};
  std::lock_guard<std::mutex> lock(misc_mu_);
  for (auto it = canon_.begin(); it != canon_.end(); ++it) {
    if (it->first == key) {
      canon_.splice(canon_.begin(), canon_, it);
      ++misc_stats_.canon_hits;
      return canon_.front().second;
    }
  }
  ++misc_stats_.canon_misses;
  return std::nullopt;
}

void PipelineCache::StoreCanonicalization(uint64_t strict_hash,
                                          uint64_t options_bits,
                                          CanonArtifact artifact) {
  if (artifact.canon == nullptr) return;
  CacheKey key{MixHash(strict_hash ^ 0x63616e6fULL), options_bits};
  std::lock_guard<std::mutex> lock(misc_mu_);
  canon_.emplace_front(key, std::move(artifact));
  while (canon_.size() > kMaxArtifacts) canon_.pop_back();
}

std::optional<std::vector<bool>> PipelineCache::LookupEmptiness(
    uint64_t strict_hash) {
  std::lock_guard<std::mutex> lock(misc_mu_);
  for (auto it = emptiness_.begin(); it != emptiness_.end(); ++it) {
    if (it->first == strict_hash) {
      emptiness_.splice(emptiness_.begin(), emptiness_, it);
      ++misc_stats_.emptiness_hits;
      return emptiness_.front().second;
    }
  }
  ++misc_stats_.emptiness_misses;
  return std::nullopt;
}

void PipelineCache::StoreEmptiness(uint64_t strict_hash,
                                   const std::vector<bool>& bits) {
  std::lock_guard<std::mutex> lock(misc_mu_);
  emptiness_.emplace_front(strict_hash, bits);
  while (emptiness_.size() > kMaxArtifacts) emptiness_.pop_back();
}

CacheKey PipelineCache::FragmentKey(uint64_t cone_fp, bool use_fd_closure) {
  uint64_t lo = CombineHash(cone_fp, use_fd_closure ? 1 : 0);
  uint64_t hi = CombineHash(MixHash(cone_fp ^ 0x667261676d656e74ULL),
                            use_fd_closure ? 3 : 2);
  return {hi, lo};
}

std::shared_ptr<const ConeFragment> PipelineCache::LookupFragments(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(fragment_mu_);
  auto it = fragment_index_.find(key);
  if (it == fragment_index_.end()) {
    ++fragment_misses_;
    return nullptr;
  }
  fragments_.splice(fragments_.begin(), fragments_, it->second);
  ++fragment_hits_;
  return fragments_.front().second;
}

void PipelineCache::StoreFragments(
    const CacheKey& key, std::shared_ptr<const ConeFragment> fragments) {
  if (fragments == nullptr) return;
  std::lock_guard<std::mutex> lock(fragment_mu_);
  auto it = fragment_index_.find(key);
  if (it != fragment_index_.end()) {
    // Entries are content-addressed: a racing builder produced an
    // equivalent cone, so keep the incumbent (outstanding pins stay
    // coherent) and just refresh recency.
    fragments_.splice(fragments_.begin(), fragments_, it->second);
    return;
  }
  fragments_.emplace_front(key, std::move(fragments));
  fragment_index_[key] = fragments_.begin();
  ++fragment_insertions_;
  while (fragments_.size() > kMaxFragmentEntries) {
    fragment_index_.erase(fragments_.back().first);
    fragments_.pop_back();
    ++fragment_evictions_;
  }
}

CacheKey PipelineCache::SegmentKey(uint64_t component_hash,
                                   uint32_t mode_bits) {
  uint64_t lo = CombineHash(component_hash, mode_bits);
  uint64_t hi = CombineHash(MixHash(component_hash ^ 0x7365676d656e7431ULL),
                            mode_bits + 1);
  return {hi, lo};
}

std::shared_ptr<const NodeTableSegment> PipelineCache::LookupSegment(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(segment_mu_);
  auto it = segment_index_.find(key);
  if (it == segment_index_.end()) {
    ++segment_misses_;
    return nullptr;
  }
  segments_.splice(segments_.begin(), segments_, it->second);
  ++segment_hits_;
  return segments_.front().second;
}

std::shared_ptr<const NodeTableSegment> PipelineCache::StoreSegment(
    const CacheKey& key, std::shared_ptr<const NodeTableSegment> segment) {
  if (segment == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(segment_mu_);
  auto it = segment_index_.find(key);
  if (it != segment_index_.end()) {
    // Content-addressed: a racing builder encoded an equivalent span,
    // so keep the incumbent — the caller adopts it, which is what lets
    // consecutive snapshots share one allocation.
    segments_.splice(segments_.begin(), segments_, it->second);
    return segments_.front().second;
  }
  segments_.emplace_front(key, std::move(segment));
  segment_index_[key] = segments_.begin();
  ++segment_insertions_;
  while (segments_.size() > kMaxSegmentEntries) {
    segment_index_.erase(segments_.back().first);
    segments_.pop_back();
    ++segment_evictions_;
  }
  return segments_.front().second;
}

void PipelineCache::NoteInvalidatedCones(size_t count) {
  std::lock_guard<std::mutex> lock(misc_mu_);
  misc_stats_.cones_invalidated += count;
}

PipelineCacheStats PipelineCache::stats() const {
  PipelineCacheStats out;
  {
    std::lock_guard<std::mutex> lock(misc_mu_);
    out = misc_stats_;
  }
  {
    std::lock_guard<std::mutex> lock(fragment_mu_);
    out.fragment_hits = fragment_hits_;
    out.fragment_misses = fragment_misses_;
    out.fragment_insertions = fragment_insertions_;
    out.fragment_evictions = fragment_evictions_;
  }
  {
    std::lock_guard<std::mutex> lock(segment_mu_);
    out.segment_hits = segment_hits_;
    out.segment_misses = segment_misses_;
    out.segment_insertions = segment_insertions_;
    out.segment_evictions = segment_evictions_;
  }
  {
    FdClosureCache::Stats fd = fd_closures_.stats();
    out.fd_index_hits = fd.hits;
    out.fd_index_misses = fd.misses;
  }
  {
    PredicateHashMemo::Stats ph = pred_hashes_.stats();
    out.pred_hash_hits = ph.hits;
    out.pred_hash_misses = ph.misses;
  }
  // Per-shard tallies are exact (every bump happens under the shard
  // lock); the sum is a consistent-enough snapshot — a concurrent
  // lookup may land before or after it, same as with one global lock.
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.verdict_hits += shard.hits;
    out.verdict_misses += shard.misses;
    out.verdict_insertions += shard.insertions;
    out.verdict_evictions += shard.evictions;
  }
  return out;
}

size_t PipelineCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace hornsafe
