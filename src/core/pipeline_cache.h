#ifndef HORNSAFE_CORE_PIPELINE_CACHE_H_
#define HORNSAFE_CORE_PIPELINE_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "andor/adorn.h"
#include "andor/fragment.h"
#include "andor/segment.h"
#include "andor/subset.h"
#include "canonical/canonical.h"
#include "fd/fd.h"
#include "lang/fingerprint.h"
#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// 128-bit content-addressed cache key. `lo` is the primary structural
/// hash (cone fingerprint + context); `hi` re-mixes the same inputs
/// under an independent seed so that a single 64-bit collision cannot
/// alias two entries.
struct CacheKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const CacheKey& o) const {
    return hi == o.hi && lo == o.lo;
  }

  /// Filesystem-safe rendering ("<hi hex>-<lo hex>").
  std::string ToHex() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    return static_cast<size_t>(k.hi ^ k.lo);
  }
};

/// One cached per-argument-position subset-search outcome: the verdict
/// with the exact cost metadata and final explanation string the cold
/// search produced. kUnsafe results are never cached — their witness
/// explanations embed global node ids that shift under edits, so they
/// are recomputed to stay bit-identical to a cold run (DESIGN.md, D12).
struct CachedVerdict {
  Safety verdict = Safety::kUndecided;
  uint64_t steps = 0;
  uint64_t graphs_checked = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t scc_short_circuits = 0;
  std::string explanation;
};

/// Hit/miss/eviction accounting across every tier (CLI `--stats`).
struct PipelineCacheStats {
  uint64_t verdict_hits = 0;
  uint64_t verdict_misses = 0;
  uint64_t verdict_insertions = 0;
  uint64_t verdict_evictions = 0;
  uint64_t disk_hits = 0;
  uint64_t disk_misses = 0;
  uint64_t disk_corrupt = 0;
  uint64_t disk_write_failures = 0;
  /// Lookups abandoned after exhausting read retries (EIO) — served as
  /// misses; the analyzer recomputes.
  uint64_t disk_read_failures = 0;
  /// Stores skipped non-fatally because the filesystem is full
  /// (ENOSPC): the cache degrades to memory-only for that entry.
  uint64_t disk_write_skips = 0;
  /// Transient disk faults that were retried (any tier, any attempt).
  uint64_t disk_retry_attempts = 0;
  /// Stale "*.tmp.*" files from crashed writers removed at open or
  /// compaction. Only files older than the grace window and inside a
  /// shard whose write lease the sweeper holds are eligible — a
  /// concurrent writer's live tmp file is never swept (it holds the
  /// lease while its tmp exists).
  uint64_t tmp_files_swept = 0;
  // --- Multi-writer disk-tier coordination (DESIGN.md, D16) ---
  /// Shard write leases taken by this process's stores.
  uint64_t lease_acquisitions = 0;
  /// Shard leases found at open/compaction whose recorded holder died
  /// mid-store (dead pid or foreign boot id): the crash evidence was
  /// cleared and the shard's abandoned tmp files became sweepable.
  uint64_t stale_leases_recovered = 0;
  /// Generation stamp of the cache manifest (a value, not a counter —
  /// bumped by each completed compaction pass).
  uint64_t manifest_generation = 0;
  /// Manifests found missing-while-entries-exist or corrupt at open
  /// and rolled back to a fresh generation.
  uint64_t manifest_rollbacks = 0;
  /// Pre-shard flat-layout entries moved into their shard at open.
  uint64_t legacy_entries_migrated = 0;
  /// Compaction passes completed by this handle / skipped because
  /// another process held the compaction lock.
  uint64_t compactions_run = 0;
  uint64_t compactions_skipped = 0;
  uint64_t compaction_entries_removed = 0;
  uint64_t compaction_bytes_removed = 0;
  /// Dirty cones reported by SafetyAnalyzer::Update — edits whose cone
  /// fingerprints changed and whose old entries became unreachable.
  uint64_t cones_invalidated = 0;
  uint64_t canon_hits = 0;
  uint64_t canon_misses = 0;
  uint64_t emptiness_hits = 0;
  uint64_t emptiness_misses = 0;
  /// And-Or fragment tier (per-cone replay templates).
  uint64_t fragment_hits = 0;
  uint64_t fragment_misses = 0;
  uint64_t fragment_insertions = 0;
  uint64_t fragment_evictions = 0;
  /// Node-table segment tier (per-component spans with prune verdicts
  /// and SCC slices — andor/segment.h).
  uint64_t segment_hits = 0;
  uint64_t segment_misses = 0;
  uint64_t segment_insertions = 0;
  uint64_t segment_evictions = 0;
  /// Shared frozen FD closure indexes (FdClosureCache).
  uint64_t fd_index_hits = 0;
  uint64_t fd_index_misses = 0;
  /// Per-predicate structural-hash memo (PredicateHashMemo).
  uint64_t pred_hash_hits = 0;
  uint64_t pred_hash_misses = 0;
};

/// Cross-query cache for the safety pipeline, shared by any number of
/// `SafetyAnalyzer` builds (and across processes through the disk tier).
///
/// Tiers, from hottest to coldest:
///
///   * *verdict tier* — (cone fingerprint, analysis context, adornment,
///     position) -> CachedVerdict. In-memory LRU backed by an optional
///     on-disk directory (write-through; lookups fall back to disk and
///     promote). This is the tier that skips exponential subset
///     searches. Lock-striped across kVerdictShards slices keyed by the
///     low bits of the 128-bit key, so serve workers checking distinct
///     cones never contend on one mutex; hit/miss/insert/evict counters
///     are kept per shard and summed by `stats()`, so they stay exact
///     under any number of concurrent readers.
///   * *canonicalization tier* — strict program hash -> Algorithm 1
///     output, keyed on the exact rendered listing so the cached copy
///     is bit-identical to what a cold run would rebuild. Small LRU.
///   * *emptiness tier* — strict canonical-program hash -> the
///     Algorithm 3 LFP bits (T₀ flags). Small LRU.
///   * *adornment sets* — the pattern-keyed AdornmentCache, shared
///     across rebuilds (its keys are program-independent grouping
///     patterns, so reuse across arbitrary programs is sound).
///
/// Every tier is thread-safe: one PipelineCache serves any number of
/// concurrent analyzer builds and subset searches (serve workers share
/// one instance — see DESIGN.md, D14). The artifact tiers sit behind a
/// single mutex (they are touched once per pipeline build, not per
/// search, so striping them would buy nothing).
///
/// Disk format: one file per key under `options.dir/shard-<x>/` (16
/// shards keyed by the low bits of `key.lo`), named "<key hex>.hsv",
/// containing a magic tag, a format version, the verdict fields and an
/// FNV checksum. Entries that fail any of those checks are treated as
/// misses, counted in `disk_corrupt`, and unlinked so the next store
/// repairs them (self-healing); files are written to a temp name,
/// fsynced, and renamed, so concurrent readers and crashes never
/// expose a torn entry. Transient I/O errors are retried with
/// exponential backoff (`disk_retries`); a full disk (ENOSPC)
/// downgrades the store to memory-only instead of failing the
/// analysis. Every disk syscall is wrapped by the process-wide
/// `FaultInjector` (util/fault.h), so the failure paths are exercised
/// deterministically in tests. See DESIGN.md, D13.
///
/// Multi-writer coordination (DESIGN.md, D16): any number of processes
/// may share one cache directory. Writers take an advisory flock
/// lease on the shard (`shard-<x>/.lease`) for the duration of a
/// store and record "pid + boot id" in it; the kernel drops the flock
/// if the writer dies, and the record left behind is the crash
/// evidence the next opener uses (stale-lease recovery). Openers
/// sweep abandoned "*.tmp.*" files only inside shards whose lease
/// they can take and only past a grace window, so a live writer's tmp
/// file is never deleted out from under it. A generation-stamped
/// MANIFEST is repaired (rolled back to a fresh generation) when
/// corrupt, and `Compact()` runs a single-writer (flock-elected),
/// size- and age-bounded GC pass that is crash-interruptible at any
/// syscall and resumable by the next caller.
class PipelineCache {
 public:
  struct Options {
    /// Verdict-tier LRU capacity (entries).
    size_t max_entries = 1 << 16;
    /// On-disk tier root; empty disables the disk tier. Created on
    /// first store if missing.
    std::string dir;
    /// Transient disk failures (EIO on read/write/fsync/rename) are
    /// retried this many times before the operation is abandoned
    /// (lookup degrades to a miss, store is dropped). 0 disables
    /// retries.
    int disk_retries = 2;
    /// Backoff before retry k is `retry_backoff_us << (k-1)`
    /// microseconds (exponential, capped by the retry count).
    uint32_t retry_backoff_us = 100;
    /// Abandoned "*.tmp.*" files are only swept once older than this —
    /// the second guard (after the shard lease) against deleting a
    /// concurrent writer's live tmp file. Tests set 0 to make sweeps
    /// immediate.
    int64_t tmp_grace_seconds = 60;
  };

  /// Bump when CachedVerdict's serialized layout changes; readers treat
  /// any other version as a miss.
  static constexpr uint32_t kDiskFormatVersion = 1;

  /// Disk-tier shard fan-out. Writers lease one shard at a time, so 16
  /// shards keep N fleet workers (typically <= cores) off each other's
  /// locks the same way the in-memory stripes do.
  static constexpr size_t kDiskShards = 16;

  /// Shard subdirectory of `key` under `dir` ("<dir>/shard-<x>").
  static std::string ShardDirOf(const std::string& dir, const CacheKey& key);
  /// Full on-disk path of `key`'s entry ("<shard dir>/<key hex>.hsv").
  /// Exposed so tests and tools can place or inspect entries without
  /// re-deriving the layout.
  static std::string EntryPath(const std::string& dir, const CacheKey& key);

  /// Bounds for one compaction/GC pass over the disk tier.
  struct CompactionOptions {
    /// Target total entry bytes; oldest entries are removed until the
    /// tier fits. 0 disables the size bound.
    uint64_t max_bytes = 0;
    /// Entries older than this are removed regardless of size. 0
    /// disables the age bound.
    int64_t max_age_seconds = 0;
  };

  struct CompactionResult {
    /// False when another process held the compaction lock — the pass
    /// was skipped, not failed (single-writer election).
    bool ran = false;
    uint64_t entries_scanned = 0;
    uint64_t entries_removed = 0;
    uint64_t bytes_removed = 0;
    uint64_t tmp_files_swept = 0;
    /// Manifest generation after the pass.
    uint64_t generation = 0;
  };

  PipelineCache() : PipelineCache(Options{}) {}
  explicit PipelineCache(Options options);

  // --- Verdict tier (thread-safe) ---------------------------------------

  std::optional<CachedVerdict> Lookup(const CacheKey& key);
  void Store(const CacheKey& key, const CachedVerdict& verdict);

  // --- Pipeline-artifact tiers (thread-safe) ----------------------------

  /// A cached canonicalization: the frozen Algorithm 1 output plus the
  /// display variables the storing build interned into its term pool
  /// (analyzer.h). Shared by pointer — the producing snapshot and every
  /// hitting snapshot read the same immutable object, so a tier hit
  /// copies two words instead of a whole Program.
  struct CanonArtifact {
    std::shared_ptr<const CanonicalizationResult> canon;
    std::vector<TermId> display_vars;
  };

  /// Canonicalization output for the strict-hashed input program, or
  /// nullopt. `options_bits` folds the CanonicalizeOptions flags.
  std::optional<CanonArtifact> LookupCanonicalization(
      uint64_t strict_hash, uint64_t options_bits);
  void StoreCanonicalization(uint64_t strict_hash, uint64_t options_bits,
                             CanonArtifact artifact);

  /// Algorithm 3 LFP bits for the strict-hashed canonical program.
  std::optional<std::vector<bool>> LookupEmptiness(uint64_t strict_hash);
  void StoreEmptiness(uint64_t strict_hash, const std::vector<bool>& bits);

  /// Shared adornment-set memo (grouping-pattern keyed, never evicted).
  AdornmentCache& adornments() { return adornments_; }

  /// Shared frozen FD closure indexes, keyed by (FdSetHash, arity,
  /// closure mode) — see fd/fd.h.
  FdClosureCache& fd_closures() { return fd_closures_; }

  /// Per-predicate structural-hash memo for ComputeFingerprints — see
  /// lang/fingerprint.h.
  PredicateHashMemo& pred_hashes() { return pred_hashes_; }

  // --- Fragment tier (thread-safe) --------------------------------------

  /// The cache key of one predicate's And-Or fragments: the cone
  /// fingerprint (covers every rule the fragments' guards fold) plus
  /// the determinant mode, re-mixed into 128 bits.
  static CacheKey FragmentKey(uint64_t cone_fp, bool use_fd_closure);

  /// Cached replay templates for the cone, or null. The returned
  /// pointer is immutable and safe to use concurrently; pin it for the
  /// build's duration (FragmentSplicePlan::pinned).
  std::shared_ptr<const ConeFragment> LookupFragments(const CacheKey& key);
  void StoreFragments(const CacheKey& key,
                      std::shared_ptr<const ConeFragment> fragments);

  // --- Segment tier (thread-safe) ---------------------------------------

  /// The cache key of one predicate component's node-table segment:
  /// `component_hash` folds the component's ordered rule-guard sequence
  /// and predicate emptiness bits, `mode_bits` the prune/closure flags
  /// (everything the build + prune + condensation of the span read).
  static CacheKey SegmentKey(uint64_t component_hash, uint32_t mode_bits);

  /// Cached segment for the component, or null. Immutable and safe to
  /// graft concurrently; grafting systems pin it by shared_ptr.
  std::shared_ptr<const NodeTableSegment> LookupSegment(const CacheKey& key);

  /// Stores a freshly encoded segment and returns the resident entry —
  /// the incumbent if one already exists (content-addressed, so a
  /// racing builder produced an equivalent encoding), else `segment`
  /// itself. Callers attach the returned pointer to their spans so
  /// consecutive snapshots share one allocation.
  std::shared_ptr<const NodeTableSegment> StoreSegment(
      const CacheKey& key, std::shared_ptr<const NodeTableSegment> segment);

  // --- Disk-tier maintenance (thread-safe) ------------------------------

  /// Runs one compaction/GC pass over the disk tier: elects itself the
  /// single compactor via `<dir>/.compact.lock` (busy -> `ran=false`),
  /// removes age-expired entries, then the oldest entries until the
  /// tier fits `max_bytes`, sweeps abandoned tmp files (under each
  /// shard's lease, past the grace window), and bumps the manifest
  /// generation. Every step is idempotent, so a compactor killed at
  /// any syscall leaves a tier the next open or pass recovers; errors
  /// are returned only for a missing disk tier or lock syscall
  /// failure.
  Result<CompactionResult> Compact(const CompactionOptions& bounds);

  /// Convenience for tools (`hornsafe cache-compact`, the fleet
  /// driver): opens `dir` — running the full crash-recovery pass — and
  /// compacts it.
  static Result<CompactionResult> CompactDir(const std::string& dir,
                                             const CompactionOptions& bounds);

  // --- Accounting -------------------------------------------------------

  /// Records `count` dirty cones from an incremental Update.
  void NoteInvalidatedCones(size_t count);

  PipelineCacheStats stats() const;

  size_t size() const;
  const Options& options() const { return options_; }

  /// Verdict-tier lock stripes. 16 is far past the worker counts we
  /// serve (contention halves with every doubling; beyond the core
  /// count the extra stripes only cost a few empty maps).
  static constexpr size_t kVerdictShards = 16;

 private:
  struct VerdictEntry {
    CacheKey key;
    CachedVerdict verdict;
  };
  using Lru = std::list<VerdictEntry>;

  /// One lock stripe of the verdict tier: an independent LRU over the
  /// keys that hash to this shard, with its own counters (summed by
  /// `stats()` — per-shard tallies under the shard lock are exact, and
  /// aggregation on read keeps the hot path free of shared atomics).
  struct Shard {
    mutable std::mutex mu;
    Lru lru;  // front = most recently used
    std::unordered_map<CacheKey, Lru::iterator, CacheKeyHash> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    // `lo` is the fully mixed structural hash; its low bits are as good
    // as any.
    return shards_[static_cast<size_t>(key.lo) % shard_count_];
  }

  std::optional<CachedVerdict> DiskLookup(const CacheKey& key);
  void DiskStore(const CacheKey& key, const CachedVerdict& verdict);
  std::string DiskPath(const CacheKey& key) const;
  /// Open-time disk recovery: create the shard layout, migrate legacy
  /// flat entries, repair the manifest, recover stale leases and sweep
  /// abandoned tmp files (lease + grace guarded).
  void OpenDiskTier();
  /// Reads/repairs `<dir>/MANIFEST`, setting manifest_generation_.
  void RecoverManifest();
  /// Writes the manifest at `generation` (temp + fsync + rename);
  /// best-effort — the next open repairs a failed write.
  bool WriteManifestFile(uint64_t generation);
  /// Sweeps "*.tmp.*" files in `shard_dir` older than the grace
  /// window. Caller must hold the shard lease.
  uint64_t SweepTmpFilesLocked(const std::string& shard_dir);
  /// Counts a retry and sleeps `retry_backoff_us << (attempt-1)` µs.
  void RetryBackoff(int attempt);
  /// Inserts into `shard`'s LRU assuming its lock is held; evicts as
  /// needed.
  void InsertLocked(Shard& shard, const CacheKey& key,
                    const CachedVerdict& verdict);

  Options options_;
  /// Active stripes: caches below kVerdictShards * 64 entries collapse
  /// to one stripe — exact global LRU for the tiny capacities tests and
  /// tuning configs use, where eviction order matters and contention
  /// does not; production-sized caches use all kVerdictShards.
  size_t shard_count_ = 1;
  /// Per-shard LRU capacity: ceil(max_entries / shard_count_), so the
  /// configured total is an upper bound within rounding. Eviction is
  /// per shard (a hot shard evicts while a cold one sits half-empty —
  /// the usual striped-LRU approximation).
  size_t shard_capacity_ = 1;
  std::array<Shard, kVerdictShards> shards_;

  /// Manifest generation observed at open (or written by the last
  /// compaction through this handle). Guarded by misc_mu_.
  uint64_t manifest_generation_ = 0;
  /// Distinguishes concurrent stores from one process (tmp file names
  /// are "<entry>.tmp.<pid>.<seq>").
  std::atomic<uint64_t> tmp_seq_{0};

  /// Guards the artifact tiers and the non-verdict counters (disk,
  /// invalidation, canon/emptiness). Never held during disk I/O.
  mutable std::mutex misc_mu_;
  /// Only the non-verdict fields are used; `stats()` overlays the
  /// verdict fields from the shards.
  PipelineCacheStats misc_stats_;

  /// Small LRUs for whole-pipeline artifacts (strict-hash keyed).
  static constexpr size_t kMaxArtifacts = 8;
  std::list<std::pair<CacheKey, CanonArtifact>> canon_;
  std::list<std::pair<uint64_t, std::vector<bool>>> emptiness_;
  AdornmentCache adornments_;
  FdClosureCache fd_closures_;
  PredicateHashMemo pred_hashes_;

  /// Fragment tier: per-cone replay templates behind their own lock
  /// (probed once per predicate per build — orders of magnitude hotter
  /// than the kMaxArtifacts tiers, far colder than verdicts). LRU, one
  /// entry per (cone fingerprint, mode).
  static constexpr size_t kMaxFragmentEntries = 1024;
  mutable std::mutex fragment_mu_;
  using FragmentLru =
      std::list<std::pair<CacheKey, std::shared_ptr<const ConeFragment>>>;
  FragmentLru fragments_;
  std::unordered_map<CacheKey, FragmentLru::iterator, CacheKeyHash>
      fragment_index_;
  uint64_t fragment_hits_ = 0;
  uint64_t fragment_misses_ = 0;
  uint64_t fragment_insertions_ = 0;
  uint64_t fragment_evictions_ = 0;

  /// Segment tier: per-component node-table spans behind their own
  /// lock, same shape as the fragment tier (probed once per component
  /// per build). Segments outlive eviction while any snapshot pins
  /// them — entries hold shared_ptrs.
  static constexpr size_t kMaxSegmentEntries = 256;
  mutable std::mutex segment_mu_;
  using SegmentLru = std::list<
      std::pair<CacheKey, std::shared_ptr<const NodeTableSegment>>>;
  SegmentLru segments_;
  std::unordered_map<CacheKey, SegmentLru::iterator, CacheKeyHash>
      segment_index_;
  uint64_t segment_hits_ = 0;
  uint64_t segment_misses_ = 0;
  uint64_t segment_insertions_ = 0;
  uint64_t segment_evictions_ = 0;
};

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_PIPELINE_CACHE_H_
