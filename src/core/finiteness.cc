#include "core/finiteness.h"

#include <map>
#include <set>

#include "andor/build.h"
#include "andor/lfp.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

using StateKey = std::pair<PredicateId, uint64_t>;

}  // namespace

IntermediateFinitenessResult CheckFiniteIntermediateResults(
    const Program& canonical, const AdornedProgram& adorned,
    const AndOrSystem& system, const Literal& query) {
  IntermediateFinitenessResult out;

  // Base-predicate queries short-circuit (Example 14).
  if (canonical.IsFiniteBase(query.pred)) {
    out.exists = true;
    return out;
  }
  if (canonical.IsInfiniteBase(query.pred)) {
    out.exists = false;
    out.offenders.push_back(
        StrCat("query enumerates the infinite base predicate '",
               canonical.PredicateName(query.pred), "'"));
    return out;
  }

  std::vector<char> lfp = LeastFixpoint(system);
  auto var_infinite = [&](uint32_t adorned_rule, TermId v) {
    NodeId n = system.FindVariable(adorned_rule, v);
    return n != kInvalidNode && lfp[n] == 1;
  };

  // Greatest fixpoint over (predicate, adornment) states: start
  // everything good, remove states until stable.
  std::map<StateKey, bool> good;
  std::map<StateKey, std::vector<const AdornedRule*>> rules_of;
  for (const AdornedRule& ar : adorned.rules) {
    StateKey key{ar.head_pred, ar.adornment.bound_mask};
    good[key] = true;
    rules_of[key].push_back(&ar);
  }

  std::map<StateKey, std::vector<std::string>> state_offenders;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [key, is_good] : good) {
      if (!is_good) continue;
      std::vector<std::string> offenders;
      for (const AdornedRule* ar : rules_of[key]) {
        const Rule& rule = canonical.rules()[ar->source_rule];
        // Every variable of the rule must have a finite per-step value
        // set (Section 5 access assumptions).
        for (TermId v : RuleVariables(canonical.terms(), rule)) {
          if (var_infinite(ar->adorned_index, v)) {
            offenders.push_back(StrCat(
                "variable ",
                canonical.terms().ToString(v, canonical.symbols()),
                " in rule '", canonical.ToString(rule),
                "' (adornment ", ar->adornment.ToString(),
                ") has a potentially infinite per-step binding set"));
          }
        }
        // Every derived occurrence needs a usable sideways strategy.
        for (const BodyOccurrence& occ : ar->body) {
          if (occ.kind != PredicateKind::kDerived) continue;
          bool usable = false;
          for (const Adornment& a1 :
               ConsistentAdornments(canonical.terms(), occ.lit)) {
            bool bound_ok = true;
            for (uint32_t j = 0; j < occ.lit.args.size(); ++j) {
              if (a1.IsBound(j) &&
                  var_infinite(ar->adorned_index, occ.lit.args[j])) {
                bound_ok = false;
                break;
              }
            }
            if (!bound_ok) continue;
            auto it = good.find({occ.lit.pred, a1.bound_mask});
            if (it == good.end()) {
              // Callee has no rules: empty predicate, trivially fine.
              usable = true;
              break;
            }
            if (it->second) {
              usable = true;
              break;
            }
          }
          if (!usable) {
            offenders.push_back(
                StrCat("no usable sideways strategy for occurrence '",
                       canonical.ToString(occ.lit), "' in rule '",
                       canonical.ToString(rule), "'"));
          }
        }
      }
      if (!offenders.empty()) {
        is_good = false;
        state_offenders[key] = std::move(offenders);
        changed = true;
      }
    }
  }

  StateKey root{query.pred, 0};
  auto it = good.find(root);
  out.exists = (it == good.end()) || it->second;
  if (!out.exists) {
    // Report offenders of the root state first, then any others (the
    // root may fail only transitively).
    auto so = state_offenders.find(root);
    if (so != state_offenders.end()) out.offenders = so->second;
    if (out.offenders.empty()) {
      for (auto& [key, offs] : state_offenders) {
        out.offenders.insert(out.offenders.end(), offs.begin(), offs.end());
      }
    }
  }
  return out;
}

IntermediateFinitenessResult CheckFiniteIntermediateResultsUnder(
    const Program& canonical, const AdornedProgram& adorned,
    const AndOrSystem& system, const Literal& query,
    const AccessAssumptions& assumptions) {
  if (assumptions.fd_access) {
    return CheckFiniteIntermediateResults(canonical, adorned, system,
                                          query);
  }
  // Strip every finiteness dependency and rebuild the propositional
  // system: infinite-relation arguments then have no determinants, so
  // only finite base literals and bound positions ground variables.
  Program stripped = canonical;
  (void)stripped.TakeFds();
  auto stripped_adorned = BuildAdornedProgram(stripped);
  if (!stripped_adorned.ok()) {
    IntermediateFinitenessResult out;
    out.offenders.push_back(stripped_adorned.status().ToString());
    return out;
  }
  auto stripped_system = BuildAndOrSystem(stripped, *stripped_adorned);
  if (!stripped_system.ok()) {
    IntermediateFinitenessResult out;
    out.offenders.push_back(stripped_system.status().ToString());
    return out;
  }
  return CheckFiniteIntermediateResults(stripped, *stripped_adorned,
                                        *stripped_system, query);
}

}  // namespace hornsafe
