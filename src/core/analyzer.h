#ifndef HORNSAFE_CORE_ANALYZER_H_
#define HORNSAFE_CORE_ANALYZER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "andor/adorn.h"
#include "andor/scc.h"
#include "andor/subset.h"
#include "andor/system.h"
#include "canonical/canonical.h"
#include "constraints/mono.h"
#include "core/pipeline_cache.h"
#include "lang/fingerprint.h"
#include "lang/program.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hornsafe {

/// Options controlling the full safety-analysis pipeline.
struct AnalyzerOptions {
  /// Algorithm 3: prune rules of provably empty predicates. Required for
  /// the subset condition to be exact (Theorem 4); disable only for
  /// ablation studies (Example 11 then reports a false "unsafe").
  bool apply_emptiness = true;
  /// Algorithm 4: prune rules mentioning never-binding nodes. Pure
  /// optimisation (Lemma 9); never changes verdicts.
  bool apply_reduction = true;
  /// Theorem 5: use monotonicity constraints to discharge candidate
  /// counterexample graphs whose cycles are finitely traversable.
  bool use_monotonicity = true;
  /// Algorithm 2, step 4: derive determinants from the Armstrong closure
  /// of the declared FDs instead of the declared FDs only.
  bool use_fd_closure = false;
  /// Canonicalization options (Algorithm 1).
  CanonicalizeOptions canonicalize;
  /// DFS budget for the subset-condition search, applied *per argument
  /// position* so verdicts do not depend on scheduling.
  uint64_t subset_budget = 5'000'000;
  /// Failure-model context: a wall-clock deadline plus an optional
  /// cancellation token, checked cooperatively by the pipeline build
  /// and by every subset search. Searches stopped by either degrade
  /// their position to kUndecided (with the StopReason recorded on the
  /// ArgumentVerdict) instead of aborting; such degraded verdicts are
  /// never written to the pipeline cache. Replaceable per request with
  /// `set_exec` — long-lived analyzers (hornsafe serve) install each
  /// request's deadline before analyzing. Not part of the cache context
  /// hash (a cached verdict is valid under any deadline).
  ExecContext exec;
  /// Worker threads for fanning per-argument-position subset searches
  /// across the pool: 1 = serial (default), 0 = hardware default.
  /// Verdicts and explanations are identical at every job count — each
  /// position searches under its own deterministic budget and a fresh
  /// memo table, and results are merged in position order.
  int jobs = 1;
  /// Cross-query pipeline cache (not owned; may outlive any number of
  /// analyzers and be shared between them). When set, per-position
  /// subset verdicts are served by cone fingerprint, and the
  /// canonicalization / emptiness / adornment stages reuse cached
  /// artifacts. Results are bit-identical with and without a cache for
  /// entries produced by structurally identical cones (DESIGN.md, D12).
  PipelineCache* cache = nullptr;
};

/// Verdict for one argument position of an analyzed literal.
struct ArgumentVerdict {
  /// 0-based argument position.
  uint32_t position = 0;
  Safety safety = Safety::kUndecided;
  /// For undecided positions: why the search stopped (budget, deadline
  /// or cancellation). kNone for decided positions. Deterministic for
  /// kBudget and for deadlines already expired at analysis start;
  /// mid-search expiry may degrade a scheduling-dependent subset of
  /// positions (each still carries the correct reason).
  StopReason stop = StopReason::kNone;
  /// For unsafe positions: a rendering of the counterexample AND-graph;
  /// for safe/undecided positions: a short note.
  std::string explanation;
  /// Cost of deciding this position: DFS steps and complete AND-graphs
  /// examined by the subset search. Cache-invariant — a warm analysis
  /// reports the cold numbers (they are part of the cached entry), so
  /// verdict metadata is bit-identical cold vs warm; the work *actually*
  /// spent shows up in Counters instead.
  uint64_t steps = 0;
  uint64_t graphs_checked = 0;
};

/// Result of analyzing one query (or one predicate/adornment pair).
struct QueryAnalysis {
  /// The analyzed literal, in the analyzer's canonical program.
  Literal query;
  /// kSafe iff every argument is safe; kUnsafe if any argument is
  /// unsafe; kUndecided otherwise.
  Safety overall = Safety::kUndecided;
  std::vector<ArgumentVerdict> args;
  /// Human-readable one-line summary.
  std::string Summary(const Program& program) const;
};

/// End-to-end implementation of the paper's decision procedure:
///
///   canonicalize (Alg. 1) -> adorn (H*) -> And-Or_H (Alg. 2)
///   -> emptiness pruning (Alg. 3) -> reduction (Alg. 4)
///   -> subset condition (Thms. 3/4) [+ monotonicity escape (Thm. 5)]
///
/// Construction runs the pipeline once; query analyses then share the
/// pruned propositional system. `Update` re-runs the (polynomial)
/// pipeline for an edited program and relies on the shared
/// `PipelineCache` to skip the (exponential) subset searches of every
/// cone the edit did not reach.
class SafetyAnalyzer {
 public:
  /// Builds the analyzer for `program` (any Horn program; Algorithm 1 is
  /// applied internally). Fails on invalid programs.
  static Result<SafetyAnalyzer> Create(const Program& program,
                                       const AnalyzerOptions& options = {});

  /// Analyzes every query registered in the program. (Non-const only
  /// because display literals intern fresh variable names.)
  std::vector<QueryAnalysis> AnalyzeQueries();

  /// Analyzes one predicate of the *canonical* program under the given
  /// adornment (bit k set = argument k bound).
  QueryAnalysis AnalyzePredicate(PredicateId pred, uint64_t adornment_mask);

  /// Analyzes a literal of the canonical program. Canonical queries are
  /// all-variable, so the all-free adornment applies.
  QueryAnalysis AnalyzeQueryLiteral(const Literal& query);

  // --- Incremental re-analysis ------------------------------------------

  /// Outcome of one `Update`: how much of the program the edit dirtied.
  struct UpdateStats {
    /// Canonical predicates in the updated program.
    size_t predicates = 0;
    /// Predicates whose cone fingerprint changed (or that are new) —
    /// their cached verdicts are unreachable and will be recomputed.
    size_t dirty_predicates = 0;
    /// Predicates whose cone fingerprint is unchanged — subsequent
    /// analyses serve their positions from the cache.
    size_t clean_predicates = 0;
  };

  /// Replaces the analyzed program with `program`, re-running the
  /// polynomial pipeline (canonicalize/adorn/build/prune) and diffing
  /// per-predicate cone fingerprints against the previous build. With a
  /// configured cache, subsequent analyses recompute only the dirty
  /// cones; verdicts, explanations and per-position step counts are
  /// bit-identical to a cold analyzer built on `program`. Cumulative
  /// counters carry over. On error the analyzer is left unchanged.
  Result<UpdateStats> Update(const Program& program);

  /// Installs the failure-model context for subsequent analyses (the
  /// per-request deadline/cancellation of a long-lived server). Call
  /// between analyses only — the context is read by searches already in
  /// flight.
  void set_exec(const ExecContext& exec) { state_->options.exec = exec; }

  // --- Introspection ----------------------------------------------------

  const Program& canonical() const { return state_->canon.program; }
  const CanonicalizationResult& canonicalization() const {
    return state_->canon;
  }
  const AdornedProgram& adorned() const { return state_->adorned; }
  const AndOrSystem& system() const { return state_->system; }
  const AnalyzerOptions& options() const { return state_->options; }

  /// Cone fingerprints of the canonical program (lang/fingerprint.h).
  const ProgramFingerprints& fingerprints() const { return state_->fps; }

  /// Pipeline size statistics (used by benches and EXPERIMENTS.md).
  struct Stats {
    size_t canonical_rules = 0;
    size_t adorned_rules = 0;
    size_t nodes = 0;
    size_t rules_total = 0;
    size_t rules_live = 0;
    size_t rules_pruned_emptiness = 0;
    size_t rules_pruned_reduction = 0;
  };
  const Stats& stats() const { return state_->stats; }

  /// Cumulative search counters across every analysis run on this
  /// analyzer (hornsafe_cli --stats). `steps` aggregates the budget
  /// spent by all positions, including ones searched on pool threads;
  /// positions served from the pipeline cache spend nothing here.
  struct Counters {
    uint64_t positions_analyzed = 0;
    uint64_t subset_searches = 0;
    uint64_t steps = 0;
    uint64_t graphs_checked = 0;
    uint64_t memo_hits = 0;
    uint64_t memo_misses = 0;
    uint64_t scc_short_circuits = 0;
    uint64_t parallel_tasks = 0;
    uint64_t serial_tasks = 0;
    /// Positions served from / missed in the pipeline cache (0 when no
    /// cache is configured).
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };
  Counters counters() const;

  /// The condensation shared by every subset search (computed once
  /// after pruning).
  const SccAnalysis& scc() const { return *state_->scc; }

  SafetyAnalyzer(SafetyAnalyzer&&) = default;
  SafetyAnalyzer& operator=(SafetyAnalyzer&&) = default;

 private:
  SafetyAnalyzer() = default;

  SubsetOptions MakeSubsetOptions();

  /// The pool, created on first parallel analysis.
  ThreadPool& Pool(size_t threads);

  /// All pipeline state lives behind one pointer so that moving the
  /// analyzer never invalidates the internal references held by the
  /// monotonicity analyzer.
  struct State {
    AnalyzerOptions options;
    CanonicalizationResult canon;
    AdornedProgram adorned;
    AndOrSystem system;
    std::unique_ptr<MonotonicityAnalyzer> mono;
    std::unique_ptr<SccAnalysis> scc;
    std::unique_ptr<ThreadPool> pool;
    Stats stats;
    /// Per-predicate structural fingerprints of the canonical program.
    ProgramFingerprints fps;
    /// Hash of everything besides the cone that can influence a subset
    /// search (option flags, budget, escape availability, whether the
    /// condensation materialised reach sets). Mixed into every cache
    /// key so entries never leak across analysis configurations.
    uint64_t context_hash = 0;
    /// Shared atomic budget tally: every finished search adds its steps
    /// here from whichever thread ran it; the rest of Counters is
    /// merged serially after the per-predicate join.
    std::atomic<uint64_t> steps_spent{0};
    Counters counters;
  };

  /// Runs the full (polynomial) pipeline for `program`, probing the
  /// cache's canonicalization/emptiness/adornment tiers when configured.
  static Result<std::unique_ptr<State>> BuildState(
      const Program& program, const AnalyzerOptions& options);

  std::unique_ptr<State> state_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_ANALYZER_H_
