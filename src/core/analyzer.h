#ifndef HORNSAFE_CORE_ANALYZER_H_
#define HORNSAFE_CORE_ANALYZER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "andor/adorn.h"
#include "andor/scc.h"
#include "andor/subset.h"
#include "andor/system.h"
#include "canonical/canonical.h"
#include "constraints/mono.h"
#include "core/pipeline_cache.h"
#include "lang/fingerprint.h"
#include "lang/program.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hornsafe {

/// Options controlling the full safety-analysis pipeline.
struct AnalyzerOptions {
  /// Algorithm 3: prune rules of provably empty predicates. Required for
  /// the subset condition to be exact (Theorem 4); disable only for
  /// ablation studies (Example 11 then reports a false "unsafe").
  bool apply_emptiness = true;
  /// Algorithm 4: prune rules mentioning never-binding nodes. Pure
  /// optimisation (Lemma 9); never changes verdicts.
  bool apply_reduction = true;
  /// Theorem 5: use monotonicity constraints to discharge candidate
  /// counterexample graphs whose cycles are finitely traversable.
  bool use_monotonicity = true;
  /// Algorithm 2, step 4: derive determinants from the Armstrong closure
  /// of the declared FDs instead of the declared FDs only.
  bool use_fd_closure = false;
  /// Canonicalization options (Algorithm 1).
  CanonicalizeOptions canonicalize;
  /// DFS budget for the subset-condition search, applied *per argument
  /// position* so verdicts do not depend on scheduling.
  uint64_t subset_budget = 5'000'000;
  /// Failure-model context: a wall-clock deadline plus an optional
  /// cancellation token, checked cooperatively by the pipeline build
  /// and by every subset search. Searches stopped by either degrade
  /// their position to kUndecided (with the StopReason recorded on the
  /// ArgumentVerdict) instead of aborting; such degraded verdicts are
  /// never written to the pipeline cache. This field is the *default*
  /// context, used by the legacy single-threaded entry points;
  /// concurrent callers (hornsafe serve workers) pass a per-request
  /// ExecContext to the snapshot-pinned overloads instead. Replaceable
  /// with `set_exec`. Not part of the cache context hash (a cached
  /// verdict is valid under any deadline).
  ExecContext exec;
  /// Worker threads for fanning per-argument-position subset searches
  /// across the pool: 1 = serial (default), 0 = hardware default.
  /// Verdicts and explanations are identical at every job count — each
  /// position searches under its own deterministic budget and a fresh
  /// memo table, and results are merged in position order.
  int jobs = 1;
  /// Cross-query pipeline cache (not owned; may outlive any number of
  /// analyzers and be shared between them — including between worker
  /// threads analyzing concurrently; every tier is thread-safe). When
  /// set, per-position subset verdicts are served by cone fingerprint,
  /// and the canonicalization / emptiness / adornment stages reuse
  /// cached artifacts. Results are bit-identical with and without a
  /// cache for entries produced by structurally identical cones
  /// (DESIGN.md, D12).
  PipelineCache* cache = nullptr;
};

/// Verdict for one argument position of an analyzed literal.
struct ArgumentVerdict {
  /// 0-based argument position.
  uint32_t position = 0;
  Safety safety = Safety::kUndecided;
  /// For undecided positions: why the search stopped (budget, deadline
  /// or cancellation). kNone for decided positions. Deterministic for
  /// kBudget and for deadlines already expired at analysis start;
  /// mid-search expiry may degrade a scheduling-dependent subset of
  /// positions (each still carries the correct reason).
  StopReason stop = StopReason::kNone;
  /// For unsafe positions: a rendering of the counterexample AND-graph;
  /// for safe/undecided positions: a short note.
  std::string explanation;
  /// Cost of deciding this position: DFS steps and complete AND-graphs
  /// examined by the subset search. Cache-invariant — a warm analysis
  /// reports the cold numbers (they are part of the cached entry), so
  /// verdict metadata is bit-identical cold vs warm; the work *actually*
  /// spent shows up in Counters instead.
  uint64_t steps = 0;
  uint64_t graphs_checked = 0;
};

/// Result of analyzing one query (or one predicate/adornment pair).
struct QueryAnalysis {
  /// The analyzed literal, in the analyzer's canonical program.
  Literal query;
  /// kSafe iff every argument is safe; kUnsafe if any argument is
  /// unsafe; kUndecided otherwise.
  Safety overall = Safety::kUndecided;
  std::vector<ArgumentVerdict> args;
  /// Human-readable one-line summary.
  std::string Summary(const Program& program) const;
};

/// One immutable build of the analysis pipeline: canonical program,
/// adorned program, pruned And-Or system, condensation, monotonicity
/// analyzer and cone fingerprints — everything a subset search reads.
///
/// A snapshot is frozen once `SafetyAnalyzer` publishes it: no member
/// function of the read path mutates it (display variables are
/// pre-interned at build time), so any number of worker threads may
/// analyze against the same snapshot concurrently while an `Update`
/// builds its successor off to the side. Snapshots are reference
/// counted (`std::shared_ptr`); a reader that pinned one keeps it alive
/// across any number of swaps (epoch-style reclamation — see DESIGN.md,
/// D14).
struct AnalysisSnapshot {
  /// The options this snapshot was built under. `exec` records the
  /// build-time context only; the read path takes a per-request
  /// ExecContext instead of consulting this copy.
  AnalyzerOptions options;
  /// Frozen Algorithm 1 output. Shared with the pipeline cache's
  /// canonicalization tier when one is configured: the tier and every
  /// snapshot built from the same input text point at one immutable
  /// object, so a tier hit costs no Program copy.
  std::shared_ptr<const CanonicalizationResult> canon;
  AdornedProgram adorned;
  AndOrSystem system;
  std::unique_ptr<MonotonicityAnalyzer> mono;
  std::unique_ptr<SccAnalysis> scc;
  /// Per-predicate structural fingerprints of the canonical program.
  ProgramFingerprints fps;
  /// Hash of everything besides the cone that can influence a subset
  /// search (option flags, budget, escape availability, whether the
  /// condensation materialised reach sets). Mixed into every cache
  /// key so entries never leak across analysis configurations.
  uint64_t context_hash = 0;
  /// Display variables "A1".."A<max arity>", interned at build time so
  /// that synthesising a display literal on the read path never touches
  /// the term pool.
  std::vector<TermId> display_vars;

  /// Pipeline size statistics (used by benches and EXPERIMENTS.md).
  struct Stats {
    size_t canonical_rules = 0;
    size_t adorned_rules = 0;
    size_t nodes = 0;
    size_t rules_total = 0;
    size_t rules_live = 0;
    size_t rules_pruned_emptiness = 0;
    size_t rules_pruned_reduction = 0;
    /// Wall time per pipeline stage of this build (ns): Algorithm 1,
    /// fingerprinting, FD index preparation, adornment (including
    /// fragment planning), the Algorithm 2 build (including fragment
    /// assembly), Algorithm 3 + 4 pruning, and condensation (+
    /// monotonicity) — in pipeline order.
    uint64_t stage_canonicalize_ns = 0;
    uint64_t stage_fingerprint_ns = 0;
    uint64_t stage_fd_ns = 0;
    uint64_t stage_adorn_ns = 0;
    uint64_t stage_build_ns = 0;
    uint64_t stage_prune_ns = 0;
    uint64_t stage_scc_ns = 0;
    /// Adorned rules spliced from cached fragments vs processed fresh
    /// by this build (both 0 without a cache).
    uint64_t fragments_spliced = 0;
    uint64_t fragments_rebuilt = 0;
    /// Segment-path tallies of this build (all 0 without a cache, or
    /// when the component partition is not contiguous): components
    /// planned, grafted wholesale from cached segments, rejected at
    /// graft validation, and freshly encoded into the segment tier.
    uint64_t segments_total = 0;
    uint64_t segments_grafted = 0;
    uint64_t segment_grafts_rejected = 0;
    uint64_t segments_encoded = 0;
    /// Nodes appended from shared segments vs interned fresh by the
    /// segment-planned build.
    uint64_t nodes_shared = 0;
    uint64_t nodes_owned = 0;
    /// Segments this snapshot holds alive (grafted or freshly encoded)
    /// and their resident bytes — the structurally shared part of the
    /// node table.
    uint64_t segments_live = 0;
    uint64_t node_table_bytes = 0;
  };
  Stats stats;
};

/// End-to-end implementation of the paper's decision procedure:
///
///   canonicalize (Alg. 1) -> adorn (H*) -> And-Or_H (Alg. 2)
///   -> emptiness pruning (Alg. 3) -> reduction (Alg. 4)
///   -> subset condition (Thms. 3/4) [+ monotonicity escape (Thm. 5)]
///
/// Construction runs the pipeline once and publishes the result as an
/// immutable `AnalysisSnapshot`; query analyses read the snapshot.
/// `Update` re-runs the (polynomial) pipeline for an edited program
/// into a *fresh* snapshot and swaps it in atomically, so concurrent
/// readers never observe a half-built program: a check that pinned the
/// old snapshot keeps answering from it, the next check sees the new
/// one. The shared `PipelineCache` skips the (exponential) subset
/// searches of every cone the edit did not reach.
///
/// Thread-safety: `snapshot()`, the snapshot-pinned Analyze overloads,
/// `Update` and `counters()` are safe to call concurrently from any
/// number of threads (updates serialize among themselves). The legacy
/// no-snapshot overloads and the introspection accessors read the
/// *current* snapshot and are intended for single-threaded use.
class SafetyAnalyzer {
 public:
  /// Builds the analyzer for `program` (any Horn program; Algorithm 1 is
  /// applied internally). Fails on invalid programs.
  static Result<SafetyAnalyzer> Create(const Program& program,
                                       const AnalyzerOptions& options = {});

  // --- Read path --------------------------------------------------------

  /// Pins the current snapshot: the returned pointer stays valid (and
  /// immutable) for as long as the caller holds it, across any number
  /// of concurrent Updates.
  std::shared_ptr<const AnalysisSnapshot> snapshot() const;

  /// Analyzes one predicate of `snap`'s canonical program under the
  /// given adornment (bit k set = argument k bound) and failure-model
  /// context. Safe to call concurrently from any number of threads.
  QueryAnalysis AnalyzePredicate(const AnalysisSnapshot& snap,
                                 PredicateId pred, uint64_t adornment_mask,
                                 const ExecContext& exec);

  /// Analyzes a literal of `snap`'s canonical program. Canonical
  /// queries are all-variable, so the all-free adornment applies.
  QueryAnalysis AnalyzeQueryLiteral(const AnalysisSnapshot& snap,
                                    const Literal& query,
                                    const ExecContext& exec);

  // Legacy single-threaded entry points: pin the current snapshot and
  // analyze under the default exec context (AnalyzerOptions::exec as
  // last set by `set_exec`).
  std::vector<QueryAnalysis> AnalyzeQueries();
  QueryAnalysis AnalyzePredicate(PredicateId pred, uint64_t adornment_mask);
  QueryAnalysis AnalyzeQueryLiteral(const Literal& query);

  // --- Incremental re-analysis ------------------------------------------

  /// Outcome of one `Update`: how much of the program the edit dirtied.
  struct UpdateStats {
    /// Canonical predicates in the updated program.
    size_t predicates = 0;
    /// Predicates whose cone fingerprint changed (or that are new) —
    /// their cached verdicts are unreachable and will be recomputed.
    size_t dirty_predicates = 0;
    /// Predicates whose cone fingerprint is unchanged — subsequent
    /// analyses serve their positions from the cache.
    size_t clean_predicates = 0;
  };

  /// Replaces the analyzed program with `program`: re-runs the
  /// polynomial pipeline (canonicalize/adorn/build/prune) into a fresh
  /// snapshot, diffs per-predicate cone fingerprints against the
  /// previous build, and publishes the fresh snapshot with one atomic
  /// swap. Concurrent checks that pinned the old snapshot are
  /// undisturbed; concurrent Updates serialize. With a configured
  /// cache, subsequent analyses recompute only the dirty cones;
  /// verdicts, explanations and per-position step counts are
  /// bit-identical to a cold analyzer built on `program`. Cumulative
  /// counters carry over. On error the published snapshot is unchanged.
  Result<UpdateStats> Update(const Program& program,
                             const ExecContext& exec);
  Result<UpdateStats> Update(const Program& program);

  /// Installs the default failure-model context used by the legacy
  /// no-snapshot entry points. Call between analyses only; concurrent
  /// callers pass their ExecContext per call instead.
  void set_exec(const ExecContext& exec);

  // --- Introspection ----------------------------------------------------

  // The accessors below read the *current* snapshot and return
  // references into it; they are meant for single-threaded callers
  // (CLI, tests). Concurrent readers must pin via `snapshot()` and read
  // the snapshot's fields directly, or the referenced build could be
  // reclaimed under them by an Update.
  const Program& canonical() const { return snapshot_ref().canon->program; }
  const CanonicalizationResult& canonicalization() const {
    return *snapshot_ref().canon;
  }
  const AdornedProgram& adorned() const { return snapshot_ref().adorned; }
  const AndOrSystem& system() const { return snapshot_ref().system; }
  const AnalyzerOptions& options() const { return snapshot_ref().options; }

  /// Cone fingerprints of the canonical program (lang/fingerprint.h).
  const ProgramFingerprints& fingerprints() const {
    return snapshot_ref().fps;
  }

  using Stats = AnalysisSnapshot::Stats;
  const Stats& stats() const { return snapshot_ref().stats; }

  /// Cumulative search counters across every analysis run on this
  /// analyzer (hornsafe_cli --stats). `steps` aggregates the budget
  /// spent by all positions, including ones searched on pool threads;
  /// positions served from the pipeline cache spend nothing here.
  struct Counters {
    uint64_t positions_analyzed = 0;
    uint64_t subset_searches = 0;
    uint64_t steps = 0;
    uint64_t graphs_checked = 0;
    uint64_t memo_hits = 0;
    uint64_t memo_misses = 0;
    uint64_t scc_short_circuits = 0;
    uint64_t parallel_tasks = 0;
    uint64_t serial_tasks = 0;
    /// Positions served from / missed in the pipeline cache (0 when no
    /// cache is configured).
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    /// Snapshots published by Update (0 for a never-updated analyzer).
    uint64_t snapshot_swaps = 0;
    /// Cumulative per-stage wall time across every build this analyzer
    /// ran (Create + Updates), plus the subset-search stage across
    /// every analysis. Stage meanings: AnalysisSnapshot::Stats.
    uint64_t stage_canonicalize_ns = 0;
    uint64_t stage_fingerprint_ns = 0;
    uint64_t stage_fd_ns = 0;
    uint64_t stage_adorn_ns = 0;
    uint64_t stage_build_ns = 0;
    uint64_t stage_prune_ns = 0;
    uint64_t stage_scc_ns = 0;
    uint64_t stage_search_ns = 0;
    /// Adorned rules spliced from cached And-Or fragments vs processed
    /// fresh, across every build.
    uint64_t fragments_spliced = 0;
    uint64_t fragments_rebuilt = 0;
    /// Node-table segment tallies across every build (DESIGN.md, D15):
    /// components planned / grafted / rejected / freshly encoded, and
    /// nodes appended from shared segments vs interned fresh.
    uint64_t segments_total = 0;
    uint64_t segments_grafted = 0;
    uint64_t segment_grafts_rejected = 0;
    uint64_t segments_encoded = 0;
    uint64_t nodes_shared = 0;
    uint64_t nodes_owned = 0;
    /// High-water marks across every snapshot this analyzer built: the
    /// node-table size and the resident bytes of its live segments.
    uint64_t node_table_peak_nodes = 0;
    uint64_t node_table_peak_bytes = 0;
  };
  Counters counters() const;

  /// The condensation shared by every subset search (computed once
  /// after pruning).
  const SccAnalysis& scc() const { return *snapshot_ref().scc; }

  SafetyAnalyzer(SafetyAnalyzer&&) = default;
  SafetyAnalyzer& operator=(SafetyAnalyzer&&) = default;

 private:
  SafetyAnalyzer() = default;

  /// Monotonic counters, accumulated from whichever thread finished the
  /// work. Individually exact; a concurrent reader may observe fields
  /// from slightly different instants (they are independent tallies,
  /// not a torn struct — each field is its own atomic).
  struct SharedCounters {
    std::atomic<uint64_t> positions_analyzed{0};
    std::atomic<uint64_t> subset_searches{0};
    std::atomic<uint64_t> steps{0};
    std::atomic<uint64_t> graphs_checked{0};
    std::atomic<uint64_t> memo_hits{0};
    std::atomic<uint64_t> memo_misses{0};
    std::atomic<uint64_t> scc_short_circuits{0};
    std::atomic<uint64_t> parallel_tasks{0};
    std::atomic<uint64_t> serial_tasks{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> snapshot_swaps{0};
    std::atomic<uint64_t> stage_canonicalize_ns{0};
    std::atomic<uint64_t> stage_fingerprint_ns{0};
    std::atomic<uint64_t> stage_fd_ns{0};
    std::atomic<uint64_t> stage_adorn_ns{0};
    std::atomic<uint64_t> stage_build_ns{0};
    std::atomic<uint64_t> stage_prune_ns{0};
    std::atomic<uint64_t> stage_scc_ns{0};
    std::atomic<uint64_t> stage_search_ns{0};
    std::atomic<uint64_t> fragments_spliced{0};
    std::atomic<uint64_t> fragments_rebuilt{0};
    std::atomic<uint64_t> segments_total{0};
    std::atomic<uint64_t> segments_grafted{0};
    std::atomic<uint64_t> segment_grafts_rejected{0};
    std::atomic<uint64_t> segments_encoded{0};
    std::atomic<uint64_t> nodes_shared{0};
    std::atomic<uint64_t> nodes_owned{0};
    /// Gauges, maintained with compare-exchange max (not fetch_add).
    std::atomic<uint64_t> node_table_peak_nodes{0};
    std::atomic<uint64_t> node_table_peak_bytes{0};
  };

  /// Everything that outlives snapshot swaps and analyzer moves:
  /// mutexes are not movable, so the analyzer owns this block through a
  /// shared_ptr and stays cheaply movable.
  struct Shared {
    /// Guards `snapshot` (pointer load/store only; never held while
    /// building or analyzing).
    mutable std::mutex snapshot_mu;
    std::shared_ptr<const AnalysisSnapshot> snapshot;
    /// Serializes Updates: one builder at a time, readers undisturbed.
    std::mutex update_mu;
    /// Guards lazy creation/growth of the search fan-out pool.
    std::mutex pool_mu;
    std::shared_ptr<ThreadPool> pool;
    /// Default exec for the legacy entry points (set_exec).
    std::mutex exec_mu;
    ExecContext default_exec;
    SharedCounters counters;
  };

  /// Runs the full (polynomial) pipeline for `program`, probing the
  /// cache's canonicalization/emptiness/adornment tiers when configured.
  static Result<std::shared_ptr<const AnalysisSnapshot>> BuildSnapshot(
      const Program& program, const AnalyzerOptions& options);

  static SubsetOptions MakeSubsetOptions(const AnalysisSnapshot& snap,
                                         const ExecContext& exec);

  /// The fan-out pool, created on first parallel analysis; grow-only
  /// (an in-flight analysis keeps its pinned pool alive).
  std::shared_ptr<ThreadPool> Pool(size_t threads);

  const AnalysisSnapshot& snapshot_ref() const;
  ExecContext default_exec() const;
  void Publish(std::shared_ptr<const AnalysisSnapshot> snap);

  /// Folds one build's stage breakdown and fragment tallies into the
  /// cumulative counters (called by Create and every Update).
  void FoldBuildStats(const AnalysisSnapshot::Stats& stats);

  std::shared_ptr<Shared> shared_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_ANALYZER_H_
