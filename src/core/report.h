#ifndef HORNSAFE_CORE_REPORT_H_
#define HORNSAFE_CORE_REPORT_H_

#include <string>

#include "core/analyzer.h"

namespace hornsafe {

/// Options for GenerateReport.
struct ReportOptions {
  /// Include the safety-by-adornment matrix for every derived predicate
  /// (2^arity rows each); predicates wider than `max_matrix_arity` get a
  /// summary line instead.
  bool include_adornment_matrix = true;
  uint32_t max_matrix_arity = 6;
  /// Include the Theorem 6 (finite intermediate results) and Section 5
  /// termination verdicts for each query.
  bool include_section5 = true;
};

/// Renders a complete human-readable analysis report for the analyzer's
/// program: constraint inventory, pipeline statistics, per-query
/// verdicts (safety / finite-intermediate / termination), and the
/// per-adornment safety matrix of every derived predicate. This is what
/// `hornsafe report <file>` prints.
std::string GenerateReport(SafetyAnalyzer& analyzer,
                           const ReportOptions& options = {});

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_REPORT_H_
