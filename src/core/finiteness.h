#ifndef HORNSAFE_CORE_FINITENESS_H_
#define HORNSAFE_CORE_FINITENESS_H_

#include <string>
#include <vector>

#include "andor/adorn.h"
#include "andor/system.h"
#include "lang/program.h"

namespace hornsafe {

/// Result of the finite-intermediate-results analysis (Theorem 6).
struct IntermediateFinitenessResult {
  /// True iff some computation enumerates all answers while examining
  /// only finite subsets of every relation at each step.
  bool exists = false;
  /// When `exists` is false: the variables/positions that force an
  /// infinite intermediate relation under every strategy.
  std::vector<std::string> offenders;
};

/// Theorem 6 of the paper (implementation per DESIGN.md D8): decides
/// whether a computation with finite intermediate relations exists for
/// `query` (a canonical, all-variable query literal).
///
/// A (predicate, adornment) state is *good* if for each of its adorned
/// rules every rule variable has least-fixpoint value 0 in And-Or_H
/// (each step then touches only finite value sets, per the Section 5
/// access assumptions), and every derived body occurrence has at least
/// one usable sideways strategy — a consistent adornment whose bound
/// variables are themselves finite and whose callee state is good.
/// Goodness is a greatest fixpoint, so recursion through a cycle is
/// fine: safety of the *step* is what matters, not of the total (an
/// unsafe query may still have finite intermediate relations —
/// Example 15).
///
/// Queries over finite base predicates trivially qualify; queries over
/// infinite base predicates never do unless every free argument is
/// finitely determined by the bound ones (Example 14).
IntermediateFinitenessResult CheckFiniteIntermediateResults(
    const Program& canonical, const AdornedProgram& adorned,
    const AndOrSystem& system, const Literal& query);

/// The access assumptions of Section 5 of the paper, as an explicit
/// knob. The paper: "There is nothing sacrosanct about this set of
/// assumptions — several equally reasonable alternatives are
/// conceivable", and the framework should "reason about finiteness of
/// intermediate relations under different assumptions".
struct AccessAssumptions {
  /// Assumption 1: membership `f(a)` is testable against a finite
  /// subset. (Always on; turning it off makes every infinite-relation
  /// access infinite, which no reasonable computation model uses.)
  /// Assumption 3: with `X ⇝ Y`, binding X lets a finite subset of f
  /// produce the matching Ys. Turning this off models relations whose
  /// dependencies hold semantically but cannot be *accessed* finitely
  /// (e.g. no index exists) — stricter than the paper's default.
  bool fd_access = true;
};

/// Variant of CheckFiniteIntermediateResults under explicit access
/// assumptions. With `fd_access = false` the analysis rebuilds the
/// propositional system with every finiteness dependency stripped, so
/// only finite base predicates and bound positions ground variables.
/// `canonical` is copied; the default assumptions delegate to the
/// overload above.
IntermediateFinitenessResult CheckFiniteIntermediateResultsUnder(
    const Program& canonical, const AdornedProgram& adorned,
    const AndOrSystem& system, const Literal& query,
    const AccessAssumptions& assumptions);

}  // namespace hornsafe

#endif  // HORNSAFE_CORE_FINITENESS_H_
