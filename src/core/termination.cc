#include "core/termination.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "andor/lfp.h"
#include "andor/subset.h"
#include "constraints/argmap.h"
#include "core/finiteness.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

using StateKey = std::pair<PredicateId, uint64_t>;

/// One call edge between reachable states.
struct StateEdge {
  StateKey from;
  StateKey to;
  /// Adorned rule realising the call.
  uint32_t adorned_rule;
  /// The occurrence literal within that rule.
  const Literal* occ;
};

class TerminationChecker {
 public:
  TerminationChecker(SafetyAnalyzer& analyzer, const Literal& query)
      : analyzer_(analyzer),
        program_(analyzer.canonical()),
        adorned_(analyzer.adorned()),
        system_(analyzer.system()),
        query_(query) {}

  TerminationResult Run() {
    TerminationResult out;

    // 1. Termination implies safety.
    QueryAnalysis safety = analyzer_.AnalyzeQueryLiteral(query_);
    if (safety.overall != Safety::kSafe) {
      out.reasons.push_back(
          StrCat("query is ", SafetyName(safety.overall),
                 "; a terminating computation would make it safe"));
      return out;
    }
    // 2. ... and finiteness of intermediate relations.
    IntermediateFinitenessResult fin = CheckFiniteIntermediateResults(
        program_, adorned_, system_, query_);
    if (!fin.exists) {
      out.reasons.push_back(
          "no computation has finite intermediate relations");
      for (const std::string& r : fin.offenders) out.reasons.push_back(r);
      return out;
    }

    if (!program_.IsDerived(query_.pred)) {
      // Finite base (infinite base already failed step 2).
      out.exists = true;
      return out;
    }

    // 3. Every reachable recursion cycle must be convergent.
    lfp_ = LeastFixpoint(system_);
    BuildReachableStates();
    std::vector<std::string> bad = UncertifiedCycles();
    if (bad.empty()) {
      out.exists = true;
    } else {
      out.reasons = std::move(bad);
    }
    return out;
  }

 private:
  bool VarFinite(uint32_t adorned_rule, TermId v) const {
    NodeId n = system_.FindVariable(adorned_rule, v);
    return n == kInvalidNode || lfp_[n] == 0;
  }

  /// BFS over (pred, adornment) states. A computation chooses one
  /// sideways strategy per occurrence; we model the natural *most
  /// bound* choice — bind every position whose variable is LFP-finite.
  /// More bindings only restrict the recursion further, so this choice
  /// is at least as convergent as any other usable strategy.
  void BuildReachableStates() {
    std::map<StateKey, std::vector<const AdornedRule*>> rules_of;
    for (const AdornedRule& ar : adorned_.rules) {
      rules_of[{ar.head_pred, ar.adornment.bound_mask}].push_back(&ar);
    }
    std::vector<StateKey> worklist = {{query_.pred, 0}};
    std::set<StateKey> seen(worklist.begin(), worklist.end());
    while (!worklist.empty()) {
      StateKey state = worklist.back();
      worklist.pop_back();
      auto it = rules_of.find(state);
      if (it == rules_of.end()) continue;
      for (const AdornedRule* ar : it->second) {
        for (size_t bi = 0; bi < ar->body.size(); ++bi) {
          const BodyOccurrence& occ = ar->body[bi];
          if (occ.kind != PredicateKind::kDerived) continue;
          uint64_t mask = 0;
          for (uint32_t j = 0; j < occ.lit.args.size(); ++j) {
            TermId v = occ.lit.args[j];
            // Bound at call time: the variable has a finite binding set
            // *and* a source outside this occurrence (a bound head
            // position or another body literal).
            if (!VarFinite(ar->adorned_index, v)) continue;
            bool available = false;
            for (uint32_t k = 0; k < ar->head.args.size(); ++k) {
              if (ar->head.args[k] == v && ar->adornment.IsBound(k)) {
                available = true;
              }
            }
            for (size_t other = 0; other < ar->body.size() && !available;
                 ++other) {
              if (other == bi) continue;
              const std::vector<TermId>& args = ar->body[other].lit.args;
              if (std::find(args.begin(), args.end(), v) != args.end()) {
                available = true;
              }
            }
            if (available) mask |= uint64_t{1} << j;
          }
          // Positions sharing a variable share availability, so the
          // mask is automatically a consistent adornment.
          StateKey next{occ.lit.pred, mask};
          edges_.push_back(
              StateEdge{state, next, ar->adorned_index, &occ.lit});
          if (seen.insert(next).second) worklist.push_back(next);
        }
      }
    }
  }

  /// A strictly monotone bounded track certifies a cycle (see header).
  bool MonoCertified(const std::vector<const StateEdge*>& cycle) const {
    std::vector<const StateEdge*> rotated = cycle;
    for (size_t r = 0; r < cycle.size(); ++r) {
      if (MonoCertifiedAtPivot(rotated)) return true;
      std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    }
    return false;
  }

  bool MonoCertifiedAtPivot(
      const std::vector<const StateEdge*>& cycle) const {
    ArgumentMapping total(0, 0);
    bool first = true;
    for (const StateEdge* e : cycle) {
      const AdornedRule& ar = adorned_.rules[e->adorned_rule];
      const Rule& rule = program_.rules()[ar.source_rule];
      VariableOrder order(program_, rule);
      ArgumentMapping m =
          ArgumentMapping::Build(program_, rule, order, *e->occ);
      total = first ? m : total.Compose(m);
      first = false;
    }
    if (total.Invalid()) return true;

    const StateEdge* pivot = cycle.front();
    const AdornedRule& par = adorned_.rules[pivot->adorned_rule];
    const Rule& pivot_rule = program_.rules()[par.source_rule];
    VariableOrder order(program_, pivot_rule);
    for (uint32_t i = 0; i < total.head_arity() && i < total.occ_arity();
         ++i) {
      uint8_t bits = total.rel(i, i);
      if (!(bits & (kRelGt | kRelLt))) continue;
      // A bound pivot position: the monotone chain passes the target
      // and can never return.
      if (par.adornment.IsBound(i)) return true;
      TermId head_var = pivot_rule.head.args[i];
      TermId occ_var = pivot->occ->args[i];
      if ((bits & kRelLt) && (order.BoundedBelow(head_var) ||
                              order.BoundedBelow(occ_var))) {
        return true;
      }
      if ((bits & kRelGt) && (order.BoundedAbove(head_var) ||
                              order.BoundedAbove(occ_var))) {
        return true;
      }
    }
    return false;
  }

  /// A cycle whose recursion variables all have finite value spaces
  /// reaches its fixpoint in finitely many steps.
  bool ValueCertified(const std::vector<const StateEdge*>& cycle) const {
    for (const StateEdge* e : cycle) {
      for (TermId v : LiteralVariables(program_.terms(), *e->occ)) {
        NodeId n = system_.FindVariable(e->adorned_rule, v);
        if (n == kInvalidNode) return false;
        if (CheckSubsetCondition(system_, n, {}).verdict != Safety::kSafe) {
          return false;
        }
      }
    }
    return true;
  }

  std::vector<std::string> UncertifiedCycles() const {
    static constexpr size_t kMaxCycleLength = 8;
    std::vector<std::string> bad;
    std::map<StateKey, std::vector<const StateEdge*>> out;
    for (const StateEdge& e : edges_) out[e.from].push_back(&e);

    std::vector<const StateEdge*> path;
    std::set<StateKey> on_path;
    std::set<std::string> reported;

    std::function<void(const StateKey&, const StateKey&)> dfs =
        [&](const StateKey& start, const StateKey& at) {
          auto it = out.find(at);
          if (it == out.end()) return;
          for (const StateEdge* e : it->second) {
            if (e->to == start) {
              path.push_back(e);
              if (!MonoCertified(path) && !ValueCertified(path)) {
                std::string desc = StrCat(
                    "recursion cycle through ",
                    JoinMapped(path, " -> ",
                               [&](const StateEdge* se) {
                                 return StrCat(
                                     program_.PredicateName(se->from.first),
                                     "^",
                                     Adornment{se->from.second,
                                               program_
                                                   .predicate(se->from.first)
                                                   .arity}
                                         .ToString());
                               }),
                    " is not provably convergent");
                if (reported.insert(desc).second) bad.push_back(desc);
              }
              path.pop_back();
              continue;
            }
            if (on_path.count(e->to)) continue;
            if (path.size() + 1 >= kMaxCycleLength) continue;
            path.push_back(e);
            on_path.insert(e->to);
            dfs(start, e->to);
            on_path.erase(e->to);
            path.pop_back();
          }
        };

    std::set<StateKey> starts;
    for (const StateEdge& e : edges_) starts.insert(e.from);
    for (const StateKey& s : starts) {
      path.clear();
      on_path.clear();
      on_path.insert(s);
      dfs(s, s);
    }
    return bad;
  }

  SafetyAnalyzer& analyzer_;
  const Program& program_;
  const AdornedProgram& adorned_;
  const AndOrSystem& system_;
  const Literal& query_;
  std::vector<char> lfp_;
  std::vector<StateEdge> edges_;
};

}  // namespace

TerminationResult CheckTermination(SafetyAnalyzer& analyzer,
                                   const Literal& query) {
  return TerminationChecker(analyzer, query).Run();
}

}  // namespace hornsafe
