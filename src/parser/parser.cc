#include "parser/parser.h"

#include <algorithm>
#include <vector>

#include "parser/lexer.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

/// The position of `t` as a span.
SourceSpan SpanOf(const Token& t) { return SourceSpan{t.line, t.column}; }

/// Prefixes an error status's message with `span`'s position, keeping
/// the code. `Program::Add*` errors carry no positions of their own;
/// the parser attaches the offending clause's here so that every error
/// escaping ParseProgram names a source location.
Status AtSpan(SourceSpan span, Status status) {
  if (status.ok() || !span.valid()) return status;
  return Status(status.code(), StrCat("line ", span.line, ":", span.column,
                                      ": ", status.message()));
}

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  Status ParseAll() {
    while (!Check(TokenKind::kEof)) {
      HORNSAFE_RETURN_IF_ERROR(ParseItem());
    }
    // A ground bodiless clause parsed before a rule for the same
    // predicate was stored as an EDB fact; once the predicate turns out
    // to be derived, re-file such clauses as bodiless rules so that the
    // EDB/IDB partition stays disjoint (paper, Section 1).
    std::vector<Literal> facts = program_->TakeFacts();
    for (Literal& f : facts) {
      SourceSpan span = f.span;
      if (program_->IsDerived(f.pred)) {
        Rule rule{std::move(f), {}};
        rule.span = span;
        HORNSAFE_RETURN_IF_ERROR(
            AtSpan(span, program_->AddRule(std::move(rule))));
      } else {
        HORNSAFE_RETURN_IF_ERROR(
            AtSpan(span, program_->AddFact(std::move(f))));
      }
    }
    return program_->Validate();
  }

  Result<Literal> ParseSingleLiteral() {
    HORNSAFE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    if (!Check(TokenKind::kEof) && !Check(TokenKind::kPeriod)) {
      return Error("trailing tokens after literal");
    }
    return lit;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Error(std::string_view message) const {
    const Token& t = Peek();
    return Status::ParseError(
        StrCat("line ", t.line, ":", t.column, ": ", message, " (found ",
               TokenKindName(t.kind),
               t.text.empty() ? "" : StrCat(" '", t.text, "'"), ")"));
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (!Match(kind)) {
      return Error(StrCat("expected ", what));
    }
    return Status::Ok();
  }

  Status ParseItem() {
    if (Check(TokenKind::kDirective)) return ParseDirective();
    if (Check(TokenKind::kQuery)) {
      SourceSpan span = SpanOf(Peek());
      Advance();
      return ParseQuery(span);
    }
    return ParseClause();
  }

  // --- Directives -------------------------------------------------------

  Status ParseDirective() {
    const Token& tok = Peek();
    SourceSpan span = SpanOf(tok);
    std::string name = Advance().text;
    if (name == "infinite" || name == "finite") {
      return ParsePredicateDecl(name == "infinite");
    }
    if (name == "fd") return ParseFdDecl(span);
    if (name == "mono") return ParseMonoDecl(span);
    // Point at the directive itself, not the token after it.
    return AtSpan(span,
                  Status::ParseError(StrCat("unknown directive '.", name,
                                            "'; expected .infinite, .finite, "
                                            ".fd or .mono")));
  }

  Status ParsePredicateDecl(bool infinite) {
    if (!Check(TokenKind::kAtom)) return Error("expected predicate name");
    const Token& name_tok = Peek();
    SourceSpan span = SpanOf(name_tok);
    std::string pred_name = Advance().text;
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kSlash, "'/'"));
    if (!Check(TokenKind::kInt)) return Error("expected arity");
    int64_t arity = Advance().int_value;
    if (arity < 0 || arity > AttrSet::kMaxAttrs) {
      return Error(StrCat("arity out of range: ", arity));
    }
    PredicateId pred = program_->InternPredicate(
        pred_name, static_cast<uint32_t>(arity));
    program_->SetPredicateSpan(pred, span);
    if (infinite) {
      HORNSAFE_RETURN_IF_ERROR(AtSpan(span, program_->DeclareInfinite(pred)));
    }
    return Expect(TokenKind::kPeriod, "'.' after declaration");
  }

  /// `.fd pred: 1 2 -> 3.` — attribute positions are 1-based in the
  /// surface syntax, matching the paper's convention.
  Status ParseFdDecl(SourceSpan span) {
    HORNSAFE_ASSIGN_OR_RETURN(PredicateId pred, ParseConstraintHead());
    HORNSAFE_ASSIGN_OR_RETURN(AttrSet lhs, ParseAttrList(pred));
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));
    HORNSAFE_ASSIGN_OR_RETURN(AttrSet rhs, ParseAttrList(pred));
    FiniteDependency fd{pred, lhs, rhs};
    fd.span = span;
    HORNSAFE_RETURN_IF_ERROR(AtSpan(span, program_->AddFiniteDependency(fd)));
    return Expect(TokenKind::kPeriod, "'.' after finiteness dependency");
  }

  /// `.mono pred: i > j.` | `.mono pred: i > const(c).` |
  /// `.mono pred: i < const(c).`
  Status ParseMonoDecl(SourceSpan span) {
    HORNSAFE_ASSIGN_OR_RETURN(PredicateId pred, ParseConstraintHead());
    HORNSAFE_ASSIGN_OR_RETURN(uint32_t lhs, ParseAttrIndex(pred));
    bool greater;
    if (Match(TokenKind::kGreater)) {
      greater = true;
    } else if (Match(TokenKind::kLess)) {
      greater = false;
    } else {
      return Error("expected '>' or '<'");
    }
    MonotonicityConstraint mc;
    mc.pred = pred;
    mc.lhs_attr = lhs;
    mc.span = span;
    if (Check(TokenKind::kAtom) && Peek().text == "const") {
      Advance();
      HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!Check(TokenKind::kInt)) return Error("expected integer bound");
      mc.bound = Advance().int_value;
      HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      mc.kind = greater ? MonoKind::kAttrGreaterConst : MonoKind::kAttrLessConst;
    } else {
      HORNSAFE_ASSIGN_OR_RETURN(uint32_t rhs, ParseAttrIndex(pred));
      if (!greater) {
        // i < j is recorded as j > i.
        std::swap(lhs, rhs);
        mc.lhs_attr = lhs;
      }
      mc.kind = MonoKind::kAttrGreaterAttr;
      mc.rhs_attr = rhs;
    }
    HORNSAFE_RETURN_IF_ERROR(AtSpan(span, program_->AddMonotonicity(mc)));
    return Expect(TokenKind::kPeriod, "'.' after monotonicity constraint");
  }

  /// Parses `pred :` and returns the predicate, which must already be
  /// known (constraints cannot invent predicates — arity would be unknown).
  Result<PredicateId> ParseConstraintHead() {
    if (!Check(TokenKind::kAtom)) return Error("expected predicate name");
    const Token& tok = Advance();
    // The predicate must be unambiguous: look for any arity.
    PredicateId found = kInvalidPredicate;
    for (PredicateId p = 0; p < program_->num_predicates(); ++p) {
      if (program_->PredicateName(p) == tok.text) {
        if (found != kInvalidPredicate) {
          return Status::ParseError(
              StrCat("line ", tok.line, ":", tok.column, ": predicate '",
                     tok.text, "' is ambiguous (multiple arities); declare "
                     "constraints after the predicate's first use"));
        }
        found = p;
      }
    }
    if (found == kInvalidPredicate) {
      return Status::ParseError(
          StrCat("line ", tok.line, ":", tok.column, ": constraint over "
                 "unknown predicate '", tok.text,
                 "'; declare it first (e.g. '.infinite ", tok.text,
                 "/2.')"));
    }
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
    return found;
  }

  Result<uint32_t> ParseAttrIndex(PredicateId pred) {
    if (!Check(TokenKind::kInt)) return Error("expected attribute position");
    const Token& tok = Advance();
    int64_t v = tok.int_value;
    uint32_t arity = program_->predicate(pred).arity;
    if (v < 1 || v > arity) {
      return Status::ParseError(
          StrCat("line ", tok.line, ":", tok.column, ": attribute position ",
                 v, " out of range for '", program_->PredicateName(pred),
                 "/", arity, "'"));
    }
    return static_cast<uint32_t>(v - 1);
  }

  Result<AttrSet> ParseAttrList(PredicateId pred) {
    AttrSet set;
    // An empty left-hand side is legal ("{} -> Y": Y is finite outright),
    // signalled by the keyword 'none'.
    if (Check(TokenKind::kAtom) && Peek().text == "none") {
      Advance();
      return set;
    }
    if (!Check(TokenKind::kInt)) return Error("expected attribute position");
    while (Check(TokenKind::kInt)) {
      HORNSAFE_ASSIGN_OR_RETURN(uint32_t a, ParseAttrIndex(pred));
      set.Add(a);
    }
    return set;
  }

  // --- Clauses and queries ----------------------------------------------

  Status ParseClause() {
    SourceSpan span = SpanOf(Peek());
    HORNSAFE_ASSIGN_OR_RETURN(Literal head, ParseLiteral());
    std::vector<Literal> body;
    if (Match(TokenKind::kImplies)) {
      HORNSAFE_ASSIGN_OR_RETURN(body, ParseLiteralList());
    }
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.' after clause"));
    if (body.empty() && IsGroundLiteral(head) &&
        !program_->IsDerived(head.pred)) {
      return AtSpan(span, program_->AddFact(std::move(head)));
    }
    Rule rule{std::move(head), std::move(body)};
    rule.span = span;
    return AtSpan(span, program_->AddRule(std::move(rule)));
  }

  Status ParseQuery(SourceSpan span) {
    HORNSAFE_ASSIGN_OR_RETURN(std::vector<Literal> lits, ParseLiteralList());
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.' after query"));
    if (lits.size() == 1) {
      return AtSpan(span, program_->AddQuery(std::move(lits[0])));
    }
    // Conjunctive query: introduce a fresh derived predicate over the
    // conjunction's distinct variables (Example 6 construction).
    std::vector<TermId> vars;
    for (const Literal& l : lits) {
      for (TermId v : LiteralVariables(program_->terms(), l)) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
          vars.push_back(v);
        }
      }
    }
    SymbolId qname = program_->symbols().InternFresh("query");
    PredicateId qpred = program_->InternPredicate(
        qname, static_cast<uint32_t>(vars.size()));
    program_->SetPredicateSpan(qpred, span);
    Literal qhead{qpred, vars};
    qhead.span = span;
    Rule qrule{qhead, std::move(lits)};
    qrule.span = span;
    HORNSAFE_RETURN_IF_ERROR(AtSpan(span, program_->AddRule(std::move(qrule))));
    return AtSpan(span, program_->AddQuery(std::move(qhead)));
  }

  Result<std::vector<Literal>> ParseLiteralList() {
    std::vector<Literal> out;
    do {
      HORNSAFE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      out.push_back(std::move(lit));
    } while (Match(TokenKind::kComma));
    return out;
  }

  Result<Literal> ParseLiteral() {
    if (!Check(TokenKind::kAtom)) return Error("expected predicate name");
    SourceSpan span = SpanOf(Peek());
    std::string name = Advance().text;
    std::vector<TermId> args;
    if (Match(TokenKind::kLParen)) {
      do {
        HORNSAFE_ASSIGN_OR_RETURN(TermId t, ParseTerm());
        args.push_back(t);
      } while (Match(TokenKind::kComma));
      HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    Literal lit = program_->MakeLiteral(name, std::move(args));
    lit.span = span;
    program_->SetPredicateSpan(lit.pred, span);
    return lit;
  }

  Result<TermId> ParseTerm() {
    if (Check(TokenKind::kVariable)) {
      std::string name = Advance().text;
      if (name == "_") {
        // Each anonymous variable is distinct.
        name = StrCat("_G", fresh_var_counter_++);
      }
      return program_->Var(name);
    }
    if (Check(TokenKind::kInt)) {
      return program_->Int(Advance().int_value);
    }
    if (Check(TokenKind::kLBracket)) return ParseList();
    if (Check(TokenKind::kAtom)) {
      std::string name = Advance().text;
      if (!Match(TokenKind::kLParen)) return program_->Atom(name);
      std::vector<TermId> args;
      do {
        HORNSAFE_ASSIGN_OR_RETURN(TermId t, ParseTerm());
        args.push_back(t);
      } while (Match(TokenKind::kComma));
      HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return program_->Func(name, std::move(args));
    }
    return Error("expected term");
  }

  Result<TermId> ParseList() {
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
    if (Match(TokenKind::kRBracket)) {
      return program_->Atom(TermPool::kNilName);
    }
    std::vector<TermId> elements;
    do {
      HORNSAFE_ASSIGN_OR_RETURN(TermId t, ParseTerm());
      elements.push_back(t);
    } while (Match(TokenKind::kComma));
    TermId tail;
    if (Match(TokenKind::kBar)) {
      HORNSAFE_ASSIGN_OR_RETURN(tail, ParseTerm());
    } else {
      tail = program_->Atom(TermPool::kNilName);
    }
    HORNSAFE_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
      tail = program_->Func(TermPool::kConsName, {*it, tail});
    }
    return tail;
  }

  bool IsGroundLiteral(const Literal& lit) const {
    for (TermId a : lit.args) {
      if (!program_->terms().IsGround(a)) return false;
    }
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program* program_;
  int fresh_var_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  HORNSAFE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Program program;
  ParserImpl parser(std::move(tokens), &program);
  HORNSAFE_RETURN_IF_ERROR(parser.ParseAll());
  return program;
}

Result<Literal> ParseLiteralInto(std::string_view text, Program* program) {
  HORNSAFE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  ParserImpl parser(std::move(tokens), program);
  return parser.ParseSingleLiteral();
}

}  // namespace hornsafe
