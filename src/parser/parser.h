#ifndef HORNSAFE_PARSER_PARSER_H_
#define HORNSAFE_PARSER_PARSER_H_

#include <string_view>

#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// Parses a complete hornsafe program.
///
/// Surface syntax (see README for the full grammar):
///
/// ```
/// % comment to end of line
/// .infinite successor/2.              % declare an infinite EDB predicate
/// .fd successor: 1 -> 2.              % finiteness dependency (1-based)
/// .fd f: 2 3 -> 1.
/// .mono f: 2 > 1.                     % attr 2 > attr 1 in every tuple
/// .mono f: 1 > const(0).              % attr 1 bounded below by 0
/// parent(sem, abel).                  % ground fact (finite EDB)
/// ancestor(X,Y,1) :- parent(X,Y).     % rule (head predicate becomes IDB)
/// concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
/// ?- ancestor(sem, Y, J).             % query
/// ```
///
/// A bodiless clause whose head is ground is stored as an EDB fact;
/// a bodiless clause containing variables becomes a rule with an empty
/// body. Conjunctive queries `?- a(X), b(X).` are desugared into a fresh
/// derived predicate over the conjunction's distinct variables, following
/// the construction in Example 6 of the paper.
Result<Program> ParseProgram(std::string_view text);

/// Parses a single literal (e.g. "ancestor(sem, Y, 2)") in the context of
/// `*program`, interning any new symbols/predicates. Intended for tests
/// and interactive tools.
Result<Literal> ParseLiteralInto(std::string_view text, Program* program);

}  // namespace hornsafe

#endif  // HORNSAFE_PARSER_PARSER_H_
