#include "parser/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace hornsafe {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kAtom: return "atom";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDirective: return "directive";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kBar: return "'|'";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kQuery: return "'?-'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEof: return "end of input";
  }
  return "unknown token";
}

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      // Tokens carry the position of their FIRST character (diagnostics
      // point at the start of the offending token, as editors expect).
      tok_line_ = line_;
      tok_column_ = column_;
      if (AtEnd()) {
        out.push_back(Make(TokenKind::kEof));
        return out;
      }
      HORNSAFE_ASSIGN_OR_RETURN(Token tok, Next());
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token Make(TokenKind kind, std::string text = "") const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line_;
    t.column = tok_column_;
    return t;
  }

  Status Error(std::string_view message) const {
    return Status::ParseError(
        StrCat("line ", line_, ":", column_, ": ", message));
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  Result<Token> Next() {
    char c = Peek();
    // Punctuation and operators.
    switch (c) {
      case '(': Advance(); return Make(TokenKind::kLParen);
      case ')': Advance(); return Make(TokenKind::kRParen);
      case '[': Advance(); return Make(TokenKind::kLBracket);
      case ']': Advance(); return Make(TokenKind::kRBracket);
      case ',': Advance(); return Make(TokenKind::kComma);
      case '|': Advance(); return Make(TokenKind::kBar);
      case '>': Advance(); return Make(TokenKind::kGreater);
      case '<': Advance(); return Make(TokenKind::kLess);
      case '/': Advance(); return Make(TokenKind::kSlash);
      default: break;
    }
    if (c == ':') {
      Advance();
      if (Peek() == '-') {
        Advance();
        return Make(TokenKind::kImplies);
      }
      return Make(TokenKind::kColon);
    }
    if (c == '?') {
      Advance();
      if (Peek() == '-') {
        Advance();
        return Make(TokenKind::kQuery);
      }
      return Error("expected '?-'");
    }
    if (c == '.') {
      // ".name" introduces a directive; a bare '.' terminates a clause.
      if (IsIdentStart(Peek(1))) {
        Advance();  // consume '.'
        std::string name;
        while (!AtEnd() && IsIdentChar(Peek())) name += Advance();
        return Make(TokenKind::kDirective, std::move(name));
      }
      Advance();
      return Make(TokenKind::kPeriod);
    }
    if (c == '-') {
      if (Peek(1) == '>') {
        Advance();
        Advance();
        return Make(TokenKind::kArrow);
      }
      if (std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        return LexInt();
      }
      return Error("stray '-'");
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexInt();
    if (c == '\'') return LexQuotedAtom();
    if (IsIdentStart(c)) {
      std::string name;
      while (!AtEnd() && IsIdentChar(Peek())) name += Advance();
      bool is_var = std::isupper(static_cast<unsigned char>(name[0])) ||
                    name[0] == '_';
      return Make(is_var ? TokenKind::kVariable : TokenKind::kAtom,
                  std::move(name));
    }
    return Error(StrCat("unexpected character '", std::string(1, c), "'"));
  }

  Result<Token> LexInt() {
    std::string digits;
    if (Peek() == '-') digits += Advance();
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
    Token t = Make(TokenKind::kInt, digits);
    errno = 0;
    t.int_value = std::strtoll(digits.c_str(), nullptr, 10);
    if (errno != 0) return Error(StrCat("integer out of range: ", digits));
    return t;
  }

  Result<Token> LexQuotedAtom() {
    Advance();  // opening quote
    std::string contents;
    while (true) {
      if (AtEnd()) return Error("unterminated quoted atom");
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {  // '' escapes a quote
          contents += Advance();
          continue;
        }
        return Make(TokenKind::kAtom, std::move(contents));
      }
      contents += c;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  /// Position of the first character of the token being lexed.
  int tok_line_ = 1;
  int tok_column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  return LexerImpl(text).Run();
}

}  // namespace hornsafe
