#ifndef HORNSAFE_PARSER_LEXER_H_
#define HORNSAFE_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hornsafe {

/// Token categories of the hornsafe surface syntax.
enum class TokenKind : uint8_t {
  kAtom,       // lowercase identifier or 'quoted atom'
  kVariable,   // Uppercase identifier or _
  kInt,        // decimal integer, optionally negative
  kDirective,  // ".name" at clause start, e.g. ".fd"
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kBar,        // |
  kPeriod,     // clause-terminating .
  kImplies,    // :-
  kQuery,      // ?-
  kArrow,      // ->
  kColon,      // :
  kGreater,    // >
  kLess,       // <
  kSlash,      // /
  kEof,
};

/// Printable name of a token kind, for error messages.
const char* TokenKindName(TokenKind kind);

/// One lexed token with its source position (1-based line/column of the
/// token's first character).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier spelling or quoted-atom contents
  int64_t int_value = 0; // for kInt
  int line = 0;
  int column = 0;
};

/// Splits `text` into tokens. `%` starts a comment running to end of line.
/// Returns a ParseError status (with line/column) on malformed input such
/// as an unterminated quoted atom or a stray character.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace hornsafe

#endif  // HORNSAFE_PARSER_LEXER_H_
