#include "constraints/argmap.h"

#include "util/strings.h"

namespace hornsafe {

VariableOrder::VariableOrder(const Program& program, const Rule& rule) {
  vars_ = RuleVariables(program.terms(), rule);
  for (size_t i = 0; i < vars_.size(); ++i) {
    index_.emplace(vars_[i], static_cast<int>(i));
  }
  size_t n = vars_.size();
  greater_.assign(n, std::vector<bool>(n, false));
  lower_bounded_.assign(n, false);
  upper_bounded_.assign(n, false);

  for (const Literal& b : rule.body) {
    if (program.IsDerived(b.pred)) continue;
    for (const MonotonicityConstraint& mc : program.MonosFor(b.pred)) {
      switch (mc.kind) {
        case MonoKind::kAttrGreaterAttr: {
          int gi = IndexOf(b.args[mc.lhs_attr]);
          int li = IndexOf(b.args[mc.rhs_attr]);
          if (gi >= 0 && li >= 0 && gi != li) greater_[gi][li] = true;
          break;
        }
        case MonoKind::kAttrGreaterConst: {
          int i = IndexOf(b.args[mc.lhs_attr]);
          if (i >= 0) lower_bounded_[i] = true;
          break;
        }
        case MonoKind::kAttrLessConst: {
          int i = IndexOf(b.args[mc.lhs_attr]);
          if (i >= 0) upper_bounded_[i] = true;
          break;
        }
      }
    }
  }

  // Transitive closure (Floyd-Warshall; rules have few variables).
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!greater_[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (greater_[k][j]) greater_[i][j] = true;
      }
    }
  }
  // x > y and y bounded below => x bounded below; x < y (y > x) and y
  // bounded above => x bounded above.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (greater_[i][j] && lower_bounded_[j]) lower_bounded_[i] = true;
      if (greater_[j][i] && upper_bounded_[j]) upper_bounded_[i] = true;
    }
  }
}

int VariableOrder::IndexOf(TermId v) const {
  auto it = index_.find(v);
  return it == index_.end() ? -1 : it->second;
}

bool VariableOrder::Greater(TermId x, TermId y) const {
  int i = IndexOf(x);
  int j = IndexOf(y);
  return i >= 0 && j >= 0 && greater_[i][j];
}

bool VariableOrder::BoundedBelow(TermId x) const {
  int i = IndexOf(x);
  return i >= 0 && lower_bounded_[i];
}

bool VariableOrder::BoundedAbove(TermId x) const {
  int i = IndexOf(x);
  return i >= 0 && upper_bounded_[i];
}

ArgumentMapping::ArgumentMapping(uint32_t head_arity, uint32_t occ_arity)
    : head_arity_(head_arity),
      occ_arity_(occ_arity),
      rel_(head_arity * occ_arity, kRelNone) {}

ArgumentMapping ArgumentMapping::Build(const Program& program,
                                       const Rule& rule,
                                       const VariableOrder& order,
                                       const Literal& occ) {
  (void)program;
  ArgumentMapping m(static_cast<uint32_t>(rule.head.args.size()),
                    static_cast<uint32_t>(occ.args.size()));
  for (uint32_t i = 0; i < m.head_arity_; ++i) {
    for (uint32_t j = 0; j < m.occ_arity_; ++j) {
      TermId a = rule.head.args[i];
      TermId b = occ.args[j];
      uint8_t bits = kRelNone;
      if (a == b) bits |= kRelEq;
      if (order.Greater(a, b)) bits |= kRelGt;
      if (order.Greater(b, a)) bits |= kRelLt;
      m.set_rel(i, j, bits);
    }
  }
  return m;
}

ArgumentMapping ArgumentMapping::Compose(const ArgumentMapping& next) const {
  ArgumentMapping out(head_arity_, next.occ_arity_);
  for (uint32_t i = 0; i < head_arity_; ++i) {
    for (uint32_t k = 0; k < next.occ_arity_; ++k) {
      uint8_t bits = kRelNone;
      for (uint32_t j = 0; j < occ_arity_; ++j) {
        uint8_t a = rel(i, j);
        uint8_t b = next.rel(j, k);
        if ((a & kRelEq) && (b & kRelEq)) bits |= kRelEq;
        // head_i > mid_j >= end_k or head_i >= mid_j > end_k.
        if (((a & kRelGt) && (b & (kRelEq | kRelGt))) ||
            ((a & kRelEq) && (b & kRelGt))) {
          bits |= kRelGt;
        }
        if (((a & kRelLt) && (b & (kRelEq | kRelLt))) ||
            ((a & kRelEq) && (b & kRelLt))) {
          bits |= kRelLt;
        }
      }
      out.set_rel(i, k, bits);
    }
  }
  return out;
}

bool ArgumentMapping::Invalid() const {
  for (uint8_t bits : rel_) {
    bool gt = bits & kRelGt;
    bool lt = bits & kRelLt;
    bool eq = bits & kRelEq;
    if ((gt && lt) || (gt && eq) || (lt && eq)) return true;
  }
  return false;
}

std::string ArgumentMapping::ToString() const {
  std::string out;
  for (uint32_t i = 0; i < head_arity_; ++i) {
    for (uint32_t j = 0; j < occ_arity_; ++j) {
      uint8_t bits = rel(i, j);
      if (bits == kRelNone) continue;
      if (!out.empty()) out += " ";
      if (bits & kRelEq) out += StrCat(i + 1, "=", j + 1, "'");
      if (bits & kRelGt) out += StrCat(i + 1, ">", j + 1, "'");
      if (bits & kRelLt) out += StrCat(i + 1, "<", j + 1, "'");
    }
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace hornsafe
