#ifndef HORNSAFE_CONSTRAINTS_MONO_H_
#define HORNSAFE_CONSTRAINTS_MONO_H_

#include <vector>

#include "andor/adorn.h"
#include "andor/subset.h"
#include "andor/system.h"
#include "constraints/argmap.h"
#include "lang/program.h"

namespace hornsafe {

/// Theorem 5 of the paper: a candidate counterexample AND-graph still
/// satisfies the (strengthened) subset condition if it contains a cycle
/// that can only be traversed a finite number of times — an *increasing*
/// cycle bounded above or a *decreasing* cycle bounded below under the
/// program's monotonicity constraints, or a cycle whose summarised
/// argument mapping is invalid (it can produce no bindings at all).
///
/// `MonotonicityAnalyzer` reconstructs, from a chosen AND-graph, the
/// rule cycles it realises (sequences of adorned rules linked through
/// derived body occurrences, paper Section 4), composes their argument
/// mappings into a pivot self-mapping, and certifies finiteness:
///
///   * `head_i < occ_i` with position i bounded below  — each bottom-up
///     application derives a strictly smaller value, so only finitely
///     many new values exist (Example 13);
///   * `head_i > occ_i` with position i bounded above — symmetric;
///   * invalid summary — the cycle is contradictory and derives nothing.
///
/// The per-graph decision: certified cycles are *finite sources*, and a
/// graph satisfies the strengthened condition iff the root's binding set
/// is finite once certified-cycle nodes are seeded finite and finiteness
/// is propagated through the chosen rules (a body is an intersection of
/// sources, so one finite member suffices). Certification is
/// rotation-independent: a strictly monotone cycle is finitely
/// traversable if *any* of its positions-on-track is bounded (constant
/// bound, or safe because bound by the adornment — "a cycle is bounded
/// above and below if it contains a safe node").
///
/// Use `MakeEscape()` as `SubsetOptions::escape` to run the Theorem 5
/// test inside `CheckSubsetCondition`.
class MonotonicityAnalyzer {
 public:
  MonotonicityAnalyzer(const Program& canonical,
                       const AdornedProgram& adorned,
                       const AndOrSystem& system);

  /// True iff `g` satisfies the Theorem 5 condition: the root is finite
  /// given the certified (finitely-traversable) rule cycles it realises.
  bool GraphSatisfiesTheorem5(const AndGraph& g) const;

  /// Adapter for SubsetOptions::escape.
  GraphEscape MakeEscape() const;

  /// Maximum rule-cycle length explored (longer cycles are rare and
  /// expensive to certify).
  static constexpr int kMaxCycleLength = 8;

 private:
  struct MetaEdge {
    /// Adorned rule the call occurs in.
    uint32_t from_rule;
    /// Adorned rule chosen for the callee's head-argument node.
    uint32_t to_rule;
    /// The occurrence literal in `from_rule`'s canonical rule.
    const Literal* occ;
    /// The BodyArgAdorned node realising the call.
    NodeId call_node = kInvalidNode;
    /// The callee HeadArg node.
    NodeId callee_node = kInvalidNode;
  };

  /// Rebuilds the call edges realised by `g` whose endpoints share a
  /// strongly connected component of the chosen subgraph (i.e. that lie
  /// on a cycle).
  std::vector<MetaEdge> CyclicCallEdges(const AndGraph& g) const;

  /// True iff some rotation of the cycle certifies finiteness.
  bool CycleCertified(const std::vector<const MetaEdge*>& cycle) const;

  /// Certification with `cycle.front()` as the pivot.
  bool CycleCertifiedAtPivot(const std::vector<const MetaEdge*>& cycle) const;

  const Program& program_;
  const AdornedProgram& adorned_;
  const AndOrSystem& system_;
  /// Per canonical rule: its monotonicity-induced variable order.
  std::vector<VariableOrder> orders_;
  /// occurrence id -> (adorned rule index, body index).
  std::vector<std::pair<uint32_t, uint32_t>> occurrence_index_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_CONSTRAINTS_MONO_H_
