#ifndef HORNSAFE_CONSTRAINTS_CONSISTENCY_H_
#define HORNSAFE_CONSTRAINTS_CONSISTENCY_H_

#include <string>
#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// One constraint-consistency finding.
struct ConsistencyWarning {
  PredicateId pred = kInvalidPredicate;
  std::string message;
};

/// Checks the declared integrity constraints of `program` for
/// per-tuple unsatisfiability — the schema-level analogue of the
/// paper's *invalid* argument mappings (Section 4: a mapping with arcs
/// both ways "cannot produce any answers").
///
/// Detected:
///  * a cycle of strict monotonicity arcs among the attributes of one
///    predicate (e.g. `1 > 2` and `2 > 1`): no tuple satisfies them,
///    so the relation is necessarily empty;
///  * contradictory constant bounds on one attribute
///    (`i > const(c₁)` and `i < const(c₂)` with c₂ ≤ c₁ + 1 over the
///    integers): same conclusion;
///  * a duplicate finiteness dependency (harmless, flagged as a
///    likely authoring mistake).
///
/// An empty result means no inconsistency was *detected*, not a
/// satisfiability proof.
std::vector<ConsistencyWarning> CheckConstraintConsistency(
    const Program& program);

}  // namespace hornsafe

#endif  // HORNSAFE_CONSTRAINTS_CONSISTENCY_H_
