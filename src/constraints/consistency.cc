#include "constraints/consistency.h"

#include <limits>
#include <map>

#include "util/strings.h"

namespace hornsafe {

std::vector<ConsistencyWarning> CheckConstraintConsistency(
    const Program& program) {
  std::vector<ConsistencyWarning> warnings;

  for (PredicateId pred = 0; pred < program.num_predicates(); ++pred) {
    if (program.IsDerived(pred)) continue;
    uint32_t arity = program.predicate(pred).arity;
    if (arity == 0) continue;

    std::vector<MonotonicityConstraint> monos = program.MonosFor(pred);
    std::vector<FiniteDependency> fds = program.FdsFor(pred);
    if (monos.empty() && fds.empty()) continue;

    // --- Strict-arc cycles ------------------------------------------------
    std::vector<std::vector<bool>> greater(arity,
                                           std::vector<bool>(arity, false));
    for (const MonotonicityConstraint& mc : monos) {
      if (mc.kind == MonoKind::kAttrGreaterAttr) {
        greater[mc.lhs_attr][mc.rhs_attr] = true;
      }
    }
    for (uint32_t k = 0; k < arity; ++k) {
      for (uint32_t i = 0; i < arity; ++i) {
        if (!greater[i][k]) continue;
        for (uint32_t j = 0; j < arity; ++j) {
          if (greater[k][j]) greater[i][j] = true;
        }
      }
    }
    for (uint32_t i = 0; i < arity; ++i) {
      if (greater[i][i]) {
        warnings.push_back(ConsistencyWarning{
            pred,
            StrCat("monotonicity constraints over '",
                   program.PredicateName(pred), "' form a strict cycle "
                   "through attribute ",
                   i + 1,
                   ": no tuple can satisfy them, the relation is "
                   "necessarily empty")});
        break;  // one report per predicate is enough
      }
    }

    // --- Contradictory constant bounds -------------------------------------
    std::vector<int64_t> lower(arity, std::numeric_limits<int64_t>::min());
    std::vector<int64_t> upper(arity, std::numeric_limits<int64_t>::max());
    for (const MonotonicityConstraint& mc : monos) {
      if (mc.kind == MonoKind::kAttrGreaterConst) {
        lower[mc.lhs_attr] = std::max(lower[mc.lhs_attr], mc.bound);
      } else if (mc.kind == MonoKind::kAttrLessConst) {
        upper[mc.lhs_attr] = std::min(upper[mc.lhs_attr], mc.bound);
      }
    }
    for (uint32_t i = 0; i < arity; ++i) {
      if (lower[i] == std::numeric_limits<int64_t>::min() ||
          upper[i] == std::numeric_limits<int64_t>::max()) {
        continue;
      }
      // Over the integers, c₁ < x < c₂ needs c₂ ≥ c₁ + 2.
      if (upper[i] <= lower[i] + 1) {
        warnings.push_back(ConsistencyWarning{
            pred, StrCat("attribute ", i + 1, " of '",
                         program.PredicateName(pred), "' is bounded to the "
                         "empty interval (",
                         lower[i], ", ", upper[i],
                         "): the relation is necessarily empty")});
      }
    }

    // --- Duplicate finiteness dependencies ---------------------------------
    std::map<std::pair<uint64_t, uint64_t>, int> seen;
    for (const FiniteDependency& fd : fds) {
      if (++seen[{fd.lhs.bits(), fd.rhs.bits()}] == 2) {
        warnings.push_back(ConsistencyWarning{
            pred, StrCat("finiteness dependency ", fd.lhs.ToString(),
                         " -> ", fd.rhs.ToString(), " on '",
                         program.PredicateName(pred),
                         "' is declared more than once")});
      }
    }
  }
  return warnings;
}

}  // namespace hornsafe
