#ifndef HORNSAFE_CONSTRAINTS_ARGMAP_H_
#define HORNSAFE_CONSTRAINTS_ARGMAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// The partial order on one rule's variables induced by the monotonicity
/// constraints of its body literals (paper, Section 4).
///
/// For every body occurrence of a base predicate with constraint
/// `pᵢ > pⱼ`, the variable in position i is strictly greater than the
/// variable in position j in every satisfying assignment; `pᵢ > c` /
/// `pᵢ < c` bound the variable by the constant c. `VariableOrder`
/// closes these facts transitively.
class VariableOrder {
 public:
  /// Builds the order for `rule`, which must be canonical (all-variable
  /// arguments). Constraints are looked up in `program`.
  VariableOrder(const Program& program, const Rule& rule);

  /// True iff x > y is derivable (strictly) for every satisfying tuple.
  bool Greater(TermId x, TermId y) const;

  /// True iff x is bounded below by some constant (x > c, possibly
  /// through a chain x > y > ... > c).
  bool BoundedBelow(TermId x) const;

  /// True iff x is bounded above by some constant.
  bool BoundedAbove(TermId x) const;

 private:
  int IndexOf(TermId v) const;

  std::vector<TermId> vars_;
  std::unordered_map<TermId, int> index_;
  /// greater_[i][j]: var i > var j (transitive closure).
  std::vector<std::vector<bool>> greater_;
  std::vector<bool> lower_bounded_;
  std::vector<bool> upper_bounded_;
};

/// Relation bits between one head position and one occurrence position
/// of an argument mapping.
enum ArgRel : uint8_t {
  kRelNone = 0,
  /// Same value (the paper's undirected edge: shared variable).
  kRelEq = 1,
  /// head value > occurrence value (arc head -> occ).
  kRelGt = 2,
  /// head value < occurrence value (arc occ -> head).
  kRelLt = 4,
};

/// An argument mapping (p, q) between the head literal of a rule and a
/// body literal occurrence (paper, Section 4): a mixed graph over the
/// argument positions of p and q with undirected edges for shared
/// variables and arcs for inferred strict inequalities. Mappings compose
/// along rule sequences; the summary of a cyclic composition classifies
/// the cycle as increasing/decreasing (Theorem 5).
class ArgumentMapping {
 public:
  ArgumentMapping(uint32_t head_arity, uint32_t occ_arity);

  /// Builds the mapping from `rule`'s head to body literal `occ`
  /// (which must be a literal of `rule`), using `order` for inferred
  /// inequalities.
  static ArgumentMapping Build(const Program& program, const Rule& rule,
                               const VariableOrder& order,
                               const Literal& occ);

  /// Composes `this` (p -> q) with `next` (q -> r) into (p -> r): the
  /// paper's summarised composite mapping. Requires
  /// `occ_arity() == next.head_arity()`.
  ArgumentMapping Compose(const ArgumentMapping& next) const;

  uint32_t head_arity() const { return head_arity_; }
  uint32_t occ_arity() const { return occ_arity_; }

  uint8_t rel(uint32_t i, uint32_t j) const {
    return rel_[i * occ_arity_ + j];
  }
  void set_rel(uint32_t i, uint32_t j, uint8_t bits) {
    rel_[i * occ_arity_ + j] = bits;
  }

  /// True iff some pair carries contradictory relations (x > y together
  /// with x < y or x = y). An invalid mapping (or composition) can
  /// produce no answers — the paper discards such rules/cycles.
  bool Invalid() const;

  /// "1=1' 1>2' ..." rendering (primes mark occurrence positions).
  std::string ToString() const;

 private:
  uint32_t head_arity_;
  uint32_t occ_arity_;
  std::vector<uint8_t> rel_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_CONSTRAINTS_ARGMAP_H_
