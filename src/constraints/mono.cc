#include "constraints/mono.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace hornsafe {

namespace {

/// Iterative Tarjan SCC over the chosen subgraph of an AND-graph.
/// Returns node -> component id.
std::unordered_map<NodeId, int> ChosenScc(const AndOrSystem& system,
                                          const AndGraph& g) {
  std::unordered_map<NodeId, int> comp;
  std::unordered_map<NodeId, int> index;
  std::unordered_map<NodeId, int> low;
  std::vector<NodeId> stack;
  std::unordered_set<NodeId> on_stack;
  int next_index = 0;
  int next_comp = 0;

  std::function<void(NodeId)> connect = [&](NodeId v) {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = g.chosen.find(v);
    if (it != g.chosen.end()) {
      for (NodeId w : system.rule(it->second).body) {
        if (g.chosen.find(w) == g.chosen.end()) continue;
        if (index.find(w) == index.end()) {
          connect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack.count(w)) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      while (true) {
        NodeId w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        comp[w] = next_comp;
        if (w == v) break;
      }
      ++next_comp;
    }
  };

  for (const auto& [node, rule] : g.chosen) {
    if (index.find(node) == index.end()) connect(node);
  }
  return comp;
}

}  // namespace

MonotonicityAnalyzer::MonotonicityAnalyzer(const Program& canonical,
                                           const AdornedProgram& adorned,
                                           const AndOrSystem& system)
    : program_(canonical), adorned_(adorned), system_(system) {
  orders_.reserve(canonical.rules().size());
  for (const Rule& r : canonical.rules()) {
    orders_.emplace_back(canonical, r);
  }
  for (uint32_t t = 0; t < adorned_.rules.size(); ++t) {
    const AdornedRule& ar = adorned_.rules[t];
    for (uint32_t bi = 0; bi < ar.body.size(); ++bi) {
      uint32_t occ = ar.body[bi].occurrence_id;
      if (occ >= occurrence_index_.size()) {
        occurrence_index_.resize(occ + 1, {0, 0});
      }
      occurrence_index_[occ] = {t, bi};
    }
  }
}

GraphEscape MonotonicityAnalyzer::MakeEscape() const {
  return [this](const AndGraph& g) { return GraphSatisfiesTheorem5(g); };
}

std::vector<MonotonicityAnalyzer::MetaEdge>
MonotonicityAnalyzer::CyclicCallEdges(const AndGraph& g) const {
  std::unordered_map<NodeId, int> comp = ChosenScc(system_, g);
  std::vector<MetaEdge> edges;
  for (const auto& [node, rule_idx] : g.chosen) {
    const PropNode& pn = system_.node(node);
    if (pn.kind != PropNodeKind::kBodyArgAdorned) continue;
    const PropRule& pr = system_.rule(rule_idx);
    // Only the "call" rule q^a_k <- l^a_k links two rule instances.
    if (pr.body.size() != 1) continue;
    NodeId callee = pr.body[0];
    if (system_.node(callee).kind != PropNodeKind::kHeadArg) continue;
    auto chosen_callee = g.chosen.find(callee);
    if (chosen_callee == g.chosen.end()) continue;
    // The call must lie on a cycle of the chosen subgraph.
    auto cu = comp.find(node);
    auto cv = comp.find(callee);
    if (cu == comp.end() || cv == comp.end() || cu->second != cv->second) {
      continue;
    }
    const auto& [from_rule, body_idx] = occurrence_index_[pn.occurrence];
    uint32_t to_rule =
        system_.rule(chosen_callee->second).source_adorned_rule;
    const Literal* occ_lit = &adorned_.rules[from_rule].body[body_idx].lit;
    edges.push_back(MetaEdge{from_rule, to_rule, occ_lit, node, callee});
  }
  return edges;
}

bool MonotonicityAnalyzer::CycleCertified(
    const std::vector<const MetaEdge*>& cycle) const {
  // Certification may depend on which rule anchors the composition (a
  // bound position of one participating adornment bounds the whole
  // track), so try every rotation.
  std::vector<const MetaEdge*> rotated = cycle;
  for (size_t r = 0; r < cycle.size(); ++r) {
    if (CycleCertifiedAtPivot(rotated)) return true;
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
  }
  return false;
}

bool MonotonicityAnalyzer::CycleCertifiedAtPivot(
    const std::vector<const MetaEdge*>& cycle) const {
  // Compose the argument mappings head(t₁) -> occ(t₁) = head(t₂) -> ...
  // around the cycle into a self-mapping on the pivot predicate.
  ArgumentMapping total(0, 0);
  bool first = true;
  for (const MetaEdge* e : cycle) {
    const AdornedRule& ar = adorned_.rules[e->from_rule];
    const Rule& rule = program_.rules()[ar.source_rule];
    ArgumentMapping m = ArgumentMapping::Build(
        program_, rule, orders_[ar.source_rule], *e->occ);
    total = first ? m : total.Compose(m);
    first = false;
  }
  if (total.Invalid()) return true;  // contradictory: derives nothing

  const MetaEdge* pivot = cycle.front();
  const AdornedRule& par = adorned_.rules[pivot->from_rule];
  const Rule& pivot_rule = program_.rules()[par.source_rule];
  const VariableOrder& order = orders_[par.source_rule];
  for (uint32_t i = 0; i < total.head_arity() && i < total.occ_arity();
       ++i) {
    uint8_t bits = total.rel(i, i);
    TermId head_var = pivot_rule.head.args[i];
    TermId occ_var = pivot->occ->args[i];
    // "A cycle is bounded above and below if it contains a safe node":
    // a strictly monotone cycle through a position bound by the
    // adornment draws its values from a finite set and can only be
    // traversed finitely often.
    if ((bits & (kRelGt | kRelLt)) && par.adornment.IsBound(i)) {
      return true;
    }
    if (bits & kRelLt) {
      // Decreasing cycle: bounded below => finitely traversable.
      if (order.BoundedBelow(head_var) || order.BoundedBelow(occ_var)) {
        return true;
      }
    }
    if (bits & kRelGt) {
      // Increasing cycle: bounded above => finitely traversable.
      if (order.BoundedAbove(head_var) || order.BoundedAbove(occ_var)) {
        return true;
      }
    }
  }
  return false;
}

bool MonotonicityAnalyzer::GraphSatisfiesTheorem5(
    const AndGraph& g) const {
  std::vector<MetaEdge> edges = CyclicCallEdges(g);
  if (edges.empty()) return false;

  // Group outgoing edges per rule.
  std::unordered_map<uint32_t, std::vector<const MetaEdge*>> out;
  for (const MetaEdge& e : edges) out[e.from_rule].push_back(&e);

  // Enumerate simple meta cycles up to kMaxCycleLength by DFS; the prop
  // nodes of every certified cycle become finite seeds.
  std::unordered_set<NodeId> finite;
  std::vector<const MetaEdge*> path;
  std::unordered_set<uint32_t> on_path;

  std::function<void(uint32_t, uint32_t)> dfs = [&](uint32_t start,
                                                    uint32_t at) {
    auto it = out.find(at);
    if (it == out.end()) return;
    for (const MetaEdge* e : it->second) {
      if (e->to_rule == start) {
        // Closing the cycle: certify it.
        path.push_back(e);
        if (CycleCertified(path)) {
          for (const MetaEdge* c : path) {
            finite.insert(c->call_node);
            finite.insert(c->callee_node);
          }
        }
        path.pop_back();
        continue;
      }
      if (on_path.count(e->to_rule)) continue;
      if (path.size() + 1 >= static_cast<size_t>(kMaxCycleLength)) continue;
      path.push_back(e);
      on_path.insert(e->to_rule);
      dfs(start, e->to_rule);
      on_path.erase(e->to_rule);
      path.pop_back();
    }
  };

  std::vector<uint32_t> starts;
  for (const auto& [rule, _] : out) starts.push_back(rule);
  std::sort(starts.begin(), starts.end());
  for (uint32_t st : starts) {
    path.clear();
    on_path.clear();
    on_path.insert(st);
    dfs(st, st);
  }
  if (finite.empty()) return false;

  // Propagate finiteness to the root: a chosen rule's body is an
  // intersection of binding sources, so one finite member makes the
  // head finite.
  bool changed = true;
  while (changed && !finite.count(g.root)) {
    changed = false;
    for (const auto& [node, rule_idx] : g.chosen) {
      if (finite.count(node)) continue;
      const PropRule& pr = system_.rule(rule_idx);
      for (NodeId b : pr.body) {
        if (finite.count(b) ||
            system_.node(b).kind == PropNodeKind::kZero) {
          finite.insert(node);
          changed = true;
          break;
        }
      }
    }
  }
  return finite.count(g.root) > 0;
}

}  // namespace hornsafe
