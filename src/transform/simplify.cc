#include "transform/simplify.h"

#include <vector>

#include "andor/emptiness.h"

namespace hornsafe {

Result<SimplifyStats> SimplifyProgram(Program* program) {
  SimplifyStats stats;

  // --- Emptiness-based removal (iterated to fixpoint) --------------------
  // Removing rules can make further predicates empty (a predicate whose
  // only grounded rule depended on an empty one), so loop.
  while (true) {
    std::vector<bool> empty = EmptyPredicates(*program);
    std::vector<Rule> rules = program->TakeRules();
    size_t removed = 0;
    for (Rule& r : rules) {
      bool dead = empty[r.head.pred];
      for (const Literal& b : r.body) {
        dead |= empty[b.pred];
      }
      if (dead) {
        ++removed;
        continue;
      }
      HORNSAFE_RETURN_IF_ERROR(program->AddRule(std::move(r)));
    }
    stats.rules_removed_empty += removed;
    if (removed == 0) break;
  }

  // --- Query-reachability removal ----------------------------------------
  if (!program->queries().empty()) {
    std::vector<bool> reachable(program->num_predicates(), false);
    std::vector<PredicateId> worklist;
    for (const Literal& q : program->queries()) {
      if (!reachable[q.pred]) {
        reachable[q.pred] = true;
        worklist.push_back(q.pred);
      }
    }
    while (!worklist.empty()) {
      PredicateId p = worklist.back();
      worklist.pop_back();
      for (const Rule* r : program->RulesFor(p)) {
        for (const Literal& b : r->body) {
          if (!reachable[b.pred]) {
            reachable[b.pred] = true;
            worklist.push_back(b.pred);
          }
        }
      }
    }

    std::vector<Rule> rules = program->TakeRules();
    for (Rule& r : rules) {
      if (!reachable[r.head.pred]) {
        ++stats.rules_removed_unreachable;
        continue;
      }
      HORNSAFE_RETURN_IF_ERROR(program->AddRule(std::move(r)));
    }
    std::vector<Literal> facts = program->TakeFacts();
    for (Literal& f : facts) {
      if (!reachable[f.pred]) {
        ++stats.facts_removed;
        continue;
      }
      HORNSAFE_RETURN_IF_ERROR(program->AddFact(std::move(f)));
    }
  }

  HORNSAFE_RETURN_IF_ERROR(program->Validate());
  return stats;
}

}  // namespace hornsafe
