#ifndef HORNSAFE_TRANSFORM_SIMPLIFY_H_
#define HORNSAFE_TRANSFORM_SIMPLIFY_H_

#include <cstddef>

#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// Statistics from one SimplifyProgram run.
struct SimplifyStats {
  /// Rules removed because their head predicate or some body predicate
  /// is provably empty for every EDB instance (Algorithm 3's T₀).
  size_t rules_removed_empty = 0;
  /// Rules removed because their head predicate is unreachable from the
  /// program's queries.
  size_t rules_removed_unreachable = 0;
  /// Facts removed because their predicate is unreachable.
  size_t facts_removed = 0;

  size_t TotalRemoved() const {
    return rules_removed_empty + rules_removed_unreachable + facts_removed;
  }
};

/// Simplifies `*program` without changing any query's answers:
///
///  * rules that can never fire — those whose body mentions a predicate
///    in T₀ (Lemma 7) — are removed, as are the (equally unfirable)
///    rules *of* empty predicates, iterating to fixpoint;
///  * when the program declares queries, rules and facts of predicates
///    unreachable from the query predicates (through rule bodies) are
///    removed. Programs without queries skip this step.
///
/// Integrity constraints and predicate declarations are kept even when
/// their predicate loses all clauses (they carry schema information).
Result<SimplifyStats> SimplifyProgram(Program* program);

}  // namespace hornsafe

#endif  // HORNSAFE_TRANSFORM_SIMPLIFY_H_
