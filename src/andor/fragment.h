#ifndef HORNSAFE_ANDOR_FRAGMENT_H_
#define HORNSAFE_ANDOR_FRAGMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// Reusable And-Or fragments for the differential pipeline front half
/// (DESIGN.md, D12).
///
/// The obstacle to caching built And-Or fragments directly is node-id
/// remapping: `AndOrSystem` node ids are global creation-order indices,
/// `NodeName`/`Describe` render occurrence ids and adorned-rule indices
/// into explanation text, and the bit-identity contract demands that a
/// warm build equal a cold build byte for byte. Storing concrete nodes
/// would bake the *old* build's ids into the cache.
///
/// The fragments here therefore store no node ids at all. A fragment is
/// a *replay template*: the sequence of node acquisitions one fresh
/// `ProcessRule` performed, each described by rule-local coordinates
/// (body-occurrence index, argument position, adornment mask, variable
/// slot), plus the propositional rules it emitted as indices into that
/// acquisition sequence. Splicing a template into a new build resolves
/// every coordinate against the *new* adorned rule — new predicate ids,
/// new occurrence ids, new adorned-rule index, new term ids — and
/// replays the same `Intern*`/`AddRule` calls in the same order. By
/// induction over the acquisition sequence this creates exactly the
/// nodes a fresh `ProcessRule` would create, in the same order, so the
/// resulting system is identical to a cold build — including ids and
/// rendered names — while skipping the per-rule analysis work (variable
/// grounding scans, adornment consistency walks, FD determinant
/// derivations).
///
/// Soundness of reuse rests on the *guard* (ComputeRuleGuard): two
/// canonical rules with equal guards produce the same template. The
/// guard folds the alpha-invariant structural rule hash (head/body
/// predicates, argument grouping patterns — which fix the adornment
/// enumeration and the variable grounding pattern), each body
/// occurrence's predicate kind (which selects step 2 grounding and the
/// step 3 / step 4 dispatch), each infinite-base callee's dependency
/// set and arity (which fix the step 4 determinants), and the
/// use_fd_closure flag (which selects declared vs minimal
/// determinants). Everything else `ProcessRule` reads is resolved at
/// replay time from the new rule.

/// How one node of a template is re-acquired at replay time. Mirrors
/// PropNodeKind, but holds rule-local coordinates instead of ids.
enum class FragmentSpecKind : uint8_t {
  kZero,
  kOne,
  kHeadArg,
  kVariable,
  kBodyArg,
  kBodyArgAdorned,
  kFdChoice,
};

struct FragmentNodeSpec {
  FragmentSpecKind kind = FragmentSpecKind::kZero;
  /// kHeadArg: -1 = the rule's own head, else the body-occurrence index
  /// of the callee. Other occurrence kinds: the body-occurrence index.
  int32_t occ = -1;
  /// Argument position (kHeadArg/kBodyArg/kBodyArgAdorned/kFdChoice).
  uint32_t position = 0;
  /// kHeadArg/kBodyArgAdorned: raw adornment mask. Masks are grouping-
  /// pattern-determined positional bitmasks, identical for guard-equal
  /// rules, so the recorded value replays verbatim.
  uint64_t adornment_mask = 0;
  /// kVariable: index into the rule's distinct-variable list in
  /// first-occurrence order (head first, then body left to right).
  uint32_t var_slot = 0;
  /// kFdChoice: determinant index.
  uint32_t fd_index = 0;
};

/// One emitted propositional rule, as indices into the spec sequence.
struct FragmentPropRule {
  uint32_t head = 0;
  std::vector<uint32_t> body;
};

/// Everything ProcessRule did for one adorned rule: node acquisitions
/// in first-acquisition order, then rule emissions in emission order.
struct AdornedRuleTemplate {
  std::vector<FragmentNodeSpec> specs;
  std::vector<FragmentPropRule> rules;
};

/// The templates of one canonical rule, one per consistent head
/// adornment in enumeration order (all-free first). `adornment_masks`
/// doubles as the persisted adornment set: BuildAdornedProgram splices
/// it back for clean rules without re-deriving the grouping pattern.
struct RuleFragment {
  uint64_t guard = 0;
  std::vector<uint64_t> adornment_masks;
  std::vector<AdornedRuleTemplate> per_adornment;
};

/// Fragments for every canonical rule of one predicate, in that
/// build's rule order. Cached per (cone fingerprint, use_fd_closure):
/// the cone fingerprint covers the predicate's own rules and
/// everything they can reach, so a matching cone implies matching
/// guards for every rule (guard matching still runs, to pair reordered
/// clauses with the right template).
struct ConeFragment {
  std::vector<RuleFragment> rules;
};

/// The splice decisions for one build, parallel to the new canonical
/// program's rule list. A null entry means "build fresh (and record)".
/// `pinned` keeps the cached cones alive for the build's duration.
struct FragmentSplicePlan {
  std::vector<const RuleFragment*> by_rule;
  std::vector<std::shared_ptr<const ConeFragment>> pinned;
};

/// Templates captured by a recording build, parallel to the adorned
/// rule list; null entries were spliced (or recording was abandoned).
struct FragmentRecording {
  std::vector<std::unique_ptr<AdornedRuleTemplate>> by_adorned;
  /// Adorned rules spliced from templates vs processed fresh.
  uint64_t rules_spliced = 0;
  uint64_t rules_rebuilt = 0;
};

/// The reuse guard for rule `rule_index` of `canonical` (see the file
/// comment for what it covers and why that is sufficient).
uint64_t ComputeRuleGuard(const Program& canonical, uint32_t rule_index,
                          bool use_fd_closure);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_FRAGMENT_H_
