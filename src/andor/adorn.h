#ifndef HORNSAFE_ANDOR_ADORN_H_
#define HORNSAFE_ANDOR_ADORN_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {
struct FragmentSplicePlan;
}

namespace hornsafe {

/// An adornment over `arity` argument positions: bit k set in
/// `bound_mask` means position k is bound ('b'), clear means free ('f').
/// The paper writes these as superscript strings like "bf".
struct Adornment {
  uint64_t bound_mask = 0;
  uint32_t arity = 0;

  bool IsBound(uint32_t k) const { return (bound_mask >> k) & 1; }
  bool AllFree() const { return bound_mask == 0; }

  /// "bf" style rendering, 'b' for bound.
  std::string ToString() const;

  bool operator==(const Adornment& o) const {
    return bound_mask == o.bound_mask && arity == o.arity;
  }
};

/// Enumerates the adornments of `lit` that are *consistent*: positions
/// holding the same variable receive the same letter (paper, Section 3).
/// `lit` must have all-variable arguments (canonical form). The result
/// has 2^(#distinct variables) entries, all-free first.
std::vector<Adornment> ConsistentAdornments(const TermPool& pool,
                                            const Literal& lit);

/// Memoizing wrapper around ConsistentAdornments. The result depends
/// only on the literal's *grouping pattern* — which positions hold the
/// same variable — so r(X,Y), s(A,B) and r(U,V) all share one cache
/// entry, and the 2^groups enumeration runs once per pattern instead of
/// once per occurrence. One cache serves literals of any predicate, and
/// may be probed from concurrent pipeline builds (it lives inside the
/// shared PipelineCache): lookups are internally locked, and entries
/// are never evicted or overwritten, so a returned reference stays
/// valid and immutable for the cache's lifetime even across concurrent
/// inserts (std::map nodes are address-stable).
class AdornmentCache {
 public:
  /// Cached ConsistentAdornments(pool, lit). The reference stays valid
  /// until the cache is destroyed (entries are never evicted).
  const std::vector<Adornment>& For(const TermPool& pool, const Literal& lit);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return memo_.size();
  }

 private:
  mutable std::mutex mu_;
  /// Key: first-occurrence group index per argument position.
  std::map<std::vector<uint32_t>, std::vector<Adornment>> memo_;
};

/// One body literal occurrence in an adorned rule. Occurrence ids are
/// unique across the whole adorned program — the paper's renaming of body
/// predicates ("r1", "r2", ...).
struct BodyOccurrence {
  Literal lit;
  /// Unique across the AdornedProgram.
  uint32_t occurrence_id = 0;
  PredicateKind kind = PredicateKind::kFiniteBase;
};

/// An adorned version of one canonical rule: the head literal carries an
/// adornment, and variables are implicitly renamed apart by scoping them
/// to `adorned_index` (the paper renames "X" to "X1", "X2", ...).
struct AdornedRule {
  PredicateId head_pred = kInvalidPredicate;
  Adornment adornment;
  Literal head;
  std::vector<BodyOccurrence> body;
  /// Index of the originating rule in the canonical program.
  uint32_t source_rule = 0;
  /// Index of this adorned rule within the AdornedProgram.
  uint32_t adorned_index = 0;
};

/// The set H* of adorned rules for a canonical program (paper, Section 3):
/// every rule is replicated once per consistent adornment of its head.
struct AdornedProgram {
  std::vector<AdornedRule> rules;

  /// Indices of adorned rules with the given head predicate and adornment.
  std::vector<uint32_t> RulesFor(PredicateId pred,
                                 const Adornment& adornment) const;

  /// Listing in the paper's Example 9 style: one line per adorned rule,
  /// the head predicate superscripted with its adornment and variables
  /// suffixed with the adorned-rule index ("r^ff(X1,Y1) :- ...").
  std::string ToString(const Program& program) const;
};

/// Builds H* from a canonical program. Fails with InvalidProgram if any
/// rule argument is not a variable (run Canonicalize first). When
/// `cache` is non-null its adornment sets are reused (and extended);
/// keys are program-independent grouping patterns, so one cache may
/// serve any number of programs.
///
/// When `splice` is non-null (andor/fragment.h), rules with a planned
/// fragment take their head adornment list from the fragment's
/// persisted masks instead of re-deriving the grouping pattern — the
/// adornment-reuse half of the differential front end. The masks were
/// recorded from a guard-equal rule, so the spliced list equals what
/// enumeration would produce; output is bit-identical either way.
Result<AdornedProgram> BuildAdornedProgram(
    const Program& canonical, AdornmentCache* cache = nullptr,
    const FragmentSplicePlan* splice = nullptr);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_ADORN_H_
