#ifndef HORNSAFE_ANDOR_EMPTINESS_H_
#define HORNSAFE_ANDOR_EMPTINESS_H_

#include <utility>
#include <vector>

#include "andor/system.h"
#include "lang/program.h"

namespace hornsafe {

/// Algorithm 3, first half: the set T₀ of predicates whose relation is
/// empty for *every* EDB instance (Lemma 7). Base predicates (finite or
/// infinite) are never empty — the analysis quantifies over all legal
/// instances — so only derived predicates without a grounded derivation
/// are in T₀. Returns one flag per predicate (true = provably empty).
std::vector<bool> EmptyPredicates(const Program& canonical);

/// Algorithm 3, second half: deletes from `*system` every rule whose
/// head node is associated with a predicate in T₀ — head-argument nodes
/// of empty predicates and argument nodes of body occurrences of empty
/// predicates (DESIGN.md, D2). Without this, the subset condition is
/// only sufficient (Example 11: an ungrounded recursive rule looks
/// unsafe but can never produce a binding). Returns the number of rules
/// deleted.
size_t ApplyEmptinessPruning(const std::vector<bool>& empty,
                             AndOrSystem* system);

/// ApplyEmptinessPruning restricted to the given `[begin, end)` rule
/// ranges. The check is per-rule (head predicate emptiness), so pruning
/// a subset of the rules is exactly the global pruning restricted —
/// used by the segment-graft path to skip spans whose deletions were
/// already replayed from a shared segment.
size_t ApplyEmptinessPruningRanges(
    const std::vector<bool>& empty, AndOrSystem* system,
    const std::vector<std::pair<uint32_t, uint32_t>>& rule_ranges);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_EMPTINESS_H_
