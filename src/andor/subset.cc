#include "andor/subset.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace hornsafe {

const char* SafetyName(Safety s) {
  switch (s) {
    case Safety::kSafe:
      return "safe";
    case Safety::kUnsafe:
      return "unsafe";
    case Safety::kUndecided:
      return "undecided";
  }
  return "?";
}

std::string AndGraph::Describe(const AndOrSystem& system,
                               const Program& program) const {
  std::string out = StrCat("AND-graph rooted at ",
                           system.NodeName(root, program), ":\n");
  // Stable order: by node id.
  std::vector<std::pair<NodeId, uint32_t>> entries(chosen.begin(),
                                                   chosen.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [node, rule_idx] : entries) {
    const PropRule& r = system.rule(rule_idx);
    out += StrCat("  ", system.NodeName(node, program), " <- ",
                  JoinMapped(r.body, ", ",
                             [&](NodeId b) {
                               return system.NodeName(b, program);
                             }),
                  "\n");
  }
  return out;
}

std::string AndGraph::ToDot(const AndOrSystem& system,
                            const Program& program) const {
  std::string out = "digraph and_graph {\n  rankdir=TB;\n";
  auto quoted = [&](NodeId n) {
    std::string name = system.NodeName(n, program);
    std::string escaped;
    for (char c : name) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return StrCat("\"", escaped, "\"");
  };
  // Stable order: by node id.
  std::vector<std::pair<NodeId, uint32_t>> entries(chosen.begin(),
                                                   chosen.end());
  std::sort(entries.begin(), entries.end());
  std::unordered_set<NodeId> declared;
  auto declare = [&](NodeId n) {
    if (!declared.insert(n).second) return;
    const PropNode& pn = system.node(n);
    std::string attrs;
    if (pn.is_f_node) {
      attrs = "shape=diamond";
    } else if (pn.kind == PropNodeKind::kHeadArg) {
      attrs = "shape=box";
    } else if (pn.kind == PropNodeKind::kZero ||
               pn.kind == PropNodeKind::kOne) {
      attrs = "shape=plaintext";
    } else {
      attrs = "shape=ellipse";
    }
    if (n == root) attrs += ",peripheries=2";
    out += StrCat("  ", quoted(n), " [", attrs, "];\n");
  };
  for (const auto& [node, rule_idx] : entries) {
    declare(node);
    const PropRule& r = system.rule(rule_idx);
    for (NodeId b : r.body) {
      declare(b);
      bool forward = system.node(node).kind == PropNodeKind::kHeadArg &&
                     system.node(b).kind == PropNodeKind::kVariable;
      out += StrCat("  ", quoted(node), " -> ", quoted(b),
                    forward ? " [style=dashed]" : "", ";\n");
    }
  }
  out += "}\n";
  return out;
}

namespace {

/// Tarjan SCC over the chosen subgraph restricted to non-f-nodes.
/// Returns component ids; f-nodes get component -1.
class FFreeScc {
 public:
  FFreeScc(const AndOrSystem& system,
           const std::unordered_map<NodeId, uint32_t>& chosen)
      : system_(system), chosen_(chosen) {}

  /// node -> SCC id for non-f chosen nodes.
  std::unordered_map<NodeId, int> Run() {
    for (const auto& [node, rule] : chosen_) {
      if (Skip(node)) continue;
      if (index_.find(node) == index_.end()) Strongconnect(node);
    }
    return comp_;
  }

 private:
  bool Skip(NodeId n) const {
    const PropNode& pn = system_.node(n);
    if (pn.is_f_node) return true;
    return chosen_.find(n) == chosen_.end();
  }

  void Strongconnect(NodeId v) {
    index_[v] = next_index_;
    low_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_.insert(v);

    auto it = chosen_.find(v);
    if (it != chosen_.end()) {
      const PropRule& r = system_.rule(it->second);
      for (NodeId w : r.body) {
        const PropNode& wn = system_.node(w);
        if (wn.kind == PropNodeKind::kZero ||
            wn.kind == PropNodeKind::kOne || wn.is_f_node) {
          continue;
        }
        if (chosen_.find(w) == chosen_.end()) continue;
        if (index_.find(w) == index_.end()) {
          Strongconnect(w);
          low_[v] = std::min(low_[v], low_[w]);
        } else if (on_stack_.count(w)) {
          low_[v] = std::min(low_[v], index_[w]);
        }
      }
    }

    if (low_[v] == index_[v]) {
      while (true) {
        NodeId w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        comp_[w] = num_components_;
        if (w == v) break;
      }
      ++num_components_;
    }
  }

  const AndOrSystem& system_;
  const std::unordered_map<NodeId, uint32_t>& chosen_;
  std::unordered_map<NodeId, int> index_;
  std::unordered_map<NodeId, int> low_;
  std::unordered_map<NodeId, int> comp_;
  std::vector<NodeId> stack_;
  std::unordered_set<NodeId> on_stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

class SubsetSearch {
 public:
  SubsetSearch(const AndOrSystem& system, NodeId root,
               const SubsetOptions& opts)
      : system_(system), root_(root), opts_(opts) {}

  SubsetResult Run() {
    SubsetResult result;
    if (root_ == kInvalidNode || system_.RulesFor(root_).empty()) {
      // No graph can be rooted here: vacuously safe (the node can never
      // produce a binding).
      result.verdict = Safety::kSafe;
      result.steps = steps_;
      return result;
    }
    ComputeCapability();
    if (!capable_[root_]) {
      // Every completion of every graph rooted here contains a 0-node:
      // the subset condition holds without search.
      result.verdict = Safety::kSafe;
      result.steps = steps_;
      return result;
    }
    worklist_.push_back(root_);
    bool found = false;
    bool exhausted = false;
    Search(0, &found, &exhausted);
    result.graphs_checked = graphs_checked_;
    result.steps = steps_;
    if (found) {
      result.verdict = Safety::kUnsafe;
      AndGraph g;
      g.root = root_;
      g.chosen = chosen_;
      result.witness = std::move(g);
    } else if (exhausted) {
      result.verdict = Safety::kUndecided;
    } else {
      result.verdict = Safety::kSafe;
    }
    return result;
  }

 private:
  /// Is the node a terminal leaf in AND-graphs?
  bool IsTerminal(NodeId n) const {
    PropNodeKind k = system_.node(n).kind;
    return k == PropNodeKind::kZero || k == PropNodeKind::kOne;
  }

  /// A counterexample graph cannot use a rule that mentions 0 (it would
  /// contain a 0-node) or a node that cannot itself be expanded into a
  /// 0-free subgraph.
  bool RuleUsable(const PropRule& r) const {
    for (NodeId b : r.body) {
      if (b == system_.zero()) return false;
      if (!IsTerminal(b) && !capable_[b]) return false;
    }
    return true;
  }

  /// Greatest-fixpoint pre-pass: a node is *capable* of appearing in a
  /// counterexample graph iff it has a live rule whose body avoids 0 and
  /// whose non-terminal members are all capable. Pruning incapable
  /// nodes up front is sound (any counterexample graph is a
  /// self-supporting 0-free set) and collapses the rule-choice search
  /// on programs whose branches all bottom out in safety certificates.
  void ComputeCapability() {
    const size_t n = system_.nodes().size();
    capable_.assign(n, true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < n; ++v) {
        if (!capable_[v] || IsTerminal(v)) continue;
        bool has_usable = false;
        for (uint32_t ri : system_.RulesFor(v)) {
          const PropRule& r = system_.rule(ri);
          bool usable = true;
          for (NodeId b : r.body) {
            if (b == system_.zero() ||
                (!IsTerminal(b) && !capable_[b])) {
              usable = false;
              break;
            }
          }
          if (usable) {
            has_usable = true;
            break;
          }
        }
        if (!has_usable) {
          capable_[v] = false;
          changed = true;
        }
      }
    }
  }

  /// Depth-first choice of rules for the nodes in worklist_[from..].
  /// Sets *found when a counterexample graph is confirmed; sets
  /// *exhausted when the budget runs out.
  void Search(size_t from, bool* found, bool* exhausted) {
    if (*found || *exhausted) return;
    if (++steps_ > opts_.budget) {
      *exhausted = true;
      return;
    }
    // Next unchosen non-terminal node.
    size_t i = from;
    while (i < worklist_.size() &&
           (IsTerminal(worklist_[i]) || chosen_.count(worklist_[i]))) {
      ++i;
    }
    if (i == worklist_.size()) {
      // Complete graph.
      ++graphs_checked_;
      if (!HasFFreeForwardCycle() &&
          !(opts_.escape && EscapeAccepts())) {
        *found = true;
      }
      return;
    }
    NodeId n = worklist_[i];
    for (uint32_t ri : system_.RulesFor(n)) {
      const PropRule& r = system_.rule(ri);
      if (!RuleUsable(r)) continue;
      chosen_.emplace(n, ri);
      size_t mark = worklist_.size();
      bool closes_back_edge = false;
      for (NodeId b : r.body) {
        if (!IsTerminal(b)) {
          worklist_.push_back(b);
          closes_back_edge |= (chosen_.count(b) > 0);
        }
      }
      // Cycles persist under completion, so once the partial graph
      // already satisfies the subset condition (an f-free forward cycle,
      // or the Theorem 5 escape), no completion below this choice can be
      // a counterexample: prune the whole subtree.
      bool pruned = false;
      if (closes_back_edge) {
        pruned = HasFFreeForwardCycle() || (opts_.escape && EscapeAccepts());
      }
      if (!pruned) {
        Search(i + 1, found, exhausted);
        if (*found) return;  // keep chosen_ intact as the witness
      }
      worklist_.resize(mark);
      chosen_.erase(n);
      if (*exhausted) return;
    }
  }

  bool EscapeAccepts() {
    AndGraph g;
    g.root = root_;
    g.chosen = chosen_;
    return opts_.escape(g);
  }

  /// True iff the chosen subgraph contains a cycle through a forward edge
  /// (head-argument -> variable) with no f-node on it. Checked by
  /// computing SCCs of the subgraph minus f-nodes: a forward edge inside
  /// one SCC closes such a cycle.
  bool HasFFreeForwardCycle() {
    std::unordered_map<NodeId, int> comp = FFreeScc(system_, chosen_).Run();
    for (const auto& [node, rule_idx] : chosen_) {
      const PropNode& head = system_.node(node);
      if (head.kind != PropNodeKind::kHeadArg) continue;
      const PropRule& r = system_.rule(rule_idx);
      for (NodeId b : r.body) {
        if (system_.node(b).kind != PropNodeKind::kVariable) continue;
        auto cu = comp.find(node);
        auto cv = comp.find(b);
        if (cu != comp.end() && cv != comp.end() &&
            cu->second == cv->second) {
          return true;
        }
      }
    }
    return false;
  }

  const AndOrSystem& system_;
  NodeId root_;
  const SubsetOptions& opts_;
  std::vector<char> capable_;
  std::vector<NodeId> worklist_;
  std::unordered_map<NodeId, uint32_t> chosen_;
  uint64_t steps_ = 0;
  uint64_t graphs_checked_ = 0;
};

}  // namespace

SubsetResult CheckSubsetCondition(const AndOrSystem& system, NodeId root,
                                  const SubsetOptions& opts) {
  return SubsetSearch(system, root, opts).Run();
}

}  // namespace hornsafe
