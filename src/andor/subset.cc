#include "andor/subset.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "andor/scc.h"
#include "util/strings.h"

namespace hornsafe {

const char* SafetyName(Safety s) {
  switch (s) {
    case Safety::kSafe:
      return "safe";
    case Safety::kUnsafe:
      return "unsafe";
    case Safety::kUndecided:
      return "undecided";
  }
  return "?";
}

std::string AndGraph::Describe(const AndOrSystem& system,
                               const Program& program) const {
  std::string out = StrCat("AND-graph rooted at ",
                           system.NodeName(root, program), ":\n");
  // Stable order: by node id.
  std::vector<std::pair<NodeId, uint32_t>> entries(chosen.begin(),
                                                   chosen.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [node, rule_idx] : entries) {
    const PropRule& r = system.rule(rule_idx);
    out += StrCat("  ", system.NodeName(node, program), " <- ",
                  JoinMapped(r.body, ", ",
                             [&](NodeId b) {
                               return system.NodeName(b, program);
                             }),
                  "\n");
  }
  return out;
}

std::string AndGraph::ToDot(const AndOrSystem& system,
                            const Program& program) const {
  std::string out = "digraph and_graph {\n  rankdir=TB;\n";
  auto quoted = [&](NodeId n) {
    std::string name = system.NodeName(n, program);
    std::string escaped;
    for (char c : name) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return StrCat("\"", escaped, "\"");
  };
  // Stable order: by node id.
  std::vector<std::pair<NodeId, uint32_t>> entries(chosen.begin(),
                                                   chosen.end());
  std::sort(entries.begin(), entries.end());
  std::unordered_set<NodeId> declared;
  auto declare = [&](NodeId n) {
    if (!declared.insert(n).second) return;
    const PropNode& pn = system.node(n);
    std::string attrs;
    if (pn.is_f_node) {
      attrs = "shape=diamond";
    } else if (pn.kind == PropNodeKind::kHeadArg) {
      attrs = "shape=box";
    } else if (pn.kind == PropNodeKind::kZero ||
               pn.kind == PropNodeKind::kOne) {
      attrs = "shape=plaintext";
    } else {
      attrs = "shape=ellipse";
    }
    if (n == root) attrs += ",peripheries=2";
    out += StrCat("  ", quoted(n), " [", attrs, "];\n");
  };
  for (const auto& [node, rule_idx] : entries) {
    declare(node);
    const PropRule& r = system.rule(rule_idx);
    for (NodeId b : r.body) {
      declare(b);
      bool forward = system.node(node).kind == PropNodeKind::kHeadArg &&
                     system.node(b).kind == PropNodeKind::kVariable;
      out += StrCat("  ", quoted(node), " -> ", quoted(b),
                    forward ? " [style=dashed]" : "", ";\n");
    }
  }
  out += "}\n";
  return out;
}

namespace {

bool IsTerminalNode(const AndOrSystem& system, NodeId n) {
  PropNodeKind k = system.node(n).kind;
  return k == PropNodeKind::kZero || k == PropNodeKind::kOne;
}

/// Tarjan SCC over the chosen subgraph restricted to non-f-nodes.
/// Returns component ids; f-nodes get component -1.
class FFreeScc {
 public:
  FFreeScc(const AndOrSystem& system,
           const std::unordered_map<NodeId, uint32_t>& chosen)
      : system_(system), chosen_(chosen) {}

  /// node -> SCC id for non-f chosen nodes.
  std::unordered_map<NodeId, int> Run() {
    for (const auto& [node, rule] : chosen_) {
      if (Skip(node)) continue;
      if (index_.find(node) == index_.end()) Strongconnect(node);
    }
    return comp_;
  }

 private:
  bool Skip(NodeId n) const {
    const PropNode& pn = system_.node(n);
    if (pn.is_f_node) return true;
    return chosen_.find(n) == chosen_.end();
  }

  void Strongconnect(NodeId v) {
    index_[v] = next_index_;
    low_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_.insert(v);

    auto it = chosen_.find(v);
    if (it != chosen_.end()) {
      const PropRule& r = system_.rule(it->second);
      for (NodeId w : r.body) {
        const PropNode& wn = system_.node(w);
        if (wn.kind == PropNodeKind::kZero ||
            wn.kind == PropNodeKind::kOne || wn.is_f_node) {
          continue;
        }
        if (chosen_.find(w) == chosen_.end()) continue;
        if (index_.find(w) == index_.end()) {
          Strongconnect(w);
          low_[v] = std::min(low_[v], low_[w]);
        } else if (on_stack_.count(w)) {
          low_[v] = std::min(low_[v], index_[w]);
        }
      }
    }

    if (low_[v] == index_[v]) {
      while (true) {
        NodeId w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        comp_[w] = num_components_;
        if (w == v) break;
      }
      ++num_components_;
    }
  }

  const AndOrSystem& system_;
  const std::unordered_map<NodeId, uint32_t>& chosen_;
  std::unordered_map<NodeId, int> index_;
  std::unordered_map<NodeId, int> low_;
  std::unordered_map<NodeId, int> comp_;
  std::vector<NodeId> stack_;
  std::unordered_set<NodeId> on_stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

/// True iff the chosen subgraph contains a cycle through a forward edge
/// (head-argument -> variable) with no f-node on it. Checked by
/// computing SCCs of the subgraph minus f-nodes: a forward edge inside
/// one SCC closes such a cycle.
bool HasFFreeForwardCycleIn(
    const AndOrSystem& system,
    const std::unordered_map<NodeId, uint32_t>& chosen) {
  std::unordered_map<NodeId, int> comp = FFreeScc(system, chosen).Run();
  for (const auto& [node, rule_idx] : chosen) {
    const PropNode& head = system.node(node);
    if (head.kind != PropNodeKind::kHeadArg) continue;
    const PropRule& r = system.rule(rule_idx);
    for (NodeId b : r.body) {
      if (system.node(b).kind != PropNodeKind::kVariable) continue;
      auto cu = comp.find(node);
      auto cv = comp.find(b);
      if (cu != comp.end() && cv != comp.end() &&
          cu->second == cv->second) {
        return true;
      }
    }
  }
  return false;
}

/// The counterexample search. Two execution modes share the state:
///
///  * Joint mode (the pre-memo algorithm): one DFS over rule choices
///    for every reachable node, with the partial-cycle prune. Used when
///    a Theorem 5 escape is installed (the escape inspects whole
///    graphs, so subproblems are not context-free), when memoization is
///    disabled, or when the condensation was too wide for reach sets.
///
///  * Fragment mode: the same DFS, but a body node b that comes up for
///    expansion while reach_sccs(b) is disjoint from the components of
///    every currently chosen node (across all active fragments) is an
///    *independence frontier*: whether b can anchor a closed, 0-free,
///    cycle-free assignment is a context-free fact. It is decided once
///    by a nested fragment search and memoized by node id. Soundness of
///    skipping b rests on two facts: a cycle of any chosen subgraph
///    lies inside a single union-graph SCC (choices only remove edges),
///    and with the disjointness guard no cycle can span a fragment
///    boundary — so independently found fragments merge with the rest
///    of the graph (earliest fragment preferred per node) into a valid
///    counterexample. Without the guard, node-keyed caching is unsound:
///    inside an active SCC the existence of a cycle through b depends
///    on the ancestors' rule choices.
class SubsetSearch {
 public:
  SubsetSearch(const AndOrSystem& system, NodeId root,
               const SubsetOptions& opts, const SccAnalysis* scc)
      : system_(system), root_(root), opts_(opts), scc_(scc) {}

  SubsetResult Run() {
    SubsetResult result;
    if (root_ == kInvalidNode || system_.RulesFor(root_).empty()) {
      // No graph can be rooted here: vacuously safe (the node can never
      // produce a binding).
      result.verdict = Safety::kSafe;
      return result;
    }
    if (scc_ == nullptr) ComputeCapability();
    if (!Capable(root_)) {
      // Every completion of every graph rooted here contains a 0-node:
      // the subset condition holds without search.
      result.verdict = Safety::kSafe;
      if (scc_ != nullptr && opts_.use_scc) result.scc_short_circuits = 1;
      return result;
    }
    const bool has_escape = static_cast<bool>(opts_.escape);
    if (opts_.use_scc && scc_ != nullptr && !has_escape &&
        !scc_->cycle_reachable(root_)) {
      // No reachable union-graph component can host an f-node-free
      // forward cycle, so *any* greedy 0-free completion is already a
      // counterexample: unsafe with zero enumeration.
      result.verdict = Safety::kUnsafe;
      AndGraph g;
      g.root = root_;
      GreedyClose(root_, &g.chosen);
      result.witness = std::move(g);
      result.scc_short_circuits = 1;
      return result;
    }

    // Pre-expired deadlines (and already-triggered cancellations) stop
    // before the first step, so every search under them degrades
    // identically at any job count; only the cheap O(1) short-circuits
    // above still resolve.
    if (StopReason r = opts_.exec.ShouldStop(); r != StopReason::kNone) {
      exhausted_ = true;
      stop_reason_ = r;
      result.verdict = Safety::kUndecided;
      result.stop_reason = r;
      return result;
    }

    memo_mode_ = opts_.use_memo && scc_ != nullptr && !has_escape &&
                 scc_->has_reach_sets();
    Fragment top;
    top.root = root_;
    top.worklist.push_back(root_);
    bool found = false;
    if (memo_mode_) {
      active_count_.assign(scc_->num_sccs(), 0);
      active_bits_.assign(scc_->reach_blocks(), 0);
      found = FragmentSearch(top, 0);
      if (found && !exhausted_) {
        for (const auto& [n, ri] : top.chosen) fragment_rule_.emplace(n, ri);
        result.witness = ExtractWitness();
      }
    } else {
      JointSearch(top, 0, &found);
      if (found) {
        AndGraph g;
        g.root = root_;
        g.chosen = std::move(top.chosen);
        result.witness = std::move(g);
      }
    }
    result.graphs_checked = graphs_checked_;
    result.steps = steps_;
    result.memo_hits = memo_hits_;
    result.memo_misses = memo_misses_;
    result.scc_short_circuits = scc_short_;
    if (found && !exhausted_) {
      result.verdict = Safety::kUnsafe;
    } else if (exhausted_) {
      result.verdict = Safety::kUndecided;
      result.stop_reason = stop_reason_;
      result.witness.reset();
    } else {
      result.verdict = Safety::kSafe;
    }
    return result;
  }

 private:
  /// One DFS over rule choices; the top-level search and every
  /// delegated subproblem each own one.
  struct Fragment {
    NodeId root = kInvalidNode;
    std::vector<NodeId> worklist;
    std::unordered_map<NodeId, uint32_t> chosen;
  };

  bool IsTerminal(NodeId n) const { return IsTerminalNode(system_, n); }

  /// One DFS step: the exact per-step budget check plus a periodic
  /// deadline/cancellation check (every kCheckInterval steps, so the
  /// steady_clock read stays off the per-step path). Returns true when
  /// the search must unwind; `exhausted_`/`stop_reason_` are set.
  bool StepStops() {
    if (++steps_ > opts_.budget) {
      exhausted_ = true;
      stop_reason_ = StopReason::kBudget;
      return true;
    }
    if (opts_.exec.active() &&
        (steps_ & (ExecContext::kCheckInterval - 1)) == 0) {
      if (StopReason r = opts_.exec.ShouldStop(); r != StopReason::kNone) {
        exhausted_ = true;
        stop_reason_ = r;
        return true;
      }
    }
    return false;
  }

  bool Capable(NodeId n) const {
    return scc_ != nullptr ? scc_->capable(n) : capable_[n] != 0;
  }

  /// A counterexample graph cannot use a rule that mentions 0 (it would
  /// contain a 0-node) or a node that cannot itself be expanded into a
  /// 0-free subgraph.
  bool RuleUsable(uint32_t rule_index) const {
    if (scc_ != nullptr) return scc_->rule_usable(rule_index);
    const PropRule& r = system_.rule(rule_index);
    for (NodeId b : r.body) {
      if (b == system_.zero()) return false;
      if (!IsTerminal(b) && !capable_[b]) return false;
    }
    return true;
  }

  /// Greatest-fixpoint pre-pass used only when no SccAnalysis was
  /// supplied or requested: a node is *capable* of appearing in a
  /// counterexample graph iff it has a live rule whose body avoids 0
  /// and whose non-terminal members are all capable.
  void ComputeCapability() {
    const size_t n = system_.nodes().size();
    capable_.assign(n, 1);
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < n; ++v) {
        if (!capable_[v] || IsTerminal(v)) continue;
        bool has_usable = false;
        for (uint32_t ri : system_.RulesFor(v)) {
          const PropRule& r = system_.rule(ri);
          bool usable = true;
          for (NodeId b : r.body) {
            if (b == system_.zero() ||
                (!IsTerminal(b) && !capable_[b])) {
              usable = false;
              break;
            }
          }
          if (usable) {
            has_usable = true;
            break;
          }
        }
        if (!has_usable) {
          capable_[v] = 0;
          changed = true;
        }
      }
    }
  }

  /// Joint-mode DFS (exactly the pre-memo algorithm). Sets *found when
  /// a counterexample graph is confirmed; sets exhausted_ when the
  /// budget runs out.
  void JointSearch(Fragment& f, size_t from, bool* found) {
    if (*found || exhausted_) return;
    if (StepStops()) return;
    // Next unchosen non-terminal node.
    size_t i = from;
    while (i < f.worklist.size() &&
           (IsTerminal(f.worklist[i]) || f.chosen.count(f.worklist[i]))) {
      ++i;
    }
    if (i == f.worklist.size()) {
      // Complete graph.
      ++graphs_checked_;
      if (!HasFFreeForwardCycleIn(system_, f.chosen) &&
          !(opts_.escape && EscapeAccepts(f))) {
        *found = true;
      }
      return;
    }
    NodeId n = f.worklist[i];
    for (uint32_t ri : system_.RulesFor(n)) {
      if (!RuleUsable(ri)) continue;
      const PropRule& r = system_.rule(ri);
      f.chosen.emplace(n, ri);
      size_t mark = f.worklist.size();
      bool closes_back_edge = false;
      for (NodeId b : r.body) {
        if (!IsTerminal(b)) {
          f.worklist.push_back(b);
          closes_back_edge |= (f.chosen.count(b) > 0);
        }
      }
      // Cycles persist under completion, so once the partial graph
      // already satisfies the subset condition (an f-free forward cycle,
      // or the Theorem 5 escape), no completion below this choice can be
      // a counterexample: prune the whole subtree.
      bool pruned = false;
      if (closes_back_edge) {
        pruned = HasFFreeForwardCycleIn(system_, f.chosen) ||
                 (opts_.escape && EscapeAccepts(f));
      }
      if (!pruned) {
        JointSearch(f, i + 1, found);
        if (*found) return;  // keep chosen intact as the witness
      }
      f.worklist.resize(mark);
      f.chosen.erase(n);
      if (exhausted_) return;
    }
  }

  bool EscapeAccepts(const Fragment& f) {
    AndGraph g;
    g.root = root_;
    g.chosen = f.chosen;
    return opts_.escape(g);
  }

  /// Fragment-mode DFS. Returns true when the fragment completed a
  /// closed (modulo delegation), 0-free, cycle-free assignment; the
  /// assignment is left in f.chosen. Returns false on exhaustive
  /// failure or when exhausted_ was set.
  bool FragmentSearch(Fragment& f, size_t from) {
    if (exhausted_) return false;
    if (StepStops()) return false;
    // Next unchosen non-terminal node; delegate independence frontiers.
    size_t i = from;
    NodeId n = kInvalidNode;
    while (i < f.worklist.size()) {
      NodeId cand = f.worklist[i];
      if (IsTerminal(cand) || f.chosen.count(cand)) {
        ++i;
        continue;
      }
      if (cand != f.root) {
        auto it = memo_.find(cand);
        if (it != memo_.end() && !it->second) {
          // Context-free: no closed cycle-free assignment contains
          // cand, so no completion of this branch exists.
          ++memo_hits_;
          return false;
        }
        // A fragment must not delegate its own root (its memo entry is
        // the one being computed), hence the cand != f.root guard; any
        // deeper re-entry is excluded by the disjointness check because
        // the root's component is active once chosen.
        if (Delegable(cand)) {
          if (it != memo_.end()) {
            ++memo_hits_;
            ++i;
            continue;
          }
          ++memo_misses_;
          if (!DelegateCompute(cand)) return false;
          ++i;
          continue;
        }
      }
      n = cand;
      break;
    }
    if (n == kInvalidNode) {
      // Complete (modulo delegated members, which merge cycle-free by
      // the frontier guarantee).
      ++graphs_checked_;
      return !HasFFreeForwardCycleIn(system_, f.chosen);
    }
    for (uint32_t ri : system_.RulesFor(n)) {
      if (!RuleUsable(ri)) continue;
      const PropRule& r = system_.rule(ri);
      bool dead = false;
      for (NodeId b : r.body) {
        if (IsTerminal(b)) continue;
        auto mit = memo_.find(b);
        if (mit != memo_.end() && !mit->second) {
          dead = true;
          break;
        }
      }
      if (dead) {
        ++memo_hits_;
        continue;
      }
      f.chosen.emplace(n, ri);
      ActivateChoice(n);
      size_t mark = f.worklist.size();
      bool closes_back_edge = false;
      for (NodeId b : r.body) {
        if (!IsTerminal(b)) {
          f.worklist.push_back(b);
          closes_back_edge |= (f.chosen.count(b) > 0);
        }
      }
      bool pruned = false;
      if (closes_back_edge) {
        pruned = HasFFreeForwardCycleIn(system_, f.chosen);
      }
      if (!pruned) {
        if (FragmentSearch(f, i + 1)) return true;  // keep chosen intact
      }
      f.worklist.resize(mark);
      f.chosen.erase(n);
      DeactivateChoice(n);
      if (exhausted_) return false;
    }
    return false;
  }

  /// An independence frontier: nothing reachable from n shares a
  /// component with any currently chosen node, so no cycle can connect
  /// n's closure to the graphs under construction.
  bool Delegable(NodeId n) const {
    int32_t s = scc_->scc_of(n);
    if (s < 0) return false;
    return !scc_->ReachesAny(s, active_bits_.data());
  }

  /// Decides (and memoizes) whether `b` can anchor a closed, 0-free,
  /// cycle-free assignment. On success the fragment's rules are merged
  /// into fragment_rule_ (earliest fragment wins) for later witness
  /// assembly. Returns false on infeasible *or* exhausted_.
  bool DelegateCompute(NodeId b) {
    if (opts_.use_scc && !scc_->cycle_reachable(b)) {
      // No component reachable from b can host a counted cycle: any
      // greedy 0-free closure anchors b.
      std::unordered_map<NodeId, uint32_t> closure;
      GreedyClose(b, &closure);
      for (const auto& [n, ri] : closure) fragment_rule_.emplace(n, ri);
      ++scc_short_;
      memo_.emplace(b, true);
      return true;
    }
    Fragment f;
    f.root = b;
    f.worklist.push_back(b);
    bool feasible = FragmentSearch(f, 0);
    if (exhausted_) return false;  // verdict unknown: do not memoize
    if (feasible) {
      for (const auto& [n, ri] : f.chosen) {
        fragment_rule_.emplace(n, ri);
        // The success path never backtracked these choices; release
        // their activations now that the fragment is closed.
        DeactivateChoice(n);
      }
    }
    memo_.emplace(b, feasible);
    return feasible;
  }

  void ActivateChoice(NodeId n) {
    int32_t s = scc_->scc_of(n);
    if (s < 0) return;
    if (active_count_[s]++ == 0) {
      active_bits_[s / 64] |= uint64_t{1} << (s % 64);
    }
  }

  void DeactivateChoice(NodeId n) {
    int32_t s = scc_->scc_of(n);
    if (s < 0) return;
    if (--active_count_[s] == 0) {
      active_bits_[s / 64] &= ~(uint64_t{1} << (s % 64));
    }
  }

  /// Closes `from` downward using the first usable rule per node. Only
  /// called below nodes with no reachable cycle-capable component, so
  /// the result is automatically a valid counterexample piece.
  void GreedyClose(NodeId from,
                   std::unordered_map<NodeId, uint32_t>* out) const {
    std::vector<NodeId> stack{from};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      if (IsTerminal(v) || out->count(v)) continue;
      for (uint32_t ri : system_.RulesFor(v)) {
        if (!RuleUsable(ri)) continue;
        out->emplace(v, ri);
        for (NodeId b : system_.rule(ri).body) {
          if (!IsTerminal(b)) stack.push_back(b);
        }
        break;
      }
    }
  }

  /// Resolves the final witness from fragment_rule_ by walking from the
  /// root. Every reachable node is covered: the top fragment merged its
  /// domain last, delegated nodes were merged at their fragments'
  /// completion, and earliest-fragment preference keeps every edge
  /// inside the chosen fragment or one completed before it — so the
  /// merged graph inherits cycle-freeness from the per-fragment checks.
  AndGraph ExtractWitness() const {
    AndGraph g;
    g.root = root_;
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      if (IsTerminal(v) || g.chosen.count(v)) continue;
      auto it = fragment_rule_.find(v);
      if (it == fragment_rule_.end()) continue;  // unreachable by design
      g.chosen.emplace(v, it->second);
      for (NodeId b : system_.rule(it->second).body) {
        if (!IsTerminal(b)) stack.push_back(b);
      }
    }
    return g;
  }

  const AndOrSystem& system_;
  NodeId root_;
  const SubsetOptions& opts_;
  const SccAnalysis* scc_;
  /// Joint-mode capability map (scc_ == nullptr only).
  std::vector<char> capable_;

  bool memo_mode_ = false;
  bool exhausted_ = false;
  StopReason stop_reason_ = StopReason::kNone;
  /// node -> can it anchor a closed, 0-free, cycle-free assignment?
  std::unordered_map<NodeId, bool> memo_;
  /// node -> rule from the earliest completed fragment containing it.
  std::unordered_map<NodeId, uint32_t> fragment_rule_;
  /// Per-SCC count/bitset of components of currently chosen nodes.
  std::vector<uint32_t> active_count_;
  std::vector<uint64_t> active_bits_;

  uint64_t steps_ = 0;
  uint64_t graphs_checked_ = 0;
  uint64_t memo_hits_ = 0;
  uint64_t memo_misses_ = 0;
  uint64_t scc_short_ = 0;
};

}  // namespace

SubsetResult CheckSubsetCondition(const AndOrSystem& system, NodeId root,
                                  const SubsetOptions& opts) {
  const SccAnalysis* scc = opts.scc;
  std::optional<SccAnalysis> local;
  if (scc == nullptr && (opts.use_scc || opts.use_memo) &&
      root != kInvalidNode && !system.RulesFor(root).empty()) {
    local = SccAnalysis::Compute(system);
    scc = &*local;
  }
  return SubsetSearch(system, root, opts, scc).Run();
}

bool IsCounterexampleGraph(const AndOrSystem& system, const AndGraph& graph) {
  if (graph.root == kInvalidNode || !graph.chosen.count(graph.root)) {
    return false;
  }
  for (const auto& [node, rule_idx] : graph.chosen) {
    if (IsTerminalNode(system, node)) return false;
    // The rule must be a live rule of this node.
    bool owns = false;
    for (uint32_t ri : system.RulesFor(node)) {
      if (ri == rule_idx) {
        owns = true;
        break;
      }
    }
    if (!owns) return false;
    for (NodeId b : system.rule(rule_idx).body) {
      if (b == system.zero()) return false;
      if (!IsTerminalNode(system, b) && !graph.chosen.count(b)) {
        return false;  // not closed
      }
    }
  }
  return !HasFFreeForwardCycleIn(system, graph.chosen);
}

}  // namespace hornsafe
