#include "andor/lfp.h"

#include <deque>

namespace hornsafe {

std::vector<char> LeastFixpoint(const AndOrSystem& system) {
  const size_t num_nodes = system.nodes().size();
  std::vector<char> value(num_nodes, 0);
  value[system.one()] = 1;

  // Per-rule count of body nodes not yet known to be 1. kZero never
  // becomes 1, so rules mentioning it can never fire.
  std::vector<uint32_t> remaining(system.num_rules(), 0);
  std::vector<std::vector<uint32_t>> watchers(num_nodes);
  std::deque<NodeId> queue;

  for (size_t ri = 0; ri < system.num_rules(); ++ri) {
    if (system.rule_deleted(ri)) continue;
    const PropRule& r = system.rule(ri);
    uint32_t need = 0;
    bool impossible = false;
    for (NodeId b : r.body) {
      if (b == system.zero()) {
        impossible = true;
        break;
      }
      if (b == system.one()) continue;
      ++need;
      watchers[b].push_back(static_cast<uint32_t>(ri));
    }
    if (impossible) {
      remaining[ri] = static_cast<uint32_t>(-1);
      continue;
    }
    remaining[ri] = need;
    if (need == 0 && !value[r.head]) {
      value[r.head] = 1;
      queue.push_back(r.head);
    }
  }

  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    for (uint32_t ri : watchers[n]) {
      if (system.rule_deleted(ri)) continue;
      if (remaining[ri] == static_cast<uint32_t>(-1)) continue;
      if (--remaining[ri] == 0) {
        NodeId head = system.rule(ri).head;
        if (!value[head]) {
          value[head] = 1;
          queue.push_back(head);
        }
      }
    }
  }
  return value;
}

}  // namespace hornsafe
