#include "andor/fragment.h"

#include "fd/fd.h"
#include "lang/struct_hash.h"

namespace hornsafe {

uint64_t ComputeRuleGuard(const Program& canonical, uint32_t rule_index,
                          bool use_fd_closure) {
  const Rule& rule = canonical.rules()[rule_index];
  uint64_t h = MixHash(0x66726167677264ULL);  // "fraggrd"
  h = CombineHash(h, StructuralRuleHash(canonical, rule));
  for (const Literal& lit : rule.body) {
    const PredicateInfo& info = canonical.predicate(lit.pred);
    h = CombineHash(h, static_cast<uint64_t>(info.kind));
    if (info.kind == PredicateKind::kInfiniteBase) {
      h = CombineHash(h, FdSetHash(canonical.FdsFor(lit.pred)));
      h = CombineHash(h, info.arity);
    }
  }
  return CombineHash(h, use_fd_closure ? 1 : 0);
}

}  // namespace hornsafe
