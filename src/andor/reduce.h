#ifndef HORNSAFE_ANDOR_REDUCE_H_
#define HORNSAFE_ANDOR_REDUCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "andor/system.h"

namespace hornsafe {

/// Statistics from one ReduceSystem run.
struct ReduceStats {
  /// Rules deleted because their body mentions a node that can never
  /// produce bindings.
  size_t rules_deleted = 0;
  /// Nodes found to have no live rules (the paper's "replace by 0";
  /// we use the distinct terminal meaning *never produces bindings* —
  /// DESIGN.md, D1 — so `← 0` safety certificates survive).
  size_t nodes_neverized = 0;
};

/// One node/rule range of the system for ReduceSystemInRanges.
struct ReduceRange {
  uint32_t node_begin = 0;
  uint32_t node_end = 0;
  uint32_t rule_begin = 0;
  uint32_t rule_end = 0;
};

/// Algorithm 4 of the paper: repeatedly (a) treat every non-terminal
/// node without live rules as "never produces bindings" and (b) delete
/// every rule whose body mentions such a node, until fixpoint.
///
/// By Lemma 9 this never removes a rule that could produce bindings for
/// its head. Runs in time linear in total rule size (the paper states
/// the naive O(n²) bound, Lemma 10).
ReduceStats ReduceSystem(AndOrSystem* system);

/// ReduceSystem restricted to the given ranges. Correct only when the
/// ranges are closed (no rule edge in or out of a range except through
/// terminals) — node-table segments by construction. The fixpoint then
/// decomposes per range, so reducing only the non-grafted spans yields
/// exactly the global fixpoint restricted to them.
ReduceStats ReduceSystemInRanges(AndOrSystem* system,
                                 const std::vector<ReduceRange>& ranges);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_REDUCE_H_
