#include "andor/emptiness.h"

namespace hornsafe {

std::vector<bool> EmptyPredicates(const Program& canonical) {
  const size_t n = canonical.num_predicates();
  std::vector<bool> nonempty(n, false);
  for (PredicateId p = 0; p < n; ++p) {
    if (!canonical.IsDerived(p)) nonempty[p] = true;
  }
  // Fixpoint: a derived predicate is nonempty if some rule's body
  // predicates are all nonempty.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : canonical.rules()) {
      if (nonempty[r.head.pred]) continue;
      bool all = true;
      for (const Literal& b : r.body) {
        if (!nonempty[b.pred]) {
          all = false;
          break;
        }
      }
      if (all) {
        nonempty[r.head.pred] = true;
        changed = true;
      }
    }
  }
  std::vector<bool> empty(n);
  for (PredicateId p = 0; p < n; ++p) empty[p] = !nonempty[p];
  return empty;
}

size_t ApplyEmptinessPruningRanges(
    const std::vector<bool>& empty, AndOrSystem* system,
    const std::vector<std::pair<uint32_t, uint32_t>>& rule_ranges) {
  size_t deleted = 0;
  for (const auto& [begin, end] : rule_ranges) {
    for (uint32_t ri = begin; ri < end; ++ri) {
      if (system->rule_deleted(ri)) continue;
      const PropNode& head = system->node(system->rule(ri).head);
      bool prune = false;
      switch (head.kind) {
        case PropNodeKind::kHeadArg:
        case PropNodeKind::kBodyArg:
        case PropNodeKind::kBodyArgAdorned:
        case PropNodeKind::kFdChoice:
          prune = head.pred != kInvalidPredicate && empty[head.pred];
          break;
        case PropNodeKind::kZero:
        case PropNodeKind::kOne:
        case PropNodeKind::kVariable:
          break;
      }
      if (prune) {
        system->DeleteRule(ri);
        ++deleted;
      }
    }
  }
  return deleted;
}

size_t ApplyEmptinessPruning(const std::vector<bool>& empty,
                             AndOrSystem* system) {
  return ApplyEmptinessPruningRanges(
      empty, system,
      {{0, static_cast<uint32_t>(system->num_rules())}});
}

}  // namespace hornsafe
