#ifndef HORNSAFE_ANDOR_SEGMENT_H_
#define HORNSAFE_ANDOR_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "andor/adorn.h"
#include "andor/scc.h"
#include "andor/system.h"
#include "lang/program.h"

namespace hornsafe {

/// Structurally shared node-table segments (DESIGN.md, D15).
///
/// A *segment* is the post-prune node/rule span one weakly connected
/// component of the predicate dependency graph contributes to an
/// `AndOrSystem`, stored in relocatable coordinates. Fragment replay
/// (andor/fragment.h) made warm builds bit-identical to cold ones but
/// still re-executes every `Intern*`/`AddRule` call; a segment skips
/// the calls entirely: `AndOrSystem::GraftSegment` appends the span's
/// nodes and rules wholesale, resolving each relocation field against
/// the *new* build's predicate ids, adorned-rule indices, occurrence
/// ids and term pool. Only the edited component re-interns.
///
/// Why relocation is exact: ids shift between builds (an edit that adds
/// a predicate renumbers everything after it), but within one component
/// every id is an offset into a dense run — predicate slots in
/// first-appearance order, adorned rules in [ar_begin, ar_end),
/// occurrence ids in [occ_base, occ_base + occ_count) — so storing
/// deltas against the run base makes the encoding independent of where
/// the run lands. Components never share non-terminal nodes (every
/// intern key is scoped to a predicate, adorned rule or occurrence of
/// the component), so a graft can never collide with nodes built for
/// other components, and the rule spans of distinct components never
/// deduplicate against each other.
///
/// Reuse is keyed by the component's ordered rule-guard sequence
/// (ComputeRuleGuard covers predicate names/kinds/arities, argument
/// grouping, FD sets and the closure flag) plus the emptiness bits of
/// its predicates and the prune-mode flags — everything the build,
/// emptiness pruning and reduction read. Segments are encoded *after*
/// pruning, with per-rule deleted bits and the span's SccSlice, so a
/// graft also replays the prune verdicts and condensation for free.

/// One relocatable node. Fields mirror PropNode, with ids replaced by
/// run-relative coordinates.
struct SegmentNode {
  PropNodeKind kind = PropNodeKind::kZero;
  bool is_f_node = false;
  /// Component-local predicate slot (first-appearance order over the
  /// component's canonical rules, head then body left-to-right); -1 for
  /// kinds without a predicate.
  int32_t pred_slot = -1;
  uint64_t adornment_mask = 0;
  uint32_t position = 0;
  /// adorned_rule − ar_begin. kHeadArg nodes keep adorned_rule 0 (they
  /// are interned program-wide), so their delta is unused and 0.
  uint32_t ar_delta = 0;
  /// occurrence − occ_base (occurrence kinds only).
  uint32_t occ_delta = 0;
  uint32_t fd_index = 0;
  /// kVariable: where the variable first occurs in its adorned rule —
  /// -1 = head literal, else the body occurrence index. The graft
  /// resolves the new TermId from that argument slot, so variables
  /// relocate without any per-rule variable scan.
  int32_t var_occ = -2;
  /// kVariable: argument position of the first occurrence.
  uint32_t var_pos = 0;
};

/// One propositional rule of the span. Node references are encoded as
/// 0 = the zero terminal, 1 = the one terminal, else local index + 2.
struct SegmentRule {
  uint32_t head = 0;
  std::vector<uint32_t> body;
  /// source_adorned_rule − ar_begin.
  uint32_t ar_delta = 0;
  /// Pruned by Algorithm 3 or 4 in the build this segment was encoded
  /// from; replayed verbatim (prune is deterministic per component).
  bool deleted = false;
};

/// The immutable, shareable encoding of one component's span. Held by
/// `shared_ptr` from both the PipelineCache segment tier and every
/// `AndOrSystem` that grafted it, so retired snapshots keep their
/// segments alive (and pinned-snapshot readers stay safe) even after
/// cache eviction.
struct NodeTableSegment {
  uint32_t num_pred_slots = 0;
  uint32_t num_adorned_rules = 0;
  uint32_t num_occurrences = 0;
  std::vector<SegmentNode> nodes;
  std::vector<SegmentRule> rules;
  /// How the deleted bits split between Algorithm 3 (emptiness) and
  /// Algorithm 4 (reduction), for stitched prune statistics.
  uint64_t pruned_emptiness = 0;
  uint64_t pruned_reduction = 0;
  /// The span's condensation analysis in range-relative coordinates
  /// (scc.h); stitched into the global SccAnalysis at reuse time.
  SccSlice scc;

  /// Approximate resident size in bytes, for memory accounting.
  size_t MemoryBytes() const;
};

/// One weakly connected component of the predicate dependency graph,
/// as a run of canonical rules.
struct PredicateComponent {
  uint32_t first_rule = 0;
  uint32_t num_rules = 0;
};

/// The component partition of a canonical program's rule list.
struct ComponentPartition {
  /// Components in first-rule order.
  std::vector<PredicateComponent> components;
  /// True iff every component's rules form one contiguous run — the
  /// precondition for segment spans (canonicalization keeps a module's
  /// rules together, so this is the common case). When false the
  /// segment path is skipped entirely and the build behaves as before.
  bool contiguous = true;
};

/// Partitions the rules by weak connectivity of their predicates (a
/// rule joins its head predicate with every body predicate).
ComponentPartition ComputeComponentPartition(const Program& canonical);

/// One component's planned treatment for the builder: graft `segment`
/// when non-null (falling back to per-rule processing if the graft is
/// rejected), else build the component's rules normally.
struct SegmentGraft {
  uint32_t first_rule = 0;
  uint32_t num_rules = 0;
  std::shared_ptr<const NodeTableSegment> segment;
  /// New predicate id per component slot (ComponentPredSlots of the
  /// current canonical program).
  std::vector<PredicateId> pred_of_slot;
};

/// The per-component plan for one build, tiling the canonical rule
/// list in order.
struct SegmentPlan {
  std::vector<SegmentGraft> components;
};

/// Tallies of one segment-planned build.
struct SegmentBuildStats {
  uint64_t segments_total = 0;
  uint64_t segments_grafted = 0;
  uint64_t grafts_rejected = 0;
  /// Nodes appended from shared segments vs interned fresh.
  uint64_t nodes_shared = 0;
  uint64_t nodes_owned = 0;
};

/// The component's predicates in first-appearance order (head then body
/// left-to-right over its rules, deduplicated) — the slot coordinate
/// system for SegmentNode::pred_slot.
std::vector<PredicateId> ComponentPredSlots(const Program& canonical,
                                            const PredicateComponent& comp);

/// Encodes one built-and-pruned span as a relocatable segment. Returns
/// null if the span does not relocate cleanly (a node or rule indexes
/// outside the declared runs) — callers simply skip caching it.
/// `empty` is the EmptyPredicates bitmap, used to classify deleted
/// rules into the emptiness/reduction tallies. `scc` is the span's
/// already-computed slice, copied in.
std::shared_ptr<const NodeTableSegment> EncodeSegment(
    const AndOrSystem& system, const AdornedProgram& adorned,
    const std::vector<bool>& empty,
    const std::vector<PredicateId>& pred_of_slot, uint32_t node_begin,
    uint32_t node_end, uint32_t rule_begin, uint32_t rule_end,
    uint32_t ar_begin, uint32_t ar_end, uint32_t occ_base,
    uint32_t occ_count, SccSlice scc);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_SEGMENT_H_
