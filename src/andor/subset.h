#ifndef HORNSAFE_ANDOR_SUBSET_H_
#define HORNSAFE_ANDOR_SUBSET_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "andor/system.h"
#include "lang/program.h"
#include "util/deadline.h"

namespace hornsafe {

class SccAnalysis;

/// Three-valued safety verdict.
enum class Safety : uint8_t {
  kSafe,
  kUnsafe,
  /// The search budget ran out before the space of AND-graphs was
  /// exhausted; the argument must be treated as potentially unsafe.
  kUndecided,
};

const char* SafetyName(Safety s);

/// One fully chosen AND-graph And_H(p): exactly one live rule per
/// reachable non-terminal node.
struct AndGraph {
  NodeId root = kInvalidNode;
  /// node -> index of the chosen rule in the AndOrSystem.
  std::unordered_map<NodeId, uint32_t> chosen;

  /// Multi-line rendering for explanations.
  std::string Describe(const AndOrSystem& system,
                       const Program& program) const;

  /// Graphviz rendering: box = head argument, ellipse = variable,
  /// diamond = f-node (infinite-relation argument), doubled border =
  /// the root; dashed edges are the forward (head-to-variable) edges.
  std::string ToDot(const AndOrSystem& system, const Program& program) const;
};

/// Optional escape hatch for Theorem 5: called on every candidate
/// counterexample graph (no 0-node, no f-node-free forward cycle); if it
/// returns true the graph is considered to satisfy the subset condition
/// anyway (e.g. because monotonicity constraints bound one of its
/// cycles) and the search continues.
using GraphEscape = std::function<bool(const AndGraph&)>;

/// Options for the subset-condition search.
struct SubsetOptions {
  /// DFS step budget; exceeded -> kUndecided.
  uint64_t budget = 5'000'000;
  /// Wall-clock deadline and cancellation token, checked cooperatively
  /// every `ExecContext::kCheckInterval` DFS steps. Either stop
  /// degrades the verdict to kUndecided with the matching StopReason —
  /// exactly like the step budget, but non-deterministic when observed
  /// mid-search (an already-expired deadline stops every search at step
  /// 0 and is deterministic; see DESIGN.md, D13).
  ExecContext exec;
  GraphEscape escape;
  /// Enable the SCC condensation short-circuits: a capable root with no
  /// reachable component that could host an f-node-free forward cycle
  /// is unsafe without any enumeration (a greedy 0-free completion is
  /// already a counterexample). Disabled automatically when `escape` is
  /// set — the escape can rescue individual graphs, so existence of a
  /// cycle-free completion alone no longer decides.
  bool use_scc = true;
  /// Enable frontier memoization: a body node whose reachable
  /// components are disjoint from the components of every node chosen
  /// so far is an independent subproblem ("can it anchor a closed,
  /// cycle-free assignment?") solved once and cached by node id.
  /// Disabled automatically when `escape` is set.
  bool use_memo = true;
  /// Precomputed condensation to share across argument positions; when
  /// null (and use_scc or use_memo is set) it is computed on the fly.
  const SccAnalysis* scc = nullptr;
};

/// Outcome of CheckSubsetCondition.
struct SubsetResult {
  Safety verdict = Safety::kUndecided;
  /// Why the search stopped early (kNone unless verdict ==
  /// kUndecided): step budget, deadline, or cancellation.
  StopReason stop_reason = StopReason::kNone;
  /// Counterexample graph when verdict == kUnsafe.
  std::optional<AndGraph> witness;
  /// Complete AND-graphs examined.
  uint64_t graphs_checked = 0;
  /// DFS steps consumed.
  uint64_t steps = 0;
  /// Delegations answered from the memo table.
  uint64_t memo_hits = 0;
  /// Delegations that ran a fresh fragment search.
  uint64_t memo_misses = 0;
  /// Verdicts (whole-search or per-fragment) decided by the SCC
  /// condensation without enumeration.
  uint64_t scc_short_circuits = 0;
};

/// Decides the subset condition of Theorems 3/4 for the argument-position
/// node `root`: `root` is safe iff *every* AND-graph And_H(root)
/// constructible from the live rules contains a 0-node or a forward cycle
/// free of f-nodes.
///
/// The search enumerates rule choices depth-first, looking for a
/// *counterexample* graph — one whose chosen rule bodies never mention 0
/// and whose chosen subgraph, after deleting f-nodes, has no cycle
/// through a forward edge (head-argument -> variable edge). Nodes without
/// live rules cannot appear in any complete graph, so rules mentioning
/// them are skipped (run ReduceSystem first to prune them wholesale).
///
/// Sound and, per Theorem 4, complete after ApplyEmptinessPruning.
/// Worst-case exponential in the number of nodes (the paper's Lemma 8
/// bound is per-family; the family itself can be exponential), bounded
/// by `opts.budget`. The SCC short-circuits and frontier memoization
/// (see SubsetOptions) collapse the common shapes of that blow-up;
/// both are exact, so verdicts and witness validity never depend on the
/// flags.
SubsetResult CheckSubsetCondition(const AndOrSystem& system, NodeId root,
                                  const SubsetOptions& opts = {});

/// Validates a purported counterexample graph: rooted, closed (every
/// non-terminal body member of a chosen rule is itself chosen, with a
/// live rule of that node), 0-free, and without an f-node-free forward
/// cycle. Used by tests and by callers that want to double-check
/// witnesses assembled from memoized fragments.
bool IsCounterexampleGraph(const AndOrSystem& system, const AndGraph& graph);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_SUBSET_H_
