#include "andor/system.h"

#include "util/strings.h"

namespace hornsafe {

namespace {

/// Discriminators for the node interning key.
enum KeyTag : uint64_t {
  kTagHeadArg = 1,
  kTagVariable,
  kTagBodyArg,
  kTagBodyArgAdorned,
  kTagFdChoice,
};

std::string AdornmentString(uint64_t mask, uint32_t arity) {
  std::string s;
  for (uint32_t k = 0; k < arity; ++k) s += ((mask >> k) & 1) ? 'b' : 'f';
  return s;
}

}  // namespace

size_t AndOrSystem::KeyHash::operator()(
    const std::array<uint64_t, 4>& k) const {
  size_t seed = 0;
  for (uint64_t v : k) HashCombine(seed, std::hash<uint64_t>{}(v));
  return seed;
}

size_t AndOrSystem::RuleKeyHash::operator()(
    const std::vector<NodeId>& k) const {
  size_t seed = k.size();
  for (NodeId v : k) HashCombine(seed, std::hash<uint32_t>{}(v));
  return seed;
}

AndOrSystem::AndOrSystem() {
  zero_ = AddNode(PropNode{PropNodeKind::kZero, kInvalidPredicate, 0, 0, 0,
                           kInvalidTerm, 0, 0, false});
  one_ = AddNode(PropNode{PropNodeKind::kOne, kInvalidPredicate, 0, 0, 0,
                          kInvalidTerm, 0, 0, false});
}

NodeId AndOrSystem::AddNode(PropNode node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  rules_by_head_.emplace_back();
  return id;
}

void AndOrSystem::AddRule(PropRule rule) {
  std::vector<NodeId> key;
  key.reserve(rule.body.size() + 1);
  key.push_back(rule.head);
  key.insert(key.end(), rule.body.begin(), rule.body.end());
  if (!rule_dedupe_.insert(std::move(key)).second) return;
  uint32_t idx = static_cast<uint32_t>(rules_.size());
  rules_by_head_[rule.head].push_back(idx);
  rules_.push_back(std::move(rule));
  deleted_.push_back(false);
}

void AndOrSystem::DeleteRule(size_t i) {
  if (deleted_[i]) return;
  deleted_[i] = true;
  std::vector<uint32_t>& list = rules_by_head_[rules_[i].head];
  for (size_t j = 0; j < list.size(); ++j) {
    if (list[j] == i) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(j));
      break;
    }
  }
}

const std::vector<uint32_t>& AndOrSystem::RulesFor(NodeId n) const {
  return rules_by_head_[n];
}

size_t AndOrSystem::NumLiveRules() const {
  size_t n = 0;
  for (bool d : deleted_) {
    if (!d) ++n;
  }
  return n;
}

NodeId AndOrSystem::InternKeyed(const std::array<uint64_t, 4>& key,
                                PropNode node) {
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  NodeId id = AddNode(node);
  node_index_.emplace(key, id);
  return id;
}

NodeId AndOrSystem::InternHeadArg(PredicateId pred, uint64_t adornment_mask,
                                  uint32_t position) {
  PropNode n;
  n.kind = PropNodeKind::kHeadArg;
  n.pred = pred;
  n.adornment_mask = adornment_mask;
  n.position = position;
  return InternKeyed({kTagHeadArg, (uint64_t{pred} << 32) | position,
                      adornment_mask, 0},
                     n);
}

NodeId AndOrSystem::InternVariable(uint32_t adorned_rule, TermId var) {
  PropNode n;
  n.kind = PropNodeKind::kVariable;
  n.adorned_rule = adorned_rule;
  n.var = var;
  return InternKeyed({kTagVariable, adorned_rule, var, 0}, n);
}

NodeId AndOrSystem::InternBodyArg(uint32_t occurrence, uint32_t position,
                                  PredicateId pred, uint32_t adorned_rule,
                                  bool is_f_node) {
  PropNode n;
  n.kind = PropNodeKind::kBodyArg;
  n.pred = pred;
  n.position = position;
  n.occurrence = occurrence;
  n.adorned_rule = adorned_rule;
  n.is_f_node = is_f_node;
  return InternKeyed({kTagBodyArg, (uint64_t{occurrence} << 32) | position,
                      0, 0},
                     n);
}

NodeId AndOrSystem::InternBodyArgAdorned(uint32_t occurrence,
                                         uint64_t adornment_mask,
                                         uint32_t position, PredicateId pred,
                                         uint32_t adorned_rule) {
  PropNode n;
  n.kind = PropNodeKind::kBodyArgAdorned;
  n.pred = pred;
  n.adornment_mask = adornment_mask;
  n.position = position;
  n.occurrence = occurrence;
  n.adorned_rule = adorned_rule;
  return InternKeyed({kTagBodyArgAdorned,
                      (uint64_t{occurrence} << 32) | position,
                      adornment_mask, 0},
                     n);
}

NodeId AndOrSystem::InternFdChoice(uint32_t occurrence, uint32_t position,
                                   uint32_t fd_index, PredicateId pred,
                                   uint32_t adorned_rule) {
  PropNode n;
  n.kind = PropNodeKind::kFdChoice;
  n.pred = pred;
  n.position = position;
  n.occurrence = occurrence;
  n.fd_index = fd_index;
  n.adorned_rule = adorned_rule;
  n.is_f_node = true;
  return InternKeyed({kTagFdChoice, (uint64_t{occurrence} << 32) | position,
                      fd_index, 0},
                     n);
}

NodeId AndOrSystem::FindHeadArg(PredicateId pred, uint64_t adornment_mask,
                                uint32_t position) const {
  auto it = node_index_.find({kTagHeadArg,
                              (uint64_t{pred} << 32) | position,
                              adornment_mask, 0});
  return it == node_index_.end() ? kInvalidNode : it->second;
}

NodeId AndOrSystem::FindVariable(uint32_t adorned_rule, TermId var) const {
  auto it = node_index_.find({kTagVariable, adorned_rule, var, 0});
  return it == node_index_.end() ? kInvalidNode : it->second;
}

std::string AndOrSystem::NodeName(NodeId id, const Program& program) const {
  const PropNode& n = nodes_[id];
  switch (n.kind) {
    case PropNodeKind::kZero:
      return "0";
    case PropNodeKind::kOne:
      return "1";
    case PropNodeKind::kHeadArg:
      return StrCat(program.PredicateName(n.pred), "^",
                    AdornmentString(n.adornment_mask,
                                    program.predicate(n.pred).arity),
                    ".", n.position + 1);
    case PropNodeKind::kVariable:
      return StrCat(program.terms().ToString(n.var, program.symbols()), "@",
                    n.adorned_rule);
    case PropNodeKind::kBodyArg:
      return StrCat(program.PredicateName(n.pred), "#", n.occurrence, ".",
                    n.position + 1);
    case PropNodeKind::kBodyArgAdorned:
      return StrCat(program.PredicateName(n.pred), "#", n.occurrence, "^",
                    AdornmentString(n.adornment_mask,
                                    program.predicate(n.pred).arity),
                    ".", n.position + 1);
    case PropNodeKind::kFdChoice:
      return StrCat(program.PredicateName(n.pred), "#", n.occurrence, ".",
                    n.position + 1, "~fd", n.fd_index);
  }
  return "?";
}

std::string AndOrSystem::ToString(const Program& program) const {
  std::string out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (deleted_[i]) continue;
    const PropRule& r = rules_[i];
    out += NodeName(r.head, program);
    out += " <- ";
    out += JoinMapped(r.body, ", ",
                      [&](NodeId b) { return NodeName(b, program); });
    out += "\n";
  }
  return out;
}

}  // namespace hornsafe
