#include "andor/system.h"

#include <algorithm>

#include "andor/segment.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

/// Discriminators for the node interning key.
enum KeyTag : uint64_t {
  kTagHeadArg = 1,
  kTagVariable,
  kTagBodyArg,
  kTagBodyArgAdorned,
  kTagFdChoice,
};

std::string AdornmentString(uint64_t mask, uint32_t arity) {
  std::string s;
  for (uint32_t k = 0; k < arity; ++k) s += ((mask >> k) & 1) ? 'b' : 'f';
  return s;
}

}  // namespace

size_t AndOrSystem::RuleKeyHash::operator()(
    const std::vector<NodeId>& k) const {
  size_t seed = k.size();
  for (NodeId v : k) HashCombine(seed, std::hash<uint32_t>{}(v));
  return seed;
}

AndOrSystem::AndOrSystem() {
  zero_ = AddNode(PropNode{PropNodeKind::kZero, kInvalidPredicate, 0, 0, 0,
                           kInvalidTerm, 0, 0, false});
  one_ = AddNode(PropNode{PropNodeKind::kOne, kInvalidPredicate, 0, 0, 0,
                          kInvalidTerm, 0, 0, false});
}

NodeId AndOrSystem::AddNode(PropNode node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  rules_by_head_.emplace_back();
  return id;
}

void AndOrSystem::AddRule(PropRule rule) {
  std::vector<NodeId> key;
  key.reserve(rule.body.size() + 1);
  key.push_back(rule.head);
  key.insert(key.end(), rule.body.begin(), rule.body.end());
  if (!rule_dedupe_.insert(std::move(key)).second) return;
  uint32_t idx = static_cast<uint32_t>(rules_.size());
  rules_by_head_[rule.head].push_back(idx);
  rules_.push_back(std::move(rule));
  deleted_.push_back(false);
}

void AndOrSystem::DeleteRule(size_t i) {
  if (deleted_[i]) return;
  deleted_[i] = true;
  std::vector<uint32_t>& list = rules_by_head_[rules_[i].head];
  for (size_t j = 0; j < list.size(); ++j) {
    if (list[j] == i) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(j));
      break;
    }
  }
}

const std::vector<uint32_t>& AndOrSystem::RulesFor(NodeId n) const {
  return rules_by_head_[n];
}

size_t AndOrSystem::NumLiveRules() const {
  size_t n = 0;
  for (bool d : deleted_) {
    if (!d) ++n;
  }
  return n;
}

NodeId AndOrSystem::InternKeyed(const std::array<uint64_t, 4>& key,
                                PropNode node) {
  if (const NodeId* found = node_index_.Find(key)) return *found;
  NodeId id = AddNode(node);
  node_index_.Insert(key, id);
  return id;
}

NodeId AndOrSystem::InternHeadArg(PredicateId pred, uint64_t adornment_mask,
                                  uint32_t position) {
  PropNode n;
  n.kind = PropNodeKind::kHeadArg;
  n.pred = pred;
  n.adornment_mask = adornment_mask;
  n.position = position;
  return InternKeyed({kTagHeadArg, (uint64_t{pred} << 32) | position,
                      adornment_mask, 0},
                     n);
}

NodeId AndOrSystem::InternVariable(uint32_t adorned_rule, TermId var) {
  PropNode n;
  n.kind = PropNodeKind::kVariable;
  n.adorned_rule = adorned_rule;
  n.var = var;
  return InternKeyed({kTagVariable, adorned_rule, var, 0}, n);
}

NodeId AndOrSystem::InternBodyArg(uint32_t occurrence, uint32_t position,
                                  PredicateId pred, uint32_t adorned_rule,
                                  bool is_f_node) {
  PropNode n;
  n.kind = PropNodeKind::kBodyArg;
  n.pred = pred;
  n.position = position;
  n.occurrence = occurrence;
  n.adorned_rule = adorned_rule;
  n.is_f_node = is_f_node;
  return InternKeyed({kTagBodyArg, (uint64_t{occurrence} << 32) | position,
                      0, 0},
                     n);
}

NodeId AndOrSystem::InternBodyArgAdorned(uint32_t occurrence,
                                         uint64_t adornment_mask,
                                         uint32_t position, PredicateId pred,
                                         uint32_t adorned_rule) {
  PropNode n;
  n.kind = PropNodeKind::kBodyArgAdorned;
  n.pred = pred;
  n.adornment_mask = adornment_mask;
  n.position = position;
  n.occurrence = occurrence;
  n.adorned_rule = adorned_rule;
  return InternKeyed({kTagBodyArgAdorned,
                      (uint64_t{occurrence} << 32) | position,
                      adornment_mask, 0},
                     n);
}

NodeId AndOrSystem::InternFdChoice(uint32_t occurrence, uint32_t position,
                                   uint32_t fd_index, PredicateId pred,
                                   uint32_t adorned_rule) {
  PropNode n;
  n.kind = PropNodeKind::kFdChoice;
  n.pred = pred;
  n.position = position;
  n.occurrence = occurrence;
  n.fd_index = fd_index;
  n.adorned_rule = adorned_rule;
  n.is_f_node = true;
  return InternKeyed({kTagFdChoice, (uint64_t{occurrence} << 32) | position,
                      fd_index, 0},
                     n);
}

bool AndOrSystem::GraftSegment(const NodeTableSegment& seg,
                               const SegmentGraftContext& ctx) {
  if (ctx.adorned == nullptr || ctx.pred_of_slot == nullptr) return false;
  if (seg.num_adorned_rules != ctx.ar_count ||
      seg.num_occurrences != ctx.occ_count ||
      seg.num_pred_slots != ctx.pred_of_slot->size() ||
      static_cast<size_t>(ctx.ar_begin) + ctx.ar_count >
          ctx.adorned->rules.size()) {
    return false;
  }

  // Validate every relocation before touching the table: a rejected
  // graft must leave the system byte-identical to before the call.
  size_t indexed_nodes = 0;
  for (const SegmentNode& sn : seg.nodes) {
    if (sn.pred_slot >= 0 &&
        static_cast<size_t>(sn.pred_slot) >= ctx.pred_of_slot->size()) {
      return false;
    }
    switch (sn.kind) {
      case PropNodeKind::kZero:
      case PropNodeKind::kOne:
        return false;
      case PropNodeKind::kHeadArg:
        if (sn.pred_slot < 0) return false;
        ++indexed_nodes;
        break;
      case PropNodeKind::kVariable: {
        if (sn.ar_delta >= ctx.ar_count) return false;
        const AdornedRule& ar =
            ctx.adorned->rules[ctx.ar_begin + sn.ar_delta];
        if (sn.var_occ == -1) {
          if (sn.var_pos >= ar.head.args.size()) return false;
        } else if (sn.var_occ >= 0) {
          if (static_cast<size_t>(sn.var_occ) >= ar.body.size() ||
              sn.var_pos >= ar.body[sn.var_occ].lit.args.size()) {
            return false;
          }
        } else {
          return false;
        }
        ++indexed_nodes;
        break;
      }
      case PropNodeKind::kBodyArg:
      case PropNodeKind::kBodyArgAdorned:
      case PropNodeKind::kFdChoice:
        if (sn.pred_slot < 0 || sn.ar_delta >= ctx.ar_count ||
            sn.occ_delta >= ctx.occ_count) {
          return false;
        }
        break;
    }
  }
  for (const SegmentRule& sr : seg.rules) {
    if (sr.ar_delta >= ctx.ar_count) return false;
    if (sr.head >= 2 && sr.head - 2 >= seg.nodes.size()) return false;
    for (uint32_t ref : sr.body) {
      if (ref >= 2 && ref - 2 >= seg.nodes.size()) return false;
    }
  }

  const NodeId base = static_cast<NodeId>(nodes_.size());
  // Grow geometrically, never to the exact fit: consecutive grafts
  // would otherwise reallocate (and copy) the whole table once per
  // component, turning the append back into O(program) memmove.
  auto grow = [](auto& v, size_t extra) {
    if (v.capacity() < v.size() + extra) {
      v.reserve(std::max(v.size() + extra, v.capacity() * 2));
    }
  };
  grow(nodes_, seg.nodes.size());
  grow(rules_by_head_, seg.nodes.size());
  grow(rules_, seg.rules.size());
  grow(deleted_, seg.rules.size());
  node_index_.Reserve(node_index_.size() + indexed_nodes);

  for (const SegmentNode& sn : seg.nodes) {
    PropNode n;
    n.kind = sn.kind;
    n.is_f_node = sn.is_f_node;
    n.adornment_mask = sn.adornment_mask;
    n.position = sn.position;
    n.fd_index = sn.fd_index;
    if (sn.pred_slot >= 0) n.pred = (*ctx.pred_of_slot)[sn.pred_slot];
    switch (sn.kind) {
      case PropNodeKind::kZero:
      case PropNodeKind::kOne:
      case PropNodeKind::kHeadArg:
        // kHeadArg is interned program-wide: adorned_rule stays 0.
        break;
      case PropNodeKind::kVariable: {
        n.adorned_rule = ctx.ar_begin + sn.ar_delta;
        const AdornedRule& ar = ctx.adorned->rules[n.adorned_rule];
        n.var = sn.var_occ == -1
                    ? ar.head.args[sn.var_pos]
                    : ar.body[sn.var_occ].lit.args[sn.var_pos];
        break;
      }
      case PropNodeKind::kBodyArg:
      case PropNodeKind::kBodyArgAdorned:
      case PropNodeKind::kFdChoice:
        n.adorned_rule = ctx.ar_begin + sn.ar_delta;
        n.occurrence = ctx.occ_base + sn.occ_delta;
        break;
    }
    NodeId id = AddNode(n);
    // Re-register the externally queried intern keys (FindHeadArg roots
    // the searches; FindVariable serves finiteness/termination). Done
    // eagerly: lazy registration would race with concurrent readers of
    // a published snapshot. The other kinds are never looked up.
    if (n.kind == PropNodeKind::kHeadArg) {
      node_index_.Insert({kTagHeadArg, (uint64_t{n.pred} << 32) | n.position,
                          n.adornment_mask, 0},
                         id);
    } else if (n.kind == PropNodeKind::kVariable) {
      node_index_.Insert({kTagVariable, n.adorned_rule, n.var, 0}, id);
    }
  }

  for (const SegmentRule& sr : seg.rules) {
    auto decode = [&](uint32_t ref) -> NodeId {
      if (ref == 0) return zero_;
      if (ref == 1) return one_;
      return base + (ref - 2);
    };
    PropRule r;
    r.head = decode(sr.head);
    r.body.reserve(sr.body.size());
    for (uint32_t ref : sr.body) r.body.push_back(decode(ref));
    r.source_adorned_rule = ctx.ar_begin + sr.ar_delta;
    uint32_t idx = static_cast<uint32_t>(rules_.size());
    // Deleted rules keep their slot but never enter RulesFor — the
    // exact state DeleteRule leaves behind.
    if (!sr.deleted) rules_by_head_[r.head].push_back(idx);
    rules_.push_back(std::move(r));
    deleted_.push_back(sr.deleted);
  }
  return true;
}

NodeId AndOrSystem::FindHeadArg(PredicateId pred, uint64_t adornment_mask,
                                uint32_t position) const {
  const NodeId* found = node_index_.Find(
      {kTagHeadArg, (uint64_t{pred} << 32) | position, adornment_mask, 0});
  return found == nullptr ? kInvalidNode : *found;
}

NodeId AndOrSystem::FindVariable(uint32_t adorned_rule, TermId var) const {
  const NodeId* found =
      node_index_.Find({kTagVariable, adorned_rule, var, 0});
  return found == nullptr ? kInvalidNode : *found;
}

std::string AndOrSystem::NodeName(NodeId id, const Program& program) const {
  const PropNode& n = nodes_[id];
  switch (n.kind) {
    case PropNodeKind::kZero:
      return "0";
    case PropNodeKind::kOne:
      return "1";
    case PropNodeKind::kHeadArg:
      return StrCat(program.PredicateName(n.pred), "^",
                    AdornmentString(n.adornment_mask,
                                    program.predicate(n.pred).arity),
                    ".", n.position + 1);
    case PropNodeKind::kVariable:
      return StrCat(program.terms().ToString(n.var, program.symbols()), "@",
                    n.adorned_rule);
    case PropNodeKind::kBodyArg:
      return StrCat(program.PredicateName(n.pred), "#", n.occurrence, ".",
                    n.position + 1);
    case PropNodeKind::kBodyArgAdorned:
      return StrCat(program.PredicateName(n.pred), "#", n.occurrence, "^",
                    AdornmentString(n.adornment_mask,
                                    program.predicate(n.pred).arity),
                    ".", n.position + 1);
    case PropNodeKind::kFdChoice:
      return StrCat(program.PredicateName(n.pred), "#", n.occurrence, ".",
                    n.position + 1, "~fd", n.fd_index);
  }
  return "?";
}

std::string AndOrSystem::ToString(const Program& program) const {
  std::string out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (deleted_[i]) continue;
    const PropRule& r = rules_[i];
    out += NodeName(r.head, program);
    out += " <- ";
    out += JoinMapped(r.body, ", ",
                      [&](NodeId b) { return NodeName(b, program); });
    out += "\n";
  }
  return out;
}

}  // namespace hornsafe
