#include "andor/scc.h"

#include <algorithm>

namespace hornsafe {

namespace {

bool IsTerminal(const AndOrSystem& system, NodeId n) {
  PropNodeKind k = system.node(n).kind;
  return k == PropNodeKind::kZero || k == PropNodeKind::kOne;
}

/// Iterative Tarjan over an adjacency list restricted to the nodes with
/// `in_graph[v]` set. Components are numbered in pop order, so every
/// edge leaving a component points at a smaller component id (reverse
/// topological numbering). Returns the number of components.
int32_t TarjanScc(const std::vector<std::vector<NodeId>>& adj,
                  const std::vector<char>& in_graph,
                  std::vector<int32_t>* comp) {
  const size_t n = adj.size();
  comp->assign(n, -1);
  std::vector<int32_t> index(n, -1);
  std::vector<int32_t> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  int32_t next_index = 0;
  int32_t num_components = 0;

  // Explicit DFS frame: node + position within its adjacency list.
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (!in_graph[root] || index[root] >= 0) continue;
    frames.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      NodeId v = f.v;
      if (f.child < adj[v].size()) {
        NodeId w = adj[v][f.child++];
        if (!in_graph[w]) continue;
        if (index[w] < 0) {
          frames.push_back({w, 0});
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          (*comp)[w] = num_components;
          if (w == v) break;
        }
        ++num_components;
      }
      frames.pop_back();
      if (!frames.empty()) {
        NodeId parent = frames.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  return num_components;
}

}  // namespace

std::optional<SccSlice> SccAnalysis::ComputeSlice(const AndOrSystem& system,
                                                  uint32_t node_begin,
                                                  uint32_t node_end,
                                                  uint32_t rule_begin,
                                                  uint32_t rule_end) {
  if (node_end < node_begin || rule_end < rule_begin ||
      node_end > system.nodes().size() || rule_end > system.num_rules()) {
    return std::nullopt;
  }
  SccSlice out;
  const uint32_t n = node_end - node_begin;
  const uint32_t num_rules = rule_end - rule_begin;
  out.num_nodes = n;
  out.num_rules = num_rules;

  auto in_span = [&](NodeId v) { return v >= node_begin && v < node_end; };

  // Closure check: the slice is the restriction of the global analysis
  // only when no rule edge crosses the range boundary (terminals
  // excepted — they belong to no slice and are handled symbolically).
  for (uint32_t ri = rule_begin; ri < rule_end; ++ri) {
    const PropRule& r = system.rule(ri);
    if (!IsTerminal(system, r.head) && !in_span(r.head)) return std::nullopt;
    for (NodeId b : r.body) {
      if (!IsTerminal(system, b) && !in_span(b)) return std::nullopt;
    }
  }
  for (NodeId v = node_begin; v < node_end; ++v) {
    if (IsTerminal(system, v)) continue;
    for (uint32_t ri : system.RulesFor(v)) {
      if (ri < rule_begin || ri >= rule_end) return std::nullopt;
    }
  }

  // 1. Capability greatest fixpoint: a node can appear in a 0-free
  // completion iff some live rule for it avoids the 0-node and has
  // all-capable non-terminal members. The fixpoint of a closed range
  // only reads capabilities inside the range, so the local fixpoint is
  // exactly the global one restricted.
  out.capable.assign(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = node_begin; v < node_end; ++v) {
      if (!out.capable[v - node_begin] || IsTerminal(system, v)) continue;
      bool has_usable = false;
      for (uint32_t ri : system.RulesFor(v)) {
        const PropRule& r = system.rule(ri);
        bool usable = true;
        for (NodeId b : r.body) {
          if (b == system.zero() ||
              (!IsTerminal(system, b) && !out.capable[b - node_begin])) {
            usable = false;
            break;
          }
        }
        if (usable) {
          has_usable = true;
          break;
        }
      }
      if (!has_usable) {
        out.capable[v - node_begin] = 0;
        changed = true;
      }
    }
  }

  // 2. Per-rule usability under the final capability map.
  out.rule_usable.assign(num_rules, 0);
  for (NodeId v = node_begin; v < node_end; ++v) {
    if (IsTerminal(system, v)) continue;
    for (uint32_t ri : system.RulesFor(v)) {
      const PropRule& r = system.rule(ri);
      bool usable = true;
      for (NodeId b : r.body) {
        if (b == system.zero() ||
            (!IsTerminal(system, b) && !out.capable[b - node_begin])) {
          usable = false;
          break;
        }
      }
      out.rule_usable[ri - rule_begin] = usable ? 1 : 0;
    }
  }

  // 3. Union (demand) graph over capable non-terminal nodes, in local
  // coordinates: an edge per usable-rule body membership. F-nodes
  // participate — they carry demand even though counted cycles never
  // pass through them.
  std::vector<char> in_graph(n, 0);
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId v = node_begin; v < node_end; ++v) {
    if (IsTerminal(system, v) || !out.capable[v - node_begin]) continue;
    const uint32_t lv = v - node_begin;
    in_graph[lv] = 1;
    for (uint32_t ri : system.RulesFor(v)) {
      if (!out.rule_usable[ri - rule_begin]) continue;
      for (NodeId b : system.rule(ri).body) {
        if (IsTerminal(system, b)) continue;
        adj[lv].push_back(b - node_begin);
      }
    }
  }
  out.num_sccs = TarjanScc(adj, in_graph, &out.scc_local);

  // 4. F-free sub-SCCs: same edges minus f-node endpoints. A counted
  // cycle (forward edge, no f-node) is possible exactly inside an
  // f-free SCC containing a head-argument -> variable edge.
  std::vector<char> in_ffree(n, 0);
  for (uint32_t lv = 0; lv < n; ++lv) {
    in_ffree[lv] = in_graph[lv] && !system.node(node_begin + lv).is_f_node;
  }
  std::vector<int32_t> ffs_id;
  TarjanScc(adj, in_ffree, &ffs_id);

  std::vector<char> cycle_possible(out.num_sccs, 0);
  for (NodeId u = node_begin; u < node_end; ++u) {
    const uint32_t lu = u - node_begin;
    if (!in_ffree[lu] || system.node(u).kind != PropNodeKind::kHeadArg) {
      continue;
    }
    for (uint32_t ri : system.RulesFor(u)) {
      if (!out.rule_usable[ri - rule_begin]) continue;
      for (NodeId v : system.rule(ri).body) {
        if (IsTerminal(system, v)) continue;
        const uint32_t lv = v - node_begin;
        if (!in_ffree[lv]) continue;
        if (system.node(v).kind != PropNodeKind::kVariable) continue;
        if (ffs_id[lu] == ffs_id[lv]) cycle_possible[out.scc_local[lu]] = 1;
      }
    }
  }

  // 5. Propagate cycle possibility up the condensation. Components are
  // numbered in reverse topological order (edges point at smaller ids),
  // so one increasing sweep sees every successor first.
  std::vector<std::vector<NodeId>> scc_members(out.num_sccs);
  for (uint32_t lv = 0; lv < n; ++lv) {
    if (out.scc_local[lv] >= 0) scc_members[out.scc_local[lv]].push_back(lv);
  }
  std::vector<char> reach_cycle = cycle_possible;
  for (int32_t s = 0; s < out.num_sccs; ++s) {
    if (reach_cycle[s]) continue;
    for (NodeId lv : scc_members[s]) {
      for (NodeId lw : adj[lv]) {
        if (!in_graph[lw]) continue;
        int32_t t = out.scc_local[lw];
        if (t != s && reach_cycle[t]) {
          reach_cycle[s] = 1;
          break;
        }
      }
      if (reach_cycle[s]) break;
    }
  }
  out.cycle_reachable.assign(n, 0);
  for (uint32_t lv = 0; lv < n; ++lv) {
    if (out.scc_local[lv] >= 0) {
      out.cycle_reachable[lv] = reach_cycle[out.scc_local[lv]];
    }
  }

  // 6. Per-SCC reachability bitsets for the search's independence
  // frontier. The slice always materialises its rows when it is narrow
  // enough; Stitch re-applies the bound against the *global* SCC count
  // and drops the rows when the stitched total is too wide.
  if (out.num_sccs > 0 && out.num_sccs <= kMaxSccsForReach) {
    out.reach_blocks = (static_cast<size_t>(out.num_sccs) + 63) / 64;
    out.reach.assign(static_cast<size_t>(out.num_sccs) * out.reach_blocks,
                     0);
    for (int32_t s = 0; s < out.num_sccs; ++s) {
      uint64_t* row = &out.reach[static_cast<size_t>(s) * out.reach_blocks];
      row[s / 64] |= uint64_t{1} << (s % 64);
      for (NodeId lv : scc_members[s]) {
        for (NodeId lw : adj[lv]) {
          if (!in_graph[lw]) continue;
          int32_t t = out.scc_local[lw];
          if (t == s) continue;
          const uint64_t* trow =
              &out.reach[static_cast<size_t>(t) * out.reach_blocks];
          for (size_t i = 0; i < out.reach_blocks; ++i) row[i] |= trow[i];
        }
      }
    }
  }
  return out;
}

std::optional<SccAnalysis> SccAnalysis::Stitch(
    const AndOrSystem& system, const std::vector<const SccSlice*>& pieces) {
  const size_t n = system.nodes().size();
  const size_t num_rules = system.num_rules();

  size_t node_sum = 0;
  size_t rule_sum = 0;
  int64_t total_sccs = 0;
  for (const SccSlice* p : pieces) {
    if (p == nullptr) return std::nullopt;
    if (p->capable.size() != p->num_nodes ||
        p->cycle_reachable.size() != p->num_nodes ||
        p->scc_local.size() != p->num_nodes ||
        p->rule_usable.size() != p->num_rules || p->num_sccs < 0) {
      return std::nullopt;
    }
    node_sum += p->num_nodes;
    rule_sum += p->num_rules;
    total_sccs += p->num_sccs;
  }
  if (rule_sum != num_rules || node_sum > n) return std::nullopt;
  const size_t node_start = n - node_sum;
  // Pieces tile the whole node table, or everything but the two
  // terminals (which every range analysis treats symbolically).
  if (node_start != 0 && node_start != 2) return std::nullopt;

  SccAnalysis out;
  out.capable_.assign(n, 1);
  out.rule_usable_.assign(num_rules, 0);
  out.cycle_reachable_.assign(n, 0);
  out.scc_id_.assign(n, -1);
  out.num_sccs_ = static_cast<int32_t>(total_sccs);

  const bool want_reach = total_sccs > 0 && total_sccs <= kMaxSccsForReach;
  if (want_reach) {
    // Each piece is at most as wide as the total, so ComputeSlice must
    // have materialised its rows; a piece without them did not come
    // from ComputeSlice and cannot be stitched safely.
    for (const SccSlice* p : pieces) {
      if (p->num_sccs == 0) continue;
      if (p->reach_blocks == 0 ||
          p->reach.size() !=
              static_cast<size_t>(p->num_sccs) * p->reach_blocks) {
        return std::nullopt;
      }
    }
    out.reach_blocks_ = (static_cast<size_t>(total_sccs) + 63) / 64;
    out.reach_.assign(static_cast<size_t>(total_sccs) * out.reach_blocks_,
                      0);
  }

  size_t nb = node_start;
  size_t rb = 0;
  int32_t scc_base = 0;
  for (const SccSlice* p : pieces) {
    for (uint32_t i = 0; i < p->num_nodes; ++i) {
      out.capable_[nb + i] = p->capable[i];
      out.cycle_reachable_[nb + i] = p->cycle_reachable[i];
      out.scc_id_[nb + i] =
          p->scc_local[i] < 0 ? -1 : p->scc_local[i] + scc_base;
    }
    for (uint32_t i = 0; i < p->num_rules; ++i) {
      out.rule_usable_[rb + i] = p->rule_usable[i];
    }
    if (want_reach && p->num_sccs > 0) {
      // Reachability never crosses slice boundaries (ranges are closed),
      // so the global matrix is block-diagonal: each local row lands
      // bit-shifted at its slice's SCC base.
      const size_t bo = static_cast<size_t>(scc_base) % 64;
      const size_t w0 = static_cast<size_t>(scc_base) / 64;
      for (int32_t s = 0; s < p->num_sccs; ++s) {
        const uint64_t* lrow =
            &p->reach[static_cast<size_t>(s) * p->reach_blocks];
        uint64_t* grow = &out.reach_[static_cast<size_t>(scc_base + s) *
                                     out.reach_blocks_];
        for (size_t i = 0; i < p->reach_blocks; ++i) {
          if (w0 + i < out.reach_blocks_) grow[w0 + i] |= lrow[i] << bo;
          if (bo != 0 && w0 + i + 1 < out.reach_blocks_) {
            grow[w0 + i + 1] |= lrow[i] >> (64 - bo);
          }
        }
      }
    }
    nb += p->num_nodes;
    rb += p->num_rules;
    scc_base += p->num_sccs;
  }
  return out;
}

SccAnalysis SccAnalysis::Compute(const AndOrSystem& system) {
  // One full-range slice, stitched: trivially closed, so both steps
  // always succeed, and the warm segment path shares every line of
  // analysis code with this cold path.
  std::optional<SccSlice> slice = SccAnalysis::ComputeSlice(
      system, 0, static_cast<uint32_t>(system.nodes().size()), 0,
      static_cast<uint32_t>(system.num_rules()));
  std::vector<const SccSlice*> pieces{&*slice};
  std::optional<SccAnalysis> out = SccAnalysis::Stitch(system, pieces);
  return std::move(*out);
}

}  // namespace hornsafe
