#include "andor/scc.h"

#include <algorithm>

namespace hornsafe {

namespace {

bool IsTerminal(const AndOrSystem& system, NodeId n) {
  PropNodeKind k = system.node(n).kind;
  return k == PropNodeKind::kZero || k == PropNodeKind::kOne;
}

/// Iterative Tarjan over an adjacency list restricted to the nodes with
/// `in_graph[v]` set. Components are numbered in pop order, so every
/// edge leaving a component points at a smaller component id (reverse
/// topological numbering). Returns the number of components.
int32_t TarjanScc(const std::vector<std::vector<NodeId>>& adj,
                  const std::vector<char>& in_graph,
                  std::vector<int32_t>* comp) {
  const size_t n = adj.size();
  comp->assign(n, -1);
  std::vector<int32_t> index(n, -1);
  std::vector<int32_t> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  int32_t next_index = 0;
  int32_t num_components = 0;

  // Explicit DFS frame: node + position within its adjacency list.
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (!in_graph[root] || index[root] >= 0) continue;
    frames.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      NodeId v = f.v;
      if (f.child < adj[v].size()) {
        NodeId w = adj[v][f.child++];
        if (!in_graph[w]) continue;
        if (index[w] < 0) {
          frames.push_back({w, 0});
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          (*comp)[w] = num_components;
          if (w == v) break;
        }
        ++num_components;
      }
      frames.pop_back();
      if (!frames.empty()) {
        NodeId parent = frames.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  return num_components;
}

}  // namespace

SccAnalysis SccAnalysis::Compute(const AndOrSystem& system) {
  SccAnalysis out;
  const size_t n = system.nodes().size();
  const size_t num_rules = system.num_rules();

  // 1. Capability greatest fixpoint: a node can appear in a 0-free
  // completion iff some live rule for it avoids the 0-node and has
  // all-capable non-terminal members.
  out.capable_.assign(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < n; ++v) {
      if (!out.capable_[v] || IsTerminal(system, v)) continue;
      bool has_usable = false;
      for (uint32_t ri : system.RulesFor(v)) {
        const PropRule& r = system.rule(ri);
        bool usable = true;
        for (NodeId b : r.body) {
          if (b == system.zero() ||
              (!IsTerminal(system, b) && !out.capable_[b])) {
            usable = false;
            break;
          }
        }
        if (usable) {
          has_usable = true;
          break;
        }
      }
      if (!has_usable) {
        out.capable_[v] = 0;
        changed = true;
      }
    }
  }

  // 2. Per-rule usability under the final capability map.
  out.rule_usable_.assign(num_rules, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (IsTerminal(system, v)) continue;
    for (uint32_t ri : system.RulesFor(v)) {
      const PropRule& r = system.rule(ri);
      bool usable = true;
      for (NodeId b : r.body) {
        if (b == system.zero() ||
            (!IsTerminal(system, b) && !out.capable_[b])) {
          usable = false;
          break;
        }
      }
      out.rule_usable_[ri] = usable ? 1 : 0;
    }
  }

  // 3. Union (demand) graph over capable non-terminal nodes: an edge
  // per usable-rule body membership. F-nodes participate — they carry
  // demand even though counted cycles never pass through them.
  std::vector<char> in_graph(n, 0);
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId v = 0; v < n; ++v) {
    if (IsTerminal(system, v) || !out.capable_[v]) continue;
    in_graph[v] = 1;
    for (uint32_t ri : system.RulesFor(v)) {
      if (!out.rule_usable_[ri]) continue;
      for (NodeId b : system.rule(ri).body) {
        if (IsTerminal(system, b)) continue;
        adj[v].push_back(b);
      }
    }
  }
  out.scc_id_.assign(n, -1);
  out.num_sccs_ = TarjanScc(adj, in_graph, &out.scc_id_);

  // 4. F-free sub-SCCs: same edges minus f-node endpoints. A counted
  // cycle (forward edge, no f-node) is possible exactly inside an
  // f-free SCC containing a head-argument -> variable edge.
  std::vector<char> in_ffree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    in_ffree[v] = in_graph[v] && !system.node(v).is_f_node;
  }
  std::vector<int32_t> ffs_id;
  TarjanScc(adj, in_ffree, &ffs_id);

  std::vector<char> cycle_possible(out.num_sccs_, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (!in_ffree[u] || system.node(u).kind != PropNodeKind::kHeadArg) {
      continue;
    }
    for (uint32_t ri : system.RulesFor(u)) {
      if (!out.rule_usable_[ri]) continue;
      for (NodeId v : system.rule(ri).body) {
        if (IsTerminal(system, v) || !in_ffree[v]) continue;
        if (system.node(v).kind != PropNodeKind::kVariable) continue;
        if (ffs_id[u] == ffs_id[v]) cycle_possible[out.scc_id_[u]] = 1;
      }
    }
  }

  // 5. Propagate cycle possibility up the condensation. Components are
  // numbered in reverse topological order (edges point at smaller ids),
  // so one increasing sweep sees every successor first.
  std::vector<std::vector<NodeId>> scc_members(out.num_sccs_);
  for (NodeId v = 0; v < n; ++v) {
    if (out.scc_id_[v] >= 0) scc_members[out.scc_id_[v]].push_back(v);
  }
  std::vector<char> reach_cycle = cycle_possible;
  for (int32_t s = 0; s < out.num_sccs_; ++s) {
    if (reach_cycle[s]) continue;
    for (NodeId v : scc_members[s]) {
      for (NodeId w : adj[v]) {
        if (!in_graph[w]) continue;
        int32_t t = out.scc_id_[w];
        if (t != s && reach_cycle[t]) {
          reach_cycle[s] = 1;
          break;
        }
      }
      if (reach_cycle[s]) break;
    }
  }
  out.cycle_reachable_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (out.scc_id_[v] >= 0) {
      out.cycle_reachable_[v] = reach_cycle[out.scc_id_[v]];
    }
  }

  // 6. Per-SCC reachability bitsets for the search's independence
  // frontier, bounded to keep the quadratic table small.
  if (out.num_sccs_ > 0 && out.num_sccs_ <= kMaxSccsForReach) {
    out.reach_blocks_ = (static_cast<size_t>(out.num_sccs_) + 63) / 64;
    out.reach_.assign(static_cast<size_t>(out.num_sccs_) * out.reach_blocks_,
                      0);
    for (int32_t s = 0; s < out.num_sccs_; ++s) {
      uint64_t* row = &out.reach_[static_cast<size_t>(s) * out.reach_blocks_];
      row[s / 64] |= uint64_t{1} << (s % 64);
      for (NodeId v : scc_members[s]) {
        for (NodeId w : adj[v]) {
          if (!in_graph[w]) continue;
          int32_t t = out.scc_id_[w];
          if (t == s) continue;
          const uint64_t* trow =
              &out.reach_[static_cast<size_t>(t) * out.reach_blocks_];
          for (size_t i = 0; i < out.reach_blocks_; ++i) row[i] |= trow[i];
        }
      }
    }
  }
  return out;
}

}  // namespace hornsafe
