#include "andor/build.h"

#include <algorithm>

#include "fd/fd.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

/// Builder for one call to BuildAndOrSystem.
class SystemBuilder {
 public:
  SystemBuilder(const Program& program, const AdornedProgram& adorned,
                const BuildOptions& opts)
      : program_(program), adorned_(adorned), opts_(opts) {}

  Result<AndOrSystem> Run() {
    for (const AdornedRule& ar : adorned_.rules) {
      ProcessRule(ar);
    }
    return std::move(system_);
  }

 private:
  NodeId Var(const AdornedRule& ar, TermId v) {
    return system_.InternVariable(ar.adorned_index, v);
  }

  NodeId BodyArg(const AdornedRule& ar, const BodyOccurrence& occ,
                 uint32_t k) {
    return system_.InternBodyArg(
        occ.occurrence_id, k, occ.lit.pred, ar.adorned_index,
        occ.kind == PredicateKind::kInfiniteBase);
  }

  void ProcessRule(const AdornedRule& ar) {
    Step1HeadArgs(ar);
    Step2Variables(ar);
    for (const BodyOccurrence& occ : ar.body) {
      if (occ.kind == PredicateKind::kDerived) {
        Step3DerivedOccurrence(ar, occ);
      } else if (occ.kind == PredicateKind::kInfiniteBase) {
        Step4InfiniteOccurrence(ar, occ);
      }
      // Finite-base occurrences generate no nodes: they only ground
      // variables in step 2.
    }
  }

  void Step1HeadArgs(const AdornedRule& ar) {
    for (uint32_t k = 0; k < ar.head.args.size(); ++k) {
      NodeId head =
          system_.InternHeadArg(ar.head_pred, ar.adornment.bound_mask, k);
      if (ar.adornment.IsBound(k)) {
        system_.AddRule(PropRule{head, {system_.zero()}, ar.adorned_index});
      } else {
        system_.AddRule(
            PropRule{head, {Var(ar, ar.head.args[k])}, ar.adorned_index});
      }
    }
  }

  void Step2Variables(const AdornedRule& ar) {
    // Distinct variables of the rule, in first-occurrence order.
    std::vector<TermId> vars;
    auto note = [&](TermId v) {
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    };
    for (TermId a : ar.head.args) note(a);
    for (const BodyOccurrence& occ : ar.body) {
      for (TermId a : occ.lit.args) note(a);
    }

    for (TermId v : vars) {
      NodeId var_node = Var(ar, v);
      // Bound head positions and finite-base occurrences ground the
      // variable outright.
      bool grounded = false;
      for (uint32_t k = 0; k < ar.head.args.size(); ++k) {
        if (ar.head.args[k] == v && ar.adornment.IsBound(k)) {
          grounded = true;
        }
      }
      for (const BodyOccurrence& occ : ar.body) {
        if (occ.kind != PredicateKind::kFiniteBase) continue;
        if (std::find(occ.lit.args.begin(), occ.lit.args.end(), v) !=
            occ.lit.args.end()) {
          grounded = true;
        }
      }
      if (grounded) {
        system_.AddRule(
            PropRule{var_node, {system_.zero()}, ar.adorned_index});
        continue;
      }
      // C_X: every derived/infinite body argument the variable occurs in.
      std::vector<NodeId> conjunct;
      for (const BodyOccurrence& occ : ar.body) {
        if (occ.kind == PredicateKind::kFiniteBase) continue;
        for (uint32_t k = 0; k < occ.lit.args.size(); ++k) {
          if (occ.lit.args[k] == v) {
            conjunct.push_back(BodyArg(ar, occ, k));
          }
        }
      }
      if (conjunct.empty()) {
        // The variable occurs only in free head positions: it ranges over
        // the entire (infinite) domain.
        system_.AddRule(
            PropRule{var_node, {system_.one()}, ar.adorned_index});
      } else {
        system_.AddRule(
            PropRule{var_node, std::move(conjunct), ar.adorned_index});
      }
    }
  }

  void Step3DerivedOccurrence(const AdornedRule& ar,
                              const BodyOccurrence& occ) {
    const std::vector<Adornment>& adornments =
        adornment_cache_.For(program_.terms(), occ.lit);
    for (uint32_t k = 0; k < occ.lit.args.size(); ++k) {
      NodeId arg_node = BodyArg(ar, occ, k);
      std::vector<NodeId> conjunct;
      for (const Adornment& a1 : adornments) {
        if (a1.IsBound(k)) continue;
        NodeId adorned_node = system_.InternBodyArgAdorned(
            occ.occurrence_id, a1.bound_mask, k, occ.lit.pred,
            ar.adorned_index);
        conjunct.push_back(adorned_node);
        // The strategy is inapplicable if a bound variable is unsafe.
        std::vector<TermId> bound_vars;
        for (uint32_t j = 0; j < occ.lit.args.size(); ++j) {
          if (a1.IsBound(j)) {
            TermId y = occ.lit.args[j];
            if (std::find(bound_vars.begin(), bound_vars.end(), y) ==
                bound_vars.end()) {
              bound_vars.push_back(y);
            }
          }
        }
        for (TermId y : bound_vars) {
          system_.AddRule(
              PropRule{adorned_node, {Var(ar, y)}, ar.adorned_index});
        }
        // Even with safe bindings, the callee's adorned head may be
        // unsafe.
        NodeId callee = system_.InternHeadArg(occ.lit.pred, a1.bound_mask, k);
        system_.AddRule(PropRule{adorned_node, {callee}, ar.adorned_index});
      }
      // k is free in the all-free adornment, so the conjunct is never
      // empty.
      system_.AddRule(
          PropRule{arg_node, std::move(conjunct), ar.adorned_index});
    }
  }

  /// The dependency index of a predicate, built on first use and shared
  /// by every occurrence: closures and determinant lists are memoized
  /// inside, so the 2^arity enumeration of MinimalDeterminants runs at
  /// most once per (predicate, argument).
  FdClosureIndex& FdIndexFor(PredicateId pred) {
    auto it = fd_index_.find(pred);
    if (it == fd_index_.end()) {
      it = fd_index_.emplace(pred, FdClosureIndex(program_.FdsFor(pred)))
               .first;
    }
    return it->second;
  }

  void Step4InfiniteOccurrence(const AdornedRule& ar,
                               const BodyOccurrence& occ) {
    FdClosureIndex& fds = FdIndexFor(occ.lit.pred);
    uint32_t arity = static_cast<uint32_t>(occ.lit.args.size());
    for (uint32_t k = 0; k < arity; ++k) {
      NodeId arg_node = BodyArg(ar, occ, k);
      const std::vector<AttrSet>& determinants =
          opts_.use_fd_closure ? fds.Minimal(arity, k) : fds.Declared(k);
      if (determinants.empty()) {
        // No dependency restricts this argument: unsafe leaf.
        system_.AddRule(
            PropRule{arg_node, {system_.one()}, ar.adorned_index});
        continue;
      }
      std::vector<NodeId> conjunct;
      for (uint32_t i = 0; i < determinants.size(); ++i) {
        NodeId choice = system_.InternFdChoice(
            occ.occurrence_id, k, i, occ.lit.pred, ar.adorned_index);
        conjunct.push_back(choice);
        if (determinants[i].Empty()) {
          // An empty antecedent is always applicable: the argument is
          // finite outright through this dependency.
          system_.AddRule(
              PropRule{choice, {system_.zero()}, ar.adorned_index});
          continue;
        }
        std::vector<TermId> antecedent_vars;
        for (uint32_t j : determinants[i].ToVector()) {
          TermId y = occ.lit.args[j];
          if (std::find(antecedent_vars.begin(), antecedent_vars.end(), y) ==
              antecedent_vars.end()) {
            antecedent_vars.push_back(y);
          }
        }
        for (TermId y : antecedent_vars) {
          system_.AddRule(PropRule{choice, {Var(ar, y)}, ar.adorned_index});
        }
      }
      system_.AddRule(
          PropRule{arg_node, std::move(conjunct), ar.adorned_index});
    }
  }

  const Program& program_;
  const AdornedProgram& adorned_;
  BuildOptions opts_;
  AndOrSystem system_;
  AdornmentCache adornment_cache_;
  std::unordered_map<PredicateId, FdClosureIndex> fd_index_;
};

}  // namespace

Result<AndOrSystem> BuildAndOrSystem(const Program& canonical,
                                     const AdornedProgram& adorned,
                                     const BuildOptions& opts) {
  return SystemBuilder(canonical, adorned, opts).Run();
}

}  // namespace hornsafe
