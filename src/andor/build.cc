#include "andor/build.h"

#include <algorithm>

#include "util/strings.h"

namespace hornsafe {

namespace {

/// Builder for one call to BuildAndOrSystem.
///
/// Every node acquisition and rule emission funnels through Note()/
/// Emit(), which double as the fragment recorder: processing a rule
/// fresh captures a replay template of rule-local coordinates, and
/// ReplayRule() re-resolves a captured template against a new adorned
/// rule. Replay performs the identical Intern*/AddRule sequence a fresh
/// ProcessRule would, so spliced and fresh builds are bit-identical
/// (see andor/fragment.h for the argument).
class SystemBuilder {
 public:
  SystemBuilder(const Program& program, const AdornedProgram& adorned,
                const BuildOptions& opts)
      : program_(program), adorned_(adorned), opts_(opts) {}

  Result<AndOrSystem> Run() {
    FragmentRecording* rec = opts_.recording;
    if (rec != nullptr) {
      rec->by_adorned.clear();
      rec->by_adorned.resize(adorned_.rules.size());
    }
    if (opts_.segments == nullptr) {
      ProcessAdornedRange(0, adorned_.rules.size());
      return std::move(system_);
    }

    // Segment-planned build: one component at a time. Clean components
    // graft their cached segment wholesale (nodes, rules, deleted bits
    // — no Intern*/AddRule calls at all); everything else goes through
    // the normal per-rule path, fragment splicing included. Every
    // component leaves a SegmentSpan so later stages can prune, slice
    // and seal per span.
    SegmentBuildStats* stats = opts_.segment_stats;
    size_t ai = 0;
    for (const SegmentGraft& comp : opts_.segments->components) {
      const uint32_t src_end = comp.first_rule + comp.num_rules;
      size_t aj = ai;
      uint32_t occ_base = 0;
      uint32_t occ_count = 0;
      bool occ_set = false;
      while (aj < adorned_.rules.size() &&
             adorned_.rules[aj].source_rule < src_end) {
        const AdornedRule& ar = adorned_.rules[aj];
        if (!occ_set && !ar.body.empty()) {
          occ_base = ar.body.front().occurrence_id;
          occ_set = true;
        }
        occ_count += static_cast<uint32_t>(ar.body.size());
        ++aj;
      }

      SegmentSpan span;
      span.node_begin = static_cast<uint32_t>(system_.nodes().size());
      span.rule_begin = static_cast<uint32_t>(system_.num_rules());
      span.ar_begin = static_cast<uint32_t>(ai);
      span.ar_end = static_cast<uint32_t>(aj);
      span.occ_base = occ_base;
      span.occ_count = occ_count;

      bool grafted = false;
      if (comp.segment != nullptr) {
        SegmentGraftContext ctx;
        ctx.adorned = &adorned_;
        ctx.ar_begin = static_cast<uint32_t>(ai);
        ctx.ar_count = static_cast<uint32_t>(aj - ai);
        ctx.occ_base = occ_base;
        ctx.occ_count = occ_count;
        ctx.pred_of_slot = &comp.pred_of_slot;
        grafted = system_.GraftSegment(*comp.segment, ctx);
        if (stats != nullptr && !grafted) ++stats->grafts_rejected;
      }
      if (grafted) {
        span.grafted = true;
        span.segment = comp.segment;
      } else {
        ProcessAdornedRange(ai, aj);
      }
      span.node_end = static_cast<uint32_t>(system_.nodes().size());
      span.rule_end = static_cast<uint32_t>(system_.num_rules());
      if (stats != nullptr) {
        ++stats->segments_total;
        if (grafted) {
          ++stats->segments_grafted;
          stats->nodes_shared += span.node_end - span.node_begin;
        } else {
          stats->nodes_owned += span.node_end - span.node_begin;
        }
      }
      system_.NoteSpan(std::move(span));
      ai = aj;
    }
    // Rules the plan did not cover (it should tile; degrade, don't
    // drop). The trailing span keeps the spans tiling the system so
    // slice-stitching stays valid.
    if (ai < adorned_.rules.size()) {
      SegmentSpan span;
      span.node_begin = static_cast<uint32_t>(system_.nodes().size());
      span.rule_begin = static_cast<uint32_t>(system_.num_rules());
      span.ar_begin = static_cast<uint32_t>(ai);
      span.ar_end = static_cast<uint32_t>(adorned_.rules.size());
      bool occ_set = false;
      for (size_t k = ai; k < adorned_.rules.size(); ++k) {
        const AdornedRule& ar = adorned_.rules[k];
        if (!occ_set && !ar.body.empty()) {
          span.occ_base = ar.body.front().occurrence_id;
          occ_set = true;
        }
        span.occ_count += static_cast<uint32_t>(ar.body.size());
      }
      ProcessAdornedRange(ai, adorned_.rules.size());
      span.node_end = static_cast<uint32_t>(system_.nodes().size());
      span.rule_end = static_cast<uint32_t>(system_.num_rules());
      if (stats != nullptr) {
        ++stats->segments_total;
        stats->nodes_owned += span.node_end - span.node_begin;
      }
      system_.NoteSpan(std::move(span));
    }
    return std::move(system_);
  }

 private:
  /// The per-rule path (fragment splice or fresh build) over adorned
  /// rules [begin, end). The range always starts at a canonical-rule
  /// boundary, so the adornment ordinal restarts cleanly.
  void ProcessAdornedRange(size_t begin, size_t end) {
    FragmentRecording* rec = opts_.recording;
    // Adorned rules of one canonical rule are consecutive, one per head
    // adornment in enumeration order; the ordinal selects the template.
    uint32_t prev_source = 0;
    uint32_t ordinal = 0;
    bool first = true;
    for (size_t i = begin; i < end; ++i) {
      const AdornedRule& ar = adorned_.rules[i];
      ordinal = (!first && ar.source_rule == prev_source) ? ordinal + 1 : 0;
      prev_source = ar.source_rule;
      first = false;
      ComputeRuleVars(ar);
      const RuleFragment* frag =
          opts_.splice != nullptr &&
                  ar.source_rule < opts_.splice->by_rule.size()
              ? opts_.splice->by_rule[ar.source_rule]
              : nullptr;
      if (frag != nullptr && ordinal < frag->per_adornment.size() &&
          TemplateFits(ar, *frag, ordinal)) {
        ReplayRule(ar, frag->per_adornment[ordinal]);
        if (rec != nullptr) ++rec->rules_spliced;
      } else {
        BeginRecording(ar);
        ProcessRule(ar);
        EndRecording(ar);
        if (rec != nullptr) ++rec->rules_rebuilt;
      }
    }
  }
  // --- Recorded acquisition/emission wrappers ---------------------------

  NodeId Note(NodeId id, const FragmentNodeSpec& spec) {
    if (cur_tmpl_ != nullptr) {
      auto [it, inserted] = cur_spec_of_.try_emplace(
          id, static_cast<uint32_t>(cur_tmpl_->specs.size()));
      (void)it;
      if (inserted) cur_tmpl_->specs.push_back(spec);
    }
    return id;
  }

  NodeId Zero() {
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kZero;
    return Note(system_.zero(), s);
  }

  NodeId One() {
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kOne;
    return Note(system_.one(), s);
  }

  NodeId OwnHead(const AdornedRule& ar, uint32_t k) {
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kHeadArg;
    s.occ = -1;
    s.position = k;
    s.adornment_mask = ar.adornment.bound_mask;
    return Note(
        system_.InternHeadArg(ar.head_pred, ar.adornment.bound_mask, k), s);
  }

  NodeId CalleeHead(const AdornedRule& ar, size_t occ_idx, uint64_t mask,
                    uint32_t k) {
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kHeadArg;
    s.occ = static_cast<int32_t>(occ_idx);
    s.position = k;
    s.adornment_mask = mask;
    return Note(system_.InternHeadArg(ar.body[occ_idx].lit.pred, mask, k), s);
  }

  NodeId Var(const AdornedRule& ar, TermId v) {
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kVariable;
    s.var_slot = VarSlot(v);
    return Note(system_.InternVariable(ar.adorned_index, v), s);
  }

  NodeId BodyArg(const AdornedRule& ar, size_t occ_idx, uint32_t k) {
    const BodyOccurrence& occ = ar.body[occ_idx];
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kBodyArg;
    s.occ = static_cast<int32_t>(occ_idx);
    s.position = k;
    return Note(system_.InternBodyArg(
                    occ.occurrence_id, k, occ.lit.pred, ar.adorned_index,
                    occ.kind == PredicateKind::kInfiniteBase),
                s);
  }

  NodeId AdornedArg(const AdornedRule& ar, size_t occ_idx, uint64_t mask,
                    uint32_t k) {
    const BodyOccurrence& occ = ar.body[occ_idx];
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kBodyArgAdorned;
    s.occ = static_cast<int32_t>(occ_idx);
    s.position = k;
    s.adornment_mask = mask;
    return Note(system_.InternBodyArgAdorned(occ.occurrence_id, mask, k,
                                             occ.lit.pred, ar.adorned_index),
                s);
  }

  NodeId FdChoice(const AdornedRule& ar, size_t occ_idx, uint32_t k,
                  uint32_t i) {
    const BodyOccurrence& occ = ar.body[occ_idx];
    FragmentNodeSpec s;
    s.kind = FragmentSpecKind::kFdChoice;
    s.occ = static_cast<int32_t>(occ_idx);
    s.position = k;
    s.fd_index = i;
    return Note(system_.InternFdChoice(occ.occurrence_id, k, i, occ.lit.pred,
                                       ar.adorned_index),
                s);
  }

  void Emit(PropRule rule) {
    if (cur_tmpl_ != nullptr) {
      FragmentPropRule fr;
      bool ok = SpecOf(rule.head, &fr.head);
      fr.body.reserve(rule.body.size());
      for (NodeId b : rule.body) {
        uint32_t idx = 0;
        ok = ok && SpecOf(b, &idx);
        fr.body.push_back(idx);
      }
      if (ok) {
        cur_tmpl_->rules.push_back(std::move(fr));
      } else {
        // A node reached Emit without passing Note — drop the template
        // rather than cache a hole (EndRecording discards it).
        cur_tmpl_ = nullptr;
      }
    }
    system_.AddRule(std::move(rule));
  }

  bool SpecOf(NodeId id, uint32_t* out) const {
    auto it = cur_spec_of_.find(id);
    if (it == cur_spec_of_.end()) return false;
    *out = it->second;
    return true;
  }

  void BeginRecording(const AdornedRule& ar) {
    cur_tmpl_ = nullptr;
    cur_spec_of_.clear();
    if (opts_.recording == nullptr) return;
    auto& slot = opts_.recording->by_adorned[ar.adorned_index];
    slot = std::make_unique<AdornedRuleTemplate>();
    cur_tmpl_ = slot.get();
  }

  void EndRecording(const AdornedRule& ar) {
    if (opts_.recording != nullptr && cur_tmpl_ == nullptr) {
      opts_.recording->by_adorned[ar.adorned_index].reset();
    }
    cur_tmpl_ = nullptr;
    cur_spec_of_.clear();
  }

  // --- Replay -----------------------------------------------------------

  /// Defensive structural check before committing to a template: the
  /// guard should guarantee all of this, but a mismatch must degrade to
  /// a fresh build, never to out-of-bounds replay.
  bool TemplateFits(const AdornedRule& ar, const RuleFragment& frag,
                    uint32_t ordinal) const {
    if (frag.adornment_masks.size() != frag.per_adornment.size()) {
      return false;
    }
    if (frag.adornment_masks[ordinal] != ar.adornment.bound_mask) {
      return false;
    }
    for (const FragmentNodeSpec& s : frag.per_adornment[ordinal].specs) {
      switch (s.kind) {
        case FragmentSpecKind::kZero:
        case FragmentSpecKind::kOne:
          break;
        case FragmentSpecKind::kHeadArg:
          if (s.occ < 0) {
            if (s.position >= ar.head.args.size()) return false;
            break;
          }
          [[fallthrough]];
        case FragmentSpecKind::kBodyArg:
        case FragmentSpecKind::kBodyArgAdorned:
        case FragmentSpecKind::kFdChoice:
          if (s.occ < 0 ||
              static_cast<size_t>(s.occ) >= ar.body.size() ||
              s.position >= ar.body[s.occ].lit.args.size()) {
            return false;
          }
          break;
        case FragmentSpecKind::kVariable:
          if (s.var_slot >= rule_vars_.size()) return false;
          break;
      }
    }
    return true;
  }

  NodeId Resolve(const AdornedRule& ar, const FragmentNodeSpec& s) {
    switch (s.kind) {
      case FragmentSpecKind::kZero:
        return system_.zero();
      case FragmentSpecKind::kOne:
        return system_.one();
      case FragmentSpecKind::kHeadArg: {
        PredicateId pred =
            s.occ < 0 ? ar.head_pred : ar.body[s.occ].lit.pred;
        return system_.InternHeadArg(pred, s.adornment_mask, s.position);
      }
      case FragmentSpecKind::kVariable:
        return system_.InternVariable(ar.adorned_index,
                                      rule_vars_[s.var_slot]);
      case FragmentSpecKind::kBodyArg: {
        const BodyOccurrence& occ = ar.body[s.occ];
        return system_.InternBodyArg(
            occ.occurrence_id, s.position, occ.lit.pred, ar.adorned_index,
            occ.kind == PredicateKind::kInfiniteBase);
      }
      case FragmentSpecKind::kBodyArgAdorned: {
        const BodyOccurrence& occ = ar.body[s.occ];
        return system_.InternBodyArgAdorned(occ.occurrence_id,
                                            s.adornment_mask, s.position,
                                            occ.lit.pred, ar.adorned_index);
      }
      case FragmentSpecKind::kFdChoice: {
        const BodyOccurrence& occ = ar.body[s.occ];
        return system_.InternFdChoice(occ.occurrence_id, s.position,
                                      s.fd_index, occ.lit.pred,
                                      ar.adorned_index);
      }
    }
    return system_.zero();
  }

  void ReplayRule(const AdornedRule& ar, const AdornedRuleTemplate& tmpl) {
    // Resolving the specs in first-acquisition order makes every node
    // that is new to this system come into existence at exactly the
    // point the fresh build would have created it.
    resolved_.clear();
    resolved_.reserve(tmpl.specs.size());
    for (const FragmentNodeSpec& s : tmpl.specs) {
      resolved_.push_back(Resolve(ar, s));
    }
    for (const FragmentPropRule& fr : tmpl.rules) {
      PropRule rule;
      rule.head = resolved_[fr.head];
      rule.body.reserve(fr.body.size());
      for (uint32_t b : fr.body) rule.body.push_back(resolved_[b]);
      rule.source_adorned_rule = ar.adorned_index;
      system_.AddRule(std::move(rule));
    }
  }

  // --- Fresh build (Algorithm 2) ----------------------------------------

  /// Distinct variables of the rule in first-occurrence order (head
  /// first, then body left to right) — the coordinate system for
  /// kVariable specs, shared by fresh step 2 and replay.
  void ComputeRuleVars(const AdornedRule& ar) {
    rule_vars_.clear();
    auto note = [&](TermId v) {
      if (std::find(rule_vars_.begin(), rule_vars_.end(), v) ==
          rule_vars_.end()) {
        rule_vars_.push_back(v);
      }
    };
    for (TermId a : ar.head.args) note(a);
    for (const BodyOccurrence& occ : ar.body) {
      for (TermId a : occ.lit.args) note(a);
    }
  }

  uint32_t VarSlot(TermId v) const {
    auto it = std::find(rule_vars_.begin(), rule_vars_.end(), v);
    return static_cast<uint32_t>(it - rule_vars_.begin());
  }

  void ProcessRule(const AdornedRule& ar) {
    Step1HeadArgs(ar);
    Step2Variables(ar);
    for (size_t occ_idx = 0; occ_idx < ar.body.size(); ++occ_idx) {
      const BodyOccurrence& occ = ar.body[occ_idx];
      if (occ.kind == PredicateKind::kDerived) {
        Step3DerivedOccurrence(ar, occ_idx);
      } else if (occ.kind == PredicateKind::kInfiniteBase) {
        Step4InfiniteOccurrence(ar, occ_idx);
      }
      // Finite-base occurrences generate no nodes: they only ground
      // variables in step 2.
    }
  }

  void Step1HeadArgs(const AdornedRule& ar) {
    for (uint32_t k = 0; k < ar.head.args.size(); ++k) {
      NodeId head = OwnHead(ar, k);
      if (ar.adornment.IsBound(k)) {
        Emit(PropRule{head, {Zero()}, ar.adorned_index});
      } else {
        Emit(PropRule{head, {Var(ar, ar.head.args[k])}, ar.adorned_index});
      }
    }
  }

  void Step2Variables(const AdornedRule& ar) {
    for (TermId v : rule_vars_) {
      NodeId var_node = Var(ar, v);
      // Bound head positions and finite-base occurrences ground the
      // variable outright.
      bool grounded = false;
      for (uint32_t k = 0; k < ar.head.args.size(); ++k) {
        if (ar.head.args[k] == v && ar.adornment.IsBound(k)) {
          grounded = true;
        }
      }
      for (const BodyOccurrence& occ : ar.body) {
        if (occ.kind != PredicateKind::kFiniteBase) continue;
        if (std::find(occ.lit.args.begin(), occ.lit.args.end(), v) !=
            occ.lit.args.end()) {
          grounded = true;
        }
      }
      if (grounded) {
        Emit(PropRule{var_node, {Zero()}, ar.adorned_index});
        continue;
      }
      // C_X: every derived/infinite body argument the variable occurs in.
      std::vector<NodeId> conjunct;
      for (size_t occ_idx = 0; occ_idx < ar.body.size(); ++occ_idx) {
        const BodyOccurrence& occ = ar.body[occ_idx];
        if (occ.kind == PredicateKind::kFiniteBase) continue;
        for (uint32_t k = 0; k < occ.lit.args.size(); ++k) {
          if (occ.lit.args[k] == v) {
            conjunct.push_back(BodyArg(ar, occ_idx, k));
          }
        }
      }
      if (conjunct.empty()) {
        // The variable occurs only in free head positions: it ranges over
        // the entire (infinite) domain.
        Emit(PropRule{var_node, {One()}, ar.adorned_index});
      } else {
        Emit(PropRule{var_node, std::move(conjunct), ar.adorned_index});
      }
    }
  }

  void Step3DerivedOccurrence(const AdornedRule& ar, size_t occ_idx) {
    const BodyOccurrence& occ = ar.body[occ_idx];
    const std::vector<Adornment>& adornments =
        adornment_cache_.For(program_.terms(), occ.lit);
    for (uint32_t k = 0; k < occ.lit.args.size(); ++k) {
      NodeId arg_node = BodyArg(ar, occ_idx, k);
      std::vector<NodeId> conjunct;
      for (const Adornment& a1 : adornments) {
        if (a1.IsBound(k)) continue;
        NodeId adorned_node = AdornedArg(ar, occ_idx, a1.bound_mask, k);
        conjunct.push_back(adorned_node);
        // The strategy is inapplicable if a bound variable is unsafe.
        std::vector<TermId> bound_vars;
        for (uint32_t j = 0; j < occ.lit.args.size(); ++j) {
          if (a1.IsBound(j)) {
            TermId y = occ.lit.args[j];
            if (std::find(bound_vars.begin(), bound_vars.end(), y) ==
                bound_vars.end()) {
              bound_vars.push_back(y);
            }
          }
        }
        for (TermId y : bound_vars) {
          Emit(PropRule{adorned_node, {Var(ar, y)}, ar.adorned_index});
        }
        // Even with safe bindings, the callee's adorned head may be
        // unsafe.
        NodeId callee = CalleeHead(ar, occ_idx, a1.bound_mask, k);
        Emit(PropRule{adorned_node, {callee}, ar.adorned_index});
      }
      // k is free in the all-free adornment, so the conjunct is never
      // empty.
      Emit(PropRule{arg_node, std::move(conjunct), ar.adorned_index});
    }
  }

  /// The dependency index of a predicate, built on first use and shared
  /// by every occurrence: closures and determinant lists are memoized
  /// inside, so the 2^arity enumeration of MinimalDeterminants runs at
  /// most once per (predicate, argument).
  FdClosureIndex& FdIndexFor(PredicateId pred) {
    auto it = fd_index_.find(pred);
    if (it == fd_index_.end()) {
      it = fd_index_.emplace(pred, FdClosureIndex(program_.FdsFor(pred)))
               .first;
    }
    return it->second;
  }

  /// Determinants of argument `k`, from the shared frozen index when the
  /// caller provided one for this predicate, else the local lazy index.
  const std::vector<AttrSet>& DeterminantsFor(PredicateId pred,
                                              uint32_t arity, uint32_t k) {
    if (opts_.fd_indexes != nullptr) {
      auto it = opts_.fd_indexes->find(pred);
      if (it != opts_.fd_indexes->end() && it->second != nullptr &&
          it->second->frozen()) {
        const FdClosureIndex& idx = *it->second;
        return opts_.use_fd_closure ? idx.Minimal(arity, k)
                                    : idx.Declared(k);
      }
    }
    FdClosureIndex& fds = FdIndexFor(pred);
    return opts_.use_fd_closure ? fds.Minimal(arity, k) : fds.Declared(k);
  }

  void Step4InfiniteOccurrence(const AdornedRule& ar, size_t occ_idx) {
    const BodyOccurrence& occ = ar.body[occ_idx];
    uint32_t arity = static_cast<uint32_t>(occ.lit.args.size());
    for (uint32_t k = 0; k < arity; ++k) {
      NodeId arg_node = BodyArg(ar, occ_idx, k);
      const std::vector<AttrSet>& determinants =
          DeterminantsFor(occ.lit.pred, arity, k);
      if (determinants.empty()) {
        // No dependency restricts this argument: unsafe leaf.
        Emit(PropRule{arg_node, {One()}, ar.adorned_index});
        continue;
      }
      std::vector<NodeId> conjunct;
      for (uint32_t i = 0; i < determinants.size(); ++i) {
        NodeId choice = FdChoice(ar, occ_idx, k, i);
        conjunct.push_back(choice);
        if (determinants[i].Empty()) {
          // An empty antecedent is always applicable: the argument is
          // finite outright through this dependency.
          Emit(PropRule{choice, {Zero()}, ar.adorned_index});
          continue;
        }
        std::vector<TermId> antecedent_vars;
        for (uint32_t j : determinants[i].ToVector()) {
          TermId y = occ.lit.args[j];
          if (std::find(antecedent_vars.begin(), antecedent_vars.end(), y) ==
              antecedent_vars.end()) {
            antecedent_vars.push_back(y);
          }
        }
        for (TermId y : antecedent_vars) {
          Emit(PropRule{choice, {Var(ar, y)}, ar.adorned_index});
        }
      }
      Emit(PropRule{arg_node, std::move(conjunct), ar.adorned_index});
    }
  }

  const Program& program_;
  const AdornedProgram& adorned_;
  BuildOptions opts_;
  AndOrSystem system_;
  AdornmentCache adornment_cache_;
  std::unordered_map<PredicateId, FdClosureIndex> fd_index_;

  /// Per-rule state: distinct variables (coordinate system for
  /// kVariable), the template being recorded (null when not recording
  /// or recording was abandoned), the NodeId -> spec-index map of the
  /// current rule, and the replay resolution scratch buffer.
  std::vector<TermId> rule_vars_;
  AdornedRuleTemplate* cur_tmpl_ = nullptr;
  std::unordered_map<NodeId, uint32_t> cur_spec_of_;
  std::vector<NodeId> resolved_;
};

}  // namespace

Result<AndOrSystem> BuildAndOrSystem(const Program& canonical,
                                     const AdornedProgram& adorned,
                                     const BuildOptions& opts) {
  return SystemBuilder(canonical, adorned, opts).Run();
}

}  // namespace hornsafe
