#include "andor/adorn.h"

#include <algorithm>

#include "andor/fragment.h"
#include "util/strings.h"

namespace hornsafe {

std::string Adornment::ToString() const {
  std::string s;
  for (uint32_t k = 0; k < arity; ++k) s += IsBound(k) ? 'b' : 'f';
  return s;
}

namespace {

/// Positions holding the same variable get the same group index, in
/// first-occurrence order. This pattern fully determines the consistent
/// adornments of the literal.
std::vector<uint32_t> GroupPattern(const Literal& lit) {
  std::vector<TermId> distinct;
  std::vector<uint32_t> group_of(lit.args.size());
  for (size_t k = 0; k < lit.args.size(); ++k) {
    TermId v = lit.args[k];
    auto it = std::find(distinct.begin(), distinct.end(), v);
    if (it == distinct.end()) {
      group_of[k] = static_cast<uint32_t>(distinct.size());
      distinct.push_back(v);
    } else {
      group_of[k] = static_cast<uint32_t>(it - distinct.begin());
    }
  }
  return group_of;
}

std::vector<Adornment> AdornmentsForPattern(
    const std::vector<uint32_t>& group_of) {
  uint64_t groups = 0;
  for (uint32_t g : group_of) groups = std::max<uint64_t>(groups, g + 1);
  std::vector<Adornment> out;
  out.reserve(size_t{1} << groups);
  for (uint64_t choice = 0; choice < (uint64_t{1} << groups); ++choice) {
    Adornment a;
    a.arity = static_cast<uint32_t>(group_of.size());
    for (size_t k = 0; k < group_of.size(); ++k) {
      if ((choice >> group_of[k]) & 1) a.bound_mask |= uint64_t{1} << k;
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace

std::vector<Adornment> ConsistentAdornments(const TermPool& pool,
                                            const Literal& lit) {
  (void)pool;
  return AdornmentsForPattern(GroupPattern(lit));
}

const std::vector<Adornment>& AdornmentCache::For(const TermPool& pool,
                                                 const Literal& lit) {
  (void)pool;
  std::vector<uint32_t> pattern = GroupPattern(lit);
  // The pattern enumeration is cheap enough to run under the lock; two
  // builders racing on the same new pattern is resolved by emplace,
  // which keeps the first entry (so outstanding references never see a
  // replacement).
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(pattern);
  if (it == memo_.end()) {
    std::vector<Adornment> adornments = AdornmentsForPattern(pattern);
    it = memo_.emplace(std::move(pattern), std::move(adornments)).first;
  }
  return it->second;
}

std::vector<uint32_t> AdornedProgram::RulesFor(
    PredicateId pred, const Adornment& adornment) const {
  std::vector<uint32_t> out;
  for (const AdornedRule& r : rules) {
    if (r.head_pred == pred && r.adornment == adornment) {
      out.push_back(r.adorned_index);
    }
  }
  return out;
}

std::string AdornedProgram::ToString(const Program& program) const {
  std::string out;
  auto render_args = [&](const Literal& lit, uint32_t rule_index) {
    if (lit.args.empty()) return std::string();
    return StrCat("(",
                  JoinMapped(lit.args, ",",
                             [&](TermId a) {
                               return StrCat(
                                   program.terms().ToString(
                                       a, program.symbols()),
                                   rule_index);
                             }),
                  ")");
  };
  for (const AdornedRule& ar : rules) {
    out += StrCat(program.PredicateName(ar.head_pred), "^",
                  ar.adornment.ToString(),
                  render_args(ar.head, ar.adorned_index));
    if (!ar.body.empty()) {
      out += " :- ";
      out += JoinMapped(ar.body, ", ", [&](const BodyOccurrence& occ) {
        return StrCat(program.PredicateName(occ.lit.pred), "#",
                      occ.occurrence_id,
                      render_args(occ.lit, ar.adorned_index));
      });
    }
    out += ".\n";
  }
  return out;
}

Result<AdornedProgram> BuildAdornedProgram(const Program& canonical,
                                           AdornmentCache* cache,
                                           const FragmentSplicePlan* splice) {
  AdornedProgram out;
  AdornmentCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  uint32_t next_occurrence = 0;
  std::vector<Adornment> spliced_adornments;
  for (uint32_t ri = 0; ri < canonical.rules().size(); ++ri) {
    const Rule& rule = canonical.rules()[ri];
    auto check_all_vars = [&](const Literal& lit) {
      return std::all_of(lit.args.begin(), lit.args.end(), [&](TermId a) {
        return canonical.terms().IsVariable(a);
      });
    };
    if (!check_all_vars(rule.head)) {
      return Status::InvalidProgram(
          StrCat("rule ", canonical.ToString(rule),
                 " is not canonical (head has non-variable arguments); run "
                 "Canonicalize first"));
    }
    for (const Literal& b : rule.body) {
      if (!check_all_vars(b)) {
        return Status::InvalidProgram(
            StrCat("rule ", canonical.ToString(rule),
                   " is not canonical (body has non-variable arguments); "
                   "run Canonicalize first"));
      }
    }
    const RuleFragment* frag =
        splice != nullptr && ri < splice->by_rule.size()
            ? splice->by_rule[ri]
            : nullptr;
    const std::vector<Adornment>* adornment_list;
    if (frag != nullptr && !frag->adornment_masks.empty()) {
      spliced_adornments.clear();
      spliced_adornments.reserve(frag->adornment_masks.size());
      for (uint64_t mask : frag->adornment_masks) {
        Adornment a;
        a.bound_mask = mask;
        a.arity = static_cast<uint32_t>(rule.head.args.size());
        spliced_adornments.push_back(a);
      }
      adornment_list = &spliced_adornments;
    } else {
      adornment_list = &cache->For(canonical.terms(), rule.head);
    }
    const std::vector<Adornment>& adornments = *adornment_list;
    for (const Adornment& a : adornments) {
      AdornedRule ar;
      ar.head_pred = rule.head.pred;
      ar.adornment = a;
      ar.head = rule.head;
      ar.source_rule = ri;
      ar.adorned_index = static_cast<uint32_t>(out.rules.size());
      for (const Literal& b : rule.body) {
        BodyOccurrence occ;
        occ.lit = b;
        occ.occurrence_id = next_occurrence++;
        occ.kind = canonical.predicate(b.pred).kind;
        ar.body.push_back(std::move(occ));
      }
      out.rules.push_back(std::move(ar));
    }
  }
  return out;
}

}  // namespace hornsafe
