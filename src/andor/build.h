#ifndef HORNSAFE_ANDOR_BUILD_H_
#define HORNSAFE_ANDOR_BUILD_H_

#include <memory>
#include <unordered_map>

#include "andor/adorn.h"
#include "andor/fragment.h"
#include "andor/segment.h"
#include "andor/system.h"
#include "fd/fd.h"
#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// Options for Algorithm 2.
struct BuildOptions {
  /// Step 4 determinant source. `false` (paper-faithful): only the
  /// declared finiteness dependencies whose right-hand side covers the
  /// argument. `true`: all minimal determinants under the Armstrong
  /// closure of the declared dependencies — strictly more safety is
  /// detected, at exponential-in-arity cost per occurrence.
  bool use_fd_closure = false;

  /// Pre-closed dependency indexes by predicate id (frozen — see
  /// FdClosureCache). Occurrences of predicates present in the map read
  /// determinants from the shared index instead of deriving them;
  /// absent predicates fall back to a build-local lazy index. May be
  /// null.
  using FdIndexMap =
      std::unordered_map<PredicateId, std::shared_ptr<const FdClosureIndex>>;
  const FdIndexMap* fd_indexes = nullptr;

  /// Fragment templates to splice per canonical rule (andor/fragment.h);
  /// null (or a null entry) means build fresh. Splicing produces a
  /// system bit-identical to a fresh build.
  const FragmentSplicePlan* splice = nullptr;

  /// When set, fresh-built adorned rules record replay templates here
  /// (sized/filled by the builder) and the spliced/rebuilt tallies are
  /// kept, so the caller can cache the new fragments.
  FragmentRecording* recording = nullptr;

  /// Per-component segment plan (andor/segment.h). When set the builder
  /// works component by component — grafting cached segments wholesale,
  /// building the rest normally — and records a SegmentSpan per
  /// component in the resulting system. Null disables the segment path
  /// entirely (the system then carries no spans).
  const SegmentPlan* segments = nullptr;

  /// Graft/reject/sharing tallies of a segment-planned build.
  SegmentBuildStats* segment_stats = nullptr;
};

/// Algorithm 2 of the paper: derives the propositional system And-Or_H
/// from the adorned program H*.
///
/// Per adorned rule `p^a(t) :- q₁(t₁), ..., qₙ(tₙ)`:
///  * Step 1 — head arguments: `p^a_k ← 0` for bound positions,
///    `p^a_k ← X` for free positions holding variable X.
///  * Step 2 — variables: `X ← 0` if X occurs in a finite-base body
///    literal or a bound head position; otherwise `X ← C_X`, the
///    conjunction of every body argument node X occurs in; `X ← 1` if
///    that conjunction is empty (X is range-unrestricted).
///  * Step 3 — derived body occurrences q: for each position k,
///    `q_k ← ⋀ q^a1_k` over the consistent adornments a1 of q with k
///    free, with `q^a1_k ← Y` for every variable Y in a bound position
///    of a1 and `q^a1_k ← l^a1_k` linking to the callee's head node.
///  * Step 4 — infinite-base occurrences f: for each position k with
///    determinants F₁..Fₙ, `f_k ← ⋀ f_k~fdᵢ`, with `f_k~fdᵢ ← Y` for
///    every variable Y in Fᵢ (and `f_k~fdᵢ ← 0` when Fᵢ is empty);
///    `f_k ← 1` when no dependency determines k.
///
/// Truth semantics: 1 = potentially infinite binding set (unsafe).
Result<AndOrSystem> BuildAndOrSystem(const Program& canonical,
                                     const AdornedProgram& adorned,
                                     const BuildOptions& opts = {});

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_BUILD_H_
