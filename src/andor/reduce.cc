#include "andor/reduce.h"

#include <deque>
#include <vector>

namespace hornsafe {

ReduceStats ReduceSystemInRanges(AndOrSystem* system,
                                 const std::vector<ReduceRange>& ranges) {
  ReduceStats stats;
  const size_t num_nodes = system->nodes().size();

  // Rules whose body mentions each node. Scratch arrays are globally
  // sized (indexing stays absolute) but only ranged rules/nodes are
  // visited, so the work is proportional to the ranges.
  std::vector<std::vector<uint32_t>> used_in(num_nodes);
  for (const ReduceRange& r : ranges) {
    for (uint32_t ri = r.rule_begin; ri < r.rule_end; ++ri) {
      if (system->rule_deleted(ri)) continue;
      for (NodeId b : system->rule(ri).body) {
        used_in[b].push_back(ri);
      }
    }
  }

  std::vector<bool> never(num_nodes, false);
  std::deque<NodeId> queue;
  for (const ReduceRange& r : ranges) {
    for (NodeId n = r.node_begin; n < r.node_end; ++n) {
      if (n == system->zero() || n == system->one()) continue;
      if (system->RulesFor(n).empty()) {
        never[n] = true;
        ++stats.nodes_neverized;
        queue.push_back(n);
      }
    }
  }

  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    for (uint32_t ri : used_in[n]) {
      if (system->rule_deleted(ri)) continue;
      NodeId head = system->rule(ri).head;
      system->DeleteRule(ri);
      ++stats.rules_deleted;
      if (!never[head] && head != system->zero() && head != system->one() &&
          system->RulesFor(head).empty()) {
        never[head] = true;
        ++stats.nodes_neverized;
        queue.push_back(head);
      }
    }
  }
  return stats;
}

ReduceStats ReduceSystem(AndOrSystem* system) {
  ReduceRange full;
  full.node_begin = 0;
  full.node_end = static_cast<uint32_t>(system->nodes().size());
  full.rule_begin = 0;
  full.rule_end = static_cast<uint32_t>(system->num_rules());
  return ReduceSystemInRanges(system, {full});
}

}  // namespace hornsafe
