#include "andor/reduce.h"

#include <deque>
#include <vector>

namespace hornsafe {

ReduceStats ReduceSystem(AndOrSystem* system) {
  ReduceStats stats;
  const size_t num_nodes = system->nodes().size();

  // Rules whose body mentions each node.
  std::vector<std::vector<uint32_t>> used_in(num_nodes);
  for (size_t ri = 0; ri < system->num_rules(); ++ri) {
    if (system->rule_deleted(ri)) continue;
    for (NodeId b : system->rule(ri).body) {
      used_in[b].push_back(static_cast<uint32_t>(ri));
    }
  }

  std::vector<bool> never(num_nodes, false);
  std::deque<NodeId> queue;
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (n == system->zero() || n == system->one()) continue;
    if (system->RulesFor(n).empty()) {
      never[n] = true;
      ++stats.nodes_neverized;
      queue.push_back(n);
    }
  }

  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    for (uint32_t ri : used_in[n]) {
      if (system->rule_deleted(ri)) continue;
      NodeId head = system->rule(ri).head;
      system->DeleteRule(ri);
      ++stats.rules_deleted;
      if (!never[head] && head != system->zero() && head != system->one() &&
          system->RulesFor(head).empty()) {
        never[head] = true;
        ++stats.nodes_neverized;
        queue.push_back(head);
      }
    }
  }
  return stats;
}

}  // namespace hornsafe
