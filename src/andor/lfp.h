#ifndef HORNSAFE_ANDOR_LFP_H_
#define HORNSAFE_ANDOR_LFP_H_

#include <vector>

#include "andor/system.h"

namespace hornsafe {

/// Computes the least fixpoint of the live rules of And-Or_H over
/// {0, 1}: node value 1 means "derivably unsafe".
///
/// The paper (Section 3): if the propositional literal for an argument
/// position or variable evaluates to 1 in the least fixpoint, it is
/// unsafe (within the canonical abstraction); value 0 is *inconclusive*
/// without the emptiness pruning of Algorithm 3 + the subset-condition
/// test. Runs in time linear in the total size of the rule set (unit
/// propagation with per-rule counters).
std::vector<char> LeastFixpoint(const AndOrSystem& system);

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_LFP_H_
