#ifndef HORNSAFE_ANDOR_SCC_H_
#define HORNSAFE_ANDOR_SCC_H_

#include <cstdint>
#include <vector>

#include "andor/system.h"

namespace hornsafe {

/// Precomputed structure of the live And-Or system shared by every
/// subset-condition search over it: the capability greatest fixpoint,
/// the SCC condensation of the *union graph* (every usable rule edge,
/// taken together, over capable nodes), and two facts derived from it
/// that let searches skip enumeration entirely:
///
///   * a node that is not `capable` cannot appear in any 0-free
///     completion — every AND-graph below it contains a 0-node, so the
///     subset condition holds without search;
///   * a capable node from which no *possible* f-node-free forward
///     cycle is reachable is unsafe without search: whatever rules are
///     chosen, the chosen subgraph is a subgraph of the union graph, a
///     cycle of the chosen subgraph lies inside a single union-graph
///     SCC, and no reachable SCC can host one — so any greedy 0-free
///     completion is already a counterexample.
///
/// The same lies-inside-one-SCC fact powers the search's memo table:
/// a body node whose reachable SCCs are disjoint from the SCCs of every
/// currently chosen node is an independent subproblem whose answer does
/// not depend on the ancestors' choices (see subset.cc).
///
/// The analysis depends on the system's *live* rule set: recompute it
/// after ApplyEmptinessPruning / ReduceSystem delete rules.
class SccAnalysis {
 public:
  /// Runs capability + condensation over the current live rules.
  static SccAnalysis Compute(const AndOrSystem& system);

  /// True iff the node can appear in a 0-free completion (greatest
  /// fixpoint: some live rule avoids 0 and has all-capable members).
  bool capable(NodeId n) const { return capable_[n] != 0; }

  /// True iff `rule_index` can appear in a counterexample graph: its
  /// body avoids the 0-node and every non-terminal member is capable.
  bool rule_usable(uint32_t rule_index) const {
    return rule_usable_[rule_index] != 0;
  }

  /// True iff some union-graph SCC hosting a possible f-free forward
  /// cycle is reachable from `n` (through f-nodes as well; those occur
  /// on demand paths even though they never lie on counted cycles).
  bool cycle_reachable(NodeId n) const { return cycle_reachable_[n] != 0; }

  /// Union-graph SCC of a capable non-terminal node; -1 otherwise.
  int32_t scc_of(NodeId n) const { return scc_id_[n]; }

  int32_t num_sccs() const { return num_sccs_; }

  /// Whether per-SCC reachability bitsets were materialised (skipped
  /// above kMaxSccsForReach components to bound memory; the search then
  /// falls back to joint exploration without the memo table).
  bool has_reach_sets() const { return reach_blocks_ > 0; }
  size_t reach_blocks() const { return reach_blocks_; }

  /// True iff any SCC reachable from `scc` (including itself) has a
  /// set bit in `active`, an array of reach_blocks() words.
  bool ReachesAny(int32_t scc, const uint64_t* active) const {
    const uint64_t* row = &reach_[static_cast<size_t>(scc) * reach_blocks_];
    for (size_t i = 0; i < reach_blocks_; ++i) {
      if (row[i] & active[i]) return true;
    }
    return false;
  }

  /// Reach-set ceiling: condensations wider than this skip the bitsets
  /// (quadratic memory) and the frontier memo degrades gracefully.
  static constexpr int32_t kMaxSccsForReach = 1 << 13;

 private:
  std::vector<char> capable_;
  std::vector<char> rule_usable_;
  std::vector<char> cycle_reachable_;
  std::vector<int32_t> scc_id_;
  int32_t num_sccs_ = 0;
  size_t reach_blocks_ = 0;
  /// num_sccs_ rows of reach_blocks_ words; row s = SCCs reachable
  /// from s, itself included.
  std::vector<uint64_t> reach_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_SCC_H_
