#ifndef HORNSAFE_ANDOR_SCC_H_
#define HORNSAFE_ANDOR_SCC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "andor/system.h"

namespace hornsafe {

/// The condensation analysis of one node/rule range of an And-Or
/// system, in range-relative coordinates: arrays are indexed by
/// `node - node_begin` / `rule - rule_begin`, and SCC ids are local
/// (0-based within the slice). Because node-table segments never share
/// non-terminal nodes (segment.h), a slice over a segment is exactly
/// the global analysis restricted to it, and slices concatenate into
/// the global analysis via `SccAnalysis::Stitch`. Slices carry no
/// absolute ids, so a slice computed against one build grafts
/// unchanged into any later build that reuses the segment.
struct SccSlice {
  uint32_t num_nodes = 0;
  uint32_t num_rules = 0;
  std::vector<char> capable;
  std::vector<char> rule_usable;
  std::vector<char> cycle_reachable;
  /// Local SCC id per node; -1 for nodes outside the union graph.
  std::vector<int32_t> scc_local;
  int32_t num_sccs = 0;
  /// Local reach bitsets (0 blocks = not materialised; see
  /// SccAnalysis::kMaxSccsForReach).
  size_t reach_blocks = 0;
  std::vector<uint64_t> reach;
};

/// Precomputed structure of the live And-Or system shared by every
/// subset-condition search over it: the capability greatest fixpoint,
/// the SCC condensation of the *union graph* (every usable rule edge,
/// taken together, over capable nodes), and two facts derived from it
/// that let searches skip enumeration entirely:
///
///   * a node that is not `capable` cannot appear in any 0-free
///     completion — every AND-graph below it contains a 0-node, so the
///     subset condition holds without search;
///   * a capable node from which no *possible* f-node-free forward
///     cycle is reachable is unsafe without search: whatever rules are
///     chosen, the chosen subgraph is a subgraph of the union graph, a
///     cycle of the chosen subgraph lies inside a single union-graph
///     SCC, and no reachable SCC can host one — so any greedy 0-free
///     completion is already a counterexample.
///
/// The same lies-inside-one-SCC fact powers the search's memo table:
/// a body node whose reachable SCCs are disjoint from the SCCs of every
/// currently chosen node is an independent subproblem whose answer does
/// not depend on the ancestors' choices (see subset.cc).
///
/// The analysis depends on the system's *live* rule set: recompute it
/// after ApplyEmptinessPruning / ReduceSystem delete rules.
class SccAnalysis {
 public:
  /// Runs capability + condensation over the current live rules.
  /// Implemented as one full-range slice stitched, so the cold path and
  /// the segment-stitched warm path share every line of analysis code.
  static SccAnalysis Compute(const AndOrSystem& system);

  /// Computes the analysis of one node/rule range in range-relative
  /// coordinates. Valid only for ranges closed under rule membership
  /// (every rule's head/body is in-range or terminal, every in-range
  /// node's rules are in-range) — node-table segments by construction.
  /// Returns nullopt if the range is not closed; callers degrade to
  /// the global Compute.
  static std::optional<SccSlice> ComputeSlice(const AndOrSystem& system,
                                              uint32_t node_begin,
                                              uint32_t node_end,
                                              uint32_t rule_begin,
                                              uint32_t rule_end);

  /// Concatenates slices (in node order) into the global analysis.
  /// The pieces must tile the system's nodes starting at 0 or at 2
  /// (terminals prepended) and its rules starting at 0; local SCC ids
  /// are rebased by the running total, which reproduces the global
  /// Tarjan numbering exactly (roots are visited in ascending node id
  /// and DFS never leaves a segment). Returns nullopt if the pieces do
  /// not tile or a needed reach bitset is missing.
  static std::optional<SccAnalysis> Stitch(
      const AndOrSystem& system, const std::vector<const SccSlice*>& pieces);

  /// True iff the node can appear in a 0-free completion (greatest
  /// fixpoint: some live rule avoids 0 and has all-capable members).
  bool capable(NodeId n) const { return capable_[n] != 0; }

  /// True iff `rule_index` can appear in a counterexample graph: its
  /// body avoids the 0-node and every non-terminal member is capable.
  bool rule_usable(uint32_t rule_index) const {
    return rule_usable_[rule_index] != 0;
  }

  /// True iff some union-graph SCC hosting a possible f-free forward
  /// cycle is reachable from `n` (through f-nodes as well; those occur
  /// on demand paths even though they never lie on counted cycles).
  bool cycle_reachable(NodeId n) const { return cycle_reachable_[n] != 0; }

  /// Union-graph SCC of a capable non-terminal node; -1 otherwise.
  int32_t scc_of(NodeId n) const { return scc_id_[n]; }

  int32_t num_sccs() const { return num_sccs_; }

  /// Whether per-SCC reachability bitsets were materialised (skipped
  /// above kMaxSccsForReach components to bound memory; the search then
  /// falls back to joint exploration without the memo table).
  bool has_reach_sets() const { return reach_blocks_ > 0; }
  size_t reach_blocks() const { return reach_blocks_; }

  /// True iff any SCC reachable from `scc` (including itself) has a
  /// set bit in `active`, an array of reach_blocks() words.
  bool ReachesAny(int32_t scc, const uint64_t* active) const {
    const uint64_t* row = &reach_[static_cast<size_t>(scc) * reach_blocks_];
    for (size_t i = 0; i < reach_blocks_; ++i) {
      if (row[i] & active[i]) return true;
    }
    return false;
  }

  /// Reach-set ceiling: condensations wider than this skip the bitsets
  /// (quadratic memory) and the frontier memo degrades gracefully.
  static constexpr int32_t kMaxSccsForReach = 1 << 13;

 private:
  std::vector<char> capable_;
  std::vector<char> rule_usable_;
  std::vector<char> cycle_reachable_;
  std::vector<int32_t> scc_id_;
  int32_t num_sccs_ = 0;
  size_t reach_blocks_ = 0;
  /// num_sccs_ rows of reach_blocks_ words; row s = SCCs reachable
  /// from s, itself included.
  std::vector<uint64_t> reach_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_ANDOR_SCC_H_
