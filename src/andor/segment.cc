#include "andor/segment.h"

#include <algorithm>
#include <numeric>

namespace hornsafe {

namespace {

uint32_t Find(std::vector<uint32_t>& parent, uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void Unite(std::vector<uint32_t>& parent, uint32_t a, uint32_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a != b) parent[b] = a;
}

}  // namespace

size_t NodeTableSegment::MemoryBytes() const {
  size_t bytes = sizeof(NodeTableSegment);
  bytes += nodes.capacity() * sizeof(SegmentNode);
  bytes += rules.capacity() * sizeof(SegmentRule);
  for (const SegmentRule& r : rules) {
    bytes += r.body.capacity() * sizeof(uint32_t);
  }
  bytes += scc.capable.capacity() + scc.rule_usable.capacity() +
           scc.cycle_reachable.capacity();
  bytes += scc.scc_local.capacity() * sizeof(int32_t);
  bytes += scc.reach.capacity() * sizeof(uint64_t);
  return bytes;
}

ComponentPartition ComputeComponentPartition(const Program& canonical) {
  const size_t num_preds = canonical.num_predicates();
  std::vector<uint32_t> parent(num_preds);
  std::iota(parent.begin(), parent.end(), 0);
  for (const Rule& r : canonical.rules()) {
    for (const Literal& b : r.body) {
      Unite(parent, r.head.pred, b.pred);
    }
  }

  ComponentPartition out;
  struct Acc {
    uint32_t first;
    uint32_t last;
    uint32_t count;
  };
  std::vector<int32_t> comp_of_root(num_preds, -1);
  std::vector<Acc> accs;
  const auto& rules = canonical.rules();
  for (uint32_t ri = 0; ri < rules.size(); ++ri) {
    uint32_t root = Find(parent, rules[ri].head.pred);
    if (comp_of_root[root] < 0) {
      comp_of_root[root] = static_cast<int32_t>(accs.size());
      accs.push_back({ri, ri, 1});
    } else {
      Acc& a = accs[static_cast<size_t>(comp_of_root[root])];
      a.last = ri;
      ++a.count;
    }
  }
  // Components are discovered in first-rule order, so when every
  // component is one contiguous run the runs tile [0, num_rules).
  for (const Acc& a : accs) {
    out.components.push_back({a.first, a.count});
    if (a.last - a.first + 1 != a.count) out.contiguous = false;
  }
  return out;
}

std::vector<PredicateId> ComponentPredSlots(const Program& canonical,
                                            const PredicateComponent& comp) {
  std::vector<PredicateId> slots;
  auto note = [&](PredicateId p) {
    if (std::find(slots.begin(), slots.end(), p) == slots.end()) {
      slots.push_back(p);
    }
  };
  const auto& rules = canonical.rules();
  for (uint32_t ri = comp.first_rule; ri < comp.first_rule + comp.num_rules;
       ++ri) {
    note(rules[ri].head.pred);
    for (const Literal& b : rules[ri].body) note(b.pred);
  }
  return slots;
}

std::shared_ptr<const NodeTableSegment> EncodeSegment(
    const AndOrSystem& system, const AdornedProgram& adorned,
    const std::vector<bool>& empty,
    const std::vector<PredicateId>& pred_of_slot, uint32_t node_begin,
    uint32_t node_end, uint32_t rule_begin, uint32_t rule_end,
    uint32_t ar_begin, uint32_t ar_end, uint32_t occ_base,
    uint32_t occ_count, SccSlice scc) {
  auto seg = std::make_shared<NodeTableSegment>();
  seg->num_pred_slots = static_cast<uint32_t>(pred_of_slot.size());
  seg->num_adorned_rules = ar_end - ar_begin;
  seg->num_occurrences = occ_count;
  seg->scc = std::move(scc);

  auto slot_of = [&](PredicateId p) -> int32_t {
    for (size_t i = 0; i < pred_of_slot.size(); ++i) {
      if (pred_of_slot[i] == p) return static_cast<int32_t>(i);
    }
    return -1;
  };

  seg->nodes.reserve(node_end - node_begin);
  for (NodeId id = node_begin; id < node_end; ++id) {
    const PropNode& n = system.node(id);
    SegmentNode sn;
    sn.kind = n.kind;
    sn.is_f_node = n.is_f_node;
    sn.adornment_mask = n.adornment_mask;
    sn.position = n.position;
    sn.fd_index = n.fd_index;
    if (n.pred != kInvalidPredicate) {
      sn.pred_slot = slot_of(n.pred);
      if (sn.pred_slot < 0) return nullptr;
    }
    switch (n.kind) {
      case PropNodeKind::kZero:
      case PropNodeKind::kOne:
        // Terminals live outside every span.
        return nullptr;
      case PropNodeKind::kHeadArg:
        // Interned program-wide; adorned_rule stays 0.
        break;
      case PropNodeKind::kVariable: {
        if (n.adorned_rule < ar_begin || n.adorned_rule >= ar_end) {
          return nullptr;
        }
        sn.ar_delta = n.adorned_rule - ar_begin;
        // Record where the variable first occurs in its adorned rule:
        // the graft re-reads the TermId from that argument slot of the
        // *new* rule, which is the same variable under any renaming.
        const AdornedRule& ar = adorned.rules[n.adorned_rule];
        sn.var_occ = -2;
        for (uint32_t k = 0; k < ar.head.args.size() && sn.var_occ == -2;
             ++k) {
          if (ar.head.args[k] == n.var) {
            sn.var_occ = -1;
            sn.var_pos = k;
          }
        }
        for (size_t o = 0; o < ar.body.size() && sn.var_occ == -2; ++o) {
          const Literal& lit = ar.body[o].lit;
          for (uint32_t k = 0; k < lit.args.size(); ++k) {
            if (lit.args[k] == n.var) {
              sn.var_occ = static_cast<int32_t>(o);
              sn.var_pos = k;
              break;
            }
          }
        }
        if (sn.var_occ == -2) return nullptr;
        break;
      }
      case PropNodeKind::kBodyArg:
      case PropNodeKind::kBodyArgAdorned:
      case PropNodeKind::kFdChoice: {
        if (n.adorned_rule < ar_begin || n.adorned_rule >= ar_end) {
          return nullptr;
        }
        sn.ar_delta = n.adorned_rule - ar_begin;
        if (n.occurrence < occ_base ||
            n.occurrence - occ_base >= occ_count) {
          return nullptr;
        }
        sn.occ_delta = n.occurrence - occ_base;
        break;
      }
    }
    seg->nodes.push_back(sn);
  }

  auto encode_ref = [&](NodeId id, uint32_t* out) {
    if (id == system.zero() || id == system.one()) {
      *out = id;
      return true;
    }
    if (id < node_begin || id >= node_end) return false;
    *out = id - node_begin + 2;
    return true;
  };

  seg->rules.reserve(rule_end - rule_begin);
  for (uint32_t ri = rule_begin; ri < rule_end; ++ri) {
    const PropRule& r = system.rule(ri);
    SegmentRule sr;
    if (!encode_ref(r.head, &sr.head)) return nullptr;
    sr.body.reserve(r.body.size());
    for (NodeId b : r.body) {
      uint32_t ref = 0;
      if (!encode_ref(b, &ref)) return nullptr;
      sr.body.push_back(ref);
    }
    if (r.source_adorned_rule < ar_begin ||
        r.source_adorned_rule >= ar_end) {
      return nullptr;
    }
    sr.ar_delta = r.source_adorned_rule - ar_begin;
    sr.deleted = system.rule_deleted(ri);
    if (sr.deleted) {
      // Emptiness pruning runs first and deletes exactly the rules whose
      // head node carries an empty predicate; everything else deleted
      // fell to reduction.
      const PropNode& head = system.node(r.head);
      bool by_emptiness = false;
      switch (head.kind) {
        case PropNodeKind::kHeadArg:
        case PropNodeKind::kBodyArg:
        case PropNodeKind::kBodyArgAdorned:
        case PropNodeKind::kFdChoice:
          by_emptiness = head.pred != kInvalidPredicate &&
                         head.pred < empty.size() && empty[head.pred];
          break;
        case PropNodeKind::kZero:
        case PropNodeKind::kOne:
        case PropNodeKind::kVariable:
          break;
      }
      if (by_emptiness) {
        ++seg->pruned_emptiness;
      } else {
        ++seg->pruned_reduction;
      }
    }
    seg->rules.push_back(std::move(sr));
  }
  return seg;
}

}  // namespace hornsafe
