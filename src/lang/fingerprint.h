#ifndef HORNSAFE_LANG_FINGERPRINT_H_
#define HORNSAFE_LANG_FINGERPRINT_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// The predicate dependency graph of a program: `p` depends on `q` when
/// some rule with head `p` mentions `q` in its body. Safety verdicts for
/// an argument position of `p` only ever look *down* this graph — the
/// And-Or fragment reachable from `p`'s head-argument nodes is built
/// from `p`'s rules and its transitive callees — which is what makes
/// per-predicate cone fingerprints a sound cache key (DESIGN.md, D12).
class PredicateDepGraph {
 public:
  static PredicateDepGraph Build(const Program& program);

  /// Deduplicated, sorted callees of `pred`.
  const std::vector<PredicateId>& Callees(PredicateId pred) const {
    return callees_[pred];
  }

  /// Condensation component of `pred` (Tarjan; components are numbered
  /// in reverse topological order: callees before callers).
  int32_t SccOf(PredicateId pred) const { return scc_of_[pred]; }

  int32_t NumSccs() const { return num_sccs_; }

  /// Members of component `scc`, ascending.
  const std::vector<PredicateId>& SccMembers(int32_t scc) const {
    return scc_members_[scc];
  }

  size_t num_predicates() const { return callees_.size(); }

 private:
  std::vector<std::vector<PredicateId>> callees_;
  std::vector<int32_t> scc_of_;
  std::vector<std::vector<PredicateId>> scc_members_;
  int32_t num_sccs_ = 0;
};

/// Per-predicate content fingerprints.
struct ProgramFingerprints {
  /// own[p]: StructuralPredicateHash — name, arity, kind and the sorted
  /// rule/fact/FD/monotonicity hash multisets of `p` alone.
  std::vector<uint64_t> own;
  /// cone[p]: own[p] mixed with the fingerprint of everything reachable
  /// from `p` in the dependency graph. Mutually recursive predicates
  /// share the same cone *content* but still receive distinct
  /// fingerprints (their own hash is mixed back in), so a cache keyed
  /// by cone[p] distinguishes the members of an SCC.
  std::vector<uint64_t> cone;
  /// Alpha- and clause-order-invariant whole-program hash.
  uint64_t program = 0;
};

/// Memo of per-predicate structural own hashes across successive
/// programs, keyed by the *strict* predicate key (rendered clause
/// texts, StrictPredicateKeys). Rendering a clause is cheap; the
/// alpha-numbering term walk of StructuralPredicateHash is not — so an
/// Update() only pays structural hashing for predicates whose clauses
/// actually changed textually. Keying by the strict (name-sensitive)
/// hash is conservative: an alpha-renamed predicate misses the memo
/// and is re-hashed, never served a stale value. Thread-safe; bounded
/// (the map is cleared when it outgrows its cap, a once-in-a-blue-moon
/// event for real update streams).
class PredicateHashMemo {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// True (and sets *own) iff `strict_key` was stored before.
  bool Lookup(uint64_t strict_key, uint64_t* own);
  void Store(uint64_t strict_key, uint64_t own);

  Stats stats() const;
  size_t size() const;

 private:
  static constexpr size_t kMaxEntries = 65536;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> memo_;
  Stats stats_;
};

/// Computes own and cone fingerprints for every predicate of `program`.
/// Cost: one Tarjan pass plus one structural-hash pass, linear in the
/// program (no search). An edit to predicate `q` changes cone[p] for
/// exactly the predicates `p` that can reach `q` — the "invalidation
/// cone" of the edit.
///
/// With a non-null `memo`, the structural-hash pass consults it keyed
/// by strict predicate keys and only re-hashes predicates whose
/// rendered clauses changed since the memo last saw them. Results are
/// bit-identical with and without a memo; pinned by tests.
ProgramFingerprints ComputeFingerprints(const Program& program,
                                        PredicateHashMemo* memo = nullptr);

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_FINGERPRINT_H_
