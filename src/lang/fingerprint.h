#ifndef HORNSAFE_LANG_FINGERPRINT_H_
#define HORNSAFE_LANG_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// The predicate dependency graph of a program: `p` depends on `q` when
/// some rule with head `p` mentions `q` in its body. Safety verdicts for
/// an argument position of `p` only ever look *down* this graph — the
/// And-Or fragment reachable from `p`'s head-argument nodes is built
/// from `p`'s rules and its transitive callees — which is what makes
/// per-predicate cone fingerprints a sound cache key (DESIGN.md, D12).
class PredicateDepGraph {
 public:
  static PredicateDepGraph Build(const Program& program);

  /// Deduplicated, sorted callees of `pred`.
  const std::vector<PredicateId>& Callees(PredicateId pred) const {
    return callees_[pred];
  }

  /// Condensation component of `pred` (Tarjan; components are numbered
  /// in reverse topological order: callees before callers).
  int32_t SccOf(PredicateId pred) const { return scc_of_[pred]; }

  int32_t NumSccs() const { return num_sccs_; }

  /// Members of component `scc`, ascending.
  const std::vector<PredicateId>& SccMembers(int32_t scc) const {
    return scc_members_[scc];
  }

  size_t num_predicates() const { return callees_.size(); }

 private:
  std::vector<std::vector<PredicateId>> callees_;
  std::vector<int32_t> scc_of_;
  std::vector<std::vector<PredicateId>> scc_members_;
  int32_t num_sccs_ = 0;
};

/// Per-predicate content fingerprints.
struct ProgramFingerprints {
  /// own[p]: StructuralPredicateHash — name, arity, kind and the sorted
  /// rule/fact/FD/monotonicity hash multisets of `p` alone.
  std::vector<uint64_t> own;
  /// cone[p]: own[p] mixed with the fingerprint of everything reachable
  /// from `p` in the dependency graph. Mutually recursive predicates
  /// share the same cone *content* but still receive distinct
  /// fingerprints (their own hash is mixed back in), so a cache keyed
  /// by cone[p] distinguishes the members of an SCC.
  std::vector<uint64_t> cone;
  /// Alpha- and clause-order-invariant whole-program hash.
  uint64_t program = 0;
};

/// Computes own and cone fingerprints for every predicate of `program`.
/// Cost: one Tarjan pass plus one structural-hash pass, linear in the
/// program (no search). An edit to predicate `q` changes cone[p] for
/// exactly the predicates `p` that can reach `q` — the "invalidation
/// cone" of the edit.
ProgramFingerprints ComputeFingerprints(const Program& program);

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_FINGERPRINT_H_
