#include "lang/diagnostic.h"

#include <algorithm>
#include <tuple>

#include "util/strings.h"

namespace hornsafe {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& diag, std::string_view file) {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
  }
  if (diag.span.valid()) {
    out += StrCat(diag.span.line, ":", diag.span.column, ": ");
  } else if (!file.empty()) {
    out += ' ';
  }
  out += StrCat(SeverityName(diag.severity), "[", diag.code, "]: ",
                diag.message);
  return out;
}

std::string FormatDiagnosticWithNote(const Diagnostic& diag,
                                     std::string_view file) {
  std::string out = FormatDiagnostic(diag, file);
  if (!diag.note.empty()) {
    out += "\n  note: ";
    out += diag.note;
  }
  return out;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span.line, a.span.column, a.code,
                                     a.message) <
                            std::tie(b.span.line, b.span.column, b.code,
                                     b.message);
                   });
}

size_t CountSeverity(const std::vector<Diagnostic>& diags,
                     Severity severity) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == severity) ++n;
  }
  return n;
}

}  // namespace hornsafe
