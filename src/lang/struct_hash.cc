#include "lang/struct_hash.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace hornsafe {
namespace {

/// Domain-separation seeds so that, e.g., an atom and a predicate with
/// the same name never collide structurally.
enum : uint64_t {
  kSeedVariable = 0x56a95d1f31337001ULL,
  kSeedAtom = 0x56a95d1f31337002ULL,
  kSeedInt = 0x56a95d1f31337003ULL,
  kSeedFunction = 0x56a95d1f31337004ULL,
  kSeedLiteral = 0x56a95d1f31337005ULL,
  kSeedRule = 0x56a95d1f31337006ULL,
  kSeedFd = 0x56a95d1f31337007ULL,
  kSeedMono = 0x56a95d1f31337008ULL,
  kSeedPredicate = 0x56a95d1f31337009ULL,
  kSeedProgram = 0x56a95d1f3133700aULL,
  kSeedFact = 0x56a95d1f3133700bULL,
  kSeedQuery = 0x56a95d1f3133700cULL,
};

/// First-occurrence variable numbering for one clause scope.
using VarNumbering = std::unordered_map<TermId, uint64_t>;

uint64_t NumberVariable(TermId var, VarNumbering* numbering) {
  auto [it, inserted] =
      numbering->emplace(var, static_cast<uint64_t>(numbering->size()));
  (void)inserted;
  return it->second;
}

uint64_t HashTerm(const Program& program, TermId id,
                  VarNumbering* numbering) {
  const TermData& t = program.terms().Get(id);
  switch (t.kind) {
    case TermKind::kVariable:
      return CombineHash(kSeedVariable, NumberVariable(id, numbering));
    case TermKind::kAtom:
      return CombineHash(kSeedAtom,
                         HashBytes(program.symbols().Name(t.symbol)));
    case TermKind::kInt:
      return CombineHash(kSeedInt, static_cast<uint64_t>(t.int_value));
    case TermKind::kFunction: {
      uint64_t h = CombineHash(
          kSeedFunction, HashBytes(program.symbols().Name(t.symbol)));
      h = CombineHash(h, t.args.size());
      for (TermId arg : t.args) {
        h = CombineHash(h, HashTerm(program, arg, numbering));
      }
      return h;
    }
  }
  return 0;
}

uint64_t HashLiteralScoped(const Program& program, const Literal& lit,
                           VarNumbering* numbering) {
  const PredicateInfo& info = program.predicate(lit.pred);
  uint64_t h = CombineHash(kSeedLiteral,
                           HashBytes(program.symbols().Name(info.name)));
  h = CombineHash(h, info.arity);
  for (TermId arg : lit.args) {
    h = CombineHash(h, HashTerm(program, arg, numbering));
  }
  return h;
}

/// Sorted (multiset) fold: element order does not matter, repetitions do.
uint64_t FoldSorted(uint64_t seed, std::vector<uint64_t> hashes) {
  std::sort(hashes.begin(), hashes.end());
  uint64_t h = seed;
  for (uint64_t x : hashes) h = CombineHash(h, x);
  return h;
}

uint64_t HashAttrSet(const AttrSet& set) { return set.bits(); }

}  // namespace

uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t CombineHash(uint64_t seed, uint64_t value) {
  return MixHash(seed ^ (MixHash(value) + 0x9e3779b97f4a7c15ULL +
                         (seed << 6) + (seed >> 2)));
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return MixHash(h);
}

uint64_t StructuralRuleHash(const Program& program, const Rule& rule) {
  VarNumbering numbering;
  uint64_t h = CombineHash(kSeedRule,
                           HashLiteralScoped(program, rule.head, &numbering));
  h = CombineHash(h, rule.body.size());
  for (const Literal& lit : rule.body) {
    h = CombineHash(h, HashLiteralScoped(program, lit, &numbering));
  }
  return h;
}

uint64_t StructuralLiteralHash(const Program& program, const Literal& lit) {
  VarNumbering numbering;
  return HashLiteralScoped(program, lit, &numbering);
}

uint64_t StructuralFdHash(const Program& program,
                          const FiniteDependency& fd) {
  const PredicateInfo& info = program.predicate(fd.pred);
  uint64_t h =
      CombineHash(kSeedFd, HashBytes(program.symbols().Name(info.name)));
  h = CombineHash(h, info.arity);
  h = CombineHash(h, HashAttrSet(fd.lhs));
  h = CombineHash(h, HashAttrSet(fd.rhs));
  return h;
}

uint64_t StructuralMonoHash(const Program& program,
                            const MonotonicityConstraint& mc) {
  const PredicateInfo& info = program.predicate(mc.pred);
  uint64_t h =
      CombineHash(kSeedMono, HashBytes(program.symbols().Name(info.name)));
  h = CombineHash(h, info.arity);
  h = CombineHash(h, static_cast<uint64_t>(mc.kind));
  h = CombineHash(h, mc.lhs_attr);
  h = CombineHash(h, mc.rhs_attr);
  h = CombineHash(h, static_cast<uint64_t>(mc.bound));
  return h;
}

uint64_t StructuralPredicateHash(const Program& program, PredicateId pred) {
  const PredicateInfo& info = program.predicate(pred);
  uint64_t h = CombineHash(kSeedPredicate,
                           HashBytes(program.symbols().Name(info.name)));
  h = CombineHash(h, info.arity);
  h = CombineHash(h, static_cast<uint64_t>(info.kind));

  std::vector<uint64_t> rules, facts, fds, monos;
  for (const Rule& r : program.rules()) {
    if (r.head.pred == pred) rules.push_back(StructuralRuleHash(program, r));
  }
  for (const Literal& f : program.facts()) {
    if (f.pred == pred) {
      facts.push_back(
          CombineHash(kSeedFact, StructuralLiteralHash(program, f)));
    }
  }
  for (const FiniteDependency& fd : program.fds()) {
    if (fd.pred == pred) fds.push_back(StructuralFdHash(program, fd));
  }
  for (const MonotonicityConstraint& mc : program.monos()) {
    if (mc.pred == pred) monos.push_back(StructuralMonoHash(program, mc));
  }
  h = FoldSorted(h, std::move(rules));
  h = FoldSorted(h, std::move(facts));
  h = FoldSorted(h, std::move(fds));
  h = FoldSorted(h, std::move(monos));
  return h;
}

std::vector<uint64_t> StructuralPredicateHashes(const Program& program) {
  const size_t n = program.num_predicates();
  // Same per-predicate fold as StructuralPredicateHash, but each clause
  // is hashed exactly once and bucketed by its predicate instead of the
  // O(P × program) rescans of the per-predicate entry point.
  std::vector<std::vector<uint64_t>> rules(n), facts(n), fds(n), monos(n);
  for (const Rule& r : program.rules()) {
    rules[r.head.pred].push_back(StructuralRuleHash(program, r));
  }
  for (const Literal& f : program.facts()) {
    facts[f.pred].push_back(
        CombineHash(kSeedFact, StructuralLiteralHash(program, f)));
  }
  for (const FiniteDependency& fd : program.fds()) {
    fds[fd.pred].push_back(StructuralFdHash(program, fd));
  }
  for (const MonotonicityConstraint& mc : program.monos()) {
    monos[mc.pred].push_back(StructuralMonoHash(program, mc));
  }
  std::vector<uint64_t> out(n);
  for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
    const PredicateInfo& info = program.predicate(p);
    uint64_t h = CombineHash(kSeedPredicate,
                             HashBytes(program.symbols().Name(info.name)));
    h = CombineHash(h, info.arity);
    h = CombineHash(h, static_cast<uint64_t>(info.kind));
    h = FoldSorted(h, std::move(rules[p]));
    h = FoldSorted(h, std::move(facts[p]));
    h = FoldSorted(h, std::move(fds[p]));
    h = FoldSorted(h, std::move(monos[p]));
    out[p] = h;
  }
  return out;
}

uint64_t StructuralProgramHashFrom(const Program& program,
                                   const std::vector<uint64_t>& own) {
  std::vector<uint64_t> parts;
  parts.reserve(own.size() + program.queries().size());
  parts = own;
  for (const Literal& q : program.queries()) {
    parts.push_back(
        CombineHash(kSeedQuery, StructuralLiteralHash(program, q)));
  }
  return FoldSorted(kSeedProgram, std::move(parts));
}

std::vector<uint64_t> StrictPredicateKeys(const Program& program) {
  const size_t n = program.num_predicates();
  // Content hash of every term in the pool, one forward sweep: the pool
  // is hash-consed so sub-terms always precede the terms using them and
  // each distinct term is hashed exactly once. Variables hash by NAME
  // (not pool id), which makes the key strict — textually identical
  // clauses in two different programs get equal keys, any textual
  // change breaks equality — without the cost of rendering clauses.
  const TermPool& pool = program.terms();
  std::vector<uint64_t> term_hash(pool.size());
  for (TermId id = 0; id < static_cast<TermId>(pool.size()); ++id) {
    const TermData& t = pool.Get(id);
    switch (t.kind) {
      case TermKind::kVariable:
        term_hash[id] = CombineHash(
            kSeedVariable, HashBytes(program.symbols().Name(t.symbol)));
        break;
      case TermKind::kAtom:
        term_hash[id] = CombineHash(
            kSeedAtom, HashBytes(program.symbols().Name(t.symbol)));
        break;
      case TermKind::kInt:
        term_hash[id] =
            CombineHash(kSeedInt, static_cast<uint64_t>(t.int_value));
        break;
      case TermKind::kFunction: {
        uint64_t h = CombineHash(
            kSeedFunction, HashBytes(program.symbols().Name(t.symbol)));
        h = CombineHash(h, t.args.size());
        for (TermId arg : t.args) h = CombineHash(h, term_hash[arg]);
        term_hash[id] = h;
        break;
      }
    }
  }
  std::vector<uint64_t> pred_name_hash(n);
  for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
    pred_name_hash[p] = HashBytes(
        program.symbols().Name(program.predicate(p).name));
  }
  auto literal_key = [&](const Literal& lit) {
    uint64_t h = CombineHash(kSeedLiteral, pred_name_hash[lit.pred]);
    h = CombineHash(h, lit.args.size());
    for (TermId arg : lit.args) h = CombineHash(h, term_hash[arg]);
    return h;
  };

  std::vector<std::vector<uint64_t>> rules(n), facts(n), fds(n), monos(n);
  for (const Rule& r : program.rules()) {
    uint64_t h = CombineHash(kSeedRule, literal_key(r.head));
    h = CombineHash(h, r.body.size());
    for (const Literal& lit : r.body) h = CombineHash(h, literal_key(lit));
    rules[r.head.pred].push_back(h);
  }
  for (const Literal& f : program.facts()) {
    facts[f.pred].push_back(CombineHash(kSeedFact, literal_key(f)));
  }
  for (const FiniteDependency& fd : program.fds()) {
    fds[fd.pred].push_back(
        CombineHash(HashAttrSet(fd.lhs), HashAttrSet(fd.rhs)));
  }
  for (const MonotonicityConstraint& mc : program.monos()) {
    uint64_t h = CombineHash(kSeedMono, static_cast<uint64_t>(mc.kind));
    h = CombineHash(h, mc.lhs_attr);
    h = CombineHash(h, mc.rhs_attr);
    h = CombineHash(h, static_cast<uint64_t>(mc.bound));
    monos[mc.pred].push_back(h);
  }
  std::vector<uint64_t> out(n);
  for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
    const PredicateInfo& info = program.predicate(p);
    uint64_t h = CombineHash(0x73747269637470ULL /* "strictp" */,
                             pred_name_hash[p]);
    h = CombineHash(h, info.arity);
    h = CombineHash(h, static_cast<uint64_t>(info.kind));
    h = FoldSorted(h, std::move(rules[p]));
    h = FoldSorted(h, std::move(facts[p]));
    h = FoldSorted(h, std::move(fds[p]));
    h = FoldSorted(h, std::move(monos[p]));
    out[p] = h;
  }
  return out;
}

uint64_t StructuralProgramHash(const Program& program) {
  std::vector<uint64_t> parts;
  parts.reserve(program.num_predicates() + program.queries().size());
  for (PredicateId p = 0;
       p < static_cast<PredicateId>(program.num_predicates()); ++p) {
    parts.push_back(StructuralPredicateHash(program, p));
  }
  for (const Literal& q : program.queries()) {
    parts.push_back(
        CombineHash(kSeedQuery, StructuralLiteralHash(program, q)));
  }
  return FoldSorted(kSeedProgram, std::move(parts));
}

uint64_t StrictProgramHash(const Program& program) {
  return HashBytes(program.ToString());
}

}  // namespace hornsafe
