#ifndef HORNSAFE_LANG_DIAGNOSTIC_H_
#define HORNSAFE_LANG_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lang/source_span.h"

namespace hornsafe {

/// Severity of one static-analysis finding.
enum class Severity : uint8_t {
  /// Stylistic or redundancy finding; never affects a verdict.
  kNote,
  /// The program is analyzable but the finding predicts a degenerate
  /// or surprising safety verdict (e.g. an undeclared-FD infinite
  /// predicate can only come out unsafe).
  kWarning,
  /// The program violates a structural requirement; analysis either
  /// refuses it or its verdicts are meaningless.
  kError,
};

/// Printable name of a `Severity` ("note" / "warning" / "error").
const char* SeverityName(Severity severity);

/// One span-carrying static-analysis finding. This is the single error
/// surface shared by `Program::Validate()` (structural errors) and the
/// lint checks in `src/lint/` (advisory findings): every diagnostic
/// carries a stable `HSnnn` code, a source span when the offending
/// clause was parsed from text, a primary message, and an optional
/// secondary note (typically a fix suggestion).
///
/// The code table lives in docs/SYNTAX.md ("Diagnostic codes").
struct Diagnostic {
  /// Stable machine-readable code, "HS001".."HSnnn".
  std::string code;
  Severity severity = Severity::kWarning;
  SourceSpan span;
  std::string message;
  /// Optional elaboration / fix suggestion ("" = none).
  std::string note;
};

/// Renders `diag` in the canonical compiler style:
///
///   <file>:<line>:<col>: <severity>[<code>]: <message>
///
/// The `<file>:` prefix is omitted when `file` is empty; the
/// `<line>:<col>:` part is omitted for spanless diagnostics. The note,
/// when present, is NOT included — callers emit it as a follow-up
/// `note: ...` line (see FormatDiagnosticWithNote).
std::string FormatDiagnostic(const Diagnostic& diag, std::string_view file);

/// `FormatDiagnostic` plus a "  note: ..." second line when the
/// diagnostic carries one.
std::string FormatDiagnosticWithNote(const Diagnostic& diag,
                                     std::string_view file);

/// Sorts diagnostics into the canonical reporting order: by source
/// position, then code, then message — deterministic for golden tests
/// regardless of the order checks ran in.
void SortDiagnostics(std::vector<Diagnostic>* diags);

/// Number of diagnostics at exactly `severity`.
size_t CountSeverity(const std::vector<Diagnostic>& diags,
                     Severity severity);

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_DIAGNOSTIC_H_
