#ifndef HORNSAFE_LANG_UNIFY_H_
#define HORNSAFE_LANG_UNIFY_H_

#include <unordered_map>

#include "lang/term.h"

namespace hornsafe {

/// A substitution: a finite map from variables (terms of kind kVariable)
/// to terms. Bindings are not required to be idempotent; `Apply` follows
/// chains.
using Substitution = std::unordered_map<TermId, TermId>;

/// Applies `subst` to `term`, replacing bound variables recursively.
/// Unbound variables are left in place.
TermId ApplySubstitution(TermPool& pool, const Substitution& subst,
                         TermId term);

/// Attempts to unify `a` and `b` under the bindings already present in
/// `*subst`, extending `*subst` on success. Performs the occurs check, so
/// unification never creates cyclic terms. On failure `*subst` may contain
/// partial bindings; callers should discard it.
bool Unify(TermPool& pool, TermId a, TermId b, Substitution* subst);

/// Matches `pattern` against the ground term `ground` (one-way
/// unification): only variables of `pattern` may be bound.
bool MatchGround(TermPool& pool, TermId pattern, TermId ground,
                 Substitution* subst);

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_UNIFY_H_
