#include "lang/term.h"

#include <algorithm>

#include "util/strings.h"

namespace hornsafe {

size_t TermPool::KeyHash::operator()(const Key& k) const {
  size_t seed = static_cast<size_t>(k.kind);
  HashCombine(seed, std::hash<uint64_t>{}(k.symbol));
  HashCombine(seed, std::hash<int64_t>{}(k.int_value));
  for (TermId a : k.args) HashCombine(seed, std::hash<uint64_t>{}(a));
  return seed;
}

TermId TermPool::Intern(Key key) {
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(nodes_.size());
  nodes_.push_back(TermData{key.kind, key.symbol, key.int_value, key.args});
  index_.emplace(std::move(key), id);
  return id;
}

TermId TermPool::MakeVariable(SymbolId name) {
  return Intern(Key{TermKind::kVariable, name, 0, {}});
}

TermId TermPool::MakeAtom(SymbolId name) {
  return Intern(Key{TermKind::kAtom, name, 0, {}});
}

TermId TermPool::MakeInt(int64_t value) {
  return Intern(Key{TermKind::kInt, kInvalidSymbol, value, {}});
}

TermId TermPool::MakeFunction(SymbolId symbol, std::vector<TermId> args) {
  return Intern(Key{TermKind::kFunction, symbol, 0, std::move(args)});
}

bool TermPool::IsGround(TermId id) const {
  const TermData& t = Get(id);
  switch (t.kind) {
    case TermKind::kVariable:
      return false;
    case TermKind::kAtom:
    case TermKind::kInt:
      return true;
    case TermKind::kFunction:
      return std::all_of(t.args.begin(), t.args.end(),
                         [this](TermId a) { return IsGround(a); });
  }
  return true;
}

void TermPool::CollectVariables(TermId id, std::vector<TermId>* out) const {
  const TermData& t = Get(id);
  switch (t.kind) {
    case TermKind::kVariable:
      out->push_back(id);
      return;
    case TermKind::kAtom:
    case TermKind::kInt:
      return;
    case TermKind::kFunction:
      for (TermId a : t.args) CollectVariables(a, out);
      return;
  }
}

int TermPool::Depth(TermId id) const {
  const TermData& t = Get(id);
  if (t.kind != TermKind::kFunction) return 1;
  int d = 0;
  for (TermId a : t.args) d = std::max(d, Depth(a));
  return d + 1;
}

std::string TermPool::ToString(TermId id, const SymbolTable& symbols) const {
  const TermData& t = Get(id);
  switch (t.kind) {
    case TermKind::kVariable:
    case TermKind::kAtom:
      return symbols.Name(t.symbol);
    case TermKind::kInt:
      return std::to_string(t.int_value);
    case TermKind::kFunction:
      break;
  }
  // Cons chains are re-sugared into list notation.
  if (symbols.Name(t.symbol) == kConsName && t.args.size() == 2) {
    std::string out = "[";
    out += ToString(t.args[0], symbols);
    TermId tail = t.args[1];
    while (true) {
      const TermData& td = Get(tail);
      if (td.kind == TermKind::kAtom && symbols.Name(td.symbol) == kNilName) {
        out += "]";
        return out;
      }
      if (td.kind == TermKind::kFunction &&
          symbols.Name(td.symbol) == kConsName && td.args.size() == 2) {
        out += ",";
        out += ToString(td.args[0], symbols);
        tail = td.args[1];
        continue;
      }
      out += "|";
      out += ToString(tail, symbols);
      out += "]";
      return out;
    }
  }
  std::string out = symbols.Name(t.symbol);
  out += "(";
  out += JoinMapped(t.args, ",", [&](TermId a) { return ToString(a, symbols); });
  out += ")";
  return out;
}

}  // namespace hornsafe
