#ifndef HORNSAFE_LANG_TERM_H_
#define HORNSAFE_LANG_TERM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/symbol.h"

namespace hornsafe {

/// Dense identifier of a hash-consed term inside a `TermPool`.
///
/// Structural equality of terms is id equality: the pool never stores two
/// structurally identical terms under different ids.
using TermId = uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// The four syntactic categories of terms in a Horn clause (paper,
/// Section 1: "A term is a constant, a variable, or an m-ary function
/// symbol followed by m terms"; constants split into atoms and integers).
enum class TermKind : uint8_t {
  kVariable,
  kAtom,
  kInt,
  kFunction,
};

/// Immutable payload of one term node.
struct TermData {
  TermKind kind;
  /// Variable name, atom name, or function symbol; unused for kInt.
  SymbolId symbol = kInvalidSymbol;
  /// Integer payload; only meaningful for kInt.
  int64_t int_value = 0;
  /// Sub-terms; only non-empty for kFunction.
  std::vector<TermId> args;
};

/// Arena of hash-consed terms.
///
/// Terms are immutable once created; `MakeX` methods return the existing
/// id when the same structure was interned before, so `TermId` equality is
/// structural equality and sub-term sharing is maximal.
class TermPool {
 public:
  /// Name of the list constructor function symbol (Prolog's '.'/2); the
  /// parser desugars `[H|T]` into it and the printer re-sugars it.
  static constexpr const char* kConsName = ".";
  /// Name of the empty-list atom.
  static constexpr const char* kNilName = "[]";

  TermPool() = default;
  TermPool(const TermPool&) = default;
  TermPool& operator=(const TermPool&) = default;

  TermId MakeVariable(SymbolId name);
  TermId MakeAtom(SymbolId name);
  TermId MakeInt(int64_t value);
  TermId MakeFunction(SymbolId symbol, std::vector<TermId> args);

  const TermData& Get(TermId id) const { return nodes_[id]; }
  size_t size() const { return nodes_.size(); }

  bool IsVariable(TermId id) const {
    return Get(id).kind == TermKind::kVariable;
  }
  bool IsConstant(TermId id) const {
    TermKind k = Get(id).kind;
    return k == TermKind::kAtom || k == TermKind::kInt;
  }
  bool IsFunction(TermId id) const {
    return Get(id).kind == TermKind::kFunction;
  }

  /// True iff no variable occurs in `id`.
  bool IsGround(TermId id) const;

  /// Appends every variable occurring in `id` to `*out`, left-to-right,
  /// without de-duplication.
  void CollectVariables(TermId id, std::vector<TermId>* out) const;

  /// Maximum nesting depth: constants/variables are depth 1.
  int Depth(TermId id) const;

  /// Renders `id` using names from `symbols`. Cons chains print in list
  /// sugar: `[1,2|T]`.
  std::string ToString(TermId id, const SymbolTable& symbols) const;

 private:
  struct Key {
    TermKind kind;
    SymbolId symbol;
    int64_t int_value;
    std::vector<TermId> args;
    bool operator==(const Key& o) const {
      return kind == o.kind && symbol == o.symbol &&
             int_value == o.int_value && args == o.args;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  TermId Intern(Key key);

  std::vector<TermData> nodes_;
  std::unordered_map<Key, TermId, KeyHash> index_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_TERM_H_
