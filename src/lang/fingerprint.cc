#include "lang/fingerprint.h"

#include <algorithm>

#include "lang/struct_hash.h"

namespace hornsafe {
namespace {

/// Iterative Tarjan SCC over the predicate dependency graph. Components
/// are emitted callees-first, so numbering them in emission order gives
/// a reverse topological order of the condensation.
struct Tarjan {
  const std::vector<std::vector<PredicateId>>& adj;
  std::vector<int32_t> index, lowlink, scc_of;
  std::vector<char> on_stack;
  std::vector<PredicateId> stack;
  int32_t next_index = 0;
  int32_t num_sccs = 0;

  explicit Tarjan(const std::vector<std::vector<PredicateId>>& a)
      : adj(a),
        index(a.size(), -1),
        lowlink(a.size(), 0),
        scc_of(a.size(), -1),
        on_stack(a.size(), 0) {}

  void Run(PredicateId root) {
    if (index[root] >= 0) return;
    struct Frame {
      PredicateId v;
      size_t next_child = 0;
    };
    std::vector<Frame> frames;
    frames.push_back({root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_child < adj[f.v].size()) {
        PredicateId w = adj[f.v][f.next_child++];
        if (index[w] < 0) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          while (true) {
            PredicateId w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc_of[w] = num_sccs;
            if (w == f.v) break;
          }
          ++num_sccs;
        }
        PredicateId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          PredicateId parent = frames.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
};

}  // namespace

PredicateDepGraph PredicateDepGraph::Build(const Program& program) {
  PredicateDepGraph g;
  size_t n = program.num_predicates();
  g.callees_.resize(n);
  for (const Rule& rule : program.rules()) {
    std::vector<PredicateId>& out = g.callees_[rule.head.pred];
    for (const Literal& lit : rule.body) out.push_back(lit.pred);
  }
  for (std::vector<PredicateId>& out : g.callees_) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  Tarjan tarjan(g.callees_);
  for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
    tarjan.Run(p);
  }
  g.scc_of_ = std::move(tarjan.scc_of);
  g.num_sccs_ = tarjan.num_sccs;
  g.scc_members_.resize(g.num_sccs_);
  for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
    g.scc_members_[g.scc_of_[p]].push_back(p);
  }
  return g;
}

bool PredicateHashMemo::Lookup(uint64_t strict_key, uint64_t* own) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(strict_key);
  if (it == memo_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *own = it->second;
  return true;
}

void PredicateHashMemo::Store(uint64_t strict_key, uint64_t own) {
  std::lock_guard<std::mutex> lock(mu_);
  if (memo_.size() >= kMaxEntries) memo_.clear();
  memo_[strict_key] = own;
}

PredicateHashMemo::Stats PredicateHashMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PredicateHashMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

ProgramFingerprints ComputeFingerprints(const Program& program,
                                        PredicateHashMemo* memo) {
  ProgramFingerprints fps;
  size_t n = program.num_predicates();
  if (memo == nullptr) {
    fps.own = StructuralPredicateHashes(program);
  } else {
    std::vector<uint64_t> strict = StrictPredicateKeys(program);
    fps.own.resize(n, 0);
    for (PredicateId p = 0; p < static_cast<PredicateId>(n); ++p) {
      if (!memo->Lookup(strict[p], &fps.own[p])) {
        fps.own[p] = StructuralPredicateHash(program, p);
        memo->Store(strict[p], fps.own[p]);
      }
    }
  }

  PredicateDepGraph graph = PredicateDepGraph::Build(program);

  // Components are numbered in reverse topological order, so walking
  // them in ascending order visits every callee component before its
  // callers and each scc fingerprint can fold the (already final) cone
  // fingerprints of its external callees.
  std::vector<uint64_t> scc_fp(graph.NumSccs(), 0);
  fps.cone.resize(n, 0);
  for (int32_t scc = 0; scc < graph.NumSccs(); ++scc) {
    const std::vector<PredicateId>& members = graph.SccMembers(scc);
    std::vector<uint64_t> parts;
    for (PredicateId m : members) {
      parts.push_back(fps.own[m]);
      for (PredicateId callee : graph.Callees(m)) {
        if (graph.SccOf(callee) != scc) {
          parts.push_back(fps.cone[callee]);
        }
      }
    }
    std::sort(parts.begin(), parts.end());
    uint64_t h = MixHash(0x636f6e65ULL);  // "cone"
    for (uint64_t x : parts) h = CombineHash(h, x);
    scc_fp[scc] = h;
    for (PredicateId m : members) {
      fps.cone[m] = CombineHash(scc_fp[scc], fps.own[m]);
    }
  }

  fps.program = StructuralProgramHashFrom(program, fps.own);
  return fps;
}

}  // namespace hornsafe
