#include "lang/symbol.h"

#include <algorithm>

#include "util/strings.h"

namespace hornsafe {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidSymbol : it->second;
}

SymbolId SymbolTable::InternFresh(std::string_view base) {
  if (Lookup(base) == kInvalidSymbol) return Intern(base);
  int& next = fresh_counters_[std::string(base)];
  for (int i = std::max(next, 1);; ++i) {
    std::string candidate = StrCat(base, "$", i);
    if (Lookup(candidate) == kInvalidSymbol) {
      next = i + 1;
      return Intern(candidate);
    }
  }
}

}  // namespace hornsafe
