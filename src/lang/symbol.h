#ifndef HORNSAFE_LANG_SYMBOL_H_
#define HORNSAFE_LANG_SYMBOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hornsafe {

/// Dense identifier of an interned name (predicate, variable, atom or
/// function symbol). Ids are indices into the owning `SymbolTable`.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// Interns strings to dense `SymbolId`s.
///
/// All names in a `Program` (predicates, atoms, function symbols,
/// variables) share one table, so equal names always map to equal ids and
/// comparisons downstream are integer comparisons.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` or `kInvalidSymbol` if never interned.
  SymbolId Lookup(std::string_view name) const;

  /// The string spelled by `id`. `id` must be valid for this table.
  const std::string& Name(SymbolId id) const { return names_[id]; }

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

  /// Interns a name guaranteed not to collide with any existing symbol by
  /// appending a numeric suffix when needed ("base", "base$1", "base$2"...).
  /// Used by program transformations that introduce fresh predicates.
  SymbolId InternFresh(std::string_view base);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
  /// Next suffix to try per InternFresh base, so generating n fresh
  /// names costs O(n) instead of O(n²).
  std::unordered_map<std::string, int> fresh_counters_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_SYMBOL_H_
