#ifndef HORNSAFE_LANG_PROGRAM_H_
#define HORNSAFE_LANG_PROGRAM_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lang/dependency.h"
#include "lang/diagnostic.h"
#include "lang/literal.h"
#include "lang/rule.h"
#include "lang/source_span.h"
#include "lang/symbol.h"
#include "lang/term.h"
#include "util/status.h"

namespace hornsafe {

/// Classification of a predicate in the database triple (EDB, IDB, IC)
/// of Section 1 of the paper.
enum class PredicateKind : uint8_t {
  /// EDB predicate with finitely many facts ("a, b, ..." in the paper).
  kFiniteBase,
  /// EDB predicate that may hold infinitely many tuples, used to model
  /// arithmetic and function symbols ("f, g, h, ...").
  kInfiniteBase,
  /// IDB predicate defined by rules ("p, q, ...").
  kDerived,
};

/// Printable name of a `PredicateKind`.
const char* PredicateKindName(PredicateKind kind);

/// Metadata for one interned predicate.
struct PredicateInfo {
  SymbolId name = kInvalidSymbol;
  uint32_t arity = 0;
  PredicateKind kind = PredicateKind::kFiniteBase;
  /// Source position of the predicate's first occurrence (declaration
  /// or first use); 0 when interned programmatically.
  SourceSpan span;
};

/// A complete deductive database: symbol/term pools, predicate metadata,
/// IDB rules, EDB facts, integrity constraints (finiteness dependencies
/// and monotonicity constraints) and queries.
///
/// `Program` owns everything the analyses and the evaluator reference, so
/// `TermId`/`PredicateId`/`SymbolId` values are only meaningful relative
/// to one `Program`. It is copyable (useful for program transformations
/// that start from a snapshot).
class Program {
 public:
  Program() = default;
  Program(const Program&) = default;
  Program& operator=(const Program&) = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  TermPool& terms() { return terms_; }
  const TermPool& terms() const { return terms_; }

  // --- Predicates -------------------------------------------------------

  /// Returns the id of predicate `name/arity`, creating it (as a finite
  /// base predicate) on first use.
  PredicateId InternPredicate(std::string_view name, uint32_t arity);
  PredicateId InternPredicate(SymbolId name, uint32_t arity);

  /// Returns the id of `name/arity` or `kInvalidPredicate` if unknown.
  PredicateId FindPredicate(std::string_view name, uint32_t arity) const;

  /// Records the source position of `id`'s first occurrence. Only the
  /// first call takes effect (later uses do not move the span); the
  /// parser calls this as it interns predicates.
  void SetPredicateSpan(PredicateId id, SourceSpan span);

  const PredicateInfo& predicate(PredicateId id) const {
    return predicates_[id];
  }
  size_t num_predicates() const { return predicates_.size(); }

  /// The bare name of predicate `id`.
  const std::string& PredicateName(PredicateId id) const {
    return symbols_.Name(predicates_[id].name);
  }

  bool IsDerived(PredicateId id) const {
    return predicates_[id].kind == PredicateKind::kDerived;
  }
  bool IsFiniteBase(PredicateId id) const {
    return predicates_[id].kind == PredicateKind::kFiniteBase;
  }
  bool IsInfiniteBase(PredicateId id) const {
    return predicates_[id].kind == PredicateKind::kInfiniteBase;
  }

  /// Marks `id` as an infinite base predicate. Fails if it is derived or
  /// already has stored facts.
  Status DeclareInfinite(PredicateId id);

  // --- Clauses ----------------------------------------------------------

  /// Adds an IDB rule. The head predicate becomes derived. Fails on arity
  /// mismatches or if the head predicate was declared infinite.
  Status AddRule(Rule rule);

  /// Adds a ground EDB fact over a finite base predicate.
  Status AddFact(Literal fact);

  // --- Integrity constraints --------------------------------------------

  /// Adds a finiteness dependency. The predicate must be a base predicate
  /// and the attribute sets must lie within its arity.
  Status AddFiniteDependency(FiniteDependency fd);

  /// Adds a monotonicity constraint, validated the same way.
  Status AddMonotonicity(MonotonicityConstraint mc);

  // --- Queries ----------------------------------------------------------

  /// Registers a query literal (the paper's `q(t)?` form).
  Status AddQuery(Literal query);

  // --- Access -----------------------------------------------------------

  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<Literal>& facts() const { return facts_; }
  const std::vector<FiniteDependency>& fds() const { return fds_; }
  const std::vector<MonotonicityConstraint>& monos() const { return monos_; }
  const std::vector<Literal>& queries() const { return queries_; }

  /// All finiteness dependencies declared over `pred`.
  std::vector<FiniteDependency> FdsFor(PredicateId pred) const;

  /// All monotonicity constraints declared over `pred`.
  std::vector<MonotonicityConstraint> MonosFor(PredicateId pred) const;

  /// Rules whose head predicate is `pred`.
  std::vector<const Rule*> RulesFor(PredicateId pred) const;

  /// Removes and returns all rules / facts / queries. Predicate kind
  /// markings are unchanged. Used by program transformations
  /// (canonicalization) that rebuild the clause set in place.
  std::vector<Rule> TakeRules();
  std::vector<Literal> TakeFacts();
  std::vector<Literal> TakeQueries();
  std::vector<FiniteDependency> TakeFds();

  /// Checks global invariants: EDB and IDB predicate sets are disjoint
  /// and every predicate's arity is representable. Returns the first
  /// failure of `ValidateDiagnostics()` as a kInvalidProgram status
  /// (with the diagnostic's source position in the message when known).
  Status Validate() const;

  /// The span-carrying form of `Validate()`: every structural-invariant
  /// violation as an error diagnostic (HS003 arity limit, HS004 EDB/IDB
  /// overlap — see docs/SYNTAX.md). The lint driver merges these with
  /// the advisory checks of src/lint, so structural errors and lint
  /// findings share one error surface.
  std::vector<Diagnostic> ValidateDiagnostics() const;

  // --- Convenience term builders (primarily for tests and examples) -----

  TermId Var(std::string_view name) {
    return terms_.MakeVariable(symbols_.Intern(name));
  }
  TermId Atom(std::string_view name) {
    return terms_.MakeAtom(symbols_.Intern(name));
  }
  TermId Int(int64_t v) { return terms_.MakeInt(v); }
  TermId Func(std::string_view symbol, std::vector<TermId> args) {
    return terms_.MakeFunction(symbols_.Intern(symbol), std::move(args));
  }

  /// Builds a literal over `name/args.size()`, interning the predicate.
  Literal MakeLiteral(std::string_view name, std::vector<TermId> args) {
    PredicateId p =
        InternPredicate(name, static_cast<uint32_t>(args.size()));
    return Literal{p, std::move(args)};
  }

  // --- Printing ---------------------------------------------------------

  std::string ToString(const Literal& lit) const;
  std::string ToString(const Rule& rule) const;

  /// Full listing: declarations, rules, facts, constraints, queries.
  std::string ToString() const;

 private:
  Status CheckLiteral(const Literal& lit, std::string_view context) const;

  struct PredKeyHash {
    size_t operator()(const std::pair<SymbolId, uint32_t>& k) const {
      return std::hash<uint64_t>{}((uint64_t{k.first} << 32) | k.second);
    }
  };

  SymbolTable symbols_;
  TermPool terms_;
  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::pair<SymbolId, uint32_t>, PredicateId, PredKeyHash>
      predicate_index_;
  std::vector<Rule> rules_;
  std::vector<Literal> facts_;
  std::vector<FiniteDependency> fds_;
  std::vector<MonotonicityConstraint> monos_;
  std::vector<Literal> queries_;
};

/// The distinct variables of `rule` in first-occurrence order
/// (head first, then body left to right).
std::vector<TermId> RuleVariables(const TermPool& pool, const Rule& rule);

/// The distinct variables of `lit` in first-occurrence order.
std::vector<TermId> LiteralVariables(const TermPool& pool, const Literal& lit);

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_PROGRAM_H_
