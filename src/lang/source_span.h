#ifndef HORNSAFE_LANG_SOURCE_SPAN_H_
#define HORNSAFE_LANG_SOURCE_SPAN_H_

namespace hornsafe {

/// A position in the program source text, 1-based (the lexer's
/// convention). Line 0 means "unknown" — the clause was built
/// programmatically (tests, canonicalization) rather than parsed.
///
/// Spans are *metadata*: they never participate in equality or in the
/// structural hashes (`r(X) :- f(X)` on line 3 and the same rule on
/// line 7 are the same rule), so threading them through `Program` does
/// not perturb the pipeline cache or duplicate detection.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_SOURCE_SPAN_H_
