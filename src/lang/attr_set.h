#ifndef HORNSAFE_LANG_ATTR_SET_H_
#define HORNSAFE_LANG_ATTR_SET_H_

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace hornsafe {

/// A set of attribute (argument) positions of one predicate, 0-based.
///
/// Backed by a 64-bit mask, so predicates may have at most 64 arguments —
/// far beyond anything the safety analysis meets in practice. Used to
/// state finiteness dependencies `lhs ⇝ rhs` and to run attribute-set
/// closure (Theorem 1 machinery).
class AttrSet {
 public:
  /// Maximum representable attribute index + 1.
  static constexpr uint32_t kMaxAttrs = 64;

  constexpr AttrSet() : bits_(0) {}
  constexpr explicit AttrSet(uint64_t bits) : bits_(bits) {}

  /// The singleton set {i}.
  static AttrSet Single(uint32_t i) {
    assert(i < kMaxAttrs);
    return AttrSet(uint64_t{1} << i);
  }

  /// The set of the listed positions.
  static AttrSet Of(std::initializer_list<uint32_t> attrs) {
    AttrSet s;
    for (uint32_t a : attrs) s.Add(a);
    return s;
  }

  /// The full set {0, 1, ..., arity-1}.
  static AttrSet AllBelow(uint32_t arity) {
    assert(arity <= kMaxAttrs);
    return arity == kMaxAttrs ? AttrSet(~uint64_t{0})
                              : AttrSet((uint64_t{1} << arity) - 1);
  }

  void Add(uint32_t i) {
    assert(i < kMaxAttrs);
    bits_ |= uint64_t{1} << i;
  }
  void Remove(uint32_t i) {
    assert(i < kMaxAttrs);
    bits_ &= ~(uint64_t{1} << i);
  }

  bool Contains(uint32_t i) const {
    return i < kMaxAttrs && (bits_ >> i) & 1;
  }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcountll(bits_); }

  AttrSet Union(AttrSet o) const { return AttrSet(bits_ | o.bits_); }
  AttrSet Intersect(AttrSet o) const { return AttrSet(bits_ & o.bits_); }
  AttrSet Minus(AttrSet o) const { return AttrSet(bits_ & ~o.bits_); }
  bool SubsetOf(AttrSet o) const { return (bits_ & ~o.bits_) == 0; }

  uint64_t bits() const { return bits_; }

  bool operator==(const AttrSet& o) const { return bits_ == o.bits_; }
  bool operator!=(const AttrSet& o) const { return bits_ != o.bits_; }

  /// Member positions in increasing order.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    for (uint64_t b = bits_; b != 0; b &= b - 1) {
      out.push_back(static_cast<uint32_t>(__builtin_ctzll(b)));
    }
    return out;
  }

  /// Renders as 1-based positions, the paper's convention: "{1,3}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (uint32_t a : ToVector()) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(a + 1);
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_ATTR_SET_H_
