#ifndef HORNSAFE_LANG_STRUCT_HASH_H_
#define HORNSAFE_LANG_STRUCT_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// Stable structural hashing of program components, the foundation of
/// the cross-query pipeline cache (DESIGN.md, D12).
///
/// Two invariances are guaranteed and pinned by tests:
///
///   * *alpha-invariance* — variable names never enter a hash; variables
///     are numbered by first occurrence (head first, then body left to
///     right), so `r(X) :- f(X,Y)` and `r(A) :- f(A,B)` hash equal;
///   * *order-invariance* — `StructuralPredicateHash` and
///     `StructuralProgramHash` fold rule/fact/constraint hashes as
///     sorted multisets, so permuting clauses does not change them.
///
/// Everything semantic *does* enter: predicate names, arities and kinds
/// (finite/infinite/derived), literal order inside a body, constants,
/// function symbols, finiteness dependencies, monotonicity constraints
/// and facts. Any such edit moves the hash.
///
/// Hashes are 64-bit with strong mixing (splitmix64 finalizer). They
/// address cache entries, so a collision could serve a wrong verdict;
/// at 2^-64 per pair this is the standard content-addressing trade.

/// Hash of one rule: alpha-invariant, sensitive to everything else
/// (head/body predicates, literal order, argument patterns, constants,
/// function structure).
uint64_t StructuralRuleHash(const Program& program, const Rule& rule);

/// Hash of a stand-alone literal (e.g. a query): variables numbered by
/// first occurrence within the literal.
uint64_t StructuralLiteralHash(const Program& program, const Literal& lit);

/// Hash of a finiteness dependency (predicate name/arity + both sides).
uint64_t StructuralFdHash(const Program& program,
                          const FiniteDependency& fd);

/// Hash of a monotonicity constraint.
uint64_t StructuralMonoHash(const Program& program,
                            const MonotonicityConstraint& mc);

/// Per-predicate *own* hash: name, arity, kind, and the sorted hash
/// multisets of the predicate's rules, facts, finiteness dependencies
/// and monotonicity constraints. Does not look through callees — that
/// is the cone fingerprint's job (lang/fingerprint.h).
uint64_t StructuralPredicateHash(const Program& program, PredicateId pred);

/// Every predicate's own hash in one pass: each rule/fact/dependency/
/// constraint is hashed once and bucketed by predicate, instead of one
/// full-program scan per predicate. out[p] == StructuralPredicateHash
/// (program, p) for every p; pinned by tests.
std::vector<uint64_t> StructuralPredicateHashes(const Program& program);

/// StructuralProgramHash assembled from precomputed per-predicate own
/// hashes (`own[p]` must equal StructuralPredicateHash(program, p)),
/// so a caller that already has them — ComputeFingerprints — does not
/// hash every clause a second time.
uint64_t StructuralProgramHashFrom(const Program& program,
                                   const std::vector<uint64_t>& own);

/// Strict per-predicate clause-set keys: for each predicate, an
/// order-invariant fold of the *rendered* rule/fact texts plus the raw
/// dependency/constraint payloads. Unlike the structural hashes these
/// are sensitive to variable names, which makes them a cheap change
/// detector: rendering a clause is cheaper than alpha-numbering its
/// term DAG, so the fingerprint memo (lang/fingerprint.h) keys own
/// hashes by this and skips structural hashing for every predicate
/// whose clauses are textually unchanged across updates.
std::vector<uint64_t> StrictPredicateKeys(const Program& program);

/// Whole-program hash: sorted fold of every predicate's own hash plus
/// the sorted query-literal hashes. Alpha- and clause-order-invariant.
uint64_t StructuralProgramHash(const Program& program);

/// *Strict* program hash: a hash of the full rendered listing
/// (`Program::ToString()`), sensitive to clause order and variable
/// names. Used to key caches whose payloads must be bit-identical to a
/// cold run (canonicalization output, LFP bits), where "equivalent up
/// to renaming" is not enough.
uint64_t StrictProgramHash(const Program& program);

/// splitmix64-style finalizer used throughout; exposed for callers that
/// mix extra context (options bits) into a key.
uint64_t MixHash(uint64_t x);

/// Order-dependent combine of two hashes.
uint64_t CombineHash(uint64_t seed, uint64_t value);

/// Hash of a raw byte string (FNV-1a folded through MixHash).
uint64_t HashBytes(std::string_view bytes);

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_STRUCT_HASH_H_
