#ifndef HORNSAFE_LANG_DEPENDENCY_H_
#define HORNSAFE_LANG_DEPENDENCY_H_

#include <cstdint>

#include "lang/attr_set.h"
#include "lang/literal.h"
#include "lang/source_span.h"

namespace hornsafe {

/// A finiteness dependency `lhs ⇝ rhs` over predicate `pred` (paper,
/// Section 1): in every legal instance, if the projection of the relation
/// onto `lhs` is finite then its projection onto `rhs` is finite.
///
/// This is strictly weaker than a functional dependency and holds
/// trivially on every finite relation. Attribute positions are 0-based
/// here; the paper's prose is 1-based (printing converts).
struct FiniteDependency {
  PredicateId pred = kInvalidPredicate;
  AttrSet lhs;
  AttrSet rhs;
  /// Position of the `.fd` directive (0 = built programmatically).
  /// Metadata only: excluded from equality and structural hashes.
  SourceSpan span;

  bool operator==(const FiniteDependency& o) const {
    return pred == o.pred && lhs == o.lhs && rhs == o.rhs;
  }
};

/// The two shapes of monotonicity constraint from Section 4 of the paper:
/// attribute-vs-attribute (`rᵢ > rⱼ` in every tuple) and
/// attribute-vs-constant (`rᵢ > c` or `rᵢ < c` in every tuple).
enum class MonoKind : uint8_t {
  /// attrs: lhs_attr > rhs_attr in every tuple.
  kAttrGreaterAttr,
  /// lhs_attr > bound in every tuple (the attribute is bounded below).
  kAttrGreaterConst,
  /// lhs_attr < bound in every tuple (the attribute is bounded above).
  kAttrLessConst,
};

/// A monotonicity constraint over predicate `pred` (paper, Section 4).
/// Values are assumed drawn from a domain with a partial order in which
/// every interval bounded on both sides is finite (e.g. the integers) —
/// that is what makes "decreasing and bounded below" imply finitely many
/// traversals.
struct MonotonicityConstraint {
  PredicateId pred = kInvalidPredicate;
  MonoKind kind = MonoKind::kAttrGreaterAttr;
  /// 0-based position of the left attribute.
  uint32_t lhs_attr = 0;
  /// 0-based position of the right attribute (kAttrGreaterAttr only).
  uint32_t rhs_attr = 0;
  /// Constant bound (const forms only).
  int64_t bound = 0;
  /// Position of the `.mono` directive (0 = built programmatically).
  /// Metadata only: excluded from equality and structural hashes.
  SourceSpan span;

  bool operator==(const MonotonicityConstraint& o) const {
    return pred == o.pred && kind == o.kind && lhs_attr == o.lhs_attr &&
           rhs_attr == o.rhs_attr && bound == o.bound;
  }
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_DEPENDENCY_H_
