#include "lang/unify.h"

namespace hornsafe {

namespace {

/// Follows variable bindings until reaching an unbound variable or a
/// non-variable term.
TermId Walk(const TermPool& pool, const Substitution& subst, TermId t) {
  while (pool.IsVariable(t)) {
    auto it = subst.find(t);
    if (it == subst.end()) return t;
    t = it->second;
  }
  return t;
}

/// True if variable `var` occurs in `t` (after walking bindings).
bool Occurs(const TermPool& pool, const Substitution& subst, TermId var,
            TermId t) {
  t = Walk(pool, subst, t);
  if (t == var) return true;
  const TermData& d = pool.Get(t);
  if (d.kind != TermKind::kFunction) return false;
  for (TermId a : d.args) {
    if (Occurs(pool, subst, var, a)) return true;
  }
  return false;
}

}  // namespace

TermId ApplySubstitution(TermPool& pool, const Substitution& subst,
                         TermId term) {
  TermId t = Walk(pool, subst, term);
  const TermData& d = pool.Get(t);
  if (d.kind != TermKind::kFunction) return t;
  std::vector<TermId> args;
  args.reserve(d.args.size());
  bool changed = false;
  for (TermId a : d.args) {
    TermId na = ApplySubstitution(pool, subst, a);
    changed |= (na != a);
    args.push_back(na);
  }
  if (!changed) return t;
  // Get() references may be invalidated by MakeFunction; copy symbol first.
  SymbolId symbol = d.symbol;
  return pool.MakeFunction(symbol, std::move(args));
}

bool Unify(TermPool& pool, TermId a, TermId b, Substitution* subst) {
  a = Walk(pool, *subst, a);
  b = Walk(pool, *subst, b);
  if (a == b) return true;
  if (pool.IsVariable(a)) {
    if (Occurs(pool, *subst, a, b)) return false;
    (*subst)[a] = b;
    return true;
  }
  if (pool.IsVariable(b)) {
    if (Occurs(pool, *subst, b, a)) return false;
    (*subst)[b] = a;
    return true;
  }
  const TermData& da = pool.Get(a);
  const TermData& db = pool.Get(b);
  if (da.kind != db.kind) return false;
  switch (da.kind) {
    case TermKind::kAtom:
      return da.symbol == db.symbol;
    case TermKind::kInt:
      return da.int_value == db.int_value;
    case TermKind::kFunction: {
      if (da.symbol != db.symbol || da.args.size() != db.args.size()) {
        return false;
      }
      // Copy arg vectors: recursive Unify may grow the pool and invalidate
      // the TermData references.
      std::vector<TermId> aa = da.args;
      std::vector<TermId> ba = db.args;
      for (size_t i = 0; i < aa.size(); ++i) {
        if (!Unify(pool, aa[i], ba[i], subst)) return false;
      }
      return true;
    }
    case TermKind::kVariable:
      break;  // handled above
  }
  return false;
}

bool MatchGround(TermPool& pool, TermId pattern, TermId ground,
                 Substitution* subst) {
  pattern = Walk(pool, *subst, pattern);
  if (pool.IsVariable(pattern)) {
    (*subst)[pattern] = ground;
    return true;
  }
  if (pattern == ground) return true;
  const TermData& dp = pool.Get(pattern);
  const TermData& dg = pool.Get(ground);
  if (dp.kind != dg.kind) return false;
  switch (dp.kind) {
    case TermKind::kAtom:
      return dp.symbol == dg.symbol;
    case TermKind::kInt:
      return dp.int_value == dg.int_value;
    case TermKind::kFunction: {
      if (dp.symbol != dg.symbol || dp.args.size() != dg.args.size()) {
        return false;
      }
      std::vector<TermId> pa = dp.args;
      std::vector<TermId> ga = dg.args;
      for (size_t i = 0; i < pa.size(); ++i) {
        if (!MatchGround(pool, pa[i], ga[i], subst)) return false;
      }
      return true;
    }
    case TermKind::kVariable:
      break;
  }
  return false;
}

}  // namespace hornsafe
