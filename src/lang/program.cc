#include "lang/program.h"

#include <algorithm>

#include "lang/attr_set.h"
#include "util/strings.h"

namespace hornsafe {

const char* PredicateKindName(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kFiniteBase:
      return "finite";
    case PredicateKind::kInfiniteBase:
      return "infinite";
    case PredicateKind::kDerived:
      return "derived";
  }
  return "unknown";
}

PredicateId Program::InternPredicate(std::string_view name, uint32_t arity) {
  return InternPredicate(symbols_.Intern(name), arity);
}

PredicateId Program::InternPredicate(SymbolId name, uint32_t arity) {
  auto key = std::make_pair(name, arity);
  auto it = predicate_index_.find(key);
  if (it != predicate_index_.end()) return it->second;
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(
      PredicateInfo{name, arity, PredicateKind::kFiniteBase});
  predicate_index_.emplace(key, id);
  return id;
}

PredicateId Program::FindPredicate(std::string_view name,
                                   uint32_t arity) const {
  SymbolId sym = symbols_.Lookup(name);
  if (sym == kInvalidSymbol) return kInvalidPredicate;
  auto it = predicate_index_.find(std::make_pair(sym, arity));
  return it == predicate_index_.end() ? kInvalidPredicate : it->second;
}

void Program::SetPredicateSpan(PredicateId id, SourceSpan span) {
  if (id >= predicates_.size()) return;
  if (!predicates_[id].span.valid()) predicates_[id].span = span;
}

Status Program::DeclareInfinite(PredicateId id) {
  PredicateInfo& info = predicates_[id];
  if (info.kind == PredicateKind::kDerived) {
    return Status::InvalidProgram(
        StrCat("predicate '", PredicateName(id),
               "' is derived and cannot be declared infinite"));
  }
  for (const Literal& f : facts_) {
    if (f.pred == id) {
      return Status::InvalidProgram(
          StrCat("predicate '", PredicateName(id),
                 "' has stored facts and cannot be declared infinite"));
    }
  }
  info.kind = PredicateKind::kInfiniteBase;
  return Status::Ok();
}

Status Program::CheckLiteral(const Literal& lit,
                             std::string_view context) const {
  if (lit.pred >= predicates_.size()) {
    return Status::InvalidProgram(StrCat("unknown predicate id in ", context));
  }
  const PredicateInfo& info = predicates_[lit.pred];
  if (lit.args.size() != info.arity) {
    return Status::InvalidProgram(
        StrCat("arity mismatch in ", context, ": '", PredicateName(lit.pred),
               "' declared with arity ", info.arity, ", used with ",
               lit.args.size()));
  }
  return Status::Ok();
}

Status Program::AddRule(Rule rule) {
  HORNSAFE_RETURN_IF_ERROR(CheckLiteral(rule.head, "rule head"));
  for (const Literal& b : rule.body) {
    HORNSAFE_RETURN_IF_ERROR(CheckLiteral(b, "rule body"));
  }
  PredicateInfo& head = predicates_[rule.head.pred];
  if (head.kind == PredicateKind::kInfiniteBase) {
    return Status::InvalidProgram(
        StrCat("infinite base predicate '", PredicateName(rule.head.pred),
               "' cannot appear in a rule head"));
  }
  head.kind = PredicateKind::kDerived;
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Status Program::AddFact(Literal fact) {
  HORNSAFE_RETURN_IF_ERROR(CheckLiteral(fact, "fact"));
  const PredicateInfo& info = predicates_[fact.pred];
  if (info.kind != PredicateKind::kFiniteBase) {
    return Status::InvalidProgram(
        StrCat("facts may only be stored in finite base predicates; '",
               PredicateName(fact.pred), "' is ",
               PredicateKindName(info.kind)));
  }
  for (TermId a : fact.args) {
    if (!terms_.IsGround(a)) {
      return Status::InvalidProgram(
          StrCat("fact ", ToString(fact), " is not ground"));
    }
  }
  facts_.push_back(std::move(fact));
  return Status::Ok();
}

Status Program::AddFiniteDependency(FiniteDependency fd) {
  if (fd.pred >= predicates_.size()) {
    return Status::InvalidProgram("finiteness dependency on unknown predicate");
  }
  const PredicateInfo& info = predicates_[fd.pred];
  if (info.kind == PredicateKind::kDerived) {
    return Status::InvalidProgram(
        StrCat("finiteness dependencies are integrity constraints over the "
               "EDB; '",
               PredicateName(fd.pred), "' is derived"));
  }
  AttrSet all = AttrSet::AllBelow(info.arity);
  if (!fd.lhs.SubsetOf(all) || !fd.rhs.SubsetOf(all)) {
    return Status::InvalidProgram(
        StrCat("finiteness dependency ", fd.lhs.ToString(), " -> ",
               fd.rhs.ToString(), " exceeds arity of '",
               PredicateName(fd.pred), "/", info.arity, "'"));
  }
  fds_.push_back(fd);
  return Status::Ok();
}

Status Program::AddMonotonicity(MonotonicityConstraint mc) {
  if (mc.pred >= predicates_.size()) {
    return Status::InvalidProgram("monotonicity constraint on unknown predicate");
  }
  const PredicateInfo& info = predicates_[mc.pred];
  if (info.kind == PredicateKind::kDerived) {
    return Status::InvalidProgram(
        StrCat("monotonicity constraints are integrity constraints over the "
               "EDB; '",
               PredicateName(mc.pred), "' is derived"));
  }
  uint32_t max_attr = mc.lhs_attr;
  if (mc.kind == MonoKind::kAttrGreaterAttr) {
    max_attr = std::max(max_attr, mc.rhs_attr);
    if (mc.lhs_attr == mc.rhs_attr) {
      return Status::InvalidProgram(
          "monotonicity constraint relates an attribute to itself");
    }
  }
  if (max_attr >= info.arity) {
    return Status::InvalidProgram(
        StrCat("monotonicity constraint exceeds arity of '",
               PredicateName(mc.pred), "/", info.arity, "'"));
  }
  monos_.push_back(mc);
  return Status::Ok();
}

Status Program::AddQuery(Literal query) {
  HORNSAFE_RETURN_IF_ERROR(CheckLiteral(query, "query"));
  queries_.push_back(std::move(query));
  return Status::Ok();
}

std::vector<FiniteDependency> Program::FdsFor(PredicateId pred) const {
  std::vector<FiniteDependency> out;
  for (const FiniteDependency& fd : fds_) {
    if (fd.pred == pred) out.push_back(fd);
  }
  return out;
}

std::vector<MonotonicityConstraint> Program::MonosFor(
    PredicateId pred) const {
  std::vector<MonotonicityConstraint> out;
  for (const MonotonicityConstraint& mc : monos_) {
    if (mc.pred == pred) out.push_back(mc);
  }
  return out;
}

std::vector<const Rule*> Program::RulesFor(PredicateId pred) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (r.head.pred == pred) out.push_back(&r);
  }
  return out;
}

std::vector<Rule> Program::TakeRules() {
  std::vector<Rule> out = std::move(rules_);
  rules_.clear();
  return out;
}

std::vector<Literal> Program::TakeFacts() {
  std::vector<Literal> out = std::move(facts_);
  facts_.clear();
  return out;
}

std::vector<Literal> Program::TakeQueries() {
  std::vector<Literal> out = std::move(queries_);
  queries_.clear();
  return out;
}

std::vector<FiniteDependency> Program::TakeFds() {
  std::vector<FiniteDependency> out = std::move(fds_);
  fds_.clear();
  return out;
}

std::vector<Diagnostic> Program::ValidateDiagnostics() const {
  std::vector<Diagnostic> out;
  // HS003: the analysis machinery packs argument positions into 64-bit
  // AttrSet masks (attr_set.h asserts the bound, which is UB once
  // NDEBUG strips it) — reject wider predicates here, where user input
  // enters, instead of deep inside the pipeline.
  for (size_t p = 0; p < predicates_.size(); ++p) {
    if (predicates_[p].arity > AttrSet::kMaxAttrs) {
      out.push_back(Diagnostic{
          "HS003", Severity::kError, predicates_[p].span,
          StrCat("predicate '", PredicateName(static_cast<PredicateId>(p)),
                 "' has arity ", predicates_[p].arity, "; at most ",
                 AttrSet::kMaxAttrs, " arguments are supported"),
          ""});
    }
  }
  // HS004: EDB and IDB are disjoint by construction (AddRule flips the
  // kind to derived and AddFact rejects non-finite-base predicates), but
  // facts may have been added before a rule turned the predicate derived.
  // Report each offending predicate once, at the first offending fact.
  std::vector<PredicateId> reported;
  for (const Literal& f : facts_) {
    if (predicates_[f.pred].kind != PredicateKind::kDerived) continue;
    if (std::find(reported.begin(), reported.end(), f.pred) !=
        reported.end()) {
      continue;
    }
    reported.push_back(f.pred);
    out.push_back(Diagnostic{
        "HS004", Severity::kError, f.span,
        StrCat("predicate '", PredicateName(f.pred),
               "' has both stored facts and rules; the EDB and IDB must "
               "be disjoint (paper, Section 1)"),
        ""});
  }
  SortDiagnostics(&out);
  return out;
}

Status Program::Validate() const {
  std::vector<Diagnostic> diags = ValidateDiagnostics();
  if (diags.empty()) return Status::Ok();
  const Diagnostic& first = diags.front();
  if (first.span.valid()) {
    return Status::InvalidProgram(StrCat("line ", first.span.line, ":",
                                         first.span.column, ": ",
                                         first.message));
  }
  return Status::InvalidProgram(first.message);
}

std::string Program::ToString(const Literal& lit) const {
  std::string out = PredicateName(lit.pred);
  if (lit.args.empty()) return out;
  out += "(";
  out += JoinMapped(lit.args, ",",
                    [&](TermId t) { return terms_.ToString(t, symbols_); });
  out += ")";
  return out;
}

std::string Program::ToString(const Rule& rule) const {
  std::string out = ToString(rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    out += JoinMapped(rule.body, ", ",
                      [&](const Literal& l) { return ToString(l); });
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (PredicateId p = 0; p < predicates_.size(); ++p) {
    if (predicates_[p].kind == PredicateKind::kInfiniteBase) {
      out += StrCat(".infinite ", PredicateName(p), "/",
                    predicates_[p].arity, ".\n");
    }
  }
  for (const FiniteDependency& fd : fds_) {
    out += StrCat(".fd ", PredicateName(fd.pred), ": ",
                  JoinMapped(fd.lhs.ToVector(), " ",
                             [](uint32_t a) { return std::to_string(a + 1); }),
                  " -> ",
                  JoinMapped(fd.rhs.ToVector(), " ",
                             [](uint32_t a) { return std::to_string(a + 1); }),
                  ".\n");
  }
  for (const MonotonicityConstraint& mc : monos_) {
    out += StrCat(".mono ", PredicateName(mc.pred), ": ", mc.lhs_attr + 1);
    switch (mc.kind) {
      case MonoKind::kAttrGreaterAttr:
        out += StrCat(" > ", mc.rhs_attr + 1);
        break;
      case MonoKind::kAttrGreaterConst:
        out += StrCat(" > const(", mc.bound, ")");
        break;
      case MonoKind::kAttrLessConst:
        out += StrCat(" < const(", mc.bound, ")");
        break;
    }
    out += ".\n";
  }
  for (const Literal& f : facts_) out += ToString(f) + ".\n";
  for (const Rule& r : rules_) out += ToString(r) + "\n";
  for (const Literal& q : queries_) out += "?- " + ToString(q) + ".\n";
  return out;
}

std::vector<TermId> RuleVariables(const TermPool& pool, const Rule& rule) {
  std::vector<TermId> all;
  for (TermId a : rule.head.args) pool.CollectVariables(a, &all);
  for (const Literal& b : rule.body) {
    for (TermId a : b.args) pool.CollectVariables(a, &all);
  }
  std::vector<TermId> out;
  for (TermId v : all) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

std::vector<TermId> LiteralVariables(const TermPool& pool,
                                     const Literal& lit) {
  std::vector<TermId> all;
  for (TermId a : lit.args) pool.CollectVariables(a, &all);
  std::vector<TermId> out;
  for (TermId v : all) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

}  // namespace hornsafe
