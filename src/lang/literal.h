#ifndef HORNSAFE_LANG_LITERAL_H_
#define HORNSAFE_LANG_LITERAL_H_

#include <cstdint>
#include <vector>

#include "lang/source_span.h"
#include "lang/term.h"

namespace hornsafe {

/// Dense identifier of a predicate (name + arity) inside a `Program`.
using PredicateId = uint32_t;

/// Sentinel for "no predicate".
inline constexpr PredicateId kInvalidPredicate = static_cast<PredicateId>(-1);

/// A literal: a predicate applied to a list of terms (paper, Section 1).
struct Literal {
  PredicateId pred = kInvalidPredicate;
  std::vector<TermId> args;
  /// Where the literal was parsed from, if it came from source text.
  /// Metadata only: excluded from equality and structural hashes.
  SourceSpan span;

  bool operator==(const Literal& o) const {
    return pred == o.pred && args == o.args;
  }
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_LITERAL_H_
