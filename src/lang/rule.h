#ifndef HORNSAFE_LANG_RULE_H_
#define HORNSAFE_LANG_RULE_H_

#include <vector>

#include "lang/literal.h"

namespace hornsafe {

/// A Horn clause `head :- body₁, ..., bodyₙ` (paper, Section 1).
///
/// A fact is a rule with an empty body and a ground head; facts over
/// finite base predicates are stored separately by `Program`.
struct Rule {
  Literal head;
  std::vector<Literal> body;
  /// Position of the clause's first token in the source text (0 =
  /// built programmatically). Metadata only: excluded from equality
  /// and structural hashes.
  SourceSpan span;

  bool operator==(const Rule& o) const {
    return head == o.head && body == o.body;
  }
};

}  // namespace hornsafe

#endif  // HORNSAFE_LANG_RULE_H_
