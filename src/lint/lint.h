#ifndef HORNSAFE_LINT_LINT_H_
#define HORNSAFE_LINT_LINT_H_

#include <string>
#include <vector>

#include "lang/diagnostic.h"
#include "lang/program.h"
#include "util/json.h"
#include "util/status.h"

namespace hornsafe {

/// Options for `LintProgram`.
struct LintOptions {
  /// Diagnostic codes to suppress, exact match (e.g. "HS010").
  std::vector<std::string> suppress;
};

/// Descriptor of one registered check: its code, the severity it emits
/// at, and a one-line summary (the docs/SYNTAX.md table is generated
/// from the same wording and pinned by a test).
struct LintCheckInfo {
  const char* code;
  Severity severity;
  const char* summary;
};

/// Every diagnostic code the toolchain can emit, ordered by code. This
/// includes the codes produced outside `LintProgram` proper: HS001
/// (parse errors, via `DiagnosticFromStatus`) and HS003/HS004
/// (structural validation, via `Program::ValidateDiagnostics`).
const std::vector<LintCheckInfo>& LintChecks();

/// Runs every advisory check plus the structural validations
/// (`Program::ValidateDiagnostics`) over `program` and returns the
/// merged diagnostic list in source order. Purely observational: never
/// mutates the program, and programs with warnings still analyze to the
/// same verdicts.
std::vector<Diagnostic> LintProgram(const Program& program,
                                    const LintOptions& options = {});

/// Wraps a parse/validate failure `Status` as an HS001 error
/// diagnostic, recovering the span from the conventional
/// "line L:C: " message prefix when present.
Diagnostic DiagnosticFromStatus(const Status& status);

/// JSON rendering shared by `hornsafe lint --json` and the serve `lint`
/// method (schema documented in core/server.h):
///
///   {"diagnostics": [{"code": "HS005", "severity": "warning",
///                     "line": 3, "column": 1, "message": "...",
///                     "note": "..."}, ...],
///    "errors": E, "warnings": W, "notes": N}
///
/// "note" is omitted when empty; "line"/"column" are 0 for diagnostics
/// with no source position.
Json DiagnosticsToJson(const std::vector<Diagnostic>& diags);

}  // namespace hornsafe

#endif  // HORNSAFE_LINT_LINT_H_
