#include "lint/lint.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "fd/fd.h"
#include "lang/attr_set.h"
#include "lang/struct_hash.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

/// "name/arity" rendering used in every message.
std::string PredSig(const Program& p, PredicateId id) {
  return StrCat(p.PredicateName(id), "/", p.predicate(id).arity);
}

/// Appends each variable's occurrences in `lit` to `*counts` and records
/// first-occurrence order in `*order` (which may already contain some of
/// them).
void CountVars(const Program& p, const Literal& lit,
               std::unordered_map<TermId, int>* counts,
               std::vector<TermId>* order) {
  std::vector<TermId> vars;
  for (TermId a : lit.args) p.terms().CollectVariables(a, &vars);
  for (TermId v : vars) {
    if (++(*counts)[v] == 1 &&
        std::find(order->begin(), order->end(), v) == order->end()) {
      order->push_back(v);
    }
  }
}

// --- HS002: unbound head variables ------------------------------------
//
// A head variable that occurs nowhere else in the rule — neither in the
// body nor a second time in the head — is never constrained by any
// derivation, so the defined relation is infinite over any infinite
// domain (range restriction). A repeated head occurrence is allowed:
// `concat([], Z, Z).` (paper, Example 7) equates two head positions and
// is handled by the safety analysis proper.
void CheckUnboundHeadVars(const Program& p, std::vector<Diagnostic>* out) {
  for (const Rule& rule : p.rules()) {
    std::unordered_map<TermId, int> head_count, body_count;
    std::vector<TermId> head_order, body_order;
    CountVars(p, rule.head, &head_count, &head_order);
    for (const Literal& b : rule.body) CountVars(p, b, &body_count, &body_order);
    for (TermId v : head_order) {
      if (head_count[v] == 1 && body_count[v] == 0) {
        out->push_back(Diagnostic{
            "HS002", Severity::kError, rule.head.span,
            StrCat("head variable '",
                   p.symbols().Name(p.terms().Get(v).symbol),
                   "' in rule for '", PredSig(p, rule.head.pred),
                   "' occurs nowhere else in the rule"),
            "every head variable must be bound by a body literal or "
            "repeated in the head (range restriction)"});
      }
    }
  }
}

// --- HS010: singleton variables ---------------------------------------
//
// A named variable that occurs exactly once in a rule, in the body, is
// usually a typo (a misspelt join variable silently weakens the join).
// Underscore-prefixed names opt out — the parser renames each anonymous
// `_` to a fresh `_Gn`, so those are exempt by construction. Queries are
// exempt too: their singletons are the answer variables.
void CheckSingletonVars(const Program& p, std::vector<Diagnostic>* out) {
  for (const Rule& rule : p.rules()) {
    std::unordered_map<TermId, int> head_count, body_count;
    std::vector<TermId> head_order, body_order;
    CountVars(p, rule.head, &head_count, &head_order);
    for (const Literal& b : rule.body) CountVars(p, b, &body_count, &body_order);
    for (TermId v : body_order) {
      if (body_count[v] != 1 || head_count.count(v) != 0) continue;
      const std::string& name = p.symbols().Name(p.terms().Get(v).symbol);
      if (!name.empty() && name[0] == '_') continue;
      out->push_back(Diagnostic{
          "HS010", Severity::kWarning, rule.span,
          StrCat("singleton variable '", name, "' in rule for '",
                 PredSig(p, rule.head.pred), "'"),
          "rename to '_' if the value is intentionally unused"});
    }
  }
}

// --- HS005: unconstrained infinite EDB predicates ---------------------
//
// An infinite base predicate with no finiteness dependencies and no
// monotonicity constraints can never contribute a finiteness argument:
// Algorithm 2 finds no determinant for any of its arguments and
// Theorem 5 has no decreasing chain to bound, so every query that
// reaches it through a free position is refused.
void CheckUnconstrainedInfinite(const Program& p,
                                std::vector<Diagnostic>* out) {
  for (PredicateId id = 0; id < p.num_predicates(); ++id) {
    if (!p.IsInfiniteBase(id)) continue;
    if (!p.FdsFor(id).empty() || !p.MonosFor(id).empty()) continue;
    out->push_back(Diagnostic{
        "HS005", Severity::kWarning, p.predicate(id).span,
        StrCat("infinite predicate '", PredSig(p, id),
               "' has no finiteness dependencies or monotonicity "
               "constraints"),
        "no query through it can be proved safe; declare '.fd' or "
        "'.mono' constraints"});
  }
}

// --- HS006: monotonicity on unbounded positions -----------------------
//
// An attribute-vs-attribute constraint `i > j` only helps Theorem 5 if
// the descending chain it induces is bounded: one of the two positions
// must be finitely determined (appear on the right-hand side of some
// declared dependency) or bounded by a constant constraint. Otherwise
// the chain can descend forever and the declaration is dead weight.
void CheckUnboundedMono(const Program& p, std::vector<Diagnostic>* out) {
  for (const MonotonicityConstraint& mc : p.monos()) {
    if (mc.kind != MonoKind::kAttrGreaterAttr) continue;
    AttrSet bounded;
    for (const FiniteDependency& fd : p.fds()) {
      if (fd.pred == mc.pred) bounded = bounded.Union(fd.rhs);
    }
    for (const MonotonicityConstraint& other : p.monos()) {
      if (other.pred == mc.pred && other.kind != MonoKind::kAttrGreaterAttr) {
        bounded.Add(other.lhs_attr);
      }
    }
    if (bounded.Contains(mc.lhs_attr) || bounded.Contains(mc.rhs_attr)) {
      continue;
    }
    out->push_back(Diagnostic{
        "HS006", Severity::kWarning, mc.span,
        StrCat("monotonicity constraint on '", PredSig(p, mc.pred),
               "' relates positions ", mc.lhs_attr + 1, " and ",
               mc.rhs_attr + 1,
               ", neither of which is bounded by any finiteness "
               "dependency or constant bound"),
        "Theorem 5 needs the decreasing chain bounded; add an '.fd' "
        "whose right-hand side covers one of the positions, or a "
        "'> const(c)' bound"});
  }
}

// --- HS007: empty least fixpoints -------------------------------------
//
// Bottom-up productivity: base predicates are assumed non-empty; a
// derived predicate is productive once some rule for it has an
// all-productive body. Derived predicates that never become productive
// have an empty least fixpoint — every derivation recurses (directly or
// mutually) without a base case, so every query against them is
// vacuously finite and almost certainly a mistake.
void CheckEmptyFixpoint(const Program& p, std::vector<Diagnostic>* out) {
  std::vector<char> productive(p.num_predicates(), 0);
  for (PredicateId id = 0; id < p.num_predicates(); ++id) {
    if (!p.IsDerived(id)) productive[id] = 1;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : p.rules()) {
      if (productive[rule.head.pred]) continue;
      bool all = true;
      for (const Literal& b : rule.body) {
        if (!productive[b.pred]) {
          all = false;
          break;
        }
      }
      if (all) {
        productive[rule.head.pred] = 1;
        changed = true;
      }
    }
  }
  for (PredicateId id = 0; id < p.num_predicates(); ++id) {
    if (!p.IsDerived(id) || productive[id]) continue;
    out->push_back(Diagnostic{
        "HS007", Severity::kWarning, p.predicate(id).span,
        StrCat("derived predicate '", PredSig(p, id),
               "' has an empty least fixpoint: every rule for it "
               "recurses"),
        "add a non-recursive base rule or facts for a predicate it "
        "depends on"});
  }
}

// --- HS008: duplicate rules -------------------------------------------
//
// Two rules that are alpha-equivalent (equal up to variable renaming;
// StructuralRuleHash) derive exactly the same tuples, so the second is
// dead weight — usually a copy-paste slip.
void CheckDuplicateRules(const Program& p, std::vector<Diagnostic>* out) {
  std::unordered_map<uint64_t, const Rule*> seen;
  for (const Rule& rule : p.rules()) {
    uint64_t h = StructuralRuleHash(p, rule);
    auto [it, inserted] = seen.emplace(h, &rule);
    if (inserted) continue;
    std::string note;
    if (it->second->span.valid()) {
      note = StrCat("first occurrence at line ", it->second->span.line, ":",
                    it->second->span.column);
    }
    out->push_back(Diagnostic{
        "HS008", Severity::kWarning, rule.span,
        StrCat("duplicate rule for '", PredSig(p, rule.head.pred),
               "' (identical up to variable renaming)"),
        note});
  }
}

// --- HS009: predicates unreachable from any query ---------------------
//
// Reachability from the query roots down through rule bodies. Derived
// predicates outside the reachable cone are never consulted by any
// declared query — dead code in the program. Skipped entirely when the
// program declares no queries (nothing to be reachable *from*).
void CheckUnreachable(const Program& p, std::vector<Diagnostic>* out) {
  if (p.queries().empty()) return;
  std::vector<char> reached(p.num_predicates(), 0);
  std::vector<PredicateId> stack;
  for (const Literal& q : p.queries()) {
    if (!reached[q.pred]) {
      reached[q.pred] = 1;
      stack.push_back(q.pred);
    }
  }
  while (!stack.empty()) {
    PredicateId top = stack.back();
    stack.pop_back();
    for (const Rule& rule : p.rules()) {
      if (rule.head.pred != top) continue;
      for (const Literal& b : rule.body) {
        if (!reached[b.pred]) {
          reached[b.pred] = 1;
          stack.push_back(b.pred);
        }
      }
    }
  }
  for (PredicateId id = 0; id < p.num_predicates(); ++id) {
    if (!p.IsDerived(id) || reached[id]) continue;
    out->push_back(Diagnostic{
        "HS009", Severity::kWarning, p.predicate(id).span,
        StrCat("derived predicate '", PredSig(p, id),
               "' is unreachable from any query"),
        ""});
  }
}

// --- HS011: redundant finiteness dependencies -------------------------
//
// A dependency implied by the others over the same predicate (Armstrong
// closure, Theorem 1) adds nothing to any analysis — the closure the
// analyzer consults is identical without it.
void CheckRedundantFds(const Program& p, std::vector<Diagnostic>* out) {
  for (PredicateId id = 0; id < p.num_predicates(); ++id) {
    std::vector<FiniteDependency> fds = p.FdsFor(id);
    if (fds.size() < 2) continue;
    // One index per predicate: redundancy verdicts are memoized per
    // dependency, so repeated lint passes over the same program pay the
    // Armstrong derivations once.
    FdClosureIndex index(fds);
    for (size_t i = 0; i < fds.size(); ++i) {
      if (!index.Redundant(i)) continue;
      out->push_back(Diagnostic{
          "HS011", Severity::kNote, fds[i].span,
          StrCat("finiteness dependency ", fds[i].lhs.ToString(), " -> ",
                 fds[i].rhs.ToString(), " on '", PredSig(p, id),
                 "' is implied by the other declared dependencies"),
          ""});
    }
  }
}

}  // namespace

const std::vector<LintCheckInfo>& LintChecks() {
  static const std::vector<LintCheckInfo>* kChecks =
      new std::vector<LintCheckInfo>{
          {"HS001", Severity::kError,
           "program text does not parse or load (lexer, parser, or "
           "structural error)"},
          {"HS002", Severity::kError,
           "head variable occurs nowhere else in its rule (range "
           "restriction)"},
          {"HS003", Severity::kError,
           "predicate arity exceeds the 64-argument analysis limit"},
          {"HS004", Severity::kError,
           "predicate has both stored facts and rules (EDB/IDB overlap)"},
          {"HS005", Severity::kWarning,
           "infinite EDB predicate has no finiteness dependencies or "
           "monotonicity constraints"},
          {"HS006", Severity::kWarning,
           "monotonicity constraint relates positions no dependency or "
           "constant ever bounds"},
          {"HS007", Severity::kWarning,
           "derived predicate has an empty least fixpoint (no "
           "non-recursive derivation)"},
          {"HS008", Severity::kWarning,
           "duplicate rule, identical up to variable renaming"},
          {"HS009", Severity::kWarning,
           "derived predicate is unreachable from any query"},
          {"HS010", Severity::kWarning,
           "singleton variable in a rule body (possible typo)"},
          {"HS011", Severity::kNote,
           "finiteness dependency is implied by the others (redundant)"},
      };
  return *kChecks;
}

std::vector<Diagnostic> LintProgram(const Program& program,
                                    const LintOptions& options) {
  std::vector<Diagnostic> out = program.ValidateDiagnostics();
  CheckUnboundHeadVars(program, &out);
  CheckUnconstrainedInfinite(program, &out);
  CheckUnboundedMono(program, &out);
  CheckEmptyFixpoint(program, &out);
  CheckDuplicateRules(program, &out);
  CheckUnreachable(program, &out);
  CheckSingletonVars(program, &out);
  CheckRedundantFds(program, &out);
  if (!options.suppress.empty()) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Diagnostic& d) {
                               return std::find(options.suppress.begin(),
                                                options.suppress.end(),
                                                d.code) !=
                                      options.suppress.end();
                             }),
              out.end());
  }
  SortDiagnostics(&out);
  return out;
}

Diagnostic DiagnosticFromStatus(const Status& status) {
  Diagnostic d;
  d.code = "HS001";
  d.severity = Severity::kError;
  d.message = status.message();
  // ParseProgram validates before returning, so the structural errors
  // surface here as a failed load; recover their own codes from the
  // Validate message wording (pinned by lint_test) so one error surface
  // still distinguishes them.
  if (status.code() == StatusCode::kInvalidProgram) {
    if (d.message.find("arguments are supported") != std::string::npos) {
      d.code = "HS003";
    } else if (d.message.find("EDB and IDB") != std::string::npos) {
      d.code = "HS004";
    }
  }
  // Parser and validator errors conventionally start "line L:C: ";
  // recover the span and strip the prefix so it is not printed twice.
  const std::string& m = status.message();
  if (m.rfind("line ", 0) == 0) {
    const char* s = m.c_str() + 5;
    char* end = nullptr;
    long line = std::strtol(s, &end, 10);
    if (end != s && *end == ':') {
      const char* s2 = end + 1;
      long col = std::strtol(s2, &end, 10);
      if (end != s2 && end[0] == ':' && end[1] == ' ' && line > 0) {
        d.span = SourceSpan{static_cast<int>(line), static_cast<int>(col)};
        d.message = std::string(end + 2);
      }
    }
  }
  return d;
}

Json DiagnosticsToJson(const std::vector<Diagnostic>& diags) {
  Json arr = Json::Array();
  for (const Diagnostic& d : diags) {
    Json item = Json::Object();
    item.Set("code", d.code);
    item.Set("severity", SeverityName(d.severity));
    item.Set("line", static_cast<int64_t>(d.span.line));
    item.Set("column", static_cast<int64_t>(d.span.column));
    item.Set("message", d.message);
    if (!d.note.empty()) item.Set("note", d.note);
    arr.Append(std::move(item));
  }
  Json out = Json::Object();
  out.Set("diagnostics", std::move(arr));
  out.Set("errors",
          static_cast<int64_t>(CountSeverity(diags, Severity::kError)));
  out.Set("warnings",
          static_cast<int64_t>(CountSeverity(diags, Severity::kWarning)));
  out.Set("notes",
          static_cast<int64_t>(CountSeverity(diags, Severity::kNote)));
  return out;
}

}  // namespace hornsafe
