#include "util/strings.h"

namespace hornsafe {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace hornsafe
