#ifndef HORNSAFE_UTIL_RNG_H_
#define HORNSAFE_UTIL_RNG_H_

#include <cstdint>

namespace hornsafe {

/// Small, fast, deterministic PRNG (SplitMix64).
///
/// Used by workload generators in tests and benchmarks so that every run
/// of a property sweep or benchmark sees exactly the same inputs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability `num`/`den`.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_RNG_H_
