#include "util/deadline.h"

#include "util/strings.h"

namespace hornsafe {

const char* StopReasonName(StopReason r) {
  switch (r) {
    case StopReason::kNone:
      return "none";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

Status ExecContext::Check(const char* what) const {
  switch (ShouldStop()) {
    case StopReason::kNone:
    case StopReason::kBudget:
      return Status::Ok();
    case StopReason::kDeadline:
      return Status::DeadlineExceeded(
          StrCat(what, " exceeded its deadline"));
    case StopReason::kCancelled:
      return Status::Cancelled(StrCat(what, " was cancelled"));
  }
  return Status::Ok();
}

}  // namespace hornsafe
