#ifndef HORNSAFE_UTIL_STATUS_H_
#define HORNSAFE_UTIL_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace hornsafe {

/// Error category for a failed operation.
///
/// The library does not throw exceptions across its public API (see
/// DESIGN.md section 6); fallible operations return a `Status` or a
/// `Result<T>` instead, following the Arrow/RocksDB idiom.
enum class StatusCode {
  kOk = 0,
  /// Malformed input program text (lexer/parser errors).
  kParseError,
  /// Structurally invalid program (e.g. arity mismatch, IDB fact,
  /// FD over an unknown predicate or attribute out of range).
  kInvalidProgram,
  /// A requested entity (predicate, rule, query) does not exist.
  kNotFound,
  /// The operation is valid but unsupported by this build.
  kUnsupported,
  /// Evaluation exceeded its tuple/iteration budget.
  kBudgetExhausted,
  /// Evaluation refused because the query was not proved safe.
  kUnsafeQuery,
  /// The operation's wall-clock deadline passed before it finished.
  /// Verdicts degrade to kUndecided rather than aborting (see
  /// DESIGN.md, D13).
  kDeadlineExceeded,
  /// The operation's CancelToken was triggered.
  kCancelled,
  /// The caller overflowed a bounded queue and the request was shed.
  kUnavailable,
  /// Internal invariant violation; indicates a bug in hornsafe itself.
  kInternal,
};

/// Human-readable name of a `StatusCode` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a context message.
///
/// `Status` is cheaply copyable and movable. The zero-argument constructor
/// produces OK. Use the named constructors (`Status::ParseError(...)` etc.)
/// to build errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status InvalidProgram(std::string m) {
    return Status(StatusCode::kInvalidProgram, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status BudgetExhausted(std::string m) {
    return Status(StatusCode::kBudgetExhausted, std::move(m));
  }
  static Status UnsafeQuery(std::string m) {
    return Status(StatusCode::kUnsafeQuery, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`.
///
/// Accessing `value()` on an error result aborts in debug builds; check
/// `ok()` first. `Result` is movable; it is copyable iff `T` is.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return st;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  /// Accessing the value of an error Result is a programming error;
  /// fail loudly even in release builds rather than read an empty
  /// optional.
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() called on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define HORNSAFE_RETURN_IF_ERROR(expr)           \
  do {                                           \
    ::hornsafe::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagating an error or binding the
/// value to `lhs`.
#define HORNSAFE_ASSIGN_OR_RETURN(lhs, rexpr)            \
  HORNSAFE_ASSIGN_OR_RETURN_IMPL_(                       \
      HORNSAFE_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define HORNSAFE_CONCAT_INNER_(a, b) a##b
#define HORNSAFE_CONCAT_(a, b) HORNSAFE_CONCAT_INNER_(a, b)
#define HORNSAFE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()  // NOLINT(bugprone-macro-parentheses): lhs may declare a variable

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_STATUS_H_
