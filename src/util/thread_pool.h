#ifndef HORNSAFE_UTIL_THREAD_POOL_H_
#define HORNSAFE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hornsafe {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// `Submit` returns a future that resolves when the task has run;
/// exceptions thrown by a task propagate through `future::get`. The
/// destructor drains the queue (already-submitted tasks still run) and
/// joins all workers. Submission and completion are thread-safe; the
/// pool itself must be destroyed from a single thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; some worker runs it in FIFO order.
  std::future<void> Submit(std::function<void()> task);

  /// Fire-and-forget `Submit`: no packaged_task wrapper, no future
  /// allocation, no way to observe completion other than destroying the
  /// pool (which drains the queue and joins). For long-lived loops —
  /// e.g. serve workers that run until their request queue closes — and
  /// hot fan-out where the caller synchronizes through its own latch.
  /// The task must not throw (there is no future to carry the
  /// exception; a throw terminates the process).
  void SubmitDetached(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// The hardware thread count, with a floor of 1 when unknown.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  /// Plain closures; `Submit` layers its packaged_task on top so the
  /// detached path pays for neither the wrapper nor the shared state.
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_THREAD_POOL_H_
