#ifndef HORNSAFE_UTIL_DEADLINE_H_
#define HORNSAFE_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace hornsafe {

/// A wall-clock budget for one request, carried by value through the
/// pipeline. The default-constructed deadline is infinite (never
/// expires), so existing call sites pay nothing for the plumbing.
///
/// Deadlines degrade verdicts, never correctness: a search that runs
/// out of time reports `Safety::kUndecided` (sound per Theorem 2 — the
/// subset condition is sufficient, not necessary, so "don't know" is
/// always an admissible answer), and an evaluator aborts with
/// `StatusCode::kDeadlineExceeded`. Expiry observed mid-search depends
/// on scheduling; only an already-expired deadline yields bit-identical
/// results across job counts (see DESIGN.md, D13).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. `After(0)` is already expired
  /// (used by tests that need deterministic expiry).
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = tp;
    return d;
  }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; 0 when expired, -1 when infinite.
  int64_t remaining_millis() const {
    if (infinite_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

/// Cooperative cancellation flag, shared between a requester and the
/// worker running its analysis. Thread-safe; `Cancel` is sticky.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a cooperative computation stopped early. Ordered by precedence:
/// cancellation is checked before the deadline, the deadline before the
/// step budget, so concurrent workers report the same reason for the
/// same stimulus.
enum class StopReason : uint8_t {
  kNone = 0,
  /// The deterministic step budget ran out (the pre-existing guard).
  kBudget,
  /// The wall-clock deadline passed.
  kDeadline,
  /// The request's CancelToken was triggered.
  kCancelled,
};

const char* StopReasonName(StopReason r);

/// The failure-model context threaded through analyzers, searches and
/// evaluators: a deadline plus an optional cancellation token. Copyable
/// and cheap; the default instance never stops anything.
///
/// Checking the deadline calls `steady_clock::now()`, so hot loops call
/// `ShouldStop` only every `kCheckInterval` steps (the step budget stays
/// exact — it is checked on every step by the caller).
struct ExecContext {
  Deadline deadline;
  const CancelToken* cancel = nullptr;

  /// How many loop iterations a hot path may run between clock checks.
  /// Must be a power of two (callers test `(step & (kCheckInterval-1))`).
  static constexpr uint64_t kCheckInterval = 256;

  bool active() const { return !deadline.infinite() || cancel != nullptr; }

  /// Cancellation first, then the deadline (see StopReason).
  StopReason ShouldStop() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return StopReason::kCancelled;
    }
    if (deadline.expired()) return StopReason::kDeadline;
    return StopReason::kNone;
  }

  /// Status form of `ShouldStop` for evaluators: OK when running,
  /// kCancelled / kDeadlineExceeded naming `what` otherwise.
  Status Check(const char* what) const;
};

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_DEADLINE_H_
