#include "util/proc.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.h"

extern char** environ;

namespace hornsafe {
namespace {

std::string ErrnoText(const char* what) {
  return StrCat(what, ": ", std::strerror(errno));
}

int OpenLockFile(const std::string& path) {
  // O_CREAT without O_EXCL: every locker must converge on one inode.
  return ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
}

std::string ReadAllFromFd(int fd) {
  std::string out;
  char buf[4096];
  ::lseek(fd, 0, SEEK_SET);
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
    if (out.size() >= 4096) break;
  }
  return out;
}

}  // namespace

Result<FileLock> FileLock::Acquire(const std::string& path) {
  int fd = OpenLockFile(path);
  if (fd < 0) return Status::Unavailable(ErrnoText("open lock file"));
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return Status::Unavailable(ErrnoText("flock"));
  }
  return FileLock(fd);
}

Result<FileLock> FileLock::TryAcquire(const std::string& path) {
  int fd = OpenLockFile(path);
  if (fd < 0) return Status::Unavailable(ErrnoText("open lock file"));
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX | LOCK_NB);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    if (errno == EWOULDBLOCK || errno == EAGAIN) return FileLock();  // busy
    return Status::Unavailable(ErrnoText("flock"));
  }
  return FileLock(fd);
}

void FileLock::Release() {
  if (fd_ < 0) return;
  // close() drops the flock with it.
  ::close(fd_);
  fd_ = -1;
}

bool FileLock::WriteRecord(const std::string& record) {
  if (fd_ < 0) return false;
  if (::ftruncate(fd_, 0) != 0) return false;
  if (::lseek(fd_, 0, SEEK_SET) < 0) return false;
  size_t off = 0;
  while (off < record.size()) {
    ssize_t n = ::write(fd_, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string FileLock::ReadRecord() const {
  if (fd_ < 0) return "";
  return ReadAllFromFd(fd_);
}

std::string ReadLockRecord(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return "";
  std::string out = ReadAllFromFd(fd);
  ::close(fd);
  return out;
}

const std::string& BootId() {
  static const std::string* id = [] {
    std::string text;
    int fd = ::open("/proc/sys/kernel/random/boot_id", O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      text = ReadAllFromFd(fd);
      ::close(fd);
    }
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == '\r' ||
            text.back() == ' ')) {
      text.pop_back();
    }
    if (text.empty()) text = "unknown-boot";
    return new std::string(std::move(text));
  }();
  return *id;
}

bool ProcessAlive(pid_t pid) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) == 0) return true;
  return errno == EPERM;
}

std::string FormatLeaseRecord(pid_t pid, const std::string& boot_id) {
  return StrCat("pid ", static_cast<long long>(pid), " boot ", boot_id, "\n");
}

bool ParseLeaseRecord(const std::string& record, pid_t* pid,
                      std::string* boot_id) {
  // "pid <n> boot <id>\n"
  if (record.rfind("pid ", 0) != 0) return false;
  size_t p = 4;
  size_t sp = record.find(' ', p);
  if (sp == std::string::npos) return false;
  long long value = 0;
  for (size_t i = p; i < sp; ++i) {
    char c = record[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 1LL << 31) return false;
  }
  if (sp == p) return false;
  if (record.compare(sp, 6, " boot ") != 0) return false;
  size_t id_begin = sp + 6;
  size_t id_end = record.find_first_of("\n\r", id_begin);
  if (id_end == std::string::npos) id_end = record.size();
  if (id_end == id_begin) return false;
  *pid = static_cast<pid_t>(value);
  *boot_id = record.substr(id_begin, id_end - id_begin);
  return true;
}

bool LeaseRecordStale(const std::string& record) {
  if (record.empty()) return false;  // nothing claimed
  pid_t pid = 0;
  std::string boot;
  if (!ParseLeaseRecord(record, &pid, &boot)) return true;
  if (boot != BootId()) return true;
  return !ProcessAlive(pid);
}

Result<pid_t> SpawnProcess(const std::vector<std::string>& argv,
                           const SpawnOptions& options) {
  if (argv.empty()) return Status::Internal("empty argv");

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  std::vector<char*> cenv;
  if (!options.extra_env.empty()) {
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
      cenv.push_back(*e);
    }
    for (const std::string& e : options.extra_env) {
      cenv.push_back(const_cast<char*>(e.c_str()));
    }
    cenv.push_back(nullptr);
  }

  pid_t pid = ::fork();
  if (pid < 0) return Status::Unavailable(ErrnoText("fork"));
  if (pid == 0) {
    // Child: redirect, then exec. Only async-signal-safe calls here.
    if (!options.stdout_path.empty()) {
      int fd = ::open(options.stdout_path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::close(fd);
      }
    }
    if (!options.stderr_path.empty()) {
      int fd = ::open(options.stderr_path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
    }
    if (cenv.empty()) {
      ::execv(cargv[0], cargv.data());
    } else {
      ::execve(cargv[0], cargv.data(), cenv.data());
    }
    ::_exit(127);
  }
  return pid;
}

namespace {

WaitResult DecodeStatus(int status) {
  WaitResult out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

}  // namespace

Result<WaitResult> WaitProcess(pid_t pid) {
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::Unavailable(ErrnoText("waitpid"));
  return DecodeStatus(status);
}

Result<std::optional<WaitResult>> PollProcess(pid_t pid) {
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, WNOHANG);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::Unavailable(ErrnoText("waitpid"));
  if (rc == 0) return std::optional<WaitResult>();
  return std::optional<WaitResult>(DecodeStatus(status));
}

void KillProcess(pid_t pid) {
  if (pid > 0) ::kill(pid, SIGKILL);
}

std::string SelfExePath(const std::string& fallback) {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fallback;
  buf[n] = '\0';
  return std::string(buf, static_cast<size_t>(n));
}

}  // namespace hornsafe
