#include "util/status.h"

namespace hornsafe {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidProgram:
      return "InvalidProgram";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kUnsafeQuery:
      return "UnsafeQuery";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace hornsafe
