#ifndef HORNSAFE_UTIL_PROC_H_
#define HORNSAFE_UTIL_PROC_H_

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace hornsafe {

/// RAII advisory lock (flock) on a lock file. The kernel releases the
/// lock when the holding process dies — even via SIGKILL — which is
/// what makes it the right primitive for crash-safe multi-process
/// cache coordination: a writer that is killed mid-store can never
/// leave a shard locked. The lock file itself is never deleted (its
/// *record* content is advisory metadata; deleting the inode would
/// split concurrent lockers across two inodes).
class FileLock {
 public:
  FileLock() = default;
  ~FileLock() { Release(); }
  FileLock(FileLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FileLock& operator=(FileLock&& other) noexcept {
    if (this != &other) {
      Release();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// Acquires LOCK_EX, blocking until the incumbent releases. Creates
  /// the lock file if missing. Errors only on open/flock syscall
  /// failure (not contention).
  static Result<FileLock> Acquire(const std::string& path);

  /// Non-blocking acquire: on contention returns an un-held lock
  /// (`held() == false`) rather than an error, so sweepers and
  /// compactors can skip busy shards.
  static Result<FileLock> TryAcquire(const std::string& path);

  bool held() const { return fd_ >= 0; }

  /// Releases the lock (no-op when not held).
  void Release();

  /// Overwrites the lock file's content with `record` (holder
  /// metadata: pid + boot id). Requires `held()`.
  bool WriteRecord(const std::string& record);

  /// Reads the lock file's content (up to 4 KiB). Requires `held()`.
  std::string ReadRecord() const;

 private:
  explicit FileLock(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Reads a lock file's record content without taking the lock (for
/// diagnostics; the authoritative liveness signal is the flock itself).
std::string ReadLockRecord(const std::string& path);

/// The kernel boot id (/proc/sys/kernel/random/boot_id, trimmed). A
/// pid is only meaningful within one boot: a lease record naming a pid
/// from a different boot is stale no matter what process now holds
/// that pid. Falls back to "unknown-boot" when unreadable.
const std::string& BootId();

/// True when `pid` names a live process (kill(pid, 0); EPERM still
/// counts as alive).
bool ProcessAlive(pid_t pid);

/// Renders a lease record: "pid <pid> boot <boot-id>".
std::string FormatLeaseRecord(pid_t pid, const std::string& boot_id);

/// Parses a lease record; false on malformed input.
bool ParseLeaseRecord(const std::string& record, pid_t* pid,
                      std::string* boot_id);

/// True when `record` can no longer be backed by a live holder: empty
/// records are not stale (nothing claimed), malformed records are
/// stale, and a well-formed record is stale when its boot id differs
/// from ours or its pid is dead on this boot.
bool LeaseRecordStale(const std::string& record);

// --- Subprocess helpers (fleet driver) ---------------------------------

struct SpawnOptions {
  /// Extra "KEY=VALUE" entries appended to the inherited environment
  /// (later entries win for duplicate keys, per execvpe semantics).
  std::vector<std::string> extra_env;
  /// Redirect the child's stdout/stderr to these files (append mode);
  /// empty inherits the parent's descriptors.
  std::string stdout_path;
  std::string stderr_path;
};

/// fork/execs `argv` (argv[0] is the executable path). Returns the
/// child pid; the caller must reap it with WaitProcess.
Result<pid_t> SpawnProcess(const std::vector<std::string>& argv,
                           const SpawnOptions& options = {});

struct WaitResult {
  bool exited = false;  ///< normal exit; `exit_code` is valid
  int exit_code = -1;
  bool signaled = false;  ///< killed by signal; `term_signal` is valid
  int term_signal = 0;
};

/// Blocks until `pid` terminates and reaps it.
Result<WaitResult> WaitProcess(pid_t pid);

/// Non-blocking poll: nullopt while `pid` is still running, the reaped
/// status once it has terminated.
Result<std::optional<WaitResult>> PollProcess(pid_t pid);

/// Sends SIGKILL (best-effort; the caller still reaps via WaitProcess).
void KillProcess(pid_t pid);

/// Path of the running executable (readlink /proc/self/exe), or
/// `fallback` when unreadable.
std::string SelfExePath(const std::string& fallback = "");

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_PROC_H_
