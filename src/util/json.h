#ifndef HORNSAFE_UTIL_JSON_H_
#define HORNSAFE_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hornsafe {

/// A minimal JSON value for the serve protocol (util-only: no external
/// dependency is available in the build image). Supports the full JSON
/// grammar except that numbers are held as doubles (adequate for ids,
/// counters and millisecond deadlines) and \u escapes outside the BMP
/// are passed through as their two surrogate escapes.
///
/// Parsing is strict and never throws: malformed input yields a
/// kParseError status, which the server turns into an error *reply* —
/// the failure-model contract is that no input byte sequence can
/// terminate the process.
class Json {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Json(int64_t i)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(uint64_t u)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0) const {
    return is_number() ? num_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : fallback;
  }
  const std::string& AsString() const { return str_; }

  // --- Object / array access -------------------------------------------

  /// Member lookup; returns a shared null for missing keys or non-objects.
  const Json& operator[](std::string_view key) const;
  Json& Set(std::string key, Json value);
  bool Has(std::string_view key) const;

  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  void Append(Json value);
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

  // --- Serialization ----------------------------------------------------

  /// Compact single-line rendering (keys in insertion order; strings
  /// escaped so the output never contains a raw newline — the serve
  /// protocol is line-delimited).
  std::string Dump() const;

  /// Strict parse of a complete JSON document.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_JSON_H_
