#ifndef HORNSAFE_UTIL_STAGE_TIMER_H_
#define HORNSAFE_UTIL_STAGE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hornsafe {

/// Wall-clock lap timer for pipeline stage breakdowns: each LapNs()
/// returns the nanoseconds since the previous lap (or construction) and
/// restarts the lap. Steady clock, so laps never go negative under
/// clock adjustments.
class StageTimer {
 public:
  StageTimer() : last_(std::chrono::steady_clock::now()) {}

  uint64_t LapNs() {
    auto now = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count());
    last_ = now;
    return ns;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_STAGE_TIMER_H_
