#ifndef HORNSAFE_UTIL_FAULT_H_
#define HORNSAFE_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace hornsafe {

/// The disk-tier fault classes the injector can produce. Each maps to a
/// concrete syscall-level failure mode of the PipelineCache disk tier:
///
///   kReadError   — the entry file cannot be read (EIO); transient.
///   kWriteError  — fwrite/write fails mid-stream (EIO); transient.
///   kShortWrite  — only a prefix of the payload reaches the file
///                  before the write fails; transient.
///   kTornRename  — the rename "succeeds" but the destination holds a
///                  truncated payload (models a crash between write and
///                  fsync on a filesystem that reorders metadata);
///                  persistent until the reader self-heals by unlink.
///   kBitFlip     — one bit of the read-back payload is flipped
///                  (models media corruption); persistent until the
///                  checksum catches it and the reader unlinks.
///   kEnospc      — the filesystem is full (ENOSPC) at one uniformly
///                  chosen wrap point of the store (open / fsync /
///                  rename); persistent for the write attempt, treated
///                  as a non-fatal skip.
///   kProcessKill — the process dies by SIGKILL at the wrap point
///                  (models a crash at that exact syscall: no
///                  destructors, no atexit handlers, held flocks
///                  dropped by the kernel). Drawn via MaybeCrash().
///   kLeaseSteal  — the just-written shard lease record is overwritten
///                  with a dead foreign holder's record (models a
///                  half-recovered crash or clock-skewed NFS client);
///                  the next opener's stale-lease recovery must absorb
///                  it.
enum class FaultKind : uint8_t {
  kReadError = 0,
  kWriteError,
  kShortWrite,
  kTornRename,
  kBitFlip,
  kEnospc,
  kProcessKill,
  kLeaseSteal,
  kNumKinds,  // sentinel
};

const char* FaultKindName(FaultKind k);

/// Deterministic, process-wide fault injector for the disk tier.
///
/// Disabled (all probabilities zero) unless configured, so production
/// call sites pay one predicted-not-taken branch. Configuration comes
/// from `Configure(spec)` or the `HORNSAFE_FAULTS` environment variable
/// with the same syntax:
///
///   "read_error=0.1,bit_flip=0.05,seed=42"
///
/// Decisions are drawn from a seeded splitmix64 stream under a mutex,
/// so a given (spec, call sequence) always injects the same faults —
/// the serve soak compares a faulted run against a fault-free run and
/// needs the faulted run to be reproducible.
class FaultInjector {
 public:
  struct Counters {
    uint64_t injected[static_cast<size_t>(FaultKind::kNumKinds)] = {};
    uint64_t decisions = 0;
  };

  /// The process-wide injector used by the PipelineCache disk tier.
  /// Reads HORNSAFE_FAULTS once on first access.
  static FaultInjector& Global();

  FaultInjector() = default;

  /// Parses `spec` ("<kind>=<probability>,...,seed=<n>"); unknown keys
  /// or malformed numbers return false and leave the config unchanged.
  /// An empty spec disables injection.
  bool Configure(std::string_view spec);

  /// True when any fault has non-zero probability.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Draws one decision for `kind`. Never fires when disabled.
  ///
  /// Counter/injection parity contract: every decision that fires is
  /// counted exactly once in `counters().injected[kind]`, and every
  /// call site is wired so one fired decision surfaces in exactly one
  /// caller-side failure counter (see the parity tests in
  /// tests/util/fault_test and tests/core/cache_fault_test). Kinds
  /// with zero probability consume no random draw, so adding wrap
  /// points for a disabled kind never perturbs the decision sequence
  /// of an enabled one.
  bool ShouldInject(FaultKind kind);

  /// Draws kProcessKill and, when it fires, raises SIGKILL on the
  /// calling process — execution does not continue past this call. A
  /// kill is counted in `injected` before raising, but the counters
  /// die with the process; observers are the parent's waitpid status
  /// and the cache's crash-recovery path.
  void MaybeCrash();

  /// Uniform draw in [0, n) — used to spread a single fired decision
  /// across n wrap points (e.g. which store syscall hits ENOSPC), so
  /// the fault stays visible in exactly one counter no matter where it
  /// lands. Returns 0 for n <= 1.
  size_t PickPoint(size_t n);

  /// Flips one pseudo-randomly chosen bit of `*data` (no-op on empty).
  void CorruptOneBit(std::string* data);

  /// Deterministic truncation point for a torn write: a strict prefix
  /// length in [0, size).
  size_t TornLength(size_t size);

  Counters counters() const;
  void ResetCounters();

 private:
  uint64_t NextRandom();

  mutable std::mutex mu_;
  /// Atomic so the lock-free fast path in ShouldInject/enabled() can
  /// read it while Configure writes under mu_; relaxed is enough — a
  /// racing reconfigure may miss this one decision either way.
  std::atomic<bool> enabled_{false};
  double probability_[static_cast<size_t>(FaultKind::kNumKinds)] = {};
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
  Counters counters_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_FAULT_H_
