#include "util/thread_pool.h"

namespace hornsafe {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  // packaged_task is move-only and std::function requires copyable
  // targets, so the wrapper rides behind a shared_ptr.
  auto wrapped = std::make_shared<std::packaged_task<void()>>(
      std::move(task));
  std::future<void> result = wrapped->get_future();
  SubmitDetached([wrapped] { (*wrapped)(); });
  return result;
}

void ThreadPool::SubmitDetached(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

size_t ThreadPool::DefaultThreads() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace hornsafe
