#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace hornsafe {
namespace {

const Json& SharedNull() {
  static const Json* null = new Json();
  return *null;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    SkipWs();
    Json value;
    HORNSAFE_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  /// Nesting deeper than this is rejected rather than risking stack
  /// exhaustion on adversarial input (the server parses untrusted
  /// bytes).
  static constexpr int kMaxDepth = 64;

  Status Error(std::string message) const {
    return Status::ParseError(
        StrCat("JSON: ", message, " at offset ", pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        HORNSAFE_RETURN_IF_ERROR(ParseString(&s));
        *out = Json(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Json(true);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Json(false);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Json();
          return Status::Ok();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      HORNSAFE_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      Json value;
      HORNSAFE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipWs();
      Json value;
      HORNSAFE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          HORNSAFE_RETURN_IF_ERROR(ParseHex4(&cp));
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    std::string buf(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || !std::isfinite(v)) {
      return Error("invalid number");
    }
    *out = Json(v);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    for (const auto& [k, v] : members_) {
      if (k == key) return v;
    }
  }
  return SharedNull();
}

Json& Json::Set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool Json::Has(std::string_view key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

void Json::Append(Json value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      // Integers (the common case: ids, counters, millis) print without
      // a fractional part so replies are stable and greppable.
      if (num_ == std::floor(num_) && std::abs(num_) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        *out += buf;
      }
      return;
    }
    case Type::kString:
      EscapeInto(str_, out);
      return;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        EscapeInto(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace hornsafe
