#include "util/fault.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>

#include "util/rng.h"

namespace hornsafe {
namespace {

const char* kKindKeys[] = {
    "read_error",   "write_error", "short_write",  "torn_rename",
    "bit_flip",     "enospc",      "process_kill", "lease_steal",
};
static_assert(sizeof(kKindKeys) / sizeof(kKindKeys[0]) ==
                  static_cast<size_t>(FaultKind::kNumKinds),
              "key table out of sync with FaultKind");

/// Parses a probability in [0, 1]; returns false on garbage.
bool ParseProbability(std::string_view text, double* out) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  size_t i = static_cast<size_t>(k);
  return i < static_cast<size_t>(FaultKind::kNumKinds) ? kKindKeys[i] : "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, inside the
    // magic-static initializer, before any worker threads exist.
    if (const char* spec = std::getenv("HORNSAFE_FAULTS")) {
      inj->Configure(spec);
    }
    return inj;
  }();
  return *injector;
}

bool FaultInjector::Configure(std::string_view spec) {
  double probs[static_cast<size_t>(FaultKind::kNumKinds)] = {};
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) return false;
    std::string_view key = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      std::string buf(value);
      char* end = nullptr;
      unsigned long long s = std::strtoull(buf.c_str(), &end, 10);
      if (end == buf.c_str() || *end != '\0') return false;
      seed = s;
      continue;
    }
    bool known = false;
    for (size_t k = 0; k < static_cast<size_t>(FaultKind::kNumKinds); ++k) {
      if (key == kKindKeys[k]) {
        if (!ParseProbability(value, &probs[k])) return false;
        known = true;
        break;
      }
    }
    if (!known) return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  for (size_t k = 0; k < static_cast<size_t>(FaultKind::kNumKinds); ++k) {
    probability_[k] = probs[k];
    any |= probs[k] > 0.0;
  }
  enabled_.store(any, std::memory_order_relaxed);
  rng_state_ = seed;
  return true;
}

uint64_t FaultInjector::NextRandom() {
  // SplitMix64 step (mu_ held by the caller).
  Rng rng(rng_state_);
  uint64_t v = rng.Next();
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  return v;
}

bool FaultInjector::ShouldInject(FaultKind kind) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.decisions;
  size_t i = static_cast<size_t>(kind);
  if (probability_[i] <= 0.0) return false;
  double draw =
      static_cast<double>(NextRandom() >> 11) * (1.0 / (1ULL << 53));
  if (draw >= probability_[i]) return false;
  ++counters_.injected[i];
  return true;
}

void FaultInjector::MaybeCrash() {
  if (!ShouldInject(FaultKind::kProcessKill)) return;
  // SIGKILL cannot be caught: the process ends at this syscall exactly
  // as a real crash would — no flushing, no destructors. Held flocks
  // are released by the kernel; everything else is the crash-recovery
  // path's problem.
  ::kill(::getpid(), SIGKILL);
  // Not reached (but keeps the compiler honest if kill ever fails).
  std::abort();
}

size_t FaultInjector::PickPoint(size_t n) {
  if (n <= 1) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(NextRandom() % n);
}

void FaultInjector::CorruptOneBit(std::string* data) {
  if (data->empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bit = NextRandom() % (data->size() * 8);
  (*data)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
}

size_t FaultInjector::TornLength(size_t size) {
  if (size == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(NextRandom() % size);
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = Counters();
}

}  // namespace hornsafe
