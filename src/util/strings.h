#ifndef HORNSAFE_UTIL_STRINGS_H_
#define HORNSAFE_UTIL_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hornsafe {

/// Concatenates the string representations of all arguments.
///
/// Arguments may be anything streamable to `std::ostream` (numbers,
/// strings, chars). Intended for building error and log messages.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins the result of `fn(item)` for each item with `sep` in between.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out.append(sep);
    first = false;
    out += fn(item);
  }
  return out;
}

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Combines a hash value with the hash of `v` (boost::hash_combine style).
inline void HashCombine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace hornsafe

#endif  // HORNSAFE_UTIL_STRINGS_H_
