// The hornsafe command-line tool.
//
//   hornsafe check <file>       analyze every query in the program:
//                               safety verdict per argument, finiteness
//                               of intermediate results, termination
//   hornsafe run <file>         analyze and evaluate every query
//   hornsafe canonical <file>   print the canonical form (Algorithm 1)
//   hornsafe andor <file>       print And-Or_H after pruning
//   hornsafe adorned <file>     print the adorned program H*
//   hornsafe matrix <file> <pred>/<arity>
//                               per-adornment safety matrix
//   hornsafe report <file>      full analysis report
//   hornsafe dot <file>         Graphviz witness graph of the first
//                               unsafe query argument
//   hornsafe simplify <file>    print the program with dead and
//                               query-irrelevant clauses removed
//   hornsafe explain <file> <literal>
//                               derivation trees for the literal's answers
//   hornsafe lint <file>        static diagnostics (HS001..HS011) with
//                               source positions; --json for tooling
//   hornsafe repl <file>        interactive: analyze + evaluate queries
//                               read from stdin
//   hornsafe serve [file]       long-lived analysis server: one JSON
//                               request per stdin line, one JSON reply
//                               per stdout line (or over --socket)
//
// Exit status: 0 on success, 1 on usage/parse errors, 2 when `check`
// finds an unsafe or undecided query or `lint` reports an error-severity
// diagnostic.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "canonical/canonical.h"
#include "andor/subset.h"
#include "constraints/consistency.h"
#include "core/analyzer.h"
#include "core/finiteness.h"
#include "core/fleet.h"
#include "core/report.h"
#include "core/server.h"
#include "core/termination.h"
#include "eval/bottomup.h"
#include "eval/engine.h"
#include "lint/lint.h"
#include "parser/parser.h"
#include "transform/simplify.h"
#include "util/json.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

/// Global evaluation flags, pre-parsed (and stripped) before command
/// dispatch.
struct CliFlags {
  /// Worker threads for bottom-up evaluation (1 = serial, 0 = one per
  /// hardware thread).
  int jobs = 1;
  /// Print fixpoint statistics after each evaluated query.
  bool stats = false;
  /// check: emit analysis counters, per-stage wall clocks, and cache
  /// stats as a single JSON object on stdout.
  bool stats_json = false;
  /// On-disk pipeline-cache directory for `check` (empty = memory-only
  /// cache for the process lifetime).
  std::string cache_dir;
  /// Disable the pipeline cache entirely.
  bool no_cache = false;
  /// serve: default per-request deadline (0 = none).
  long deadline_ms = 0;
  /// serve: bounded in-flight request queue size.
  long max_queue = 64;
  /// serve: shed overflowing requests with `unavailable` replies
  /// instead of applying backpressure.
  bool shed = false;
  /// serve: concurrent request workers (1 = serial in-order replies,
  /// 0 = one per hardware thread).
  long workers = 1;
  /// serve: unix-domain socket path (empty = stdin/stdout).
  std::string socket_path;
  /// lint: emit machine-readable JSON instead of file:line:col text.
  bool json = false;
  /// lint: comma-separated diagnostic codes to suppress.
  std::string suppress;
  /// fleet: worker process count.
  long procs = 1;
  /// fleet: HORNSAFE_FAULTS spec exported to workers (soak tooling).
  std::string faults;
  /// fleet: run a compaction pass over --cache-dir after the workers
  /// finish.
  bool compact = false;
  /// fleet/cache-compact: compaction size bound in MiB (0 = none).
  long max_mb = 0;
  /// fleet/cache-compact: compaction age bound in seconds (0 = none).
  long max_age_s = 0;
  /// fleet-worker (internal): shard list file and output file.
  std::string shard_file;
  std::string out_file;
};

CliFlags g_flags;

int Usage() {
  std::fprintf(stderr,
               "usage: hornsafe <command> <program-file> [args]\n"
               "  check <file>                 safety report for all queries\n"
               "  run <file>                   analyze + evaluate all queries\n"
               "  canonical <file>             print Algorithm 1 output\n"
               "  andor <file>                 print pruned And-Or_H\n"
               "  adorned <file>               print the adorned program H*\n"
               "  matrix <file> <pred>/<arity> per-adornment safety matrix\n"
               "  report <file>                full analysis report\n"
               "  dot <file>                   Graphviz witness of the first "
               "unsafe query argument\n"
               "  simplify <file>              remove dead and irrelevant "
               "clauses\n"
               "  explain <file> <literal>     derivation trees for the "
               "literal's answers\n"
               "  lint <file>                  static diagnostics with "
               "source positions (see docs/SYNTAX.md for the codes)\n"
               "  repl <file>                  interactive query loop over "
               "the program\n"
               "  serve [file]                 line-delimited JSON analysis "
               "server (stdin/stdout or --socket)\n"
               "  fleet <dir>                  analyze every *.hs under "
               "<dir> across --procs worker processes sharing --cache-dir; "
               "merged report (--json for machines)\n"
               "  cache-compact                size/age-bounded GC pass over "
               "--cache-dir (single-writer, crash-resumable)\n"
               "flags (check/run/repl/explain):\n"
               "  --jobs N                     analyze/evaluate with N "
               "worker threads (default 1; 0 = all hardware threads)\n"
               "  --stats                      print analysis counters "
               "(check) or fixpoint statistics per query (run/repl)\n"
               "  --stats-json                 check: one JSON object with "
               "per-stage wall clocks, analysis counters, and cache stats\n"
               "flags (lint):\n"
               "  --json                       one JSON object on stdout "
               "instead of file:line:col lines\n"
               "  --suppress CODES             comma-separated diagnostic "
               "codes to silence (e.g. HS009,HS010)\n"
               "flags (check/serve):\n"
               "  --cache-dir DIR              persist the pipeline cache "
               "under DIR; warm re-checks of unchanged cones skip their "
               "subset searches\n"
               "  --no-cache                   disable the pipeline cache\n"
               "flags (serve):\n"
               "  --deadline-ms N              default per-request deadline "
               "(0 = none); requests may override with \"deadline_ms\"\n"
               "  --max-queue N                bounded in-flight request "
               "queue (default 64)\n"
               "  --workers N                  serve requests with N "
               "concurrent workers (default 1: strict in-order replies; "
               "0 = all hardware threads; N > 1 replies in completion "
               "order, updates swap in atomically, checks never block "
               "behind them)\n"
               "  --shed                       answer overflowing requests "
               "with an 'unavailable' error instead of applying "
               "backpressure\n"
               "  --socket PATH                serve over a unix-domain "
               "socket instead of stdin/stdout\n"
               "flags (fleet/cache-compact):\n"
               "  --procs N                    fleet worker processes "
               "(default 1)\n"
               "  --compact                    fleet: run one compaction "
               "pass after the workers finish\n"
               "  --max-mb N                   compaction size bound in MiB "
               "(0 = none)\n"
               "  --max-age-s N                compaction age bound in "
               "seconds (0 = none)\n"
               "  --faults SPEC                fleet: export "
               "HORNSAFE_FAULTS=SPEC to the workers (soak tooling)\n");
  return 1;
}

Result<Program> Load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  HORNSAFE_ASSIGN_OR_RETURN(Program program, ParseProgram(buffer.str()));
  // Static analysis must see the constraints of any standard builtin
  // the program references, or `check` would disagree with `run` (the
  // engine registers them all). The registry itself is not needed here.
  BuiltinRegistry referenced;
  HORNSAFE_RETURN_IF_ERROR(
      RegisterReferencedStandardBuiltins(&program, &referenced));
  return program;
}

void PrintTuples(const Program& p, const std::vector<Tuple>& tuples) {
  for (const Tuple& t : tuples) {
    std::printf("    ");
    if (t.empty()) {
      std::printf("true\n");
      continue;
    }
    for (size_t i = 0; i < t.size(); ++i) {
      std::printf("%s%s", p.terms().ToString(t[i], p.symbols()).c_str(),
                  i + 1 < t.size() ? ", " : "\n");
    }
  }
}

void PrintAnalyzerStats(const SafetyAnalyzer& analyzer) {
  SafetyAnalyzer::Counters c = analyzer.counters();
  std::printf(
      "analysis stats:\n"
      "  positions analyzed:   %llu\n"
      "  subset searches:      %llu\n"
      "  search steps spent:   %llu\n"
      "  AND-graphs checked:   %llu\n"
      "  memo hits / misses:   %llu / %llu\n"
      "  SCC short-circuits:   %llu\n"
      "  parallel tasks:       %llu\n"
      "  serial tasks:         %llu\n",
      static_cast<unsigned long long>(c.positions_analyzed),
      static_cast<unsigned long long>(c.subset_searches),
      static_cast<unsigned long long>(c.steps),
      static_cast<unsigned long long>(c.graphs_checked),
      static_cast<unsigned long long>(c.memo_hits),
      static_cast<unsigned long long>(c.memo_misses),
      static_cast<unsigned long long>(c.scc_short_circuits),
      static_cast<unsigned long long>(c.parallel_tasks),
      static_cast<unsigned long long>(c.serial_tasks));
  if (c.cache_hits + c.cache_misses > 0) {
    std::printf(
        "  cache hits / misses:  %llu / %llu\n",
        static_cast<unsigned long long>(c.cache_hits),
        static_cast<unsigned long long>(c.cache_misses));
  }
  std::printf(
      "  fragments spliced / rebuilt: %llu / %llu\n"
      "  segments grafted / total:    %llu / %llu (rejected %llu, encoded "
      "%llu)\n"
      "  nodes shared / owned:        %llu / %llu\n"
      "  node table peak:             %llu nodes, %llu bytes\n"
      "  stage times (ms): canonicalize %.2f, fingerprint %.2f, fd %.2f, "
      "adorn %.2f, build %.2f, prune %.2f, scc %.2f, search %.2f\n",
      static_cast<unsigned long long>(c.fragments_spliced),
      static_cast<unsigned long long>(c.fragments_rebuilt),
      static_cast<unsigned long long>(c.segments_grafted),
      static_cast<unsigned long long>(c.segments_total),
      static_cast<unsigned long long>(c.segment_grafts_rejected),
      static_cast<unsigned long long>(c.segments_encoded),
      static_cast<unsigned long long>(c.nodes_shared),
      static_cast<unsigned long long>(c.nodes_owned),
      static_cast<unsigned long long>(c.node_table_peak_nodes),
      static_cast<unsigned long long>(c.node_table_peak_bytes),
      c.stage_canonicalize_ns / 1e6, c.stage_fingerprint_ns / 1e6,
      c.stage_fd_ns / 1e6, c.stage_adorn_ns / 1e6, c.stage_build_ns / 1e6,
      c.stage_prune_ns / 1e6, c.stage_scc_ns / 1e6,
      c.stage_search_ns / 1e6);
}

/// `check --stats-json`: one machine-readable JSON object on stdout.
/// Per-stage wall clocks stay in nanoseconds (the native resolution);
/// consumers convert. Shape mirrors the serve `stats` reply so the same
/// tooling can parse both.
void PrintStatsJson(const SafetyAnalyzer& analyzer,
                    const PipelineCache* cache) {
  SafetyAnalyzer::Counters c = analyzer.counters();
  Json root = Json::Object();
  Json a = Json::Object();
  a.Set("positions_analyzed", c.positions_analyzed);
  a.Set("subset_searches", c.subset_searches);
  a.Set("steps", c.steps);
  a.Set("graphs_checked", c.graphs_checked);
  a.Set("memo_hits", c.memo_hits);
  a.Set("memo_misses", c.memo_misses);
  a.Set("scc_short_circuits", c.scc_short_circuits);
  a.Set("parallel_tasks", c.parallel_tasks);
  a.Set("serial_tasks", c.serial_tasks);
  a.Set("cache_hits", c.cache_hits);
  a.Set("cache_misses", c.cache_misses);
  a.Set("fragments_spliced", c.fragments_spliced);
  a.Set("fragments_rebuilt", c.fragments_rebuilt);
  a.Set("segments_total", c.segments_total);
  a.Set("segments_grafted", c.segments_grafted);
  a.Set("segment_grafts_rejected", c.segment_grafts_rejected);
  a.Set("segments_encoded", c.segments_encoded);
  a.Set("nodes_shared", c.nodes_shared);
  a.Set("nodes_owned", c.nodes_owned);
  a.Set("node_table_peak_nodes", c.node_table_peak_nodes);
  a.Set("node_table_peak_bytes", c.node_table_peak_bytes);
  Json stages = Json::Object();
  stages.Set("canonicalize_ns", c.stage_canonicalize_ns);
  stages.Set("fingerprint_ns", c.stage_fingerprint_ns);
  stages.Set("fd_ns", c.stage_fd_ns);
  stages.Set("adorn_ns", c.stage_adorn_ns);
  stages.Set("build_ns", c.stage_build_ns);
  stages.Set("prune_ns", c.stage_prune_ns);
  stages.Set("scc_ns", c.stage_scc_ns);
  stages.Set("search_ns", c.stage_search_ns);
  a.Set("stages", std::move(stages));
  root.Set("analyzer", std::move(a));
  if (cache != nullptr) {
    PipelineCacheStats s = cache->stats();
    Json cs = Json::Object();
    cs.Set("verdict_hits", s.verdict_hits);
    cs.Set("verdict_misses", s.verdict_misses);
    cs.Set("verdict_insertions", s.verdict_insertions);
    cs.Set("verdict_evictions", s.verdict_evictions);
    cs.Set("disk_hits", s.disk_hits);
    cs.Set("disk_misses", s.disk_misses);
    cs.Set("disk_corrupt", s.disk_corrupt);
    cs.Set("disk_write_failures", s.disk_write_failures);
    cs.Set("cones_invalidated", s.cones_invalidated);
    cs.Set("canon_hits", s.canon_hits);
    cs.Set("canon_misses", s.canon_misses);
    cs.Set("emptiness_hits", s.emptiness_hits);
    cs.Set("emptiness_misses", s.emptiness_misses);
    cs.Set("fragment_hits", s.fragment_hits);
    cs.Set("fragment_misses", s.fragment_misses);
    cs.Set("segment_hits", s.segment_hits);
    cs.Set("segment_misses", s.segment_misses);
    cs.Set("segment_insertions", s.segment_insertions);
    cs.Set("segment_evictions", s.segment_evictions);
    cs.Set("fd_index_hits", s.fd_index_hits);
    cs.Set("fd_index_misses", s.fd_index_misses);
    cs.Set("pred_hash_hits", s.pred_hash_hits);
    cs.Set("pred_hash_misses", s.pred_hash_misses);
    cs.Set("lease_acquisitions", s.lease_acquisitions);
    cs.Set("stale_leases_recovered", s.stale_leases_recovered);
    cs.Set("manifest_generation", s.manifest_generation);
    cs.Set("manifest_rollbacks", s.manifest_rollbacks);
    cs.Set("compactions_run", s.compactions_run);
    root.Set("cache", std::move(cs));
  }
  std::printf("%s\n", root.Dump().c_str());
}

void PrintCacheStats(const PipelineCache& cache) {
  PipelineCacheStats s = cache.stats();
  std::printf(
      "pipeline cache stats:\n"
      "  verdict hits / misses:    %llu / %llu\n"
      "  insertions / evictions:   %llu / %llu\n"
      "  disk hits / misses:       %llu / %llu\n"
      "  disk corrupt / failed:    %llu / %llu\n"
      "  cones invalidated:        %llu\n"
      "  canon hits / misses:      %llu / %llu\n"
      "  emptiness hits / misses:  %llu / %llu\n",
      static_cast<unsigned long long>(s.verdict_hits),
      static_cast<unsigned long long>(s.verdict_misses),
      static_cast<unsigned long long>(s.verdict_insertions),
      static_cast<unsigned long long>(s.verdict_evictions),
      static_cast<unsigned long long>(s.disk_hits),
      static_cast<unsigned long long>(s.disk_misses),
      static_cast<unsigned long long>(s.disk_corrupt),
      static_cast<unsigned long long>(s.disk_write_failures),
      static_cast<unsigned long long>(s.cones_invalidated),
      static_cast<unsigned long long>(s.canon_hits),
      static_cast<unsigned long long>(s.canon_misses),
      static_cast<unsigned long long>(s.emptiness_hits),
      static_cast<unsigned long long>(s.emptiness_misses));
  std::printf(
      "  fragment hits / misses:   %llu / %llu\n"
      "  segment hits / misses:    %llu / %llu\n"
      "  fd index hits / misses:   %llu / %llu\n"
      "  pred hash hits / misses:  %llu / %llu\n",
      static_cast<unsigned long long>(s.fragment_hits),
      static_cast<unsigned long long>(s.fragment_misses),
      static_cast<unsigned long long>(s.segment_hits),
      static_cast<unsigned long long>(s.segment_misses),
      static_cast<unsigned long long>(s.fd_index_hits),
      static_cast<unsigned long long>(s.fd_index_misses),
      static_cast<unsigned long long>(s.pred_hash_hits),
      static_cast<unsigned long long>(s.pred_hash_misses));
  if (s.lease_acquisitions + s.stale_leases_recovered +
          s.manifest_rollbacks + s.compactions_run + s.compactions_skipped >
      0) {
    std::printf(
        "  shard leases taken:       %llu (stale recovered %llu)\n"
        "  manifest generation:      %llu (rollbacks %llu)\n"
        "  compactions run/skipped:  %llu / %llu (removed %llu entries, "
        "%llu bytes)\n",
        static_cast<unsigned long long>(s.lease_acquisitions),
        static_cast<unsigned long long>(s.stale_leases_recovered),
        static_cast<unsigned long long>(s.manifest_generation),
        static_cast<unsigned long long>(s.manifest_rollbacks),
        static_cast<unsigned long long>(s.compactions_run),
        static_cast<unsigned long long>(s.compactions_skipped),
        static_cast<unsigned long long>(s.compaction_entries_removed),
        static_cast<unsigned long long>(s.compaction_bytes_removed));
  }
}

/// Prints the merged lint diagnostics for `program` to stdout, one per
/// line with `path` as the file prefix.
void PrintLintDiagnostics(const Program& program, const char* path) {
  for (const Diagnostic& d : LintProgram(program)) {
    std::printf("%s\n", FormatDiagnosticWithNote(d, path).c_str());
  }
}

/// Parses the --suppress flag's comma-separated code list.
LintOptions LintOptionsFromFlags() {
  LintOptions options;
  const std::string& spec = g_flags.suppress;
  for (size_t pos = 0; pos < spec.size();) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) options.suppress.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return options;
}

int CmdLint(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // A load failure is itself a diagnostic (HS001/HS003/HS004) rather
  // than a bare error print: editors consume lint output uniformly.
  std::vector<Diagnostic> diags;
  auto parsed = ParseProgram(buffer.str());
  if (!parsed.ok()) {
    diags.push_back(DiagnosticFromStatus(parsed.status()));
  } else {
    Program program = std::move(parsed).value();
    // Same contract as `check`: the advisory checks must see the
    // constraints of any standard builtin the program references, or
    // e.g. plus/3 would be flagged as an unconstrained predicate.
    BuiltinRegistry referenced;
    if (Status st = RegisterReferencedStandardBuiltins(&program, &referenced);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    diags = LintProgram(program, LintOptionsFromFlags());
  }
  if (g_flags.json) {
    std::printf("%s\n", DiagnosticsToJson(diags).Dump().c_str());
  } else if (diags.empty()) {
    std::printf("%s: clean\n", path);
  } else {
    for (const Diagnostic& d : diags) {
      std::printf("%s\n", FormatDiagnosticWithNote(d, path).c_str());
    }
    std::printf("%zu error(s), %zu warning(s), %zu note(s)\n",
                CountSeverity(diags, Severity::kError),
                CountSeverity(diags, Severity::kWarning),
                CountSeverity(diags, Severity::kNote));
  }
  return CountSeverity(diags, Severity::kError) > 0 ? 2 : 0;
}

int CmdCheck(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  // Advisory diagnostics first, on the program as written (spans refer
  // to the source text, not the canonical form). Purely informational:
  // verdicts and exit status are unaffected.
  PrintLintDiagnostics(*parsed, path);
  // Memory-only cache by default (useful when several queries share
  // cones); --cache-dir adds the persistent tier so warm re-checks skip
  // unchanged cones; --no-cache disables caching outright.
  std::unique_ptr<PipelineCache> cache;
  if (!g_flags.no_cache) {
    PipelineCache::Options copts;
    copts.dir = g_flags.cache_dir;
    cache = std::make_unique<PipelineCache>(copts);
  }
  AnalyzerOptions aopts;
  aopts.jobs = g_flags.jobs;
  aopts.cache = cache.get();
  auto analyzer = SafetyAnalyzer::Create(*parsed, aopts);
  if (!analyzer.ok()) {
    std::fprintf(stderr, "%s\n", analyzer.status().ToString().c_str());
    return 1;
  }
  for (const ConsistencyWarning& w :
       CheckConstraintConsistency(analyzer->canonical())) {
    std::printf("warning: %s\n", w.message.c_str());
  }
  if (analyzer->canonical().queries().empty()) {
    std::printf("no queries in %s (add '?- p(X).' lines)\n", path);
    return 0;
  }
  bool all_safe = true;
  std::vector<Literal> queries = analyzer->canonical().queries();
  for (const Literal& q : queries) {
    QueryAnalysis analysis = analyzer->AnalyzeQueryLiteral(q);
    IntermediateFinitenessResult fin = CheckFiniteIntermediateResults(
        analyzer->canonical(), analyzer->adorned(), analyzer->system(), q);
    TerminationResult term = CheckTermination(*analyzer, q);
    std::printf("?- %s.\n", analyzer->canonical().ToString(q).c_str());
    std::printf("  safety:               %s\n",
                SafetyName(analysis.overall));
    std::printf("  finite intermediate:  %s\n", fin.exists ? "yes" : "no");
    std::printf("  terminating eval:     %s\n", term.exists ? "yes" : "no");
    for (const ArgumentVerdict& a : analysis.args) {
      std::printf("  arg %u: %s\n", a.position + 1, SafetyName(a.safety));
      if (a.safety != Safety::kSafe) {
        // Indent the explanation block.
        std::istringstream lines(a.explanation);
        std::string line;
        while (std::getline(lines, line)) {
          std::printf("    %s\n", line.c_str());
        }
      }
    }
    if (analysis.overall != Safety::kSafe) all_safe = false;
    std::printf("\n");
  }
  if (g_flags.stats) {
    PrintAnalyzerStats(*analyzer);
    if (cache) PrintCacheStats(*cache);
  }
  if (g_flags.stats_json) PrintStatsJson(*analyzer, cache.get());
  return all_safe ? 0 : 2;
}

EngineOptions MakeEngineOptions() {
  EngineOptions options;
  options.bottom_up.jobs = g_flags.jobs;
  return options;
}

void PrintEvalStats(const BottomUpStats& stats) {
  if (stats.iterations == 0) return;  // top-down: nothing to report
  double total = 0;
  for (double s : stats.round_seconds) total += s;
  std::printf(
      "  stats: %llu iteration(s), %llu tuple(s), %llu firing(s), "
      "%.3f ms, %llu parallel / %llu serial task(s)\n",
      static_cast<unsigned long long>(stats.iterations),
      static_cast<unsigned long long>(stats.tuples_derived),
      static_cast<unsigned long long>(stats.rule_firings), total * 1e3,
      static_cast<unsigned long long>(stats.parallel_tasks),
      static_cast<unsigned long long>(stats.serial_tasks));
  for (size_t i = 0; i < stats.round_seconds.size(); ++i) {
    std::printf("    round %zu: %.3f ms\n", i,
                stats.round_seconds[i] * 1e3);
  }
}

int CmdRun(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::vector<Literal> queries = parsed->queries();
  auto engine = Engine::Create(std::move(parsed).value(),
                               MakeEngineOptions());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  for (const Literal& q : queries) {
    std::printf("?- %s.\n", engine->program().ToString(q).c_str());
    auto r = engine->Query(q);
    if (!r.ok()) {
      std::printf("  %s\n\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("  %zu answer(s) [%s, %s]:\n", r->tuples.size(),
                SafetyName(r->safety), r->strategy.c_str());
    PrintTuples(engine->program(), r->tuples);
    if (g_flags.stats) PrintEvalStats(r->eval_stats);
    std::printf("\n");
  }
  return 0;
}

int CmdCanonical(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto canon = Canonicalize(*parsed);
  if (!canon.ok()) {
    std::fprintf(stderr, "%s\n", canon.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", canon->program.ToString().c_str());
  return 0;
}

int CmdAndOr(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analyzer = SafetyAnalyzer::Create(*parsed);
  if (!analyzer.ok()) {
    std::fprintf(stderr, "%s\n", analyzer.status().ToString().c_str());
    return 1;
  }
  const SafetyAnalyzer::Stats& s = analyzer->stats();
  std::printf(
      "%% canonical rules: %zu, adorned rules: %zu, nodes: %zu\n"
      "%% propositional rules: %zu total, %zu pruned by Algorithm 3, "
      "%zu by Algorithm 4, %zu live\n",
      s.canonical_rules, s.adorned_rules, s.nodes, s.rules_total,
      s.rules_pruned_emptiness, s.rules_pruned_reduction, s.rules_live);
  std::printf("%s", analyzer->system().ToString(analyzer->canonical()).c_str());
  return 0;
}

int CmdAdorned(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analyzer = SafetyAnalyzer::Create(*parsed);
  if (!analyzer.ok()) {
    std::fprintf(stderr, "%s\n", analyzer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s",
              analyzer->adorned().ToString(analyzer->canonical()).c_str());
  return 0;
}

int CmdReport(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analyzer = SafetyAnalyzer::Create(*parsed);
  if (!analyzer.ok()) {
    std::fprintf(stderr, "%s\n", analyzer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", GenerateReport(*analyzer).c_str());
  return 0;
}

int CmdDot(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analyzer = SafetyAnalyzer::Create(*parsed);
  if (!analyzer.ok()) {
    std::fprintf(stderr, "%s\n", analyzer.status().ToString().c_str());
    return 1;
  }
  std::vector<Literal> queries = analyzer->canonical().queries();
  for (const Literal& q : queries) {
    QueryAnalysis analysis = analyzer->AnalyzeQueryLiteral(q);
    for (const ArgumentVerdict& a : analysis.args) {
      if (a.safety != Safety::kUnsafe) continue;
      // Recompute to obtain the witness object.
      NodeId root = analyzer->system().FindHeadArg(q.pred, 0, a.position);
      SubsetResult res = CheckSubsetCondition(analyzer->system(), root, {});
      if (res.witness) {
        std::printf("%s", res.witness
                              ->ToDot(analyzer->system(),
                                      analyzer->canonical())
                              .c_str());
        return 0;
      }
    }
  }
  std::fprintf(stderr, "no unsafe query argument found in %s\n", path);
  return 2;
}

int CmdSimplify(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto stats = SimplifyProgram(&parsed.value());
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%% removed: %zu dead rules, %zu unreachable rules, "
              "%zu unreachable facts\n",
              stats->rules_removed_empty, stats->rules_removed_unreachable,
              stats->facts_removed);
  std::printf("%s", parsed->ToString().c_str());
  return 0;
}

int CmdExplain(const char* path, const char* literal_text) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Program program = std::move(parsed).value();
  BuiltinRegistry registry;
  if (Status st = RegisterStandardBuiltins(&program, &registry); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto lit = ParseLiteralInto(literal_text, &program);
  if (!lit.ok()) {
    std::fprintf(stderr, "%s\n", lit.status().ToString().c_str());
    return 1;
  }
  BottomUpOptions opts;
  opts.track_provenance = true;  // forces serial evaluation
  opts.jobs = g_flags.jobs;
  BottomUpEvaluator eval(&program, &registry, opts);
  if (Status st = eval.Run(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto answers = eval.Query(*lit);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  if (answers->empty()) {
    std::printf("no answers for %s\n", program.ToString(*lit).c_str());
    return 0;
  }
  constexpr size_t kMaxExplained = 5;
  for (size_t i = 0; i < answers->size() && i < kMaxExplained; ++i) {
    auto why = eval.Explain(lit->pred, (*answers)[i]);
    if (why.ok()) {
      std::printf("%s\n", why->c_str());
    }
  }
  if (answers->size() > kMaxExplained) {
    std::printf("... and %zu more answer(s)\n",
                answers->size() - kMaxExplained);
  }
  return 0;
}

int CmdRepl(const char* path) {
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto engine = Engine::Create(std::move(parsed).value(),
                               MakeEngineOptions());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("hornsafe repl — enter queries like 'path(1, X)'; "
              "'quit' to exit.\n");
  std::string line;
  while (true) {
    std::printf("?- ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim whitespace and an optional trailing period.
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (!line.empty() && line.back() == '.') line.pop_back();
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    auto r = engine->Query(line);
    if (!r.ok()) {
      std::printf("%s\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("%zu answer(s) [%s, %s]:\n", r->tuples.size(),
                SafetyName(r->safety), r->strategy.c_str());
    PrintTuples(engine->program(), r->tuples);
    if (g_flags.stats) PrintEvalStats(r->eval_stats);
  }
  return 0;
}

int CmdServe(const char* path) {
  std::unique_ptr<PipelineCache> cache;
  if (!g_flags.no_cache) {
    PipelineCache::Options copts;
    copts.dir = g_flags.cache_dir;
    cache = std::make_unique<PipelineCache>(copts);
  }
  ServerOptions sopts;
  sopts.analyzer.jobs = g_flags.jobs;
  sopts.cache = cache.get();
  sopts.default_deadline_ms = static_cast<uint64_t>(g_flags.deadline_ms);
  sopts.max_queue = static_cast<size_t>(g_flags.max_queue);
  sopts.shed_on_overflow = g_flags.shed;
  sopts.workers = static_cast<size_t>(g_flags.workers);
  // The analyzer must see the constraints of any standard builtin a
  // served program references (same contract as `check`).
  sopts.prepare_program = [](Program* program) {
    BuiltinRegistry referenced;
    return RegisterReferencedStandardBuiltins(program, &referenced);
  };
  Server server(std::move(sopts));
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Json preload = Json::Object();
    preload.Set("id", "preload");
    preload.Set("method", "update");
    preload.Set("program", buffer.str());
    std::string reply = server.HandleLine(preload.Dump());
    std::fprintf(stderr, "preload: %s\n", reply.c_str());
  }
  if (!g_flags.socket_path.empty()) {
    Status st = server.ServeUnixSocket(g_flags.socket_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  server.Serve(std::cin, std::cout);
  return 0;
}

int CmdMatrix(const char* path, const char* spec) {
  const char* slash = std::strrchr(spec, '/');
  if (slash == nullptr) {
    std::fprintf(stderr, "matrix: expected <pred>/<arity>, got '%s'\n", spec);
    return 1;
  }
  std::string name(spec, slash - spec);
  int arity = std::atoi(slash + 1);
  auto parsed = Load(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analyzer = SafetyAnalyzer::Create(*parsed);
  if (!analyzer.ok()) {
    std::fprintf(stderr, "%s\n", analyzer.status().ToString().c_str());
    return 1;
  }
  PredicateId pred = analyzer->canonical().FindPredicate(
      name, static_cast<uint32_t>(arity));
  if (pred == kInvalidPredicate) {
    std::fprintf(stderr, "matrix: unknown predicate %s/%d\n", name.c_str(),
                 arity);
    return 1;
  }
  std::printf("safety matrix for %s/%d (b = bound argument):\n",
              name.c_str(), arity);
  for (uint64_t mask = 0; mask < (uint64_t{1} << arity); ++mask) {
    QueryAnalysis q = analyzer->AnalyzePredicate(pred, mask);
    std::string adornment;
    for (int k = 0; k < arity; ++k) {
      adornment += ((mask >> k) & 1) ? 'b' : 'f';
    }
    std::printf("  %s: %-9s [", adornment.c_str(),
                SafetyName(q.overall));
    for (const ArgumentVerdict& a : q.args) {
      std::printf("%s%c", a.position ? " " : "",
                  a.safety == Safety::kSafe     ? 's'
                  : a.safety == Safety::kUnsafe ? 'U'
                                                : '?');
    }
    std::printf("]\n");
  }
  return 0;
}

int CmdFleet(const char* dir) {
  FleetOptions options;
  options.corpus_dir = dir;
  options.cache_dir = g_flags.cache_dir;
  options.procs = static_cast<int>(g_flags.procs);
  options.jobs = g_flags.jobs;
  options.fault_spec = g_flags.faults;
  options.compact_after = g_flags.compact;
  options.compact_bounds.max_bytes =
      static_cast<uint64_t>(g_flags.max_mb) << 20;
  options.compact_bounds.max_age_seconds = g_flags.max_age_s;
  auto report = RunFleet(options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (g_flags.json) {
    std::printf("%s\n", report.value().ToJson().Dump().c_str());
  } else {
    std::printf("%s", report.value().ToText().c_str());
  }
  return report.value().errors > 0 ? 2 : 0;
}

int CmdFleetWorker() {
  if (g_flags.shard_file.empty() || g_flags.out_file.empty()) {
    std::fprintf(stderr, "fleet-worker: --shard and --out are required\n");
    return 1;
  }
  // Same loader as `check`: referenced standard builtins registered so
  // fleet verdicts agree with per-program `hornsafe check` runs.
  return FleetWorkerMain(
      g_flags.shard_file, g_flags.out_file, g_flags.cache_dir, g_flags.jobs,
      [](const std::string& path) { return Load(path.c_str()); });
}

int CmdCacheCompact() {
  if (g_flags.cache_dir.empty()) {
    std::fprintf(stderr, "cache-compact: --cache-dir is required\n");
    return 1;
  }
  PipelineCache::CompactionOptions bounds;
  bounds.max_bytes = static_cast<uint64_t>(g_flags.max_mb) << 20;
  bounds.max_age_seconds = g_flags.max_age_s;
  auto result = PipelineCache::CompactDir(g_flags.cache_dir, bounds);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const PipelineCache::CompactionResult& r = result.value();
  if (g_flags.json) {
    Json j = Json::Object();
    j.Set("ran", r.ran);
    j.Set("entries_scanned", r.entries_scanned);
    j.Set("entries_removed", r.entries_removed);
    j.Set("bytes_removed", r.bytes_removed);
    j.Set("tmp_files_swept", r.tmp_files_swept);
    j.Set("generation", r.generation);
    std::printf("%s\n", j.Dump().c_str());
  } else if (!r.ran) {
    std::printf("compaction skipped: another compactor holds the lock\n");
  } else {
    std::printf(
        "compacted %s: scanned %llu entr(ies), removed %llu (%llu bytes), "
        "swept %llu tmp file(s), generation %llu\n",
        g_flags.cache_dir.c_str(),
        static_cast<unsigned long long>(r.entries_scanned),
        static_cast<unsigned long long>(r.entries_removed),
        static_cast<unsigned long long>(r.bytes_removed),
        static_cast<unsigned long long>(r.tmp_files_swept),
        static_cast<unsigned long long>(r.generation));
  }
  return 0;
}

/// Consumes `--jobs N` / `--jobs=N` / `--stats` anywhere on the command
/// line, compacting argv in place. Returns false on a malformed flag.
bool ParseFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stats") == 0) {
      g_flags.stats = true;
      continue;
    }
    if (std::strcmp(arg, "--stats-json") == 0) {
      g_flags.stats_json = true;
      continue;
    }
    if (std::strcmp(arg, "--no-cache") == 0) {
      g_flags.no_cache = true;
      continue;
    }
    if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      g_flags.cache_dir = arg + 12;
      continue;
    }
    if (std::strcmp(arg, "--cache-dir") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "--cache-dir requires a directory\n");
        return false;
      }
      g_flags.cache_dir = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--shed") == 0) {
      g_flags.shed = true;
      continue;
    }
    if (std::strcmp(arg, "--compact") == 0) {
      g_flags.compact = true;
      continue;
    }
    // String-valued fleet flags (--name VALUE or --name=VALUE).
    struct StrFlag {
      const char* name;
      std::string* target;
    };
    const StrFlag kStrFlags[] = {
        {"--faults", &g_flags.faults},
        {"--shard", &g_flags.shard_file},
        {"--out", &g_flags.out_file},
    };
    bool str_consumed = false;
    for (const StrFlag& f : kStrFlags) {
      size_t len = std::strlen(f.name);
      if (std::strncmp(arg, f.name, len) == 0 && arg[len] == '=') {
        *f.target = arg + len + 1;
        str_consumed = true;
        break;
      }
      if (std::strcmp(arg, f.name) == 0) {
        if (i + 1 >= *argc) {
          std::fprintf(stderr, "%s requires a value\n", f.name);
          return false;
        }
        *f.target = argv[++i];
        str_consumed = true;
        break;
      }
    }
    if (str_consumed) continue;
    if (std::strcmp(arg, "--json") == 0) {
      g_flags.json = true;
      continue;
    }
    if (std::strncmp(arg, "--suppress=", 11) == 0) {
      g_flags.suppress = arg + 11;
      continue;
    }
    if (std::strcmp(arg, "--suppress") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "--suppress requires a code list\n");
        return false;
      }
      g_flags.suppress = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      g_flags.socket_path = arg + 9;
      continue;
    }
    if (std::strcmp(arg, "--socket") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "--socket requires a path\n");
        return false;
      }
      g_flags.socket_path = argv[++i];
      continue;
    }
    // Numeric flags: --<name> N or --<name>=N.
    struct NumFlag {
      const char* name;
      long* target;
      long min, max;
    };
    const NumFlag kNumFlags[] = {
        {"--jobs", nullptr, 0, 4096},
        {"--deadline-ms", &g_flags.deadline_ms, 0, 86'400'000},
        {"--max-queue", &g_flags.max_queue, 1, 1 << 20},
        {"--workers", &g_flags.workers, 0, 4096},
        {"--procs", &g_flags.procs, 1, 256},
        {"--max-mb", &g_flags.max_mb, 0, 1 << 20},
        {"--max-age-s", &g_flags.max_age_s, 0, 1'000'000'000},
    };
    bool consumed = false;
    for (const NumFlag& f : kNumFlags) {
      size_t len = std::strlen(f.name);
      const char* value = nullptr;
      if (std::strncmp(arg, f.name, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
      } else if (std::strcmp(arg, f.name) == 0) {
        if (i + 1 >= *argc) {
          std::fprintf(stderr, "%s requires a value\n", f.name);
          return false;
        }
        value = argv[++i];
      } else {
        continue;
      }
      char* end = nullptr;
      long v = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || v < f.min || v > f.max) {
        std::fprintf(stderr, "invalid %s value '%s'\n", f.name, value);
        return false;
      }
      if (f.target != nullptr) {
        *f.target = v;
      } else {
        g_flags.jobs = static_cast<int>(v);
      }
      consumed = true;
      break;
    }
    if (consumed) continue;
    argv[out++] = argv[i];
  }
  *argc = out;
  return true;
}

int Main(int argc, char** argv) {
  if (!ParseFlags(&argc, argv)) return 1;
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return CmdServe(argc >= 3 ? argv[2] : nullptr);
  }
  if (argc >= 2 && std::strcmp(argv[1], "fleet-worker") == 0) {
    return CmdFleetWorker();
  }
  if (argc >= 2 && std::strcmp(argv[1], "cache-compact") == 0) {
    return CmdCacheCompact();
  }
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "fleet") == 0) return CmdFleet(argv[2]);
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "check") == 0) return CmdCheck(argv[2]);
  if (std::strcmp(cmd, "run") == 0) return CmdRun(argv[2]);
  if (std::strcmp(cmd, "canonical") == 0) return CmdCanonical(argv[2]);
  if (std::strcmp(cmd, "andor") == 0) return CmdAndOr(argv[2]);
  if (std::strcmp(cmd, "adorned") == 0) return CmdAdorned(argv[2]);
  if (std::strcmp(cmd, "report") == 0) return CmdReport(argv[2]);
  if (std::strcmp(cmd, "dot") == 0) return CmdDot(argv[2]);
  if (std::strcmp(cmd, "simplify") == 0) return CmdSimplify(argv[2]);
  if (std::strcmp(cmd, "lint") == 0) return CmdLint(argv[2]);
  if (std::strcmp(cmd, "repl") == 0) return CmdRepl(argv[2]);
  if (std::strcmp(cmd, "explain") == 0) {
    if (argc < 4) return Usage();
    return CmdExplain(argv[2], argv[3]);
  }
  if (std::strcmp(cmd, "matrix") == 0) {
    if (argc < 4) return Usage();
    return CmdMatrix(argv[2], argv[3]);
  }
  return Usage();
}

}  // namespace
}  // namespace hornsafe

int main(int argc, char** argv) { return hornsafe::Main(argc, argv); }
