#ifndef HORNSAFE_CANONICAL_CANONICAL_H_
#define HORNSAFE_CANONICAL_CANONICAL_H_

#include <unordered_map>

#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// Options controlling Algorithm 1.
struct CanonicalizeOptions {
  /// Attach the dependency `{args} ⇝ result` to every generated
  /// function predicate: a function computes finitely many (one) result
  /// per argument tuple.
  bool add_function_fds = true;
  /// Also attach `result ⇝ {args}`: uninterpreted function symbols are
  /// constructors, i.e. injective, so the result determines the
  /// arguments (this is what makes `concat` run backwards safely in
  /// Example 7).
  bool add_constructor_fds = true;
  /// Attach the subterm-ordering monotonicity constraints
  /// (`result > argᵢ`, every position bounded below) to generated
  /// function predicates, enabling the Theorem 5 structural-recursion
  /// argument (DESIGN.md, D9).
  bool add_constructor_monos = true;
};

/// Output of `Canonicalize`: the canonical program plus provenance maps
/// from generated predicates back to the syntax they replaced.
struct CanonicalizationResult {
  /// The canonical program: every rule/query argument is a variable;
  /// constants live in generated singleton finite EDB predicates and
  /// function symbols in generated infinite EDB predicates.
  Program program;
  /// Generated constant predicate -> the constant term it holds
  /// (term id valid in `program`).
  std::unordered_map<PredicateId, TermId> constant_preds;
  /// Generated function predicate -> the original function symbol
  /// (symbol id valid in `program`).
  std::unordered_map<PredicateId, SymbolId> function_preds;
};

/// Algorithm 1 of the paper: rewrites `input` into canonical form.
///
/// * Every constant occurrence in a rule or query is replaced by a fresh
///   variable guarded by a generated finite EDB predicate holding exactly
///   that constant; equal constants share one predicate (Example 6).
/// * Every function-symbol occurrence `g(t₁..tₖ)` is flattened, innermost
///   first, into a fresh variable `V` plus a body literal
///   `fn_g(t₁..tₖ,V)` over a generated infinite EDB predicate
///   (Example 7). One predicate is generated per function symbol; the
///   paper generates one per *occurrence*, but Algorithm 2 renames body
///   occurrences apart anyway, so the two choices are equivalent for the
///   safety analysis (DESIGN.md, D7).
/// * EDB facts containing function terms (e.g. `p([1,1]).`, Example 8)
///   become rules and are flattened like any other rule; plain constant
///   facts remain EDB data.
/// * A query whose arguments are not distinct variables is wrapped in a
///   fresh derived predicate over its distinct variables (Example 6).
///
/// By Theorem 2, safety of the result implies safety of `input`; the
/// converse fails in general (Example 8).
Result<CanonicalizationResult> Canonicalize(const Program& input,
                                            const CanonicalizeOptions& opts =
                                                CanonicalizeOptions{});

/// True iff `program` is already in canonical form: every argument of
/// every rule head, rule body literal and query is a variable.
bool IsCanonical(const Program& program);

}  // namespace hornsafe

#endif  // HORNSAFE_CANONICAL_CANONICAL_H_
