#include "canonical/canonical.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace hornsafe {

namespace {

/// Builds a predicate-name-friendly spelling of a constant: "5" -> "5",
/// "-3" -> "m3", "adam" -> "adam", "[]" -> "nil", other punctuation
/// becomes '_'.
std::string SanitizeConstantName(const Program& p, TermId t) {
  const TermData& d = p.terms().Get(t);
  if (d.kind == TermKind::kInt) {
    int64_t v = d.int_value;
    return v < 0 ? StrCat("m", -v) : std::to_string(v);
  }
  const std::string& name = p.symbols().Name(d.symbol);
  if (name == TermPool::kNilName) return "nil";
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out.empty() ? "atom" : out;
}

std::string SanitizeFunctionName(const Program& p, SymbolId sym) {
  const std::string& name = p.symbols().Name(sym);
  if (name == TermPool::kConsName) return "cons";
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out.empty() ? "fn" : out;
}

class Canonicalizer {
 public:
  Canonicalizer(const Program& input, const CanonicalizeOptions& opts)
      : opts_(opts) {
    result_.program = input;  // transform a copy in place
  }

  Result<CanonicalizationResult> Run() {
    Program& p = result_.program;
    std::vector<Rule> rules = p.TakeRules();
    std::vector<Literal> facts = p.TakeFacts();
    std::vector<Literal> queries = p.TakeQueries();

    // Facts containing function terms become rules (Example 8); once a
    // predicate has any such fact, all its facts convert, keeping the
    // EDB/IDB partition disjoint.
    std::vector<bool> compound_pred(p.num_predicates(), false);
    for (const Literal& f : facts) {
      if (HasFunctionArg(f)) compound_pred[f.pred] = true;
    }
    std::vector<Literal> kept_facts;
    for (Literal& f : facts) {
      if (compound_pred[f.pred]) {
        rules.push_back(Rule{std::move(f), {}});
      } else {
        kept_facts.push_back(std::move(f));
      }
    }
    for (Literal& f : kept_facts) {
      HORNSAFE_RETURN_IF_ERROR(p.AddFact(std::move(f)));
    }

    for (Rule& r : rules) {
      HORNSAFE_RETURN_IF_ERROR(p.AddRule(TransformRule(std::move(r))));
    }

    for (Literal& q : queries) {
      HORNSAFE_RETURN_IF_ERROR(TransformQuery(std::move(q)));
    }

    HORNSAFE_RETURN_IF_ERROR(p.Validate());
    return std::move(result_);
  }

 private:
  Program& p() { return result_.program; }

  bool HasFunctionArg(const Literal& lit) {
    for (TermId a : lit.args) {
      if (p().terms().IsFunction(a)) return true;
    }
    return false;
  }

  /// Step 1 of Algorithm 1: the guard predicate for a constant, shared
  /// across occurrences, with its singleton fact.
  PredicateId ConstantPredicate(TermId constant) {
    auto it = constant_index_.find(constant);
    if (it != constant_index_.end()) return it->second;
    SymbolId name = p().symbols().InternFresh(
        StrCat("cst_", SanitizeConstantName(p(), constant)));
    PredicateId pred = p().InternPredicate(name, 1);
    Status st = p().AddFact(Literal{pred, {constant}});
    (void)st;  // constants are ground; cannot fail
    constant_index_.emplace(constant, pred);
    result_.constant_preds.emplace(pred, constant);
    return pred;
  }

  /// Step 2 of Algorithm 1: the infinite predicate for a function symbol
  /// of arity k (predicate arity k+1), with its FDs.
  PredicateId FunctionPredicate(SymbolId symbol, uint32_t k) {
    auto key = std::make_pair(symbol, k);
    auto it = function_index_.find(key);
    if (it != function_index_.end()) return it->second;
    SymbolId name = p().symbols().InternFresh(
        StrCat("fn_", SanitizeFunctionName(p(), symbol), "_", k));
    PredicateId pred = p().InternPredicate(name, k + 1);
    Status st = p().DeclareInfinite(pred);
    (void)st;  // fresh predicate; cannot fail
    if (opts_.add_function_fds) {
      st = p().AddFiniteDependency(FiniteDependency{
          pred, AttrSet::AllBelow(k), AttrSet::Single(k)});
    }
    if (opts_.add_constructor_fds) {
      st = p().AddFiniteDependency(FiniteDependency{
          pred, AttrSet::Single(k), AttrSet::AllBelow(k)});
    }
    if (opts_.add_constructor_monos && k > 0) {
      // Subterm ordering: the constructed term strictly contains each
      // argument, and the ordering is well-founded (every term is above
      // the bottom of the size order) — DESIGN.md, D9.
      for (uint32_t i = 0; i < k; ++i) {
        st = p().AddMonotonicity(MonotonicityConstraint{
            pred, MonoKind::kAttrGreaterAttr, k, i, 0});
      }
      for (uint32_t i = 0; i <= k; ++i) {
        st = p().AddMonotonicity(MonotonicityConstraint{
            pred, MonoKind::kAttrGreaterConst, i, 0, 0});
      }
    }
    function_index_.emplace(key, pred);
    result_.function_preds.emplace(pred, symbol);
    return pred;
  }

  TermId FreshVar() {
    return p().terms().MakeVariable(p().symbols().InternFresh("V"));
  }

  /// Rewrites `term` to a variable, appending extraction literals to
  /// `*extra`. Variables pass through; constants and function terms are
  /// replaced per Algorithm 1 (innermost first).
  TermId ExtractTerm(TermId term, std::vector<Literal>* extra) {
    if (p().terms().IsVariable(term)) return term;
    if (p().terms().IsConstant(term)) {
      PredicateId cpred = ConstantPredicate(term);
      TermId v = FreshVar();
      extra->push_back(Literal{cpred, {v}});
      return v;
    }
    // Function term: flatten arguments first, then the application.
    // Copy payload before growing the pool.
    SymbolId symbol = p().terms().Get(term).symbol;
    std::vector<TermId> args = p().terms().Get(term).args;
    std::vector<TermId> flat_args;
    flat_args.reserve(args.size());
    for (TermId a : args) flat_args.push_back(ExtractTerm(a, extra));
    PredicateId fpred =
        FunctionPredicate(symbol, static_cast<uint32_t>(args.size()));
    TermId v = FreshVar();
    flat_args.push_back(v);
    extra->push_back(Literal{fpred, std::move(flat_args)});
    return v;
  }

  Literal TransformLiteral(Literal lit, std::vector<Literal>* extra) {
    for (TermId& a : lit.args) a = ExtractTerm(a, extra);
    return lit;
  }

  Rule TransformRule(Rule rule) {
    std::vector<Literal> extra;
    Rule out;
    out.head = TransformLiteral(std::move(rule.head), &extra);
    for (Literal& b : rule.body) {
      out.body.push_back(TransformLiteral(std::move(b), &extra));
    }
    for (Literal& e : extra) out.body.push_back(std::move(e));
    return out;
  }

  Status TransformQuery(Literal query) {
    // Already canonical: all arguments are distinct variables.
    bool all_distinct_vars = true;
    std::vector<TermId> seen;
    for (TermId a : query.args) {
      if (!p().terms().IsVariable(a) ||
          std::find(seen.begin(), seen.end(), a) != seen.end()) {
        all_distinct_vars = false;
        break;
      }
      seen.push_back(a);
    }
    if (all_distinct_vars) return p().AddQuery(std::move(query));

    // Example 6: wrap in a fresh derived predicate over the distinct
    // variables of the query.
    std::vector<TermId> vars = LiteralVariables(p().terms(), query);
    SymbolId qname = p().symbols().InternFresh("q");
    PredicateId qpred =
        p().InternPredicate(qname, static_cast<uint32_t>(vars.size()));
    Literal qhead{qpred, vars};
    HORNSAFE_RETURN_IF_ERROR(
        p().AddRule(TransformRule(Rule{qhead, {std::move(query)}})));
    return p().AddQuery(std::move(qhead));
  }

  CanonicalizeOptions opts_;
  CanonicalizationResult result_;
  std::unordered_map<TermId, PredicateId> constant_index_;

  struct PairHash {
    size_t operator()(const std::pair<SymbolId, uint32_t>& k) const {
      return std::hash<uint64_t>{}((uint64_t{k.first} << 32) | k.second);
    }
  };
  std::unordered_map<std::pair<SymbolId, uint32_t>, PredicateId, PairHash>
      function_index_;
};

}  // namespace

Result<CanonicalizationResult> Canonicalize(const Program& input,
                                            const CanonicalizeOptions& opts) {
  return Canonicalizer(input, opts).Run();
}

bool IsCanonical(const Program& program) {
  auto all_vars = [&](const Literal& lit) {
    return std::all_of(lit.args.begin(), lit.args.end(), [&](TermId a) {
      return program.terms().IsVariable(a);
    });
  };
  for (const Rule& r : program.rules()) {
    if (!all_vars(r.head)) return false;
    for (const Literal& b : r.body) {
      if (!all_vars(b)) return false;
    }
  }
  for (const Literal& q : program.queries()) {
    if (!all_vars(q)) return false;
  }
  return true;
}

}  // namespace hornsafe
