#ifndef HORNSAFE_FD_ARMSTRONG_H_
#define HORNSAFE_FD_ARMSTRONG_H_

#include <cstdint>
#include <vector>

#include "lang/attr_set.h"
#include "lang/dependency.h"

namespace hornsafe {

/// Syntactic Armstrong derivation engine over a fixed attribute universe
/// `{0..arity-1}` (Theorem 1 of the paper: reflexivity, augmentation,
/// transitivity are sound and complete for finiteness dependencies).
///
/// `Saturate` enumerates *every* dependency `X ⇝ Y` derivable from the
/// input by the three axioms, by saturating the 2^arity × 2^arity pair
/// space; it is exponential and exists to validate the closure-based
/// implication test (`Implies`) against the axioms in property tests.
class ArmstrongEngine {
 public:
  /// `arity` must be ≤ 16 (the saturation table has 4^arity entries).
  ArmstrongEngine(uint32_t arity, std::vector<FiniteDependency> base);

  /// Runs saturation to fixpoint.
  void Saturate();

  /// True iff `lhs ⇝ rhs` has been derived. Call `Saturate()` first.
  bool Derivable(AttrSet lhs, AttrSet rhs) const;

  /// Number of derivable dependencies (including trivial ones).
  size_t DerivedCount() const;

 private:
  size_t IndexOf(AttrSet lhs, AttrSet rhs) const {
    return (lhs.bits() << arity_) | rhs.bits();
  }
  bool Mark(AttrSet lhs, AttrSet rhs);

  uint32_t arity_;
  std::vector<FiniteDependency> base_;
  std::vector<bool> derived_;
};

/// The "standard counterexample" instance used in the completeness proof
/// of Theorem 1, in symbolic form: the relation whose projection onto an
/// attribute set `A` is finite iff `A ⊆ finite_attrs`. An FD `X ⇝ Y`
/// holds in it iff `X ⊄ finite_attrs` or `Y ⊆ finite_attrs`.
struct SymbolicInstance {
  AttrSet finite_attrs;

  bool Satisfies(const FiniteDependency& fd) const {
    return !fd.lhs.SubsetOf(finite_attrs) || fd.rhs.SubsetOf(finite_attrs);
  }
  bool SatisfiesAll(const std::vector<FiniteDependency>& fds) const {
    for (const FiniteDependency& fd : fds) {
      if (!Satisfies(fd)) return false;
    }
    return true;
  }
};

}  // namespace hornsafe

#endif  // HORNSAFE_FD_ARMSTRONG_H_
