#ifndef HORNSAFE_FD_FD_H_
#define HORNSAFE_FD_FD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lang/attr_set.h"
#include "lang/dependency.h"

namespace hornsafe {

/// Computes the closure `attrs⁺` of an attribute set under the finiteness
/// dependencies `fds` (all assumed to be over the same predicate): the
/// largest set of attributes whose finiteness follows from the finiteness
/// of `attrs` by the Armstrong axioms (Theorem 1). Runs in
/// O(|fds|²) worst case with the classic iterate-to-fixpoint scheme.
AttrSet AttrClosure(AttrSet attrs, const std::vector<FiniteDependency>& fds);

/// True iff `fds ⊨ lhs ⇝ rhs`, i.e. `rhs ⊆ lhs⁺`. By Theorem 1 this is
/// exactly Armstrong derivability.
bool Implies(const std::vector<FiniteDependency>& fds, AttrSet lhs,
             AttrSet rhs);

/// True iff `fd` is redundant given the other dependencies in `fds`
/// (implied by `fds \ {fd}`).
bool IsRedundant(const std::vector<FiniteDependency>& fds, size_t index);

/// A minimal cover: an equivalent set of dependencies where every
/// right-hand side is a single attribute, no left-hand side contains an
/// extraneous attribute, and no dependency is redundant.
std::vector<FiniteDependency> MinimalCover(std::vector<FiniteDependency> fds);

/// All minimal attribute sets `S ⊆ {0..arity-1} \ {attr}` with
/// `attr ∈ S⁺`, i.e. the minimal ways the other attributes can finitely
/// determine `attr` under the *closure* of `fds`. Exponential in `arity`
/// (arity is a predicate arity, so tiny in practice). Used by the
/// analyzer's `use_fd_closure` option; the paper's Algorithm 2 uses only
/// the declared dependencies.
std::vector<AttrSet> MinimalDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t arity, uint32_t attr);

/// The left-hand sides of the *declared* dependencies in `fds` whose
/// right-hand side covers `attr` — the "n FDs that determine the kth
/// argument" of Algorithm 2 step 4.
std::vector<AttrSet> DeclaredDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t attr);

/// Order-invariant content hash of a dependency *set*: a sorted fold of
/// the (lhs, rhs) attribute bitmasks. The predicate id is deliberately
/// excluded — two predicates declaring structurally identical FDs share
/// one hash, so closure work keyed by it is shared between them (and
/// across updates, where predicate ids are not stable anyway).
uint64_t FdSetHash(const std::vector<FiniteDependency>& fds);

/// Memoizing view over one predicate's dependency set. Algorithm 2
/// step 4 asks for the determinants of the same (predicate, argument)
/// pair once per *occurrence*, and the closure enumeration inside
/// MinimalDeterminants revisits the same attribute sets across
/// arguments — both were recomputed from scratch every time. The index
/// caches attribute-set closures by bitmask and determinant lists by
/// (arity, attr, declared/closure), so repeated occurrences cost one
/// hash lookup.
class FdClosureIndex {
 public:
  FdClosureIndex() = default;
  explicit FdClosureIndex(std::vector<FiniteDependency> fds)
      : fds_(std::move(fds)) {}

  const std::vector<FiniteDependency>& fds() const { return fds_; }

  /// Memoized AttrClosure(attrs, fds()).
  AttrSet Closure(AttrSet attrs);

  /// Cached MinimalDeterminants(fds(), arity, attr), computed with the
  /// memoized closure.
  const std::vector<AttrSet>& Minimal(uint32_t arity, uint32_t attr);

  /// Cached DeclaredDeterminants(fds(), attr).
  const std::vector<AttrSet>& Declared(uint32_t attr);

  /// Const lookups for *frozen* indexes (see Precompute): the entry must
  /// have been precomputed, so no memo mutation happens and any number
  /// of threads may read concurrently. Aborts on a missing entry — that
  /// is a programming error, not a recoverable condition.
  const std::vector<AttrSet>& Minimal(uint32_t arity, uint32_t attr) const;
  const std::vector<AttrSet>& Declared(uint32_t attr) const;

  /// Memoized IsRedundant(fds(), index). The const overload requires a
  /// frozen index (Precompute fills the memo for every dependency).
  bool Redundant(size_t index);
  bool Redundant(size_t index) const;

  /// Eagerly fills the determinant memo for every attribute of a
  /// predicate of `arity` (declared always; minimal-under-closure when
  /// `include_minimal`) plus the per-dependency redundancy verdicts,
  /// and freezes the index. A frozen index is logically immutable: the
  /// const accessors above serve every lookup without touching the
  /// memo, which is what makes one index shareable by concurrent
  /// pipeline builds (FdClosureCache).
  void Precompute(uint32_t arity, bool include_minimal);

  bool frozen() const { return frozen_; }

  size_t closure_cache_size() const { return closure_memo_.size(); }

 private:
  std::vector<FiniteDependency> fds_;
  std::unordered_map<uint64_t, AttrSet> closure_memo_;
  /// Key: attr | arity << 8 | kind << 16 (kind 0 = declared,
  /// 1 = minimal; declared ignores arity).
  std::unordered_map<uint32_t, std::vector<AttrSet>> det_memo_;
  /// -1 unknown, else 0/1: memoized IsRedundant per dependency index.
  std::vector<int8_t> redundant_memo_;
  bool frozen_ = false;
};

/// Process-wide (well, cache-wide) sharing of closed FD indexes across
/// pipeline builds, keyed by (FdSetHash, arity, closure mode). An
/// Update() used to re-run the attribute-closure fixpoint and the
/// 2^arity determinant enumeration for every infinite-base predicate of
/// every rebuild; with this cache, predicates whose dependency set is
/// unchanged (the overwhelming majority under single-cone edits) get
/// the previous build's frozen index back in one hash lookup. Returned
/// indexes are precomputed and frozen, so concurrent builds can read
/// them without synchronization. Thread-safe; entries are never evicted
/// (distinct FD structures are few — they are bounded by the source
/// text, not the workload).
class FdClosureCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// The frozen index for `fds` over a predicate of `arity`. Builds and
  /// precomputes on first use; `include_minimal` selects whether the
  /// minimal-determinant enumeration (use_fd_closure mode) is
  /// materialized too.
  std::shared_ptr<const FdClosureIndex> For(
      const std::vector<FiniteDependency>& fds, uint32_t arity,
      bool include_minimal);

  Stats stats() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const FdClosureIndex>> memo_;
  Stats stats_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_FD_FD_H_
