#ifndef HORNSAFE_FD_FD_H_
#define HORNSAFE_FD_FD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lang/attr_set.h"
#include "lang/dependency.h"

namespace hornsafe {

/// Computes the closure `attrs⁺` of an attribute set under the finiteness
/// dependencies `fds` (all assumed to be over the same predicate): the
/// largest set of attributes whose finiteness follows from the finiteness
/// of `attrs` by the Armstrong axioms (Theorem 1). Runs in
/// O(|fds|²) worst case with the classic iterate-to-fixpoint scheme.
AttrSet AttrClosure(AttrSet attrs, const std::vector<FiniteDependency>& fds);

/// True iff `fds ⊨ lhs ⇝ rhs`, i.e. `rhs ⊆ lhs⁺`. By Theorem 1 this is
/// exactly Armstrong derivability.
bool Implies(const std::vector<FiniteDependency>& fds, AttrSet lhs,
             AttrSet rhs);

/// True iff `fd` is redundant given the other dependencies in `fds`
/// (implied by `fds \ {fd}`).
bool IsRedundant(const std::vector<FiniteDependency>& fds, size_t index);

/// A minimal cover: an equivalent set of dependencies where every
/// right-hand side is a single attribute, no left-hand side contains an
/// extraneous attribute, and no dependency is redundant.
std::vector<FiniteDependency> MinimalCover(std::vector<FiniteDependency> fds);

/// All minimal attribute sets `S ⊆ {0..arity-1} \ {attr}` with
/// `attr ∈ S⁺`, i.e. the minimal ways the other attributes can finitely
/// determine `attr` under the *closure* of `fds`. Exponential in `arity`
/// (arity is a predicate arity, so tiny in practice). Used by the
/// analyzer's `use_fd_closure` option; the paper's Algorithm 2 uses only
/// the declared dependencies.
std::vector<AttrSet> MinimalDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t arity, uint32_t attr);

/// The left-hand sides of the *declared* dependencies in `fds` whose
/// right-hand side covers `attr` — the "n FDs that determine the kth
/// argument" of Algorithm 2 step 4.
std::vector<AttrSet> DeclaredDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t attr);

/// Memoizing view over one predicate's dependency set. Algorithm 2
/// step 4 asks for the determinants of the same (predicate, argument)
/// pair once per *occurrence*, and the closure enumeration inside
/// MinimalDeterminants revisits the same attribute sets across
/// arguments — both were recomputed from scratch every time. The index
/// caches attribute-set closures by bitmask and determinant lists by
/// (arity, attr, declared/closure), so repeated occurrences cost one
/// hash lookup.
class FdClosureIndex {
 public:
  FdClosureIndex() = default;
  explicit FdClosureIndex(std::vector<FiniteDependency> fds)
      : fds_(std::move(fds)) {}

  const std::vector<FiniteDependency>& fds() const { return fds_; }

  /// Memoized AttrClosure(attrs, fds()).
  AttrSet Closure(AttrSet attrs);

  /// Cached MinimalDeterminants(fds(), arity, attr), computed with the
  /// memoized closure.
  const std::vector<AttrSet>& Minimal(uint32_t arity, uint32_t attr);

  /// Cached DeclaredDeterminants(fds(), attr).
  const std::vector<AttrSet>& Declared(uint32_t attr);

  size_t closure_cache_size() const { return closure_memo_.size(); }

 private:
  std::vector<FiniteDependency> fds_;
  std::unordered_map<uint64_t, AttrSet> closure_memo_;
  /// Key: attr | arity << 8 | kind << 16 (kind 0 = declared,
  /// 1 = minimal; declared ignores arity).
  std::unordered_map<uint32_t, std::vector<AttrSet>> det_memo_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_FD_FD_H_
