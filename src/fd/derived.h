#ifndef HORNSAFE_FD_DERIVED_H_
#define HORNSAFE_FD_DERIVED_H_

#include <vector>

#include "lang/program.h"

namespace hornsafe {

/// Infers the finiteness dependencies that provably hold over the
/// *derived* predicates of a canonical program, given the declared
/// dependencies over its EDB predicates.
///
/// The paper states FDs only over base predicates; this module extends
/// the notion upward: `X ⇝ Y` holds on a derived predicate `p` iff it
/// holds in every relation `p` can denote. The inference is a greatest
/// fixpoint: start by assuming every dependency on every derived
/// predicate, then repeatedly discard a candidate `X ⇝ Y` on `p` if
/// some rule for `p` fails to *transfer* it — where a rule transfers
/// the dependency iff, seeding the variables of the head positions in X
/// as finite and closing under (a) body-literal dependencies (EDB
/// declared FDs, derived candidate FDs) and (b) finite base literals
/// grounding their variables outright, every variable of the head
/// positions in Y becomes finite.
///
/// The result is sound (assuming the declared EDB dependencies): every
/// reported dependency holds in all models. It is not complete — e.g.
/// dependencies that hold only because a rule can never fire are
/// missed (run Algorithm 3 pruning upstream if that matters).
///
/// `program` must be canonical (all rule arguments variables); use
/// `Canonicalize` first. Only dependencies with singleton right-hand
/// sides are returned (the general form follows by union).
std::vector<FiniteDependency> InferDerivedFds(const Program& program);

/// True iff `lhs ⇝ rhs` over derived predicate `pred` is among the
/// consequences of `InferDerivedFds` closed under the Armstrong axioms.
bool DerivedFdHolds(const Program& program, PredicateId pred, AttrSet lhs,
                    AttrSet rhs);

}  // namespace hornsafe

#endif  // HORNSAFE_FD_DERIVED_H_
