#include "fd/derived.h"

#include <algorithm>
#include <map>
#include <set>

#include "fd/fd.h"

namespace hornsafe {

namespace {

/// Predicates wider than this are skipped (candidate space is
/// 2^arity · arity).
constexpr uint32_t kMaxInferenceArity = 10;

using Candidate = std::pair<uint64_t, uint32_t>;  // (lhs mask, rhs attr)

/// True iff the rule transfers `lhs ⇝ {rhs}` from its head, given the
/// current candidate sets for derived predicates.
bool RuleTransfers(
    const Program& program, const Rule& rule, AttrSet lhs, uint32_t rhs,
    const std::map<PredicateId, std::set<Candidate>>& candidates) {
  std::set<TermId> finite;
  // Seed: head variables at lhs positions.
  for (uint32_t k : lhs.ToVector()) {
    finite.insert(rule.head.args[k]);
  }
  // Finite base literals ground all their variables.
  for (const Literal& b : rule.body) {
    if (program.IsFiniteBase(b.pred)) {
      finite.insert(b.args.begin(), b.args.end());
    }
  }
  // Close under body dependencies.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& b : rule.body) {
      auto apply = [&](AttrSet fd_lhs, AttrSet fd_rhs) {
        for (uint32_t j : fd_lhs.ToVector()) {
          if (!finite.count(b.args[j])) return;
        }
        for (uint32_t j : fd_rhs.ToVector()) {
          if (finite.insert(b.args[j]).second) changed = true;
        }
      };
      if (program.IsInfiniteBase(b.pred)) {
        for (const FiniteDependency& fd : program.FdsFor(b.pred)) {
          apply(fd.lhs, fd.rhs);
        }
      } else if (program.IsDerived(b.pred)) {
        auto it = candidates.find(b.pred);
        if (it == candidates.end()) continue;
        for (const Candidate& c : it->second) {
          apply(AttrSet(c.first), AttrSet::Single(c.second));
        }
      }
    }
  }
  return finite.count(rule.head.args[rhs]) > 0;
}

}  // namespace

std::vector<FiniteDependency> InferDerivedFds(const Program& program) {
  // Greatest fixpoint: assume everything, discard what fails.
  std::map<PredicateId, std::set<Candidate>> candidates;
  std::map<PredicateId, std::vector<const Rule*>> rules_of;
  for (const Rule& r : program.rules()) {
    rules_of[r.head.pred].push_back(&r);
  }
  for (const auto& [pred, rules] : rules_of) {
    uint32_t arity = program.predicate(pred).arity;
    if (arity == 0 || arity > kMaxInferenceArity) continue;
    std::set<Candidate>& set = candidates[pred];
    for (uint64_t mask = 0; mask < (uint64_t{1} << arity); ++mask) {
      for (uint32_t rhs = 0; rhs < arity; ++rhs) {
        if ((mask >> rhs) & 1) continue;  // trivial
        set.insert({mask, rhs});
      }
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [pred, set] : candidates) {
      for (auto it = set.begin(); it != set.end();) {
        bool holds = true;
        for (const Rule* r : rules_of[pred]) {
          if (!RuleTransfers(program, *r, AttrSet(it->first), it->second,
                             candidates)) {
            holds = false;
            break;
          }
        }
        if (!holds) {
          it = set.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }

  // Emit minimal-interesting results: drop candidates whose left-hand
  // side is a strict superset of another surviving candidate with the
  // same right-hand side (they follow by augmentation).
  std::vector<FiniteDependency> out;
  for (const auto& [pred, set] : candidates) {
    for (const Candidate& c : set) {
      bool dominated = false;
      for (const Candidate& other : set) {
        if (other.second != c.second) continue;
        if (other.first != c.first &&
            (other.first & ~c.first) == 0) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        out.push_back(FiniteDependency{pred, AttrSet(c.first),
                                       AttrSet::Single(c.second)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FiniteDependency& a, const FiniteDependency& b) {
              if (a.pred != b.pred) return a.pred < b.pred;
              if (a.lhs.bits() != b.lhs.bits()) {
                return a.lhs.bits() < b.lhs.bits();
              }
              return a.rhs.bits() < b.rhs.bits();
            });
  return out;
}

bool DerivedFdHolds(const Program& program, PredicateId pred, AttrSet lhs,
                    AttrSet rhs) {
  std::vector<FiniteDependency> inferred = InferDerivedFds(program);
  std::vector<FiniteDependency> for_pred;
  for (const FiniteDependency& fd : inferred) {
    if (fd.pred == pred) for_pred.push_back(fd);
  }
  return Implies(for_pred, lhs, rhs);
}

}  // namespace hornsafe
