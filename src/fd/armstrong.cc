#include "fd/armstrong.h"

#include <cassert>

namespace hornsafe {

ArmstrongEngine::ArmstrongEngine(uint32_t arity,
                                 std::vector<FiniteDependency> base)
    : arity_(arity), base_(std::move(base)) {
  assert(arity <= 12 && "saturation table would exceed 16M entries");
  derived_.assign(size_t{1} << (2 * arity_), false);
}

bool ArmstrongEngine::Mark(AttrSet lhs, AttrSet rhs) {
  size_t idx = IndexOf(lhs, rhs);
  if (derived_[idx]) return false;
  derived_[idx] = true;
  return true;
}

void ArmstrongEngine::Saturate() {
  const uint64_t universe = uint64_t{1} << arity_;
  // Axiom 1 (reflexivity): X ⇝ Y for every Y ⊆ X.
  for (uint64_t x = 0; x < universe; ++x) {
    // Enumerate submasks of x.
    uint64_t y = x;
    while (true) {
      Mark(AttrSet(x), AttrSet(y));
      if (y == 0) break;
      y = (y - 1) & x;
    }
  }
  // Base dependencies.
  for (const FiniteDependency& fd : base_) {
    Mark(fd.lhs, fd.rhs);
  }
  // Axioms 2 and 3 (augmentation, transitivity) to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint64_t x = 0; x < universe; ++x) {
      for (uint64_t y = 0; y < universe; ++y) {
        if (!derived_[IndexOf(AttrSet(x), AttrSet(y))]) continue;
        // Augmentation: X ⇝ Y derives XZ ⇝ YZ.
        for (uint64_t z = 0; z < universe; ++z) {
          changed |= Mark(AttrSet(x | z), AttrSet(y | z));
        }
        // Transitivity: X ⇝ Y and Y ⇝ Z derive X ⇝ Z.
        for (uint64_t z = 0; z < universe; ++z) {
          if (derived_[IndexOf(AttrSet(y), AttrSet(z))]) {
            changed |= Mark(AttrSet(x), AttrSet(z));
          }
        }
      }
    }
  }
}

bool ArmstrongEngine::Derivable(AttrSet lhs, AttrSet rhs) const {
  return derived_[IndexOf(lhs, rhs)];
}

size_t ArmstrongEngine::DerivedCount() const {
  size_t n = 0;
  for (bool b : derived_) n += b;
  return n;
}

}  // namespace hornsafe
