#include "fd/fd.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "lang/struct_hash.h"

namespace hornsafe {

AttrSet AttrClosure(AttrSet attrs, const std::vector<FiniteDependency>& fds) {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FiniteDependency& fd : fds) {
      if (fd.lhs.SubsetOf(closure) && !fd.rhs.SubsetOf(closure)) {
        closure = closure.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<FiniteDependency>& fds, AttrSet lhs,
             AttrSet rhs) {
  return rhs.SubsetOf(AttrClosure(lhs, fds));
}

bool IsRedundant(const std::vector<FiniteDependency>& fds, size_t index) {
  std::vector<FiniteDependency> rest;
  rest.reserve(fds.size() - 1);
  for (size_t i = 0; i < fds.size(); ++i) {
    if (i != index) rest.push_back(fds[i]);
  }
  return Implies(rest, fds[index].lhs, fds[index].rhs);
}

std::vector<FiniteDependency> MinimalCover(std::vector<FiniteDependency> fds) {
  // 1. Split right-hand sides into single attributes.
  std::vector<FiniteDependency> split;
  for (const FiniteDependency& fd : fds) {
    for (uint32_t a : fd.rhs.ToVector()) {
      split.push_back(FiniteDependency{fd.pred, fd.lhs, AttrSet::Single(a)});
    }
  }
  // 2. Remove extraneous left-hand-side attributes.
  for (FiniteDependency& fd : split) {
    for (uint32_t a : fd.lhs.ToVector()) {
      AttrSet smaller = fd.lhs;
      smaller.Remove(a);
      if (Implies(split, smaller, fd.rhs)) fd.lhs = smaller;
    }
  }
  // 3. Remove redundant dependencies (re-checking after each removal).
  for (size_t i = 0; i < split.size();) {
    if (IsRedundant(split, i)) {
      split.erase(split.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  // 4. Drop trivial dependencies (rhs ⊆ lhs).
  split.erase(std::remove_if(split.begin(), split.end(),
                             [](const FiniteDependency& fd) {
                               return fd.rhs.SubsetOf(fd.lhs);
                             }),
              split.end());
  return split;
}

namespace {

/// Shared body of MinimalDeterminants: candidates are enumerated in
/// increasing cardinality (Gosper's hack within each level), so a
/// candidate that contains an already-found determinant is dominated
/// and skipped before its closure is ever computed, and every
/// surviving hit is minimal by construction — no superset cleanup
/// pass. `closure` abstracts over the plain and the memoized closure.
template <typename ClosureFn>
std::vector<AttrSet> MinimalDeterminantsWith(uint32_t arity, uint32_t attr,
                                             ClosureFn&& closure) {
  std::vector<AttrSet> minimal;
  AttrSet others = AttrSet::AllBelow(arity);
  others.Remove(attr);
  std::vector<uint32_t> other_list = others.ToVector();
  const size_t n = other_list.size();
  for (size_t card = 0; card <= n; ++card) {
    if (card == 0) {
      if (closure(AttrSet()).Contains(attr)) {
        // The empty set determines attr: it dominates everything.
        return {AttrSet()};
      }
      continue;
    }
    uint64_t mask = (uint64_t{1} << card) - 1;
    const uint64_t limit = uint64_t{1} << n;
    while (mask < limit) {
      AttrSet candidate;
      for (uint64_t b = mask; b != 0; b &= b - 1) {
        candidate.Add(other_list[__builtin_ctzll(b)]);
      }
      bool dominated = false;
      for (const AttrSet& m : minimal) {
        if (m.SubsetOf(candidate)) {
          dominated = true;
          break;
        }
      }
      if (!dominated && closure(candidate).Contains(attr)) {
        minimal.push_back(candidate);
      }
      // Gosper's hack: next n-bit mask with the same popcount.
      uint64_t c = mask & (~mask + 1);
      uint64_t r = mask + c;
      mask = (((r ^ mask) >> 2) / c) | r;
    }
  }
  return minimal;
}

}  // namespace

std::vector<AttrSet> MinimalDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t arity, uint32_t attr) {
  return MinimalDeterminantsWith(
      arity, attr, [&](AttrSet s) { return AttrClosure(s, fds); });
}

std::vector<AttrSet> DeclaredDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t attr) {
  std::vector<AttrSet> out;
  for (const FiniteDependency& fd : fds) {
    if (fd.rhs.Contains(attr) && !fd.lhs.Contains(attr)) {
      if (std::find(out.begin(), out.end(), fd.lhs) == out.end()) {
        out.push_back(fd.lhs);
      }
    }
  }
  return out;
}

uint64_t FdSetHash(const std::vector<FiniteDependency>& fds) {
  std::vector<uint64_t> parts;
  parts.reserve(fds.size());
  for (const FiniteDependency& fd : fds) {
    parts.push_back(CombineHash(fd.lhs.bits(), fd.rhs.bits()));
  }
  std::sort(parts.begin(), parts.end());
  uint64_t h = MixHash(0x66647365ULL);  // "fdse"
  for (uint64_t x : parts) h = CombineHash(h, x);
  return h;
}

AttrSet FdClosureIndex::Closure(AttrSet attrs) {
  auto it = closure_memo_.find(attrs.bits());
  if (it != closure_memo_.end()) return it->second;
  AttrSet closure = AttrClosure(attrs, fds_);
  closure_memo_.emplace(attrs.bits(), closure);
  return closure;
}

const std::vector<AttrSet>& FdClosureIndex::Minimal(uint32_t arity,
                                                    uint32_t attr) {
  uint32_t key = attr | (arity << 8) | (1u << 16);
  auto it = det_memo_.find(key);
  if (it == det_memo_.end()) {
    it = det_memo_
             .emplace(key, MinimalDeterminantsWith(
                               arity, attr,
                               [this](AttrSet s) { return Closure(s); }))
             .first;
  }
  return it->second;
}

const std::vector<AttrSet>& FdClosureIndex::Declared(uint32_t attr) {
  uint32_t key = attr;
  auto it = det_memo_.find(key);
  if (it == det_memo_.end()) {
    it = det_memo_.emplace(key, DeclaredDeterminants(fds_, attr)).first;
  }
  return it->second;
}

namespace {

[[noreturn]] void MissingPrecomputedEntry(uint32_t attr) {
  std::fprintf(stderr,
               "FdClosureIndex: const lookup of attribute %u missed the "
               "frozen memo (index not precomputed for this arity?)\n",
               attr);
  std::abort();
}

}  // namespace

const std::vector<AttrSet>& FdClosureIndex::Minimal(uint32_t arity,
                                                    uint32_t attr) const {
  auto it = det_memo_.find(attr | (arity << 8) | (1u << 16));
  if (it == det_memo_.end()) MissingPrecomputedEntry(attr);
  return it->second;
}

const std::vector<AttrSet>& FdClosureIndex::Declared(uint32_t attr) const {
  auto it = det_memo_.find(attr);
  if (it == det_memo_.end()) MissingPrecomputedEntry(attr);
  return it->second;
}

bool FdClosureIndex::Redundant(size_t index) {
  if (redundant_memo_.size() < fds_.size()) {
    redundant_memo_.resize(fds_.size(), -1);
  }
  int8_t& slot = redundant_memo_[index];
  if (slot < 0) slot = IsRedundant(fds_, index) ? 1 : 0;
  return slot == 1;
}

bool FdClosureIndex::Redundant(size_t index) const {
  if (index >= redundant_memo_.size() || redundant_memo_[index] < 0) {
    MissingPrecomputedEntry(static_cast<uint32_t>(index));
  }
  return redundant_memo_[index] == 1;
}

void FdClosureIndex::Precompute(uint32_t arity, bool include_minimal) {
  for (uint32_t k = 0; k < arity; ++k) {
    Declared(k);
    if (include_minimal) Minimal(arity, k);
  }
  for (size_t i = 0; i < fds_.size(); ++i) Redundant(i);
  frozen_ = true;
}

std::shared_ptr<const FdClosureIndex> FdClosureCache::For(
    const std::vector<FiniteDependency>& fds, uint32_t arity,
    bool include_minimal) {
  uint64_t key = CombineHash(FdSetHash(fds), arity);
  key = CombineHash(key, include_minimal ? 1 : 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  // Build (and run the 2^arity enumeration) outside the lock; two
  // racing builders produce identical frozen indexes and emplace keeps
  // whichever lands first.
  auto index = std::make_shared<FdClosureIndex>(fds);
  index->Precompute(arity, include_minimal);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      memo_.emplace(key, std::shared_ptr<const FdClosureIndex>(index));
  (void)inserted;
  return it->second;
}

FdClosureCache::Stats FdClosureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t FdClosureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

}  // namespace hornsafe
