#include "fd/fd.h"

#include <algorithm>
#include <cstddef>

namespace hornsafe {

AttrSet AttrClosure(AttrSet attrs, const std::vector<FiniteDependency>& fds) {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FiniteDependency& fd : fds) {
      if (fd.lhs.SubsetOf(closure) && !fd.rhs.SubsetOf(closure)) {
        closure = closure.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<FiniteDependency>& fds, AttrSet lhs,
             AttrSet rhs) {
  return rhs.SubsetOf(AttrClosure(lhs, fds));
}

bool IsRedundant(const std::vector<FiniteDependency>& fds, size_t index) {
  std::vector<FiniteDependency> rest;
  rest.reserve(fds.size() - 1);
  for (size_t i = 0; i < fds.size(); ++i) {
    if (i != index) rest.push_back(fds[i]);
  }
  return Implies(rest, fds[index].lhs, fds[index].rhs);
}

std::vector<FiniteDependency> MinimalCover(std::vector<FiniteDependency> fds) {
  // 1. Split right-hand sides into single attributes.
  std::vector<FiniteDependency> split;
  for (const FiniteDependency& fd : fds) {
    for (uint32_t a : fd.rhs.ToVector()) {
      split.push_back(FiniteDependency{fd.pred, fd.lhs, AttrSet::Single(a)});
    }
  }
  // 2. Remove extraneous left-hand-side attributes.
  for (FiniteDependency& fd : split) {
    for (uint32_t a : fd.lhs.ToVector()) {
      AttrSet smaller = fd.lhs;
      smaller.Remove(a);
      if (Implies(split, smaller, fd.rhs)) fd.lhs = smaller;
    }
  }
  // 3. Remove redundant dependencies (re-checking after each removal).
  for (size_t i = 0; i < split.size();) {
    if (IsRedundant(split, i)) {
      split.erase(split.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  // 4. Drop trivial dependencies (rhs ⊆ lhs).
  split.erase(std::remove_if(split.begin(), split.end(),
                             [](const FiniteDependency& fd) {
                               return fd.rhs.SubsetOf(fd.lhs);
                             }),
              split.end());
  return split;
}

std::vector<AttrSet> MinimalDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t arity, uint32_t attr) {
  std::vector<AttrSet> minimal;
  AttrSet others = AttrSet::AllBelow(arity);
  others.Remove(attr);
  std::vector<uint32_t> other_list = others.ToVector();
  uint64_t limit = uint64_t{1} << other_list.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    AttrSet candidate;
    for (size_t i = 0; i < other_list.size(); ++i) {
      if ((mask >> i) & 1) candidate.Add(other_list[i]);
    }
    if (!AttrClosure(candidate, fds).Contains(attr)) continue;
    bool dominated = false;
    for (const AttrSet& m : minimal) {
      if (m.SubsetOf(candidate)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Remove any supersets already collected (enumeration order is by
    // mask value, not cardinality, so supersets can precede subsets).
    minimal.erase(std::remove_if(minimal.begin(), minimal.end(),
                                 [&](const AttrSet& m) {
                                   return candidate.SubsetOf(m);
                                 }),
                  minimal.end());
    minimal.push_back(candidate);
  }
  return minimal;
}

std::vector<AttrSet> DeclaredDeterminants(
    const std::vector<FiniteDependency>& fds, uint32_t attr) {
  std::vector<AttrSet> out;
  for (const FiniteDependency& fd : fds) {
    if (fd.rhs.Contains(attr) && !fd.lhs.Contains(attr)) {
      if (std::find(out.begin(), out.end(), fd.lhs) == out.end()) {
        out.push_back(fd.lhs);
      }
    }
  }
  return out;
}

}  // namespace hornsafe
