#ifndef HORNSAFE_EVAL_ENGINE_H_
#define HORNSAFE_EVAL_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.h"
#include "eval/bottomup.h"
#include "eval/builtins.h"
#include "eval/topdown.h"
#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// Options for the safety-gated query engine.
struct EngineOptions {
  /// Refuse to evaluate queries the analyzer cannot prove safe. This is
  /// the paper's point: a complete Horn-clause language admits only
  /// provably safe queries. Disable to run with budget guards instead.
  bool enforce_safety = true;
  /// Evaluate bound queries with the magic-sets rewriting + semi-naive
  /// bottom-up instead of SLD resolution. Terminates on cyclic data and
  /// left recursion where untabled SLD loops; SLD remains the fallback.
  bool use_magic = false;
  AnalyzerOptions analyzer;
  BottomUpOptions bottom_up;
  TopDownOptions top_down;
  /// Failure-model context applied to the whole engine: forwarded into
  /// the analyzer, bottom-up and top-down options at Create (it wins
  /// over any exec set on the nested options when active). Replaceable
  /// per request with `Engine::set_exec`.
  ExecContext exec;
};

/// The deductive-database engine: parses/holds a program, registers
/// computable infinite relations (successor, plus, times, less, integer
/// by default), statically checks query safety with `SafetyAnalyzer`,
/// and evaluates safe queries bottom-up (all-free queries) or top-down
/// (bound queries, or when bottom-up cannot be ordered).
class Engine {
 public:
  /// Takes ownership of `program` and registers the standard builtins
  /// (declaring them infinite and attaching their FDs/monotonicity
  /// constraints).
  static Result<Engine> Create(Program program,
                               const EngineOptions& options = {});

  /// Registers an additional computable infinite relation.
  Status RegisterBuiltin(std::string_view name, uint32_t arity,
                         std::shared_ptr<InfiniteRelation> relation);

  Program& program() { return *program_; }
  const Program& program() const { return *program_; }

  /// Statically analyzes `query` (constants count as bound arguments).
  Result<QueryAnalysis> Analyze(const Literal& query);

  /// Outcome of one evaluated query.
  struct QueryResult {
    std::vector<Tuple> tuples;
    /// The analyzer's verdict for the query.
    Safety safety = Safety::kUndecided;
    /// "bottom-up", "magic", or "top-down".
    std::string strategy;
    /// Fixpoint statistics when a bottom-up evaluator ran (iterations,
    /// per-round timings, per-rule firings); default for top-down.
    BottomUpStats eval_stats;
  };

  /// Analyzes and evaluates `query`. With `enforce_safety`, queries not
  /// proved safe fail with UnsafeQuery and are never executed; without
  /// it, evaluation proceeds under the budget guards.
  Result<QueryResult> Query(const Literal& query);

  /// Convenience overload: parses `literal_text` (e.g.
  /// "ancestor(sem, Y, J)") against the engine's program.
  Result<QueryResult> Query(std::string_view literal_text);

  /// Installs the failure-model context for subsequent analyses and
  /// evaluations (the per-request deadline/cancellation of a long-lived
  /// server). Call between queries only.
  void set_exec(const ExecContext& exec);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

 private:
  Engine() = default;

  Result<SafetyAnalyzer*> GetAnalyzer();

  /// Holds the program at a stable address (the analyzer and evaluators
  /// reference it).
  std::unique_ptr<Program> program_;
  EngineOptions options_;
  BuiltinRegistry builtins_;
  /// Lazily built, invalidated when constraints change.
  std::unique_ptr<SafetyAnalyzer> analyzer_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_ENGINE_H_
