#include "eval/builtins.h"

#include "util/strings.h"

namespace hornsafe {

namespace {

bool IsBound(const Tuple& partial, uint32_t k) {
  return partial[k] != kInvalidTerm;
}

/// Reads an integer payload; false if the term is not an integer.
bool GetInt(const Program& p, TermId t, int64_t* out) {
  const TermData& d = p.terms().Get(t);
  if (d.kind != TermKind::kInt) return false;
  *out = d.int_value;
  return true;
}

class SuccessorRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return !bound.Empty();
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    int64_t i = 0, j = 0;
    bool bi = IsBound(partial, 0) && GetInt(*program, partial[0], &i);
    bool bj = IsBound(partial, 1) && GetInt(*program, partial[1], &j);
    if (IsBound(partial, 0) && !bi) return Status::Ok();  // non-integer
    if (IsBound(partial, 1) && !bj) return Status::Ok();
    if (bi && bj) {
      if (j == i + 1) out->push_back(partial);
      return Status::Ok();
    }
    if (bi) {
      out->push_back({partial[0], program->Int(i + 1)});
      return Status::Ok();
    }
    if (bj) {
      out->push_back({program->Int(j - 1), partial[1]});
      return Status::Ok();
    }
    return Status::UnsafeQuery("successor/2 requires a bound argument");
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    return {{pred, AttrSet::Single(0), AttrSet::Single(1)},
            {pred, AttrSet::Single(1), AttrSet::Single(0)}};
  }

  std::vector<MonotonicityConstraint> Monos(PredicateId pred) const override {
    return {{pred, MonoKind::kAttrGreaterAttr, 1, 0, 0}};
  }
};

class PlusRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return bound.Count() >= 2;
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    int64_t v[3] = {0, 0, 0};
    int free_pos = -1;
    for (int k = 0; k < 3; ++k) {
      if (!IsBound(partial, k)) {
        if (free_pos >= 0) {
          return Status::UnsafeQuery("plus/3 requires two bound arguments");
        }
        free_pos = k;
      } else if (!GetInt(*program, partial[k], &v[k])) {
        return Status::Ok();  // non-integer: no match
      }
    }
    if (free_pos == -1) {
      if (v[0] + v[1] == v[2]) out->push_back(partial);
      return Status::Ok();
    }
    Tuple t = partial;
    switch (free_pos) {
      case 0: t[0] = program->Int(v[2] - v[1]); break;
      case 1: t[1] = program->Int(v[2] - v[0]); break;
      default: t[2] = program->Int(v[0] + v[1]); break;
    }
    out->push_back(std::move(t));
    return Status::Ok();
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    return {{pred, AttrSet::Of({0, 1}), AttrSet::Single(2)},
            {pred, AttrSet::Of({0, 2}), AttrSet::Single(1)},
            {pred, AttrSet::Of({1, 2}), AttrSet::Single(0)}};
  }
};

class TimesRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return bound.Count() >= 2;
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    int64_t v[3] = {0, 0, 0};
    int free_pos = -1;
    for (int k = 0; k < 3; ++k) {
      if (!IsBound(partial, k)) {
        if (free_pos >= 0) {
          return Status::UnsafeQuery("times/3 requires two bound arguments");
        }
        free_pos = k;
      } else if (!GetInt(*program, partial[k], &v[k])) {
        return Status::Ok();
      }
    }
    if (free_pos == -1) {
      if (v[0] * v[1] == v[2]) out->push_back(partial);
      return Status::Ok();
    }
    Tuple t = partial;
    if (free_pos == 2) {
      t[2] = program->Int(v[0] * v[1]);
      out->push_back(std::move(t));
      return Status::Ok();
    }
    // Inverse direction: divide, when defined. X * 0 = Z has infinitely
    // many X for Z == 0; refuse that case.
    int64_t divisor = (free_pos == 0) ? v[1] : v[0];
    int64_t product = v[2];
    if (divisor == 0) {
      if (product == 0) {
        return Status::UnsafeQuery(
            "times/3: quotient of 0/0 has infinitely many solutions");
      }
      return Status::Ok();  // 0 * X = nonzero: no solution
    }
    if (product % divisor != 0) return Status::Ok();
    t[free_pos] = program->Int(product / divisor);
    out->push_back(std::move(t));
    return Status::Ok();
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    // Only the forward direction holds unconditionally as a finiteness
    // dependency ({1,3} does not determine 2 when both are 0 — still
    // *finitely* many? no: 0*Y=0 for every Y). Hence only {1,2} -> 3.
    return {{pred, AttrSet::Of({0, 1}), AttrSet::Single(2)}};
  }
};

class LessRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return bound.Count() == 2;
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    if (!IsBound(partial, 0) || !IsBound(partial, 1)) {
      return Status::UnsafeQuery("less/2 is a test: both arguments bound");
    }
    int64_t x = 0, y = 0;
    if (!GetInt(*program, partial[0], &x) ||
        !GetInt(*program, partial[1], &y)) {
      return Status::Ok();
    }
    if (x < y) out->push_back(partial);
    return Status::Ok();
  }

  std::vector<MonotonicityConstraint> Monos(PredicateId pred) const override {
    return {{pred, MonoKind::kAttrGreaterAttr, 1, 0, 0}};
  }
};

class IntegerRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return bound.Count() == 1;
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    if (!IsBound(partial, 0)) {
      return Status::UnsafeQuery("integer/1 is a membership test");
    }
    int64_t v = 0;
    if (GetInt(*program, partial[0], &v)) out->push_back(partial);
    return Status::Ok();
  }
};

class BetweenRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    // Both ends bound -> finite enumeration; X bound -> membership (the
    // ends then only need testing if bound too, so any superset works).
    return AttrSet::Of({0, 1}).SubsetOf(bound) || bound.Contains(2);
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    int64_t lo = 0, hi = 0, x = 0;
    bool blo = IsBound(partial, 0), bhi = IsBound(partial, 1),
         bx = IsBound(partial, 2);
    if (blo && !GetInt(*program, partial[0], &lo)) return Status::Ok();
    if (bhi && !GetInt(*program, partial[1], &hi)) return Status::Ok();
    if (bx && !GetInt(*program, partial[2], &x)) return Status::Ok();
    if (bx) {
      // Membership/projection with X known: the ends are only testable.
      if ((blo && lo > x) || (bhi && hi < x)) return Status::Ok();
      if (blo && bhi) {
        out->push_back(partial);
        return Status::Ok();
      }
      return Status::UnsafeQuery(
          "between/3 with free range ends has infinitely many matches");
    }
    if (!blo || !bhi) {
      return Status::UnsafeQuery(
          "between/3 requires both ends (or the value) bound");
    }
    static constexpr int64_t kMaxRange = 1'000'000;
    if (hi - lo > kMaxRange) {
      return Status::BudgetExhausted(
          StrCat("between/3 range wider than ", kMaxRange));
    }
    for (int64_t v = lo; v <= hi; ++v) {
      out->push_back({partial[0], partial[1], program->Int(v)});
    }
    return Status::Ok();
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    return {{pred, AttrSet::Of({0, 1}), AttrSet::Single(2)}};
  }
};

class AbsRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return !bound.Empty();
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    int64_t x = 0, y = 0;
    bool bx = IsBound(partial, 0) && GetInt(*program, partial[0], &x);
    bool by = IsBound(partial, 1) && GetInt(*program, partial[1], &y);
    if (IsBound(partial, 0) && !bx) return Status::Ok();
    if (IsBound(partial, 1) && !by) return Status::Ok();
    if (bx) {
      int64_t a = x < 0 ? -x : x;
      if (by) {
        if (y == a) out->push_back(partial);
      } else {
        out->push_back({partial[0], program->Int(a)});
      }
      return Status::Ok();
    }
    if (by) {
      if (y < 0) return Status::Ok();
      out->push_back({program->Int(y), partial[1]});
      if (y != 0) out->push_back({program->Int(-y), partial[1]});
      return Status::Ok();
    }
    return Status::UnsafeQuery("abs/2 requires a bound argument");
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    return {{pred, AttrSet::Single(0), AttrSet::Single(1)},
            {pred, AttrSet::Single(1), AttrSet::Single(0)}};
  }
};

class ModRelation : public InfiniteRelation {
 public:
  bool SupportsBinding(AttrSet bound) const override {
    return AttrSet::Of({0, 1}).SubsetOf(bound);
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    int64_t x = 0, m = 0, r = 0;
    if (!IsBound(partial, 0) || !IsBound(partial, 1)) {
      return Status::UnsafeQuery("mod/3 requires dividend and modulus");
    }
    if (!GetInt(*program, partial[0], &x) ||
        !GetInt(*program, partial[1], &m)) {
      return Status::Ok();
    }
    if (m <= 0) return Status::Ok();
    int64_t result = ((x % m) + m) % m;  // canonical non-negative residue
    if (IsBound(partial, 2)) {
      if (GetInt(*program, partial[2], &r) && r == result) {
        out->push_back(partial);
      }
      return Status::Ok();
    }
    out->push_back({partial[0], partial[1], program->Int(result)});
    return Status::Ok();
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    return {{pred, AttrSet::Of({0, 1}), AttrSet::Single(2)}};
  }
};

class ConstructorRelation : public InfiniteRelation {
 public:
  ConstructorRelation(SymbolId symbol, uint32_t k)
      : symbol_(symbol), k_(k) {}

  bool SupportsBinding(AttrSet bound) const override {
    // All constructor arguments bound, or the constructed term bound.
    return AttrSet::AllBelow(k_).SubsetOf(bound) || bound.Contains(k_);
  }

  Status Enumerate(Program* program, const Tuple& partial,
                   std::vector<Tuple>* out) const override {
    if (IsBound(partial, k_)) {
      // Destructure.
      const TermData& d = program->terms().Get(partial[k_]);
      if (d.kind != TermKind::kFunction || d.symbol != symbol_ ||
          d.args.size() != k_) {
        return Status::Ok();
      }
      Tuple t = partial;
      for (uint32_t i = 0; i < k_; ++i) {
        if (IsBound(partial, i)) {
          if (partial[i] != d.args[i]) return Status::Ok();
        } else {
          t[i] = d.args[i];
        }
      }
      out->push_back(std::move(t));
      return Status::Ok();
    }
    // Construct.
    std::vector<TermId> args;
    for (uint32_t i = 0; i < k_; ++i) {
      if (!IsBound(partial, i)) {
        return Status::UnsafeQuery(
            "constructor relation needs all arguments or the result bound");
      }
      args.push_back(partial[i]);
    }
    Tuple t = partial;
    t[k_] = program->terms().MakeFunction(symbol_, std::move(args));
    out->push_back(std::move(t));
    return Status::Ok();
  }

  std::vector<FiniteDependency> Fds(PredicateId pred) const override {
    return {{pred, AttrSet::AllBelow(k_), AttrSet::Single(k_)},
            {pred, AttrSet::Single(k_), AttrSet::AllBelow(k_)}};
  }

 private:
  SymbolId symbol_;
  uint32_t k_;
};

}  // namespace

Status BuiltinRegistry::Register(Program* program, std::string_view name,
                                 uint32_t arity,
                                 std::shared_ptr<InfiniteRelation> relation) {
  PredicateId pred = program->InternPredicate(name, arity);
  if (!program->IsInfiniteBase(pred)) {
    HORNSAFE_RETURN_IF_ERROR(program->DeclareInfinite(pred));
  }
  for (const FiniteDependency& fd : relation->Fds(pred)) {
    // Skip duplicates when re-registering into a program that already
    // declares them.
    bool present = false;
    for (const FiniteDependency& existing : program->FdsFor(pred)) {
      if (existing == fd) present = true;
    }
    if (!present) HORNSAFE_RETURN_IF_ERROR(program->AddFiniteDependency(fd));
  }
  for (const MonotonicityConstraint& mc : relation->Monos(pred)) {
    bool present = false;
    for (const MonotonicityConstraint& existing : program->MonosFor(pred)) {
      if (existing == mc) present = true;
    }
    if (!present) HORNSAFE_RETURN_IF_ERROR(program->AddMonotonicity(mc));
  }
  relations_[pred] = std::move(relation);
  return Status::Ok();
}

const InfiniteRelation* BuiltinRegistry::Find(PredicateId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

std::shared_ptr<InfiniteRelation> MakeSuccessorRelation() {
  return std::make_shared<SuccessorRelation>();
}
std::shared_ptr<InfiniteRelation> MakePlusRelation() {
  return std::make_shared<PlusRelation>();
}
std::shared_ptr<InfiniteRelation> MakeTimesRelation() {
  return std::make_shared<TimesRelation>();
}
std::shared_ptr<InfiniteRelation> MakeLessRelation() {
  return std::make_shared<LessRelation>();
}
std::shared_ptr<InfiniteRelation> MakeIntegerRelation() {
  return std::make_shared<IntegerRelation>();
}
std::shared_ptr<InfiniteRelation> MakeBetweenRelation() {
  return std::make_shared<BetweenRelation>();
}
std::shared_ptr<InfiniteRelation> MakeAbsRelation() {
  return std::make_shared<AbsRelation>();
}
std::shared_ptr<InfiniteRelation> MakeModRelation() {
  return std::make_shared<ModRelation>();
}
std::shared_ptr<InfiniteRelation> MakeConstructorRelation(SymbolId symbol,
                                                          uint32_t k) {
  return std::make_shared<ConstructorRelation>(symbol, k);
}

namespace {

struct StandardBuiltin {
  const char* name;
  uint32_t arity;
  std::shared_ptr<InfiniteRelation> (*make)();
};

const StandardBuiltin kStandardBuiltins[] = {
    {"successor", 2, MakeSuccessorRelation},
    {"plus", 3, MakePlusRelation},
    {"times", 3, MakeTimesRelation},
    {"less", 2, MakeLessRelation},
    {"integer", 1, MakeIntegerRelation},
    {"between", 3, MakeBetweenRelation},
    {"abs", 2, MakeAbsRelation},
    {"mod", 3, MakeModRelation},
};

}  // namespace

Status RegisterStandardBuiltins(Program* program, BuiltinRegistry* registry) {
  for (const StandardBuiltin& b : kStandardBuiltins) {
    HORNSAFE_RETURN_IF_ERROR(
        registry->Register(program, b.name, b.arity, b.make()));
  }
  return Status::Ok();
}

Status RegisterReferencedStandardBuiltins(Program* program,
                                          BuiltinRegistry* registry) {
  for (const StandardBuiltin& b : kStandardBuiltins) {
    if (program->FindPredicate(b.name, b.arity) == kInvalidPredicate) {
      continue;
    }
    HORNSAFE_RETURN_IF_ERROR(
        registry->Register(program, b.name, b.arity, b.make()));
  }
  return Status::Ok();
}

}  // namespace hornsafe
