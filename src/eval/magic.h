#ifndef HORNSAFE_EVAL_MAGIC_H_
#define HORNSAFE_EVAL_MAGIC_H_

#include <string>

#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// Output of the magic-sets transformation.
struct MagicProgram {
  /// The rewritten program: adorned copies of the derived predicates
  /// reachable from the query, guarded by magic predicates that
  /// propagate the query's bindings; EDB facts and constraints are
  /// shared with the original.
  Program program;
  /// The query against the adorned entry predicate.
  Literal query;
};

/// Magic-sets rewriting of `program` for `query` (ground arguments are
/// bound). Bottom-up evaluation of the result derives only tuples
/// relevant to the query — the classic bottom-up counterpart of
/// top-down resolution with sideways information passing, and unlike
/// untabled SLD it terminates on cyclic data whenever the relevant
/// tuple space is finite.
///
/// The construction is the textbook one, using this library's
/// adornment machinery: for each reachable (predicate, adornment) pair
/// an adorned copy `p__a` is produced whose rules are guarded by
/// `m_p__a(bound head arguments)`; each derived body occurrence, with
/// the adornment induced by a left-to-right sideways pass, contributes
/// a magic rule `m_q__a1(bound occurrence arguments) :- m_p__a(...),
/// <preceding body literals>`. The query seeds `m_q__a0` with its
/// ground arguments.
Result<MagicProgram> MagicTransform(const Program& program,
                                    const Literal& query);

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_MAGIC_H_
