#include "eval/magic.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/strings.h"

namespace hornsafe {

namespace {

using StateKey = std::pair<PredicateId, uint64_t>;

std::string AdornmentSuffix(uint64_t mask, uint32_t arity) {
  std::string s;
  for (uint32_t k = 0; k < arity; ++k) s += ((mask >> k) & 1) ? 'b' : 'f';
  return s;
}

class MagicRewriter {
 public:
  MagicRewriter(const Program& input, const Literal& query)
      : input_(input), input_query_(query) {
    out_.program = input;
  }

  Result<MagicProgram> Run() {
    Program& p = out_.program;
    // Drop the original rules and queries; EDB facts and constraints
    // stay. Adorned copies are regenerated below.
    original_rules_ = p.TakeRules();
    (void)p.TakeQueries();

    if (!input_.IsDerived(input_query_.pred)) {
      return Status::InvalidProgram(
          "magic transformation applies to queries on derived predicates");
    }

    // Query adornment: ground arguments are bound.
    uint64_t mask = 0;
    for (size_t k = 0; k < input_query_.args.size(); ++k) {
      if (p.terms().IsGround(input_query_.args[k])) {
        mask |= uint64_t{1} << k;
      }
    }
    StateKey root{input_query_.pred, mask};
    worklist_.push_back(root);
    seen_.insert(root);
    while (!worklist_.empty()) {
      StateKey state = worklist_.back();
      worklist_.pop_back();
      HORNSAFE_RETURN_IF_ERROR(ProcessState(state));
    }

    // Seed the query's magic predicate with its bound arguments.
    std::vector<TermId> seed;
    for (size_t k = 0; k < input_query_.args.size(); ++k) {
      if ((mask >> k) & 1) seed.push_back(input_query_.args[k]);
    }
    Literal seed_head{MagicPredicate(root), std::move(seed)};
    HORNSAFE_RETURN_IF_ERROR(p.AddRule(Rule{seed_head, {}}));

    out_.query = Literal{AdornedPredicate(root), input_query_.args};
    HORNSAFE_RETURN_IF_ERROR(p.AddQuery(out_.query));
    HORNSAFE_RETURN_IF_ERROR(p.Validate());
    return std::move(out_);
  }

 private:
  Program& p() { return out_.program; }

  uint32_t ArityOf(PredicateId pred) const {
    return input_.predicate(pred).arity;
  }

  /// Adorned copy `p__a` of a derived predicate.
  PredicateId AdornedPredicate(const StateKey& state) {
    auto it = adorned_preds_.find(state);
    if (it != adorned_preds_.end()) return it->second;
    uint32_t arity = ArityOf(state.first);
    SymbolId name = p().symbols().InternFresh(
        StrCat(input_.PredicateName(state.first), "__",
               AdornmentSuffix(state.second, arity)));
    PredicateId pred = p().InternPredicate(name, arity);
    adorned_preds_.emplace(state, pred);
    return pred;
  }

  /// Magic predicate `m_p__a` over the bound positions of `state`.
  PredicateId MagicPredicate(const StateKey& state) {
    auto it = magic_preds_.find(state);
    if (it != magic_preds_.end()) return it->second;
    uint32_t arity = ArityOf(state.first);
    uint32_t bound = static_cast<uint32_t>(
        __builtin_popcountll(state.second));
    SymbolId name = p().symbols().InternFresh(
        StrCat("m_", input_.PredicateName(state.first), "__",
               AdornmentSuffix(state.second, arity)));
    PredicateId pred = p().InternPredicate(name, bound);
    magic_preds_.emplace(state, pred);
    return pred;
  }

  void Enqueue(const StateKey& state) {
    if (seen_.insert(state).second) worklist_.push_back(state);
  }

  /// The terms at the bound positions of `lit` under `mask`.
  std::vector<TermId> BoundArgs(const Literal& lit, uint64_t mask) const {
    std::vector<TermId> out;
    for (size_t k = 0; k < lit.args.size(); ++k) {
      if ((mask >> k) & 1) out.push_back(lit.args[k]);
    }
    return out;
  }

  Status ProcessState(const StateKey& state) {
    for (const Rule& rule : original_rules_) {
      if (rule.head.pred != state.first) continue;
      HORNSAFE_RETURN_IF_ERROR(RewriteRule(state, rule));
    }
    return Status::Ok();
  }

  Status RewriteRule(const StateKey& state, const Rule& rule) {
    Program& prog = p();
    // Variables bound so far: those in bound head positions (constants
    // in the head are ground and need no tracking).
    std::set<TermId> bound_vars;
    for (size_t k = 0; k < rule.head.args.size(); ++k) {
      if ((state.second >> k) & 1) {
        std::vector<TermId> vars;
        prog.terms().CollectVariables(rule.head.args[k], &vars);
        bound_vars.insert(vars.begin(), vars.end());
      }
    }

    Literal magic_guard{MagicPredicate(state),
                        BoundArgs(rule.head, state.second)};
    std::vector<Literal> new_body = {magic_guard};

    // Left-to-right sideways pass over the body.
    for (const Literal& b : rule.body) {
      if (!input_.IsDerived(b.pred)) {
        // Base literal (finite or infinite): keep, bind its variables.
        new_body.push_back(b);
        for (TermId a : b.args) {
          std::vector<TermId> vars;
          prog.terms().CollectVariables(a, &vars);
          bound_vars.insert(vars.begin(), vars.end());
        }
        continue;
      }
      // Derived occurrence: its adornment is what the pass has bound.
      uint64_t occ_mask = 0;
      for (size_t k = 0; k < b.args.size(); ++k) {
        std::vector<TermId> vars;
        prog.terms().CollectVariables(b.args[k], &vars);
        bool all_bound = true;
        for (TermId v : vars) all_bound &= bound_vars.count(v) > 0;
        if (all_bound) occ_mask |= uint64_t{1} << k;
      }
      StateKey callee{b.pred, occ_mask};
      Enqueue(callee);
      // Magic rule: the callee's bound arguments are derivable from the
      // guard and the body prefix.
      Literal magic_head{MagicPredicate(callee),
                         BoundArgs(b, occ_mask)};
      HORNSAFE_RETURN_IF_ERROR(
          prog.AddRule(Rule{magic_head, new_body}));
      // Replace the occurrence by its adorned copy, then its outputs
      // are bound for the rest of the pass.
      new_body.push_back(Literal{AdornedPredicate(callee), b.args});
      for (TermId a : b.args) {
        std::vector<TermId> vars;
        prog.terms().CollectVariables(a, &vars);
        bound_vars.insert(vars.begin(), vars.end());
      }
    }

    Literal new_head{AdornedPredicate(state), rule.head.args};
    return prog.AddRule(Rule{new_head, std::move(new_body)});
  }

  const Program& input_;
  const Literal& input_query_;
  MagicProgram out_;
  std::vector<Rule> original_rules_;
  std::vector<StateKey> worklist_;
  std::set<StateKey> seen_;
  std::map<StateKey, PredicateId> adorned_preds_;
  std::map<StateKey, PredicateId> magic_preds_;
};

}  // namespace

Result<MagicProgram> MagicTransform(const Program& program,
                                    const Literal& query) {
  return MagicRewriter(program, query).Run();
}

}  // namespace hornsafe
