#ifndef HORNSAFE_EVAL_TOPDOWN_H_
#define HORNSAFE_EVAL_TOPDOWN_H_

#include <vector>

#include "eval/builtins.h"
#include "eval/relation.h"
#include "lang/program.h"
#include "lang/unify.h"
#include "util/deadline.h"
#include "util/status.h"

namespace hornsafe {

/// Options for top-down (SLD resolution) evaluation.
struct TopDownOptions {
  /// Abort with BudgetExhausted after this many resolution steps (the
  /// guard rail against non-terminating derivations: SLD has no tabling).
  uint64_t max_steps = 200'000;
  /// Maximum goal-stack depth. Left-recursive programs dive straight to
  /// this limit, and the goal list grows with depth, so keep it modest.
  size_t max_depth = 2'000;
  /// Stop after this many solutions (0 = unlimited).
  size_t max_solutions = 0;
  /// Wall-clock deadline / cancellation, checked every
  /// `ExecContext::kCheckInterval` resolution steps. Exceeding either
  /// aborts the search with kDeadlineExceeded / kCancelled (solutions
  /// found so far are discarded).
  ExecContext exec;
};

/// Statistics for one Solve call.
struct TopDownStats {
  uint64_t steps = 0;
  uint64_t rule_resolutions = 0;
};

/// Depth-first SLD resolution over Horn rules, EDB facts and computable
/// infinite relations.
///
/// Goal selection delays infinite-relation goals until their binding
/// pattern is supported (the paper's sideways information passing); a
/// state where only unsupported infinite goals remain *flounders* and
/// fails with UnsafeQuery. Bound structural recursion (e.g. Example 7's
/// `concat` with a bound first list) terminates; unbounded recursion is
/// caught by the step budget.
class TopDownEvaluator {
 public:
  /// `program` and `builtins` must outlive the evaluator. `program` is
  /// mutated only by interning fresh variables and computed terms.
  TopDownEvaluator(Program* program, const BuiltinRegistry* builtins,
                   const TopDownOptions& options = {});

  /// Proves `query`, returning the distinct ground(ed) argument tuples
  /// of the solutions, in discovery order.
  Result<std::vector<Tuple>> Solve(const Literal& query);

  const TopDownStats& stats() const { return stats_; }

 private:
  Status SolveGoals(std::vector<Literal> goals, Substitution* subst,
                    size_t depth, const Literal& query,
                    std::vector<Tuple>* out, Relation* seen);

  /// Clones `rule` with fresh variables.
  Rule RenameRule(const Rule& rule);

  Program* program_;
  const BuiltinRegistry* builtins_;
  TopDownOptions options_;
  TopDownStats stats_;
  std::vector<std::vector<const Literal*>> facts_by_pred_;
  std::vector<std::vector<const Rule*>> rules_by_pred_;
  uint64_t rename_counter_ = 0;
  bool enough_ = false;
};

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_TOPDOWN_H_
