#include "eval/bottomup.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <unordered_set>

#include "lang/unify.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

/// Collects the variables of `lit` that are unbound under `subst`.
bool ArgGroundUnderSubst(TermPool& pool, const Substitution& subst,
                         TermId arg) {
  TermId applied = ApplySubstitution(pool, subst, arg);
  return pool.IsGround(applied);
}

/// Shards below this size are not worth a task dispatch.
constexpr uint32_t kMinShardTuples = 32;
/// Oversubscription factor: shards per worker, so that fast shards do
/// not leave workers idle behind one slow shard.
constexpr uint32_t kShardsPerJob = 4;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

BottomUpEvaluator::BottomUpEvaluator(Program* program,
                                     const BuiltinRegistry* builtins,
                                     const BottomUpOptions& options)
    : program_(program), builtins_(builtins), options_(options) {
  full_.resize(program_->num_predicates());
  delta_.resize(program_->num_predicates());
  facts_rel_.resize(program_->num_predicates());
  for (const Literal& f : program_->facts()) {
    facts_rel_[f.pred].Insert(f.args);
  }
}

Result<std::vector<size_t>> BottomUpEvaluator::PlanRule(
    const Rule& rule) const {
  std::vector<size_t> order;
  std::vector<bool> placed(rule.body.size(), false);
  std::unordered_set<TermId> bound_vars;
  auto vars_bound = [&](TermId arg) {
    std::vector<TermId> vars;
    program_->terms().CollectVariables(arg, &vars);
    for (TermId v : vars) {
      if (bound_vars.find(v) == bound_vars.end()) return false;
    }
    return true;
  };
  auto bind_literal_vars = [&](const Literal& lit) {
    std::vector<TermId> vars;
    for (TermId a : lit.args) {
      vars.clear();
      program_->terms().CollectVariables(a, &vars);
      bound_vars.insert(vars.begin(), vars.end());
    }
  };

  while (order.size() < rule.body.size()) {
    bool progress = false;
    // Finite base and derived literals can always be scanned.
    for (size_t i = 0; i < rule.body.size() && !progress; ++i) {
      if (placed[i]) continue;
      PredicateId pred = rule.body[i].pred;
      if (!program_->IsInfiniteBase(pred)) {
        order.push_back(i);
        placed[i] = true;
        bind_literal_vars(rule.body[i]);
        progress = true;
      }
    }
    if (progress) continue;
    // Otherwise an infinite occurrence with a supported binding pattern.
    bool saw_unregistered = false;
    for (size_t i = 0; i < rule.body.size() && !progress; ++i) {
      if (placed[i]) continue;
      const Literal& lit = rule.body[i];
      const InfiniteRelation* rel = builtins_->Find(lit.pred);
      if (rel == nullptr) {
        saw_unregistered = true;
        continue;
      }
      AttrSet bound;
      for (uint32_t k = 0; k < lit.args.size(); ++k) {
        if (vars_bound(lit.args[k])) bound.Add(k);
      }
      if (rel->SupportsBinding(bound)) {
        order.push_back(i);
        placed[i] = true;
        bind_literal_vars(lit);
        progress = true;
      }
    }
    if (!progress) {
      if (saw_unregistered) {
        return Status::Unsupported(
            StrCat("no generator registered for an infinite predicate in "
                   "rule ",
                   program_->ToString(rule)));
      }
      return Status::UnsafeQuery(
          StrCat("no sideways-information-passing order evaluates rule ",
                 program_->ToString(rule),
                 " bottom-up: an infinite relation is accessed with an "
                 "unsupported binding pattern"));
    }
  }
  return order;
}

bool BottomUpEvaluator::RuleIsParallelSafe(const Rule& rule) const {
  const TermPool& terms = program_->terms();
  // A non-ground function argument can intern a new term when the
  // substitution instantiates it (ApplySubstitution rebuilds the
  // node); ground terms and plain variables only walk existing ids.
  auto arg_ok = [&](TermId a) {
    return !terms.IsFunction(a) || terms.IsGround(a);
  };
  for (TermId a : rule.head.args) {
    if (!arg_ok(a)) return false;
  }
  for (const Literal& lit : rule.body) {
    // Infinite builtins intern their computed outputs.
    if (!program_->IsFiniteBase(lit.pred) && !program_->IsDerived(lit.pred)) {
      return false;
    }
    for (TermId a : lit.args) {
      if (!arg_ok(a)) return false;
    }
  }
  return true;
}

Status BottomUpEvaluator::EmitHead(const Rule& rule, uint32_t rule_index,
                                   Substitution* subst, EvalContext* ctx) {
  ++ctx->firings;
  Tuple head;
  head.reserve(rule.head.args.size());
  for (TermId a : rule.head.args) {
    TermId g = ApplySubstitution(program_->terms(), *subst, a);
    if (!program_->terms().IsGround(g)) {
      return Status::UnsafeQuery(
          StrCat("rule ", program_->ToString(rule),
                 " derives a non-ground head (range-unrestricted "
                 "variable)"));
    }
    head.push_back(g);
  }
  if (!full_[rule.head.pred].Contains(head)) {
    if (options_.track_provenance) {
      provenance_.emplace(FactRef{rule.head.pred, head},
                          ProvenanceEntry{rule_index, trail_});
    }
    ctx->out.push_back(Derivation{rule.head.pred, std::move(head)});
  }
  return Status::Ok();
}

const Relation* BottomUpEvaluator::RelationAtStep(
    const Rule& rule, const std::vector<size_t>& order, int delta_index,
    size_t step) const {
  PredicateId pred = rule.body[order[step]].pred;
  if (program_->IsFiniteBase(pred)) return &facts_rel_[pred];
  if (program_->IsDerived(pred)) {
    return static_cast<int>(step) == delta_index ? &delta_[pred]
                                                 : &full_[pred];
  }
  return nullptr;  // infinite builtin
}

Status BottomUpEvaluator::JoinFrom(const Rule& rule, uint32_t rule_index,
                                   const std::vector<size_t>& order,
                                   size_t step, Substitution* subst,
                                   EvalContext* ctx) {
  if (step == order.size()) {
    return EmitHead(rule, rule_index, subst, ctx);
  }
  const Literal& lit = rule.body[order[step]];
  PredicateId pred = lit.pred;

  auto try_tuple = [&](TupleView tuple) -> Status {
    Substitution saved = *subst;
    bool ok = true;
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (!Unify(program_->terms(), lit.args[k], tuple[k], subst)) {
        ok = false;
        break;
      }
    }
    Status st;
    if (ok) {
      if (options_.track_provenance) {
        trail_.push_back(FactRef{pred, tuple.ToTuple()});
      }
      st = JoinFrom(rule, rule_index, order, step + 1, subst, ctx);
      if (options_.track_provenance) trail_.pop_back();
    }
    *subst = std::move(saved);
    return st;
  };

  if (const Relation* rel = RelationAtStep(rule, order, ctx->delta_index,
                                           step)) {
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(-1);
    if (static_cast<int>(step) == ctx->shard_step) {
      lo = ctx->shard_begin;
      hi = ctx->shard_end;
    }
    return ForEachCandidate(*rel, lit, *subst, lo, hi, try_tuple);
  }
  // Infinite builtin.
  const InfiniteRelation* rel = builtins_->Find(pred);
  if (rel == nullptr) {
    return Status::Unsupported(
        StrCat("no generator for '", program_->PredicateName(pred), "'"));
  }
  Tuple partial(lit.args.size(), kInvalidTerm);
  for (size_t k = 0; k < lit.args.size(); ++k) {
    if (ArgGroundUnderSubst(program_->terms(), *subst, lit.args[k])) {
      partial[k] = ApplySubstitution(program_->terms(), *subst, lit.args[k]);
    }
  }
  std::vector<Tuple> matches;
  HORNSAFE_RETURN_IF_ERROR(rel->Enumerate(program_, partial, &matches));
  for (const Tuple& t : matches) {
    HORNSAFE_RETURN_IF_ERROR(try_tuple(t));
  }
  return Status::Ok();
}

template <typename Fn>
Status BottomUpEvaluator::ForEachCandidate(const Relation& rel,
                                           const Literal& lit,
                                           const Substitution& subst,
                                           uint32_t range_begin,
                                           uint32_t range_end,
                                           Fn try_tuple) {
  if (options_.use_index) {
    // Hash-consing makes ground-term equality id equality, so an index
    // probe on any ground column is exact; pick the most selective one
    // (smallest posting list) to minimise candidates.
    int best_col = -1;
    size_t best_count = 0;
    TermId best_value = kInvalidTerm;
    for (uint32_t k = 0; k < lit.args.size(); ++k) {
      TermId applied = ApplySubstitution(program_->terms(), subst,
                                         lit.args[k]);
      if (!program_->terms().IsGround(applied)) continue;
      size_t count = rel.ProbeCount(k, applied);
      if (count == 0) return Status::Ok();  // no tuple can match
      if (best_col < 0 || count < best_count) {
        best_col = static_cast<int>(k);
        best_count = count;
        best_value = applied;
      }
    }
    if (best_col >= 0) {
      const Relation::PostingList& ids =
          rel.Probe(static_cast<uint32_t>(best_col), best_value);
      // Posting lists are ascending, so a shard is a subrange.
      auto it = std::lower_bound(ids.begin(), ids.end(), range_begin);
      for (; it != ids.end() && *it < range_end; ++it) {
        HORNSAFE_RETURN_IF_ERROR(try_tuple(rel.At(*it)));
      }
      return Status::Ok();
    }
  }
  uint32_t hi = std::min<uint32_t>(range_end,
                                   static_cast<uint32_t>(rel.size()));
  for (uint32_t id = range_begin; id < hi; ++id) {
    HORNSAFE_RETURN_IF_ERROR(try_tuple(rel.At(id)));
  }
  return Status::Ok();
}

Status BottomUpEvaluator::EvalRule(const Rule& rule, uint32_t rule_index,
                                   const std::vector<size_t>& order,
                                   EvalContext* ctx) {
  Substitution subst;
  return JoinFrom(rule, rule_index, order, 0, &subst, ctx);
}

void BottomUpEvaluator::AppendWorkItems(uint32_t rule_index,
                                        const std::vector<size_t>& order,
                                        bool use_delta,
                                        std::vector<WorkItem>* items) const {
  const Rule& rule = program_->rules()[rule_index];
  auto add = [&](int delta_index, int shard_step) {
    WorkItem base;
    base.rule = rule_index;
    base.delta_index = delta_index;
    const Relation* rel =
        shard_step >= 0
            ? RelationAtStep(rule, order, delta_index,
                             static_cast<size_t>(shard_step))
            : nullptr;
    uint32_t nshards = 1;
    if (jobs_ > 1 && rel != nullptr) {
      uint32_t n = static_cast<uint32_t>(rel->size());
      if (n >= 2 * kMinShardTuples) {
        nshards = std::min<uint32_t>(
            static_cast<uint32_t>(jobs_) * kShardsPerJob,
            n / kMinShardTuples);
      }
      if (nshards > 1) {
        // Even split by dense tuple id; concatenating the shards in
        // order reproduces the serial enumeration exactly.
        for (uint32_t s = 0; s < nshards; ++s) {
          WorkItem item = base;
          item.shard_step = shard_step;
          item.shard_begin =
              static_cast<uint32_t>(uint64_t{n} * s / nshards);
          item.shard_end =
              static_cast<uint32_t>(uint64_t{n} * (s + 1) / nshards);
          items->push_back(item);
        }
        return;
      }
    }
    items->push_back(base);
  };

  if (!use_delta) {
    add(-1, order.empty() ? -1 : 0);
    return;
  }
  // One evaluation per derived occurrence, reading (and sharding) the
  // delta there.
  for (size_t s = 0; s < order.size(); ++s) {
    if (!program_->IsDerived(rule.body[order[s]].pred)) continue;
    add(static_cast<int>(s), static_cast<int>(s));
  }
}

Status BottomUpEvaluator::RunRound(
    const std::vector<std::vector<size_t>>& plans,
    const std::vector<bool>& parallel_safe,
    const std::vector<WorkItem>& items, std::vector<Derivation>* fresh) {
  std::vector<EvalContext> ctxs(items.size());
  std::vector<Status> statuses(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ctxs[i].delta_index = items[i].delta_index;
    ctxs[i].shard_step = items[i].shard_step;
    ctxs[i].shard_begin = items[i].shard_begin;
    ctxs[i].shard_end = items[i].shard_end;
  }

  auto eval_item = [&](size_t i) {
    const WorkItem& item = items[i];
    statuses[i] = EvalRule(program_->rules()[item.rule], item.rule,
                           plans[item.rule], &ctxs[i]);
  };

  if (pool_ != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      if (!parallel_safe[items[i].rule]) continue;
      ++stats_.parallel_tasks;
      futures.push_back(pool_->Submit([&eval_item, i] { eval_item(i); }));
    }
    for (std::future<void>& f : futures) f.get();
    // Rules that may intern terms run here, after the workers are
    // done, so the term pool only ever has one writer at a time.
    for (size_t i = 0; i < items.size(); ++i) {
      if (parallel_safe[items[i].rule]) continue;
      ++stats_.serial_tasks;
      eval_item(i);
    }
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      ++stats_.serial_tasks;
      eval_item(i);
    }
  }

  for (const Status& st : statuses) {
    HORNSAFE_RETURN_IF_ERROR(st);
  }
  // Merge in item order: the concatenation is byte-identical to the
  // serial evaluation, so downstream insertion order (and therefore
  // dense tuple ids, iteration counts, and query output) never depends
  // on the job count.
  for (size_t i = 0; i < items.size(); ++i) {
    stats_.rule_firings += ctxs[i].firings;
    stats_.firings_per_rule[items[i].rule] += ctxs[i].firings;
    fresh->insert(fresh->end(),
                  std::make_move_iterator(ctxs[i].out.begin()),
                  std::make_move_iterator(ctxs[i].out.end()));
  }
  return Status::Ok();
}

Status BottomUpEvaluator::Run() {
  ran_ = true;
  const std::vector<Rule>& rules = program_->rules();
  // Plan every rule once.
  std::vector<std::vector<size_t>> plans;
  plans.reserve(rules.size());
  for (const Rule& rule : rules) {
    HORNSAFE_ASSIGN_OR_RETURN(std::vector<size_t> plan, PlanRule(rule));
    plans.push_back(std::move(plan));
  }
  std::vector<bool> parallel_safe(rules.size(), false);
  for (size_t r = 0; r < rules.size(); ++r) {
    parallel_safe[r] = RuleIsParallelSafe(rules[r]);
  }

  jobs_ = options_.track_provenance ? 1 : options_.jobs;
  if (jobs_ <= 0) jobs_ = static_cast<int>(ThreadPool::DefaultThreads());
  bool any_parallel =
      std::any_of(parallel_safe.begin(), parallel_safe.end(),
                  [](bool b) { return b; });
  if (jobs_ > 1 && any_parallel && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(jobs_));
  }
  if (!any_parallel) jobs_ = 1;

  stats_.firings_per_rule.assign(rules.size(), 0);

  // Round 0: all rules against the (initially empty) full relations.
  std::vector<Derivation> fresh;
  {
    auto start = std::chrono::steady_clock::now();
    std::vector<WorkItem> items;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      AppendWorkItems(r, plans[r], /*use_delta=*/false, &items);
    }
    HORNSAFE_RETURN_IF_ERROR(RunRound(plans, parallel_safe, items, &fresh));
    stats_.round_seconds.push_back(SecondsSince(start));
  }

  while (true) {
    auto start = std::chrono::steady_clock::now();
    ++stats_.iterations;
    if (stats_.iterations > options_.max_iterations) {
      return Status::BudgetExhausted(
          StrCat("fixpoint not reached after ", options_.max_iterations,
                 " iterations"));
    }
    HORNSAFE_RETURN_IF_ERROR(options_.exec.Check("bottom-up evaluation"));
    // Install fresh tuples as the next delta.
    for (Relation& d : delta_) d.clear();
    bool any = false;
    for (const Derivation& d : fresh) {
      if (full_[d.pred].Insert(d.tuple)) {
        delta_[d.pred].Insert(d.tuple);
        any = true;
        if (++stats_.tuples_derived > options_.max_tuples) {
          return Status::BudgetExhausted(
              StrCat("more than ", options_.max_tuples,
                     " tuples derived; the query may be unsafe"));
        }
        if (options_.exec.active() &&
            (stats_.tuples_derived &
             (ExecContext::kCheckInterval - 1)) == 0) {
          HORNSAFE_RETURN_IF_ERROR(
              options_.exec.Check("bottom-up evaluation"));
        }
      }
    }
    if (!any) {
      stats_.round_seconds.push_back(SecondsSince(start));
      break;
    }
    fresh.clear();

    std::vector<WorkItem> items;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      AppendWorkItems(r, plans[r], /*use_delta=*/options_.semi_naive,
                      &items);
    }
    HORNSAFE_RETURN_IF_ERROR(RunRound(plans, parallel_safe, items, &fresh));
    stats_.round_seconds.push_back(SecondsSince(start));
  }
  return Status::Ok();
}

const Relation& BottomUpEvaluator::RelationFor(PredicateId pred) const {
  return full_[pred];
}

void BottomUpEvaluator::AppendExplanation(PredicateId pred,
                                          const Tuple& tuple,
                                          const std::string& indent,
                                          bool last, std::string* out,
                                          int depth) const {
  std::string fact =
      program_->ToString(Literal{pred, tuple});
  *out += indent;
  if (depth > 0) *out += last ? "`- " : "|- ";
  *out += fact;
  auto it = provenance_.find(FactRef{pred, tuple});
  if (it == provenance_.end()) {
    if (program_->IsInfiniteBase(pred)) {
      *out += "  [computed]";
    } else if (program_->IsFiniteBase(pred)) {
      *out += "  [fact]";
    }
    *out += "\n";
    return;
  }
  const ProvenanceEntry& prov = it->second;
  *out += StrCat("  [rule: ",
                 program_->ToString(program_->rules()[prov.rule_index]),
                 "]\n");
  std::string child_indent =
      depth == 0 ? indent : indent + (last ? "   " : "|  ");
  for (size_t i = 0; i < prov.premises.size(); ++i) {
    AppendExplanation(prov.premises[i].pred, prov.premises[i].tuple,
                      child_indent, i + 1 == prov.premises.size(), out,
                      depth + 1);
  }
}

Result<std::string> BottomUpEvaluator::Explain(PredicateId pred,
                                               const Tuple& tuple) const {
  if (!options_.track_provenance) {
    return Status::Unsupported(
        "provenance tracking was not enabled (BottomUpOptions)");
  }
  if (!provenance_.count(FactRef{pred, tuple})) {
    if (program_->IsDerived(pred)) {
      return Status::NotFound(
          StrCat("no derivation recorded for ",
                 program_->ToString(Literal{pred, tuple})));
    }
  }
  std::string out;
  AppendExplanation(pred, tuple, "", true, &out, 0);
  return out;
}

Result<std::vector<Tuple>> BottomUpEvaluator::Query(const Literal& query) {
  if (!ran_) {
    return Status::Internal("call Run() before Query()");
  }
  std::vector<Tuple> out;
  auto match = [&](TupleView tuple) {
    Substitution subst;
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (!Unify(program_->terms(), query.args[k], tuple[k], &subst)) {
        return;
      }
    }
    out.push_back(tuple.ToTuple());
  };
  PredicateId pred = query.pred;
  if (program_->IsFiniteBase(pred)) {
    for (TupleView t : facts_rel_[pred]) match(t);
    return out;
  }
  if (program_->IsDerived(pred)) {
    for (TupleView t : full_[pred]) match(t);
    return out;
  }
  const InfiniteRelation* rel = builtins_->Find(pred);
  if (rel == nullptr) {
    return Status::Unsupported(
        StrCat("no generator for '", program_->PredicateName(pred), "'"));
  }
  Tuple partial(query.args.size(), kInvalidTerm);
  AttrSet bound;
  for (size_t k = 0; k < query.args.size(); ++k) {
    if (program_->terms().IsGround(query.args[k])) {
      partial[k] = query.args[k];
      bound.Add(static_cast<uint32_t>(k));
    }
  }
  if (!rel->SupportsBinding(bound)) {
    return Status::UnsafeQuery(
        StrCat("query ", program_->ToString(query),
               " enumerates an infinite relation"));
  }
  std::vector<Tuple> matches;
  HORNSAFE_RETURN_IF_ERROR(rel->Enumerate(program_, partial, &matches));
  for (const Tuple& t : matches) match(t);
  return out;
}

}  // namespace hornsafe
