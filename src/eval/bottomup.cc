#include "eval/bottomup.h"

#include <algorithm>

#include "lang/unify.h"
#include "util/strings.h"

namespace hornsafe {

namespace {

/// Collects the variables of `lit` that are unbound under `subst`.
bool ArgGroundUnderSubst(TermPool& pool, const Substitution& subst,
                         TermId arg) {
  TermId applied = ApplySubstitution(pool, subst, arg);
  return pool.IsGround(applied);
}

}  // namespace

BottomUpEvaluator::BottomUpEvaluator(Program* program,
                                     const BuiltinRegistry* builtins,
                                     const BottomUpOptions& options)
    : program_(program), builtins_(builtins), options_(options) {
  full_.resize(program_->num_predicates());
  delta_.resize(program_->num_predicates());
  facts_rel_.resize(program_->num_predicates());
  for (const Literal& f : program_->facts()) {
    facts_rel_[f.pred].Insert(f.args);
  }
}

Result<std::vector<size_t>> BottomUpEvaluator::PlanRule(
    const Rule& rule) const {
  std::vector<size_t> order;
  std::vector<bool> placed(rule.body.size(), false);
  std::vector<TermId> bound_vars;
  auto vars_bound = [&](TermId arg) {
    std::vector<TermId> vars;
    program_->terms().CollectVariables(arg, &vars);
    for (TermId v : vars) {
      if (std::find(bound_vars.begin(), bound_vars.end(), v) ==
          bound_vars.end()) {
        return false;
      }
    }
    return true;
  };
  auto bind_literal_vars = [&](const Literal& lit) {
    for (TermId a : lit.args) {
      std::vector<TermId> vars;
      program_->terms().CollectVariables(a, &vars);
      for (TermId v : vars) {
        if (std::find(bound_vars.begin(), bound_vars.end(), v) ==
            bound_vars.end()) {
          bound_vars.push_back(v);
        }
      }
    }
  };

  while (order.size() < rule.body.size()) {
    bool progress = false;
    // Finite base and derived literals can always be scanned.
    for (size_t i = 0; i < rule.body.size() && !progress; ++i) {
      if (placed[i]) continue;
      PredicateId pred = rule.body[i].pred;
      if (!program_->IsInfiniteBase(pred)) {
        order.push_back(i);
        placed[i] = true;
        bind_literal_vars(rule.body[i]);
        progress = true;
      }
    }
    if (progress) continue;
    // Otherwise an infinite occurrence with a supported binding pattern.
    bool saw_unregistered = false;
    for (size_t i = 0; i < rule.body.size() && !progress; ++i) {
      if (placed[i]) continue;
      const Literal& lit = rule.body[i];
      const InfiniteRelation* rel = builtins_->Find(lit.pred);
      if (rel == nullptr) {
        saw_unregistered = true;
        continue;
      }
      AttrSet bound;
      for (uint32_t k = 0; k < lit.args.size(); ++k) {
        if (vars_bound(lit.args[k])) bound.Add(k);
      }
      if (rel->SupportsBinding(bound)) {
        order.push_back(i);
        placed[i] = true;
        bind_literal_vars(lit);
        progress = true;
      }
    }
    if (!progress) {
      if (saw_unregistered) {
        return Status::Unsupported(
            StrCat("no generator registered for an infinite predicate in "
                   "rule ",
                   program_->ToString(rule)));
      }
      return Status::UnsafeQuery(
          StrCat("no sideways-information-passing order evaluates rule ",
                 program_->ToString(rule),
                 " bottom-up: an infinite relation is accessed with an "
                 "unsupported binding pattern"));
    }
  }
  return order;
}

Status BottomUpEvaluator::EmitHead(const Rule& rule, uint32_t rule_index,
                                   Substitution* subst,
                                   std::vector<Derivation>* new_tuples) {
  ++stats_.rule_firings;
  Tuple head;
  head.reserve(rule.head.args.size());
  for (TermId a : rule.head.args) {
    TermId g = ApplySubstitution(program_->terms(), *subst, a);
    if (!program_->terms().IsGround(g)) {
      return Status::UnsafeQuery(
          StrCat("rule ", program_->ToString(rule),
                 " derives a non-ground head (range-unrestricted "
                 "variable)"));
    }
    head.push_back(g);
  }
  if (!full_[rule.head.pred].Contains(head)) {
    if (options_.track_provenance) {
      provenance_.emplace(FactRef{rule.head.pred, head},
                          ProvenanceEntry{rule_index, trail_});
    }
    new_tuples->push_back(Derivation{rule.head.pred, std::move(head)});
  }
  return Status::Ok();
}

Status BottomUpEvaluator::JoinFrom(const Rule& rule, uint32_t rule_index,
                                   const std::vector<size_t>& order,
                                   int delta_index, size_t step,
                                   Substitution* subst,
                                   std::vector<Derivation>* new_tuples) {
  if (step == order.size()) {
    return EmitHead(rule, rule_index, subst, new_tuples);
  }
  const Literal& lit = rule.body[order[step]];
  PredicateId pred = lit.pred;

  auto try_tuple = [&](const Tuple& tuple) -> Status {
    Substitution saved = *subst;
    bool ok = true;
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (!Unify(program_->terms(), lit.args[k], tuple[k], subst)) {
        ok = false;
        break;
      }
    }
    Status st;
    if (ok) {
      if (options_.track_provenance) {
        trail_.push_back(FactRef{pred, tuple});
      }
      st = JoinFrom(rule, rule_index, order, delta_index, step + 1, subst,
                    new_tuples);
      if (options_.track_provenance) trail_.pop_back();
    }
    *subst = std::move(saved);
    return st;
  };

  if (program_->IsFiniteBase(pred)) {
    return ForEachCandidate(facts_rel_[pred], lit, *subst, try_tuple);
  }
  if (program_->IsDerived(pred)) {
    const Relation& rel = (static_cast<int>(step) == delta_index)
                              ? delta_[pred]
                              : full_[pred];
    return ForEachCandidate(rel, lit, *subst, try_tuple);
  }
  // Infinite builtin.
  const InfiniteRelation* rel = builtins_->Find(pred);
  if (rel == nullptr) {
    return Status::Unsupported(
        StrCat("no generator for '", program_->PredicateName(pred), "'"));
  }
  Tuple partial(lit.args.size(), kInvalidTerm);
  for (size_t k = 0; k < lit.args.size(); ++k) {
    if (ArgGroundUnderSubst(program_->terms(), *subst, lit.args[k])) {
      partial[k] = ApplySubstitution(program_->terms(), *subst, lit.args[k]);
    }
  }
  std::vector<Tuple> matches;
  HORNSAFE_RETURN_IF_ERROR(rel->Enumerate(program_, partial, &matches));
  for (const Tuple& t : matches) {
    HORNSAFE_RETURN_IF_ERROR(try_tuple(t));
  }
  return Status::Ok();
}

template <typename Fn>
Status BottomUpEvaluator::ForEachCandidate(const Relation& rel,
                                           const Literal& lit,
                                           const Substitution& subst,
                                           Fn try_tuple) {
  if (options_.use_index) {
    for (uint32_t k = 0; k < lit.args.size(); ++k) {
      TermId applied = ApplySubstitution(program_->terms(), subst,
                                         lit.args[k]);
      if (!program_->terms().IsGround(applied)) continue;
      // Hash-consing makes ground-term equality id equality, so an
      // index probe on the first ground column is exact.
      for (const Tuple* t : rel.Probe(k, applied)) {
        HORNSAFE_RETURN_IF_ERROR(try_tuple(*t));
      }
      return Status::Ok();
    }
  }
  for (const Tuple& t : rel) {
    HORNSAFE_RETURN_IF_ERROR(try_tuple(t));
  }
  return Status::Ok();
}

Status BottomUpEvaluator::EvalRule(const Rule& rule, uint32_t rule_index,
                                   const std::vector<size_t>& order,
                                   int delta_index,
                                   std::vector<Derivation>* new_tuples) {
  Substitution subst;
  return JoinFrom(rule, rule_index, order, delta_index, 0, &subst,
                  new_tuples);
}

Status BottomUpEvaluator::Run() {
  ran_ = true;
  // Plan every rule once.
  std::vector<std::vector<size_t>> plans;
  plans.reserve(program_->rules().size());
  for (const Rule& rule : program_->rules()) {
    HORNSAFE_ASSIGN_OR_RETURN(std::vector<size_t> plan, PlanRule(rule));
    plans.push_back(std::move(plan));
  }

  // Iteration 0: all rules against the (initially empty) full relations.
  std::vector<Derivation> fresh;
  for (size_t r = 0; r < program_->rules().size(); ++r) {
    HORNSAFE_RETURN_IF_ERROR(EvalRule(program_->rules()[r],
                                      static_cast<uint32_t>(r), plans[r],
                                      -1, &fresh));
  }

  while (true) {
    ++stats_.iterations;
    if (stats_.iterations > options_.max_iterations) {
      return Status::BudgetExhausted(
          StrCat("fixpoint not reached after ", options_.max_iterations,
                 " iterations"));
    }
    // Install fresh tuples as the next delta.
    for (Relation& d : delta_) d.clear();
    bool any = false;
    for (Derivation& d : fresh) {
      Tuple copy = d.tuple;
      if (full_[d.pred].Insert(std::move(d.tuple))) {
        delta_[d.pred].Insert(std::move(copy));
        any = true;
        if (++stats_.tuples_derived > options_.max_tuples) {
          return Status::BudgetExhausted(
              StrCat("more than ", options_.max_tuples,
                     " tuples derived; the query may be unsafe"));
        }
      }
    }
    if (!any) break;
    fresh.clear();

    for (size_t r = 0; r < program_->rules().size(); ++r) {
      const Rule& rule = program_->rules()[r];
      if (options_.semi_naive) {
        // One evaluation per derived occurrence, reading the delta there.
        for (size_t s = 0; s < plans[r].size(); ++s) {
          if (!program_->IsDerived(rule.body[plans[r][s]].pred)) continue;
          HORNSAFE_RETURN_IF_ERROR(EvalRule(rule,
                                            static_cast<uint32_t>(r),
                                            plans[r],
                                            static_cast<int>(s), &fresh));
        }
      } else {
        HORNSAFE_RETURN_IF_ERROR(EvalRule(rule, static_cast<uint32_t>(r),
                                          plans[r], -1, &fresh));
      }
    }
  }
  return Status::Ok();
}

const Relation& BottomUpEvaluator::RelationFor(PredicateId pred) const {
  return full_[pred];
}

void BottomUpEvaluator::AppendExplanation(PredicateId pred,
                                          const Tuple& tuple,
                                          const std::string& indent,
                                          bool last, std::string* out,
                                          int depth) const {
  std::string fact =
      program_->ToString(Literal{pred, tuple});
  *out += indent;
  if (depth > 0) *out += last ? "`- " : "|- ";
  *out += fact;
  auto it = provenance_.find(FactRef{pred, tuple});
  if (it == provenance_.end()) {
    if (program_->IsInfiniteBase(pred)) {
      *out += "  [computed]";
    } else if (program_->IsFiniteBase(pred)) {
      *out += "  [fact]";
    }
    *out += "\n";
    return;
  }
  const ProvenanceEntry& prov = it->second;
  *out += StrCat("  [rule: ",
                 program_->ToString(program_->rules()[prov.rule_index]),
                 "]\n");
  std::string child_indent =
      depth == 0 ? indent : indent + (last ? "   " : "|  ");
  for (size_t i = 0; i < prov.premises.size(); ++i) {
    AppendExplanation(prov.premises[i].pred, prov.premises[i].tuple,
                      child_indent, i + 1 == prov.premises.size(), out,
                      depth + 1);
  }
}

Result<std::string> BottomUpEvaluator::Explain(PredicateId pred,
                                               const Tuple& tuple) const {
  if (!options_.track_provenance) {
    return Status::Unsupported(
        "provenance tracking was not enabled (BottomUpOptions)");
  }
  if (!provenance_.count(FactRef{pred, tuple})) {
    if (program_->IsDerived(pred)) {
      return Status::NotFound(
          StrCat("no derivation recorded for ",
                 program_->ToString(Literal{pred, tuple})));
    }
  }
  std::string out;
  AppendExplanation(pred, tuple, "", true, &out, 0);
  return out;
}

Result<std::vector<Tuple>> BottomUpEvaluator::Query(const Literal& query) {
  if (!ran_) {
    return Status::Internal("call Run() before Query()");
  }
  std::vector<Tuple> out;
  auto match = [&](const Tuple& tuple) {
    Substitution subst;
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (!Unify(program_->terms(), query.args[k], tuple[k], &subst)) {
        return;
      }
    }
    out.push_back(tuple);
  };
  PredicateId pred = query.pred;
  if (program_->IsFiniteBase(pred)) {
    for (const Tuple& t : facts_rel_[pred]) match(t);
    return out;
  }
  if (program_->IsDerived(pred)) {
    for (const Tuple& t : full_[pred]) match(t);
    return out;
  }
  const InfiniteRelation* rel = builtins_->Find(pred);
  if (rel == nullptr) {
    return Status::Unsupported(
        StrCat("no generator for '", program_->PredicateName(pred), "'"));
  }
  Tuple partial(query.args.size(), kInvalidTerm);
  AttrSet bound;
  for (size_t k = 0; k < query.args.size(); ++k) {
    if (program_->terms().IsGround(query.args[k])) {
      partial[k] = query.args[k];
      bound.Add(static_cast<uint32_t>(k));
    }
  }
  if (!rel->SupportsBinding(bound)) {
    return Status::UnsafeQuery(
        StrCat("query ", program_->ToString(query),
               " enumerates an infinite relation"));
  }
  std::vector<Tuple> matches;
  HORNSAFE_RETURN_IF_ERROR(rel->Enumerate(program_, partial, &matches));
  for (const Tuple& t : matches) match(t);
  return out;
}

}  // namespace hornsafe
