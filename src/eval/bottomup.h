#ifndef HORNSAFE_EVAL_BOTTOMUP_H_
#define HORNSAFE_EVAL_BOTTOMUP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "eval/builtins.h"
#include "eval/relation.h"
#include "lang/program.h"
#include "lang/unify.h"
#include "util/status.h"

namespace hornsafe {

/// Options for bottom-up evaluation.
struct BottomUpOptions {
  /// Semi-naive evaluation: per iteration, each rule fires only against
  /// at least one delta tuple. `false` re-derives everything every
  /// iteration (the classic naive strategy; kept for the benchmark
  /// comparison).
  bool semi_naive = true;
  /// Abort with BudgetExhausted once this many tuples were derived —
  /// the guard rail when evaluating queries the analyzer could not
  /// prove safe.
  uint64_t max_tuples = 1'000'000;
  /// Abort after this many fixpoint iterations.
  uint64_t max_iterations = 1'000'000;
  /// Record, for every derived tuple, the rule and premise tuples of
  /// its first derivation (why-provenance), enabling `Explain`.
  bool track_provenance = false;
  /// Probe joins through lazily built per-column hash indexes instead
  /// of scanning whole relations. Kept as a knob for the ablation
  /// benchmark; leave on.
  bool use_index = true;
};

/// Evaluation statistics.
struct BottomUpStats {
  uint64_t iterations = 0;
  uint64_t tuples_derived = 0;
  uint64_t rule_firings = 0;
};

/// A freshly derived tuple tagged with its predicate.
struct Derivation {
  PredicateId pred = kInvalidPredicate;
  Tuple tuple;
};

/// A ground fact reference: predicate + tuple.
struct FactRef {
  PredicateId pred = kInvalidPredicate;
  Tuple tuple;

  bool operator==(const FactRef& o) const {
    return pred == o.pred && tuple == o.tuple;
  }
};

/// Why-provenance of one derived tuple: the rule applied and the body
/// facts it joined (in body-plan order).
struct ProvenanceEntry {
  /// Index into the program's rule list.
  uint32_t rule_index = 0;
  std::vector<FactRef> premises;
};

/// Bottom-up (forward chaining) evaluation of the derived predicates of
/// a Horn program to fixpoint, with sideways information passing into
/// computable infinite relations.
///
/// Body literals are reordered per rule so that every infinite-relation
/// access happens under a supported binding pattern (the operational
/// reading of the paper's Section 5 assumptions); `Run` fails with
/// UnsafeQuery if no such order exists for some rule.
class BottomUpEvaluator {
 public:
  /// `program` and `builtins` must outlive the evaluator; `program` is
  /// mutated only by interning new ground terms (e.g. computed sums).
  BottomUpEvaluator(Program* program, const BuiltinRegistry* builtins,
                    const BottomUpOptions& options = {});

  /// Runs to fixpoint (or budget).
  Status Run();

  /// The computed relation for a derived predicate (empty before Run).
  const Relation& RelationFor(PredicateId pred) const;

  /// Matches `query` against facts, computed relations, or a builtin;
  /// returns the matching ground argument tuples. Call after Run.
  Result<std::vector<Tuple>> Query(const Literal& query);

  /// Renders the derivation tree of a derived tuple (requires
  /// `track_provenance`): the first-found rule application and,
  /// recursively, its premises; EDB and builtin premises are leaves.
  /// Provenance is well-founded (premises are always derived strictly
  /// earlier), so the tree is finite even on recursive programs.
  Result<std::string> Explain(PredicateId pred, const Tuple& tuple) const;

  const BottomUpStats& stats() const { return stats_; }

 private:
  /// Chooses an evaluation order for the body of `rule` such that every
  /// infinite occurrence is reached with a supported binding pattern.
  Result<std::vector<size_t>> PlanRule(const Rule& rule) const;

  /// Evaluates `rule` with body order `order`; in semi-naive mode,
  /// derived occurrence `delta_index` (an index into `order`) reads the
  /// previous delta instead of the full relation; -1 reads full
  /// relations everywhere. New head tuples are inserted into
  /// `*new_tuples`.
  Status EvalRule(const Rule& rule, uint32_t rule_index,
                  const std::vector<size_t>& order, int delta_index,
                  std::vector<Derivation>* new_tuples);

  Status JoinFrom(const Rule& rule, uint32_t rule_index,
                  const std::vector<size_t>& order, int delta_index,
                  size_t step, Substitution* subst,
                  std::vector<Derivation>* new_tuples);

  Status EmitHead(const Rule& rule, uint32_t rule_index,
                  Substitution* subst,
                  std::vector<Derivation>* new_tuples);

  void AppendExplanation(PredicateId pred, const Tuple& tuple,
                         const std::string& indent, bool last,
                         std::string* out, int depth) const;

  struct FactRefHash {
    size_t operator()(const FactRef& f) const {
      size_t seed = TupleHash{}(f.tuple);
      HashCombine(seed, std::hash<uint64_t>{}(f.pred));
      return seed;
    }
  };

  Program* program_;
  const BuiltinRegistry* builtins_;
  BottomUpOptions options_;
  BottomUpStats stats_;
  /// Joins `lit` against `rel` under `*subst`, probing a column index
  /// when some argument is ground (and indexing is enabled), and calls
  /// `try_tuple` for each candidate.
  template <typename Fn>
  Status ForEachCandidate(const Relation& rel, const Literal& lit,
                          const Substitution& subst, Fn try_tuple);

  std::vector<Relation> full_;
  std::vector<Relation> delta_;
  /// EDB facts, materialised as relations so that joins can probe them.
  std::vector<Relation> facts_rel_;
  /// Join trail of the in-flight rule application (provenance only).
  std::vector<FactRef> trail_;
  std::unordered_map<FactRef, ProvenanceEntry, FactRefHash> provenance_;
  bool ran_ = false;
};

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_BOTTOMUP_H_
