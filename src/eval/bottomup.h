#ifndef HORNSAFE_EVAL_BOTTOMUP_H_
#define HORNSAFE_EVAL_BOTTOMUP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/builtins.h"
#include "eval/relation.h"
#include "lang/program.h"
#include "lang/unify.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hornsafe {

/// Options for bottom-up evaluation.
struct BottomUpOptions {
  /// Semi-naive evaluation: per iteration, each rule fires only against
  /// at least one delta tuple. `false` re-derives everything every
  /// iteration (the classic naive strategy; kept for the benchmark
  /// comparison).
  bool semi_naive = true;
  /// Abort with BudgetExhausted once this many tuples were derived —
  /// the guard rail when evaluating queries the analyzer could not
  /// prove safe.
  uint64_t max_tuples = 1'000'000;
  /// Abort after this many fixpoint iterations.
  uint64_t max_iterations = 1'000'000;
  /// Wall-clock deadline / cancellation, checked at every iteration
  /// barrier and every `ExecContext::kCheckInterval` installed tuples.
  /// Exceeding either aborts the fixpoint with kDeadlineExceeded /
  /// kCancelled (derived relations are left partial and must not be
  /// queried).
  ExecContext exec;
  /// Record, for every derived tuple, the rule and premise tuples of
  /// its first derivation (why-provenance), enabling `Explain`.
  /// Forces serial evaluation (jobs is ignored).
  bool track_provenance = false;
  /// Probe joins through lazily built per-column hash indexes instead
  /// of scanning whole relations. Kept as a knob for the ablation
  /// benchmark; leave on.
  bool use_index = true;
  /// Worker threads for the fixpoint. 1 = serial; 0 = one per hardware
  /// thread. Results are deterministic and identical across job
  /// counts: each iteration fans out over (rule, delta-occurrence,
  /// relation shard) tasks with private output buffers that are merged
  /// in task order at the iteration barrier. Rules that may intern new
  /// terms (infinite builtins, non-ground function arguments) always
  /// run on the driving thread, keeping the term pool single-writer.
  int jobs = 1;
};

/// Evaluation statistics.
struct BottomUpStats {
  uint64_t iterations = 0;
  uint64_t tuples_derived = 0;
  uint64_t rule_firings = 0;
  /// Wall-clock seconds per evaluation round: entry 0 is the initial
  /// all-rules round, entry i >= 1 is fixpoint iteration i.
  std::vector<double> round_seconds;
  /// rule_firings broken down by rule index.
  std::vector<uint64_t> firings_per_rule;
  /// Tasks executed on pool workers / inline on the driving thread.
  uint64_t parallel_tasks = 0;
  uint64_t serial_tasks = 0;
};

/// The historical name of the stats block in docs and issues.
using EvalStats = BottomUpStats;

/// A freshly derived tuple tagged with its predicate.
struct Derivation {
  PredicateId pred = kInvalidPredicate;
  Tuple tuple;
};

/// A ground fact reference: predicate + tuple.
struct FactRef {
  PredicateId pred = kInvalidPredicate;
  Tuple tuple;

  bool operator==(const FactRef& o) const {
    return pred == o.pred && tuple == o.tuple;
  }
};

/// Why-provenance of one derived tuple: the rule applied and the body
/// facts it joined (in body-plan order).
struct ProvenanceEntry {
  /// Index into the program's rule list.
  uint32_t rule_index = 0;
  std::vector<FactRef> premises;
};

/// Bottom-up (forward chaining) evaluation of the derived predicates of
/// a Horn program to fixpoint, with sideways information passing into
/// computable infinite relations.
///
/// Body literals are reordered per rule so that every infinite-relation
/// access happens under a supported binding pattern (the operational
/// reading of the paper's Section 5 assumptions); `Run` fails with
/// UnsafeQuery if no such order exists for some rule.
class BottomUpEvaluator {
 public:
  /// `program` and `builtins` must outlive the evaluator; `program` is
  /// mutated only by interning new ground terms (e.g. computed sums).
  BottomUpEvaluator(Program* program, const BuiltinRegistry* builtins,
                    const BottomUpOptions& options = {});

  /// Runs to fixpoint (or budget).
  Status Run();

  /// The computed relation for a derived predicate (empty before Run).
  const Relation& RelationFor(PredicateId pred) const;

  /// Matches `query` against facts, computed relations, or a builtin;
  /// returns the matching ground argument tuples. Call after Run.
  Result<std::vector<Tuple>> Query(const Literal& query);

  /// Renders the derivation tree of a derived tuple (requires
  /// `track_provenance`): the first-found rule application and,
  /// recursively, its premises; EDB and builtin premises are leaves.
  /// Provenance is well-founded (premises are always derived strictly
  /// earlier), so the tree is finite even on recursive programs.
  Result<std::string> Explain(PredicateId pred, const Tuple& tuple) const;

  const BottomUpStats& stats() const { return stats_; }

 private:
  /// Per-task evaluation state: a private output buffer plus the
  /// delta/shard coordinates of the task. Workers never touch shared
  /// evaluator state; everything here is merged at the barrier.
  struct EvalContext {
    std::vector<Derivation> out;
    uint64_t firings = 0;
    /// Position in the plan order reading the delta relation; -1 reads
    /// full relations everywhere.
    int delta_index = -1;
    /// Position in the plan order whose candidate tuples are
    /// restricted to dense ids [shard_begin, shard_end); -1 = no
    /// restriction.
    int shard_step = -1;
    uint32_t shard_begin = 0;
    uint32_t shard_end = 0;
  };

  /// One schedulable unit of an evaluation round.
  struct WorkItem {
    uint32_t rule = 0;
    int delta_index = -1;
    int shard_step = -1;
    uint32_t shard_begin = 0;
    uint32_t shard_end = 0;
  };

  /// Chooses an evaluation order for the body of `rule` such that every
  /// infinite occurrence is reached with a supported binding pattern.
  Result<std::vector<size_t>> PlanRule(const Rule& rule) const;

  /// True when evaluating `rule` can never intern new terms: no
  /// infinite builtins in the body and every head/body argument is a
  /// plain variable or already-ground term. Such rules may run on pool
  /// workers, which only ever read the term pool.
  bool RuleIsParallelSafe(const Rule& rule) const;

  /// Evaluates `rule` under `ctx` (delta position + shard already set);
  /// derivations and firing counts land in `ctx`.
  Status EvalRule(const Rule& rule, uint32_t rule_index,
                  const std::vector<size_t>& order, EvalContext* ctx);

  Status JoinFrom(const Rule& rule, uint32_t rule_index,
                  const std::vector<size_t>& order, size_t step,
                  Substitution* subst, EvalContext* ctx);

  Status EmitHead(const Rule& rule, uint32_t rule_index,
                  Substitution* subst, EvalContext* ctx);

  /// The relation feeding body position `step` of the plan, or nullptr
  /// for infinite builtins.
  const Relation* RelationAtStep(const Rule& rule,
                                 const std::vector<size_t>& order,
                                 int delta_index, size_t step) const;

  /// Appends the round's work items for `rule` (sharded when a pool is
  /// available and the scanned relation is large enough).
  void AppendWorkItems(uint32_t rule_index,
                       const std::vector<size_t>& order, bool initial,
                       std::vector<WorkItem>* items) const;

  /// Runs one evaluation round: every item with a private context,
  /// parallel-safe rules on the pool, the rest inline, then a
  /// deterministic in-order merge into `*fresh` and the stats.
  Status RunRound(const std::vector<std::vector<size_t>>& plans,
                  const std::vector<bool>& parallel_safe,
                  const std::vector<WorkItem>& items,
                  std::vector<Derivation>* fresh);

  void AppendExplanation(PredicateId pred, const Tuple& tuple,
                         const std::string& indent, bool last,
                         std::string* out, int depth) const;

  struct FactRefHash {
    size_t operator()(const FactRef& f) const {
      size_t seed = TupleHash{}(f.tuple);
      HashCombine(seed, std::hash<uint64_t>{}(f.pred));
      return seed;
    }
  };

  Program* program_;
  const BuiltinRegistry* builtins_;
  BottomUpOptions options_;
  BottomUpStats stats_;
  /// Joins `lit` against `rel` under `*subst`, probing the most
  /// selective ground column's index (when indexing is enabled) and
  /// calling `try_tuple` for each candidate whose dense id lies in
  /// [range_begin, range_end).
  template <typename Fn>
  Status ForEachCandidate(const Relation& rel, const Literal& lit,
                          const Substitution& subst, uint32_t range_begin,
                          uint32_t range_end, Fn try_tuple);

  std::vector<Relation> full_;
  std::vector<Relation> delta_;
  /// EDB facts, materialised as relations so that joins can probe them.
  std::vector<Relation> facts_rel_;
  /// Join trail of the in-flight rule application (provenance only;
  /// provenance mode is always serial).
  std::vector<FactRef> trail_;
  std::unordered_map<FactRef, ProvenanceEntry, FactRefHash> provenance_;
  /// Resolved worker count for this run (1 = no pool).
  int jobs_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  bool ran_ = false;
};

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_BOTTOMUP_H_
