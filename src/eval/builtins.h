#ifndef HORNSAFE_EVAL_BUILTINS_H_
#define HORNSAFE_EVAL_BUILTINS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/relation.h"
#include "lang/attr_set.h"
#include "lang/program.h"
#include "util/status.h"

namespace hornsafe {

/// A computable infinite EDB relation, exposed through *binding
/// patterns*: the evaluator may only access it with a set of bound
/// argument positions for which the matching tuple set is finite — the
/// operational counterpart of the paper's Section 5 access assumptions
/// (membership tests are always finite; projections are finite exactly
/// when a finiteness dependency covers the free positions).
class InfiniteRelation {
 public:
  virtual ~InfiniteRelation() = default;

  /// True iff the relation can finitely enumerate all tuples whose
  /// positions in `bound` are fixed.
  virtual bool SupportsBinding(AttrSet bound) const = 0;

  /// Enumerates the tuples matching `partial` (entries equal to
  /// `kInvalidTerm` are free; everything else is a ground term) into
  /// `*out`. `SupportsBinding` must hold for the bound set of `partial`.
  /// May create terms in `*program`'s pool.
  virtual Status Enumerate(Program* program, const Tuple& partial,
                           std::vector<Tuple>* out) const = 0;

  /// Finiteness dependencies that hold over this relation (attached to
  /// the predicate at registration).
  virtual std::vector<FiniteDependency> Fds(PredicateId pred) const {
    (void)pred;
    return {};
  }

  /// Monotonicity constraints that hold over this relation.
  virtual std::vector<MonotonicityConstraint> Monos(PredicateId pred) const {
    (void)pred;
    return {};
  }
};

/// Maps infinite predicates of one program to their generators.
class BuiltinRegistry {
 public:
  /// Declares `name/arity` infinite in `*program`, attaches the
  /// relation's FDs and monotonicity constraints, and registers the
  /// generator. Fails if the predicate is derived or has facts.
  Status Register(Program* program, std::string_view name, uint32_t arity,
                  std::shared_ptr<InfiniteRelation> relation);

  /// The generator for `pred`, or nullptr.
  const InfiniteRelation* Find(PredicateId pred) const;

 private:
  std::unordered_map<PredicateId, std::shared_ptr<InfiniteRelation>>
      relations_;
};

// --- Standard builtins ----------------------------------------------------

/// `successor(I, J)` with J = I + 1 over the integers (Example 1 of the
/// paper). FDs 1⇝2 and 2⇝1; monotonicity 2 > 1.
std::shared_ptr<InfiniteRelation> MakeSuccessorRelation();

/// `plus(X, Y, Z)` with Z = X + Y. Any two arguments determine the third.
std::shared_ptr<InfiniteRelation> MakePlusRelation();

/// `times(X, Y, Z)` with Z = X * Y. {1,2}⇝3 always; the inverse
/// directions enumerate only when the quotient is defined.
std::shared_ptr<InfiniteRelation> MakeTimesRelation();

/// `less(X, Y)` with X < Y over the integers: a pure test (both
/// arguments must be bound); no finiteness dependencies, monotonicity
/// 2 > 1.
std::shared_ptr<InfiniteRelation> MakeLessRelation();

/// `integer(X)`: membership test for integer terms (Example 8's
/// "integer" predicate); no finiteness dependencies.
std::shared_ptr<InfiniteRelation> MakeIntegerRelation();

/// `between(L, H, X)` with L ≤ X ≤ H: an infinite relation whose
/// finiteness dependency {1,2}⇝3 lets bounded ranges *enumerate* —
/// the textbook "safe range query". Monotonicity: 2 ≥ ... only the
/// strict facts X > L-1 and X < H+1 hold per-tuple, which the
/// constraint language cannot express relative to attributes, so no
/// monotonicity constraints are attached.
std::shared_ptr<InfiniteRelation> MakeBetweenRelation();

/// `abs(X, Y)` with Y = |X|. 1⇝2 always; 2⇝1 as well: each Y has at
/// most two preimages.
std::shared_ptr<InfiniteRelation> MakeAbsRelation();

/// `mod(X, M, R)` with R = X mod M (M > 0). {1,2}⇝3; the inverse
/// directions are infinite and unsupported.
std::shared_ptr<InfiniteRelation> MakeModRelation();

/// The relation of a k-ary constructor `symbol`: tuples
/// (t₁,...,tₖ, symbol(t₁,...,tₖ)). {1..k}⇝k+1 and, constructors being
/// injective, {k+1}⇝{1..k} — the `h` predicates of Example 7.
std::shared_ptr<InfiniteRelation> MakeConstructorRelation(SymbolId symbol,
                                                          uint32_t k);

/// Registers successor/plus/times/less/integer/between/abs/mod under
/// their standard names into `*program`.
Status RegisterStandardBuiltins(Program* program, BuiltinRegistry* registry);

/// Registers only the standard builtins whose predicate (name and
/// arity) already occurs in `*program`. Use for analysis of program
/// text that references builtins without declaring them — the CLI's
/// `check`/`report` path — so the static verdicts agree with what the
/// engine (which registers everything) would do, without polluting
/// program printouts with unused declarations.
Status RegisterReferencedStandardBuiltins(Program* program,
                                          BuiltinRegistry* registry);

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_BUILTINS_H_
