#ifndef HORNSAFE_EVAL_RELATION_H_
#define HORNSAFE_EVAL_RELATION_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "lang/term.h"
#include "util/strings.h"

namespace hornsafe {

/// A tuple of ground terms (owning form; the evaluator mostly works
/// with non-owning `TupleView`s into a relation's arena).
using Tuple = std::vector<TermId>;

/// A non-owning view of a ground tuple: a span of `TermId`s living in
/// a relation arena, a `Tuple`, or a builtin's output buffer. Cheap to
/// copy; valid as long as the backing storage is.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const TermId* data, size_t size) : data_(data), size_(size) {}
  // Implicit: lets `Tuple` flow into every TupleView parameter.
  TupleView(const Tuple& t) : data_(t.data()), size_(t.size()) {}

  const TermId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  TermId operator[](size_t i) const { return data_[i]; }
  const TermId* begin() const { return data_; }
  const TermId* end() const { return data_ + size_; }

  /// Materialises an owning copy.
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

  friend bool operator==(TupleView a, TupleView b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(TupleView a, TupleView b) { return !(a == b); }

 private:
  const TermId* data_ = nullptr;
  size_t size_ = 0;
};

struct TupleHash {
  /// splitmix64 finalizer. Term ids are small consecutive integers and
  /// `std::hash` on integers is the identity; without strong per-element
  /// mixing the low bits cluster, which the power-of-two open-addressing
  /// table below (unlike a prime-modulus std::unordered_set) turns into
  /// long linear-probe chains.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  size_t operator()(TupleView t) const {
    size_t seed = Mix(t.size());
    for (TermId v : t) HashCombine(seed, Mix(v));
    return seed;
  }
};

/// A materialised finite relation: a set of ground tuples in insertion
/// order, with lazily built per-column indexes for join probes.
///
/// Storage is a contiguous arena (`std::vector<TermId>` slabs) plus an
/// open-addressing hash table keyed by arena offset, so inserting and
/// probing never allocate per tuple. Tuples get dense ids `0..size()`
/// in insertion order; `At(id)` views one in O(1), which also gives
/// the evaluator an exact way to shard a relation across threads.
///
/// Terms are hash-consed, so tuple equality is element-wise id
/// equality and a column index keys directly on `TermId` — this covers
/// compound ground terms too.
///
/// Thread safety: concurrent *reads* (Contains/Probe/ProbeCount/At/
/// iteration) are safe, including the first probe of a column — lazy
/// index construction publishes through an atomic and loser threads
/// discard their copy. Insert/clear require exclusive access.
class Relation {
 public:
  /// Posting list of a column index: ids of the tuples whose indexed
  /// column holds one value, ascending (= insertion order).
  using PostingList = std::vector<uint32_t>;

  Relation() = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Inserts `t`; returns true iff it was new. Maintains any indexes
  /// already built. Not thread-safe.
  bool Insert(TupleView t) {
    size_t hash = TupleHash{}(t);
    if (table_.empty()) Rehash(kInitialBuckets);
    size_t slot = FindSlot(t, hash);
    if (table_[slot] != kEmptySlot) return false;
    uint32_t id = static_cast<uint32_t>(size());
    arena_.insert(arena_.end(), t.begin(), t.end());
    offsets_.push_back(static_cast<uint32_t>(arena_.size()));
    hashes_.push_back(hash);
    table_[slot] = id;
    if ((size() + 1) * 10 > table_.size() * 7) Rehash(table_.size() * 2);
    // Keep one index slot per column of the widest tuple. Growing here
    // (under exclusive access) is what lets concurrent probes read the
    // slot vector without locking.
    while (col_indexes_.size() < t.size()) {
      col_indexes_.push_back(std::make_unique<IndexSlot>());
    }
    for (size_t col = 0; col < t.size(); ++col) {
      ColumnIndex* index =
          col_indexes_[col]->ptr.load(std::memory_order_relaxed);
      if (index != nullptr) (*index)[t[col]].push_back(id);
    }
    return true;
  }

  bool Contains(TupleView t) const {
    if (table_.empty()) return false;
    return table_[FindSlot(t, TupleHash{}(t))] != kEmptySlot;
  }

  // Braced-literal conveniences (`Insert({1, 2})`); the list only
  // needs to live for the duration of the call.
  bool Insert(std::initializer_list<TermId> il) {
    return Insert(TupleView(il.begin(), il.size()));
  }
  bool Contains(std::initializer_list<TermId> il) const {
    return Contains(TupleView(il.begin(), il.size()));
  }

  size_t size() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }

  void clear() {
    arena_.clear();
    offsets_.assign(1, 0);
    hashes_.clear();
    table_.clear();
    col_indexes_.clear();
  }

  /// The tuple with dense id `id` (ids follow insertion order).
  TupleView At(uint32_t id) const {
    return TupleView(arena_.data() + offsets_[id],
                     offsets_[id + 1] - offsets_[id]);
  }

  /// Ids of the tuples whose column `col` holds exactly `value`,
  /// ascending. Builds the column index on first use (O(size)); later
  /// probes are O(1) + output.
  const PostingList& Probe(uint32_t col, TermId value) const {
    static const PostingList kEmpty;
    const ColumnIndex* index = EnsureIndex(col);
    if (index == nullptr) return kEmpty;
    auto hit = index->find(value);
    return hit == index->end() ? kEmpty : hit->second;
  }

  /// Number of tuples whose column `col` holds `value` — the
  /// selectivity oracle for join-column choice. Same lazy-build cost
  /// as `Probe`.
  size_t ProbeCount(uint32_t col, TermId value) const {
    return Probe(col, value).size();
  }

  /// Iterates tuples in insertion order, yielding `TupleView`s.
  class const_iterator {
   public:
    const_iterator(const Relation* rel, uint32_t id) : rel_(rel), id_(id) {}
    TupleView operator*() const { return rel_->At(id_); }
    const_iterator& operator++() {
      ++id_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return id_ != o.id_; }
    bool operator==(const const_iterator& o) const { return id_ == o.id_; }

   private:
    const Relation* rel_;
    uint32_t id_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<uint32_t>(size()));
  }

 private:
  using ColumnIndex = std::unordered_map<TermId, PostingList>;

  /// One lazily built column index behind an atomic pointer, so the
  /// first concurrent probes of a column race benignly: every builder
  /// compare-exchanges its candidate and losers delete theirs.
  struct IndexSlot {
    std::atomic<ColumnIndex*> ptr{nullptr};
    ~IndexSlot() { delete ptr.load(std::memory_order_acquire); }
  };

  static constexpr uint32_t kEmptySlot = static_cast<uint32_t>(-1);
  static constexpr size_t kInitialBuckets = 16;

  /// Linear probe: the slot holding an equal tuple, or the empty slot
  /// where it would go. `table_` must be non-empty.
  size_t FindSlot(TupleView t, size_t hash) const {
    size_t mask = table_.size() - 1;
    size_t slot = hash & mask;
    while (true) {
      uint32_t id = table_[slot];
      if (id == kEmptySlot) return slot;
      if (hashes_[id] == hash && At(id) == t) return slot;
      slot = (slot + 1) & mask;
    }
  }

  void Rehash(size_t new_buckets) {
    table_.assign(new_buckets, kEmptySlot);
    size_t mask = new_buckets - 1;
    for (uint32_t id = 0; id < size(); ++id) {
      size_t slot = hashes_[id] & mask;
      while (table_[slot] != kEmptySlot) slot = (slot + 1) & mask;
      table_[slot] = id;
    }
  }

  const ColumnIndex* EnsureIndex(uint32_t col) const {
    // Insert keeps `col_indexes_` sized to the widest tuple, so an
    // out-of-range column has no matching tuples at all.
    if (col >= col_indexes_.size()) return nullptr;
    IndexSlot& slot = *col_indexes_[col];
    ColumnIndex* index = slot.ptr.load(std::memory_order_acquire);
    if (index != nullptr) return index;
    auto built = std::make_unique<ColumnIndex>();
    for (uint32_t id = 0; id < size(); ++id) {
      TupleView t = At(id);
      if (col < t.size()) (*built)[t[col]].push_back(id);
    }
    ColumnIndex* expected = nullptr;
    if (slot.ptr.compare_exchange_strong(expected, built.get(),
                                         std::memory_order_acq_rel)) {
      return built.release();
    }
    return expected;  // another thread won; ours is discarded
  }

  /// Flat tuple storage: tuple `i` spans
  /// `arena_[offsets_[i], offsets_[i+1])`.
  std::vector<TermId> arena_;
  std::vector<uint32_t> offsets_{0};
  /// Cached content hash per tuple (rehash + fast compare).
  std::vector<size_t> hashes_;
  /// Open-addressing table of tuple ids (power-of-two size).
  std::vector<uint32_t> table_;
  /// Built lazily by Probe; mutable because probing is logically
  /// const. unique_ptr keeps slots stable and the Relation movable.
  mutable std::vector<std::unique_ptr<IndexSlot>> col_indexes_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_RELATION_H_
