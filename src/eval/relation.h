#ifndef HORNSAFE_EVAL_RELATION_H_
#define HORNSAFE_EVAL_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lang/term.h"
#include "util/strings.h"

namespace hornsafe {

/// A tuple of ground terms.
using Tuple = std::vector<TermId>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (TermId v : t) HashCombine(seed, std::hash<uint64_t>{}(v));
    return seed;
  }
};

/// A materialised finite relation: a set of ground tuples, with lazily
/// built per-column hash indexes for join probes.
///
/// Terms are hash-consed, so tuple equality is element-wise id equality
/// and a column index keys directly on `TermId` — this covers compound
/// ground terms too. The backing container is node-based, so tuple
/// pointers handed out by `Probe` stay valid across inserts.
class Relation {
 public:
  Relation() = default;

  /// Inserts `t`; returns true iff it was new. Maintains any indexes
  /// already built.
  bool Insert(Tuple t) {
    auto [it, inserted] = tuples_.insert(std::move(t));
    if (inserted && !indexes_.empty()) {
      for (auto& [col, index] : indexes_) {
        if (col < it->size()) index[(*it)[col]].push_back(&*it);
      }
    }
    return inserted;
  }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  void clear() {
    tuples_.clear();
    indexes_.clear();
  }

  /// The tuples whose column `col` holds exactly `value`. Builds the
  /// column index on first use (O(size)); later probes are O(matches).
  const std::vector<const Tuple*>& Probe(uint32_t col, TermId value) const {
    auto idx = indexes_.find(col);
    if (idx == indexes_.end()) {
      ColumnIndex index;
      for (const Tuple& t : tuples_) {
        if (col < t.size()) index[t[col]].push_back(&t);
      }
      idx = indexes_.emplace(col, std::move(index)).first;
    }
    auto hit = idx->second.find(value);
    static const std::vector<const Tuple*> kEmpty;
    return hit == idx->second.end() ? kEmpty : hit->second;
  }

  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

 private:
  using ColumnIndex =
      std::unordered_map<TermId, std::vector<const Tuple*>>;

  std::unordered_set<Tuple, TupleHash> tuples_;
  /// Built lazily by Probe; mutable because probing is logically const.
  mutable std::unordered_map<uint32_t, ColumnIndex> indexes_;
};

}  // namespace hornsafe

#endif  // HORNSAFE_EVAL_RELATION_H_
