#include "eval/engine.h"

#include "eval/magic.h"
#include "parser/parser.h"
#include "util/strings.h"

namespace hornsafe {

Result<Engine> Engine::Create(Program program, const EngineOptions& options) {
  Engine e;
  e.program_ = std::make_unique<Program>(std::move(program));
  e.options_ = options;
  if (options.exec.active()) e.set_exec(options.exec);
  HORNSAFE_RETURN_IF_ERROR(
      RegisterStandardBuiltins(e.program_.get(), &e.builtins_));
  HORNSAFE_RETURN_IF_ERROR(e.program_->Validate());
  return e;
}

void Engine::set_exec(const ExecContext& exec) {
  options_.exec = exec;
  options_.analyzer.exec = exec;
  options_.bottom_up.exec = exec;
  options_.top_down.exec = exec;
  if (analyzer_) analyzer_->set_exec(exec);
}

Status Engine::RegisterBuiltin(std::string_view name, uint32_t arity,
                               std::shared_ptr<InfiniteRelation> relation) {
  analyzer_.reset();  // constraints may have changed
  return builtins_.Register(program_.get(), name, arity,
                            std::move(relation));
}

Result<SafetyAnalyzer*> Engine::GetAnalyzer() {
  if (!analyzer_) {
    HORNSAFE_ASSIGN_OR_RETURN(
        SafetyAnalyzer a, SafetyAnalyzer::Create(*program_,
                                                 options_.analyzer));
    analyzer_ = std::make_unique<SafetyAnalyzer>(std::move(a));
  }
  return analyzer_.get();
}

Result<QueryAnalysis> Engine::Analyze(const Literal& query) {
  HORNSAFE_ASSIGN_OR_RETURN(SafetyAnalyzer* analyzer, GetAnalyzer());
  // Ground arguments are bound; non-ground compound arguments are
  // conservatively treated as free.
  uint64_t mask = 0;
  for (size_t k = 0; k < query.args.size(); ++k) {
    if (program_->terms().IsGround(query.args[k])) {
      mask |= uint64_t{1} << k;
    }
  }
  // The analyzer works on its canonical program, whose predicate ids
  // coincide with ours for predicates that existed before
  // canonicalization (Canonicalize copies the program and only appends).
  QueryAnalysis analysis = analyzer->AnalyzePredicate(query.pred, mask);
  analysis.query = query;
  return analysis;
}

Result<Engine::QueryResult> Engine::Query(const Literal& query) {
  QueryResult result;
  HORNSAFE_ASSIGN_OR_RETURN(QueryAnalysis analysis, Analyze(query));
  result.safety = analysis.overall;
  if (options_.enforce_safety && analysis.overall != Safety::kSafe) {
    std::string detail;
    for (const ArgumentVerdict& a : analysis.args) {
      if (a.safety != Safety::kSafe) {
        detail = StrCat("argument ", a.position + 1, ": ", a.explanation);
        break;
      }
    }
    return Status::UnsafeQuery(
        StrCat("query ", program_->ToString(query), " is ",
               SafetyName(analysis.overall), "; refusing to evaluate. ",
               detail));
  }

  // Bound queries (or queries bottom-up cannot order) run top-down —
  // or through the magic-sets rewriting when enabled; all-free queries
  // materialise bottom-up.
  bool any_ground = false;
  for (TermId a : query.args) {
    if (program_->terms().IsGround(a)) any_ground = true;
  }
  if (any_ground && options_.use_magic && program_->IsDerived(query.pred)) {
    auto magic = MagicTransform(*program_, query);
    if (magic.ok()) {
      BottomUpEvaluator bottom_up(&magic->program, &builtins_,
                                  options_.bottom_up);
      Status st = bottom_up.Run();
      if (st.ok()) {
        HORNSAFE_ASSIGN_OR_RETURN(result.tuples,
                                  bottom_up.Query(magic->query));
        result.strategy = "magic";
        result.eval_stats = bottom_up.stats();
        return result;
      }
      if (st.code() != StatusCode::kUnsafeQuery &&
          st.code() != StatusCode::kUnsupported) {
        return st;
      }
      // Fall through to top-down.
    }
  }
  if (!any_ground) {
    BottomUpEvaluator bottom_up(program_.get(), &builtins_,
                                options_.bottom_up);
    Status st = bottom_up.Run();
    if (st.ok()) {
      HORNSAFE_ASSIGN_OR_RETURN(result.tuples, bottom_up.Query(query));
      result.strategy = "bottom-up";
      result.eval_stats = bottom_up.stats();
      return result;
    }
    if (st.code() != StatusCode::kUnsafeQuery &&
        st.code() != StatusCode::kUnsupported) {
      return st;
    }
    // Fall through to top-down.
  }
  TopDownEvaluator top_down(program_.get(), &builtins_, options_.top_down);
  HORNSAFE_ASSIGN_OR_RETURN(result.tuples, top_down.Solve(query));
  result.strategy = "top-down";
  return result;
}

Result<Engine::QueryResult> Engine::Query(std::string_view literal_text) {
  HORNSAFE_ASSIGN_OR_RETURN(Literal lit,
                            ParseLiteralInto(literal_text, program_.get()));
  return Query(lit);
}

}  // namespace hornsafe
