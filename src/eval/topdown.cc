#include "eval/topdown.h"

#include <algorithm>

#include "util/strings.h"

namespace hornsafe {

TopDownEvaluator::TopDownEvaluator(Program* program,
                                   const BuiltinRegistry* builtins,
                                   const TopDownOptions& options)
    : program_(program), builtins_(builtins), options_(options) {
  facts_by_pred_.resize(program_->num_predicates());
  rules_by_pred_.resize(program_->num_predicates());
  for (const Literal& f : program_->facts()) {
    facts_by_pred_[f.pred].push_back(&f);
  }
  for (const Rule& r : program_->rules()) {
    rules_by_pred_[r.head.pred].push_back(&r);
  }
}

Rule TopDownEvaluator::RenameRule(const Rule& rule) {
  Substitution renaming;
  for (TermId v : RuleVariables(program_->terms(), rule)) {
    const TermData& d = program_->terms().Get(v);
    SymbolId fresh = program_->symbols().Intern(
        StrCat(program_->symbols().Name(d.symbol), "_", rename_counter_));
    renaming[v] = program_->terms().MakeVariable(fresh);
  }
  ++rename_counter_;
  Rule out = rule;
  for (TermId& a : out.head.args) {
    a = ApplySubstitution(program_->terms(), renaming, a);
  }
  for (Literal& b : out.body) {
    for (TermId& a : b.args) {
      a = ApplySubstitution(program_->terms(), renaming, a);
    }
  }
  return out;
}

Result<std::vector<Tuple>> TopDownEvaluator::Solve(const Literal& query) {
  std::vector<Tuple> out;
  Relation seen;
  Substitution subst;
  enough_ = false;
  Status st = SolveGoals({query}, &subst, 0, query, &out, &seen);
  HORNSAFE_RETURN_IF_ERROR(st);
  return out;
}

Status TopDownEvaluator::SolveGoals(std::vector<Literal> goals,
                                    Substitution* subst, size_t depth,
                                    const Literal& query,
                                    std::vector<Tuple>* out,
                                    Relation* seen) {
  if (enough_) return Status::Ok();
  if (++stats_.steps > options_.max_steps) {
    return Status::BudgetExhausted(
        StrCat("SLD resolution exceeded ", options_.max_steps,
               " steps; the query may be unsafe or non-terminating"));
  }
  if (options_.exec.active() &&
      (stats_.steps & (ExecContext::kCheckInterval - 1)) == 0) {
    HORNSAFE_RETURN_IF_ERROR(options_.exec.Check("SLD resolution"));
  }
  if (depth > options_.max_depth) {
    return Status::BudgetExhausted("SLD resolution exceeded maximum depth");
  }
  if (goals.empty()) {
    // Success: record the (possibly non-ground) solution.
    Tuple solution;
    bool ground = true;
    for (TermId a : query.args) {
      TermId g = ApplySubstitution(program_->terms(), *subst, a);
      ground &= program_->terms().IsGround(g);
      solution.push_back(g);
    }
    if (!ground) {
      return Status::UnsafeQuery(
          StrCat("query ", program_->ToString(query),
                 " succeeded with unbound variables (infinitely many "
                 "instances)"));
    }
    if (seen->Insert(solution)) {
      out->push_back(std::move(solution));
      if (options_.max_solutions != 0 &&
          out->size() >= options_.max_solutions) {
        enough_ = true;
      }
    }
    return Status::Ok();
  }

  // Goal selection: first evaluable goal (finite base / derived /
  // supported builtin); infinite goals whose binding pattern is not yet
  // supported — or that have no generator at all — are delayed.
  size_t pick = goals.size();
  bool saw_unregistered = false;
  for (size_t i = 0; i < goals.size(); ++i) {
    PredicateId pred = goals[i].pred;
    if (!program_->IsInfiniteBase(pred)) {
      pick = i;
      break;
    }
    const InfiniteRelation* rel = builtins_->Find(pred);
    if (rel == nullptr) {
      saw_unregistered = true;
      continue;
    }
    AttrSet bound;
    for (uint32_t k = 0; k < goals[i].args.size(); ++k) {
      TermId g = ApplySubstitution(program_->terms(), *subst,
                                   goals[i].args[k]);
      if (program_->terms().IsGround(g)) bound.Add(k);
    }
    if (rel->SupportsBinding(bound)) {
      pick = i;
      break;
    }
  }
  if (pick == goals.size()) {
    if (saw_unregistered) {
      return Status::Unsupported(
          StrCat("no generator registered for infinite predicate '",
                 program_->PredicateName(goals[0].pred),
                 "'; it cannot be solved"));
    }
    return Status::UnsafeQuery(
        StrCat("derivation floundered: every remaining goal enumerates an "
               "infinite relation (first: ",
               program_->ToString(goals[0]), ")"));
  }

  Literal goal = goals[pick];
  goals.erase(goals.begin() + static_cast<ptrdiff_t>(pick));
  PredicateId pred = goal.pred;

  auto try_against_tuple = [&](const Tuple& tuple) -> Status {
    Substitution saved = *subst;
    bool ok = true;
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (!Unify(program_->terms(), goal.args[k], tuple[k], subst)) {
        ok = false;
        break;
      }
    }
    Status st;
    if (ok) st = SolveGoals(goals, subst, depth + 1, query, out, seen);
    *subst = std::move(saved);
    return st;
  };

  if (program_->IsFiniteBase(pred)) {
    for (const Literal* f : facts_by_pred_[pred]) {
      HORNSAFE_RETURN_IF_ERROR(try_against_tuple(f->args));
      if (enough_) return Status::Ok();
    }
    return Status::Ok();
  }

  if (program_->IsInfiniteBase(pred)) {
    const InfiniteRelation* rel = builtins_->Find(pred);
    Tuple partial(goal.args.size(), kInvalidTerm);
    for (size_t k = 0; k < goal.args.size(); ++k) {
      TermId g = ApplySubstitution(program_->terms(), *subst, goal.args[k]);
      if (program_->terms().IsGround(g)) partial[k] = g;
    }
    std::vector<Tuple> matches;
    HORNSAFE_RETURN_IF_ERROR(rel->Enumerate(program_, partial, &matches));
    for (const Tuple& t : matches) {
      HORNSAFE_RETURN_IF_ERROR(try_against_tuple(t));
      if (enough_) return Status::Ok();
    }
    return Status::Ok();
  }

  // Derived: resolve against each rule.
  for (const Rule* r : rules_by_pred_[pred]) {
    ++stats_.rule_resolutions;
    Rule renamed = RenameRule(*r);
    Substitution saved = *subst;
    bool ok = true;
    for (size_t k = 0; k < goal.args.size(); ++k) {
      if (!Unify(program_->terms(), goal.args[k], renamed.head.args[k],
                 subst)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      std::vector<Literal> next = renamed.body;
      next.insert(next.end(), goals.begin(), goals.end());
      HORNSAFE_RETURN_IF_ERROR(
          SolveGoals(std::move(next), subst, depth + 1, query, out, seen));
    }
    *subst = std::move(saved);
    if (enough_) return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace hornsafe
