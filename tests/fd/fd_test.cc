#include "fd/fd.h"

#include <gtest/gtest.h>

namespace hornsafe {
namespace {

FiniteDependency Fd(std::initializer_list<uint32_t> lhs,
                    std::initializer_list<uint32_t> rhs) {
  return FiniteDependency{0, AttrSet::Of(lhs), AttrSet::Of(rhs)};
}

TEST(FdTest, ClosureOfEmptyFdSetIsIdentity) {
  EXPECT_EQ(AttrClosure(AttrSet::Of({0, 2}), {}), AttrSet::Of({0, 2}));
}

TEST(FdTest, ClosureChainsTransitively) {
  std::vector<FiniteDependency> fds = {Fd({0}, {1}), Fd({1}, {2}),
                                       Fd({2}, {3})};
  EXPECT_EQ(AttrClosure(AttrSet::Single(0), fds), AttrSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(AttrClosure(AttrSet::Single(2), fds), AttrSet::Of({2, 3}));
}

TEST(FdTest, ClosureNeedsFullLhs) {
  std::vector<FiniteDependency> fds = {Fd({0, 1}, {2})};
  EXPECT_EQ(AttrClosure(AttrSet::Single(0), fds), AttrSet::Single(0));
  EXPECT_EQ(AttrClosure(AttrSet::Of({0, 1}), fds), AttrSet::Of({0, 1, 2}));
}

TEST(FdTest, ImpliesMatchesPaperExample2) {
  // f(X,Y) with Y = 2*X: f1 ⇝ f2 and f2 ⇝ f1.
  std::vector<FiniteDependency> doubling = {Fd({0}, {1}), Fd({1}, {0})};
  EXPECT_TRUE(Implies(doubling, AttrSet::Single(0), AttrSet::Single(1)));
  EXPECT_TRUE(Implies(doubling, AttrSet::Single(1), AttrSet::Single(0)));

  // f(X,Y) with X < 0, Y > 0: no dependency either way.
  std::vector<FiniteDependency> none = {};
  EXPECT_FALSE(Implies(none, AttrSet::Single(0), AttrSet::Single(1)));
  EXPECT_FALSE(Implies(none, AttrSet::Single(1), AttrSet::Single(0)));

  // f(X,Y) with X > 0, Y in {0,5}: f1 ⇝ f2 only.
  std::vector<FiniteDependency> oneway = {Fd({0}, {1})};
  EXPECT_TRUE(Implies(oneway, AttrSet::Single(0), AttrSet::Single(1)));
  EXPECT_FALSE(Implies(oneway, AttrSet::Single(1), AttrSet::Single(0)));
}

TEST(FdTest, ReflexiveImplicationAlwaysHolds) {
  EXPECT_TRUE(Implies({}, AttrSet::Of({0, 1}), AttrSet::Single(1)));
  EXPECT_TRUE(Implies({}, AttrSet::Of({0, 1}), AttrSet()));
}

TEST(FdTest, EmptyLhsFdMakesAttributeUnconditionallyFinite) {
  std::vector<FiniteDependency> fds = {
      FiniteDependency{0, AttrSet(), AttrSet::Single(1)}};
  EXPECT_TRUE(Implies(fds, AttrSet(), AttrSet::Single(1)));
  EXPECT_EQ(AttrClosure(AttrSet(), fds), AttrSet::Single(1));
}

TEST(FdTest, IsRedundantDetectsImpliedFd) {
  std::vector<FiniteDependency> fds = {Fd({0}, {1}), Fd({1}, {2}),
                                       Fd({0}, {2})};
  EXPECT_TRUE(IsRedundant(fds, 2));   // 0⇝2 follows from the chain
  EXPECT_FALSE(IsRedundant(fds, 0));  // 0⇝1 does not follow from the rest
}

TEST(FdTest, MinimalCoverSplitsAndPrunes) {
  // 0 ⇝ {1,2}, {0,1} ⇝ 2 (extraneous lhs attr 1), 0 ⇝ 2 (redundant).
  std::vector<FiniteDependency> fds = {Fd({0}, {1, 2}), Fd({0, 1}, {2}),
                                       Fd({0}, {2})};
  std::vector<FiniteDependency> cover = MinimalCover(fds);
  // Equivalent: closure of every set matches under both.
  for (uint64_t mask = 0; mask < 8; ++mask) {
    AttrSet s(mask);
    EXPECT_EQ(AttrClosure(s, fds), AttrClosure(s, cover))
        << "closure mismatch for " << s.ToString();
  }
  // Every rhs is a singleton and no trivial or redundant FDs survive.
  for (size_t i = 0; i < cover.size(); ++i) {
    EXPECT_EQ(cover[i].rhs.Count(), 1);
    EXPECT_FALSE(cover[i].rhs.SubsetOf(cover[i].lhs));
    EXPECT_FALSE(IsRedundant(cover, i));
  }
  EXPECT_EQ(cover.size(), 2u);  // 0⇝1 and 0⇝2 (or 1⇝2 variant)
}

TEST(FdTest, DeclaredDeterminants) {
  std::vector<FiniteDependency> fds = {Fd({1, 2}, {0}), Fd({3}, {0, 1}),
                                       Fd({0}, {2})};
  std::vector<AttrSet> det0 = DeclaredDeterminants(fds, 0);
  ASSERT_EQ(det0.size(), 2u);
  EXPECT_EQ(det0[0], AttrSet::Of({1, 2}));
  EXPECT_EQ(det0[1], AttrSet::Of({3}));
  // Attribute 2 is determined only by {0}.
  std::vector<AttrSet> det2 = DeclaredDeterminants(fds, 2);
  ASSERT_EQ(det2.size(), 1u);
  EXPECT_EQ(det2[0], AttrSet::Single(0));
  // A dependency whose lhs contains the attribute itself is not a
  // useful determinant.
  std::vector<FiniteDependency> self = {Fd({0, 1}, {0})};
  EXPECT_TRUE(DeclaredDeterminants(self, 0).empty());
}

TEST(FdTest, MinimalDeterminantsUsesClosure) {
  // 3 ⇝ 1 and 1 ⇝ 0 mean {3} determines 0 transitively.
  std::vector<FiniteDependency> fds = {Fd({3}, {1}), Fd({1}, {0})};
  std::vector<AttrSet> det = MinimalDeterminants(fds, 4, 0);
  // Minimal determinants of 0: {1} and {3}.
  ASSERT_EQ(det.size(), 2u);
  EXPECT_TRUE((det[0] == AttrSet::Single(1) && det[1] == AttrSet::Single(3)) ||
              (det[0] == AttrSet::Single(3) && det[1] == AttrSet::Single(1)));
}

TEST(FdTest, MinimalDeterminantsDropsSupersets) {
  std::vector<FiniteDependency> fds = {Fd({1}, {0}), Fd({1, 2}, {0})};
  std::vector<AttrSet> det = MinimalDeterminants(fds, 3, 0);
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0], AttrSet::Single(1));
}

TEST(FdTest, MinimalDeterminantsEmptyWhenUndetermined) {
  EXPECT_TRUE(MinimalDeterminants({}, 3, 1).empty());
}

TEST(FdTest, MinimalDeterminantsIncludesEmptySetWhenUnconditional) {
  std::vector<FiniteDependency> fds = {
      FiniteDependency{0, AttrSet(), AttrSet::Single(0)}};
  std::vector<AttrSet> det = MinimalDeterminants(fds, 2, 0);
  ASSERT_EQ(det.size(), 1u);
  EXPECT_TRUE(det[0].Empty());
}

TEST(FdTest, FdSetHashIsOrderInvariant) {
  std::vector<FiniteDependency> a = {Fd({3}, {1}), Fd({1}, {0})};
  std::vector<FiniteDependency> b = {Fd({1}, {0}), Fd({3}, {1})};
  EXPECT_EQ(FdSetHash(a), FdSetHash(b));
  // Content still matters: dropping or rewriting a dependency moves it.
  EXPECT_NE(FdSetHash(a), FdSetHash({Fd({3}, {1})}));
  EXPECT_NE(FdSetHash(a), FdSetHash({Fd({3}, {1}), Fd({1}, {2})}));
  EXPECT_NE(FdSetHash({}), FdSetHash({Fd({0}, {1})}));
}

TEST(FdTest, ClosureCacheSharesOneFrozenIndex) {
  FdClosureCache cache;
  std::vector<FiniteDependency> fds = {Fd({3}, {1}), Fd({1}, {0})};
  std::shared_ptr<const FdClosureIndex> first = cache.For(fds, 4, true);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->frozen());
  // The same dependency set — even reordered — returns the *same*
  // frozen object, not an equal copy.
  std::vector<FiniteDependency> reordered = {Fd({1}, {0}), Fd({3}, {1})};
  EXPECT_EQ(cache.For(reordered, 4, true).get(), first.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Arity and closure mode are part of the key.
  EXPECT_NE(cache.For(fds, 5, true).get(), first.get());
  EXPECT_NE(cache.For(fds, 4, false).get(), first.get());
  EXPECT_EQ(cache.size(), 3u);

  // The frozen const lookups answer exactly what the free functions do.
  const std::vector<AttrSet>& min =
      static_cast<const FdClosureIndex&>(*first).Minimal(4, 0);
  EXPECT_EQ(min, MinimalDeterminants(fds, 4, 0));
  EXPECT_EQ(static_cast<const FdClosureIndex&>(*first).Declared(1),
            DeclaredDeterminants(fds, 1));
}

}  // namespace
}  // namespace hornsafe
