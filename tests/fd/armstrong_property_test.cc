// Property tests for Theorem 1 of the paper: the Armstrong axioms
// (reflexivity, augmentation, transitivity) are sound and complete for
// finiteness dependencies.
//
// Three independent characterisations are cross-checked on randomly
// generated FD sets:
//   (1) syntactic Armstrong derivability (ArmstrongEngine saturation),
//   (2) the closure-based implication test (Implies/AttrClosure),
//   (3) semantic entailment over the "standard counterexample" instances
//       (SymbolicInstance): fds ⊨ X⇝Y iff every instance of that family
//       satisfying fds also satisfies X⇝Y.
// Theorem 1 says (1) == (2); the completeness construction says (2) == (3).

#include <gtest/gtest.h>

#include "fd/armstrong.h"
#include "fd/fd.h"
#include "util/rng.h"

namespace hornsafe {
namespace {

std::vector<FiniteDependency> RandomFds(Rng* rng, uint32_t arity,
                                        int count) {
  std::vector<FiniteDependency> out;
  uint64_t universe = (uint64_t{1} << arity) - 1;
  for (int i = 0; i < count; ++i) {
    AttrSet lhs(rng->Next() & universe);
    AttrSet rhs(rng->Next() & universe);
    out.push_back(FiniteDependency{0, lhs, rhs});
  }
  return out;
}

/// Semantic entailment over all 2^arity symbolic instances.
bool SemanticallyEntails(const std::vector<FiniteDependency>& fds,
                         uint32_t arity, AttrSet lhs, AttrSet rhs) {
  uint64_t limit = uint64_t{1} << arity;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    SymbolicInstance inst{AttrSet(mask)};
    if (!inst.SatisfiesAll(fds)) continue;
    if (!inst.Satisfies(FiniteDependency{0, lhs, rhs})) return false;
  }
  return true;
}

class ArmstrongPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArmstrongPropertyTest, AxiomsMatchClosureAndSemantics) {
  const uint32_t kArity = 4;
  Rng rng(GetParam());
  std::vector<FiniteDependency> fds =
      RandomFds(&rng, kArity, static_cast<int>(rng.Range(0, 5)));

  ArmstrongEngine engine(kArity, fds);
  engine.Saturate();

  uint64_t limit = uint64_t{1} << kArity;
  for (uint64_t l = 0; l < limit; ++l) {
    for (uint64_t r = 0; r < limit; ++r) {
      AttrSet lhs(l), rhs(r);
      bool derivable = engine.Derivable(lhs, rhs);
      bool implied = Implies(fds, lhs, rhs);
      bool semantic = SemanticallyEntails(fds, kArity, lhs, rhs);
      EXPECT_EQ(derivable, implied)
          << "Theorem 1 soundness/completeness violated for " << lhs.ToString()
          << " -> " << rhs.ToString();
      EXPECT_EQ(implied, semantic)
          << "closure test disagrees with semantic entailment for "
          << lhs.ToString() << " -> " << rhs.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ArmstrongPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(ArmstrongEngineTest, ReflexivityAlone) {
  ArmstrongEngine engine(3, {});
  engine.Saturate();
  // X ⇝ Y derivable iff Y ⊆ X when no base FDs exist.
  for (uint64_t l = 0; l < 8; ++l) {
    for (uint64_t r = 0; r < 8; ++r) {
      EXPECT_EQ(engine.Derivable(AttrSet(l), AttrSet(r)),
                AttrSet(r).SubsetOf(AttrSet(l)));
    }
  }
}

TEST(ArmstrongEngineTest, UnionRuleIsDerived) {
  // X ⇝ Y and X ⇝ Z derive X ⇝ YZ (a consequence of the three axioms).
  std::vector<FiniteDependency> fds = {
      FiniteDependency{0, AttrSet::Single(0), AttrSet::Single(1)},
      FiniteDependency{0, AttrSet::Single(0), AttrSet::Single(2)}};
  ArmstrongEngine engine(3, fds);
  engine.Saturate();
  EXPECT_TRUE(engine.Derivable(AttrSet::Single(0), AttrSet::Of({1, 2})));
}

TEST(ArmstrongEngineTest, DecompositionRuleIsDerived) {
  // X ⇝ YZ derives X ⇝ Y.
  std::vector<FiniteDependency> fds = {
      FiniteDependency{0, AttrSet::Single(0), AttrSet::Of({1, 2})}};
  ArmstrongEngine engine(3, fds);
  engine.Saturate();
  EXPECT_TRUE(engine.Derivable(AttrSet::Single(0), AttrSet::Single(1)));
  EXPECT_TRUE(engine.Derivable(AttrSet::Single(0), AttrSet::Single(2)));
}

TEST(ArmstrongEngineTest, PseudoTransitivityIsDerived) {
  // X ⇝ Y and WY ⇝ Z derive WX ⇝ Z.
  std::vector<FiniteDependency> fds = {
      FiniteDependency{0, AttrSet::Single(0), AttrSet::Single(1)},
      FiniteDependency{0, AttrSet::Of({1, 3}), AttrSet::Single(2)}};
  ArmstrongEngine engine(4, fds);
  engine.Saturate();
  EXPECT_TRUE(engine.Derivable(AttrSet::Of({0, 3}), AttrSet::Single(2)));
}

TEST(SymbolicInstanceTest, FiniteRelationSatisfiesEverything) {
  // The instance where all attributes are finite satisfies every FD —
  // the paper notes FDs hold trivially for all finite predicates.
  SymbolicInstance inst{AttrSet::AllBelow(4)};
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    std::vector<FiniteDependency> fds = RandomFds(&rng, 4, 3);
    EXPECT_TRUE(inst.SatisfiesAll(fds));
  }
}

}  // namespace
}  // namespace hornsafe
