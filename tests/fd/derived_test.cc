// Tests for finiteness-dependency inference over derived predicates.

#include "fd/derived.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

Program Parse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<FiniteDependency> For(const Program& p, const char* name,
                                  uint32_t arity) {
  PredicateId pred = p.FindPredicate(name, arity);
  EXPECT_NE(pred, kInvalidPredicate);
  std::vector<FiniteDependency> out;
  for (const FiniteDependency& fd : InferDerivedFds(p)) {
    if (fd.pred == pred) out.push_back(fd);
  }
  return out;
}

bool Holds(const Program& p, const char* name, uint32_t arity,
           std::initializer_list<uint32_t> lhs,
           std::initializer_list<uint32_t> rhs) {
  return DerivedFdHolds(p, p.FindPredicate(name, arity), AttrSet::Of(lhs),
                        AttrSet::Of(rhs));
}

TEST(DerivedFdTest, CopiesEdbDependencyThroughSimpleRule) {
  Program p = Parse(R"(
    .infinite f/2.
    .fd f: 1 -> 2.
    r(X,Y) :- f(X,Y).
  )");
  EXPECT_TRUE(Holds(p, "r", 2, {0}, {1}));
  EXPECT_FALSE(Holds(p, "r", 2, {1}, {0}));
}

TEST(DerivedFdTest, ComposesAcrossJoins) {
  // r(X,Z) :- f(X,Y), g(Y,Z): 1 ⇝ 2 composes through the join.
  Program p = Parse(R"(
    .infinite f/2.
    .infinite g/2.
    .fd f: 1 -> 2.
    .fd g: 1 -> 2.
    r(X,Z) :- f(X,Y), g(Y,Z).
  )");
  EXPECT_TRUE(Holds(p, "r", 2, {0}, {1}));
  EXPECT_FALSE(Holds(p, "r", 2, {1}, {0}));
}

TEST(DerivedFdTest, FiniteBaseGroundsEverything) {
  Program p = Parse(R"(
    r(X,Y) :- b(X,Y).
  )");
  // Both columns of a finite-base projection are unconditionally finite.
  EXPECT_TRUE(Holds(p, "r", 2, {}, {0, 1}));
}

TEST(DerivedFdTest, MultipleRulesIntersect) {
  // Rule 1 transfers 1⇝2 (via f); rule 2 transfers it trivially (b
  // grounds everything); rule 3 breaks it (g has no FDs).
  Program p = Parse(R"(
    .infinite f/2.
    .infinite g/2.
    .fd f: 1 -> 2.
    r(X,Y) :- f(X,Y).
    s(X,Y) :- f(X,Y).
    s(X,Y) :- b(X,Y).
    t(X,Y) :- f(X,Y).
    t(X,Y) :- g(X,Y).
  )");
  EXPECT_TRUE(Holds(p, "r", 2, {0}, {1}));
  EXPECT_TRUE(Holds(p, "s", 2, {0}, {1}));
  EXPECT_FALSE(Holds(p, "t", 2, {0}, {1}));
}

TEST(DerivedFdTest, RecursionGreatestFixpoint) {
  // Recursive copy: the dependency survives through the recursion
  // (coinductively), exactly like the base rule.
  Program p = Parse(R"(
    .infinite f/2.
    .fd f: 1 -> 2.
    .fd f: 2 -> 1.
    r(X,Y) :- f(X,Y).
    r(X,Y) :- f(X,Z), r(Z,Y).
  )");
  EXPECT_TRUE(Holds(p, "r", 2, {0}, {1}));
  // The reverse direction also survives: f is invertible both ways and
  // the recursion preserves it.
  EXPECT_TRUE(Holds(p, "r", 2, {1}, {0}));
}

TEST(DerivedFdTest, RecursionBreaksDependencyWhenStepLosesIt) {
  // The recursive step uses a one-way f, so 2 ⇝ 1 must be discarded.
  Program p = Parse(R"(
    .infinite f/2.
    .fd f: 1 -> 2.
    r(X,Y) :- f(X,Y).
    r(X,Y) :- f(X,Z), r(Z,Y).
  )");
  EXPECT_TRUE(Holds(p, "r", 2, {0}, {1}));
  EXPECT_FALSE(Holds(p, "r", 2, {1}, {0}));
}

TEST(DerivedFdTest, RangeUnrestrictedColumnHasNoDependencies) {
  Program p = Parse(R"(
    r(X,Y) :- b(X).
  )");
  // Y is unbound: nothing determines it.
  EXPECT_FALSE(Holds(p, "r", 2, {0}, {1}));
  EXPECT_FALSE(Holds(p, "r", 2, {}, {1}));
  // X is still unconditionally finite.
  EXPECT_TRUE(Holds(p, "r", 2, {}, {0}));
}

TEST(DerivedFdTest, ChainsThroughDerivedBodies) {
  Program p = Parse(R"(
    .infinite f/2.
    .fd f: 1 -> 2.
    mid(X,Y) :- f(X,Y).
    top(X,Y) :- mid(X,Y).
  )");
  EXPECT_TRUE(Holds(p, "top", 2, {0}, {1}));
}

TEST(DerivedFdTest, MinimalOutputsOnly) {
  Program p = Parse(R"(
    .infinite f/2.
    .fd f: 1 -> 2.
    r(X,Y) :- f(X,Y).
  )");
  std::vector<FiniteDependency> fds = For(p, "r", 2);
  // {1}⇝{2} should appear; its augmentations ({1,2}⇝... or strictly
  // larger left-hand sides with the same rhs) should not.
  bool found = false;
  for (const FiniteDependency& fd : fds) {
    EXPECT_FALSE(fd.rhs.SubsetOf(fd.lhs));
    if (fd.lhs == AttrSet::Single(0) && fd.rhs == AttrSet::Single(1)) {
      found = true;
    }
    if (fd.rhs == AttrSet::Single(1)) {
      EXPECT_TRUE(fd.lhs.Contains(0) || fd.lhs.Empty())
          << "non-minimal lhs " << fd.lhs.ToString();
    }
  }
  EXPECT_TRUE(found);
}

TEST(DerivedFdTest, SoundnessSweepAgainstTrivialPrograms) {
  // Every inferred dependency on a non-recursive program over finite
  // base predicates must be trivially true (finite relations satisfy
  // all FDs) — i.e. inference never crashes or contradicts itself.
  Program p = Parse(R"(
    a(1,2). a(2,3).
    j(X,Z) :- a(X,Y), a(Y,Z).
    u(X,Y) :- a(X,Y).
    u(X,Y) :- a(Y,X).
  )");
  std::vector<FiniteDependency> fds = InferDerivedFds(p);
  EXPECT_FALSE(fds.empty());
  for (const FiniteDependency& fd : fds) {
    EXPECT_TRUE(p.IsDerived(fd.pred));
  }
  // Finite-base-only programs: every column unconditionally finite.
  EXPECT_TRUE(Holds(p, "j", 2, {}, {0, 1}));
  EXPECT_TRUE(Holds(p, "u", 2, {}, {0, 1}));
}

}  // namespace
}  // namespace hornsafe
