// Property sweep: naive and semi-naive bottom-up evaluation compute
// identical fixpoints on random finite programs, and semi-naive never
// does more rule work.

#include <gtest/gtest.h>

#include "eval/bottomup.h"
#include "parser/parser.h"
#include "util/rng.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

std::string RandomGraphProgram(Rng* rng) {
  int n = 3 + static_cast<int>(rng->Below(5));
  std::string text;
  int edges = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng->Chance(1, 3)) {
        text += StrCat("edge(", i, ",", j, ").\n");
        ++edges;
      }
    }
  }
  if (edges == 0) text += "edge(0,1).\n";
  // Random rule shape: left- or right-recursive closure, plus an
  // occasional second derived predicate.
  if (rng->Chance(1, 2)) {
    text +=
        "path(X,Y) :- edge(X,Y).\n"
        "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  } else {
    text +=
        "path(X,Y) :- edge(X,Y).\n"
        "path(X,Y) :- edge(X,Z), path(Z,Y).\n";
  }
  if (rng->Chance(1, 2)) {
    text += "looped(X) :- path(X,X).\n";
  }
  return text;
}

class SemiNaiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemiNaiveTest, AgreesWithNaiveAndDoesLessWork) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    std::string text = RandomGraphProgram(&rng);
    auto p1 = ParseProgram(text);
    auto p2 = ParseProgram(text);
    ASSERT_TRUE(p1.ok() && p2.ok()) << text;

    BuiltinRegistry reg1, reg2;
    BottomUpOptions semi;
    semi.semi_naive = true;
    BottomUpOptions naive;
    naive.semi_naive = false;
    BottomUpEvaluator e1(&p1.value(), &reg1, semi);
    BottomUpEvaluator e2(&p2.value(), &reg2, naive);
    ASSERT_TRUE(e1.Run().ok()) << text;
    ASSERT_TRUE(e2.Run().ok()) << text;

    for (PredicateId pred = 0; pred < p1->num_predicates(); ++pred) {
      if (!p1->IsDerived(pred)) continue;
      const Relation& r1 = e1.RelationFor(pred);
      const Relation& r2 = e2.RelationFor(pred);
      ASSERT_EQ(r1.size(), r2.size())
          << p1->PredicateName(pred) << " differs on:\n" << text;
      for (TupleView t : r1) {
        EXPECT_TRUE(r2.Contains(t));
      }
    }
    EXPECT_LE(e1.stats().rule_firings, e2.stats().rule_firings) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaiveTest,
                         ::testing::Range<uint64_t>(100, 110));

}  // namespace
}  // namespace hornsafe
