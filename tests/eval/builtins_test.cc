#include "eval/builtins.h"

#include <gtest/gtest.h>

namespace hornsafe {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterStandardBuiltins(&program_, &registry_).ok());
  }

  const InfiniteRelation* Rel(const char* name, uint32_t arity) {
    PredicateId p = program_.FindPredicate(name, arity);
    EXPECT_NE(p, kInvalidPredicate);
    return registry_.Find(p);
  }

  std::vector<Tuple> Enumerate(const InfiniteRelation* rel, Tuple partial) {
    std::vector<Tuple> out;
    Status st = rel->Enumerate(&program_, partial, &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  Program program_;
  BuiltinRegistry registry_;
};

TEST_F(BuiltinsTest, RegistrationDeclaresInfiniteAndAttachesFds) {
  PredicateId succ = program_.FindPredicate("successor", 2);
  ASSERT_NE(succ, kInvalidPredicate);
  EXPECT_TRUE(program_.IsInfiniteBase(succ));
  EXPECT_EQ(program_.FdsFor(succ).size(), 2u);
  EXPECT_EQ(program_.MonosFor(succ).size(), 1u);
  PredicateId plus = program_.FindPredicate("plus", 3);
  EXPECT_EQ(program_.FdsFor(plus).size(), 3u);
}

TEST_F(BuiltinsTest, SuccessorForwardAndBackward) {
  const InfiniteRelation* succ = Rel("successor", 2);
  ASSERT_NE(succ, nullptr);
  EXPECT_TRUE(succ->SupportsBinding(AttrSet::Single(0)));
  EXPECT_TRUE(succ->SupportsBinding(AttrSet::Single(1)));
  EXPECT_FALSE(succ->SupportsBinding(AttrSet()));

  auto fwd = Enumerate(succ, {program_.Int(4), kInvalidTerm});
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0][1], program_.Int(5));

  auto bwd = Enumerate(succ, {kInvalidTerm, program_.Int(4)});
  ASSERT_EQ(bwd.size(), 1u);
  EXPECT_EQ(bwd[0][0], program_.Int(3));

  EXPECT_EQ(Enumerate(succ, {program_.Int(1), program_.Int(2)}).size(), 1u);
  EXPECT_EQ(Enumerate(succ, {program_.Int(1), program_.Int(3)}).size(), 0u);
  // Non-integer arguments simply never match.
  EXPECT_EQ(Enumerate(succ, {program_.Atom("a"), kInvalidTerm}).size(), 0u);
}

TEST_F(BuiltinsTest, PlusSolvesAnyTwo) {
  const InfiniteRelation* plus = Rel("plus", 3);
  EXPECT_FALSE(plus->SupportsBinding(AttrSet::Single(0)));
  EXPECT_TRUE(plus->SupportsBinding(AttrSet::Of({0, 1})));

  auto z = Enumerate(plus, {program_.Int(2), program_.Int(3), kInvalidTerm});
  ASSERT_EQ(z.size(), 1u);
  EXPECT_EQ(z[0][2], program_.Int(5));
  auto y = Enumerate(plus, {program_.Int(2), kInvalidTerm, program_.Int(5)});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0][1], program_.Int(3));
  auto x = Enumerate(plus, {kInvalidTerm, program_.Int(3), program_.Int(5)});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0][0], program_.Int(2));
  EXPECT_EQ(
      Enumerate(plus, {program_.Int(1), program_.Int(1), program_.Int(3)})
          .size(),
      0u);
}

TEST_F(BuiltinsTest, TimesHandlesDivisibility) {
  const InfiniteRelation* times = Rel("times", 3);
  auto z =
      Enumerate(times, {program_.Int(3), program_.Int(4), kInvalidTerm});
  ASSERT_EQ(z.size(), 1u);
  EXPECT_EQ(z[0][2], program_.Int(12));
  // 12 / 4 = 3.
  auto x =
      Enumerate(times, {kInvalidTerm, program_.Int(4), program_.Int(12)});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0][0], program_.Int(3));
  // 7 not divisible by 2: no solutions.
  EXPECT_EQ(
      Enumerate(times, {kInvalidTerm, program_.Int(2), program_.Int(7)})
          .size(),
      0u);
  // 0 * X = 5: no solutions.
  EXPECT_EQ(
      Enumerate(times, {program_.Int(0), kInvalidTerm, program_.Int(5)})
          .size(),
      0u);
  // 0 * X = 0: infinitely many solutions -> error.
  std::vector<Tuple> out;
  Status st = times->Enumerate(
      &program_, {program_.Int(0), kInvalidTerm, program_.Int(0)}, &out);
  EXPECT_EQ(st.code(), StatusCode::kUnsafeQuery);
}

TEST_F(BuiltinsTest, LessIsATest) {
  const InfiniteRelation* less = Rel("less", 2);
  EXPECT_FALSE(less->SupportsBinding(AttrSet::Single(0)));
  EXPECT_TRUE(less->SupportsBinding(AttrSet::Of({0, 1})));
  EXPECT_EQ(Enumerate(less, {program_.Int(1), program_.Int(2)}).size(), 1u);
  EXPECT_EQ(Enumerate(less, {program_.Int(2), program_.Int(2)}).size(), 0u);
  EXPECT_EQ(Enumerate(less, {program_.Int(3), program_.Int(2)}).size(), 0u);
}

TEST_F(BuiltinsTest, IntegerMembership) {
  const InfiniteRelation* integer = Rel("integer", 1);
  EXPECT_EQ(Enumerate(integer, {program_.Int(42)}).size(), 1u);
  EXPECT_EQ(Enumerate(integer, {program_.Atom("a")}).size(), 0u);
  EXPECT_FALSE(integer->SupportsBinding(AttrSet()));
}

TEST_F(BuiltinsTest, BetweenEnumeratesBoundedRanges) {
  const InfiniteRelation* between = Rel("between", 3);
  EXPECT_TRUE(between->SupportsBinding(AttrSet::Of({0, 1})));
  EXPECT_TRUE(between->SupportsBinding(AttrSet::Single(2)));
  EXPECT_FALSE(between->SupportsBinding(AttrSet::Single(0)));

  auto range =
      Enumerate(between, {program_.Int(2), program_.Int(5), kInvalidTerm});
  ASSERT_EQ(range.size(), 4u);  // 2,3,4,5
  EXPECT_EQ(range.front()[2], program_.Int(2));
  EXPECT_EQ(range.back()[2], program_.Int(5));
  // Empty range.
  EXPECT_TRUE(
      Enumerate(between, {program_.Int(5), program_.Int(2), kInvalidTerm})
          .empty());
  // Membership.
  EXPECT_EQ(Enumerate(between,
                      {program_.Int(1), program_.Int(9), program_.Int(4)})
                .size(),
            1u);
  EXPECT_EQ(Enumerate(between,
                      {program_.Int(1), program_.Int(9), program_.Int(40)})
                .size(),
            0u);
  // Range budget.
  std::vector<Tuple> out;
  Status st = between->Enumerate(
      &program_, {program_.Int(0), program_.Int(10'000'000), kInvalidTerm},
      &out);
  EXPECT_EQ(st.code(), StatusCode::kBudgetExhausted);
}

TEST_F(BuiltinsTest, BetweenMakesRangeQueriesAnalyzablySafe) {
  PredicateId between = program_.FindPredicate("between", 3);
  std::vector<FiniteDependency> fds = program_.FdsFor(between);
  ASSERT_EQ(fds.size(), 1u);
  EXPECT_EQ(fds[0].lhs, AttrSet::Of({0, 1}));
  EXPECT_EQ(fds[0].rhs, AttrSet::Single(2));
}

TEST_F(BuiltinsTest, AbsBothDirections) {
  const InfiniteRelation* abs = Rel("abs", 2);
  auto fwd = Enumerate(abs, {program_.Int(-7), kInvalidTerm});
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0][1], program_.Int(7));
  // Backward: two preimages.
  auto bwd = Enumerate(abs, {kInvalidTerm, program_.Int(7)});
  EXPECT_EQ(bwd.size(), 2u);
  // |X| = 0 has a single preimage.
  EXPECT_EQ(Enumerate(abs, {kInvalidTerm, program_.Int(0)}).size(), 1u);
  // Negative absolute values are impossible.
  EXPECT_TRUE(Enumerate(abs, {kInvalidTerm, program_.Int(-3)}).empty());
}

TEST_F(BuiltinsTest, ModCanonicalResidue) {
  const InfiniteRelation* mod = Rel("mod", 3);
  auto r = Enumerate(mod, {program_.Int(7), program_.Int(3), kInvalidTerm});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0][2], program_.Int(1));
  // Canonical non-negative residue for negative dividends.
  auto neg =
      Enumerate(mod, {program_.Int(-7), program_.Int(3), kInvalidTerm});
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[0][2], program_.Int(2));
  // Non-positive modulus: no tuples.
  EXPECT_TRUE(
      Enumerate(mod, {program_.Int(7), program_.Int(0), kInvalidTerm})
          .empty());
  // Test form.
  EXPECT_EQ(Enumerate(mod, {program_.Int(7), program_.Int(3),
                            program_.Int(1)})
                .size(),
            1u);
}

TEST_F(BuiltinsTest, ConstructorBuildsAndDestructures) {
  SymbolId cons = program_.symbols().Intern(TermPool::kConsName);
  auto rel = MakeConstructorRelation(cons, 2);
  ASSERT_TRUE(registry_.Register(&program_, "fn_cons", 2 + 1, rel).ok());

  TermId one = program_.Int(1);
  TermId nil = program_.Atom(TermPool::kNilName);
  // Build [1].
  std::vector<Tuple> built;
  ASSERT_TRUE(
      rel->Enumerate(&program_, {one, nil, kInvalidTerm}, &built).ok());
  ASSERT_EQ(built.size(), 1u);
  TermId list = built[0][2];
  EXPECT_EQ(program_.terms().ToString(list, program_.symbols()), "[1]");
  // Destructure it.
  std::vector<Tuple> parts;
  ASSERT_TRUE(
      rel->Enumerate(&program_, {kInvalidTerm, kInvalidTerm, list}, &parts)
          .ok());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0][0], one);
  EXPECT_EQ(parts[0][1], nil);
  // Destructuring a non-cons term yields nothing.
  std::vector<Tuple> none;
  ASSERT_TRUE(
      rel->Enumerate(&program_, {kInvalidTerm, kInvalidTerm, one}, &none)
          .ok());
  EXPECT_TRUE(none.empty());
  // Constructor FDs: both directions.
  PredicateId pred = program_.FindPredicate("fn_cons", 3);
  EXPECT_EQ(program_.FdsFor(pred).size(), 2u);
}

TEST_F(BuiltinsTest, RegisterRejectsDerivedPredicate) {
  Literal head = program_.MakeLiteral("d", {program_.Var("X")});
  ASSERT_TRUE(program_.AddRule(Rule{head, {}}).ok());
  BuiltinRegistry reg;
  Status st = reg.Register(&program_, "d", 1, MakeIntegerRelation());
  EXPECT_FALSE(st.ok());
}

TEST_F(BuiltinsTest, ReRegistrationDoesNotDuplicateConstraints) {
  PredicateId succ = program_.FindPredicate("successor", 2);
  size_t fds = program_.FdsFor(succ).size();
  size_t monos = program_.MonosFor(succ).size();
  BuiltinRegistry reg2;
  ASSERT_TRUE(
      reg2.Register(&program_, "successor", 2, MakeSuccessorRelation()).ok());
  EXPECT_EQ(program_.FdsFor(succ).size(), fds);
  EXPECT_EQ(program_.MonosFor(succ).size(), monos);
}

}  // namespace
}  // namespace hornsafe
