#include "eval/engine.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

Result<Engine> Make(const char* text, EngineOptions opts = {}) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return Engine::Create(std::move(parsed).value(), opts);
}

TEST(EngineTest, SafeQueryRunsBottomUp) {
  auto e = Make(R"(
    edge(1,2). edge(2,3).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto r = e->Query("path(X,Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->safety, Safety::kSafe);
  EXPECT_EQ(r->strategy, "bottom-up");
  EXPECT_EQ(r->tuples.size(), 3u);
}

TEST(EngineTest, UnsafeQueryRefused) {
  auto e = Make(R"(
    .infinite f/2.
    r(X) :- f(X,Y), b(Y).
    b(1).
  )");
  ASSERT_TRUE(e.ok());
  auto r = e->Query("r(X)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafeQuery);
  EXPECT_NE(r.status().message().find("refusing to evaluate"),
            std::string::npos);
}

TEST(EngineTest, EnforcementCanBeDisabled) {
  EngineOptions opts;
  opts.enforce_safety = false;
  opts.bottom_up.max_tuples = 50;
  opts.top_down.max_steps = 5000;
  auto e = Make(R"(
    .infinite successor/2.
    count(1).
    count(J) :- count(I), successor(I,J).
  )",
                opts);
  ASSERT_TRUE(e.ok());
  auto r = e->Query("count(X)");
  // Evaluation proceeds but trips the budget guard.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted);
}

TEST(EngineTest, BoundQueryRunsTopDown) {
  auto e = Make(R"(
    concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
    concat([], Z, Z).
  )");
  ASSERT_TRUE(e.ok());
  // concat with the third argument bound is safe: the constructor FDs
  // let the bound list determine the splits.
  auto r = e->Query("concat(A, B, [1,2])");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->strategy, "top-down");
  EXPECT_EQ(r->tuples.size(), 3u);
}

TEST(EngineTest, ConcatAllFreeIsRefused) {
  auto e = Make(R"(
    concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
    concat([], Z, Z).
  )");
  ASSERT_TRUE(e.ok());
  auto r = e->Query("concat(A, B, C)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafeQuery);
}

TEST(EngineTest, StandardBuiltinsAreAnalyzableAndCallable) {
  auto e = Make("seed(1).");
  ASSERT_TRUE(e.ok());
  // successor(3, X): safe via the FD 1 -> 2 and evaluable.
  auto r = e->Query("successor(3, X)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 1u);
  EXPECT_EQ(r->tuples[0][1], e->program().Int(4));
  // successor(X, Y) free: refused.
  auto bad = e->Query("successor(X, Y)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsafeQuery);
}

TEST(EngineTest, AnalyzeReportsPerArgumentVerdicts) {
  auto e = Make(R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    r(X,Y) :- f(X,Y), a(Y).
    a(1).
  )");
  ASSERT_TRUE(e.ok());
  Literal q = e->program().MakeLiteral(
      "r", {e->program().Var("X"), e->program().Var("Y")});
  auto analysis = e->Analyze(q);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->overall, Safety::kSafe);
  ASSERT_EQ(analysis->args.size(), 2u);
  EXPECT_EQ(analysis->args[0].safety, Safety::kSafe);
  EXPECT_EQ(analysis->args[1].safety, Safety::kSafe);
}

TEST(EngineTest, GroundArgumentsCountAsBound) {
  auto e = Make(R"(
    r(X,Y) :- successor(X,Y), b(X).
    b(1).
  )");
  ASSERT_TRUE(e.ok());
  // r(X,Y) free is safe: X from b, Y via the successor FD 1 -> 2.
  auto free = e->Query("r(X,Y)");
  ASSERT_TRUE(free.ok()) << free.status().ToString();
  ASSERT_EQ(free->tuples.size(), 1u);
  EXPECT_EQ(free->tuples[0][1], e->program().Int(2));
  // Membership test with both bound is also safe (and false here).
  auto bound = e->Query("r(1, 5)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_TRUE(bound->tuples.empty());
}

TEST(EngineTest, CustomBuiltinRegistration) {
  auto e = Make("seed(2).");
  ASSERT_TRUE(e.ok());
  SymbolId pair_sym = e->program().symbols().Intern("pair");
  ASSERT_TRUE(
      e->RegisterBuiltin("mk_pair", 3, MakeConstructorRelation(pair_sym, 2))
          .ok());
  auto r = e->Query("mk_pair(1, 2, P)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 1u);
  EXPECT_EQ(e->program().terms().ToString(r->tuples[0][2],
                                          e->program().symbols()),
            "pair(1,2)");
}

TEST(EngineTest, QueryTextParseErrorsSurface) {
  auto e = Make("b(1).");
  ASSERT_TRUE(e.ok());
  auto r = e->Query("b(");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(EngineTest, BetweenRangeQueryEndToEnd) {
  auto e = Make(R"(
    node(3). node(7). node(12).
    in_range(L, H, X) :- between(L, H, X), node(X).
  )");
  ASSERT_TRUE(e.ok());
  // Bound range: safe through the {1,2} -> 3 dependency and evaluable.
  auto r = e->Query("in_range(1, 10, X)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 2u);  // 3 and 7
  // Free range ends: refused.
  auto bad = e->Query("in_range(L, H, 3)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsafeQuery);
}

TEST(EngineTest, AbsAndModEndToEnd) {
  auto e = Make(R"(
    reading(-7). reading(4).
    magnitude(M) :- reading(X), abs(X, M).
    parity(P) :- reading(X), abs(X, M), mod(M, 2, P).
  )");
  ASSERT_TRUE(e.ok());
  auto mags = e->Query("magnitude(M)");
  ASSERT_TRUE(mags.ok()) << mags.status().ToString();
  EXPECT_EQ(mags->tuples.size(), 2u);  // 7 and 4
  auto parities = e->Query("parity(P)");
  ASSERT_TRUE(parities.ok()) << parities.status().ToString();
  EXPECT_EQ(parities->tuples.size(), 2u);  // 1 and 0
}

TEST(EngineTest, PaperExample1EndToEnd) {
  // The full Example 1 flow: the all-free ancestor query is refused
  // (cyclic parent data could make J unbounded), while the J-bound
  // variant evaluates.
  auto e = Make(R"(
    parent(cain, adam).
    parent(abel, adam).
    parent(sem, abel).
    ancestor(X,Y,1) :- parent(X,Y).
    ancestor(X,Y,J) :- parent(X,Z), ancestor(Z,Y,I), successor(I,J).
  )");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto free = e->Query("ancestor(sem, Y, J)");
  ASSERT_FALSE(free.ok());
  EXPECT_EQ(free.status().code(), StatusCode::kUnsafeQuery);

  auto bound = e->Query("ancestor(sem, Y, 2)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->strategy, "top-down");
  ASSERT_EQ(bound->tuples.size(), 1u);
  EXPECT_EQ(bound->tuples[0][1], e->program().Atom("adam"));
}

}  // namespace
}  // namespace hornsafe
