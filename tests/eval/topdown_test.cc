#include "eval/topdown.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

struct Setup {
  Program program;
  BuiltinRegistry registry;
};

std::unique_ptr<Setup> Make(const char* text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto s = std::make_unique<Setup>();
  s->program = std::move(parsed).value();
  Status st = RegisterStandardBuiltins(&s->program, &s->registry);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

Result<std::vector<Tuple>> Solve(Setup* s, const char* query,
                                 TopDownOptions opts = {}) {
  auto lit = ParseLiteralInto(query, &s->program);
  EXPECT_TRUE(lit.ok()) << lit.status().ToString();
  TopDownEvaluator eval(&s->program, &s->registry, opts);
  return eval.Solve(*lit);
}

TEST(TopDownTest, FactLookup) {
  auto s = Make("parent(sem, abel). parent(cain, adam).");
  auto result = Solve(s.get(), "parent(sem, X)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0][1], s->program.Atom("abel"));
}

TEST(TopDownTest, Example7ConcatForward) {
  // concat([1,2], [3], C) resolves structurally.
  auto s = Make(R"(
    concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
    concat([], Z, Z).
  )");
  auto result = Solve(s.get(), "concat([1,2],[3],C)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(s->program.terms().ToString((*result)[0][2],
                                        s->program.symbols()),
            "[1,2,3]");
}

TEST(TopDownTest, Example7ConcatBackward) {
  // Running concat backwards splits the bound result list: 4 splits of
  // a 3-element list.
  auto s = Make(R"(
    concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
    concat([], Z, Z).
  )");
  auto result = Solve(s.get(), "concat(A, B, [1,2,3])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 4u);
}

TEST(TopDownTest, ArithmeticGoalsDelayUntilBound) {
  // plus(X,Y,Z) appears before its inputs are bound; the selector must
  // delay it behind the fact goals.
  auto s = Make(R"(
    .infinite plus/3.
    v(10). w(32).
    answer(Z) :- plus(X, Y, Z), v(X), w(Y).
  )");
  auto result = Solve(s.get(), "answer(Z)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0][0], s->program.Int(42));
}

TEST(TopDownTest, FlounderingReportedAsUnsafe) {
  auto s = Make(R"(
    .infinite successor/2.
    r(X,Y) :- successor(X,Y).
  )");
  auto result = Solve(s.get(), "r(X,Y)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsafeQuery);
  EXPECT_NE(result.status().message().find("floundered"), std::string::npos);
}

TEST(TopDownTest, BoundArithmeticChain) {
  auto s = Make(R"(
    .infinite successor/2.
    two_after(X, Z) :- successor(X, Y), successor(Y, Z).
  )");
  auto result = Solve(s.get(), "two_after(5, Z)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0][1], s->program.Int(7));
}

TEST(TopDownTest, RecursiveAncestorBoundSubject) {
  auto s = Make(R"(
    .infinite successor/2.
    parent(sem, abel).
    parent(abel, adam).
    parent(abel, eve).
    ancestor(X,Y,1) :- parent(X,Y).
    ancestor(X,Y,J) :- parent(X,Z), ancestor(Z,Y,I), successor(I,J).
  )");
  auto result = Solve(s.get(), "ancestor(sem, Y, J)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // abel at level 1; adam, eve at level 2.
  EXPECT_EQ(result->size(), 3u);
}

TEST(TopDownTest, StepBudgetCatchesInfiniteDerivation) {
  // Left-recursion with no data: SLD loops; the budget fires.
  auto s = Make(R"(
    p(X) :- p(X).
    p(1).
  )");
  TopDownOptions opts;
  opts.max_steps = 1000;
  auto result = Solve(s.get(), "p(2)", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExhausted);
}

TEST(TopDownTest, MaxSolutionsStopsEarly) {
  auto s = Make("n(1). n(2). n(3). n(4).");
  TopDownOptions opts;
  opts.max_solutions = 2;
  auto result = Solve(s.get(), "n(X)", opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(TopDownTest, NonGroundSuccessIsUnsafe) {
  // r(X) :- b: succeeds with X unbound -> infinitely many instances.
  auto s = Make(R"(
    flag.
    r(X) :- flag.
  )");
  auto result = Solve(s.get(), "r(X)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsafeQuery);
}

TEST(TopDownTest, SolutionsAreDeduplicated) {
  auto s = Make(R"(
    e(1,2). e(2,3).
    reach(X,Y) :- e(X,Y).
    reach(X,Y) :- e(X,Z), reach(Z,Y).
    twice(X) :- e(X,Y).
    twice(X) :- reach(X,Y).
  )");
  auto result = Solve(s.get(), "twice(1)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(TopDownTest, ZeroArityGoals) {
  auto s = Make(R"(
    rain.
    wet :- rain.
  )");
  auto result = Solve(s.get(), "wet");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 1u);  // the empty tuple
}

}  // namespace
}  // namespace hornsafe
