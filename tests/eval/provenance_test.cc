// Tests for why-provenance tracking and Explain.

#include <gtest/gtest.h>

#include "eval/bottomup.h"
#include "parser/parser.h"

namespace hornsafe {
namespace {

struct Setup {
  Program program;
  BuiltinRegistry registry;
  std::unique_ptr<BottomUpEvaluator> eval;
};

std::unique_ptr<Setup> RunProgram(const char* text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto s = std::make_unique<Setup>();
  s->program = std::move(parsed).value();
  EXPECT_TRUE(RegisterStandardBuiltins(&s->program, &s->registry).ok());
  BottomUpOptions opts;
  opts.track_provenance = true;
  s->eval = std::make_unique<BottomUpEvaluator>(&s->program, &s->registry,
                                                opts);
  Status st = s->eval->Run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

TEST(ProvenanceTest, ExplainsTransitiveClosure) {
  auto s = RunProgram(R"(
    edge(1,2). edge(2,3). edge(3,4).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )");
  PredicateId path = s->program.FindPredicate("path", 2);
  auto why = s->eval->Explain(path, {s->program.Int(1), s->program.Int(4)});
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  // The root fact, a rule citation, and fact leaves all appear.
  EXPECT_NE(why->find("path(1,4)"), std::string::npos) << *why;
  EXPECT_NE(why->find("[rule: path(X,Y) :- path(X,Z), edge(Z,Y).]"),
            std::string::npos)
      << *why;
  EXPECT_NE(why->find("edge(3,4)  [fact]"), std::string::npos) << *why;
  // The recursive premise chain reaches the base case.
  EXPECT_NE(why->find("path(1,2)"), std::string::npos) << *why;
  EXPECT_NE(why->find("edge(1,2)  [fact]"), std::string::npos) << *why;
}

TEST(ProvenanceTest, BuiltinPremisesAreComputedLeaves) {
  auto s = RunProgram(R"(
    v(5).
    next(J) :- v(I), successor(I,J).
  )");
  PredicateId next = s->program.FindPredicate("next", 1);
  auto why = s->eval->Explain(next, {s->program.Int(6)});
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  EXPECT_NE(why->find("successor(5,6)  [computed]"), std::string::npos)
      << *why;
  EXPECT_NE(why->find("v(5)  [fact]"), std::string::npos) << *why;
}

TEST(ProvenanceTest, DisabledTrackingIsReported) {
  auto parsed = ParseProgram("b(1). r(X) :- b(X).");
  ASSERT_TRUE(parsed.ok());
  BuiltinRegistry registry;
  BottomUpEvaluator eval(&parsed.value(), &registry);  // no provenance
  ASSERT_TRUE(eval.Run().ok());
  PredicateId r = parsed->FindPredicate("r", 1);
  auto why = eval.Explain(r, {parsed->Int(1)});
  ASSERT_FALSE(why.ok());
  EXPECT_EQ(why.status().code(), StatusCode::kUnsupported);
}

TEST(ProvenanceTest, UnknownTupleIsNotFound) {
  auto s = RunProgram("b(1). r(X) :- b(X).");
  PredicateId r = s->program.FindPredicate("r", 1);
  auto why = s->eval->Explain(r, {s->program.Int(99)});
  ASSERT_FALSE(why.ok());
  EXPECT_EQ(why.status().code(), StatusCode::kNotFound);
}

TEST(ProvenanceTest, EdbFactExplainsAsLeaf) {
  auto s = RunProgram("b(1). r(X) :- b(X).");
  PredicateId b = s->program.FindPredicate("b", 1);
  auto why = s->eval->Explain(b, {s->program.Int(1)});
  ASSERT_TRUE(why.ok());
  EXPECT_NE(why->find("[fact]"), std::string::npos);
}

TEST(ProvenanceTest, WellFoundedOnCyclicData) {
  // A data cycle must not loop the explanation: premises are always
  // strictly earlier derivations.
  auto s = RunProgram(R"(
    edge(1,2). edge(2,1).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )");
  PredicateId path = s->program.FindPredicate("path", 2);
  auto why = s->eval->Explain(path, {s->program.Int(1), s->program.Int(1)});
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  // Finite output with a bounded number of lines.
  EXPECT_LT(why->size(), 4096u);
  EXPECT_NE(why->find("path(1,1)"), std::string::npos);
}

TEST(ProvenanceTest, SemiNaiveAndNaiveBothRecord) {
  for (bool semi : {true, false}) {
    auto parsed = ParseProgram(R"(
      edge(1,2). edge(2,3).
      path(X,Y) :- edge(X,Y).
      path(X,Y) :- path(X,Z), edge(Z,Y).
    )");
    ASSERT_TRUE(parsed.ok());
    BuiltinRegistry registry;
    BottomUpOptions opts;
    opts.semi_naive = semi;
    opts.track_provenance = true;
    BottomUpEvaluator eval(&parsed.value(), &registry, opts);
    ASSERT_TRUE(eval.Run().ok());
    PredicateId path = parsed->FindPredicate("path", 2);
    auto why = eval.Explain(path, {parsed->Int(1), parsed->Int(3)});
    EXPECT_TRUE(why.ok()) << why.status().ToString();
  }
}

}  // namespace
}  // namespace hornsafe
