#include "eval/bottomup.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

struct Setup {
  Program program;
  BuiltinRegistry registry;
};

std::unique_ptr<Setup> Make(const char* text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto s = std::make_unique<Setup>();
  s->program = std::move(parsed).value();
  Status st = RegisterStandardBuiltins(&s->program, &s->registry);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

TEST(BottomUpTest, TransitiveClosure) {
  auto s = Make(R"(
    edge(1,2). edge(2,3). edge(3,4).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  PredicateId path = s->program.FindPredicate("path", 2);
  EXPECT_EQ(eval.RelationFor(path).size(), 6u);  // 3+2+1 pairs
  EXPECT_TRUE(eval.RelationFor(path).Contains(
      {s->program.Int(1), s->program.Int(4)}));
}

TEST(BottomUpTest, AncestorWithGenerationCount) {
  // Example 1 of the paper: the successor builtin numbers the levels.
  auto s = Make(R"(
    .infinite successor/2.
    parent(cain, adam).
    parent(abel, adam).
    parent(cain, eve).
    parent(abel, eve).
    parent(sem, abel).
    ancestor(X,Y,J) :- ancestor(X,Z,I), parent(Z,Y), successor(I,J).
    ancestor(X,Y,1) :- parent(X,Y).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  PredicateId anc = s->program.FindPredicate("ancestor", 3);
  const Relation& rel = eval.RelationFor(anc);
  // 5 direct parents + sem's 2 grandparents (adam, eve).
  EXPECT_EQ(rel.size(), 7u);
  EXPECT_TRUE(rel.Contains({s->program.Atom("sem"), s->program.Atom("adam"),
                            s->program.Int(2)}));
  EXPECT_TRUE(rel.Contains({s->program.Atom("sem"), s->program.Atom("abel"),
                            s->program.Int(1)}));
}

TEST(BottomUpTest, SemiNaiveMatchesNaive) {
  const char* text = R"(
    edge(1,2). edge(2,3). edge(3,1). edge(3,5). edge(5,6).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), path(Z,Y).
  )";
  auto s1 = Make(text);
  BottomUpOptions semi;
  semi.semi_naive = true;
  BottomUpEvaluator e1(&s1->program, &s1->registry, semi);
  ASSERT_TRUE(e1.Run().ok());

  auto s2 = Make(text);
  BottomUpOptions naive;
  naive.semi_naive = false;
  BottomUpEvaluator e2(&s2->program, &s2->registry, naive);
  ASSERT_TRUE(e2.Run().ok());

  PredicateId p1 = s1->program.FindPredicate("path", 2);
  PredicateId p2 = s2->program.FindPredicate("path", 2);
  EXPECT_EQ(e1.RelationFor(p1).size(), e2.RelationFor(p2).size());
  // Semi-naive does strictly less rule work on this recursive program.
  EXPECT_LT(e1.stats().rule_firings, e2.stats().rule_firings);
}

TEST(BottomUpTest, SipOrderingMovesGuardBeforeArithmetic) {
  // The rule is written with the infinite literal first; the planner
  // must reorder so plus/3 sees two bound arguments.
  auto s = Make(R"(
    .infinite plus/3.
    val(1). val(2).
    sum(Z) :- plus(X,Y,Z), val(X), val(Y).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  PredicateId sum = s->program.FindPredicate("sum", 1);
  const Relation& rel = eval.RelationFor(sum);
  EXPECT_EQ(rel.size(), 3u);  // 2, 3, 4
  EXPECT_TRUE(rel.Contains({s->program.Int(4)}));
}

TEST(BottomUpTest, UnorderableRuleFails) {
  auto s = Make(R"(
    .infinite successor/2.
    r(X,Y) :- successor(X,Y).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  Status st = eval.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsafeQuery);
  EXPECT_NE(st.message().find("binding pattern"), std::string::npos);
}

TEST(BottomUpTest, RangeUnrestrictedHeadFails) {
  auto s = Make("r(X,Y) :- b(X). b(1).");
  BottomUpEvaluator eval(&s->program, &s->registry);
  Status st = eval.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsafeQuery);
  EXPECT_NE(st.message().find("non-ground head"), std::string::npos);
}

TEST(BottomUpTest, TupleBudgetStopsRunawayRecursion) {
  // Counting upward forever: the paper's unsafe generation pattern.
  auto s = Make(R"(
    .infinite successor/2.
    count(1).
    count(J) :- count(I), successor(I,J).
  )");
  BottomUpOptions opts;
  opts.max_tuples = 100;
  BottomUpEvaluator eval(&s->program, &s->registry, opts);
  Status st = eval.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kBudgetExhausted);
}

TEST(BottomUpTest, QueryFiltersComputedRelation) {
  auto s = Make(R"(
    edge(1,2). edge(2,3).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  Literal q = s->program.MakeLiteral("path",
                                     {s->program.Int(1), s->program.Var("Y")});
  auto result = eval.Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // (1,2), (1,3)
}

TEST(BottomUpTest, QueryAgainstBuiltinWithBoundArgs) {
  auto s = Make("b(1).");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  Literal q = s->program.MakeLiteral(
      "plus", {s->program.Int(2), s->program.Int(3), s->program.Var("Z")});
  auto result = eval.Query(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0][2], s->program.Int(5));
  // All-free builtin query refused.
  Literal bad = s->program.MakeLiteral(
      "plus", {s->program.Var("X"), s->program.Var("Y"), s->program.Var("Z")});
  EXPECT_EQ(eval.Query(bad).status().code(), StatusCode::kUnsafeQuery);
}

TEST(BottomUpTest, FunctionTermsJoinViaUnification) {
  auto s = Make(R"(
    holds(box(1), room(a)).
    holds(box(2), room(a)).
    in_room(X) :- holds(box(X), room(a)).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  PredicateId p = s->program.FindPredicate("in_room", 1);
  EXPECT_EQ(eval.RelationFor(p).size(), 2u);
  EXPECT_TRUE(eval.RelationFor(p).Contains({s->program.Int(1)}));
}

TEST(BottomUpTest, MutualRecursion) {
  auto s = Make(R"(
    num(0).
    even(0).
    even(X) :- odd(Y), step(Y,X).
    odd(X) :- even(Y), step(Y,X).
    step(0,1). step(1,2). step(2,3). step(3,4).
  )");
  BottomUpEvaluator eval(&s->program, &s->registry);
  ASSERT_TRUE(eval.Run().ok());
  PredicateId even = s->program.FindPredicate("even", 1);
  PredicateId odd = s->program.FindPredicate("odd", 1);
  EXPECT_TRUE(eval.RelationFor(even).Contains({s->program.Int(4)}));
  EXPECT_TRUE(eval.RelationFor(odd).Contains({s->program.Int(3)}));
  EXPECT_FALSE(eval.RelationFor(even).Contains({s->program.Int(3)}));
}

}  // namespace
}  // namespace hornsafe
