// Tests for the magic-sets transformation and its evaluation: bound
// queries terminate on cyclic data and left recursion (where untabled
// SLD loops) and derive only query-relevant tuples.

#include "eval/magic.h"

#include <gtest/gtest.h>

#include "eval/bottomup.h"
#include "eval/engine.h"
#include "eval/topdown.h"
#include "parser/parser.h"

namespace hornsafe {
namespace {

Program Parse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Result<std::vector<Tuple>> RunMagic(Program* program, const char* query) {
  auto lit = ParseLiteralInto(query, program);
  EXPECT_TRUE(lit.ok()) << lit.status().ToString();
  HORNSAFE_ASSIGN_OR_RETURN(MagicProgram magic,
                            MagicTransform(*program, *lit));
  BuiltinRegistry registry;
  HORNSAFE_RETURN_IF_ERROR(
      RegisterStandardBuiltins(&magic.program, &registry));
  BottomUpEvaluator eval(&magic.program, &registry);
  HORNSAFE_RETURN_IF_ERROR(eval.Run());
  return eval.Query(magic.query);
}

TEST(MagicTest, BoundTransitiveClosure) {
  Program p = Parse(R"(
    edge(1,2). edge(2,3). edge(3,4). edge(10,11).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )");
  auto r = RunMagic(&p, "path(1, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);  // 2, 3, 4 — the island 10->11 is irrelevant
}

TEST(MagicTest, TerminatesOnCyclicDataWhereSldLoops) {
  const char* text = R"(
    edge(1,2). edge(2,3). edge(3,1).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )";
  // Untabled SLD diverges on the cycle (budget fires)...
  {
    Program p = Parse(text);
    BuiltinRegistry registry;
    auto lit = ParseLiteralInto("path(1, Y)", &p);
    TopDownOptions opts;
    opts.max_steps = 20'000;
    TopDownEvaluator sld(&p, &registry, opts);
    auto r = sld.Solve(*lit);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted);
  }
  // ...while the magic rewriting reaches a fixpoint.
  Program p = Parse(text);
  auto r = RunMagic(&p, "path(1, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);  // 1, 2, 3 all reachable on the cycle
}

TEST(MagicTest, LeftRecursionWorks) {
  Program p = Parse(R"(
    edge(1,2). edge(2,3).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )");
  auto r = RunMagic(&p, "path(1, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST(MagicTest, RelevanceRestrictsDerivation) {
  // A long chain: the bound query from the middle must not derive path
  // facts for the prefix.
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += StrCat("edge(", i, ",", i + 1, ").\n");
  }
  text +=
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- edge(X,Z), path(Z,Y).\n";
  Program full = Parse(text.c_str());
  // Full bottom-up derives all O(n²) pairs.
  BuiltinRegistry reg;
  BottomUpEvaluator all(&full, &reg);
  ASSERT_TRUE(all.Run().ok());
  uint64_t full_tuples = all.stats().tuples_derived;

  Program p = Parse(text.c_str());
  auto lit = ParseLiteralInto("path(30, Y)", &p);
  auto magic = MagicTransform(p, *lit);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  BuiltinRegistry reg2;
  BottomUpEvaluator focused(&magic->program, &reg2);
  ASSERT_TRUE(focused.Run().ok());
  auto answers = focused.Query(magic->query);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 10u);  // 31..40
  EXPECT_LT(focused.stats().tuples_derived, full_tuples / 4)
      << "magic evaluation should derive far fewer tuples";
}

TEST(MagicTest, AgreesWithTopDownOnAcyclicPrograms) {
  Program p = Parse(R"(
    parent(sem, abel).
    parent(abel, adam).
    parent(abel, eve).
    ancestor(X,Y) :- parent(X,Y).
    ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).
  )");
  auto magic = RunMagic(&p, "ancestor(sem, Y)");
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();

  Program p2 = Parse(R"(
    parent(sem, abel).
    parent(abel, adam).
    parent(abel, eve).
    ancestor(X,Y) :- parent(X,Y).
    ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).
  )");
  BuiltinRegistry registry;
  auto lit = ParseLiteralInto("ancestor(sem, Y)", &p2);
  TopDownEvaluator sld(&p2, &registry);
  auto td = sld.Solve(*lit);
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(magic->size(), td->size());
}

TEST(MagicTest, ArithmeticInBodiesSurvivesRewriting) {
  Program p = Parse(R"(
    start(10).
    down(X) :- start(X).
    down(Y) :- down(X), less(0, X), plus(X, -1, Y).
  )");
  auto r = RunMagic(&p, "down(5)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);  // 10,9,...,5 derived; 5 matches
}

TEST(MagicTest, SecondArgumentBoundAdornment) {
  Program p = Parse(R"(
    edge(1,2). edge(2,3). edge(4,3).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )");
  auto r = RunMagic(&p, "path(X, 3)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);  // from 1, 2 and 4
}

TEST(MagicTest, QueryOnBasePredicateRejected) {
  Program p = Parse("edge(1,2).");
  auto lit = ParseLiteralInto("edge(1, Y)", &p);
  auto magic = MagicTransform(p, *lit);
  EXPECT_FALSE(magic.ok());
  EXPECT_EQ(magic.status().code(), StatusCode::kInvalidProgram);
}

TEST(MagicTest, EngineUsesMagicWhenEnabled) {
  EngineOptions opts;
  opts.use_magic = true;
  auto parsed = ParseProgram(R"(
    edge(1,2). edge(2,3). edge(3,1).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )");
  ASSERT_TRUE(parsed.ok());
  auto e = Engine::Create(std::move(parsed).value(), opts);
  ASSERT_TRUE(e.ok());
  auto r = e->Query("path(1, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->strategy, "magic");
  EXPECT_EQ(r->tuples.size(), 3u);
}

TEST(MagicTest, MagicPredicatesAreNamedPredictably) {
  Program p = Parse(R"(
    edge(1,2).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )");
  auto lit = ParseLiteralInto("path(1, Y)", &p);
  auto magic = MagicTransform(p, *lit);
  ASSERT_TRUE(magic.ok());
  EXPECT_NE(magic->program.FindPredicate("path__bf", 2),
            kInvalidPredicate);
  EXPECT_NE(magic->program.FindPredicate("m_path__bf", 1),
            kInvalidPredicate);
  EXPECT_EQ(magic->program.PredicateName(magic->query.pred), "path__bf");
}

}  // namespace
}  // namespace hornsafe
