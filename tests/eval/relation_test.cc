#include "eval/relation.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hornsafe {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation r;
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, ContainsAndEmpty) {
  Relation r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains({7}));
  r.Insert({7});
  EXPECT_TRUE(r.Contains({7}));
  EXPECT_FALSE(r.empty());
}

TEST(RelationTest, ZeroArityTuple) {
  Relation r;
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_TRUE(r.Contains({}));
}

TEST(RelationTest, ClearResets) {
  Relation r;
  r.Insert({1});
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({1}));
}

TEST(RelationTest, IterationVisitsAllInInsertionOrder) {
  Relation r;
  r.Insert({1, 2});
  r.Insert({3, 4});
  size_t count = 0;
  for (TupleView t : r) {
    EXPECT_EQ(t.size(), 2u);
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(r.At(0), TupleView(Tuple{1, 2}));
  EXPECT_EQ(r.At(1), TupleView(Tuple{3, 4}));
}

TEST(RelationTest, ProbeFindsMatchingColumn) {
  Relation r;
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
  EXPECT_EQ(r.Probe(0, 2).size(), 1u);
  EXPECT_EQ(r.Probe(1, 3).size(), 2u);
  EXPECT_TRUE(r.Probe(0, 99).empty());
}

TEST(RelationTest, ProbeReturnsAscendingTupleIds) {
  Relation r;
  r.Insert({5, 1});
  r.Insert({6, 2});
  r.Insert({5, 3});
  const Relation::PostingList& hits = r.Probe(0, 5);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 2u);
  EXPECT_EQ(r.At(hits[1]), TupleView(Tuple{5, 3}));
}

TEST(RelationTest, ProbeCountMatchesProbe) {
  Relation r;
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  EXPECT_EQ(r.ProbeCount(0, 1), 2u);
  EXPECT_EQ(r.ProbeCount(1, 3), 2u);
  EXPECT_EQ(r.ProbeCount(1, 2), 1u);
  EXPECT_EQ(r.ProbeCount(0, 42), 0u);
}

TEST(RelationTest, ProbeIndexMaintainedAcrossInserts) {
  Relation r;
  r.Insert({1, 2});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);  // builds the index
  r.Insert({1, 5});                     // must update it
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
  r.Insert({1, 5});                     // duplicate: no double entry
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
}

TEST(RelationTest, ProbeOutOfRangeColumnIsEmpty) {
  Relation r;
  r.Insert({7});
  EXPECT_TRUE(r.Probe(3, 7).empty());
}

TEST(RelationTest, ClearDropsIndexes) {
  Relation r;
  r.Insert({1});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);
  r.clear();
  EXPECT_TRUE(r.Probe(0, 1).empty());
  r.Insert({1});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);
}

TEST(RelationTest, TuplesOfDifferentArityCoexist) {
  Relation r;
  EXPECT_TRUE(r.Insert({1}));
  EXPECT_TRUE(r.Insert({1, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, SurvivesRehashGrowth) {
  // Push well past the initial table size so the open-addressing set
  // rehashes several times; everything must stay findable and ids
  // must stay dense insertion order.
  Relation r;
  constexpr uint32_t kN = 10'000;
  for (uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(r.Insert({i, i * 2 + 1}));
  }
  EXPECT_EQ(r.size(), kN);
  for (uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(r.Contains({i, i * 2 + 1}));
    ASSERT_FALSE(r.Contains({i, i * 2 + 2}));
    ASSERT_EQ(r.At(i), TupleView(Tuple{i, i * 2 + 1}));
  }
  EXPECT_EQ(r.Probe(1, 7).size(), 1u);
  EXPECT_EQ(r.Probe(1, 7)[0], 3u);
}

TEST(RelationTest, ConcurrentFirstProbeIsSafe) {
  // Many threads race the lazy construction of the same and different
  // column indexes; all must observe complete posting lists. Run under
  // TSan to check the publication protocol.
  Relation r;
  for (uint32_t i = 0; i < 1000; ++i) {
    r.Insert({i % 10, i});
  }
  std::vector<std::thread> threads;
  std::vector<size_t> results(8, 0);
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&r, &results, t] {
      results[t] = r.Probe(t % 2, t % 2 == 0 ? 3 : 42).size();
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < results.size(); ++t) {
    EXPECT_EQ(results[t], t % 2 == 0 ? 100u : 1u);
  }
}

}  // namespace
}  // namespace hornsafe
