#include "eval/relation.h"

#include <gtest/gtest.h>

namespace hornsafe {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation r;
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, ContainsAndEmpty) {
  Relation r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains({7}));
  r.Insert({7});
  EXPECT_TRUE(r.Contains({7}));
  EXPECT_FALSE(r.empty());
}

TEST(RelationTest, ZeroArityTuple) {
  Relation r;
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_TRUE(r.Contains({}));
}

TEST(RelationTest, ClearResets) {
  Relation r;
  r.Insert({1});
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({1}));
}

TEST(RelationTest, IterationVisitsAll) {
  Relation r;
  r.Insert({1, 2});
  r.Insert({3, 4});
  size_t count = 0;
  for (const Tuple& t : r) {
    EXPECT_EQ(t.size(), 2u);
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(RelationTest, ProbeFindsMatchingColumn) {
  Relation r;
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
  EXPECT_EQ(r.Probe(0, 2).size(), 1u);
  EXPECT_EQ(r.Probe(1, 3).size(), 2u);
  EXPECT_TRUE(r.Probe(0, 99).empty());
}

TEST(RelationTest, ProbeIndexMaintainedAcrossInserts) {
  Relation r;
  r.Insert({1, 2});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);  // builds the index
  r.Insert({1, 5});                     // must update it
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
  r.Insert({1, 5});                     // duplicate: no double entry
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
}

TEST(RelationTest, ProbeOutOfRangeColumnIsEmpty) {
  Relation r;
  r.Insert({7});
  EXPECT_TRUE(r.Probe(3, 7).empty());
}

TEST(RelationTest, ClearDropsIndexes) {
  Relation r;
  r.Insert({1});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);
  r.clear();
  EXPECT_TRUE(r.Probe(0, 1).empty());
  r.Insert({1});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);
}

TEST(RelationTest, TuplesOfDifferentArityCoexist) {
  Relation r;
  EXPECT_TRUE(r.Insert({1}));
  EXPECT_TRUE(r.Insert({1, 1}));
  EXPECT_EQ(r.size(), 2u);
}

}  // namespace
}  // namespace hornsafe
