// Cross-strategy parity: bottom-up (semi-naive), top-down (SLD) and
// magic-sets evaluation must agree tuple-for-tuple on queries all of
// them can answer. Answers are compared as sorted rendered strings, so
// each strategy may run on its own parsed copy of the program.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "eval/bottomup.h"
#include "eval/magic.h"
#include "eval/topdown.h"
#include "parser/parser.h"

namespace hornsafe {
namespace {

Program Parse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<std::string> Render(const Program& p,
                                const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  for (const Tuple& t : tuples) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) s += ",";
      s += p.terms().ToString(t[i], p.symbols());
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> RunBottomUp(const char* text, const char* query) {
  Program p = Parse(text);
  BuiltinRegistry registry;
  Status st = RegisterStandardBuiltins(&p, &registry);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto lit = ParseLiteralInto(query, &p);
  EXPECT_TRUE(lit.ok()) << lit.status().ToString();
  BottomUpEvaluator eval(&p, &registry);
  st = eval.Run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto r = eval.Query(*lit);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Render(p, *r);
}

std::vector<std::string> RunTopDown(const char* text, const char* query) {
  Program p = Parse(text);
  BuiltinRegistry registry;
  Status st = RegisterStandardBuiltins(&p, &registry);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto lit = ParseLiteralInto(query, &p);
  EXPECT_TRUE(lit.ok()) << lit.status().ToString();
  TopDownEvaluator eval(&p, &registry);
  auto r = eval.Solve(*lit);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Render(p, *r);
}

std::vector<std::string> RunMagicSets(const char* text, const char* query) {
  Program p = Parse(text);
  auto lit = ParseLiteralInto(query, &p);
  EXPECT_TRUE(lit.ok()) << lit.status().ToString();
  auto magic = MagicTransform(p, *lit);
  EXPECT_TRUE(magic.ok()) << magic.status().ToString();
  BuiltinRegistry registry;
  Status st = RegisterStandardBuiltins(&magic->program, &registry);
  EXPECT_TRUE(st.ok()) << st.ToString();
  BottomUpEvaluator eval(&magic->program, &registry);
  st = eval.Run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto r = eval.Query(magic->query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Render(magic->program, *r);
}

constexpr const char* kReachability = R"(
  edge(1,2). edge(2,3). edge(3,4). edge(2,5). edge(10,11).
  path(X,Y) :- edge(X,Y).
  path(X,Y) :- edge(X,Z), path(Z,Y).
)";

TEST(StrategyParityTest, BoundReachability) {
  std::vector<std::string> bu = RunBottomUp(kReachability, "path(1, Y)");
  EXPECT_FALSE(bu.empty());
  EXPECT_EQ(bu, RunTopDown(kReachability, "path(1, Y)"));
  EXPECT_EQ(bu, RunMagicSets(kReachability, "path(1, Y)"));
}

TEST(StrategyParityTest, FullyBoundReachability) {
  // Both argument positions ground: a yes/no query.
  std::vector<std::string> bu = RunBottomUp(kReachability, "path(1, 4)");
  EXPECT_EQ(bu.size(), 1u);
  EXPECT_EQ(bu, RunTopDown(kReachability, "path(1, 4)"));
  EXPECT_EQ(bu, RunMagicSets(kReachability, "path(1, 4)"));
}

constexpr const char* kSameGeneration = R"(
  up(a,f). up(c,f). up(f,m). up(g,m).
  flat(f,g). flat(m,n).
  down(g,b). down(n,g). down(m,h). down(n,i).
  sg(X,Y) :- flat(X,Y).
  sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
)";

TEST(StrategyParityTest, SameGeneration) {
  std::vector<std::string> bu = RunBottomUp(kSameGeneration, "sg(a, Y)");
  EXPECT_FALSE(bu.empty());
  EXPECT_EQ(bu, RunTopDown(kSameGeneration, "sg(a, Y)"));
  EXPECT_EQ(bu, RunMagicSets(kSameGeneration, "sg(a, Y)"));
}

TEST(StrategyParityTest, CyclicDataBottomUpVsMagic) {
  // Untabled SLD diverges here (see magic_test), so parity is between
  // the two fixpoint strategies only.
  const char* text = R"(
    edge(1,2). edge(2,3). edge(3,1). edge(3,4).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )";
  std::vector<std::string> bu = RunBottomUp(text, "path(1, Y)");
  EXPECT_EQ(bu.size(), 4u);  // 1, 2, 3, 4
  EXPECT_EQ(bu, RunMagicSets(text, "path(1, Y)"));
}

constexpr const char* kConcat = R"(
  concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
  concat([], Z, Z).
)";

TEST(StrategyParityTest, ConcatTopDownVsMagic) {
  // concat is an infinite relation, so naive bottom-up cannot run it;
  // top-down and magic-sets both confine themselves to the query cone
  // (Example 7 of the paper) and must agree.
  EXPECT_EQ(RunTopDown(kConcat, "concat([1,2], [3], C)"),
            RunMagicSets(kConcat, "concat([1,2], [3], C)"));
  std::vector<std::string> splits =
      RunTopDown(kConcat, "concat(A, B, [1,2,3])");
  EXPECT_EQ(splits.size(), 4u);
  EXPECT_EQ(splits, RunMagicSets(kConcat, "concat(A, B, [1,2,3])"));
}

TEST(StrategyParityTest, LinearAndRightRecursionAgree) {
  // Left- and right-recursive formulations of the same closure have the
  // same answers under every strategy that can run them.
  const char* left = R"(
    edge(1,2). edge(2,3). edge(3,4).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
  )";
  const char* right = R"(
    edge(1,2). edge(2,3). edge(3,4).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
  )";
  std::vector<std::string> bu_left = RunBottomUp(left, "path(1, Y)");
  EXPECT_EQ(bu_left.size(), 3u);
  EXPECT_EQ(bu_left, RunMagicSets(left, "path(1, Y)"));
  EXPECT_EQ(bu_left, RunBottomUp(right, "path(1, Y)"));
  EXPECT_EQ(bu_left, RunTopDown(right, "path(1, Y)"));
}

}  // namespace
}  // namespace hornsafe
