// Parallel-evaluation guarantees: any job count computes bit-identical
// fixpoints (same tuples, same insertion order, same iteration counts)
// because shards merge in task order at every iteration barrier.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/bottomup.h"
#include "parser/parser.h"
#include "util/strings.h"

namespace hornsafe {
namespace {

std::string ReadProgramFile(const std::string& name) {
  std::string path = StrCat(HORNSAFE_PROGRAMS_DIR, "/", name);
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Everything observable about one evaluation, in a comparable form.
struct Snapshot {
  /// Per derived predicate: its tuples in dense-id (insertion) order.
  std::vector<std::vector<Tuple>> relations;
  uint64_t iterations = 0;
  uint64_t tuples_derived = 0;
  uint64_t rule_firings = 0;
  std::vector<uint64_t> firings_per_rule;
};

Snapshot EvaluateWithJobs(const std::string& text, int jobs) {
  Snapshot snap;
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program program = std::move(parsed).value();
  BuiltinRegistry registry;
  Status st = RegisterStandardBuiltins(&program, &registry);
  EXPECT_TRUE(st.ok()) << st.ToString();
  BottomUpOptions options;
  options.jobs = jobs;
  BottomUpEvaluator eval(&program, &registry, options);
  st = eval.Run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (PredicateId pred = 0; pred < program.num_predicates(); ++pred) {
    std::vector<Tuple> tuples;
    if (program.IsDerived(pred)) {
      const Relation& rel = eval.RelationFor(pred);
      for (uint32_t id = 0; id < rel.size(); ++id) {
        tuples.push_back(rel.At(id).ToTuple());
      }
    }
    snap.relations.push_back(std::move(tuples));
  }
  snap.iterations = eval.stats().iterations;
  snap.tuples_derived = eval.stats().tuples_derived;
  snap.rule_firings = eval.stats().rule_firings;
  snap.firings_per_rule = eval.stats().firings_per_rule;
  return snap;
}

void ExpectIdentical(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.tuples_derived, b.tuples_derived);
  EXPECT_EQ(a.rule_firings, b.rule_firings);
  EXPECT_EQ(a.firings_per_rule, b.firings_per_rule);
  ASSERT_EQ(a.relations.size(), b.relations.size());
  for (size_t p = 0; p < a.relations.size(); ++p) {
    ASSERT_EQ(a.relations[p].size(), b.relations[p].size())
        << "relation " << p << " differs in size";
    // Element-wise in insertion order: stronger than set equality.
    EXPECT_EQ(a.relations[p], b.relations[p])
        << "relation " << p << " differs in contents or order";
  }
}

TEST(ParallelEvalTest, AncestorExampleIdenticalAcrossJobCounts) {
  std::string text = ReadProgramFile("ancestor.hs");
  ExpectIdentical(EvaluateWithJobs(text, 1), EvaluateWithJobs(text, 8));
}

TEST(ParallelEvalTest, WeightedPathsExampleIdenticalAcrossJobCounts) {
  std::string text = ReadProgramFile("weighted_paths.hs");
  ExpectIdentical(EvaluateWithJobs(text, 1), EvaluateWithJobs(text, 8));
}

TEST(ParallelEvalTest, LargeTransitiveClosureIdenticalAndSharded) {
  // Big enough that delta relations exceed the shard threshold, so
  // jobs=8 genuinely fans out (pure Datalog: every rule parallel-safe).
  std::string text;
  constexpr int kNodes = 120;
  for (int i = 0; i + 1 < kNodes; ++i) {
    text += StrCat("edge(", i, ",", i + 1, ").\n");
  }
  text += StrCat("edge(", kNodes - 1, ",0).\n");  // cycle
  text +=
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  Snapshot serial = EvaluateWithJobs(text, 1);
  Snapshot parallel = EvaluateWithJobs(text, 8);
  ExpectIdentical(serial, parallel);

  // Confirm the parallel run actually used the pool.
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(parsed).value();
  BuiltinRegistry registry;
  BottomUpOptions options;
  options.jobs = 8;
  BottomUpEvaluator eval(&program, &registry, options);
  ASSERT_TRUE(eval.Run().ok());
  EXPECT_GT(eval.stats().parallel_tasks, 0u);
  EXPECT_EQ(eval.stats().round_seconds.size(),
            eval.stats().iterations + 1);
}

TEST(ParallelEvalTest, MixedBuiltinProgramIdenticalAcrossJobCounts) {
  // Builtin-reading rules are classified serial (they intern terms);
  // they must interleave deterministically with parallel-safe rules.
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += StrCat("edge(", i, ",", (i * 7 + 1) % 100, ").\n");
  }
  text +=
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "hops(X,Y,1) :- edge(X,Y).\n"
      "hops(X,Y,J) :- hops(X,Z,I), edge(Z,Y), less(I, 5), "
      "successor(I,J).\n";
  ExpectIdentical(EvaluateWithJobs(text, 1), EvaluateWithJobs(text, 8));
}

TEST(ParallelEvalTest, ProvenanceModeStaysSerialAndWorks) {
  std::string text =
      "edge(1,2). edge(2,3).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(parsed).value();
  BuiltinRegistry registry;
  BottomUpOptions options;
  options.jobs = 8;
  options.track_provenance = true;
  BottomUpEvaluator eval(&program, &registry, options);
  ASSERT_TRUE(eval.Run().ok());
  EXPECT_EQ(eval.stats().parallel_tasks, 0u);  // forced serial
  PredicateId path = program.FindPredicate("path", 2);
  auto why = eval.Explain(path, {program.Int(1), program.Int(3)});
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  EXPECT_NE(why->find("path(1,3)"), std::string::npos) << *why;
}

TEST(ParallelEvalTest, WideRulePlansAndEvaluates) {
  // Regression for the O(n^2) PlanRule variable scan: a 33-literal
  // chain join must plan quickly and produce exactly one derivation.
  constexpr int kWidth = 33;
  std::string text;
  std::string body;
  for (int i = 0; i < kWidth; ++i) {
    text += StrCat("b", i, "(", i, ",", i + 1, ").\n");
    body += StrCat(i > 0 ? ", " : "", "b", i, "(X", i, ",X", i + 1, ")");
  }
  text += StrCat("r(X0,X", kWidth, ") :- ", body, ".\n");
  for (int jobs : {1, 8}) {
    auto parsed = ParseProgram(text);
    ASSERT_TRUE(parsed.ok());
    Program program = std::move(parsed).value();
    BuiltinRegistry registry;
    BottomUpOptions options;
    options.jobs = jobs;
    BottomUpEvaluator eval(&program, &registry, options);
    ASSERT_TRUE(eval.Run().ok());
    PredicateId r = program.FindPredicate("r", 2);
    ASSERT_NE(r, kInvalidPredicate);
    EXPECT_EQ(eval.RelationFor(r).size(), 1u);
    EXPECT_TRUE(eval.RelationFor(r).Contains(
        {program.Int(0), program.Int(kWidth)}));
  }
}

}  // namespace
}  // namespace hornsafe
