#include "transform/simplify.h"

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "eval/engine.h"
#include "parser/parser.h"

namespace hornsafe {
namespace {

Program Parse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(SimplifyTest, RemovesRulesOfEmptyPredicates) {
  Program p = Parse(R"(
    dead(X) :- dead(X).
    alive(X) :- b(X).
    user(X) :- alive(X).
    user(X) :- dead(X).
    b(1).
    ?- user(X).
  )");
  auto stats = SimplifyProgram(&p);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // dead's self-rule and user's dead-branch both go.
  EXPECT_EQ(stats->rules_removed_empty, 2u);
  EXPECT_EQ(p.RulesFor(p.FindPredicate("dead", 1)).size(), 0u);
  EXPECT_EQ(p.RulesFor(p.FindPredicate("user", 1)).size(), 1u);
}

TEST(SimplifyTest, EmptinessCascades) {
  // only_via_dead becomes empty once dead's rules go; its own rule and
  // the consumer's rule must follow in later fixpoint rounds.
  Program p = Parse(R"(
    dead(X) :- dead(X).
    only_via_dead(X) :- dead(X), b(X).
    consumer(X) :- only_via_dead(X).
    consumer(X) :- b(X).
    b(1).
    ?- consumer(X).
  )");
  auto stats = SimplifyProgram(&p);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rules_removed_empty, 3u);
  EXPECT_EQ(p.RulesFor(p.FindPredicate("consumer", 1)).size(), 1u);
}

TEST(SimplifyTest, RemovesPredicatesUnreachableFromQueries) {
  Program p = Parse(R"(
    used(X) :- b(X).
    unused(X) :- c(X).
    b(1).
    c(2). c(3).
    ?- used(X).
  )");
  auto stats = SimplifyProgram(&p);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rules_removed_unreachable, 1u);
  EXPECT_EQ(stats->facts_removed, 2u);  // c's facts
  EXPECT_EQ(p.facts().size(), 1u);
  EXPECT_EQ(p.rules().size(), 1u);
}

TEST(SimplifyTest, NoQueriesSkipsReachability) {
  Program p = Parse(R"(
    a(X) :- b(X).
    z(X) :- c(X).
    b(1). c(2).
  )");
  auto stats = SimplifyProgram(&p);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rules_removed_unreachable, 0u);
  EXPECT_EQ(stats->facts_removed, 0u);
  EXPECT_EQ(p.rules().size(), 2u);
}

TEST(SimplifyTest, NoopOnFullyLiveProgram) {
  Program p = Parse(R"(
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
    edge(1,2).
    ?- path(X,Y).
  )");
  auto stats = SimplifyProgram(&p);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->TotalRemoved(), 0u);
}

TEST(SimplifyTest, PreservesQueryAnswers) {
  const char* text = R"(
    dead(X) :- dead(X).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
    path(X,Y) :- dead(X), edge(X,Y).
    decoy(X) :- lonely(X).
    edge(1,2). edge(2,3).
    lonely(9).
    ?- path(X,Y).
  )";
  Program original = Parse(text);
  Program simplified = Parse(text);
  auto stats = SimplifyProgram(&simplified);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->TotalRemoved(), 0u);

  auto run = [](Program p) {
    auto e = Engine::Create(std::move(p));
    EXPECT_TRUE(e.ok());
    auto r = e->Query("path(X,Y)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->tuples.size();
  };
  EXPECT_EQ(run(std::move(original)), run(std::move(simplified)));
}

TEST(SimplifyTest, PreservesSafetyVerdicts) {
  const char* text = R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    ghost(X) :- ghost(X).
    r(X) :- f(X,Y), r(Y).
    r(X) :- b(X).
    b(1).
    ?- r(X).
  )";
  Program original = Parse(text);
  Program simplified = Parse(text);
  ASSERT_TRUE(SimplifyProgram(&simplified).ok());
  auto verdict = [](const Program& p) {
    auto a = SafetyAnalyzer::Create(p);
    EXPECT_TRUE(a.ok());
    return a->AnalyzeQueries()[0].overall;
  };
  EXPECT_EQ(verdict(original), verdict(simplified));
}

TEST(SimplifyTest, KeepsConstraintsAndDeclarations) {
  Program p = Parse(R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .mono f: 2 > 1.
    unused(X) :- f(X,Y), b(Y).
    live(X) :- c(X).
    c(1).
    ?- live(X).
  )");
  ASSERT_TRUE(SimplifyProgram(&p).ok());
  EXPECT_EQ(p.fds().size(), 1u);
  EXPECT_EQ(p.monos().size(), 1u);
  EXPECT_TRUE(p.IsInfiniteBase(p.FindPredicate("f", 2)));
}

}  // namespace
}  // namespace hornsafe
