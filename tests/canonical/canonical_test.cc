#include "canonical/canonical.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

Program Parse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(CanonicalTest, AlreadyCanonicalProgramUnchangedInShape) {
  Program p = Parse(R"(
    .infinite f/2.
    r(X) :- f(X,Y), r(Y).
    r(X) :- b(X).
    ?- r(X).
  )");
  EXPECT_TRUE(IsCanonical(p));
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->program.rules().size(), 2u);
  EXPECT_EQ(c->program.queries().size(), 1u);
  EXPECT_TRUE(c->constant_preds.empty());
  EXPECT_TRUE(c->function_preds.empty());
  EXPECT_TRUE(IsCanonical(c->program));
}

TEST(CanonicalTest, Example6ConstantsBecomeGuardPredicates) {
  // Example 6 of the paper.
  Program p = Parse(R"(
    r(X,Y) :- p(X,5), r(5,Y).
    r(X,Y) :- a(X,Y).
    p(1,5).
    a(1,2).
    ?- r(X,2).
  )");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Program& canon = c->program;
  EXPECT_TRUE(IsCanonical(canon));
  // Two distinct constants were extracted from rules/queries: 5 and 2.
  EXPECT_EQ(c->constant_preds.size(), 2u);
  // The constant 5 appears twice but gets a single shared predicate, so
  // exactly two singleton facts were added (5 and 2) to the original two.
  EXPECT_EQ(canon.facts().size(), 4u);
  // The query was wrapped: r(X,2) -> q(X) with a defining rule.
  ASSERT_EQ(canon.queries().size(), 1u);
  const Literal& q = canon.queries()[0];
  EXPECT_EQ(q.args.size(), 1u);
  EXPECT_TRUE(canon.terms().IsVariable(q.args[0]));
  // Rules: two original (rewritten) + one query wrapper.
  EXPECT_EQ(canon.rules().size(), 3u);
  // First rule gained two guard literals (one per constant occurrence).
  EXPECT_EQ(canon.rules()[0].body.size(), 4u);
}

TEST(CanonicalTest, Example7ConcatFlattens) {
  // Example 7 of the paper: list concatenation.
  Program p = Parse(R"(
    concat([X|Y], Z, [X|U]) :- concat(Y, Z, U).
    concat([], Z, Z).
    ?- concat(A, B, C).
  )");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Program& canon = c->program;
  EXPECT_TRUE(IsCanonical(canon));
  // One infinite predicate for cons/2 (shared across the two
  // occurrences; see DESIGN.md D7), one constant predicate for [].
  EXPECT_EQ(c->function_preds.size(), 1u);
  EXPECT_EQ(c->constant_preds.size(), 1u);
  PredicateId cons = c->function_preds.begin()->first;
  EXPECT_TRUE(canon.IsInfiniteBase(cons));
  EXPECT_EQ(canon.predicate(cons).arity, 3u);
  // Functionhood + constructor FDs were attached.
  std::vector<FiniteDependency> fds = canon.FdsFor(cons);
  ASSERT_EQ(fds.size(), 2u);
  EXPECT_EQ(fds[0].lhs, AttrSet::Of({0, 1}));
  EXPECT_EQ(fds[0].rhs, AttrSet::Single(2));
  EXPECT_EQ(fds[1].lhs, AttrSet::Single(2));
  EXPECT_EQ(fds[1].rhs, AttrSet::Of({0, 1}));
  // Recursive rule body: concat(Y,Z,U) + two cons literals.
  EXPECT_EQ(canon.rules()[0].body.size(), 3u);
  // Base rule body: one nil-guard literal.
  EXPECT_EQ(canon.rules()[1].body.size(), 1u);
}

TEST(CanonicalTest, ConstructorFdsCanBeDisabled) {
  Program p = Parse("r(f(X)) :- b(X).");
  CanonicalizeOptions opts;
  opts.add_constructor_fds = false;
  auto c = Canonicalize(p, opts);
  ASSERT_TRUE(c.ok());
  PredicateId fp = c->function_preds.begin()->first;
  std::vector<FiniteDependency> fds = c->program.FdsFor(fp);
  ASSERT_EQ(fds.size(), 1u);
  EXPECT_EQ(fds[0].rhs, AttrSet::Single(1));
}

TEST(CanonicalTest, AllAutomaticConstraintsCanBeDisabled) {
  Program p = Parse("r(f(X)) :- b(X).");
  CanonicalizeOptions opts;
  opts.add_function_fds = false;
  opts.add_constructor_fds = false;
  opts.add_constructor_monos = false;
  auto c = Canonicalize(p, opts);
  ASSERT_TRUE(c.ok());
  PredicateId fp = c->function_preds.begin()->first;
  EXPECT_TRUE(c->program.FdsFor(fp).empty());
  EXPECT_TRUE(c->program.MonosFor(fp).empty());
}

TEST(CanonicalTest, ConstructorMonosCarrySubtermOrdering) {
  Program p = Parse("r(f(X, Y)) :- b(X, Y).");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok());
  PredicateId fp = c->function_preds.begin()->first;
  std::vector<MonotonicityConstraint> monos = c->program.MonosFor(fp);
  // result > arg1, result > arg2, and all three positions bounded below.
  int strict = 0, bounded = 0;
  for (const MonotonicityConstraint& mc : monos) {
    if (mc.kind == MonoKind::kAttrGreaterAttr) {
      EXPECT_EQ(mc.lhs_attr, 2u);  // the result position
      ++strict;
    } else if (mc.kind == MonoKind::kAttrGreaterConst) {
      ++bounded;
    }
  }
  EXPECT_EQ(strict, 2);
  EXPECT_EQ(bounded, 3);
}

TEST(CanonicalTest, NestedFunctionsFlattenInnermostFirst) {
  Program p = Parse("r(X) :- b(g(h(X))).");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Program& canon = c->program;
  EXPECT_TRUE(IsCanonical(canon));
  EXPECT_EQ(c->function_preds.size(), 2u);  // g/1 and h/1
  // Body: b(V2), fn_h(X,V1), fn_g(V1,V2).
  ASSERT_EQ(canon.rules().size(), 1u);
  EXPECT_EQ(canon.rules()[0].body.size(), 3u);
}

TEST(CanonicalTest, Example8CompoundFactsBecomeRules) {
  // Example 8: p and q hold list constants of different lengths.
  Program p = Parse(R"(
    .infinite integer/1.
    r(X) :- p(Y), q(Y), integer(X).
    p([1]).
    q([1,1]).
    ?- r(X).
  )");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Program& canon = c->program;
  EXPECT_TRUE(IsCanonical(canon));
  // p and q are now derived (their facts contained function terms).
  EXPECT_TRUE(canon.IsDerived(canon.FindPredicate("p", 1)));
  EXPECT_TRUE(canon.IsDerived(canon.FindPredicate("q", 1)));
  // 1 rule for r + 1 for p + 1 for q.
  EXPECT_EQ(canon.rules().size(), 3u);
  // Facts remaining: only the generated constant guards (1 and []).
  for (const Literal& f : canon.facts()) {
    EXPECT_TRUE(c->constant_preds.count(f.pred))
        << canon.ToString(f) << " should be a generated guard fact";
  }
}

TEST(CanonicalTest, MixedFactsConvertTogether) {
  // Once one fact of a predicate is compound, all its facts convert so
  // the EDB/IDB partition stays disjoint.
  Program p = Parse(R"(
    d(f(1)).
    d(2).
  )");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->program.IsDerived(c->program.FindPredicate("d", 1)));
  EXPECT_EQ(c->program.rules().size(), 2u);
  EXPECT_TRUE(c->program.Validate().ok());
}

TEST(CanonicalTest, SameConstantSharesOnePredicate) {
  Program p = Parse(R"(
    r(X) :- s(X, 7), t(7, X).
  )");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->constant_preds.size(), 1u);
  // One guard fact, two guard literals referencing the same predicate.
  EXPECT_EQ(c->program.facts().size(), 1u);
  const Rule& r = c->program.rules()[0];
  ASSERT_EQ(r.body.size(), 4u);
  EXPECT_EQ(r.body[2].pred, r.body[3].pred);
  // But through *distinct* fresh variables.
  EXPECT_NE(r.body[2].args[0], r.body[3].args[0]);
}

TEST(CanonicalTest, HeadConstantsAndFunctionsMoveToBody) {
  Program p = Parse("r(5, f(X)) :- b(X).");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Program& canon = c->program;
  EXPECT_TRUE(IsCanonical(canon));
  const Rule& r = canon.rules()[0];
  EXPECT_TRUE(canon.terms().IsVariable(r.head.args[0]));
  EXPECT_TRUE(canon.terms().IsVariable(r.head.args[1]));
  // b(X) + constant guard + function literal.
  EXPECT_EQ(r.body.size(), 3u);
}

TEST(CanonicalTest, QueriesWithRepeatedVariablesAreWrapped) {
  Program p = Parse(R"(
    e(1,2).
    ?- e(X,X).
  )");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->program.queries().size(), 1u);
  const Literal& q = c->program.queries()[0];
  EXPECT_EQ(q.args.size(), 1u);
  EXPECT_TRUE(c->program.IsDerived(q.pred));
}

TEST(CanonicalTest, IntegersAndAtomsGetDistinctGuards) {
  Program p = Parse("r(X) :- s(X, 1), t(X, one).");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->constant_preds.size(), 2u);
}

TEST(CanonicalTest, ProvenanceMapsPointAtRightObjects) {
  Program p = Parse("r(g(X), 3) :- b(X).");
  auto c = Canonicalize(p);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->function_preds.size(), 1u);
  ASSERT_EQ(c->constant_preds.size(), 1u);
  const Program& canon = c->program;
  auto [fpred, fsym] = *c->function_preds.begin();
  EXPECT_EQ(canon.symbols().Name(fsym), "g");
  auto [cpred, cterm] = *c->constant_preds.begin();
  EXPECT_EQ(canon.terms().ToString(cterm, canon.symbols()), "3");
}

}  // namespace
}  // namespace hornsafe
