#include "constraints/consistency.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

std::vector<ConsistencyWarning> Check(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return CheckConstraintConsistency(*r);
}

TEST(ConsistencyTest, CleanProgramHasNoWarnings) {
  auto w = Check(R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .mono f: 2 > 1.
    .mono f: 1 > const(0).
    r(X) :- f(X,Y), b(Y).
  )");
  EXPECT_TRUE(w.empty());
}

TEST(ConsistencyTest, DirectStrictCycleDetected) {
  auto w = Check(R"(
    .infinite f/2.
    .mono f: 1 > 2.
    .mono f: 2 > 1.
  )");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("strict cycle"), std::string::npos);
  EXPECT_NE(w[0].message.find("necessarily empty"), std::string::npos);
}

TEST(ConsistencyTest, TransitiveStrictCycleDetected) {
  auto w = Check(R"(
    .infinite f/3.
    .mono f: 1 > 2.
    .mono f: 2 > 3.
    .mono f: 3 > 1.
  )");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("strict cycle"), std::string::npos);
}

TEST(ConsistencyTest, EmptyIntegerIntervalDetected) {
  // 5 < x < 6 has no integer solution.
  auto w = Check(R"(
    .infinite f/1.
    .mono f: 1 > const(5).
    .mono f: 1 < const(6).
  )");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("empty interval"), std::string::npos);
}

TEST(ConsistencyTest, SingletonIntervalIsFine) {
  // 5 < x < 7 admits x = 6.
  auto w = Check(R"(
    .infinite f/1.
    .mono f: 1 > const(5).
    .mono f: 1 < const(7).
  )");
  EXPECT_TRUE(w.empty());
}

TEST(ConsistencyTest, DuplicateFdFlagged) {
  auto w = Check(R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .fd f: 2 -> 1.
  )");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("more than once"), std::string::npos);
}

TEST(ConsistencyTest, TightestBoundsAreUsed) {
  // The redundant looser bound must not mask the contradiction.
  auto w = Check(R"(
    .infinite f/1.
    .mono f: 1 > const(0).
    .mono f: 1 > const(9).
    .mono f: 1 < const(10).
  )");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("(9, 10)"), std::string::npos)
      << w[0].message;
}

TEST(ConsistencyTest, PerPredicateIsolation) {
  // Warnings name the offending predicate; the clean one stays silent.
  auto w = Check(R"(
    .infinite bad/2.
    .infinite good/2.
    .mono bad: 1 > 2.
    .mono bad: 2 > 1.
    .mono good: 2 > 1.
  )");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("'bad'"), std::string::npos);
}

}  // namespace
}  // namespace hornsafe
