#include "constraints/argmap.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace hornsafe {
namespace {

Program Parse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(VariableOrderTest, DirectConstraintGivesStrictOrder) {
  Program p = Parse(R"(
    .infinite f/2.
    .mono f: 2 > 1.
    r(X) :- f(X,Y), r(Y).
    r(X) :- b(X).
  )");
  const Rule& rule = p.rules()[0];
  VariableOrder order(p, rule);
  TermId x = rule.body[0].args[0];
  TermId y = rule.body[0].args[1];
  EXPECT_TRUE(order.Greater(y, x));
  EXPECT_FALSE(order.Greater(x, y));
  EXPECT_FALSE(order.Greater(x, x));
}

TEST(VariableOrderTest, TransitiveChain) {
  Program p = Parse(R"(
    .infinite f/2.
    .infinite g/2.
    .mono f: 2 > 1.
    .mono g: 2 > 1.
    r(X) :- f(X,Y), g(Y,Z), b(Z).
  )");
  const Rule& rule = p.rules()[0];
  VariableOrder order(p, rule);
  TermId x = rule.body[0].args[0];
  TermId z = rule.body[1].args[1];
  EXPECT_TRUE(order.Greater(z, x));  // Z > Y > X
  EXPECT_FALSE(order.Greater(x, z));
}

TEST(VariableOrderTest, ConstantBoundsPropagate) {
  Program p = Parse(R"(
    .infinite f/2.
    .mono f: 2 > 1.
    .mono f: 1 > const(0).
    .mono f: 2 < const(100).
    r(X) :- f(X,Y), b(Y).
  )");
  const Rule& rule = p.rules()[0];
  VariableOrder order(p, rule);
  TermId x = rule.body[0].args[0];
  TermId y = rule.body[0].args[1];
  EXPECT_TRUE(order.BoundedBelow(x));  // X > 0 directly
  EXPECT_TRUE(order.BoundedBelow(y));  // Y > X > 0
  EXPECT_TRUE(order.BoundedAbove(y));  // Y < 100 directly
  EXPECT_TRUE(order.BoundedAbove(x));  // X < Y < 100
}

TEST(VariableOrderTest, NoConstraintsNoOrder) {
  Program p = Parse(R"(
    .infinite f/2.
    r(X) :- f(X,Y), b(Y).
  )");
  const Rule& rule = p.rules()[0];
  VariableOrder order(p, rule);
  TermId x = rule.body[0].args[0];
  TermId y = rule.body[0].args[1];
  EXPECT_FALSE(order.Greater(x, y));
  EXPECT_FALSE(order.Greater(y, x));
  EXPECT_FALSE(order.BoundedBelow(x));
  EXPECT_FALSE(order.BoundedAbove(y));
}

class MappingTest : public ::testing::Test {
 protected:
  // Example 13 shape: r(X,U) :- f(X,Y), g(U,V), r(Y,V).
  void SetUp() override {
    program_ = Parse(R"(
      .infinite f/2.
      .infinite g/2.
      .mono f: 2 > 1.
      .mono g: 2 > 1.
      .mono f: 1 > const(0).
      r(X,U) :- f(X,Y), g(U,V), r(Y,V).
      r(X,U) :- b(X,U).
    )");
  }
  Program program_;
};

TEST_F(MappingTest, BuildSelfMapping) {
  const Rule& rule = program_.rules()[0];
  VariableOrder order(program_, rule);
  const Literal& occ = rule.body[2];  // r(Y,V)
  ArgumentMapping m = ArgumentMapping::Build(program_, rule, order, occ);
  ASSERT_EQ(m.head_arity(), 2u);
  ASSERT_EQ(m.occ_arity(), 2u);
  // head_1 = X < Y = occ_1, head_2 = U < V = occ_2.
  EXPECT_TRUE(m.rel(0, 0) & kRelLt);
  EXPECT_TRUE(m.rel(1, 1) & kRelLt);
  EXPECT_FALSE(m.rel(0, 0) & kRelGt);
  EXPECT_FALSE(m.rel(0, 0) & kRelEq);
  EXPECT_FALSE(m.Invalid());
}

TEST_F(MappingTest, SharedVariableGivesEquality) {
  Program p = Parse(R"(
    anc(X,Y) :- anc(X,Z), par(Z,Y).
    anc(X,Y) :- par(X,Y).
  )");
  const Rule& rule = p.rules()[0];
  VariableOrder order(p, rule);
  ArgumentMapping m =
      ArgumentMapping::Build(p, rule, order, rule.body[0]);  // anc(X,Z)
  EXPECT_TRUE(m.rel(0, 0) & kRelEq);  // head X = occ X
  EXPECT_EQ(m.rel(1, 1), kRelNone);   // head Y unrelated to occ Z
}

TEST_F(MappingTest, ComposeChainsStrictness) {
  const Rule& rule = program_.rules()[0];
  VariableOrder order(program_, rule);
  ArgumentMapping m =
      ArgumentMapping::Build(program_, rule, order, rule.body[2]);
  // Composing the strictly-decreasing self-mapping keeps it strict.
  ArgumentMapping m2 = m.Compose(m);
  EXPECT_TRUE(m2.rel(0, 0) & kRelLt);
  EXPECT_FALSE(m2.rel(0, 0) & kRelGt);
  EXPECT_FALSE(m2.Invalid());
}

TEST_F(MappingTest, ComposeEqWithLt) {
  // eq ∘ lt = lt, lt ∘ eq = lt.
  ArgumentMapping eq(1, 1), lt(1, 1);
  eq.set_rel(0, 0, kRelEq);
  lt.set_rel(0, 0, kRelLt);
  EXPECT_EQ(eq.Compose(lt).rel(0, 0), kRelLt);
  EXPECT_EQ(lt.Compose(eq).rel(0, 0), kRelLt);
  EXPECT_EQ(eq.Compose(eq).rel(0, 0), kRelEq);
}

TEST_F(MappingTest, InvalidOnContradiction) {
  ArgumentMapping up(1, 1), down(1, 1);
  up.set_rel(0, 0, kRelGt);
  down.set_rel(0, 0, kRelLt);
  EXPECT_FALSE(up.Invalid());
  // x > y and simultaneously x < y after composition: the composite
  // carries both bits on the same pair.
  ArgumentMapping both(1, 1);
  both.set_rel(0, 0, kRelGt | kRelLt);
  EXPECT_TRUE(both.Invalid());
  ArgumentMapping gt_eq(1, 1);
  gt_eq.set_rel(0, 0, kRelGt | kRelEq);
  EXPECT_TRUE(gt_eq.Invalid());
}

TEST_F(MappingTest, ToStringShapes) {
  ArgumentMapping m(2, 2);
  m.set_rel(0, 0, kRelEq);
  m.set_rel(1, 0, kRelGt);
  std::string s = m.ToString();
  EXPECT_NE(s.find("1=1'"), std::string::npos);
  EXPECT_NE(s.find("2>1'"), std::string::npos);
  EXPECT_EQ(ArgumentMapping(1, 1).ToString(), "(empty)");
}

TEST_F(MappingTest, ComposeLtThenGtGivesNothing) {
  ArgumentMapping lt(1, 1), gt(1, 1);
  lt.set_rel(0, 0, kRelLt);
  gt.set_rel(0, 0, kRelGt);
  // x < y, y > z tells us nothing about x vs z.
  EXPECT_EQ(lt.Compose(gt).rel(0, 0), kRelNone);
}

}  // namespace
}  // namespace hornsafe
