// Tests for the Theorem 5 monotonicity analysis, pinned against
// Example 13 of the paper (reconstructed per DESIGN.md D4).

#include "constraints/mono.h"

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "parser/parser.h"

namespace hornsafe {
namespace {

// Example 13: decreasing recursion bounded below.
constexpr const char* kExample13 = R"(
  .infinite f/2.
  .infinite g/2.
  .fd f: 2 -> 1.
  .fd g: 2 -> 1.
  .mono f: 2 > 1.
  .mono g: 2 > 1.
  .mono f: 1 > const(0).
  .mono g: 1 > const(0).
  r(X,U) :- f(X,Y), g(U,V), r(Y,V).
  r(X,U) :- b(X,U).
  ?- r(X,U).
)";

Safety Analyze(const char* text, bool use_mono) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  AnalyzerOptions opts;
  opts.use_monotonicity = use_mono;
  auto analyzer = SafetyAnalyzer::Create(*parsed, opts);
  EXPECT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  std::vector<QueryAnalysis> results = analyzer->AnalyzeQueries();
  EXPECT_EQ(results.size(), 1u);
  return results[0].overall;
}

TEST(MonoTest, Example13SafeWithMonotonicity) {
  EXPECT_EQ(Analyze(kExample13, /*use_mono=*/true), Safety::kSafe);
}

TEST(MonoTest, Example13UnsafeWithFdsAlone) {
  // "Given only the above FD information about f, it is not possible to
  // determine whether this process converges" — the FD-only analysis
  // reports unsafe.
  EXPECT_EQ(Analyze(kExample13, /*use_mono=*/false), Safety::kUnsafe);
}

TEST(MonoTest, UnboundedDecreasingCycleStaysUnsafe) {
  // Without the lower bound the decreasing chain can run forever.
  constexpr const char* kUnbounded = R"(
    .infinite f/2.
    .infinite g/2.
    .fd f: 2 -> 1.
    .fd g: 2 -> 1.
    .mono f: 2 > 1.
    .mono g: 2 > 1.
    r(X,U) :- f(X,Y), g(U,V), r(Y,V).
    r(X,U) :- b(X,U).
    ?- r(X,U).
  )";
  EXPECT_EQ(Analyze(kUnbounded, /*use_mono=*/true), Safety::kUnsafe);
}

TEST(MonoTest, IncreasingCycleBoundedAboveIsSafe) {
  // Symmetric case: values increase and are bounded above.
  constexpr const char* kIncreasing = R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .mono f: 1 > 2.
    .mono f: 1 < const(1000).
    r(X) :- f(X,Y), r(Y).
    r(X) :- b(X).
    ?- r(X).
  )";
  EXPECT_EQ(Analyze(kIncreasing, /*use_mono=*/true), Safety::kSafe);
  EXPECT_EQ(Analyze(kIncreasing, /*use_mono=*/false), Safety::kUnsafe);
}

TEST(MonoTest, IncreasingCycleBoundedBelowOnlyIsUnsafe) {
  // Bounding an increasing chain from below does not help.
  constexpr const char* kWrongBound = R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .mono f: 1 > 2.
    .mono f: 1 > const(0).
    r(X) :- f(X,Y), r(Y).
    r(X) :- b(X).
    ?- r(X).
  )";
  EXPECT_EQ(Analyze(kWrongBound, /*use_mono=*/true), Safety::kUnsafe);
}

TEST(MonoTest, MutualRecursionDecreasingBounded) {
  // A length-2 rule cycle: p calls q calls p, decreasing each hop.
  constexpr const char* kMutual = R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .mono f: 2 > 1.
    .mono f: 1 > const(0).
    p(X) :- f(X,Y), q(Y).
    q(X) :- f(X,Y), p(Y).
    q(X) :- b(X).
    ?- p(X).
  )";
  EXPECT_EQ(Analyze(kMutual, /*use_mono=*/true), Safety::kSafe);
  EXPECT_EQ(Analyze(kMutual, /*use_mono=*/false), Safety::kUnsafe);
}

TEST(MonoTest, ConstraintsOnUnrelatedPredicateDoNotHelp) {
  constexpr const char* kUnrelated = R"(
    .infinite f/2.
    .infinite h/2.
    .fd f: 2 -> 1.
    .mono h: 2 > 1.
    .mono h: 1 > const(0).
    r(X) :- f(X,Y), r(Y).
    r(X) :- b(X).
    ?- r(X).
  )";
  EXPECT_EQ(Analyze(kUnrelated, /*use_mono=*/true), Safety::kUnsafe);
}

TEST(MonoTest, FdSafeProgramsUnaffectedByMonotonicity) {
  // "if an argument place is determined to be safe using only FD
  // information, additional monotonicity constraints do not affect it."
  constexpr const char* kFdSafe = R"(
    .infinite f/2.
    .fd f: 2 -> 1.
    .mono f: 2 > 1.
    r(X) :- f(X,Y), r(Y), a(Y).
    r(X) :- b(X).
    ?- r(X).
  )";
  EXPECT_EQ(Analyze(kFdSafe, /*use_mono=*/true), Safety::kSafe);
  EXPECT_EQ(Analyze(kFdSafe, /*use_mono=*/false), Safety::kSafe);
}

}  // namespace
}  // namespace hornsafe
