#include "util/fault.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <string>

namespace hornsafe {
namespace {

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.ShouldInject(FaultKind::kReadError));
  }
  EXPECT_EQ(inj.counters().decisions, 0u);
}

TEST(FaultInjectorTest, ConfigureParsesSpec) {
  FaultInjector inj;
  EXPECT_TRUE(inj.Configure("read_error=0.5,bit_flip=0.25,seed=7"));
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.Configure(""));  // empty spec disables
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjectorTest, ConfigureRejectsGarbage) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("read_error=0.5"));
  EXPECT_FALSE(inj.Configure("unknown_kind=0.5"));
  EXPECT_FALSE(inj.Configure("read_error=notanumber"));
  EXPECT_FALSE(inj.Configure("read_error=1.5"));   // out of [0,1]
  EXPECT_FALSE(inj.Configure("read_error=-0.1"));
  EXPECT_FALSE(inj.Configure("read_error"));       // missing '='
  EXPECT_FALSE(inj.Configure("seed=xyz"));
  // A rejected spec leaves the previous config in place.
  EXPECT_TRUE(inj.enabled());
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("write_error=1"));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.ShouldInject(FaultKind::kWriteError));
    EXPECT_FALSE(inj.ShouldInject(FaultKind::kReadError));
  }
  EXPECT_EQ(inj.counters()
                .injected[static_cast<size_t>(FaultKind::kWriteError)],
            50u);
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  auto draw = [](const char* spec) {
    FaultInjector inj;
    EXPECT_TRUE(inj.Configure(spec));
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      bits += inj.ShouldInject(FaultKind::kBitFlip) ? '1' : '0';
    }
    return bits;
  };
  std::string a = draw("bit_flip=0.3,seed=42");
  std::string b = draw("bit_flip=0.3,seed=42");
  std::string c = draw("bit_flip=0.3,seed=43");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultInjectorTest, CorruptOneBitChangesExactlyOneBit) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("bit_flip=1,seed=1"));
  std::string original(64, '\x5a');
  std::string corrupted = original;
  inj.CorruptOneBit(&corrupted);
  int differing_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(corrupted[i]);
    while (diff != 0) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);

  std::string empty;
  inj.CorruptOneBit(&empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, TornLengthIsStrictPrefix) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("torn_rename=1,seed=9"));
  for (int i = 0; i < 100; ++i) {
    size_t len = inj.TornLength(100);
    EXPECT_LT(len, 100u);
  }
  EXPECT_EQ(inj.TornLength(0), 0u);
}

TEST(FaultInjectorTest, CountersTrackDecisionsAndReset) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("enospc=1"));
  inj.ShouldInject(FaultKind::kEnospc);
  inj.ShouldInject(FaultKind::kReadError);
  FaultInjector::Counters c = inj.counters();
  EXPECT_EQ(c.decisions, 2u);
  EXPECT_EQ(c.injected[static_cast<size_t>(FaultKind::kEnospc)], 1u);
  inj.ResetCounters();
  EXPECT_EQ(inj.counters().decisions, 0u);
}

TEST(FaultKindTest, NamesMatchSpecKeys) {
  EXPECT_STREQ(FaultKindName(FaultKind::kReadError), "read_error");
  EXPECT_STREQ(FaultKindName(FaultKind::kTornRename), "torn_rename");
  EXPECT_STREQ(FaultKindName(FaultKind::kEnospc), "enospc");
  EXPECT_STREQ(FaultKindName(FaultKind::kProcessKill), "process_kill");
  EXPECT_STREQ(FaultKindName(FaultKind::kLeaseSteal), "lease_steal");
}

TEST(FaultKindTest, EveryKindRoundTripsThroughConfigure) {
  FaultInjector inj;
  for (size_t k = 0; k < static_cast<size_t>(FaultKind::kNumKinds); ++k) {
    std::string spec = std::string(FaultKindName(static_cast<FaultKind>(k))) +
                       "=1";
    EXPECT_TRUE(inj.Configure(spec)) << spec;
    EXPECT_TRUE(inj.ShouldInject(static_cast<FaultKind>(k))) << spec;
  }
}

TEST(FaultInjectorTest, ZeroProbabilityKindsConsumeNoRandomDraw) {
  // Adding wrap points for a disabled kind must not perturb the
  // decision sequence of an enabled one — otherwise a fault spec used
  // by a replay test would diverge the moment a new wrap point lands.
  auto draw = [](bool interleave_disabled) {
    FaultInjector inj;
    EXPECT_TRUE(inj.Configure("bit_flip=0.5,seed=11"));
    std::string bits;
    for (int i = 0; i < 100; ++i) {
      if (interleave_disabled) {
        inj.ShouldInject(FaultKind::kProcessKill);  // prob 0: no draw
        inj.ShouldInject(FaultKind::kLeaseSteal);
      }
      bits += inj.ShouldInject(FaultKind::kBitFlip) ? '1' : '0';
    }
    return bits;
  };
  EXPECT_EQ(draw(false), draw(true));
}

TEST(FaultInjectorTest, PickPointStaysInBoundsAndCoversAllPoints) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("enospc=1,seed=13"));
  EXPECT_EQ(inj.PickPoint(0), 0u);
  EXPECT_EQ(inj.PickPoint(1), 0u);
  bool seen[3] = {};
  for (int i = 0; i < 200; ++i) {
    size_t p = inj.PickPoint(3);
    ASSERT_LT(p, 3u);
    seen[p] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(FaultInjectorTest, MaybeCrashIsANoOpWhenDisabled) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("read_error=1"));  // process_kill stays 0
  inj.MaybeCrash();                            // must return
  EXPECT_EQ(inj.counters()
                .injected[static_cast<size_t>(FaultKind::kProcessKill)],
            0u);
}

TEST(FaultInjectorTest, MaybeCrashKillsTheProcessWithSigkill) {
  // The real thing, observed from a parent: the child configures
  // process_kill=1, calls MaybeCrash, and must die by SIGKILL without
  // reaching _exit(0).
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FaultInjector inj;
    if (!inj.Configure("process_kill=1,seed=2")) _exit(3);
    inj.MaybeCrash();
    _exit(0);  // not reached
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

}  // namespace
}  // namespace hornsafe
