#include "util/fault.h"

#include <gtest/gtest.h>

#include <string>

namespace hornsafe {
namespace {

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.ShouldInject(FaultKind::kReadError));
  }
  EXPECT_EQ(inj.counters().decisions, 0u);
}

TEST(FaultInjectorTest, ConfigureParsesSpec) {
  FaultInjector inj;
  EXPECT_TRUE(inj.Configure("read_error=0.5,bit_flip=0.25,seed=7"));
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.Configure(""));  // empty spec disables
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjectorTest, ConfigureRejectsGarbage) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("read_error=0.5"));
  EXPECT_FALSE(inj.Configure("unknown_kind=0.5"));
  EXPECT_FALSE(inj.Configure("read_error=notanumber"));
  EXPECT_FALSE(inj.Configure("read_error=1.5"));   // out of [0,1]
  EXPECT_FALSE(inj.Configure("read_error=-0.1"));
  EXPECT_FALSE(inj.Configure("read_error"));       // missing '='
  EXPECT_FALSE(inj.Configure("seed=xyz"));
  // A rejected spec leaves the previous config in place.
  EXPECT_TRUE(inj.enabled());
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("write_error=1"));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.ShouldInject(FaultKind::kWriteError));
    EXPECT_FALSE(inj.ShouldInject(FaultKind::kReadError));
  }
  EXPECT_EQ(inj.counters()
                .injected[static_cast<size_t>(FaultKind::kWriteError)],
            50u);
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  auto draw = [](const char* spec) {
    FaultInjector inj;
    EXPECT_TRUE(inj.Configure(spec));
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      bits += inj.ShouldInject(FaultKind::kBitFlip) ? '1' : '0';
    }
    return bits;
  };
  std::string a = draw("bit_flip=0.3,seed=42");
  std::string b = draw("bit_flip=0.3,seed=42");
  std::string c = draw("bit_flip=0.3,seed=43");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultInjectorTest, CorruptOneBitChangesExactlyOneBit) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("bit_flip=1,seed=1"));
  std::string original(64, '\x5a');
  std::string corrupted = original;
  inj.CorruptOneBit(&corrupted);
  int differing_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(corrupted[i]);
    while (diff != 0) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);

  std::string empty;
  inj.CorruptOneBit(&empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, TornLengthIsStrictPrefix) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("torn_rename=1,seed=9"));
  for (int i = 0; i < 100; ++i) {
    size_t len = inj.TornLength(100);
    EXPECT_LT(len, 100u);
  }
  EXPECT_EQ(inj.TornLength(0), 0u);
}

TEST(FaultInjectorTest, CountersTrackDecisionsAndReset) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("enospc=1"));
  inj.ShouldInject(FaultKind::kEnospc);
  inj.ShouldInject(FaultKind::kReadError);
  FaultInjector::Counters c = inj.counters();
  EXPECT_EQ(c.decisions, 2u);
  EXPECT_EQ(c.injected[static_cast<size_t>(FaultKind::kEnospc)], 1u);
  inj.ResetCounters();
  EXPECT_EQ(inj.counters().decisions, 0u);
}

TEST(FaultKindTest, NamesMatchSpecKeys) {
  EXPECT_STREQ(FaultKindName(FaultKind::kReadError), "read_error");
  EXPECT_STREQ(FaultKindName(FaultKind::kTornRename), "torn_rename");
  EXPECT_STREQ(FaultKindName(FaultKind::kEnospc), "enospc");
}

}  // namespace
}  // namespace hornsafe
