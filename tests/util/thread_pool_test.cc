#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace hornsafe {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, FutureSynchronizesResults) {
  // The value written by the task must be visible after get() without
  // extra synchronization (futures establish happens-before).
  ThreadPool pool(2);
  int value = 0;
  pool.Submit([&value] { value = 42; }).get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // Destructor joins after the queue drains.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace hornsafe
