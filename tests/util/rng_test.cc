#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace hornsafe {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear in 200 draws
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0, 10));
    EXPECT_TRUE(rng.Chance(10, 10));
  }
}

}  // namespace
}  // namespace hornsafe
