#include "util/proc.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace hornsafe {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("hornsafe_proc_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const char* name) const { return (path / name).string(); }
};

TEST(FileLockTest, AcquireCreatesAndHolds) {
  TempDir dir;
  auto lock = FileLock::Acquire(dir.file("a.lock"));
  ASSERT_TRUE(lock.ok()) << lock.status().ToString();
  EXPECT_TRUE(lock->held());
  EXPECT_TRUE(fs::exists(dir.file("a.lock")));
  lock->Release();
  EXPECT_FALSE(lock->held());
  // The lock file is never deleted — only its lock state changes.
  EXPECT_TRUE(fs::exists(dir.file("a.lock")));
}

TEST(FileLockTest, TryAcquireReportsContentionWithoutError) {
  TempDir dir;
  auto first = FileLock::TryAcquire(dir.file("c.lock"));
  ASSERT_TRUE(first.ok() && first->held());
  // flock is per open-description: a second open of the same file
  // contends even within one process.
  auto second = FileLock::TryAcquire(dir.file("c.lock"));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->held());
  first->Release();
  auto third = FileLock::TryAcquire(dir.file("c.lock"));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->held());
}

TEST(FileLockTest, KernelReleasesLockWhenHolderDies) {
  // The crash-safety property everything rests on: SIGKILL the holder
  // and the flock comes free with no cleanup code having run.
  TempDir dir;
  std::string path = dir.file("k.lock");
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto lock = FileLock::Acquire(path);
    if (!lock.ok() || !lock->held()) _exit(2);
    lock->WriteRecord(FormatLeaseRecord(::getpid(), BootId()));
    // Signal readiness via a side file, then hang until killed.
    std::ofstream(dir.file("ready")) << "1";
    for (;;) pause();
  }
  while (!fs::exists(dir.file("ready"))) usleep(1000);
  {
    auto contended = FileLock::TryAcquire(path);
    ASSERT_TRUE(contended.ok());
    EXPECT_FALSE(contended->held());
  }
  KillProcess(pid);
  auto reaped = WaitProcess(pid);
  ASSERT_TRUE(reaped.ok());
  EXPECT_TRUE(reaped->signaled);
  auto after = FileLock::TryAcquire(path);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->held());
  // The dead child's record survives as crash evidence — and is stale.
  EXPECT_TRUE(LeaseRecordStale(after->ReadRecord()));
}

TEST(FileLockTest, WriteRecordTruncatesAndReadsBack) {
  TempDir dir;
  auto lock = FileLock::Acquire(dir.file("r.lock"));
  ASSERT_TRUE(lock.ok());
  EXPECT_TRUE(lock->WriteRecord("a long record that will be replaced\n"));
  EXPECT_TRUE(lock->WriteRecord("short\n"));
  EXPECT_EQ(lock->ReadRecord(), "short\n");
  EXPECT_EQ(ReadLockRecord(dir.file("r.lock")), "short\n");
  EXPECT_TRUE(lock->WriteRecord(""));
  EXPECT_EQ(lock->ReadRecord(), "");
}

TEST(LeaseRecordTest, FormatParseRoundtrip) {
  std::string record = FormatLeaseRecord(4242, "boot-xyz");
  pid_t pid = 0;
  std::string boot;
  ASSERT_TRUE(ParseLeaseRecord(record, &pid, &boot));
  EXPECT_EQ(pid, 4242);
  EXPECT_EQ(boot, "boot-xyz");
  EXPECT_FALSE(ParseLeaseRecord("", &pid, &boot));
  EXPECT_FALSE(ParseLeaseRecord("pid x boot y", &pid, &boot));
  EXPECT_FALSE(ParseLeaseRecord("garbage", &pid, &boot));
}

TEST(LeaseRecordTest, StalenessRules) {
  // Empty: nothing claimed, not stale.
  EXPECT_FALSE(LeaseRecordStale(""));
  // Malformed: claimed but unintelligible — stale.
  EXPECT_TRUE(LeaseRecordStale("scribble"));
  // Our own live pid on this boot: not stale.
  EXPECT_FALSE(LeaseRecordStale(FormatLeaseRecord(::getpid(), BootId())));
  // A live pid from a different boot: stale (pids don't survive boots).
  EXPECT_TRUE(
      LeaseRecordStale(FormatLeaseRecord(::getpid(), "some-other-boot")));
  // A dead pid on this boot: stale. Reap a child first so its pid is
  // known-dead (modulo recycling, which only makes the test lenient).
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  auto reaped = WaitProcess(child);
  ASSERT_TRUE(reaped.ok());
  EXPECT_TRUE(LeaseRecordStale(FormatLeaseRecord(child, BootId())));
}

TEST(BootIdTest, StableNonEmpty) {
  EXPECT_FALSE(BootId().empty());
  EXPECT_EQ(BootId(), BootId());
}

TEST(ProcessAliveTest, SelfAliveReapedChildDead) {
  EXPECT_TRUE(ProcessAlive(::getpid()));
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  auto reaped = WaitProcess(child);
  ASSERT_TRUE(reaped.ok());
  EXPECT_TRUE(reaped->exited);
  EXPECT_EQ(reaped->exit_code, 0);
  EXPECT_FALSE(ProcessAlive(child));
}

TEST(SpawnTest, RunsArgvAndCapturesExitCode) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "exit 7"});
  ASSERT_TRUE(pid.ok()) << pid.status().ToString();
  auto result = WaitProcess(*pid);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exited);
  EXPECT_EQ(result->exit_code, 7);
}

TEST(SpawnTest, RedirectsStdoutAndAppliesExtraEnv) {
  TempDir dir;
  SpawnOptions opts;
  opts.stdout_path = dir.file("out.txt");
  opts.extra_env = {"HORNSAFE_PROC_TEST_VAR=hello"};
  auto pid = SpawnProcess(
      {"/bin/sh", "-c", "printf '%s' \"$HORNSAFE_PROC_TEST_VAR\""}, opts);
  ASSERT_TRUE(pid.ok()) << pid.status().ToString();
  auto result = WaitProcess(*pid);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exit_code, 0);
  std::ifstream in(dir.file("out.txt"));
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello");
}

TEST(SpawnTest, ExecFailureSurfacesAs127) {
  auto pid = SpawnProcess({"/nonexistent/definitely/not/a/binary"});
  ASSERT_TRUE(pid.ok());  // the fork succeeded; exec fails in the child
  auto result = WaitProcess(*pid);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exited);
  EXPECT_EQ(result->exit_code, 127);
}

TEST(SpawnTest, PollTransitionsFromRunningToReaped) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "sleep 0.1"});
  ASSERT_TRUE(pid.ok());
  auto first = PollProcess(*pid);
  ASSERT_TRUE(first.ok());
  // Usually still running; either way the terminal poll must reap.
  for (int i = 0; i < 5000; ++i) {
    auto poll = PollProcess(*pid);
    ASSERT_TRUE(poll.ok());
    if (poll->has_value()) {
      EXPECT_TRUE((*poll)->exited);
      EXPECT_EQ((*poll)->exit_code, 0);
      return;
    }
    usleep(1000);
  }
  FAIL() << "child never reaped";
}

TEST(SpawnTest, KillProcessTerminatesBySigkill) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(pid.ok());
  KillProcess(*pid);
  auto result = WaitProcess(*pid);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->signaled);
  EXPECT_EQ(result->term_signal, SIGKILL);
}

TEST(SelfExeTest, PointsAtThisTestBinary) {
  std::string path = SelfExePath("fallback");
  ASSERT_NE(path, "fallback");
  EXPECT_NE(path.find("proc_test"), std::string::npos) << path;
  EXPECT_TRUE(fs::exists(path));
}

}  // namespace
}  // namespace hornsafe
