#include "util/strings.h"

#include <gtest/gtest.h>

namespace hornsafe {
namespace {

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 3.5, '!'), "x=42, y=3.5!");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, JoinMapped) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(JoinMapped(v, "+", [](int x) { return std::to_string(x * x); }),
            "1+4+9");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hornsafe", "horn"));
  EXPECT_TRUE(StartsWith("horn", "horn"));
  EXPECT_FALSE(StartsWith("horn", "hornsafe"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, HashCombineChangesSeed) {
  size_t a = 0;
  HashCombine(a, 123);
  size_t b = 0;
  HashCombine(b, 124);
  EXPECT_NE(a, b);
  EXPECT_NE(a, size_t{0});
}

}  // namespace
}  // namespace hornsafe
