#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace hornsafe {
namespace {

Json MustParse(const std::string& text) {
  Result<Json> parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  return parsed.ok() ? *parsed : Json();
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(MustParse("true").AsBool(), true);
  EXPECT_EQ(MustParse("false").AsBool(false), false);
  EXPECT_EQ(MustParse("42").AsInt(), 42);
  EXPECT_DOUBLE_EQ(MustParse("-2.5e2").AsNumber(), -250.0);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  Json j = MustParse(
      R"({"id": 7, "tags": ["a", "b"], "nested": {"ok": true}})");
  EXPECT_EQ(j["id"].AsInt(), 7);
  ASSERT_TRUE(j["tags"].is_array());
  ASSERT_EQ(j["tags"].size(), 2u);
  EXPECT_EQ(j["tags"].items()[1].AsString(), "b");
  EXPECT_TRUE(j["nested"]["ok"].AsBool());
  EXPECT_TRUE(j["missing"].is_null());
  EXPECT_TRUE(j["missing"]["deeper"].is_null());
}

TEST(JsonTest, ParsesEscapes) {
  Json j = MustParse(R"("a\"b\\c\ndA")");
  EXPECT_EQ(j.AsString(), "a\"b\\c\ndA");
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* kBad[] = {
      "",        "{",      "[1,",     "{\"a\":}",  "tru",
      "\"unterminated",  "{\"a\" 1}", "[1 2]", "{}extra",
      "\"bad \x01 control\"",
  };
  for (const char* text : kBad) {
    Result<Json> parsed = Json::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(JsonTest, DepthLimitPreventsStackExhaustion) {
  // 1000 nested arrays would recurse 1000 frames without the cap.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  Result<Json> parsed = Json::Parse(deep);
  EXPECT_FALSE(parsed.ok());
}

TEST(JsonTest, DumpIsSingleLineAndRoundTrips) {
  Json obj = Json::Object();
  obj.Set("id", int64_t{3});
  obj.Set("text", "line1\nline2\ttab");
  obj.Set("flag", true);
  Json arr = Json::Array();
  arr.Append(1.5);
  arr.Append(Json());
  obj.Set("items", std::move(arr));

  std::string dumped = obj.Dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos)
      << "raw newline breaks the line protocol: " << dumped;

  Json round = MustParse(dumped);
  EXPECT_EQ(round["id"].AsInt(), 3);
  EXPECT_EQ(round["text"].AsString(), "line1\nline2\ttab");
  EXPECT_TRUE(round["flag"].AsBool());
  ASSERT_EQ(round["items"].size(), 2u);
  EXPECT_DOUBLE_EQ(round["items"].items()[0].AsNumber(), 1.5);
  EXPECT_TRUE(round["items"].items()[1].is_null());
}

TEST(JsonTest, IntegersDumpWithoutFraction) {
  Json j = Json(uint64_t{123456789});
  EXPECT_EQ(j.Dump(), "123456789");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json(2.5).Dump().substr(0, 3), "2.5");
}

TEST(JsonTest, SetOverwritesExistingKey) {
  Json obj = Json::Object();
  obj.Set("k", 1.0);
  obj.Set("k", 2.0);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_DOUBLE_EQ(obj["k"].AsNumber(), 2.0);
}

TEST(JsonTest, ParsesWhitespaceLiberally) {
  Json j = MustParse(" \t{ \"a\" : [ 1 , 2 ] } \n");
  EXPECT_EQ(j["a"].size(), 2u);
}

}  // namespace
}  // namespace hornsafe
